package backfi

import "testing"

// TestPaperHeadlineIntegration is the one-test summary of the
// reproduction: the three headline behaviours of the paper's abstract,
// executed end to end through the public API.
func TestPaperHeadlineIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo integration")
	}

	// 1. Megabit-class uplink at 1 m: the 5 Mbps configuration decodes.
	fast := TagConfig{Mod: PSK16, Coding: Rate12, SymbolRateHz: 2.5e6, PreambleChips: DefaultPreambleChips, ID: 1}
	f, err := Evaluate(DefaultChannelConfig(1), fast, 5, 32, 101)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Decodable() {
		t.Fatalf("5 Mbps config at 1 m: success %.2f", f.SuccessRate)
	}

	// 2. Megabit at 5 m: the 1 Mbps configuration decodes most frames.
	// This is the paper's operating edge, so allow the fading outage a
	// real deployment would retransmit through (see core.Session).
	mid := TagConfig{Mod: QPSK, Coding: Rate12, SymbolRateHz: 1e6, PreambleChips: DefaultPreambleChips, ID: 1}
	f, err = Evaluate(DefaultChannelConfig(5), mid, 8, 32, 102)
	if err != nil {
		t.Fatal(err)
	}
	if f.SuccessRate < 0.7 {
		t.Fatalf("1 Mbps config at 5 m: success %.2f", f.SuccessRate)
	}

	// 3. The whole link is battery-free-compatible: the energy cost of
	// the fast configuration stays within an ambient-harvesting budget.
	epb, err := EPB(fast.Mod, fast.Coding, fast.SymbolRateHz)
	if err != nil {
		t.Fatal(err)
	}
	powerW := epb * fast.BitRate()
	if powerW > 100e-6 {
		t.Fatalf("5 Mbps draws %v W — beyond the 100 µW harvest budget (R2)", powerW)
	}
}
