package serve

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"backfi/internal/core"
	"backfi/internal/fault"
	"backfi/internal/obs"
)

// chaosTimeline builds the scripted ramp used across these tests.
func chaosTimeline(t *testing.T, spec string) *fault.Timeline {
	t.Helper()
	tl, err := fault.ParseTimeline(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestAdaptiveDeterministicAcrossShardsAndWorkers extends the §5e
// byte-identity contract to the full robustness stack: adaptation,
// scripted fault timeline, watchdog, and backoff accounting all on.
// Shards 1 / workers 1 versus shards 8 / workers 8 must produce
// byte-identical per-session response streams and stats, because every
// new control loop is driven by per-session state only (frame-indexed
// timeline cursor, controller observation stream, watchdog counters).
// Run under -race in CI.
func TestAdaptiveDeterministicAcrossShardsAndWorkers(t *testing.T) {
	link := core.DefaultLinkConfig(2)
	link.Seed = 11
	sessions := []string{"alpha", "bravo", "charlie", "delta"}
	const frames = 5
	run := func(shards, workers int) map[string][]byte {
		s := startServer(t, Config{
			Link:                 link,
			Shards:               shards,
			BatchWorkers:         workers,
			MaxRetries:           1,
			Adapt:                true,
			AdaptMinSymbolRateHz: 500e3,
			Timeline:             chaosTimeline(t, "0:0,2:0.6"),
			WatchdogAfter:        2,
			WatchdogResidualDBm:  -80,
			WatchdogRecover:      3,
			Obs:                  obs.NewRegistry(),
		})
		defer s.Shutdown(context.Background())
		return runWorkload(t, s.Addr(), sessions, frames)
	}
	one := run(1, 1)
	eight := run(8, 8)
	for _, id := range sessions {
		if string(one[id]) != string(eight[id]) {
			t.Fatalf("adaptive session %s diverged between (1 shard, 1 worker) and (8 shards, 8 workers):\n1: %s\n8: %s", id, one[id], eight[id])
		}
	}
}

// TestWatchdogDegradedMode drives one session through an interference
// window hot enough to push the SIC residual ~15 dB above the healthy
// floor (severity 0.7 at 1 m leaves ≈ −69 dBm; healthy is ≈ −85), and
// checks the watchdog's full cycle: degrade after WatchdogAfter
// unhealthy frames (gauge up, robust config forced, responses
// flagged), recover after WatchdogRecover healthy frames (gauge down,
// original configuration restored).
func TestWatchdogDegradedMode(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 13
	reg := obs.NewRegistry()
	s := startServer(t, Config{
		Link:                 link,
		Shards:               1,
		MaxRetries:           1,
		AdaptMinSymbolRateHz: 500e3,
		Timeline:             chaosTimeline(t, "0:0.7,6:0"),
		WatchdogAfter:        2,
		WatchdogResidualDBm:  -80,
		WatchdogRecover:      3,
		Obs:                  reg,
	})
	defer s.Shutdown(context.Background())
	gauge := reg.Gauge(obs.MetricServeDegraded, "Sessions held in degraded mode by the SIC-health watchdog.")
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	templateRate := link.Tag.BitRate()
	var degradedSeqs []int
	sawDegradedStats := false
	for i := 0; i < 14; i++ {
		resp, err := c.Decode("wd", sessionPayload("wd", i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			degradedSeqs = append(degradedSeqs, resp.Seq)
			if gauge.Value() != 1 {
				t.Fatalf("frame %d flagged degraded but gauge = %v", i, gauge.Value())
			}
			stats, err := c.Stats("wd")
			if err != nil {
				t.Fatal(err)
			}
			if stats.BitRateBps >= templateRate {
				t.Fatalf("degraded session still at %v bps (template %v)", stats.BitRateBps, templateRate)
			}
			sawDegradedStats = true
		}
	}
	if len(degradedSeqs) == 0 {
		t.Fatal("watchdog never tripped under severity-0.7 interference")
	}
	if !sawDegradedStats {
		t.Fatal("no degraded stats observed")
	}
	// Degradation must start only after WatchdogAfter unhealthy frames.
	if degradedSeqs[0] < 2 {
		t.Fatalf("degraded at seq %d, before %d unhealthy frames", degradedSeqs[0], 2)
	}
	// The clean tail (frames 6+) must lift degraded mode again.
	stats, err := c.Stats("wd")
	if err != nil {
		t.Fatal(err)
	}
	if gauge.Value() != 0 {
		t.Fatalf("gauge still %v after recovery window", gauge.Value())
	}
	if stats.BitRateBps != templateRate {
		t.Fatalf("recovered session at %v bps, want template %v restored", stats.BitRateBps, templateRate)
	}
	if stats.ConfigSwitches < 2 {
		t.Fatalf("expected force + restore switches, got %d", stats.ConfigSwitches)
	}

	// The whole cycle is deterministic: an identical daemon re-serves
	// the identical degraded window.
	s2 := startServer(t, Config{
		Link:                 link,
		Shards:               4,
		MaxRetries:           1,
		AdaptMinSymbolRateHz: 500e3,
		Timeline:             chaosTimeline(t, "0:0.7,6:0"),
		WatchdogAfter:        2,
		WatchdogResidualDBm:  -80,
		WatchdogRecover:      3,
	})
	defer s2.Shutdown(context.Background())
	c2, err := Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	var degradedSeqs2 []int
	for i := 0; i < 14; i++ {
		resp, err := c2.Decode("wd", sessionPayload("wd", i))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			degradedSeqs2 = append(degradedSeqs2, resp.Seq)
		}
	}
	if len(degradedSeqs) != len(degradedSeqs2) {
		t.Fatalf("degraded windows differ across runs: %v vs %v", degradedSeqs, degradedSeqs2)
	}
	for i := range degradedSeqs {
		if degradedSeqs[i] != degradedSeqs2[i] {
			t.Fatalf("degraded windows differ across runs: %v vs %v", degradedSeqs, degradedSeqs2)
		}
	}
}

// TestWatchdogWithControllerUsesCeiling: on an adaptive session the
// watchdog must force through the controller's ceiling (recorded, and
// lifted on recovery) rather than bypassing it.
func TestWatchdogWithControllerUsesCeiling(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 17
	s := startServer(t, Config{
		Link:                 link,
		Shards:               1,
		MaxRetries:           1,
		Adapt:                true,
		AdaptMinSymbolRateHz: 500e3,
		Timeline:             chaosTimeline(t, "0:0.7,6:0"),
		WatchdogAfter:        2,
		WatchdogResidualDBm:  -80,
		WatchdogRecover:      3,
	})
	defer s.Shutdown(context.Background())
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sawDegraded := false
	for i := 0; i < 14; i++ {
		resp, err := c.Decode("wd", sessionPayload("wd", i))
		if err != nil {
			t.Fatal(err)
		}
		sawDegraded = sawDegraded || resp.Degraded
	}
	if !sawDegraded {
		t.Fatal("adaptive session never entered degraded mode")
	}
	stats, err := c.Stats("wd")
	if err != nil {
		t.Fatal(err)
	}
	// The ceiling pinned the session at the robust bottom rung while
	// degraded; after recovery the ladder is open again but the
	// controller climbs back on its own schedule — the rate must simply
	// be a valid rung at or below the template.
	if stats.BitRateBps <= 0 || stats.BitRateBps > link.Tag.BitRate() {
		t.Fatalf("adaptive degraded session at %v bps", stats.BitRateBps)
	}
	if stats.ConfigSwitches == 0 {
		t.Fatal("no switches recorded through controller ceiling path")
	}
}

// TestLegacyStatsBytesUnchanged pins the wire-compat satellite: with
// every robustness feature off, the stats JSON contains none of the
// new omitempty fields, so pre-existing consumers see byte-identical
// output.
func TestLegacyStatsBytesUnchanged(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 19
	s := startServer(t, Config{Link: link, Shards: 1})
	defer s.Shutdown(context.Background())
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Decode("legacy", sessionPayload("legacy", 0)); err != nil {
		t.Fatal(err)
	}
	resp, err := c.do(&Request{Op: OpStats, Session: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"backoffs", "backoff_sec", "config_switches", "bit_rate_bps", "degraded"} {
		if strings.Contains(string(blob), field) {
			t.Fatalf("legacy stats leak new field %q: %s", field, blob)
		}
	}
}
