package serve

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"backfi/internal/obs"
)

// dialClient dials the test server with cfg, replacing the sleep hook
// so redial backoff never wastes wall clock in tests.
func dialClient(t *testing.T, addr string, cfg ClientConfig) (*Client, *[]time.Duration) {
	t.Helper()
	cfg.Addr = addr
	c, err := DialClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	return c, &slept
}

func TestClientReconnectsAfterBrokenConn(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	c, slept := dialClient(t, s.Addr(), ClientConfig{
		MaxRedials: 3,
		RedialBase: time.Millisecond,
		IOTimeout:  5 * time.Second,
	})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.BreakConn()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after break: %v", err)
	}
	h := c.Health()
	if h.BrokenConns != 1 || h.Redials != 1 || h.Dials != 2 {
		t.Fatalf("health = %+v, want 1 break / 1 redial / 2 dials", h)
	}
	// The reconnect happened on the first (unslept) attempt: the healthy
	// path never backs off.
	if len(*slept) != 0 {
		t.Fatalf("healthy reconnect slept %v", *slept)
	}
	// And the healed connection still serves real work.
	if _, err := c.Decode("heal", sessionPayload("heal", 0)); err != nil {
		t.Fatalf("decode after heal: %v", err)
	}
}

func TestLegacyDialStaysBroken(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dials := 1
	c.dial = func(addr string) (net.Conn, error) {
		dials++
		return net.Dial("tcp", addr)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	c.BreakConn()
	if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("legacy client healed itself: %v", err)
	}
	if dials != 1 {
		t.Fatalf("legacy client redialed (%d dials)", dials)
	}
}

func TestClientReadDeadline(t *testing.T) {
	// A blackhole accepts the connection and the request bytes but
	// never answers; only the read deadline gets the call back.
	ln, err := net.Listen("tcp", "localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c, _ := dialClient(t, ln.Addr().String(), ClientConfig{
		IOTimeout:  30 * time.Millisecond,
		MaxRedials: 1,
		RedialBase: time.Millisecond,
	})
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("underlying cause not a timeout: %v", err)
	}
	// Two attempts × 30ms deadline, with generous slack: the deadline,
	// not a hang, ended the call.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the call: %v", elapsed)
	}
	if h := c.Health(); h.BrokenConns != 2 {
		t.Fatalf("health = %+v, want both attempts torn down", h)
	}
}

func TestRedialBackoffDeterministicJitter(t *testing.T) {
	refuse := errors.New("refused")
	run := func(seed int64) []time.Duration {
		c := &Client{
			cfg: ClientConfig{
				MaxRedials: 5,
				RedialBase: 10 * time.Millisecond,
				RedialMax:  50 * time.Millisecond,
				JitterSeed: seed,
			},
			now:  time.Now,
			dial: func(string) (net.Conn, error) { return nil, refuse },
		}
		c.jitter = newJitter(seed)
		var slept []time.Duration
		c.sleep = func(d time.Duration) { slept = append(slept, d) }
		if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
			t.Fatalf("unreachable server: %v", err)
		}
		return slept
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different backoff:\n%v\n%v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("%d delays, want 5", len(a))
	}
	// Jittered truncated exponential: attempt k draws from
	// [min(10·2^(k−1),50)/2, min(10·2^(k−1),50)] ms.
	for k, d := range a {
		full := 10 * time.Millisecond << uint(k)
		if full > 50*time.Millisecond {
			full = 50 * time.Millisecond
		}
		if d < full/2 || d > full {
			t.Fatalf("delay %d = %v outside [%v, %v]", k+1, d, full/2, full)
		}
	}
	if c := run(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	var dials int
	refuse := false
	clock := time.Unix(1000, 0)
	c, _ := dialClient(t, s.Addr(), ClientConfig{
		MaxRedials:       1,
		RedialBase:       time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	c.now = func() time.Time { return clock }
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		if refuse {
			return nil, errors.New("refused")
		}
		dials++
		return realDial(addr)
	}

	// Healthy baseline.
	if _, err := c.Decode("s1", sessionPayload("s1", 0)); err != nil {
		t.Fatal(err)
	}

	// Two consecutive hard failures open s1's circuit.
	refuse = true
	c.BreakConn()
	for i := 0; i < 2; i++ {
		if _, err := c.Decode("s1", sessionPayload("s1", 1)); !errors.Is(err, ErrConnBroken) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	dialsAtOpen := dials
	if _, err := c.Decode("s1", sessionPayload("s1", 2)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker did not open: %v", err)
	}
	if dials != dialsAtOpen {
		t.Fatal("open breaker still touched the network")
	}
	h := c.Health()
	if h.BreakerOpens != 1 || h.BreakerFastFails != 1 || h.OpenBreakers != 1 {
		t.Fatalf("health = %+v", h)
	}

	// A failed half-open probe re-opens and restarts the cooldown.
	clock = clock.Add(11 * time.Second)
	if _, err := c.Decode("s1", sessionPayload("s1", 2)); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("probe: %v", err)
	}
	if _, err := c.Decode("s1", sessionPayload("s1", 2)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe did not re-open: %v", err)
	}

	// After the server heals, the next probe closes the circuit for good.
	refuse = false
	clock = clock.Add(11 * time.Second)
	if _, err := c.Decode("s1", sessionPayload("s1", 1)); err != nil {
		t.Fatalf("healing probe: %v", err)
	}
	if _, err := c.Decode("s1", sessionPayload("s1", 2)); err != nil {
		t.Fatalf("closed circuit rejected work: %v", err)
	}
	if h := c.Health(); h.OpenBreakers != 0 {
		t.Fatalf("circuit still open after recovery: %+v", h)
	}
}

func TestCircuitBreakerIsPerSession(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	refuse := false
	c, _ := dialClient(t, s.Addr(), ClientConfig{
		MaxRedials:       1,
		RedialBase:       time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		if refuse {
			return nil, errors.New("refused")
		}
		return realDial(addr)
	}
	refuse = true
	c.BreakConn()
	if _, err := c.Decode("bad", sessionPayload("bad", 0)); !errors.Is(err, ErrConnBroken) {
		t.Fatal(err)
	}
	if _, err := c.Decode("bad", sessionPayload("bad", 0)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("bad session's breaker not open")
	}
	// Another session on the same client is unaffected once the
	// transport heals.
	refuse = false
	if _, err := c.Decode("good", sessionPayload("good", 0)); err != nil {
		t.Fatalf("good session caught bad session's breaker: %v", err)
	}
	// Typed backpressure is a healthy answer: it must not trip a
	// breaker. Ping (no session) bypasses breaking entirely.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestClientClosed(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	c, _ := dialClient(t, s.Addr(), ClientConfig{MaxRedials: 3, RedialBase: time.Millisecond})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := c.Ping(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("closed client answered: %v", err)
	}
}

// TestBreakerProbeFailureRestartsCooldown pins the half-open timing
// contract: a hard-failed probe restarts the cooldown from the probe's
// own timestamp, not the original trip. A client that restarted from
// the trip time would hammer a still-dead server with a probe per
// call once the first cooldown elapsed.
func TestBreakerProbeFailureRestartsCooldown(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	refuse := false
	clock := time.Unix(2000, 0)
	c, _ := dialClient(t, s.Addr(), ClientConfig{
		MaxRedials:       1,
		RedialBase:       time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  10 * time.Second,
	})
	c.now = func() time.Time { return clock }
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		if refuse {
			return nil, errors.New("refused")
		}
		return realDial(addr)
	}

	// Trip at t0.
	refuse = true
	c.BreakConn()
	if _, err := c.Decode("cd", sessionPayload("cd", 0)); !errors.Is(err, ErrConnBroken) {
		t.Fatal(err)
	}
	// t0+11s: the probe is admitted and fails hard.
	clock = clock.Add(11 * time.Second)
	if _, err := c.Decode("cd", sessionPayload("cd", 0)); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	// t0+20s is 9s after the failed probe: inside the restarted
	// cooldown, even though it is 20s past the original trip. A breaker
	// still counting from t0 would admit a probe here.
	refuse = false
	clock = clock.Add(9 * time.Second)
	if _, err := c.Decode("cd", sessionPayload("cd", 0)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("cooldown not restarted by failed probe: %v", err)
	}
	// t0+22s clears the restarted cooldown; the healthy probe closes.
	clock = clock.Add(2 * time.Second)
	if _, err := c.Decode("cd", sessionPayload("cd", 0)); err != nil {
		t.Fatalf("healing probe: %v", err)
	}
	if h := c.Health(); h.OpenBreakers != 0 {
		t.Fatalf("circuit still open: %+v", h)
	}
}

// TestBreakerRacingSuccessClosesOnce drives many goroutines through
// the half-open window at once (run under -race): the circuit closes
// exactly once — one breaker_close flight event, no re-trip, every
// racing call served once the probe succeeds.
func TestBreakerRacingSuccessClosesOnce(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	flight := obs.NewFlightRecorder(0)
	refuse := false
	clock := time.Unix(3000, 0)
	c, _ := dialClient(t, s.Addr(), ClientConfig{
		MaxRedials:       1,
		RedialBase:       time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Flight:           flight,
	})
	c.now = func() time.Time { return clock }
	realDial := c.dial
	c.dial = func(addr string) (net.Conn, error) {
		if refuse {
			return nil, errors.New("refused")
		}
		return realDial(addr)
	}

	refuse = true
	c.BreakConn()
	for i := 0; i < 2; i++ {
		if _, err := c.Decode("race", sessionPayload("race", 0)); !errors.Is(err, ErrConnBroken) {
			t.Fatal(err)
		}
	}
	if h := c.Health(); h.BreakerOpens != 1 {
		t.Fatalf("health after trip: %+v", h)
	}
	// Heal the transport and clear the cooldown before the stampede;
	// the clock stays frozen while goroutines run.
	refuse = false
	clock = clock.Add(2 * time.Second)
	const callers = 8
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		go func() {
			_, err := c.Decode("race", sessionPayload("race", 1))
			errs <- err
		}()
	}
	for g := 0; g < callers; g++ {
		if err := <-errs; err != nil {
			t.Errorf("racing call: %v", err)
		}
	}
	if n := flight.Count(obs.FlightBreakerClose); n != 1 {
		t.Errorf("breaker_close events = %d, want exactly 1", n)
	}
	if h := c.Health(); h.BreakerOpens != 1 || h.OpenBreakers != 0 {
		t.Errorf("health after race: %+v", h)
	}
}
