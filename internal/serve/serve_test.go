package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"backfi/internal/core"
	"backfi/internal/obs"
)

// startServer boots a daemon on an ephemeral port and registers its
// shutdown with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "localhost:0"
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s
}

// sessionPayload is the deterministic workload: frame i of a session
// is a fixed function of (session id, i), so two runs offer identical
// bytes.
func sessionPayload(session string, i int) []byte {
	p := []byte(fmt.Sprintf("%s/frame-%02d/", session, i))
	for len(p) < 24 {
		p = append(p, byte(i))
	}
	return p[:24]
}

// runWorkload drives N concurrent sessions over loopback (one
// connection per session, frames in order) and returns each session's
// full response stream plus final stats, JSON-marshalled — the bytes
// the determinism contract promises are identical.
func runWorkload(t *testing.T, addr string, sessions []string, frames int) map[string][]byte {
	t.Helper()
	var mu sync.Mutex
	out := map[string][]byte{}
	var wg sync.WaitGroup
	errs := make(chan error, len(sessions))
	for _, id := range sessions {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var stream []Response
			for i := 0; i < frames; i++ {
				resp, err := c.Decode(id, sessionPayload(id, i))
				if err != nil {
					errs <- fmt.Errorf("session %s frame %d: %w", id, i, err)
					return
				}
				stream = append(stream, *resp)
			}
			stats, err := c.Stats(id)
			if err != nil {
				errs <- err
				return
			}
			blob, err := json.Marshal(struct {
				Stream []Response
				Stats  *SessionStats
			}{stream, stats})
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			out[id] = blob
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return out
}

// TestDeterministicAcrossShards is the §5e contract: N concurrent
// sessions over loopback produce byte-identical per-session results
// for shard counts 1 and 8, under -race. Each session's seed stream
// derives from its id alone, and its jobs run in connection order
// within one shard, so neither the shard count nor cross-session
// interleaving may change a single byte.
func TestDeterministicAcrossShards(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 7
	sessions := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	const frames = 3
	run := func(shards int) map[string][]byte {
		s := startServer(t, Config{
			Link:       link,
			Shards:     shards,
			MaxRetries: 2,
			Obs:        obs.NewRegistry(), // metrics must not perturb results
		})
		defer s.Shutdown(context.Background())
		return runWorkload(t, s.Addr(), sessions, frames)
	}
	one := run(1)
	eight := run(8)
	for _, id := range sessions {
		if string(one[id]) != string(eight[id]) {
			t.Fatalf("session %s diverged between shard counts:\n1: %s\n8: %s", id, one[id], eight[id])
		}
	}
}

// TestBackpressureTypedRejection pins the queue-bound contract
// white-box: with no worker draining, the QueueDepth-th+1 job is
// rejected with ErrQueueFull — no blocking, no panic — and a draining
// shard rejects with ErrDraining.
func TestBackpressureTypedRejection(t *testing.T) {
	s, err := NewServer(Config{QueueDepth: 3, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	mk := func() *job {
		return &job{op: OpDecode, session: "x", payload: []byte("p"), enqueued: time.Now(), resp: make(chan Response, 1)}
	}
	for i := 0; i < 3; i++ {
		if err := sh.enqueue(mk()); err != nil {
			t.Fatalf("job %d rejected below the bound: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- sh.enqueue(mk()) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("overflow error = %v, want ErrQueueFull", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue blocked on a full queue instead of rejecting")
	}
	sh.mu.Lock()
	sh.draining = true
	sh.mu.Unlock()
	if err := sh.enqueue(mk()); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining error = %v, want ErrDraining", err)
	}
}

// TestBackpressureOverLoopback floods a 1-shard, depth-1 daemon while
// its worker chews a long decode: overflow must come back as typed
// queue_full responses over the wire, and admitted+rejected must
// account for every request — no hangs, no panics.
func TestBackpressureOverLoopback(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 3
	s := startServer(t, Config{Link: link, Shards: 1, QueueDepth: 1, BatchMax: 1})
	// Dial every client first: connection setup crawls once the
	// blocker decode saturates the CPUs, and a late flood misses the
	// busy window entirely.
	const flood = 12
	clients := make([]*Client, flood)
	for i := range clients {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	// Park the worker on a long frame (payload length sets decode
	// time; 4000 bytes is ~0.4s of DSP), then flood while it is busy.
	blocker, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	blocked := make(chan error, 1)
	go func() {
		_, err := blocker.Decode("blocker", make([]byte, 4000))
		blocked <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the worker pick the blocker up
	var ok, rejected, other int
	var mu sync.Mutex
	var wg sync.WaitGroup
	fire := make(chan struct{})
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-fire
			_, err := clients[i].Decode(fmt.Sprintf("flood-%d", i), sessionPayload("flood", i))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrQueueFull):
				rejected++
			default:
				other++
			}
		}(i)
	}
	close(fire)
	wg.Wait()
	if err := <-blocked; err != nil {
		t.Fatalf("blocker frame failed: %v", err)
	}
	if other != 0 {
		t.Fatalf("unexpected non-backpressure failures: %d", other)
	}
	if ok+rejected != flood {
		t.Fatalf("accounting: ok %d + rejected %d != %d", ok, rejected, flood)
	}
	if rejected == 0 {
		t.Fatal("depth-1 queue under a 12-way flood never overflowed")
	}
}

// TestDeadlineExceededBeforeSession checks that an expired job is
// answered with the typed deadline code before it can touch session
// state (the determinism carve-out for timeouts).
func TestDeadlineExceededBeforeSession(t *testing.T) {
	s, err := NewServer(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	if err := sh.ensureSession("x", []*job{{op: OpDecode}}); err != nil {
		t.Fatal(err)
	}
	before := sh.sessions["x"].sess.Stats
	j := &job{
		op: OpDecode, session: "x", payload: []byte("p"),
		enqueued: time.Now().Add(-time.Second),
		deadline: time.Now().Add(-time.Millisecond),
		resp:     make(chan Response, 1),
	}
	sh.serveJob(sh.sessions["x"], j)
	resp := <-j.resp
	if resp.Code != CodeDeadline {
		t.Fatalf("code = %q, want %q", resp.Code, CodeDeadline)
	}
	if !errors.Is(resp.Err(), ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", resp.Err())
	}
	if sh.sessions["x"].sess.Stats != before {
		t.Fatal("expired job touched session state")
	}
}

// TestJobPanicIsolated feeds serveJob a state that panics (nil
// session): the shard must answer CodeError and keep running rather
// than crash the daemon.
func TestJobPanicIsolated(t *testing.T) {
	s, err := NewServer(Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	j := &job{op: OpStats, session: "ghost", enqueued: time.Now(), resp: make(chan Response, 1)}
	sh.serveJob(nil, j) // nil state → nil dereference inside the job
	resp := <-j.resp
	if resp.Code != CodeError {
		t.Fatalf("code = %q, want %q after a panic", resp.Code, CodeError)
	}
	// The shard survives: a real job on the same shard still works.
	if err := sh.ensureSession("ghost", []*job{{op: OpDecode}}); err != nil {
		t.Fatal(err)
	}
	j2 := &job{op: OpStats, session: "ghost", enqueued: time.Now(), resp: make(chan Response, 1)}
	sh.serveJob(sh.sessions["ghost"], j2)
	if resp := <-j2.resp; !resp.OK {
		t.Fatalf("shard broken after panic: %+v", resp)
	}
}

// TestBadRequests drives the protocol edges end to end.
func TestBadRequests(t *testing.T) {
	s := startServer(t, Config{Shards: 1})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for _, req := range []*Request{
		{Op: "warp", Session: "x"},
		{Op: OpDecode, Session: ""},
		{Op: OpDecode, Session: "x", Payload: nil},
	} {
		resp, err := c.do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Code != CodeBadRequest {
			t.Fatalf("req %+v: code %q, want %q", req, resp.Code, CodeBadRequest)
		}
	}
}

// TestGracefulDrain checks the SIGTERM path: draining rejects new work
// with the typed error while completed work stays answered, and
// Shutdown returns cleanly.
func TestGracefulDrain(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 5
	s := startServer(t, Config{Link: link, Shards: 2})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Decode("steady", sessionPayload("steady", 0)); err != nil {
		t.Fatalf("pre-drain decode: %v", err)
	}
	// Flip the drain flag the way Shutdown does, before tearing
	// anything down: the live connection must see typed rejection.
	s.draining.Store(true)
	if _, err := c.Decode("steady", sessionPayload("steady", 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining decode err = %v, want ErrDraining", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := Dial(s.Addr()); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServingMetrics spot-checks the §5e instruments: admission
// outcomes and the session gauge reflect the served load.
func TestServingMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	link := core.DefaultLinkConfig(1)
	link.Seed = 9
	s := startServer(t, Config{Link: link, Shards: 1, Obs: reg})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const frames = 3
	for i := 0; i < frames; i++ {
		if _, err := c.Decode("m", sessionPayload("m", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter(obs.MetricServeJobs, `{outcome="admitted"}`); got != frames {
		t.Fatalf("admitted = %d, want %d", got, frames)
	}
	if got := snap.Counter(obs.MetricServeJobs, `{outcome="done"}`); got != frames {
		t.Fatalf("done = %d, want %d", got, frames)
	}
	if got := snap.Counter(obs.MetricServeConns, ""); got < 1 {
		t.Fatalf("connections = %d, want ≥1", got)
	}
}
