package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"backfi/internal/core"
)

func binRequests() []Request {
	return []Request{
		{Op: OpPing},
		{Op: OpStats, Session: "tag-7"},
		{Op: OpDecode, Session: "tag-7", Payload: []byte("hello, backscatter")},
		{Op: OpDecode, Session: "s", Payload: bytes.Repeat([]byte{0xAB}, 300), TimeoutMs: 1500},
		{Op: OpDecode, Session: "tag-Ω-unicode", Payload: []byte{0}},
		{Op: OpMultiDecode, Session: "group-3", Payloads: [][]byte{
			[]byte("reading-a"), []byte("reading-b"), []byte("reading-c"),
		}, TimeoutMs: 900},
		{Op: OpHandoff, Session: "migrant", Handoff: &HandoffState{
			Version: HandoffVersion, Attempts: 17, Seq: 9, TimelineCur: 2,
			Stats: SessionStats{
				FramesOffered: 9, FramesDelivered: 8, PacketsSent: 12,
				PayloadBits: 2048, AirtimeSec: 0.07, ACKsDropped: 1, NoWakes: 2,
				Backoffs: 1, BackoffSec: 0.25, ConfigSwitches: 3, BitRateBps: 1.5e6,
			},
			Ctrl: &CtrlState{
				Index: 2, Ceiling: 3, Attempts: 9, ConsecFail: 1, ConsecGood: 4,
				SinceSwitch: 5, EWMABER: 0.02, EWMASet: true, FloorDBm: -61.5, FloorSet: true,
			},
			WDHot: 1, WDCool: 2, Degraded: true,
		}},
		{Op: OpHandoff, Session: "plain", Handoff: &HandoffState{
			Version: HandoffVersion, Attempts: 3, Seq: 3,
			Stats: SessionStats{FramesOffered: 3, FramesDelivered: 3, PacketsSent: 3},
		}},
	}
}

func binResponses() []Response {
	return []Response{
		{OK: true, Code: CodeOK},
		{Code: CodeQueueFull, Error: ErrQueueFull.Error(), Session: "tag-7"},
		{OK: true, Code: CodeOK, Session: "tag-7", Seq: 42, Delivered: true, PayloadOK: true,
			Attempts: 3, NoWakes: 1, ACKsDropped: 1, SNRdB: 17.25, Degraded: true},
		{OK: true, Code: CodeOK, Session: "tag-7", Seq: 9, Stats: &SessionStats{
			FramesOffered: 9, FramesDelivered: 8, PacketsSent: 11, PayloadBits: 1536,
			AirtimeSec: 0.0123, ACKsDropped: 1, NoWakes: 2, Backoffs: 1,
			BackoffSec: 0.5, ConfigSwitches: 3, BitRateBps: 2.5e6,
		}},
		{Code: CodeError, Error: "serve: decode panic: boom", Session: "x"},
		{OK: true, Code: CodeOK, Session: "group-3", Seq: 4, Delivered: true, Attempts: 1, Tags: []TagResult{
			{Delivered: true, PayloadOK: true, Woke: true, SNRdB: 14.5},
			{Delivered: true, PayloadOK: true, Woke: true, SNRdB: 8.25},
			{Woke: true, SNRdB: -1.5},
		}},
		{OK: true, Code: CodeOK, Session: "migrant", Seq: 5, Delivered: true,
			PayloadOK: true, Attempts: 1, SNRdB: 12.5, Handoff: &HandoffState{
				Version: HandoffVersion, Attempts: 6, Seq: 5,
				Stats: SessionStats{FramesOffered: 5, FramesDelivered: 5, PacketsSent: 6, AirtimeSec: 0.01},
				Ctrl:  &CtrlState{Index: 1, Ceiling: 3, Attempts: 5, EWMABER: 0.001, EWMASet: true},
			}},
	}
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	var names internTable
	for i, want := range binRequests() {
		body, err := appendRequestBinary(nil, &want)
		if err != nil {
			t.Fatalf("req %d: encode: %v", i, err)
		}
		var got Request
		if err := decodeRequestBinary(body, &got, &names); err != nil {
			t.Fatalf("req %d: decode: %v", i, err)
		}
		// The decoder reuses payload capacity, so normalize nil vs empty.
		if len(want.Payload) == 0 {
			want.Payload = []byte{}
		}
		if got.Op != want.Op || got.Session != want.Session || got.TimeoutMs != want.TimeoutMs ||
			!bytes.Equal(got.Payload, want.Payload) || !samePayloads(got.Payloads, want.Payloads) ||
			!reflect.DeepEqual(got.Handoff, want.Handoff) {
			t.Fatalf("req %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	var names internTable
	for i, want := range binResponses() {
		body, err := appendResponseBinary(nil, &want)
		if err != nil {
			t.Fatalf("resp %d: encode: %v", i, err)
		}
		var got Response
		if err := decodeResponseBinary(body, &got, &names, nil); err != nil {
			t.Fatalf("resp %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resp %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestBinaryCodecZeroAlloc pins the tentpole's zero-allocation claim:
// once buffers have grown and the session id is interned, encoding and
// decoding one frame in either direction touches the heap zero times.
func TestBinaryCodecZeroAlloc(t *testing.T) {
	req := Request{Op: OpDecode, Session: "steady-session", Payload: bytes.Repeat([]byte{7}, 64), TimeoutMs: 250}
	resp := Response{OK: true, Code: CodeOK, Session: "steady-session", Seq: 12,
		Delivered: true, PayloadOK: true, Attempts: 1, SNRdB: 21.5}
	reqBody, err := appendRequestBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	respBody, err := appendResponseBinary(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	var names internTable
	var decReq Request
	var decResp Response
	// Warm the intern table and the payload buffer.
	if err := decodeRequestBinary(reqBody, &decReq, &names); err != nil {
		t.Fatal(err)
	}
	if err := decodeResponseBinary(respBody, &decResp, &names, nil); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 1024)
	checks := map[string]func(){
		"encode request":  func() { dst, _ = appendRequestBinary(dst[:0], &req) },
		"encode response": func() { dst, _ = appendResponseBinary(dst[:0], &resp) },
		"decode request":  func() { _ = decodeRequestBinary(reqBody, &decReq, &names) },
		"decode response": func() { _ = decodeResponseBinary(respBody, &decResp, &names, nil) },
	}
	for name, fn := range checks {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
}

// TestBinaryDecodeMalformed feeds every truncation of valid frames
// plus assorted corruption to both decoders: the error must always be
// typed (ErrBadRequest) and the call must never panic.
func TestBinaryDecodeMalformed(t *testing.T) {
	var names internTable
	check := func(body []byte) {
		var req Request
		if err := decodeRequestBinary(body, &req, &names); err != nil && !errors.Is(err, ErrBadRequest) {
			t.Fatalf("request decoder returned untyped error %v for % x", err, body)
		}
		var resp Response
		if err := decodeResponseBinary(body, &resp, &names, nil); err != nil && !errors.Is(err, ErrBadRequest) {
			t.Fatalf("response decoder returned untyped error %v for % x", err, body)
		}
	}
	var whole [][]byte
	for _, r := range binRequests() {
		b, _ := appendRequestBinary(nil, &r)
		whole = append(whole, b)
	}
	for _, r := range binResponses() {
		b, _ := appendResponseBinary(nil, &r)
		whole = append(whole, b)
	}
	for _, b := range whole {
		for cut := 0; cut < len(b); cut++ {
			check(b[:cut])
		}
		check(append(append([]byte(nil), b...), 0xFF)) // trailing junk
	}
	// A truncated frame must error, not decode to a short field.
	full, _ := appendRequestBinary(nil, &Request{Op: OpDecode, Session: "s", Payload: []byte("abc")})
	var req Request
	if err := decodeRequestBinary(full[:len(full)-2], &req, &names); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("truncated frame decoded without typed error: %v", err)
	}
	check([]byte{})
	check([]byte{0x7F})                                              // unknown kind
	check([]byte{binKindDecode, 0xFF})                               // dangling varint
	check([]byte{binKindDecode, 0x80, 0x80, 0x80, 0x80})             // unterminated varint
	check([]byte{binKindDecode, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // length way past body
	check([]byte{binKindResp, 0x00, 0xEE})                           // unknown response code
}

func startCacheServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "localhost:0"
	}
	if cfg.Link.WiFiMbps == 0 {
		cfg.Link = core.DefaultLinkConfig(1)
		cfg.Link.Seed = 7
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// TestBinaryClientEndToEnd drives ping/decode/stats through the
// negotiated binary protocol against a live server.
func TestBinaryClientEndToEnd(t *testing.T) {
	srv := startCacheServer(t, Config{SessionCache: true})
	c, err := DialClient(ClientConfig{Addr: srv.Addr(), Proto: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for i := 0; i < 3; i++ {
		resp, err := c.Decode("bin-e2e", []byte("binary end to end frame!"))
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if resp.Seq != i+1 {
			t.Fatalf("decode %d: seq %d", i, resp.Seq)
		}
	}
	st, err := c.Stats("bin-e2e")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.FramesOffered != 3 {
		t.Fatalf("stats offered %d, want 3", st.FramesOffered)
	}
}

// TestBinaryVersionSkew pins the negotiation contract: a client
// announcing an unknown version gets the server's preamble echoed (so
// it can report the skew) and then a closed connection.
func TestBinaryVersionSkew(t *testing.T) {
	srv := startCacheServer(t, Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'B', 'F', 'B', binVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatalf("reading version ack: %v", err)
	}
	if ack != binPreamble {
		t.Fatalf("ack % x, want server preamble % x", ack, binPreamble)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(ack[:1]); err != io.EOF {
		t.Fatalf("connection stayed open after version skew (read err %v)", err)
	}
}

// TestOneByteAtATimePeer pins the read-buffer policy against the most
// fragmented peer possible: every wire byte in its own TCP write, for
// both protocols. io.ReadFull over the buffered reader must reassemble
// frames regardless of segmentation.
func TestOneByteAtATimePeer(t *testing.T) {
	srv := startCacheServer(t, Config{})
	trickle := func(conn net.Conn, b []byte) {
		t.Helper()
		for i := range b {
			if _, err := conn.Write(b[i : i+1]); err != nil {
				t.Fatalf("trickle write: %v", err)
			}
		}
	}
	t.Run("json", func(t *testing.T) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		var frame bytes.Buffer
		if err := WriteFrame(&frame, Request{Op: OpPing}); err != nil {
			t.Fatal(err)
		}
		trickle(conn, frame.Bytes())
		var resp Response
		if err := ReadFrame(bufioReader(conn), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("ping not OK: %+v", resp)
		}
	})
	t.Run("binary", func(t *testing.T) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		body, err := appendRequestBinary([]byte{0, 0, 0, 0}, &Request{Op: OpPing})
		if err != nil {
			t.Fatal(err)
		}
		wire := append(append([]byte{}, binPreamble[:]...), finishBinaryFrame(body)...)
		trickle(conn, wire)
		br := bufioReader(conn)
		var ack [4]byte
		if _, err := io.ReadFull(br, ack[:]); err != nil || ack != binPreamble {
			t.Fatalf("handshake ack % x err %v", ack, err)
		}
		fr := &frameReader{br: br, le: true}
		rb, err := fr.read()
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		var names internTable
		if err := decodeResponseBinary(rb, &resp, &names, nil); err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("ping not OK: %+v", resp)
		}
	})
}

// TestFrameReaderBoundedRetention pins the buffer-reuse policy: small
// frames share one buffer, a jumbo frame's buffer is not retained.
func TestFrameReaderBoundedRetention(t *testing.T) {
	var wire bytes.Buffer
	big := bytes.Repeat([]byte{1}, maxRetainedBuf+1)
	small := []byte("small frame")
	for _, body := range [][]byte{small, big, small} {
		var hdr [4]byte
		le32(hdr[:], uint32(len(body)))
		wire.Write(hdr[:])
		wire.Write(body)
	}
	fr := &frameReader{br: bufioReader(&wire), le: true}
	if _, err := fr.read(); err != nil {
		t.Fatal(err)
	}
	capAfterSmall := cap(fr.buf)
	if _, err := fr.read(); err != nil {
		t.Fatal(err)
	}
	if cap(fr.buf) != capAfterSmall {
		t.Fatalf("jumbo frame was retained: cap %d", cap(fr.buf))
	}
	b, err := fr.read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, small) {
		t.Fatalf("frame after jumbo corrupted: %q", b)
	}
}

// responseStream collects one session's decode responses as canonical
// JSON bytes — the §5g determinism currency.
func responseStream(t *testing.T, addr, proto, session string, frames int) []byte {
	t.Helper()
	c, err := DialClient(ClientConfig{Addr: addr, Proto: proto})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out bytes.Buffer
	for i := 0; i < frames; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 24)
		resp, err := c.Decode(session, payload)
		if err != nil {
			t.Fatalf("%s frame %d: %v", proto, i, err)
		}
		b, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(b)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestProtocolDeterminism pins the tentpole's contract: the decode
// stream of a session is byte-identical across JSON vs binary
// protocol, 1 vs 8 shards, batch bound 1 vs 16, and pooled vs
// unpooled frame buffers, with the session cache on.
func TestProtocolDeterminism(t *testing.T) {
	stream := func(shards, batch int, proto string, pooled bool) []byte {
		framePoolDisabled.Store(!pooled)
		defer framePoolDisabled.Store(false)
		srv := startCacheServer(t, Config{Shards: shards, BatchMax: batch, SessionCache: true})
		var out []byte
		for _, sess := range []string{"det-a", "det-b"} {
			out = append(out, responseStream(t, srv.Addr(), proto, sess, 6)...)
		}
		return out
	}
	ref := stream(4, 16, "json", true)
	for _, tc := range []struct {
		name          string
		shards, batch int
		proto         string
		pooled        bool
	}{
		{"binary", 4, 16, "binary", true},
		{"shards=1", 1, 16, "binary", true},
		{"shards=8", 8, 16, "binary", true},
		{"batch=1", 4, 1, "binary", true},
		{"unpooled", 4, 16, "binary", false},
	} {
		if got := stream(tc.shards, tc.batch, tc.proto, tc.pooled); !bytes.Equal(got, ref) {
			t.Errorf("%s: response stream diverged from JSON/shards=4/batch=16/pooled reference", tc.name)
		}
	}
}

func bufioReader(r io.Reader) *bufio.Reader { return bufio.NewReader(r) }

func le32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
