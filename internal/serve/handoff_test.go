package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"backfi/internal/core"
	"backfi/internal/fault"
)

// handoffLink is the template the handoff tests share: far enough for
// retries and controller activity, seeded for reproducibility.
func handoffLink() core.LinkConfig {
	link := core.DefaultLinkConfig(2.5)
	link.Seed = 11
	return link
}

// decodeStream drives frames [from, to) of one session through the
// client and returns the JSON-marshalled responses.
func decodeStream(t *testing.T, c *Client, id string, from, to int) [][]byte {
	t.Helper()
	var out [][]byte
	for i := from; i < to; i++ {
		resp, err := c.Decode(id, sessionPayload(id, i))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		blob, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, blob)
	}
	return out
}

// TestHandoffResumeByteIdentical is the cluster migration contract
// (DESIGN.md §5j), end to end over the wire: a session decodes `cut`
// frames on an origin node, the client installs the origin's last
// snapshot on a survivor node, and the survivor's responses for the
// remaining frames are byte-identical to an uninterrupted control node
// — across both wire protocols, fixed and adaptive sessions, the
// session-cache hot path, and a scripted fault timeline straddling the
// cut.
func TestHandoffResumeByteIdentical(t *testing.T) {
	timeline, err := fault.NewTimeline([]fault.TimelineStep{
		{Frame: 2, Severity: 0.5},
		{Frame: 7, Severity: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		proto string
		mut   func(*Config)
	}{
		{"fixed-json", "json", func(*Config) {}},
		{"fixed-binary", "binary", func(*Config) {}},
		{"hotpath-binary", "binary", func(c *Config) { c.SessionCache = true }},
		{"adaptive-binary", "binary", func(c *Config) {
			c.Adapt = true
			c.AdaptMinSymbolRateHz = 250e3
		}},
		{"timeline-json", "json", func(c *Config) { c.Timeline = timeline }},
	}
	const frames, cut = 10, 4
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Link: handoffLink(), Shards: 2, MaxRetries: 2, Handoff: true}
			tc.mut(&cfg)
			id := "migrant-" + tc.name

			control := startServer(t, cfg)
			cc, err := DialClient(ClientConfig{Addr: control.Addr(), Proto: tc.proto})
			if err != nil {
				t.Fatal(err)
			}
			defer cc.Close()
			want := decodeStream(t, cc, id, 0, frames)

			origin := startServer(t, cfg)
			oc, err := DialClient(ClientConfig{Addr: origin.Addr(), Proto: tc.proto})
			if err != nil {
				t.Fatal(err)
			}
			defer oc.Close()
			got := decodeStream(t, oc, id, 0, cut)
			snap := oc.LastHandoff(id)
			if snap == nil {
				t.Fatal("no handoff snapshot cached after decodes")
			}
			if snap.Seq != cut || snap.Version != HandoffVersion {
				t.Fatalf("snapshot = %+v, want seq %d version %d", snap, cut, HandoffVersion)
			}
			_ = origin.Shutdown(context.Background())

			survivor := startServer(t, cfg)
			sc, err := DialClient(ClientConfig{Addr: survivor.Addr(), Proto: tc.proto})
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			if _, err := sc.InstallHandoff(id, snap); err != nil {
				t.Fatalf("install: %v", err)
			}
			got = append(got, decodeStream(t, sc, id, cut, frames)...)

			if len(got) != len(want) {
				t.Fatalf("stream length %d, want %d", len(got), len(want))
			}
			for i := range want {
				if string(got[i]) != string(want[i]) {
					t.Fatalf("frame %d diverged after handoff:\ngot  %s\nwant %s", i, got[i], want[i])
				}
			}
			cstats, err := cc.Stats(id)
			if err != nil {
				t.Fatal(err)
			}
			sstats, err := sc.Stats(id)
			if err != nil {
				t.Fatal(err)
			}
			if *cstats != *sstats {
				t.Fatalf("final stats diverged:\ngot  %+v\nwant %+v", sstats, cstats)
			}
		})
	}
}

// TestHandoffSeqContinuity pins the no-duplicate / no-loss guarantee
// the chaos harness asserts at scale: the survivor continues Seq
// exactly where the origin stopped.
func TestHandoffSeqContinuity(t *testing.T) {
	cfg := Config{Link: core.DefaultLinkConfig(1), Shards: 1, Handoff: true}
	origin := startServer(t, cfg)
	oc, err := Dial(origin.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	for i := 0; i < 3; i++ {
		if _, err := oc.Decode("seq", sessionPayload("seq", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := oc.LastHandoff("seq")
	if snap == nil || snap.Seq != 3 {
		t.Fatalf("snapshot %+v, want seq 3", snap)
	}

	survivor := startServer(t, cfg)
	sc, err := Dial(survivor.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	resp, err := sc.InstallHandoff("seq", snap)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 3 {
		t.Fatalf("install Seq = %d, want 3", resp.Seq)
	}
	next, err := sc.Decode("seq", sessionPayload("seq", 3))
	if err != nil {
		t.Fatal(err)
	}
	if next.Seq != 4 {
		t.Fatalf("first post-handoff Seq = %d, want 4", next.Seq)
	}
}

// TestHandoffRejections pins the typed install-time failures: handoff
// off, version skew, controller-presence mismatch, timeline mismatch,
// and malformed counters — each a CodeBadRequest, never a panic or a
// half-installed session.
func TestHandoffRejections(t *testing.T) {
	good := func() *HandoffState {
		return &HandoffState{Version: HandoffVersion, Attempts: 2,
			Seq: 1, Stats: SessionStats{FramesOffered: 1, PacketsSent: 2}}
	}

	t.Run("disabled", func(t *testing.T) {
		s := startServer(t, Config{Link: core.DefaultLinkConfig(1), Shards: 1})
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.InstallHandoff("x", good()); !isBadRequest(err) {
			t.Fatalf("handoff on non-handoff server: %v", err)
		}
	})

	s := startServer(t, Config{Link: core.DefaultLinkConfig(1), Shards: 1, Handoff: true})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	t.Run("version-skew", func(t *testing.T) {
		hs := good()
		hs.Version = HandoffVersion + 1
		if _, err := c.InstallHandoff("x", hs); !isBadRequest(err) {
			t.Fatalf("version skew: %v", err)
		}
	})
	t.Run("missing-state", func(t *testing.T) {
		if _, err := c.InstallHandoff("x", nil); !isBadRequest(err) {
			t.Fatalf("nil state: %v", err)
		}
	})
	t.Run("negative-counter", func(t *testing.T) {
		hs := good()
		hs.Attempts = -1
		if _, err := c.InstallHandoff("x", hs); !isBadRequest(err) {
			t.Fatalf("negative attempts: %v", err)
		}
	})
	t.Run("seq-beyond-frames", func(t *testing.T) {
		hs := good()
		hs.Seq = hs.Stats.FramesOffered + 1
		if _, err := c.InstallHandoff("x", hs); !isBadRequest(err) {
			t.Fatalf("seq beyond frames: %v", err)
		}
	})
	t.Run("controller-mismatch", func(t *testing.T) {
		hs := good()
		hs.Ctrl = &CtrlState{Index: 1, Ceiling: 2}
		if _, err := c.InstallHandoff("x", hs); !isBadRequest(err) {
			t.Fatalf("controller state on non-adaptive node: %v", err)
		}
	})
	t.Run("timeline-mismatch", func(t *testing.T) {
		hs := good()
		hs.TimelineCur = 3 // node runs no timeline; cursor must be 0
		if _, err := c.InstallHandoff("x", hs); !isBadRequest(err) {
			t.Fatalf("timeline cursor mismatch: %v", err)
		}
	})
	// The session still serves after every rejection.
	if _, err := c.Decode("x", sessionPayload("x", 0)); err != nil {
		t.Fatalf("session unusable after rejected handoffs: %v", err)
	}
}

func isBadRequest(err error) bool { return errors.Is(err, ErrBadRequest) }

// TestHandoffNotAttachedWithoutConfig pins that a non-handoff server's
// decode responses stay byte-identical to the pre-§5j wire: no
// snapshot field, either protocol.
func TestHandoffNotAttachedWithoutConfig(t *testing.T) {
	s := startServer(t, Config{Link: core.DefaultLinkConfig(1), Shards: 1})
	for _, proto := range []string{"json", "binary"} {
		c, err := DialClient(ClientConfig{Addr: s.Addr(), Proto: proto})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := c.Decode("plain", sessionPayload("plain", 0))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Handoff != nil {
			t.Fatalf("%s: decode response carries a snapshot without Config.Handoff", proto)
		}
		if c.LastHandoff("plain") != nil {
			t.Fatalf("%s: client cached a snapshot that never arrived", proto)
		}
		c.Close()
	}
}

// TestClientSessionEviction is the client-side churn regression
// (DESIGN.md §5j): per-session bookkeeping (breaker, trace index,
// snapshot) is reclaimed by the SessionTTL sweep, so churned ids do
// not grow the client without bound.
func TestClientSessionEviction(t *testing.T) {
	s := startServer(t, Config{Link: core.DefaultLinkConfig(1), Shards: 1})
	clock := time.Unix(1000, 0)
	c, _ := dialClient(t, s.Addr(), ClientConfig{
		BreakerThreshold: 3,
		SessionTTL:       time.Second,
	})
	c.now = func() time.Time { return clock }

	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("churn-%d", i)
		if _, err := c.Decode(id, sessionPayload(id, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.TrackedSessions(); n != 8 {
		t.Fatalf("tracked %d sessions, want 8", n)
	}
	// Everything idles past the TTL; the next call's sweep reclaims all
	// eight and tracks only itself.
	clock = clock.Add(2 * time.Second)
	if _, err := c.Decode("fresh", sessionPayload("fresh", 0)); err != nil {
		t.Fatal(err)
	}
	if n := c.TrackedSessions(); n != 1 {
		t.Fatalf("tracked %d sessions after sweep, want 1", n)
	}
	// A still-active session survives the sweep: keep touching it while
	// others expire.
	clock = clock.Add(time.Second)
	if _, err := c.Decode("fresh", sessionPayload("fresh", 1)); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(600 * time.Millisecond)
	if _, err := c.Decode("fresh", sessionPayload("fresh", 2)); err != nil {
		t.Fatal(err)
	}
	if n := c.TrackedSessions(); n != 1 {
		t.Fatalf("active session evicted: tracked %d", n)
	}
}
