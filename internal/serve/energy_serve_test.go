package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"backfi/internal/core"
	"backfi/internal/energy"
	"backfi/internal/fault"
	"backfi/internal/obs"
)

// marginalTank is a serving tank that runs out of margin within a few
// tens of frames at severity 1, so short tests see real dark episodes.
func marginalTank() *energy.TankConfig {
	tc := DefaultEnergyTank()
	tc.InitialJ = 24e-9
	return &tc
}

// foreverDarkTank starts empty and harvests effectively nothing: the
// tag never wakes, so every poll is a dark poll.
func foreverDarkTank() *energy.TankConfig {
	tc := DefaultEnergyTank()
	tc.InitialJ = 0
	tc.HarvestW = 1e-12
	return &tc
}

// pollSession drives one session like an energy-aware poller: each
// frame is retried until the poll lands while the tag is awake. The
// full response stream — dark answers included — is returned in order.
func pollSession(t *testing.T, c *Client, id string, frames int) []Response {
	t.Helper()
	var stream []Response
	for i := 0; i < frames; i++ {
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatalf("session %s frame %d: tag never woke after %d polls", id, i, attempt)
			}
			resp, err := c.Decode(id, sessionPayload(id, i))
			if err != nil && !errors.Is(err, ErrTagDark) {
				t.Fatalf("session %s frame %d: %v", id, i, err)
			}
			stream = append(stream, *resp)
			if resp.Code != CodeTagDark {
				break
			}
		}
	}
	return stream
}

// TestEnergyWakeResumeByteIdentical is the §5k contract: a session
// whose tag goes dark resumes its decode stream byte-identically on
// wake. The subsequence of non-dark responses under the energy
// scheduler must equal, response for response, the stream an
// energy-off server produces from the same seeds — across shard
// counts 1 and 8 and both wire protocols — and the dark/live
// placement itself must be identical in every cell of the matrix.
func TestEnergyWakeResumeByteIdentical(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 11
	sessions := []string{"alpha", "bravo", "charlie"}
	const frames = 28

	run := func(energyOn bool, shards int, proto string) map[string][]Response {
		cfg := Config{Link: link, Shards: shards, MaxRetries: 1}
		if energyOn {
			cfg.Energy = true
			cfg.EnergySeverity = 1
			cfg.EnergyTank = marginalTank()
		}
		s := startServer(t, cfg)
		defer s.Shutdown(context.Background())
		out := map[string][]Response{}
		for _, id := range sessions {
			c, err := DialClient(ClientConfig{Addr: s.Addr(), Proto: proto})
			if err != nil {
				t.Fatal(err)
			}
			out[id] = pollSession(t, c, id, frames)
			c.Close()
		}
		return out
	}

	baseline := run(false, 1, "json")
	for _, id := range sessions {
		if len(baseline[id]) != frames {
			t.Fatalf("baseline session %s: %d responses, want %d", id, len(baseline[id]), frames)
		}
	}

	var ref map[string][]Response
	for _, shards := range []int{1, 8} {
		for _, proto := range []string{"json", "binary"} {
			got := run(true, shards, proto)
			for _, id := range sessions {
				stream := got[id]
				// The dark episodes must actually happen, or this test
				// pins nothing.
				dark := 0
				var decoded []Response
				for _, r := range stream {
					if r.Code == CodeTagDark {
						dark++
						if r.Err() != ErrTagDark {
							t.Fatalf("dark response maps to %v", r.Err())
						}
						continue
					}
					decoded = append(decoded, r)
				}
				if dark == 0 {
					t.Fatalf("session %s (%d shards, %s): no dark polls at severity 1", id, shards, proto)
				}
				// Wake resume: the decoded subsequence equals the
				// energy-off stream exactly — Seq gap-free, ARQ intact.
				if len(decoded) != frames {
					t.Fatalf("session %s: %d decoded frames, want %d", id, len(decoded), frames)
				}
				for i := range decoded {
					if decoded[i].Seq != i+1 {
						t.Fatalf("session %s: decoded frame %d has seq %d — dark polls perturbed the sequence", id, i, decoded[i].Seq)
					}
					a, _ := json.Marshal(decoded[i])
					b, _ := json.Marshal(baseline[id][i])
					if string(a) != string(b) {
						t.Fatalf("session %s frame %d diverged from energy-off baseline:\n  energy:   %s\n  baseline: %s", id, i, a, b)
					}
				}
				// Full-stream determinism across the matrix: dark polls
				// land on the same polls in every cell.
				if ref != nil {
					a, _ := json.Marshal(stream)
					b, _ := json.Marshal(ref[id])
					if string(a) != string(b) {
						t.Fatalf("session %s: stream differs between matrix cells (%d shards, %s)", id, shards, proto)
					}
				}
			}
			if ref == nil {
				ref = got
			}
		}
	}
}

// TestEnergyDarkPollsLeaveSessionUntouched pins the isolation half of
// the contract: a permanently dark tag's polls never reach the
// session — no frames offered, no SIC watchdog feed (a watchdog armed
// to trip on any decode stays silent), typed tag_dark counters, and
// exactly one flight transition event per streak.
func TestEnergyDarkPollsLeaveSessionUntouched(t *testing.T) {
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(128)
	s := startServer(t, Config{
		Link:                core.DefaultLinkConfig(1),
		Shards:              1,
		Energy:              true,
		EnergyTank:          foreverDarkTank(),
		WatchdogAfter:       1,
		WatchdogResidualDBm: -200, // any decoded frame would trip
		Obs:                 reg,
		Flight:              flight,
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const polls = 10
	for i := 0; i < polls; i++ {
		resp, err := c.Decode("darkling", sessionPayload("darkling", 0))
		if !errors.Is(err, ErrTagDark) {
			t.Fatalf("poll %d: code %q err %v, want tag_dark", i, resp.Code, err)
		}
		if resp.Seq != 0 || resp.Delivered || resp.Degraded {
			t.Fatalf("poll %d: dark response carries session progress: %+v", i, resp)
		}
	}
	stats, err := c.Stats("darkling")
	if err != nil {
		t.Fatal(err)
	}
	if stats.FramesOffered != 0 || stats.PacketsSent != 0 {
		t.Fatalf("dark polls reached the session: %+v", stats)
	}
	if n := flight.Count(obs.FlightWatchdogTrip); n != 0 {
		t.Fatalf("%d watchdog trips from dark polls", n)
	}
	if n := flight.Count(obs.FlightTagDark); n != 1 {
		t.Fatalf("%d tag_dark flight events, want 1 per streak", n)
	}
	asleep := s.m.darkAsleep.Value()
	backoff := s.m.darkBackoff.Value()
	if asleep != 1 || backoff != polls-1 {
		t.Fatalf("dark poll counters asleep=%d backoff=%d, want 1/%d", asleep, backoff, polls-1)
	}
}

// TestEnergyEvictionSparesDarkSessions pins the TTL guard: a
// DARK-but-tracked session outlives the idle sweep while its probe
// backoff is still ramping, and becomes ordinarily evictable once the
// streak reaches the backoff ceiling.
func TestEnergyEvictionSparesDarkSessions(t *testing.T) {
	const ttl = 40 * time.Millisecond
	s := startServer(t, Config{
		Link:          core.DefaultLinkConfig(1),
		Shards:        1,
		Energy:        true,
		EnergyTank:    foreverDarkTank(),
		EnergyBackoff: core.BackoffPolicy{BaseSec: 0.02, MaxSec: 2.56},
		SessionTTL:    ttl,
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// "dark" has an active streak (2 polls → Delay(2)=40ms < 2.56s
	// ceiling); "idle" has a session and tank but no streak.
	for i := 0; i < 2; i++ {
		if _, err := c.Decode("dark", sessionPayload("dark", 0)); !errors.Is(err, ErrTagDark) {
			t.Fatalf("want tag_dark, got %v", err)
		}
	}
	if _, err := c.Stats("idle"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Evictions() < 1 && time.Now().Before(deadline) {
		time.Sleep(ttl / 2)
	}
	if got := s.Evictions(); got != 1 {
		t.Fatalf("%d evictions, want exactly 1 (idle reclaimed, dark spared)", got)
	}
	if got := s.Sessions(); got != 1 {
		t.Fatalf("%d live sessions, want the spared dark one", got)
	}
	// Push the streak past the backoff ceiling: Delay(k) caps at
	// MaxSec from k=8; the session is then ordinarily evictable.
	for i := 0; i < 7; i++ {
		if _, err := c.Decode("dark", sessionPayload("dark", 0)); !errors.Is(err, ErrTagDark) {
			t.Fatalf("want tag_dark, got %v", err)
		}
	}
	deadline = time.Now().Add(2 * time.Second)
	for s.Sessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(ttl / 2)
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("%d sessions still live after streak hit the backoff ceiling", got)
	}
}

// TestEnergyConfigValidation pins the configuration fences: energy
// state is not portable (Energy ∧ Handoff rejected), mobility-bearing
// timelines cannot ride with Handoff (snapshot replay cannot reproduce
// the rho schedule), and malformed energy knobs fail loudly.
func TestEnergyConfigValidation(t *testing.T) {
	wild, err := fault.ParseWildTimeline("0:0,5:0.5")
	if err != nil {
		t.Fatal(err)
	}
	standard, err := fault.ParseTimeline("0:0,5:0.5")
	if err != nil {
		t.Fatal(err)
	}
	badTank := DefaultEnergyTank()
	badTank.CapacityJ = -1
	for name, cfg := range map[string]Config{
		"energy+handoff":   {Energy: true, Handoff: true},
		"severity>1":       {EnergySeverity: 1.5},
		"severity NaN":     {EnergySeverity: math.NaN()},
		"negative backoff": {EnergyBackoff: core.BackoffPolicy{BaseSec: -1}},
		"handoff+mobility": {Handoff: true, Timeline: wild},
		"invalid tank":     {Energy: true, EnergyTank: &badTank},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := Config{Link: core.DefaultLinkConfig(1), Handoff: true, Timeline: standard}
	if _, err := NewServer(ok); err != nil {
		t.Fatalf("handoff with a mobility-free timeline rejected: %v", err)
	}
	wildOnly := Config{Link: core.DefaultLinkConfig(1), Timeline: wild, Energy: true, EnergySeverity: 0.5}
	if _, err := NewServer(wildOnly); err != nil {
		t.Fatalf("wild timeline without handoff rejected: %v", err)
	}
}

// TestWildTimelineDeterministicAcrossShards extends the §5e matrix to
// the wild axis: a frame-indexed mobility+impairment ramp produces
// byte-identical per-session response streams for shard counts 1
// and 8 — the rho switches land on the same frame ordinals no matter
// how sessions interleave.
func TestWildTimelineDeterministicAcrossShards(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 23
	sessions := []string{"kilo", "lima", "mike", "november"}
	const frames = 10
	run := func(shards int) map[string][]byte {
		tl, err := fault.ParseWildTimeline("0:0,3:0.4,7:0.9")
		if err != nil {
			t.Fatal(err)
		}
		s := startServer(t, Config{
			Link:       link,
			Shards:     shards,
			MaxRetries: 1,
			Timeline:   tl,
		})
		defer s.Shutdown(context.Background())
		return runWorkload(t, s.Addr(), sessions, frames)
	}
	one := run(1)
	eight := run(8)
	for _, id := range sessions {
		if string(one[id]) != string(eight[id]) {
			t.Fatalf("session %s: wild-timeline stream differs between 1 and 8 shards\n1: %s\n8: %s", id, one[id], eight[id])
		}
	}
}
