package serve

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame throws arbitrary frame bodies at both binary
// decoders. The contract under fuzzing: never panic, never over-read
// (the decoders only slice the body they are handed; declared lengths
// are bounds-checked first), and every failure is typed — errors.Is
// ErrBadRequest — so transports can always answer a typed bad_request
// frame. Valid frames must survive a re-encode round trip.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: valid requests and responses, their truncations, and
	// version-skewed variants (wrong kind byte, future flag bits).
	for _, r := range binRequests() {
		b, err := appendRequestBinary(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		skew := append([]byte{}, b...)
		skew[0] = 0x7F
		f.Add(skew)
	}
	for _, r := range binResponses() {
		b, err := appendResponseBinary(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		if len(b) > 1 {
			skew := append([]byte{}, b...)
			skew[1] |= 0xE0 // flag bits a future version might define
			f.Add(skew)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{binKindDecode, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{binKindDecode, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})

	f.Fuzz(func(t *testing.T, body []byte) {
		var names internTable
		var req Request
		if err := decodeRequestBinary(body, &req, &names); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("request decode: untyped error %v", err)
			}
		} else {
			// Accepted frames must re-encode to a frame that decodes to
			// the same values (the wire allows non-canonical varints, so
			// byte equality is not required — a value fixed point is).
			re, err := appendRequestBinary(nil, &req)
			if err != nil {
				t.Fatalf("re-encode of accepted request failed: %v", err)
			}
			var again Request
			if err := decodeRequestBinary(re, &again, &names); err != nil {
				t.Fatalf("re-encoded request did not decode: %v", err)
			}
			if again.Op != req.Op || again.Session != req.Session ||
				again.TimeoutMs != req.TimeoutMs || again.Trace != req.Trace ||
				!bytes.Equal(again.Payload, req.Payload) {
				t.Fatalf("request round trip not a fixed point:\n %+v\n %+v", req, again)
			}
		}
		var resp Response
		if err := decodeResponseBinary(body, &resp, &names, nil); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("response decode: untyped error %v", err)
			}
		} else {
			re, err := appendResponseBinary(nil, &resp)
			if err != nil {
				t.Fatalf("re-encode of accepted response failed: %v", err)
			}
			var again Response
			if err := decodeResponseBinary(re, &again, &names, nil); err != nil {
				t.Fatalf("re-encoded response did not decode: %v", err)
			}
			rs, as := resp, again
			rst, ast := rs.Stats, as.Stats
			rs.Stats, as.Stats = nil, nil
			sameStats := (rst == nil) == (ast == nil) && (rst == nil || *rst == *ast ||
				(isNaNStats(rst) && isNaNStats(ast)))
			if rs != as && !(isNaNResp(&rs) && isNaNResp(&as) && eqRespIgnoringSNR(&rs, &as)) {
				t.Fatalf("response round trip not a fixed point:\n %+v\n %+v", resp, again)
			}
			if !sameStats {
				t.Fatalf("response stats round trip not a fixed point:\n %+v\n %+v", rst, ast)
			}
		}
	})
}

// NaN never compares equal to itself, so frames carrying NaN floats
// (legal on the wire) need a structural comparison.
func isNaNResp(r *Response) bool { return r.SNRdB != r.SNRdB }

func eqRespIgnoringSNR(a, b *Response) bool {
	x, y := *a, *b
	x.SNRdB, y.SNRdB = 0, 0
	return x == y
}

func isNaNStats(s *SessionStats) bool {
	return s.AirtimeSec != s.AirtimeSec || s.BackoffSec != s.BackoffSec || s.BitRateBps != s.BitRateBps
}
