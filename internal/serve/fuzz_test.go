package serve

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame throws arbitrary frame bodies at both binary
// decoders. The contract under fuzzing: never panic, never over-read
// (the decoders only slice the body they are handed; declared lengths
// are bounds-checked first), and every failure is typed — errors.Is
// ErrBadRequest — so transports can always answer a typed bad_request
// frame. Valid frames must survive a re-encode round trip.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: valid requests and responses, their truncations, and
	// version-skewed variants (wrong kind byte, future flag bits).
	for _, r := range binRequests() {
		b, err := appendRequestBinary(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		skew := append([]byte{}, b...)
		skew[0] = 0x7F
		f.Add(skew)
	}
	for _, r := range binResponses() {
		b, err := appendResponseBinary(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		if len(b) > 1 {
			skew := append([]byte{}, b...)
			skew[1] |= 0xE0 // flag bits a future version might define
			f.Add(skew)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{binKindDecode, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add([]byte{binKindDecode, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})

	f.Fuzz(func(t *testing.T, body []byte) {
		var names internTable
		var req Request
		if err := decodeRequestBinary(body, &req, &names); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("request decode: untyped error %v", err)
			}
		} else {
			// Accepted frames must re-encode to a frame that decodes to
			// the same values (the wire allows non-canonical varints, so
			// byte equality is not required — a value fixed point is).
			re, err := appendRequestBinary(nil, &req)
			if err != nil {
				t.Fatalf("re-encode of accepted request failed: %v", err)
			}
			var again Request
			if err := decodeRequestBinary(re, &again, &names); err != nil {
				t.Fatalf("re-encoded request did not decode: %v", err)
			}
			if again.Op != req.Op || again.Session != req.Session ||
				again.TimeoutMs != req.TimeoutMs || again.Trace != req.Trace ||
				!bytes.Equal(again.Payload, req.Payload) || !samePayloads(again.Payloads, req.Payloads) {
				t.Fatalf("request round trip not a fixed point:\n %+v\n %+v", req, again)
			}
		}
		var resp Response
		if err := decodeResponseBinary(body, &resp, &names, nil); err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("response decode: untyped error %v", err)
			}
		} else {
			re, err := appendResponseBinary(nil, &resp)
			if err != nil {
				t.Fatalf("re-encode of accepted response failed: %v", err)
			}
			var again Response
			if err := decodeResponseBinary(re, &again, &names, nil); err != nil {
				t.Fatalf("re-encoded response did not decode: %v", err)
			}
			rs, as := resp, again
			rst, ast := rs.Stats, as.Stats
			sameStats := (rst == nil) == (ast == nil) && (rst == nil || *rst == *ast ||
				(isNaNStats(rst) && isNaNStats(ast)))
			if !eqResp(&rs, &as) {
				t.Fatalf("response round trip not a fixed point:\n %+v\n %+v", resp, again)
			}
			if !sameStats {
				t.Fatalf("response stats round trip not a fixed point:\n %+v\n %+v", rst, ast)
			}
		}
	})
}

func samePayloads(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// eqResp compares everything but Stats field-by-field. NaN never
// compares equal to itself, but NaN floats are legal on the wire, so
// floats compare NaN==NaN here.
func eqResp(a, b *Response) bool {
	if a.OK != b.OK || a.Code != b.Code || a.Error != b.Error ||
		a.Session != b.Session || a.Seq != b.Seq ||
		a.Delivered != b.Delivered || a.PayloadOK != b.PayloadOK ||
		a.Attempts != b.Attempts || a.NoWakes != b.NoWakes ||
		a.ACKsDropped != b.ACKsDropped || a.Degraded != b.Degraded ||
		!eqF64(a.SNRdB, b.SNRdB) || len(a.Tags) != len(b.Tags) {
		return false
	}
	for i := range a.Tags {
		x, y := a.Tags[i], b.Tags[i]
		if x.Delivered != y.Delivered || x.PayloadOK != y.PayloadOK ||
			x.Woke != y.Woke || !eqF64(x.SNRdB, y.SNRdB) {
			return false
		}
	}
	return true
}

func eqF64(a, b float64) bool { return a == b || (a != a && b != b) }

func isNaNStats(s *SessionStats) bool {
	return s.AirtimeSec != s.AirtimeSec || s.BackoffSec != s.BackoffSec || s.BitRateBps != s.BitRateBps
}
