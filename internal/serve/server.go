package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"backfi/internal/adapt"
	"backfi/internal/core"
	"backfi/internal/energy"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/parallel"
	"backfi/internal/tag"
)

// Config assembles one reader daemon.
type Config struct {
	// Addr is the TCP listen address; use "localhost:0" for an
	// ephemeral port (read it back with Server.Addr).
	Addr string
	// Link is the session template. Every session clones it with a
	// per-session seed, Link.Seed + FNV-1a64(session id), so a
	// session's decode stream depends only on its id and the order of
	// its own jobs — never on shard count or cross-session
	// interleaving. The zero value defaults to
	// core.DefaultLinkConfig(1).
	Link core.LinkConfig
	// CoherenceRho is the packet-to-packet channel correlation of each
	// session (see core.NewSession). 0 defaults to 0.95.
	CoherenceRho float64
	// MaxRetries bounds each session's per-frame ARQ budget.
	MaxRetries int
	// Shards is the number of independent session-state owners. A
	// session id always hashes to the same shard, which serializes that
	// session's jobs; different sessions proceed concurrently. 0
	// defaults to 4.
	Shards int
	// QueueDepth bounds each shard's job queue. A full queue rejects
	// with ErrQueueFull immediately — admission never blocks a
	// connection. 0 defaults to 64.
	QueueDepth int
	// BatchMax bounds how many queued jobs one shard pass drains into a
	// single parallel.ForEach batch. 0 defaults to 16.
	BatchMax int
	// BatchWorkers bounds each batch's decode concurrency across the
	// distinct sessions it contains (0 = all CPUs).
	BatchWorkers int
	// JobTimeout is the default per-job deadline measured from
	// admission; a job still queued past it is answered
	// deadline_exceeded without touching its session. 0 disables.
	JobTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long Shutdown waits
	// for admitted jobs to finish before giving up. 0 defaults to 10s.
	DrainTimeout time.Duration
	// Adapt attaches a closed-loop rate controller (internal/adapt) to
	// every session: per-packet diagnostics walk the standard
	// configuration ladder with hysteresis instead of holding the
	// template rate. Off, the daemon serves exactly as before —
	// byte-identical response streams.
	Adapt bool
	// AdaptTuning overrides controller thresholds; zero-valued fields
	// take the adapt package defaults.
	AdaptTuning adapt.Config
	// AdaptMinSymbolRateHz restricts the ladder (and the watchdog's
	// robust fallback) to symbol rates at or above it — the slowest
	// rungs cost real decode CPU per frame. 0 keeps all 36 rungs.
	AdaptMinSymbolRateHz float64
	// Timeline scripts fault-profile switches against each session's
	// own frame index: step k applies just before the session's
	// Frame-th decode. Frame indexing (not wall clock) keeps scripted
	// chaos deterministic across shard and worker counts. Nil disables.
	Timeline *fault.Timeline
	// WatchdogAfter enables the SIC-health watchdog: a session whose
	// post-cancellation residual exceeds WatchdogResidualDBm for that
	// many consecutive decoded frames is flipped into degraded mode —
	// forced onto the most robust ladder rung (via the controller's
	// ceiling when adapting, directly otherwise) and flagged Degraded
	// on every response until it recovers. 0 disables the watchdog.
	WatchdogAfter int
	// WatchdogResidualDBm is the unhealthy-residual threshold. A
	// healthy canceller sits near the thermal floor (≈ −90 dBm); a
	// residual tens of dB above it means self-interference is leaking
	// past SIC and every decode is at risk.
	WatchdogResidualDBm float64
	// WatchdogRecover is the consecutive healthy frames required to
	// lift degraded mode (hysteresis against flapping). 0 defaults
	// to 8.
	WatchdogRecover int
	// SessionCache turns on the per-session link cache
	// (core.LinkConfig.SessionCache) for every session the daemon
	// opens: the realized excitation and decoder scratch are reused
	// across a session's frames instead of rebuilt per job, which is
	// what lets batched jobs of one session share an excitation packet
	// inside a shard's parallel pass. Off by default — the cached path
	// is deterministic but draws the link RNG on a different schedule,
	// so enabling it changes a session's realized decode stream (see
	// DESIGN.md §5g).
	SessionCache bool
	// Obs receives serving metrics (queue depth, admission outcomes,
	// per-stage latency, batch sizes, session/connection gauges) and is
	// propagated into every session link. Nil disables instrumentation.
	Obs *obs.Registry
	// Tracer samples per-frame distributed traces (DESIGN.md §5h). A
	// request carrying a client trace id joins it; otherwise the server
	// head-samples deterministically on (session id, frame index). Nil
	// disables tracing with zero hot-path cost — the per-job TraceCtx
	// stays zero and no clock is read.
	Tracer *obs.Tracer
	// Flight receives black-box flight-recorder events: watchdog trips
	// and recoveries, scripted fault switches, rate-ladder moves, job
	// and connection panics. Anomalies (trips, panics) also trigger an
	// auto-dump when the recorder has a dump path armed. Nil disables.
	Flight *obs.FlightRecorder
	// SLO accumulates the rolling delivery-rate / latency burn-rate
	// windows over every decode job outcome, including typed
	// rejections. Nil disables.
	SLO *obs.SLO
	// SessionTTL reclaims sessions idle longer than this: each shard's
	// worker goroutine sweeps its own map between batches (single-writer
	// maps, no locking), decrements the session gauge, and records a
	// flight event per eviction. A re-used id after eviction reopens the
	// same deterministic stream from frame zero — the seed is a pure
	// function of the id. 0 disables eviction (sessions live forever,
	// the pre-§5i behavior).
	SessionTTL time.Duration
	// MultiTagImpostor adds an unpolled impostor tag to every multi-tag
	// session the daemon opens (see core.MultiTagSessionConfig.Impostor).
	MultiTagImpostor bool
	// MultiTagMax bounds the payload-group size an mdecode request may
	// carry. 0 defaults to 8.
	MultiTagMax int
	// Handoff makes every single-tag session portable (DESIGN.md §5j):
	// sessions open in migratable mode (core.LinkConfig.Migratable —
	// every stochastic draw becomes a pure function of the session seed
	// and the link attempt ordinal), every successful decode response
	// carries a versioned HandoffState snapshot, and the daemon accepts
	// the handoff op to install a snapshot taken on another node.
	// Migratable mode pins the RNG draw schedule differently from both
	// legacy modes, so enabling it changes a session's realized decode
	// stream — all nodes of a cluster must agree on this flag (and the
	// rest of the serving configuration) for handoff to resume streams
	// byte-identically. Multi-tag sessions are not portable and mdecode
	// responses carry no snapshot.
	Handoff bool
	// Energy enables the energy-aware poll scheduler (DESIGN.md §5k):
	// every single-tag session carries a deterministic supercap tank
	// seeded from the session seed, polls that find the tag below its
	// wake threshold are answered CodeTagDark without touching the
	// session (the dark episode is invisible to the decode stream —
	// the session resumes byte-identically on wake), and each decoded
	// frame's transmit energy is drained from the tank. Incompatible
	// with Handoff: the tank and probe-backoff state are not part of
	// HandoffState, so a migrated session's energy gate would diverge.
	Energy bool
	// EnergySeverity is the harvest scarcity in [0,1] applied to every
	// session's tank (energy.TankConfig.Severity): the per-slot
	// probability that ambient harvest is occluded down to ScarceFrac.
	// 0 (the default) keeps tags effectively always-live.
	EnergySeverity float64
	// EnergyTank overrides the serving tank template (Seed and Severity
	// are still filled per session / from EnergySeverity). Nil uses the
	// serving default, which is scaled to the serving cadence so
	// EnergySeverity sweeps the full live→dark range (see energy.go).
	EnergyTank *energy.TankConfig
	// EnergyBackoff shapes the dark-tag probe backoff: the k-th
	// consecutive dark poll stands for Delay(k) seconds of virtual
	// banking time (truncated binary exponential, accounted — never
	// slept). Zero defaults to {20 ms, 2.56 s}. A dark session is not
	// TTL-evictable until its streak has reached the MaxSec ceiling.
	EnergyBackoff core.BackoffPolicy
}

// Validate checks the configuration without filling defaults.
func (c *Config) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("serve: negative shard count %d", c.Shards)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: negative queue depth %d", c.QueueDepth)
	}
	if c.BatchMax < 0 {
		return fmt.Errorf("serve: negative batch bound %d", c.BatchMax)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("serve: negative retry budget %d", c.MaxRetries)
	}
	if c.CoherenceRho < 0 || c.CoherenceRho > 1 {
		return fmt.Errorf("serve: coherence rho %v outside [0,1]", c.CoherenceRho)
	}
	if c.JobTimeout < 0 || c.DrainTimeout < 0 {
		return fmt.Errorf("serve: negative timeout")
	}
	if c.AdaptMinSymbolRateHz < 0 {
		return fmt.Errorf("serve: negative adaptation rate floor %v", c.AdaptMinSymbolRateHz)
	}
	if c.WatchdogAfter < 0 || c.WatchdogRecover < 0 {
		return fmt.Errorf("serve: negative watchdog threshold")
	}
	if c.SessionTTL < 0 {
		return fmt.Errorf("serve: negative session TTL %v", c.SessionTTL)
	}
	if c.MultiTagMax < 0 {
		return fmt.Errorf("serve: negative multi-tag bound %d", c.MultiTagMax)
	}
	if err := c.AdaptTuning.Defaults().Validate(); err != nil {
		return err
	}
	if math.IsNaN(c.EnergySeverity) || c.EnergySeverity < 0 || c.EnergySeverity > 1 {
		return fmt.Errorf("serve: energy severity %v outside [0,1]", c.EnergySeverity)
	}
	if c.EnergyBackoff.BaseSec < 0 || c.EnergyBackoff.MaxSec < 0 {
		return fmt.Errorf("serve: negative energy backoff")
	}
	if c.Energy && c.Handoff {
		return fmt.Errorf("serve: energy scheduler state (tank, probe backoff) is not portable — Energy and Handoff are mutually exclusive")
	}
	if c.Energy && c.EnergyTank != nil {
		tc := *c.EnergyTank
		tc.Seed = 1 // filled per session; validate the rest of the template
		tc.Severity = c.EnergySeverity
		if err := tc.Validate(); err != nil {
			return err
		}
	}
	if c.Handoff && c.Timeline != nil {
		// Migratable restore replays the evolver at the session's
		// construction rho, not the historical rho schedule, so a
		// mobility-bearing timeline would resume a migrated session on a
		// diverged tap stream. Fail loudly at configuration time.
		for _, step := range c.Timeline.Steps() {
			if step.Profile != nil && step.Profile.MobilitySpeedMps > 0 {
				return fmt.Errorf("serve: timeline step at frame %d carries mobility (%.2g m/s) — mobility fading is incompatible with Handoff (snapshot replay cannot reproduce the rho schedule)",
					step.Frame, step.Profile.MobilitySpeedMps)
			}
		}
	}
	return nil
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "localhost:8337"
	}
	if c.Link.WiFiMbps == 0 && c.Link.Channel.DistanceM == 0 {
		c.Link = core.DefaultLinkConfig(1)
	}
	if c.CoherenceRho == 0 {
		c.CoherenceRho = 0.95
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax == 0 {
		c.BatchMax = 16
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.WatchdogRecover == 0 {
		c.WatchdogRecover = 8
	}
	if c.MultiTagMax == 0 {
		c.MultiTagMax = 8
	}
	if c.Energy && c.EnergyBackoff == (core.BackoffPolicy{}) {
		c.EnergyBackoff = DefaultEnergyBackoff()
	}
	return c
}

// job is one admitted request on its way through a shard.
type job struct {
	op      string
	session string
	payload []byte
	// payloads is the mdecode payload group (nil on every other op).
	payloads [][]byte
	// handoff is the snapshot to install (nil on every op but handoff).
	handoff  *HandoffState
	enqueued time.Time
	deadline time.Time // zero = none
	// tctx is the job's trace context. Dispatch sets it from the
	// request's propagated id; serveJob may upgrade a zero ctx via head
	// sampling, and the connection handler reads it back after the
	// response channel receive (the channel send orders the write).
	tctx obs.TraceCtx
	// batchStart is when the job's shard batch began processing,
	// stamped only when tracing is configured (zero otherwise).
	batchStart time.Time
	// resp is buffered (cap 1): serveJob never blocks on a slow or
	// vanished connection handler.
	resp chan Response
}

func (j *job) respond(r Response) { j.resp <- r }

// sessionState is one live session plus its decode sequence counter.
// Only its owning shard touches it, and within one batch only the
// goroutine assigned to its session id, so no lock is needed. Both
// session shapes are realized lazily — an id that only ever decodes
// multi-tag slots never pays for a single-tag link, and vice versa —
// which is what keeps 100k+ churned ids affordable.
type sessionState struct {
	sess *core.Session
	// multi is the id's multi-tag session, realized by its first
	// mdecode; that first request fixes the group size for the id's
	// lifetime.
	multi *core.MultiTagSession
	// lastUsed is the batch timestamp of the id's most recent job,
	// stamped on the shard worker goroutine (only when eviction is on).
	lastUsed time.Time
	seq      int
	// timelineCur is the session's cursor into the scripted fault
	// timeline (frame-indexed, so it advances identically under any
	// shard/worker count).
	timelineCur int
	// hot / cool count consecutive unhealthy / healthy decoded frames
	// for the SIC watchdog; degraded is the current mode. savedTag
	// remembers the configuration to restore on recovery when the
	// session has no controller to carry a ceiling.
	hot, cool int
	degraded  bool
	savedTag  tag.Config
	// Energy-aware poll scheduler state (DESIGN.md §5k, energy.go):
	// the session's supercap tank (nil when Config.Energy is off or the
	// id is multi-tag-only), the consecutive-dark-poll streak driving
	// the probe backoff, the virtual seconds that backoff has stood
	// for, and the liveness EWMA (probability a poll finds the tag
	// awake).
	tank        *energy.Tank
	darkStreak  int
	darkSec     float64
	liveness    float64
	livenessSet bool
}

// shard owns an id-partition of the session space: a bounded job
// queue, the sessions hashed to it, and one worker goroutine that
// drains the queue in batches.
type shard struct {
	srv *Server
	id  int
	// mu guards the draining flag against the queue close in Shutdown:
	// enqueue holds it shared so a send never races the close.
	mu       sync.RWMutex
	draining bool
	q        chan *job
	depth    atomic.Int64
	depthG   *obs.Gauge
	liveG    *obs.Gauge
	sessions map[string]*sessionState
	// nsessions / nevicted mirror len(sessions) and the eviction count
	// for readers outside the worker goroutine (Server.Sessions).
	nsessions atomic.Int64
	nevicted  atomic.Int64
}

// enqueue admits a job or rejects it with a typed error. It never
// blocks: a full queue is ErrQueueFull, a draining shard ErrDraining.
func (sh *shard) enqueue(j *job) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.draining {
		return ErrDraining
	}
	select {
	case sh.q <- j:
		sh.depthG.Set(float64(sh.depth.Add(1)))
		return nil
	default:
		return ErrQueueFull
	}
}

// run is the shard worker: block for one job, opportunistically drain
// up to BatchMax-1 more, and process the batch. Exits when the queue
// is closed and empty (drain complete). With a session TTL configured
// the same goroutine also sweeps its map between batches — eviction is
// a third single-writer touch point, never a lock.
func (sh *shard) run() {
	defer sh.srv.shardWg.Done()
	var tickC <-chan time.Time
	if ttl := sh.srv.cfg.SessionTTL; ttl > 0 {
		period := ttl / 2
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case j, ok := <-sh.q:
			if !ok {
				return
			}
			sh.process(sh.collect(j))
		case now := <-tickC:
			sh.evict(now)
		}
	}
}

// evict reclaims every session idle past the TTL. Runs on the worker
// goroutine only.
func (sh *shard) evict(now time.Time) {
	ttl := sh.srv.cfg.SessionTTL
	m := &sh.srv.m
	for id, st := range sh.sessions {
		idle := now.Sub(st.lastUsed)
		if idle < ttl {
			continue
		}
		// A DARK-but-tracked session is not idle garbage: its tank and
		// probe-backoff streak are what make the eventual wake resume
		// byte-identical, so it stays until the backoff has reached its
		// ceiling (an uncapped policy protects it indefinitely).
		if st.darkStreak > 0 {
			bp := sh.srv.cfg.EnergyBackoff
			if bp.MaxSec <= 0 || bp.Delay(st.darkStreak) < bp.MaxSec {
				continue
			}
		}
		if st.degraded {
			m.degraded.Add(-1)
		}
		delete(sh.sessions, id)
		sh.nsessions.Add(-1)
		sh.nevicted.Add(1)
		m.sessions.Add(-1)
		m.evictions.Inc()
		sh.srv.cfg.Flight.Record(obs.FlightSessionEvict, id,
			fmt.Sprintf("idle %v past ttl %v", idle.Round(time.Millisecond), ttl), 0)
	}
}

// collect drains queued jobs behind first without blocking, up to the
// batch bound.
func (sh *shard) collect(first *job) []*job {
	batch := []*job{first}
	for len(batch) < sh.srv.cfg.BatchMax {
		select {
		case j, ok := <-sh.q:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// process runs one batch: group jobs by session preserving admission
// order, realize any new sessions sequentially (map writes stay on
// this goroutine), then fan the distinct sessions out into
// parallel.ForEach — each session's jobs run sequentially in admission
// order inside its slot, which is the §5e determinism contract.
func (sh *shard) process(batch []*job) {
	sh.depthG.Set(float64(sh.depth.Add(-int64(len(batch)))))
	sh.srv.m.batchJobs.Observe(float64(len(batch)))
	if sh.srv.cfg.Tracer != nil {
		now := time.Now()
		for _, j := range batch {
			j.batchStart = now
		}
	}
	order := make([]string, 0, len(batch))
	bySess := make(map[string][]*job, len(batch))
	for _, j := range batch {
		if _, ok := bySess[j.session]; !ok {
			order = append(order, j.session)
		}
		bySess[j.session] = append(bySess[j.session], j)
	}
	for _, id := range order {
		if err := sh.ensureSession(id, bySess[id]); err != nil {
			for _, j := range bySess[id] {
				sh.srv.m.jobsError.Inc()
				j.respond(Response{Code: CodeError, Error: err.Error(), Session: id})
			}
			delete(bySess, id)
		}
	}
	live := order[:0]
	for _, id := range order {
		if _, ok := bySess[id]; ok {
			live = append(live, id)
		}
	}
	if sh.srv.cfg.SessionTTL > 0 {
		now := time.Now()
		for _, id := range live {
			sh.sessions[id].lastUsed = now
		}
	}
	parallel.ForEach(len(live), sh.srv.cfg.BatchWorkers, func(i int) {
		st := sh.sessions[live[i]]
		for _, j := range bySess[live[i]] {
			sh.serveJob(st, j)
		}
	})
	if sh.srv.cfg.Energy {
		sh.updateLiveness()
	}
}

// ensureSession realizes whatever session shapes this batch's jobs
// need for id. The seed derives from the id alone (plus the template
// seed), so the same id opens the same session stream under any shard
// count. A stats job realizes nothing by itself when a multi-tag
// session already exists — it reports on what is there — but on a
// fresh id it opens the single-tag session, preserving the legacy
// zero-stats answer.
func (sh *shard) ensureSession(id string, jobs []*job) error {
	st, ok := sh.sessions[id]
	if !ok {
		st = &sessionState{}
	}
	for _, j := range jobs {
		switch {
		case j.op == OpMultiDecode:
			if st.multi != nil {
				continue
			}
			m, err := sh.srv.newMultiSession(sessionSeed(id), len(j.payloads))
			if err != nil {
				return fmt.Errorf("serve: open multi-tag session %q: %w", id, err)
			}
			st.multi = m
		case j.op == OpStats && st.multi != nil:
			// Report on the multi-tag session; no realization.
		case j.op == OpHandoff:
			// Install replaces whatever session exists; realizing one
			// here would be wasted work.
		default:
			if st.sess != nil {
				continue
			}
			sess, err := sh.srv.newSession(sessionSeed(id))
			if err != nil {
				return fmt.Errorf("serve: open session %q: %w", id, err)
			}
			st.sess = sess
			if sh.srv.cfg.Energy {
				tank, err := sh.srv.newTank(sessionSeed(id))
				if err != nil {
					return fmt.Errorf("serve: open tank %q: %w", id, err)
				}
				st.tank = tank
			}
		}
	}
	if !ok {
		sh.sessions[id] = st
		sh.nsessions.Add(1)
		sh.srv.m.sessions.Add(1)
	}
	return nil
}

// newSession clones the template at a seed offset, adaptive or fixed
// per the serving configuration.
func (s *Server) newSession(seedOffset int64) (*core.Session, error) {
	cfg := s.cfg.Link
	cfg.Seed += seedOffset
	if s.cfg.SessionCache {
		cfg.SessionCache = true
	}
	if s.cfg.Handoff {
		cfg.Migratable = true
	}
	if s.cfg.Adapt {
		return core.NewAdaptiveSession(cfg, s.cfg.CoherenceRho, s.cfg.MaxRetries, s.cfg.AdaptTuning, s.cfg.AdaptMinSymbolRateHz)
	}
	return core.NewSession(cfg, s.cfg.CoherenceRho, s.cfg.MaxRetries)
}

// newMultiSession clones the template into a tags-wide multi-tag
// session at a seed offset. Every multi-tag session shares the
// server's slot pool: the excitation templates are a pure function of
// (pool seed, slot shape), so sharing keeps outcomes identical while
// 100k sessions retain one template set instead of 100k private
// buffers (copy-on-write session state, DESIGN.md §5i).
func (s *Server) newMultiSession(seedOffset int64, tags int) (*core.MultiTagSession, error) {
	cfg := s.cfg.Link
	cfg.Seed += seedOffset
	return core.NewMultiTagSession(core.MultiTagSessionConfig{
		Link:     cfg,
		Tags:     tags,
		Impostor: s.cfg.MultiTagImpostor,
		Pool:     s.pool,
	})
}

// sessionLadder is the configuration ladder every session of this
// daemon walks (or would walk): the standard set at the template's
// preamble/id, above the configured rate floor, in adapt order.
func sessionLadder(cfg Config) []tag.Config {
	all := core.StandardConfigs(cfg.Link.Tag.PreambleChips, cfg.Link.Tag.ID)
	kept := all[:0]
	for _, c := range all {
		if c.SymbolRateHz >= cfg.AdaptMinSymbolRateHz {
			kept = append(kept, c)
		}
	}
	return adapt.Ladder(kept)
}

// setDegraded flips a session's watchdog mode and forces (or lifts)
// the robust configuration. With a controller the forcing goes through
// SetCeiling so it lands in the switch trace; without one the previous
// configuration is saved and restored directly.
func (sh *shard) setDegraded(st *sessionState, on bool) {
	m := &sh.srv.m
	st.degraded = on
	st.hot, st.cool = 0, 0
	if on {
		m.degraded.Add(1)
		m.degradeEnter.Inc()
	} else {
		m.degraded.Add(-1)
		m.degradeExit.Inc()
	}
	apply := func(c tag.Config) {
		if c == st.sess.Link().Tag.Cfg {
			return
		}
		if err := st.sess.SetTagConfig(c); err == nil {
			st.sess.Stats.ConfigSwitches++
		}
	}
	if ctrl := st.sess.Controller; ctrl != nil {
		target := sh.srv.ladderTop
		if on {
			target = 0
		}
		if next, changed := ctrl.SetCeiling(target); changed {
			apply(next)
		}
		return
	}
	if on {
		st.savedTag = st.sess.Link().Tag.Cfg
		apply(sh.srv.robust)
		return
	}
	apply(st.savedTag)
}

// wireSessionStats / coreSessionStats convert between the core stats
// and their wire mirror. BitRateBps is serve-derived (not core state)
// and stays zero here; the OpStats arm fills it separately.
func wireSessionStats(s core.SessionStats) SessionStats {
	return SessionStats{
		FramesOffered:   s.FramesOffered,
		FramesDelivered: s.FramesDelivered,
		PacketsSent:     s.PacketsSent,
		PayloadBits:     s.PayloadBits,
		AirtimeSec:      s.AirtimeSec,
		ACKsDropped:     s.ACKsDropped,
		NoWakes:         s.NoWakes,
		Backoffs:        s.Backoffs,
		BackoffSec:      s.BackoffSec,
		ConfigSwitches:  s.ConfigSwitches,
	}
}

func coreSessionStats(s SessionStats) core.SessionStats {
	return core.SessionStats{
		FramesOffered:   s.FramesOffered,
		FramesDelivered: s.FramesDelivered,
		PacketsSent:     s.PacketsSent,
		PayloadBits:     s.PayloadBits,
		AirtimeSec:      s.AirtimeSec,
		ACKsDropped:     s.ACKsDropped,
		NoWakes:         s.NoWakes,
		Backoffs:        s.Backoffs,
		BackoffSec:      s.BackoffSec,
		ConfigSwitches:  s.ConfigSwitches,
	}
}

// captureHandoff snapshots a session into the wire HandoffState that
// rides on a decode response (Config.Handoff). Returns nil if the
// session cannot snapshot — callers attach nothing rather than fail
// the decode that just succeeded.
func (sh *shard) captureHandoff(st *sessionState) *HandoffState {
	snap, err := st.sess.Snapshot()
	if err != nil {
		return nil
	}
	hs := &HandoffState{
		Version:     HandoffVersion,
		Attempts:    snap.Attempts,
		Seq:         st.seq,
		TimelineCur: st.timelineCur,
		Stats:       wireSessionStats(snap.Stats),
		WDHot:       st.hot,
		WDCool:      st.cool,
		Degraded:    st.degraded,
	}
	if c := snap.Ctrl; c != nil {
		hs.Ctrl = &CtrlState{
			Index:       c.Index,
			Ceiling:     c.Ceiling,
			Attempts:    c.Attempts,
			ConsecFail:  c.ConsecFail,
			ConsecGood:  c.ConsecGood,
			SinceSwitch: c.SinceSwitch,
			EWMABER:     c.EWMABER,
			EWMASet:     c.EWMASet,
			FloorDBm:    c.FloorDBm,
			FloorSet:    c.FloorSet,
		}
	}
	return hs
}

// installHandoff realizes a snapshot taken on another node: build a
// fresh migratable session for the id, replay the scripted fault
// timeline over the snapshot's frame count (reproducing the origin's
// profile-switch sequence, which the injector seed schedule depends
// on), restore link/controller state, and adopt the watchdog mode.
// The installed session's next decode continues the origin's stream
// byte-identically (DESIGN.md §5j). Runs on the shard worker like any
// job, so it is ordered against the session's decodes.
func (sh *shard) installHandoff(st *sessionState, j *job) Response {
	cfg := &sh.srv.cfg
	m := &sh.srv.m
	reject := func(format string, args ...any) Response {
		m.handoffRej.Inc()
		return Response{Code: CodeBadRequest, Session: j.session,
			Error: fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, args...)...).Error()}
	}
	hs := j.handoff
	if !cfg.Handoff {
		return reject("handoff not enabled on this node")
	}
	if (hs.Ctrl != nil) != cfg.Adapt {
		return reject("controller state %v does not match node adaptation %v", hs.Ctrl != nil, cfg.Adapt)
	}
	sess, err := sh.srv.newSession(sessionSeed(j.session))
	if err != nil {
		m.handoffRej.Inc()
		return Response{Code: CodeError, Session: j.session, Error: err.Error()}
	}
	// Replay the timeline exactly as the decode path would have: one
	// Advance per offered frame, one SetFaultProfile per switch — the
	// link's fault epoch (and with it the injector seed schedule) must
	// count the same switches the origin node applied.
	cur := 0
	for f := 0; f < hs.Stats.FramesOffered; f++ {
		next, p, switched := cfg.Timeline.Advance(cur, f)
		if !switched {
			continue
		}
		cur = next
		if err := sess.SetFaultProfile(p); err != nil {
			m.handoffRej.Inc()
			return Response{Code: CodeError, Session: j.session, Error: err.Error()}
		}
	}
	if cur != hs.TimelineCur {
		return reject("timeline cursor %d after replaying %d frames; snapshot says %d — nodes run different timelines",
			cur, hs.Stats.FramesOffered, hs.TimelineCur)
	}
	snap := core.SessionSnapshot{Attempts: hs.Attempts, Stats: coreSessionStats(hs.Stats)}
	if c := hs.Ctrl; c != nil {
		snap.Ctrl = &adapt.State{
			Index:       c.Index,
			Ceiling:     c.Ceiling,
			Attempts:    c.Attempts,
			ConsecFail:  c.ConsecFail,
			ConsecGood:  c.ConsecGood,
			SinceSwitch: c.SinceSwitch,
			EWMABER:     c.EWMABER,
			EWMASet:     c.EWMASet,
			FloorDBm:    c.FloorDBm,
			FloorSet:    c.FloorSet,
		}
	}
	if err := sess.RestoreSnapshot(snap); err != nil {
		return reject("restore: %v", err)
	}
	// Watchdog mode travels with the session. An adaptive session's
	// degraded forcing lives in the restored controller ceiling; a
	// fixed session needs the robust rung applied directly. Neither
	// counts a ConfigSwitch — the origin node already counted it and
	// the snapshot stats carry it.
	saved := sess.Link().Tag.Cfg
	if hs.Degraded && sess.Controller == nil {
		if err := sess.SetTagConfig(sh.srv.robust); err != nil {
			return reject("degraded config: %v", err)
		}
	}
	if st.degraded != hs.Degraded {
		if hs.Degraded {
			m.degraded.Add(1)
		} else {
			m.degraded.Add(-1)
		}
	}
	st.sess = sess
	st.seq = hs.Seq
	st.timelineCur = hs.TimelineCur
	st.hot, st.cool = hs.WDHot, hs.WDCool
	st.degraded = hs.Degraded
	st.savedTag = saved
	m.handoffOK.Inc()
	cfg.Flight.Record(obs.FlightHandoffInstall, j.session,
		fmt.Sprintf("installed at frame %d (attempts %d, seq %d, degraded %v)",
			hs.Stats.FramesOffered, hs.Attempts, hs.Seq, hs.Degraded), j.tctx.ID())
	return Response{OK: true, Code: CodeOK, Session: j.session, Seq: st.seq}
}

// serveJob answers one job against its session. Panics are isolated to
// the job: the session's shard keeps serving (CodeError response,
// outcome=panic counter).
func (sh *shard) serveJob(st *sessionState, j *job) {
	m := &sh.srv.m
	defer func() {
		if r := recover(); r != nil {
			m.jobsPanic.Inc()
			sh.srv.cfg.Flight.Anomaly(obs.FlightJobPanic, j.session, fmt.Sprint(r), j.tctx.ID())
			sh.srv.cfg.SLO.Record(false, time.Since(j.enqueued).Seconds())
			j.respond(Response{Code: CodeError, Error: fmt.Sprintf("serve: decode panic: %v", r), Session: j.session})
		}
	}()
	m.stageWait.Observe(time.Since(j.enqueued).Seconds())
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		// Deadline rejection happens before the job touches session
		// state, so a timed-out job never perturbs the session's
		// deterministic decode stream.
		m.jobsDeadline.Inc()
		if j.op == OpDecode || j.op == OpMultiDecode {
			sh.srv.cfg.SLO.Record(false, time.Since(j.enqueued).Seconds())
		}
		j.respond(Response{Code: CodeDeadline, Error: ErrDeadline.Error(), Session: j.session})
		return
	}
	cfg := &sh.srv.cfg
	switch j.op {
	case OpStats:
		if st.sess == nil && st.multi != nil {
			// Multi-tag-only session: synthesize the legacy stats shape
			// from slot outcomes. A tag-frame is a frame; a slot is one
			// packet (one excitation).
			ms := st.multi.Stats
			j.respond(Response{OK: true, Code: CodeOK, Session: j.session, Seq: st.seq, Stats: &SessionStats{
				FramesOffered:   ms.TagsPolled,
				FramesDelivered: ms.TagsDelivered,
				PacketsSent:     ms.SlotsOffered,
				PayloadBits:     ms.PayloadBits,
				AirtimeSec:      ms.AirtimeSec,
			}})
			return
		}
		ws := new(SessionStats)
		*ws = wireSessionStats(st.sess.Stats)
		if cfg.Adapt || cfg.WatchdogAfter > 0 {
			ws.BitRateBps = st.sess.Link().Tag.Cfg.BitRate()
		}
		j.respond(Response{OK: true, Code: CodeOK, Session: j.session, Seq: st.seq, Degraded: st.degraded, Stats: ws})
	case OpDecode:
		// Energy gate first: a dark-tag poll must be answered before
		// anything below mutates the session (trace head-sampling reads
		// but does not mutate; the timeline advance and the decode do).
		// Dark polls deliberately skip the SLO too — the reader's error
		// budget should not burn because the tag has no energy.
		if st.tank != nil {
			if resp, dark := sh.energyGate(st, j); dark {
				j.respond(resp)
				return
			}
		}
		// Resolve the job's trace context: a propagated client id wins;
		// otherwise head-sample deterministically on (session id, offered
		// frame index) — the same decision a tracing client at the same
		// frame would make, so sampled traces line up end to end. With no
		// tracer configured tctx stays zero and nothing below reads a
		// clock for tracing.
		tctx := j.tctx
		if cfg.Tracer != nil {
			if !tctx.Enabled() {
				tctx = cfg.Tracer.Head(j.session, st.sess.Stats.FramesOffered)
			}
			j.tctx = tctx
			if tctx.Enabled() {
				// The queue-wait and batch stages ended before the sampling
				// decision existed; record them retroactively.
				now := time.Now()
				if !j.batchStart.IsZero() {
					tctx.Record("queue_wait", j.enqueued, j.batchStart.Sub(j.enqueued))
					tctx.Record("batch", j.batchStart, now.Sub(j.batchStart))
				} else {
					tctx.Record("queue_wait", j.enqueued, now.Sub(j.enqueued))
				}
			}
			st.sess.SetTrace(tctx)
		}
		// Scripted chaos: cross any timeline steps due at this frame
		// index before the exchange. The index is the session's own
		// offered-frame count, so the script lands on the same frames
		// under any shard or worker count.
		if cur, p, switched := cfg.Timeline.Advance(st.timelineCur, st.sess.Stats.FramesOffered); switched {
			st.timelineCur = cur
			if err := st.sess.SetFaultProfile(p); err != nil {
				m.jobsError.Inc()
				sh.srv.cfg.SLO.Record(false, time.Since(j.enqueued).Seconds())
				j.respond(Response{Code: CodeError, Error: err.Error(), Session: j.session})
				return
			}
			m.faultSwitch.Inc()
			sh.srv.cfg.Flight.Record(obs.FlightFaultSwitch, j.session,
				fmt.Sprintf("timeline step %d at frame %d", st.timelineCur, st.sess.Stats.FramesOffered), tctx.ID())
		}
		tsp := tctx.Start("decode")
		sp := m.stageDecode.Start()
		before := st.sess.Stats
		res, delivered, err := st.sess.Send(j.payload)
		sp.End()
		tsp.End()
		if err != nil {
			m.jobsError.Inc()
			sh.srv.cfg.SLO.Record(false, time.Since(j.enqueued).Seconds())
			j.respond(Response{Code: CodeError, Error: err.Error(), Session: j.session})
			return
		}
		// SIC-health watchdog: a residual stuck above the threshold
		// means the canceller is leaking and every decode at the current
		// rate is suspect — force the robust rung until it clears.
		// All-no-wake exchanges (res == nil) carry no residual
		// measurement and leave the watchdog state untouched.
		if cfg.WatchdogAfter > 0 && res != nil {
			if res.SICResidualDBm > cfg.WatchdogResidualDBm {
				st.hot, st.cool = st.hot+1, 0
			} else {
				st.cool, st.hot = st.cool+1, 0
			}
			if !st.degraded && st.hot >= cfg.WatchdogAfter {
				sh.setDegraded(st, true)
				// A watchdog trip is an anomaly: record it with the frame's
				// trace id (linking the dump to the sampled trace) and
				// auto-dump the flight ring if a path is armed.
				sh.srv.cfg.Flight.Anomaly(obs.FlightWatchdogTrip, j.session,
					fmt.Sprintf("residual %.1f dBm above %.1f dBm for %d frames", res.SICResidualDBm, cfg.WatchdogResidualDBm, cfg.WatchdogAfter), tctx.ID())
			} else if st.degraded && st.cool >= cfg.WatchdogRecover {
				sh.setDegraded(st, false)
				sh.srv.cfg.Flight.Record(obs.FlightWatchdogClear, j.session,
					fmt.Sprintf("healthy for %d frames", cfg.WatchdogRecover), tctx.ID())
			}
		}
		after := st.sess.Stats
		if st.tank != nil {
			sh.energyDrain(st, after.AirtimeSec-before.AirtimeSec)
		}
		if d := after.ConfigSwitches - before.ConfigSwitches; d > 0 {
			m.cfgSwitch.Add(int64(d))
			sh.srv.cfg.Flight.Record(obs.FlightConfigSwitch, j.session,
				fmt.Sprintf("%d ladder moves, now %.0f bps", d, st.sess.Link().Tag.Cfg.BitRate()), tctx.ID())
		}
		st.seq++
		m.jobsDone.Inc()
		sh.srv.cfg.SLO.Record(delivered, time.Since(j.enqueued).Seconds())
		resp := Response{
			OK:          true,
			Code:        CodeOK,
			Session:     j.session,
			Seq:         st.seq,
			Delivered:   delivered,
			Attempts:    after.PacketsSent - before.PacketsSent,
			NoWakes:     after.NoWakes - before.NoWakes,
			ACKsDropped: after.ACKsDropped - before.ACKsDropped,
			Degraded:    st.degraded,
		}
		if res != nil {
			resp.PayloadOK = res.PayloadOK
			resp.SNRdB = res.MeasuredSNRdB
		}
		if cfg.Handoff {
			resp.Handoff = sh.captureHandoff(st)
		}
		j.respond(resp)
	case OpHandoff:
		j.respond(sh.installHandoff(st, j))
	case OpMultiDecode:
		if got, want := len(j.payloads), st.multi.Tags(); got != want {
			j.respond(Response{Code: CodeBadRequest, Session: j.session,
				Error: fmt.Sprintf("serve: slot carries %d payloads; session group size was fixed at %d by its first mdecode", got, want)})
			return
		}
		tctx := j.tctx
		if cfg.Tracer != nil {
			if !tctx.Enabled() {
				tctx = cfg.Tracer.Head(j.session, st.multi.Stats.SlotsOffered)
			}
			j.tctx = tctx
			if tctx.Enabled() {
				now := time.Now()
				if !j.batchStart.IsZero() {
					tctx.Record("queue_wait", j.enqueued, j.batchStart.Sub(j.enqueued))
					tctx.Record("batch", j.batchStart, now.Sub(j.batchStart))
				} else {
					tctx.Record("queue_wait", j.enqueued, now.Sub(j.enqueued))
				}
			}
			st.multi.SetTrace(tctx)
		}
		tsp := tctx.Start("decode")
		sp := m.stageDecode.Start()
		res, err := st.multi.SendSlot(j.payloads)
		sp.End()
		tsp.End()
		if err != nil {
			m.jobsError.Inc()
			sh.srv.cfg.SLO.Record(false, time.Since(j.enqueued).Seconds())
			j.respond(Response{Code: CodeError, Error: err.Error(), Session: j.session})
			return
		}
		st.seq++
		m.jobsDone.Inc()
		delivered := res.Delivered == len(j.payloads)
		sh.srv.cfg.SLO.Record(delivered, time.Since(j.enqueued).Seconds())
		resp := Response{
			OK:        true,
			Code:      CodeOK,
			Session:   j.session,
			Seq:       st.seq,
			Delivered: delivered,
			Attempts:  1,
			Tags:      make([]TagResult, len(res.Results)),
		}
		for k, pr := range res.Results {
			t := &resp.Tags[k]
			t.Woke = res.Woke[k]
			if pr != nil {
				t.Delivered = pr.Delivered
				t.PayloadOK = pr.PayloadOK
				t.SNRdB = pr.MeasuredSNRdB
			}
		}
		j.respond(resp)
	default:
		j.respond(Response{Code: CodeBadRequest, Error: fmt.Sprintf("serve: unknown op %q", j.op), Session: j.session})
	}
}

// sessionSeed hashes a session id into its seed offset.
func sessionSeed(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64())
}

// serverMetrics caches the serving instruments; all fields are nil
// (no-op) without a registry.
type serverMetrics struct {
	jobsAdmitted *obs.Counter
	jobsRejFull  *obs.Counter
	jobsRejDrain *obs.Counter
	jobsDeadline *obs.Counter
	jobsDone     *obs.Counter
	jobsError    *obs.Counter
	jobsPanic    *obs.Counter
	stageWait    *obs.Histogram
	stageDecode  *obs.Histogram
	batchJobs    *obs.Histogram
	sessions     *obs.Gauge
	evictions    *obs.Counter
	conns        *obs.Counter
	connPanics   *obs.Counter
	degraded     *obs.Gauge
	degradeEnter *obs.Counter
	degradeExit  *obs.Counter
	faultSwitch  *obs.Counter
	cfgSwitch    *obs.Counter
	handoffOK    *obs.Counter
	handoffRej   *obs.Counter
	darkAsleep   *obs.Counter
	darkBackoff  *obs.Counter

	// Wire-protocol instruments, one per negotiated protocol.
	connsJSON, connsBin    *obs.Counter
	wireRxJSON, wireTxJSON *obs.Counter
	wireRxBin, wireTxBin   *obs.Counter
	encJSON, decJSON       *obs.Histogram
	encBin, decBin         *obs.Histogram
}

func newServerMetrics(r *obs.Registry) serverMetrics {
	if r == nil {
		return serverMetrics{}
	}
	outcome := func(name string) *obs.Counter {
		return r.Counter(obs.MetricServeJobs, "Decode-job admission outcomes.", "outcome", name)
	}
	stage := func(name string) *obs.Histogram {
		return r.Histogram(obs.MetricServeJobStage, "Per-stage serving latency.", obs.LatencyBuckets, "stage", name)
	}
	wire := func(dir, proto string) *obs.Counter {
		return r.Counter(obs.MetricServeWireBytes, "Bytes on the serve wire, by direction and protocol.", "dir", dir, "proto", proto)
	}
	codec := func(op, proto string) *obs.Histogram {
		return r.Histogram(obs.MetricServeFrameCodec, "Per-frame encode/decode latency by protocol.", obs.LatencyBuckets, "op", op, "proto", proto)
	}
	return serverMetrics{
		jobsAdmitted: outcome("admitted"),
		jobsRejFull:  outcome("rejected_full"),
		jobsRejDrain: outcome("rejected_draining"),
		jobsDeadline: outcome("deadline"),
		jobsDone:     outcome("done"),
		jobsError:    outcome("error"),
		jobsPanic:    outcome("panic"),
		stageWait:    stage("queue_wait"),
		stageDecode:  stage("decode"),
		batchJobs:    r.Histogram(obs.MetricServeBatchJobs, "Jobs per shard batch.", obs.LinBuckets(1, 1, 32)),
		sessions:     r.Gauge(obs.MetricServeSessions, "Live reader sessions."),
		evictions:    r.Counter(obs.MetricServeEvictions, "Idle sessions reclaimed by the per-shard TTL sweep."),
		conns:        r.Counter(obs.MetricServeConns, "Accepted TCP connections."),
		connPanics:   r.Counter(obs.MetricServeConnPanics, "Connection handlers recovered from a panic."),
		degraded:     r.Gauge(obs.MetricServeDegraded, "Sessions held in degraded mode by the SIC-health watchdog."),
		degradeEnter: r.Counter(obs.MetricServeDegradedTrans, "Degraded-mode transitions.", "dir", "enter"),
		degradeExit:  r.Counter(obs.MetricServeDegradedTrans, "Degraded-mode transitions.", "dir", "exit"),
		faultSwitch:  r.Counter(obs.MetricServeFaultSwitches, "Scripted fault-profile switches applied to sessions."),
		cfgSwitch:    r.Counter(obs.MetricServeConfigSwitches, "Rate-controller ladder moves applied to sessions."),
		handoffOK:    r.Counter(obs.MetricServeHandoffs, "Handoff snapshots installed, by outcome.", "outcome", "ok"),
		handoffRej:   r.Counter(obs.MetricServeHandoffs, "Handoff snapshots installed, by outcome.", "outcome", "rejected"),
		darkAsleep:   r.Counter(obs.MetricServeDarkPolls, "Polls answered tag_dark without spending a decode, by reason.", "reason", "asleep"),
		darkBackoff:  r.Counter(obs.MetricServeDarkPolls, "Polls answered tag_dark without spending a decode, by reason.", "reason", "backoff"),

		connsJSON:  r.Counter(obs.MetricServeConnsProto, "Accepted connections by negotiated protocol.", "proto", "json"),
		connsBin:   r.Counter(obs.MetricServeConnsProto, "Accepted connections by negotiated protocol.", "proto", "binary"),
		wireRxJSON: wire("rx", "json"),
		wireTxJSON: wire("tx", "json"),
		wireRxBin:  wire("rx", "binary"),
		wireTxBin:  wire("tx", "binary"),
		encJSON:    codec("encode", "json"),
		decJSON:    codec("decode", "json"),
		encBin:     codec("encode", "binary"),
		decBin:     codec("decode", "binary"),
	}
}

// Server is a running reader daemon.
type Server struct {
	cfg    Config
	ln     net.Listener
	shards []*shard

	shardWg sync.WaitGroup
	connWg  sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	draining atomic.Bool
	shutdown sync.Once

	// robust is the most robust rung of the template's configuration
	// ladder — the watchdog's degraded-mode target — and ladderTop the
	// ceiling index that re-opens the full ladder on recovery.
	robust    tag.Config
	ladderTop int

	// pool shares multi-tag excitation templates across every session
	// the daemon opens (SlotPool is internally locked; one pool serves
	// all shards).
	pool *core.SlotPool

	m serverMetrics
}

// NewServer validates the configuration and builds a daemon. Call
// Start to listen.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Link.Obs == nil {
		cfg.Link.Obs = cfg.Obs
	}
	s := &Server{
		cfg:   cfg,
		conns: map[net.Conn]struct{}{},
		m:     newServerMetrics(cfg.Obs),
		pool:  core.NewSlotPool(cfg.Link.Seed),
	}
	// The ladder is a pure function of the template's preamble/id, so
	// every session shares it; resolve the degraded-mode target once.
	ladder := sessionLadder(cfg)
	if len(ladder) == 0 {
		return nil, fmt.Errorf("serve: adaptation rate floor %v Hz leaves an empty ladder", cfg.AdaptMinSymbolRateHz)
	}
	s.robust = ladder[0]
	s.ladderTop = len(ladder) - 1
	// Realize the template once so configuration errors (link and
	// controller alike) surface at construction, not on the first
	// decode of some future session.
	if _, err := s.newSession(0); err != nil {
		return nil, fmt.Errorf("serve: link template: %w", err)
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			srv:      s,
			id:       i,
			q:        make(chan *job, cfg.QueueDepth),
			sessions: map[string]*sessionState{},
			depthG:   cfg.Obs.Gauge(obs.MetricServeQueueDepth, "Queued jobs per shard.", "shard", strconv.Itoa(i)),
			liveG:    cfg.Obs.Gauge(obs.MetricTagLiveness, "Per-shard mean tag-liveness EWMA.", "shard", strconv.Itoa(i)),
		}
	}
	return s, nil
}

// Start begins listening on cfg.Addr and serving connections; it
// returns once the listener is bound (use Addr for the resolved
// address).
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for _, sh := range s.shards {
		s.shardWg.Add(1)
		go sh.run()
	}
	s.connWg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer s.connWg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown)
		}
		s.m.conns.Inc()
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(c)
	}
}

// handleConn serves one connection's request stream sequentially —
// pipelining within a connection would reorder one session's jobs,
// breaking the determinism contract; concurrency comes from many
// connections. A panic anywhere in the handler is isolated to this
// connection.
//
// The first byte picks the protocol: 'B' (0x42) opens the binary
// negotiation preamble, anything else — in practice 0x00, the high
// byte of a JSON frame's big-endian length — serves the legacy JSON
// stream byte-identically.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.m.connPanics.Inc()
			s.cfg.Flight.Anomaly(obs.FlightConnPanic, "", fmt.Sprint(r), 0)
		}
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == binPreamble[0] {
		s.serveBinary(br, bw)
		return
	}
	s.serveJSON(br, bw)
}

// serveJSON is the legacy request loop, unchanged on the wire: the
// only structural difference from the original handler is that frame
// bodies land in one bounded reused buffer per connection instead of
// a fresh allocation per frame.
func (s *Server) serveJSON(br *bufio.Reader, bw *bufio.Writer) {
	s.m.connsJSON.Inc()
	fr := &frameReader{br: br}
	traced := s.cfg.Tracer != nil
	for {
		var readStart time.Time
		if traced {
			readStart = time.Now()
		}
		body, err := fr.read()
		if err != nil {
			// A malformed-but-framed request gets a typed answer before
			// the connection drops; transport errors (EOF) just close.
			if errors.Is(err, ErrBadRequest) {
				_ = WriteFrame(bw, Response{Code: CodeBadRequest, Error: err.Error()})
				_ = bw.Flush()
			}
			return
		}
		s.m.wireRxJSON.Add(int64(len(body)) + 4)
		var req Request
		t0 := time.Now()
		uerr := json.Unmarshal(body, &req)
		s.m.decJSON.Observe(time.Since(t0).Seconds())
		if uerr != nil {
			_ = WriteFrame(bw, Response{Code: CodeBadRequest, Error: fmt.Sprintf("%v: %v", ErrBadRequest, uerr)})
			_ = bw.Flush()
			return
		}
		var readDur time.Duration
		if traced {
			readDur = time.Since(readStart)
		}
		resp, tctx := s.dispatchCtx(&req)
		// The read span predates the sampling decision; record it
		// retroactively against the job's resolved context.
		tctx.Record("conn_read", readStart, readDur)
		wsp := tctx.Start("resp_write")
		t0 = time.Now()
		wb, err := json.Marshal(resp)
		s.m.encJSON.Observe(time.Since(t0).Seconds())
		if err != nil || len(wb) > MaxFrameBytes {
			return
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(wb)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return
		}
		if _, err := bw.Write(wb); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		wsp.End()
		s.m.wireTxJSON.Add(int64(len(wb)) + 4)
	}
}

// serveBinary validates the negotiation preamble, echoes the server's
// own (the version handshake), and serves binary frames. The request
// struct, its payload buffer, the frame read buffer, and the session
// intern table are all reused across the connection's frames: steady
// state decodes and encodes without heap allocation. Payload aliasing
// is safe because dispatch blocks until the job answered — the next
// frame is not read while a job still references the buffer.
func (s *Server) serveBinary(br *bufio.Reader, bw *bufio.Writer) {
	var pre [4]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return
	}
	if pre[0] != binPreamble[0] || pre[1] != binPreamble[1] || pre[2] != binPreamble[2] {
		return
	}
	// Echo our preamble whether or not the versions match: the client
	// reads it and decides. On skew we close after the echo — the
	// client surfaces a version error rather than a framing one.
	if _, err := bw.Write(binPreamble[:]); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if pre[3] != binVersion {
		return
	}
	s.m.connsBin.Inc()
	fr := &frameReader{br: br, le: true}
	var names internTable
	var req Request
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	fail := func(err error) {
		b := append((*buf)[:0], 0, 0, 0, 0)
		b, eerr := appendResponseBinary(b, &Response{Code: CodeBadRequest, Error: err.Error()})
		if eerr != nil {
			return
		}
		*buf = b
		_, _ = bw.Write(finishBinaryFrame(b))
		_ = bw.Flush()
	}
	traced := s.cfg.Tracer != nil
	for {
		var readStart time.Time
		if traced {
			readStart = time.Now()
		}
		body, err := fr.read()
		if err != nil {
			if errors.Is(err, ErrBadRequest) {
				fail(err)
			}
			return
		}
		s.m.wireRxBin.Add(int64(len(body)) + 4)
		t0 := time.Now()
		derr := decodeRequestBinary(body, &req, &names)
		s.m.decBin.Observe(time.Since(t0).Seconds())
		if derr != nil {
			fail(derr)
			return
		}
		var readDur time.Duration
		if traced {
			readDur = time.Since(readStart)
		}
		resp, tctx := s.dispatchCtx(&req)
		tctx.Record("conn_read", readStart, readDur)
		wsp := tctx.Start("resp_write")
		b := append((*buf)[:0], 0, 0, 0, 0)
		t0 = time.Now()
		b, eerr := appendResponseBinary(b, &resp)
		s.m.encBin.Observe(time.Since(t0).Seconds())
		if eerr != nil {
			return
		}
		*buf = b
		if _, err := bw.Write(finishBinaryFrame(b)); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		wsp.End()
		s.m.wireTxBin.Add(int64(len(b)))
	}
}

// dispatch validates one request, admits it to its session's shard,
// and waits for the result.
func (s *Server) dispatch(req *Request) Response {
	resp, _ := s.dispatchCtx(req)
	return resp
}

// dispatchCtx is dispatch plus the job's resolved trace context, read
// back after the response-channel receive (which orders serveJob's
// head-sampling write). Connection handlers use it to attach their
// conn_read / resp_write spans to the same trace.
func (s *Server) dispatchCtx(req *Request) (Response, obs.TraceCtx) {
	tctx := s.cfg.Tracer.Join(req.Trace)
	switch req.Op {
	case OpPing:
		return Response{OK: true, Code: CodeOK}, tctx
	case OpDecode, OpStats, OpMultiDecode, OpHandoff:
	default:
		return Response{Code: CodeBadRequest, Error: fmt.Sprintf("serve: unknown op %q", req.Op)}, tctx
	}
	if req.Session == "" {
		return Response{Code: CodeBadRequest, Error: "serve: missing session id"}, tctx
	}
	if req.Op == OpDecode && len(req.Payload) == 0 {
		return Response{Code: CodeBadRequest, Error: "serve: empty payload", Session: req.Session}, tctx
	}
	if req.Op == OpHandoff {
		if err := req.Handoff.Validate(); err != nil {
			return Response{Code: CodeBadRequest, Error: err.Error(), Session: req.Session}, tctx
		}
	}
	if req.Op == OpMultiDecode {
		if len(req.Payloads) == 0 {
			return Response{Code: CodeBadRequest, Error: "serve: empty payload group", Session: req.Session}, tctx
		}
		if len(req.Payloads) > s.cfg.MultiTagMax {
			return Response{Code: CodeBadRequest, Error: fmt.Sprintf("serve: %d payloads exceeds the %d-tag bound", len(req.Payloads), s.cfg.MultiTagMax), Session: req.Session}, tctx
		}
		for _, p := range req.Payloads {
			if len(p) == 0 {
				return Response{Code: CodeBadRequest, Error: "serve: empty payload in group", Session: req.Session}, tctx
			}
		}
	}
	if s.draining.Load() {
		s.m.jobsRejDrain.Inc()
		if req.Op == OpDecode || req.Op == OpMultiDecode {
			s.cfg.SLO.Record(false, 0)
		}
		return Response{Code: CodeDraining, Error: ErrDraining.Error(), Session: req.Session}, tctx
	}
	j := &job{
		op:       req.Op,
		session:  req.Session,
		payload:  req.Payload,
		payloads: req.Payloads,
		handoff:  req.Handoff,
		enqueued: time.Now(),
		tctx:     tctx,
		resp:     make(chan Response, 1),
	}
	timeout := s.cfg.JobTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		j.deadline = j.enqueued.Add(timeout)
	}
	sh := s.shards[shardOf(req.Session, len(s.shards))]
	if err := sh.enqueue(j); err != nil {
		code := CodeQueueFull
		ctr := s.m.jobsRejFull
		if err == ErrDraining {
			code = CodeDraining
			ctr = s.m.jobsRejDrain
		}
		ctr.Inc()
		if req.Op == OpDecode || req.Op == OpMultiDecode {
			s.cfg.SLO.Record(false, time.Since(j.enqueued).Seconds())
		}
		return Response{Code: code, Error: err.Error(), Session: req.Session}, tctx
	}
	s.m.jobsAdmitted.Inc()
	resp := <-j.resp
	return resp, j.tctx
}

// shardOf maps a session id onto its shard.
func shardOf(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// Draining reports whether Shutdown has begun — the readiness signal
// behind a drain-aware /readyz.
func (s *Server) Draining() bool { return s.draining.Load() }

// Sessions reports the live session count across all shards — the
// value behind the backfi_serve_sessions gauge, readable without a
// registry.
func (s *Server) Sessions() int {
	var n int64
	for _, sh := range s.shards {
		n += sh.nsessions.Load()
	}
	return int(n)
}

// Evictions reports how many idle sessions the TTL sweeps have
// reclaimed since start.
func (s *Server) Evictions() int {
	var n int64
	for _, sh := range s.shards {
		n += sh.nevicted.Load()
	}
	return int(n)
}

// Shutdown drains the daemon gracefully: stop accepting connections,
// reject new jobs with ErrDraining, let every admitted job finish (or
// hit its deadline), then close remaining connections. The context —
// capped by cfg.DrainTimeout — bounds the wait; on expiry the error is
// returned and remaining work is abandoned. Safe to call once; later
// calls return nil without acting.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdown.Do(func() {
		ctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		for _, sh := range s.shards {
			sh.mu.Lock()
			sh.draining = true
			close(sh.q)
			sh.mu.Unlock()
		}
		err = waitCtx(ctx, &s.shardWg)
		// Every admitted job has answered (or drain timed out); drop
		// the connections so handlers unblock from their reads.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		if werr := waitCtx(ctx, &s.connWg); err == nil {
			err = werr
		}
	})
	return err
}

// Kill hard-stops the daemon: the listener and every live connection
// close immediately, nothing drains, and clients see broken
// connections mid-stream — the crash the cluster chaos harness needs
// to exercise failover, as opposed to Shutdown's graceful typed
// ErrDraining rejections (which a well-behaved client would never
// treat as a node failure). Queued jobs are abandoned; shard workers
// exit after flushing their queues to nowhere. Shares Shutdown's
// once-guard, so Kill then Shutdown (or vice versa) acts once.
func (s *Server) Kill() {
	s.shutdown.Do(func() {
		s.draining.Store(true)
		if s.ln != nil {
			s.ln.Close()
		}
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		for _, sh := range s.shards {
			sh.mu.Lock()
			sh.draining = true
			close(sh.q)
			sh.mu.Unlock()
		}
	})
}

// waitCtx waits for wg, bounded by ctx.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
