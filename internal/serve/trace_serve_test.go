package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"backfi/internal/obs"
)

// TestBinaryRequestLegacyBytes hand-pins the untraced binary request
// layout byte for byte: the trace extension must be invisible when no
// trace rides the request, so pre-trace peers interoperate with zero
// wire change. A traced request is exactly the legacy bytes plus the
// 9-byte extension block.
func TestBinaryRequestLegacyBytes(t *testing.T) {
	req := Request{Op: OpDecode, Session: "tag-7", Payload: []byte{0xAA, 0xBB}, TimeoutMs: 300}
	got, err := appendRequestBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		binKindDecode,
		5, 't', 'a', 'g', '-', '7', // uvarint session len | session
		2, 0xAA, 0xBB, // uvarint payload len | payload
		0xAC, 0x02, // uvarint 300
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced request bytes changed:\n got % x\nwant % x", got, want)
	}

	req.Trace = 0x1122334455667788
	traced, err := appendRequestBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	wantExt := append(append([]byte{}, want...),
		binExtTrace,
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // u64 LE id
	)
	if !bytes.Equal(traced, wantExt) {
		t.Fatalf("traced request bytes:\n got % x\nwant % x", traced, wantExt)
	}
}

func TestBinaryRequestTraceRoundTrip(t *testing.T) {
	var names internTable
	for _, trace := range []uint64{0, 1, 0xDEADBEEFCAFE} {
		req := Request{Op: OpDecode, Session: "s", Payload: []byte("p"), Trace: trace}
		body, err := appendRequestBinary(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		// got starts dirty: the decoder must reset Trace on untraced
		// frames (the struct is reused across a connection's frames).
		got := Request{Trace: 0xFFFF}
		if err := decodeRequestBinary(body, &got, &names); err != nil {
			t.Fatalf("trace=%x: %v", trace, err)
		}
		if got.Trace != trace {
			t.Fatalf("trace round trip: got %x, want %x", got.Trace, trace)
		}
	}
}

func TestBinaryRequestExtensionMalformed(t *testing.T) {
	var names internTable
	base, err := appendRequestBinary(nil, &Request{Op: OpDecode, Session: "s", Payload: []byte("p")})
	if err != nil {
		t.Fatal(err)
	}
	var req Request
	// Unknown extension flag bits must be rejected, not skipped.
	if err := decodeRequestBinary(append(append([]byte{}, base...), 0x02), &req, &names); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown ext flags: %v", err)
	}
	// Truncated trace id.
	if err := decodeRequestBinary(append(append([]byte{}, base...), binExtTrace, 1, 2, 3), &req, &names); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("truncated trace id: %v", err)
	}
	// Trailing junk after a complete extension.
	full := append(append([]byte{}, base...), binExtTrace)
	full = binary.LittleEndian.AppendUint64(full, 7)
	if err := decodeRequestBinary(append(full, 0xEE), &req, &names); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("trailing bytes after extension: %v", err)
	}
	// The complete extension itself decodes.
	if err := decodeRequestBinary(full, &req, &names); err != nil || req.Trace != 7 {
		t.Fatalf("valid extension: err=%v trace=%x", err, req.Trace)
	}
}

// The zero-allocation steady-state contract extends to traced frames.
func TestBinaryCodecZeroAllocWithTrace(t *testing.T) {
	req := Request{Op: OpDecode, Session: "steady", Payload: bytes.Repeat([]byte{7}, 64), Trace: 0xABCDEF}
	body, err := appendRequestBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	var names internTable
	var dec Request
	if err := decodeRequestBinary(body, &dec, &names); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 1024)
	if n := testing.AllocsPerRun(200, func() { dst, _ = appendRequestBinary(dst[:0], &req) }); n != 0 {
		t.Errorf("encode traced request: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { _ = decodeRequestBinary(body, &dec, &names) }); n != 0 {
		t.Errorf("decode traced request: %v allocs/op, want 0", n)
	}
}

// TestProtocolDeterminismTracing pins the tentpole's central contract:
// a session's response stream is byte-identical with tracing disabled,
// fully enabled, or sampled — on either protocol, under 1 or 8 shards.
// Tracing observes; it must never feed back into decode results.
func TestProtocolDeterminismTracing(t *testing.T) {
	stream := func(shards int, proto string, tracer *obs.Tracer) []byte {
		srv := startCacheServer(t, Config{
			Shards: shards, SessionCache: true,
			Tracer: tracer,
			Flight: obs.NewFlightRecorder(0),
			SLO:    obs.NewSLO(obs.SLOConfig{}),
		})
		var out []byte
		for _, sess := range []string{"trc-a", "trc-b"} {
			c, err := DialClient(ClientConfig{Addr: srv.Addr(), Proto: proto, Tracer: tracer})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				resp, err := c.Decode(sess, bytes.Repeat([]byte{byte(i + 1)}, 24))
				if err != nil {
					t.Fatalf("%s frame %d: %v", proto, i, err)
				}
				b, err := json.Marshal(resp)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, b...)
				out = append(out, '\n')
			}
			c.Close()
		}
		return out
	}
	ref := stream(4, "json", nil)
	every := func(n int) *obs.Tracer {
		return obs.NewTracer(obs.TracerConfig{Seed: 7, SampleEvery: n})
	}
	for _, tc := range []struct {
		name   string
		shards int
		proto  string
		tracer *obs.Tracer
	}{
		{"json traced", 4, "json", every(1)},
		{"binary traced", 4, "binary", every(1)},
		{"binary sampled", 4, "binary", every(3)},
		{"json sampled", 4, "json", every(3)},
		{"shards=1 traced", 1, "binary", every(1)},
		{"shards=8 traced", 8, "binary", every(1)},
	} {
		got := stream(tc.shards, tc.proto, tc.tracer)
		if !bytes.Equal(got, ref) {
			t.Errorf("%s: response stream diverged from untraced reference", tc.name)
		}
		if _, spans, _ := tc.tracer.Stats(); spans == 0 {
			t.Errorf("%s: tracer recorded no spans — the variant did not actually trace", tc.name)
		}
	}
}

// TestEndToEndTraceSpans checks the full span picture of one traced
// frame: client and server share a tracer (as loadgen's self-serve mode
// does), so one trace id strings together the client send, the serve
// stages, and the decode pipeline stages.
func TestEndToEndTraceSpans(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerConfig{Seed: 3})
	srv := startCacheServer(t, Config{Shards: 1, SessionCache: true, Tracer: tracer})
	c, err := DialClient(ClientConfig{Addr: srv.Addr(), Proto: "binary", Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Decode("e2e", bytes.Repeat([]byte{1}, 24)); err != nil {
		t.Fatal(err)
	}
	wantID := obs.TraceID(3, "e2e", 0)
	byName := map[string]int{}
	for _, ev := range tracer.Events() {
		if ev.Trace != wantID {
			t.Fatalf("span %q carries trace %x, want %x", ev.Name, ev.Trace, wantID)
		}
		byName[ev.Name]++
		if ev.Dur < 0 {
			t.Fatalf("span %q has negative duration %d", ev.Name, ev.Dur)
		}
	}
	for _, name := range []string{
		"client_send", "conn_read", "queue_wait", "batch", "decode", "resp_write", // serve stages
		"channel_sim", "decode_total", // link stages
		"channel_estimate", "timing_search", "mrc", "viterbi", // pipeline stages
	} {
		if byName[name] == 0 {
			t.Errorf("no %q span recorded; got %v", name, byName)
		}
	}
	// The decode stage must nest inside the client send: every server
	// span starts at or after the client span does.
	evs := tracer.Events()
	var send, decode *obs.TraceEvent
	for i := range evs {
		switch evs[i].Name {
		case "client_send":
			send = &evs[i]
		case "decode":
			decode = &evs[i]
		}
	}
	if send == nil || decode == nil {
		t.Fatal("missing client_send or decode span")
	}
	if decode.Start < send.Start || decode.Start+decode.Dur > send.Start+send.Dur+int64(time.Millisecond) {
		t.Errorf("decode span [%d +%d] not inside client_send [%d +%d]",
			decode.Start, decode.Dur, send.Start, send.Dur)
	}
}

// TestClientFlightEvents pins satellite (b)'s client half: a killed
// connection must leave a conn_broken event, and the next healed call a
// matching redial event.
func TestClientFlightEvents(t *testing.T) {
	flight := obs.NewFlightRecorder(0)
	srv := startCacheServer(t, Config{Shards: 1, SessionCache: true})
	c, err := DialClient(ClientConfig{
		Addr: srv.Addr(), Proto: "binary",
		MaxRedials: 3, RedialBase: time.Millisecond,
		Flight: flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Decode("fl", bytes.Repeat([]byte{1}, 24)); err != nil {
		t.Fatal(err)
	}
	const kills = 3
	for k := 0; k < kills; k++ {
		c.BreakConn()
		if _, err := c.Decode("fl", bytes.Repeat([]byte{2}, 24)); err != nil {
			t.Fatalf("kill %d: decode after break: %v", k, err)
		}
	}
	if n := flight.Count(obs.FlightConnBroken); n != kills {
		t.Errorf("conn_broken events = %d, want %d", n, kills)
	}
	if n := flight.Count(obs.FlightRedial); n != kills {
		t.Errorf("redial events = %d, want %d", n, kills)
	}
	// Redial events name the session whose call healed the connection.
	for _, ev := range flight.Events() {
		if ev.Kind == obs.FlightRedial && ev.Session != "fl" {
			t.Errorf("redial event names session %q, want fl", ev.Session)
		}
	}
}

// TestBinaryRequestLegacyBytesMultiDecode extends the byte-for-byte
// pin to mdecode: an untraced multi-decode request must carry no trace
// extension and stay byte-identical to the pre-sampling layout, so
// fixing the head-sampling gap (mdecode now samples like decode) is
// invisible on the wire when tracing is off.
func TestBinaryRequestLegacyBytesMultiDecode(t *testing.T) {
	req := Request{Op: OpMultiDecode, Session: "g-1",
		Payloads: [][]byte{{0xAA, 0xBB}, {0xCC}}, TimeoutMs: 300}
	got, err := appendRequestBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		binKindMultiDecode,
		3, 'g', '-', '1', // uvarint session len | session
		2,             // uvarint payload count
		2, 0xAA, 0xBB, // payload 0
		1, 0xCC, // payload 1
		0xAC, 0x02, // uvarint 300
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced mdecode bytes changed:\n got % x\nwant % x", got, want)
	}
	req.Trace = 0x1122334455667788
	traced, err := appendRequestBinary(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	wantExt := append(append([]byte{}, want...),
		binExtTrace,
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
	)
	if !bytes.Equal(traced, wantExt) {
		t.Fatalf("traced mdecode bytes:\n got % x\nwant % x", traced, wantExt)
	}
}

// TestMultiDecodeHeadSampling pins the satellite fix: the client
// head-samples mdecode frames exactly like decode frames — same
// per-session index, same deterministic every-Nth decision — so a
// multi-tag session's traces line up with a single-tag session's.
// Before the fix only OpDecode advanced the index and mdecode frames
// never carried a trace.
func TestMultiDecodeHeadSampling(t *testing.T) {
	t.Run("every-frame", func(t *testing.T) {
		tracer := obs.NewTracer(obs.TracerConfig{Seed: 5, SampleEvery: 1})
		srv := startCacheServer(t, Config{Shards: 1, Tracer: tracer})
		c, err := DialClient(ClientConfig{Addr: srv.Addr(), Proto: "binary", Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		group := [][]byte{bytes.Repeat([]byte{1}, 24), bytes.Repeat([]byte{2}, 24)}
		if _, err := c.MultiDecode("grp", group); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decode("grp", bytes.Repeat([]byte{3}, 24)); err != nil {
			t.Fatal(err)
		}
		// mdecode consumed index 0, so the plain decode is index 1: the
		// two ops share one per-session counter.
		ids := map[uint64]bool{}
		for _, ev := range tracer.Events() {
			if ev.Name == "client_send" {
				ids[ev.Trace] = true
			}
		}
		want0, want1 := obs.TraceID(5, "grp", 0), obs.TraceID(5, "grp", 1)
		if !ids[want0] || !ids[want1] || len(ids) != 2 {
			t.Fatalf("client_send trace ids = %v, want {%x, %x}", ids, want0, want1)
		}
	})
	t.Run("sampled", func(t *testing.T) {
		tracer := obs.NewTracer(obs.TracerConfig{Seed: 5, SampleEvery: 3})
		srv := startCacheServer(t, Config{Shards: 1, Tracer: tracer})
		c, err := DialClient(ClientConfig{Addr: srv.Addr(), Proto: "binary", Tracer: tracer})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		payload := bytes.Repeat([]byte{9}, 24)
		for i := 0; i < 6; i++ { // alternate ops; indices 0..5
			if i%2 == 0 {
				if _, err := c.MultiDecode("mix", [][]byte{payload}); err != nil {
					t.Fatal(err)
				}
			} else if _, err := c.Decode("mix", payload); err != nil {
				t.Fatal(err)
			}
		}
		// The sampling decision is a pure function of (seed, session,
		// index): index i samples iff TraceID(seed, session, i) is 0 mod
		// SampleEvery. Both ops drew from one shared index sequence, so
		// the observed client_send ids must be exactly the sampled subset
		// of indices 0..5, each traced once — an index skipped or
		// double-counted by either op would shift the whole set.
		want := map[uint64]int{}
		for i := 0; i < 6; i++ {
			if id := obs.TraceID(5, "mix", i); id%3 == 0 {
				want[id] = 1
			}
		}
		ids := map[uint64]int{}
		for _, ev := range tracer.Events() {
			if ev.Name == "client_send" {
				ids[ev.Trace]++
			}
		}
		if !reflect.DeepEqual(ids, want) {
			t.Fatalf("sampled client_send trace ids = %v, want %v", ids, want)
		}
	})
}
