package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"backfi/internal/core"
	"backfi/internal/obs"
)

// slotPayloads is the deterministic multi-tag workload: slot i of a
// session carries one fixed payload per group member.
func slotPayloads(session string, slot, tags int) [][]byte {
	out := make([][]byte, tags)
	for k := range out {
		p := []byte(fmt.Sprintf("%s/slot-%02d/tag-%d/", session, slot, k))
		for len(p) < 24 {
			p = append(p, byte(slot))
		}
		out[k] = p[:24]
	}
	return out
}

// TestMultiTagCollisionMatrix is the §5i serving acceptance matrix:
// impostor {off,on} × shards {1,8} × protocol {json,binary}. In every
// cell the joint decoder must deliver both colliding tags of every
// slot, and the response streams — multi-tag per impostor setting, and
// the single-tag control session across ALL cells — must be
// byte-identical: shard count, wire protocol, and multi-tag impostors
// never perturb a session's decode stream.
func TestMultiTagCollisionMatrix(t *testing.T) {
	link := core.DefaultLinkConfig(1)
	link.Seed = 1001
	const slots = 2
	type cell struct {
		impostor bool
		shards   int
		proto    string
	}
	var cells []cell
	for _, imp := range []bool{false, true} {
		for _, shards := range []int{1, 8} {
			for _, proto := range []string{"json", "binary"} {
				cells = append(cells, cell{imp, shards, proto})
			}
		}
	}
	multi := map[bool]map[string][]byte{false: {}, true: {}}
	single := map[string][]byte{}
	for _, c := range cells {
		key := fmt.Sprintf("shards=%d/proto=%s", c.shards, c.proto)
		ckey := fmt.Sprintf("impostor=%v/%s", c.impostor, key)
		s := startServer(t, Config{
			Link:             link,
			Shards:           c.shards,
			MultiTagImpostor: c.impostor,
			Obs:              obs.NewRegistry(), // metrics must not perturb results
		})
		cl, err := DialClient(ClientConfig{Addr: s.Addr(), Proto: c.proto})
		if err != nil {
			t.Fatal(err)
		}
		var mstream, sstream []Response
		for i := 0; i < slots; i++ {
			resp, err := cl.MultiDecode("group-a", slotPayloads("group-a", i, 2))
			if err != nil {
				t.Fatalf("%s slot %d: %v", ckey, i, err)
			}
			if !resp.Delivered || len(resp.Tags) != 2 {
				t.Fatalf("%s slot %d: delivered=%v tags=%+v", ckey, i, resp.Delivered, resp.Tags)
			}
			for k, tr := range resp.Tags {
				if !tr.Delivered || !tr.PayloadOK || !tr.Woke {
					t.Fatalf("%s slot %d tag %d: %+v", ckey, i, k, tr)
				}
			}
			mstream = append(mstream, *resp)
			// The single-tag control rides the same server.
			sresp, err := cl.Decode("solo", sessionPayload("solo", i))
			if err != nil {
				t.Fatalf("%s solo frame %d: %v", ckey, i, err)
			}
			sstream = append(sstream, *sresp)
		}
		mstats, err := cl.Stats("group-a")
		if err != nil {
			t.Fatal(err)
		}
		if mstats.FramesOffered != 2*slots || mstats.PacketsSent != slots {
			t.Fatalf("%s: synthesized multi stats %+v", ckey, mstats)
		}
		cl.Close()
		s.Shutdown(context.Background())
		mb, _ := json.Marshal(mstream)
		sb, _ := json.Marshal(sstream)
		multi[c.impostor][key] = mb
		single[ckey] = sb
	}
	for _, imp := range []bool{false, true} {
		var ref []byte
		for key, b := range multi[imp] {
			if ref == nil {
				ref = b
				continue
			}
			if string(b) != string(ref) {
				t.Fatalf("impostor=%v: multi-tag stream diverged at %s:\n%s\nvs\n%s", imp, key, b, ref)
			}
		}
	}
	var ref []byte
	for key, b := range single {
		if ref == nil {
			ref = b
			continue
		}
		if string(b) != string(ref) {
			t.Fatalf("single-tag stream diverged at %s:\n%s\nvs\n%s", key, b, ref)
		}
	}
}

// TestMultiTagGroupSizeFixed pins the session contract: the first
// mdecode fixes the group size, later slots must match it, and bounds
// are enforced at admission.
func TestMultiTagGroupSizeFixed(t *testing.T) {
	s := startServer(t, Config{Shards: 1, MultiTagMax: 4})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.MultiDecode("g", slotPayloads("g", 0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MultiDecode("g", slotPayloads("g", 1, 3)); err == nil {
		t.Fatal("group-size change accepted")
	}
	if _, err := cl.MultiDecode("g2", slotPayloads("g2", 0, 5)); err == nil {
		t.Fatal("over-bound group accepted")
	}
	if _, err := cl.MultiDecode("g3", [][]byte{[]byte("x"), nil}); err == nil {
		t.Fatal("empty payload in group accepted")
	}
}

// TestSessionEviction churns distinct ids through a TTL-armed server
// and checks the reclamation contract: shard maps shrink back, the
// session gauge decrements, the eviction counter and flight events
// record each reclaim, and a re-used id reopens the same deterministic
// stream from frame zero.
func TestSessionEviction(t *testing.T) {
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(0)
	s := startServer(t, Config{
		Shards:     4,
		SessionTTL: 50 * time.Millisecond,
		Obs:        reg,
		Flight:     flight,
	})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A decode before churn, to replay after eviction.
	first, err := cl.Decode("revenant", sessionPayload("revenant", 0))
	if err != nil {
		t.Fatal(err)
	}

	const churn = 48
	for i := 0; i < churn; i++ {
		if _, err := cl.Stats(fmt.Sprintf("churn-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Sessions(); got == 0 {
		t.Fatal("no live sessions after churn")
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("%d sessions still live after TTL", got)
	}
	if got, want := s.Evictions(), churn+1; got < want {
		t.Fatalf("evictions = %d, want >= %d", got, want)
	}
	if g := reg.Gauge(obs.MetricServeSessions, "Live reader sessions.").Value(); g != 0 {
		t.Fatalf("session gauge = %v after full eviction", g)
	}
	var evicted int
	for _, e := range flight.Events() {
		if e.Kind == obs.FlightSessionEvict {
			evicted++
		}
	}
	if evicted < churn {
		t.Fatalf("flight recorded %d evictions, want >= %d", evicted, churn)
	}

	// The evicted id rebuilds from its seed: same first frame, Seq 1.
	again, err := cl.Decode("revenant", sessionPayload("revenant", 0))
	if err != nil {
		t.Fatal(err)
	}
	if again.Seq != 1 || again.Delivered != first.Delivered || again.SNRdB != first.SNRdB {
		t.Fatalf("re-opened session diverged: first %+v, again %+v", first, again)
	}
}
