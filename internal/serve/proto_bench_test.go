package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"backfi/internal/core"
)

// Benchmark fixtures: a representative decode request and its decode
// response, the frames that dominate a serving run.
func benchRequest() Request {
	return Request{Op: OpDecode, Session: "bench-session-007", Payload: bytes.Repeat([]byte{0x5A}, 24)}
}

func benchResponse() Response {
	return Response{OK: true, Code: CodeOK, Session: "bench-session-007", Seq: 1234,
		Delivered: true, PayloadOK: true, Attempts: 1, SNRdB: 19.75}
}

func BenchmarkEncodeRequest(b *testing.B) {
	req := benchRequest()
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		dst := make([]byte, 0, 256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if dst, err = appendRequestBinary(dst[:0], &req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeRequest(b *testing.B) {
	req := benchRequest()
	jsonBody, err := json.Marshal(&req)
	if err != nil {
		b.Fatal(err)
	}
	binBody, err := appendRequestBinary(nil, &req)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out Request
			if err := json.Unmarshal(jsonBody, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		var out Request
		var names internTable
		if err := decodeRequestBinary(binBody, &out, &names); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := decodeRequestBinary(binBody, &out, &names); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEncodeResponse(b *testing.B) {
	resp := benchResponse()
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(&resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		dst := make([]byte, 0, 256)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if dst, err = appendResponseBinary(dst[:0], &resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeResponse(b *testing.B) {
	resp := benchResponse()
	jsonBody, err := json.Marshal(&resp)
	if err != nil {
		b.Fatal(err)
	}
	binBody, err := appendResponseBinary(nil, &resp)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out Response
			if err := json.Unmarshal(jsonBody, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		var out Response
		var names internTable
		if err := decodeResponseBinary(binBody, &out, &names, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := decodeResponseBinary(binBody, &out, &names, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeRoundTrip measures one full client→daemon→client
// decode exchange over loopback per protocol, with the session cache
// on (the serving configuration the binary protocol ships with).
func BenchmarkServeRoundTrip(b *testing.B) {
	for _, proto := range []string{"json", "binary"} {
		b.Run(proto, func(b *testing.B) {
			link := core.DefaultLinkConfig(1)
			link.Seed = 11
			srv, err := NewServer(Config{Addr: "localhost:0", Link: link, SessionCache: true})
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Shutdown(benchCtx(b))
			c, err := DialClient(ClientConfig{Addr: srv.Addr(), Proto: proto})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := bytes.Repeat([]byte{3}, 24)
			if _, err := c.Decode("bench", payload); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode("bench", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	b.Cleanup(cancel)
	return ctx
}
