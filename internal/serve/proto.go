// Package serve turns the repository's one-shot link simulator into
// the long-running reader service the paper describes (Sec. 1, 5): a
// BackFi AP is not a lab harness that runs one sweep and exits — it
// decodes many tag uplinks at WiFi rates, continuously, while serving
// its normal traffic. The daemon accepts decode jobs over a simple
// length-prefixed TCP protocol, shards session state by session id
// across a fixed worker pool, batches queued jobs into the
// deterministic parallel engine for the DSP hot path, and applies
// production serving discipline: bounded queues with explicit typed
// backpressure, per-job deadlines, graceful drain on shutdown, and
// panic isolation per connection. Zero dependencies, matching
// internal/obs. See DESIGN.md §5e for the wire protocol, sharding and
// determinism contract.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Wire format: every message is a frame — a 4-byte big-endian length
// prefix followed by that many bytes of JSON. JSON keeps the protocol
// inspectable with nc/jq and zero-dependency; the length prefix keeps
// framing trivial and lets the server bound memory per message.
const (
	// MaxFrameBytes bounds one frame's JSON body. Requests beyond it
	// are rejected before allocation; the bound dwarfs any real decode
	// job (tag payloads are tens to hundreds of bytes).
	MaxFrameBytes = 1 << 20
)

// Request operations.
const (
	// OpDecode submits one application frame for a session: the daemon
	// runs the full ARQ exchange on that session's link and reports the
	// outcome.
	OpDecode = "decode"
	// OpMultiDecode submits one payload per member of a session's
	// multi-tag group: the daemon lights the whole group with one
	// excitation and jointly decodes the colliding reflections
	// (DESIGN.md §5i). The group size is fixed by the session's first
	// mdecode (len(payloads)); later jobs must match it.
	OpMultiDecode = "mdecode"
	// OpStats returns a session's accumulated SessionStats. It routes
	// through the session's shard queue like a decode, so it observes a
	// consistent snapshot ordered against the session's decodes.
	OpStats = "stats"
	// OpPing is a connection liveness check answered inline.
	OpPing = "ping"
	// OpHandoff installs a session snapshot taken on another reader
	// node (DESIGN.md §5j): the daemon builds a fresh migratable
	// session, replays the scripted fault timeline up to the snapshot's
	// frame count, restores link/controller/watchdog state, and the
	// session's decode stream continues byte-identically from where the
	// origin node left off. Requires Config.Handoff on the server.
	OpHandoff = "handoff"
)

// Response codes. CodeOK accompanies OK=true; every other code is a
// typed rejection or failure mapped to the Err* sentinels below.
const (
	CodeOK         = "ok"
	CodeQueueFull  = "queue_full"
	CodeDraining   = "draining"
	CodeDeadline   = "deadline_exceeded"
	CodeBadRequest = "bad_request"
	CodeError      = "error"
	// CodeTagDark is the energy-aware scheduler's typed backpressure
	// (DESIGN.md §5k): the session's tag has run its supercap below the
	// wake threshold and the poll was answered without spending a
	// decode. Distinct from CodeError — the service is healthy and the
	// session's decode stream is untouched; the tag just has no energy.
	// The client's circuit breaker deliberately does not count it as a
	// hard failure.
	CodeTagDark = "tag_dark"
)

// Typed serving errors. The backpressure contract: a full shard queue
// rejects immediately with ErrQueueFull — it never blocks the
// connection and never panics — and a draining server rejects new work
// with ErrDraining while completing what it already admitted. Check
// with errors.Is on the client side (Response.Err returns these).
var (
	ErrQueueFull  = errors.New("serve: shard queue full")
	ErrDraining   = errors.New("serve: server draining")
	ErrDeadline   = errors.New("serve: job deadline exceeded")
	ErrBadRequest = errors.New("serve: bad request")
	ErrTagDark    = errors.New("serve: tag dark — supercap below wake threshold")
)

// Request is one client message.
type Request struct {
	// Op is the operation: OpDecode, OpStats, or OpPing.
	Op string `json:"op"`
	// Session names the long-lived session this job belongs to. A
	// session id always hashes to the same shard, and its seed stream
	// derives from the id alone, so a session's decode results are
	// byte-identical regardless of shard count or interleaving with
	// other sessions.
	Session string `json:"session,omitempty"`
	// Payload is the application frame to deliver (OpDecode).
	Payload []byte `json:"payload,omitempty"`
	// Payloads carries one frame per multi-tag group member
	// (OpMultiDecode): Payloads[k] is what polled tag k backscatters
	// into the shared slot.
	Payloads [][]byte `json:"payloads,omitempty"`
	// TimeoutMs overrides the server's default per-job deadline,
	// measured from admission. 0 keeps the server default.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Trace propagates the client's per-frame trace id (DESIGN.md
	// §5h): when non-zero, the server joins its decode-stage spans to
	// this id instead of making its own sampling decision. Zero (the
	// untraced case) keeps the wire bytes identical to pre-trace
	// clients on both protocols — omitempty here, an optional trailing
	// extension block in the binary framing. Responses deliberately
	// carry no trace field: the response stream stays byte-identical
	// with tracing off, on, or sampled.
	Trace uint64 `json:"trace,omitempty"`
	// Handoff carries the session snapshot to install (OpHandoff).
	Handoff *HandoffState `json:"handoff,omitempty"`
}

// Response is one server reply. It deliberately carries no wall-clock
// quantities: a session's response stream must be byte-identical run
// to run (the §5e determinism contract), so latency is the client's to
// measure.
type Response struct {
	OK   bool   `json:"ok"`
	Code string `json:"code"`
	// Error is the human-readable failure detail for non-OK codes.
	Error string `json:"error,omitempty"`
	// Session / Seq echo the job's session and its 1-based position in
	// that session's decode order.
	Session string `json:"session,omitempty"`
	Seq     int    `json:"seq,omitempty"`

	// Decode outcome (OpDecode): Delivered is the end-to-end ARQ
	// verdict, PayloadOK whether the reader decoded the last attempt
	// (they disagree exactly when the final attempt's ACK was lost).
	Delivered bool `json:"delivered,omitempty"`
	PayloadOK bool `json:"payload_ok,omitempty"`
	// Attempts / NoWakes / ACKsDropped count this frame's air
	// transmissions, wake misses, and lost ACKs.
	Attempts    int `json:"attempts,omitempty"`
	NoWakes     int `json:"no_wakes,omitempty"`
	ACKsDropped int `json:"acks_dropped,omitempty"`
	// SNRdB is the last attempt's measured post-MRC symbol SNR.
	SNRdB float64 `json:"snr_db,omitempty"`
	// Degraded reports that the SIC-health watchdog currently holds
	// this session in degraded mode (forced-robust configuration).
	// Absent unless the watchdog is enabled and tripped — legacy
	// response streams are byte-identical.
	Degraded bool `json:"degraded,omitempty"`

	// Stats is the session summary (OpStats).
	Stats *SessionStats `json:"stats,omitempty"`

	// Tags holds per-tag outcomes of a multi-tag slot (OpMultiDecode),
	// aligned with the request's Payloads. Absent on every other op, so
	// single-tag response streams are byte-identical to legacy servers.
	Tags []TagResult `json:"tags,omitempty"`

	// Handoff is the session's post-frame snapshot, attached to every
	// successful decode response when the server runs with
	// Config.Handoff. A client that keeps only the latest snapshot can
	// hand the session to any other reader node and resume its decode
	// stream byte-identically (DESIGN.md §5j). Absent unless handoff is
	// enabled, so legacy response streams are unchanged.
	Handoff *HandoffState `json:"handoff,omitempty"`
}

// HandoffVersion is the snapshot format version. A receiver rejects
// snapshots from a different version instead of guessing — the
// snapshot encodes RNG-stream positions, so a silent format skew would
// corrupt a decode stream rather than fail loudly.
const HandoffVersion = 1

// HandoffState is the complete portable state of one serving session
// (DESIGN.md §5j). It is deliberately tiny: migratable-mode sessions
// derive every stochastic draw from (session seed, attempt ordinal),
// so the snapshot needs only counters — no waveforms, no RNG innards,
// no tag configuration (the receiver re-derives the active config from
// the controller index, or from the degraded flag for fixed sessions).
type HandoffState struct {
	// Version is the snapshot format version (HandoffVersion).
	Version int `json:"v"`
	// Attempts is the link-level attempt ordinal: how many times the
	// session has keyed the channel. The single number that pins every
	// RNG stream's position.
	Attempts int `json:"attempts"`
	// Seq is the session's decode sequence number at snapshot time; the
	// receiver continues numbering from here so the merged response
	// stream has no duplicate or missing Seq.
	Seq int `json:"seq"`
	// TimelineCur is the session's fault-timeline cursor. The receiver
	// replays its own scripted timeline over the snapshot's frame count
	// and cross-checks the cursor — a mismatch means the two nodes run
	// different timelines and the fault stream would diverge.
	TimelineCur int `json:"timeline_cur,omitempty"`
	// Stats is the session's accumulated statistics.
	Stats SessionStats `json:"stats"`
	// Ctrl is the rate-adaptation controller state; present exactly
	// when the origin session was adaptive.
	Ctrl *CtrlState `json:"ctrl,omitempty"`
	// WDHot / WDCool / Degraded carry the SIC-health watchdog streaks
	// and mode.
	WDHot    int  `json:"wd_hot,omitempty"`
	WDCool   int  `json:"wd_cool,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
}

// Validate checks the snapshot's invariants that do not need a server
// configuration: version match and non-negative counters. The install
// path re-validates against the receiving server's ladder and timeline.
func (h *HandoffState) Validate() error {
	if h == nil {
		return fmt.Errorf("%w: handoff state missing", ErrBadRequest)
	}
	if h.Version != HandoffVersion {
		return fmt.Errorf("%w: handoff version %d (want %d)", ErrBadRequest, h.Version, HandoffVersion)
	}
	if h.Attempts < 0 || h.Seq < 0 || h.TimelineCur < 0 || h.WDHot < 0 || h.WDCool < 0 {
		return fmt.Errorf("%w: negative handoff counter", ErrBadRequest)
	}
	if h.Stats.FramesOffered < 0 || h.Seq > h.Stats.FramesOffered {
		return fmt.Errorf("%w: handoff seq %d exceeds frames offered %d", ErrBadRequest, h.Seq, h.Stats.FramesOffered)
	}
	return nil
}

// CtrlState mirrors adapt.State on the wire: the rate controller's
// complete decision state, so the receiving node's controller makes the
// same next decision the origin's would have.
type CtrlState struct {
	Index       int     `json:"idx"`
	Ceiling     int     `json:"ceiling"`
	Attempts    int     `json:"attempts,omitempty"`
	ConsecFail  int     `json:"consec_fail,omitempty"`
	ConsecGood  int     `json:"consec_good,omitempty"`
	SinceSwitch int     `json:"since_switch,omitempty"`
	EWMABER     float64 `json:"ewma_ber,omitempty"`
	EWMASet     bool    `json:"ewma_set,omitempty"`
	FloorDBm    float64 `json:"floor_dbm,omitempty"`
	FloorSet    bool    `json:"floor_set,omitempty"`
}

// TagResult is one group member's outcome within a jointly decoded
// slot.
type TagResult struct {
	// Delivered reports the member's payload round-tripped; PayloadOK
	// mirrors it for multi-tag slots (no per-member ARQ).
	Delivered bool `json:"delivered"`
	PayloadOK bool `json:"payload_ok"`
	// Woke reports the tag's wake-detector outcome for this slot.
	Woke bool `json:"woke"`
	// SNRdB is the member's post-MRC symbol SNR after the layers above
	// it were cancelled.
	SNRdB float64 `json:"snr_db"`
}

// SessionStats mirrors core.SessionStats on the wire.
type SessionStats struct {
	FramesOffered   int     `json:"frames_offered"`
	FramesDelivered int     `json:"frames_delivered"`
	PacketsSent     int     `json:"packets_sent"`
	PayloadBits     int     `json:"payload_bits"`
	AirtimeSec      float64 `json:"airtime_sec"`
	ACKsDropped     int     `json:"acks_dropped"`
	NoWakes         int     `json:"no_wakes"`
	// Robustness-era additions, all omitempty: a server running without
	// backoff, adaptation, or watchdog emits byte-identical stats.
	Backoffs       int     `json:"backoffs,omitempty"`
	BackoffSec     float64 `json:"backoff_sec,omitempty"`
	ConfigSwitches int     `json:"config_switches,omitempty"`
	// BitRateBps is the session's current tag bit rate. Reported only
	// when the serving configuration can change it (adaptation or
	// watchdog enabled); otherwise it is the static template rate the
	// client already knows.
	BitRateBps float64 `json:"bit_rate_bps,omitempty"`
}

// Err maps a response to its typed error: nil for OK responses, the
// Err* sentinels for typed rejections, and a generic error otherwise.
func (r *Response) Err() error {
	switch r.Code {
	case CodeOK:
		return nil
	case CodeQueueFull:
		return ErrQueueFull
	case CodeDraining:
		return ErrDraining
	case CodeDeadline:
		return ErrDeadline
	case CodeTagDark:
		return ErrTagDark
	case CodeBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, r.Error)
	default:
		return fmt.Errorf("serve: %s", r.Error)
	}
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: marshal frame: %w", err)
	}
	if len(body) > MaxFrameBytes {
		return fmt.Errorf("serve: frame of %d bytes exceeds cap %d", len(body), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame into v. Oversized frames
// fail with ErrBadRequest before any body allocation.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return fmt.Errorf("%w: frame of %d bytes exceeds cap %d", ErrBadRequest, n, MaxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}
