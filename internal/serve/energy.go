package serve

// Energy-aware poll scheduler (DESIGN.md §5k). With Config.Energy on,
// every single-tag session carries a deterministic supercap tank
// (internal/energy.Tank) seeded from the session seed, and the daemon
// gates each decode poll on the tank's state:
//
//   - LIVE: the poll proceeds exactly as before — the gate touches
//     nothing the decode path depends on — and the frame's transmit
//     energy (TxPowerW × airtime) is drained from the tank afterward.
//   - DARK/WAKING: the poll is answered CodeTagDark without advancing
//     the session: no RNG draw, no evolver step, no timeline advance,
//     no Seq increment, no watchdog feed, no SLO sample. When the tag
//     banks back above the wake threshold, the session resumes its ARQ
//     state byte-identically — the dark episode is invisible to the
//     decode stream.
//
// Time is virtual and poll-driven, matching the rest of the serving
// determinism contract: one live poll advances the tank one slot (the
// fixed packet cadence, core.MobilityPacketIntervalSec); a dark-streak
// poll fast-forwards the tank through the scheduler's whole backoff
// window, so the reader's truncated-exponential probe backoff
// (core.BackoffPolicy, virtual-time accounting) is also the time the
// tag spends banking. Everything the gate does is a pure function of
// (session seed, poll ordinal, decode outcomes), so dark episodes land
// on the same polls under any shard or worker count.

import (
	"fmt"

	"backfi/internal/core"
	"backfi/internal/energy"
	"backfi/internal/obs"
)

// livenessAlpha is the EWMA weight of one wake observation in the
// per-session liveness estimate (the probability that a poll finds the
// tag awake, reported as a per-shard mean on backfi_tag_liveness).
const livenessAlpha = 0.25

// DefaultEnergyTank is the serving tank template installed when
// Config.Energy is on and Config.EnergyTank is nil. It deliberately
// differs from energy.DefaultTankConfig: at the paper's 100 µW ambient
// harvest a tag spending ~1 nJ per served frame never goes dark (the
// sustainable-duty-cycle headroom is the paper's R2 result), so the
// serving preset scales the tank to the serving cadence — ~6 nJ banked
// per plentiful 5 ms slot against ~1–3 nJ drained per frame — which
// makes EnergySeverity sweep the full range from always-live (0) to
// hard duty-cycling (1). Harnesses that want scarcity to bite inside a
// short soak lower InitialJ on a copy (a partially banked cold start).
func DefaultEnergyTank() energy.TankConfig {
	return energy.TankConfig{
		CapacityJ:   40e-9,
		WakeJ:       20e-9,
		SleepJ:      4e-9,
		InitialJ:    40e-9,
		SlotSeconds: 5e-3,
		HarvestW:    1.2e-6,
		ScarceFrac:  0.02,
		LeakW:       2e-10,
	}
}

// DefaultEnergyBackoff is the dark-probe backoff installed when
// Config.Energy is on and Config.EnergyBackoff is zero: 20 ms doubling
// to a 2.56 s ceiling. A dark session is protected from the TTL sweep
// until its streak's delay reaches the ceiling (see evict), so
// harnesses asserting that guard derive the ceiling streak from this
// same policy rather than hard-coding it.
func DefaultEnergyBackoff() core.BackoffPolicy {
	return core.BackoffPolicy{BaseSec: 0.02, MaxSec: 2.56}
}

// newTank realizes one session's supercap at the serving template,
// seeded like the session itself so the harvest trace is a pure
// function of the session id.
func (s *Server) newTank(seedOffset int64) (*energy.Tank, error) {
	tc := DefaultEnergyTank()
	if s.cfg.EnergyTank != nil {
		tc = *s.cfg.EnergyTank
	}
	tc.Seed = s.cfg.Link.Seed + seedOffset
	tc.Severity = s.cfg.EnergySeverity
	return energy.NewTank(tc)
}

// energyGate advances the session's virtual energy clock and decides
// whether this poll may spend a decode. Returns (response, true) for a
// dark poll — the caller answers it and must not touch the session —
// or (zero, false) when the tag is awake. Runs inside the shard batch
// on the goroutine owning this session; it mutates only sessionState.
func (sh *shard) energyGate(st *sessionState, j *job) (Response, bool) {
	cfg := &sh.srv.cfg
	m := &sh.srv.m
	// Advance virtual time: one slot per live-tag poll; a dark-streak
	// poll covers its whole backoff window so the silence the scheduler
	// bought is also banking time. Stepping stops early at LIVE so the
	// wake lands on the exact slot the threshold was crossed — still
	// deterministic, because the stop condition is itself a pure
	// function of the harvest trace.
	slots := 1
	if st.darkStreak > 0 {
		d := cfg.EnergyBackoff.Delay(st.darkStreak)
		st.darkSec += d
		if n := int(d / st.tank.Config().SlotSeconds); n > slots {
			slots = n
		}
	}
	for i := 0; i < slots; i++ {
		if st.tank.StepSlot() == energy.TankLive && i > 0 {
			break
		}
	}
	live := st.tank.State() == energy.TankLive
	obsv := 0.0
	if live {
		obsv = 1
	}
	if !st.livenessSet {
		st.liveness, st.livenessSet = obsv, true
	} else {
		st.liveness += livenessAlpha * (obsv - st.liveness)
	}
	if live {
		if st.darkStreak > 0 {
			cfg.Flight.Record(obs.FlightTagWake, j.session,
				fmt.Sprintf("woke after %d dark polls (%.0f ms backed off, %.3g J banked)",
					st.darkStreak, st.darkSec*1e3, st.tank.ChargeJ()), j.tctx.ID())
			st.darkStreak = 0
		}
		return Response{}, false
	}
	// Dark: typed backpressure, session untouched. The first dark poll
	// of a streak observed the live→dark transition (reason asleep) and
	// leaves a flight event; later polls are the scheduler probing
	// through its backoff (reason backoff).
	if st.darkStreak == 0 {
		m.darkAsleep.Inc()
		cfg.Flight.Record(obs.FlightTagDark, j.session,
			fmt.Sprintf("supercap %.3g J below wake threshold %.3g J", st.tank.ChargeJ(), st.tank.Config().WakeJ), j.tctx.ID())
	} else {
		m.darkBackoff.Inc()
	}
	st.darkStreak++
	return Response{Code: CodeTagDark, Error: ErrTagDark.Error(), Session: j.session, Seq: st.seq}, true
}

// energyDrain charges the frame's transmit energy against the tank:
// the active configuration's total backscatter power (internal/energy
// EPB model) times the frame's airtime, covering every ARQ attempt the
// exchange made. A drain may flip the tank LIVE→DARK; the next poll's
// gate observes the transition.
func (sh *shard) energyDrain(st *sessionState, airtimeSec float64) {
	if airtimeSec <= 0 {
		return
	}
	tc := st.sess.Link().Tag.Cfg
	p, err := energy.TxPowerW(tc.Mod, tc.Coding, tc.SymbolRateHz)
	if err != nil {
		return
	}
	st.tank.Drain(p * airtimeSec)
}

// updateLiveness publishes the shard's mean liveness estimate. Runs on
// the shard worker goroutine between batches (single-writer, like the
// eviction sweep) and only in energy mode, so the O(sessions) walk is
// never paid on the default path.
func (sh *shard) updateLiveness() {
	var sum float64
	n := 0
	for _, st := range sh.sessions {
		if st.tank != nil && st.livenessSet {
			sum += st.liveness
			n++
		}
	}
	if n > 0 {
		sh.liveG.Set(sum / float64(n))
	}
}
