package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Op: OpDecode, Session: "alpha", Payload: []byte("reading-42"), TimeoutMs: 250}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Session != in.Session || out.TimeoutMs != in.TimeoutMs || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mutated request: %+v vs %+v", out, in)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// Read side: a header claiming more than the cap must fail before
	// the body is allocated or consumed.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	err := ReadFrame(bytes.NewReader(hdr[:]), &Request{})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversize read error = %v, want ErrBadRequest", err)
	}
	// Write side: a body beyond the cap must refuse to hit the wire.
	var buf bytes.Buffer
	big := Request{Op: OpDecode, Session: "x", Payload: bytes.Repeat([]byte{1}, MaxFrameBytes)}
	if err := WriteFrame(&buf, &big); err == nil {
		t.Fatal("oversize frame written")
	}
}

func TestFrameBadJSON(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if err := ReadFrame(&buf, &Request{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad JSON error = %v, want ErrBadRequest", err)
	}
}

func TestResponseErrMapping(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{CodeOK, nil},
		{CodeQueueFull, ErrQueueFull},
		{CodeDraining, ErrDraining},
		{CodeDeadline, ErrDeadline},
		{CodeBadRequest, ErrBadRequest},
	}
	for _, tc := range cases {
		err := (&Response{Code: tc.code, Error: "detail"}).Err()
		if tc.want == nil {
			if err != nil {
				t.Fatalf("code %q: err = %v, want nil", tc.code, err)
			}
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("code %q: err = %v, want %v", tc.code, err, tc.want)
		}
	}
	if err := (&Response{Code: CodeError, Error: "decode exploded"}).Err(); err == nil || !strings.Contains(err.Error(), "decode exploded") {
		t.Fatalf("generic error lost detail: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Shards: -1},
		{QueueDepth: -2},
		{BatchMax: -1},
		{MaxRetries: -3},
		{CoherenceRho: 1.5},
		{JobTimeout: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config passed validation", i)
		}
	}
	if err := (&Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate (defaults fill later): %v", err)
	}
}
