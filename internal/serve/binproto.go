package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Binary wire protocol (DESIGN.md §5g). A connection opts in by
// sending the 4-byte preamble "BFB"+version before its first frame;
// the server echoes its own preamble back (version negotiation) and
// the connection switches to binary frames in both directions. JSON
// frames always start with a 4-byte big-endian length whose high byte
// is 0x00 (MaxFrameBytes is 1 MiB), so the preamble's first byte 'B'
// (0x42) is unambiguous and legacy JSON clients keep working
// byte-identically with no negotiation round trip.
//
// Frame layout, both directions:
//
//	u32 LE body length | body
//
// Request body:
//
//	kind (1 byte: 0x01 decode, 0x02 stats, 0x03 ping, 0x04 mdecode,
//	      0x05 handoff)
//	uvarint session length | session bytes
//	uvarint payload length | payload bytes          (0x01/0x02/0x03)
//	  — or, for 0x04 —
//	uvarint payload count | per payload: uvarint length | bytes
//	  — or, for 0x05 —
//	handoff block (layout below)
//	uvarint timeout_ms
//	[extension, optional: flags (1 byte: bit0 trace) | u64 LE trace id]
//
// The extension block is emitted only when it carries something (a
// traced request), so untraced requests are byte-identical to the
// pre-extension wire format; decoders reject unknown extension flag
// bits.
//
// Response body:
//
//	kind (1 byte: 0x81)
//	flags (1 byte: bit0 ok, bit1 delivered, bit2 payload_ok,
//	       bit3 degraded, bit4 stats present, bit5 tags present,
//	       bit6 handoff present)
//	code (1 byte: enum below)
//	uvarint error length | error bytes
//	uvarint session length | session bytes
//	uvarint seq | attempts | no_wakes | acks_dropped
//	f64 LE snr_db
//	[stats, when bit4:
//	  uvarint frames_offered | frames_delivered | packets_sent |
//	          payload_bits | acks_dropped | no_wakes | backoffs |
//	          config_switches
//	  f64 LE airtime_sec | backoff_sec | bit_rate_bps]
//	[tags, when bit5:
//	  uvarint count | per tag: flags (1 byte: bit0 delivered,
//	  bit1 payload_ok, bit2 woke) | f64 LE snr_db]
//	[handoff block, when bit6]
//
// Handoff block (identical in 0x05 requests and bit6 responses):
//
//	uvarint version | attempts | seq | timeline_cur
//	uvarint frames_offered | frames_delivered | packets_sent |
//	        payload_bits | acks_dropped | no_wakes | backoffs |
//	        config_switches
//	f64 LE airtime_sec | backoff_sec | bit_rate_bps
//	flags (1 byte: bit0 degraded, bit1 ctrl present)
//	uvarint wd_hot | wd_cool
//	[ctrl, when bit1:
//	  uvarint idx | ceiling | attempts | consec_fail | consec_good |
//	          since_switch
//	  f64 LE ewma_ber | floor_dbm
//	  flags (1 byte: bit0 ewma_set, bit1 floor_set)]
//
// Every integer on the wire is a count (non-negative); the codec
// rejects anything else at encode time so the decoder never needs
// signed varints. The decoder only ever slices the frame body it was
// handed — declared lengths are checked against the remaining bytes
// before use, so malformed input returns a typed error (wrapping
// ErrBadRequest) and can neither panic nor over-read.
const binVersion = 1

// binPreamble is the negotiation preamble: magic "BFB" + version.
var binPreamble = [4]byte{'B', 'F', 'B', binVersion}

// Body kinds.
const (
	binKindDecode      = 0x01
	binKindStats       = 0x02
	binKindPing        = 0x03
	binKindMultiDecode = 0x04
	binKindHandoff     = 0x05
	binKindResp        = 0x81
)

// Response flag bits.
const (
	binFlagOK        = 1 << 0
	binFlagDelivered = 1 << 1
	binFlagPayloadOK = 1 << 2
	binFlagDegraded  = 1 << 3
	binFlagStats     = 1 << 4
	binFlagTags      = 1 << 5
	binFlagHandoff   = 1 << 6
)

// Handoff-block flag bits.
const (
	binHODegraded = 1 << 0
	binHOCtrl     = 1 << 1
)

// Controller sub-block flag bits inside the handoff block.
const (
	binHOEWMASet  = 1 << 0
	binHOFloorSet = 1 << 1
)

// Per-tag flag bits inside the response tags block.
const (
	binTagDelivered = 1 << 0
	binTagPayloadOK = 1 << 1
	binTagWoke      = 1 << 2
)

// Request extension flag bits (the optional trailing block).
const binExtTrace = 1 << 0

// Response code enum. The wire carries the byte; the structs keep the
// JSON string codes so both protocols share one Response type.
// Append-only: the decoder rejects bytes past the end of this table,
// so inserting (rather than appending) a code would shift every later
// byte and silently mistranslate frames across versions.
var binCodes = [...]string{CodeOK, CodeQueueFull, CodeDraining, CodeDeadline, CodeBadRequest, CodeError, CodeTagDark}

func codeToByte(code string) (byte, error) {
	for i, c := range binCodes {
		if c == code {
			return byte(i), nil
		}
	}
	return 0, fmt.Errorf("serve: response code %q has no binary encoding", code)
}

// Typed decode errors. Everything wraps ErrBadRequest so transports
// can answer a typed bad_request frame and fuzzing can assert the
// error contract.
var (
	errFrameTruncated = fmt.Errorf("%w: binary frame truncated", ErrBadRequest)
	errFrameKind      = fmt.Errorf("%w: unknown binary frame kind", ErrBadRequest)
	errFrameTrailing  = fmt.Errorf("%w: trailing bytes after binary frame", ErrBadRequest)
	errFrameVarint    = fmt.Errorf("%w: malformed varint", ErrBadRequest)
	errFrameRange     = fmt.Errorf("%w: varint field out of range", ErrBadRequest)
	errExtFlags       = fmt.Errorf("%w: unknown request extension flags", ErrBadRequest)
)

// Buffer-pool lifecycle: encoders build frames in []byte taken from
// this pool; the transport writes the frame and returns the buffer.
// Buffers that grew past maxPooledBuf are dropped instead of pooled so
// one oversized frame cannot pin memory for the process lifetime.
const maxPooledBuf = 64 << 10

var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// framePoolDisabled is a test hook: the determinism suite pins that
// pooled and unpooled buffers produce byte-identical streams.
var framePoolDisabled atomic.Bool

func getFrameBuf() *[]byte {
	if framePoolDisabled.Load() {
		b := make([]byte, 0, 512)
		return &b
	}
	return framePool.Get().(*[]byte)
}

func putFrameBuf(b *[]byte) {
	if framePoolDisabled.Load() || cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	framePool.Put(b)
}

// internTable deduplicates the session-id strings a connection keeps
// sending: the first occurrence allocates, every later frame reuses
// the same string (map lookup keyed by []byte conversion does not
// allocate). Bounded so a client cycling ids cannot grow it without
// limit — past the bound ids still decode, they just allocate.
const maxInterned = 4096

type internTable struct{ m map[string]string }

func (t *internTable) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(t.m) < maxInterned {
		if t.m == nil {
			t.m = make(map[string]string)
		}
		t.m[s] = s
	}
	return s
}

// appendCount appends a non-negative int as a uvarint.
func appendCount(dst []byte, v int) ([]byte, error) {
	if v < 0 {
		return dst, fmt.Errorf("serve: negative count %d has no binary encoding", v)
	}
	return binary.AppendUvarint(dst, uint64(v)), nil
}

// takeUvarint pops one uvarint bounded to non-negative int range.
func takeUvarint(b []byte) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if len(b) == 0 || n == 0 {
			return 0, b, errFrameTruncated
		}
		return 0, b, errFrameVarint
	}
	if v > math.MaxInt32 {
		return 0, b, errFrameRange
	}
	return int(v), b[n:], nil
}

// takeBytes pops one length-prefixed byte field. The returned slice
// aliases b — callers copy or intern before the frame buffer is
// reused.
func takeBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return nil, b, err
	}
	if n > len(rest) {
		return nil, b, errFrameTruncated
	}
	return rest[:n], rest[n:], nil
}

// takeF64 pops one little-endian float64.
func takeF64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, b, errFrameTruncated
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendHandoff appends one handoff block (layout in the package
// comment). Shared by 0x05 requests and bit6 responses so the snapshot
// round-trips bit-identically through either direction.
func appendHandoff(dst []byte, h *HandoffState) ([]byte, error) {
	var err error
	st := &h.Stats
	for _, v := range [...]int{h.Version, h.Attempts, h.Seq, h.TimelineCur,
		st.FramesOffered, st.FramesDelivered, st.PacketsSent, st.PayloadBits,
		st.ACKsDropped, st.NoWakes, st.Backoffs, st.ConfigSwitches} {
		if dst, err = appendCount(dst, v); err != nil {
			return dst, err
		}
	}
	dst = appendF64(dst, st.AirtimeSec)
	dst = appendF64(dst, st.BackoffSec)
	dst = appendF64(dst, st.BitRateBps)
	var flags byte
	if h.Degraded {
		flags |= binHODegraded
	}
	if h.Ctrl != nil {
		flags |= binHOCtrl
	}
	dst = append(dst, flags)
	for _, v := range [...]int{h.WDHot, h.WDCool} {
		if dst, err = appendCount(dst, v); err != nil {
			return dst, err
		}
	}
	if c := h.Ctrl; c != nil {
		for _, v := range [...]int{c.Index, c.Ceiling, c.Attempts,
			c.ConsecFail, c.ConsecGood, c.SinceSwitch} {
			if dst, err = appendCount(dst, v); err != nil {
				return dst, err
			}
		}
		dst = appendF64(dst, c.EWMABER)
		dst = appendF64(dst, c.FloorDBm)
		var cf byte
		if c.EWMASet {
			cf |= binHOEWMASet
		}
		if c.FloorSet {
			cf |= binHOFloorSet
		}
		dst = append(dst, cf)
	}
	return dst, nil
}

// takeHandoff pops one handoff block into a freshly allocated
// HandoffState. Handoff frames are rare (one per node migration, plus
// one per decode response in handoff mode), so this path trades the
// zero-alloc discipline of the steady-state codec for a self-contained
// snapshot the caller can retain past the frame buffer's reuse.
func takeHandoff(b []byte) (*HandoffState, []byte, error) {
	h := &HandoffState{}
	st := &h.Stats
	var err error
	for _, p := range [...]*int{&h.Version, &h.Attempts, &h.Seq, &h.TimelineCur,
		&st.FramesOffered, &st.FramesDelivered, &st.PacketsSent, &st.PayloadBits,
		&st.ACKsDropped, &st.NoWakes, &st.Backoffs, &st.ConfigSwitches} {
		if *p, b, err = takeUvarint(b); err != nil {
			return nil, b, err
		}
	}
	if st.AirtimeSec, b, err = takeF64(b); err != nil {
		return nil, b, err
	}
	if st.BackoffSec, b, err = takeF64(b); err != nil {
		return nil, b, err
	}
	if st.BitRateBps, b, err = takeF64(b); err != nil {
		return nil, b, err
	}
	if len(b) == 0 {
		return nil, b, errFrameTruncated
	}
	flags := b[0]
	b = b[1:]
	if flags&^byte(binHODegraded|binHOCtrl) != 0 {
		return nil, b, fmt.Errorf("%w: unknown handoff flag bits %#x", ErrBadRequest, flags)
	}
	h.Degraded = flags&binHODegraded != 0
	for _, p := range [...]*int{&h.WDHot, &h.WDCool} {
		if *p, b, err = takeUvarint(b); err != nil {
			return nil, b, err
		}
	}
	if flags&binHOCtrl != 0 {
		c := &CtrlState{}
		for _, p := range [...]*int{&c.Index, &c.Ceiling, &c.Attempts,
			&c.ConsecFail, &c.ConsecGood, &c.SinceSwitch} {
			if *p, b, err = takeUvarint(b); err != nil {
				return nil, b, err
			}
		}
		if c.EWMABER, b, err = takeF64(b); err != nil {
			return nil, b, err
		}
		if c.FloorDBm, b, err = takeF64(b); err != nil {
			return nil, b, err
		}
		if len(b) == 0 {
			return nil, b, errFrameTruncated
		}
		cf := b[0]
		b = b[1:]
		if cf&^byte(binHOEWMASet|binHOFloorSet) != 0 {
			return nil, b, fmt.Errorf("%w: unknown handoff ctrl flag bits %#x", ErrBadRequest, cf)
		}
		c.EWMASet = cf&binHOEWMASet != 0
		c.FloorSet = cf&binHOFloorSet != 0
		h.Ctrl = c
	}
	return h, b, nil
}

// appendRequestBinary appends req's binary body to dst. Allocation-
// free when dst has capacity.
func appendRequestBinary(dst []byte, req *Request) ([]byte, error) {
	var kind byte
	switch req.Op {
	case OpDecode:
		kind = binKindDecode
	case OpStats:
		kind = binKindStats
	case OpPing:
		kind = binKindPing
	case OpMultiDecode:
		kind = binKindMultiDecode
	case OpHandoff:
		kind = binKindHandoff
	default:
		return dst, fmt.Errorf("serve: op %q has no binary encoding", req.Op)
	}
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(req.Session)))
	dst = append(dst, req.Session...)
	if kind == binKindMultiDecode {
		dst = binary.AppendUvarint(dst, uint64(len(req.Payloads)))
		for _, p := range req.Payloads {
			dst = binary.AppendUvarint(dst, uint64(len(p)))
			dst = append(dst, p...)
		}
	} else if kind == binKindHandoff {
		if req.Handoff == nil {
			return dst, fmt.Errorf("serve: handoff request without handoff state")
		}
		var err error
		if dst, err = appendHandoff(dst, req.Handoff); err != nil {
			return dst, err
		}
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(req.Payload)))
		dst = append(dst, req.Payload...)
	}
	dst, err := appendCount(dst, req.TimeoutMs)
	if err != nil {
		return dst, err
	}
	// Optional trailing extension: emitted only for traced requests, so
	// untraced frames stay byte-identical to pre-trace clients (pinned
	// by TestBinaryRequestLegacyBytes).
	if req.Trace != 0 {
		dst = append(dst, binExtTrace)
		dst = binary.LittleEndian.AppendUint64(dst, req.Trace)
	}
	return dst, nil
}

// decodeRequestBinary decodes one request body into req, reusing
// req.Payload's capacity and interning the session id through names.
// Allocation-free once the session id is interned and the payload
// buffer has grown to steady state.
func decodeRequestBinary(body []byte, req *Request, names *internTable) error {
	if len(body) == 0 {
		return errFrameTruncated
	}
	switch body[0] {
	case binKindDecode:
		req.Op = OpDecode
	case binKindStats:
		req.Op = OpStats
	case binKindPing:
		req.Op = OpPing
	case binKindMultiDecode:
		req.Op = OpMultiDecode
	case binKindHandoff:
		req.Op = OpHandoff
	default:
		return errFrameKind
	}
	rest := body[1:]
	s, rest, err := takeBytes(rest)
	if err != nil {
		return err
	}
	req.Session = names.get(s)
	// The reused Request must not leak a stale snapshot into later
	// frames on this connection.
	req.Handoff = nil
	// Both payload shapes reset the other: the Request struct is reused
	// across a connection's frames, and a stale Payloads from an earlier
	// mdecode must not leak into a plain decode (and vice versa).
	if body[0] == binKindHandoff {
		req.Payload = req.Payload[:0]
		req.Payloads = req.Payloads[:0]
		if req.Handoff, rest, err = takeHandoff(rest); err != nil {
			return err
		}
	} else if body[0] == binKindMultiDecode {
		req.Payload = req.Payload[:0]
		var n int
		if n, rest, err = takeUvarint(rest); err != nil {
			return err
		}
		if n > len(rest) { // each payload takes >= 1 byte of frame
			return errFrameTruncated
		}
		if cap(req.Payloads) < n {
			req.Payloads = make([][]byte, n)
		}
		req.Payloads = req.Payloads[:n]
		for i := 0; i < n; i++ {
			var p []byte
			if p, rest, err = takeBytes(rest); err != nil {
				return err
			}
			req.Payloads[i] = append(req.Payloads[i][:0], p...)
		}
	} else {
		req.Payloads = req.Payloads[:0]
		var p []byte
		if p, rest, err = takeBytes(rest); err != nil {
			return err
		}
		req.Payload = append(req.Payload[:0], p...)
	}
	req.TimeoutMs, rest, err = takeUvarint(rest)
	if err != nil {
		return err
	}
	// Optional trailing extension block. Absent on legacy (and
	// untraced) frames; when present, the flags byte gates which fixed
	// fields follow, and unknown flag bits are rejected the same way
	// unknown response flags are — a future version's frames must not
	// be silently half-read.
	req.Trace = 0
	if len(rest) != 0 {
		ext := rest[0]
		rest = rest[1:]
		if ext&^byte(binExtTrace) != 0 {
			return errExtFlags
		}
		if ext&binExtTrace != 0 {
			if len(rest) < 8 {
				return errFrameTruncated
			}
			req.Trace = binary.LittleEndian.Uint64(rest)
			rest = rest[8:]
		}
		if len(rest) != 0 {
			return errFrameTrailing
		}
	}
	return nil
}

// appendResponseBinary appends resp's binary body to dst. Allocation-
// free when dst has capacity.
func appendResponseBinary(dst []byte, resp *Response) ([]byte, error) {
	var flags byte
	if resp.OK {
		flags |= binFlagOK
	}
	if resp.Delivered {
		flags |= binFlagDelivered
	}
	if resp.PayloadOK {
		flags |= binFlagPayloadOK
	}
	if resp.Degraded {
		flags |= binFlagDegraded
	}
	if resp.Stats != nil {
		flags |= binFlagStats
	}
	if len(resp.Tags) > 0 {
		flags |= binFlagTags
	}
	if resp.Handoff != nil {
		flags |= binFlagHandoff
	}
	code, err := codeToByte(resp.Code)
	if err != nil {
		return dst, err
	}
	dst = append(dst, binKindResp, flags, code)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Error)))
	dst = append(dst, resp.Error...)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Session)))
	dst = append(dst, resp.Session...)
	for _, v := range [...]int{resp.Seq, resp.Attempts, resp.NoWakes, resp.ACKsDropped} {
		if dst, err = appendCount(dst, v); err != nil {
			return dst, err
		}
	}
	dst = appendF64(dst, resp.SNRdB)
	if st := resp.Stats; st != nil {
		for _, v := range [...]int{st.FramesOffered, st.FramesDelivered, st.PacketsSent,
			st.PayloadBits, st.ACKsDropped, st.NoWakes, st.Backoffs, st.ConfigSwitches} {
			if dst, err = appendCount(dst, v); err != nil {
				return dst, err
			}
		}
		dst = appendF64(dst, st.AirtimeSec)
		dst = appendF64(dst, st.BackoffSec)
		dst = appendF64(dst, st.BitRateBps)
	}
	if len(resp.Tags) > 0 {
		dst = binary.AppendUvarint(dst, uint64(len(resp.Tags)))
		for _, t := range resp.Tags {
			var tf byte
			if t.Delivered {
				tf |= binTagDelivered
			}
			if t.PayloadOK {
				tf |= binTagPayloadOK
			}
			if t.Woke {
				tf |= binTagWoke
			}
			dst = append(dst, tf)
			dst = appendF64(dst, t.SNRdB)
		}
	}
	if resp.Handoff != nil {
		if dst, err = appendHandoff(dst, resp.Handoff); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// decodeResponseBinary decodes one response body into resp. When the
// frame carries stats they land in statsBuf (allocated if nil) and
// resp.Stats points there; otherwise resp.Stats is nil. Error strings
// on the happy path are empty and allocate nothing.
func decodeResponseBinary(body []byte, resp *Response, names *internTable, statsBuf *SessionStats) error {
	if len(body) < 3 {
		return errFrameTruncated
	}
	if body[0] != binKindResp {
		return errFrameKind
	}
	flags := body[1]
	if flags&^(binFlagOK|binFlagDelivered|binFlagPayloadOK|binFlagDegraded|binFlagStats|binFlagTags|binFlagHandoff) != 0 {
		// Flag bits this version does not define would be silently
		// dropped on re-encode; reject them so version skew surfaces as
		// a typed error instead of data loss.
		return fmt.Errorf("%w: unknown response flag bits %#x", ErrBadRequest, flags)
	}
	if int(body[2]) >= len(binCodes) {
		return fmt.Errorf("%w: unknown response code byte %d", ErrBadRequest, body[2])
	}
	resp.OK = flags&binFlagOK != 0
	resp.Delivered = flags&binFlagDelivered != 0
	resp.PayloadOK = flags&binFlagPayloadOK != 0
	resp.Degraded = flags&binFlagDegraded != 0
	resp.Code = binCodes[body[2]]
	rest := body[3:]
	e, rest, err := takeBytes(rest)
	if err != nil {
		return err
	}
	resp.Error = string(e) // empty on the happy path: no allocation
	s, rest, err := takeBytes(rest)
	if err != nil {
		return err
	}
	resp.Session = names.get(s)
	for _, p := range [...]*int{&resp.Seq, &resp.Attempts, &resp.NoWakes, &resp.ACKsDropped} {
		if *p, rest, err = takeUvarint(rest); err != nil {
			return err
		}
	}
	if resp.SNRdB, rest, err = takeF64(rest); err != nil {
		return err
	}
	resp.Stats = nil
	if flags&binFlagStats != 0 {
		if statsBuf == nil {
			statsBuf = &SessionStats{}
		}
		st := statsBuf
		for _, p := range [...]*int{&st.FramesOffered, &st.FramesDelivered, &st.PacketsSent,
			&st.PayloadBits, &st.ACKsDropped, &st.NoWakes, &st.Backoffs, &st.ConfigSwitches} {
			if *p, rest, err = takeUvarint(rest); err != nil {
				return err
			}
		}
		if st.AirtimeSec, rest, err = takeF64(rest); err != nil {
			return err
		}
		if st.BackoffSec, rest, err = takeF64(rest); err != nil {
			return err
		}
		if st.BitRateBps, rest, err = takeF64(rest); err != nil {
			return err
		}
		resp.Stats = st
	}
	resp.Tags = nil
	if flags&binFlagTags != 0 {
		var n int
		if n, rest, err = takeUvarint(rest); err != nil {
			return err
		}
		if n > len(rest)/9 { // each tag takes exactly 9 bytes
			return errFrameTruncated
		}
		resp.Tags = make([]TagResult, n)
		for i := range resp.Tags {
			tf := rest[0]
			rest = rest[1:]
			if tf&^byte(binTagDelivered|binTagPayloadOK|binTagWoke) != 0 {
				return fmt.Errorf("%w: unknown tag flag bits %#x", ErrBadRequest, tf)
			}
			t := &resp.Tags[i]
			t.Delivered = tf&binTagDelivered != 0
			t.PayloadOK = tf&binTagPayloadOK != 0
			t.Woke = tf&binTagWoke != 0
			if t.SNRdB, rest, err = takeF64(rest); err != nil {
				return err
			}
		}
	}
	resp.Handoff = nil
	if flags&binFlagHandoff != 0 {
		if resp.Handoff, rest, err = takeHandoff(rest); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return errFrameTrailing
	}
	return nil
}

// frameReader reads length-prefixed frame bodies into one reused
// buffer per connection. The retained buffer is bounded: a frame
// larger than maxRetainedBuf is read into a one-off allocation that
// is not kept, so a single huge frame cannot pin its memory for the
// connection lifetime. Partial TCP reads (down to one byte at a time)
// are handled by io.ReadFull on the buffered reader.
const maxRetainedBuf = 64 << 10

type frameReader struct {
	br  *bufio.Reader
	le  bool // binary frames are little-endian; JSON legacy big-endian
	buf []byte
}

// read returns the next frame body. The slice is valid until the next
// call.
func (fr *frameReader) read() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return nil, err
	}
	var n uint32
	if fr.le {
		n = binary.LittleEndian.Uint32(hdr[:])
	} else {
		n = binary.BigEndian.Uint32(hdr[:])
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds cap %d", ErrBadRequest, n, MaxFrameBytes)
	}
	body := fr.grab(int(n))
	if _, err := io.ReadFull(fr.br, body); err != nil {
		return nil, err
	}
	return body, nil
}

func (fr *frameReader) grab(n int) []byte {
	if n <= cap(fr.buf) {
		return fr.buf[:n]
	}
	b := make([]byte, n)
	if n <= maxRetainedBuf {
		fr.buf = b
	}
	return b
}

// appendFrameHeader finalizes a frame built with 4 reserved length
// bytes at the front: buf[0:4] gets the little-endian body length.
func finishBinaryFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}
