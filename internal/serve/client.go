package serve

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Client is a connection to a reader daemon. Calls are synchronous
// (one request in flight per client, matching the server's
// per-connection ordering that keeps a session's decode stream
// deterministic); open one client per concurrent session. Safe for
// concurrent use — calls serialize on an internal lock.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// do runs one request/response round trip.
func (c *Client) do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.bw, req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.br, &resp); err != nil {
		return nil, fmt.Errorf("serve: read response: %w", err)
	}
	return &resp, nil
}

// Decode submits one application frame for the session and returns the
// outcome. Typed rejections (ErrQueueFull, ErrDraining, ErrDeadline)
// come back as the error with the response still populated, so callers
// can distinguish backpressure from transport failure with errors.Is.
func (c *Client) Decode(session string, payload []byte) (*Response, error) {
	resp, err := c.do(&Request{Op: OpDecode, Session: session, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// DecodeTimeout is Decode with an explicit per-job deadline in
// milliseconds, overriding the server default.
func (c *Client) DecodeTimeout(session string, payload []byte, timeoutMs int) (*Response, error) {
	resp, err := c.do(&Request{Op: OpDecode, Session: session, Payload: payload, TimeoutMs: timeoutMs})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// Stats returns the session's accumulated statistics, ordered after
// every decode the session has answered.
func (c *Client) Stats(session string) (*SessionStats, error) {
	resp, err := c.do(&Request{Op: OpStats, Session: session})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("serve: stats response missing body")
	}
	return resp.Stats, nil
}

// Ping checks daemon liveness.
func (c *Client) Ping() error {
	resp, err := c.do(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }
