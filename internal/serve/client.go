package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"backfi/internal/obs"
)

// Client-side resilience errors. ErrConnBroken wraps the underlying
// transport failure (errors.Is still matches io.EOF etc. through it);
// it means the request may or may not have executed server-side, so a
// caller that retries gets at-least-once semantics — fine for decode
// jobs, whose per-session results are deterministic and idempotent to
// re-derive, but worth knowing. ErrBreakerOpen is a client-local fast
// failure: the session's circuit breaker is open and no bytes were
// sent. ErrClientClosed reports use after Close.
var (
	ErrConnBroken   = errors.New("serve: connection broken")
	ErrBreakerOpen  = errors.New("serve: circuit breaker open")
	ErrClientClosed = errors.New("serve: client closed")
)

// ClientConfig tunes the self-healing client. The zero value
// reproduces the original fragile client: no I/O deadlines, no
// reconnection, no circuit breaking.
type ClientConfig struct {
	// Addr is the daemon address (required for DialClient).
	Addr string
	// IOTimeout bounds each frame write and each frame read. 0 means no
	// deadline (a hung server hangs the call).
	IOTimeout time.Duration
	// MaxRedials is how many reconnect attempts one call may spend after
	// its connection breaks. 0 disables reconnection: a broken
	// connection fails the call with ErrConnBroken and stays broken.
	MaxRedials int
	// RedialBase / RedialMax shape the exponential redial backoff:
	// attempt k waits jitter(RedialBase·2^(k−1)) capped at RedialMax.
	// Defaults 50ms / 2s when zero.
	RedialBase time.Duration
	RedialMax  time.Duration
	// JitterSeed seeds the deterministic jitter stream (each delay is
	// drawn uniformly from [d/2, d]). Two clients with the same seed
	// back off identically — the chaos harness relies on this.
	JitterSeed int64
	// BreakerThreshold opens a session's circuit after that many
	// consecutive hard failures (transport breaks or CodeError
	// responses; typed backpressure does not count — the server is
	// healthy, just busy). 0 disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// allowing one half-open probe. Default 1s when zero.
	BreakerCooldown time.Duration
	// Proto selects the wire protocol: "" or "json" speaks the legacy
	// length-prefixed JSON frames; "binary" negotiates the zero-copy
	// binary framing (DESIGN.md §5g) on every (re)connect. The two
	// protocols carry the same Request/Response contents — a session's
	// decode stream is byte-identical under either.
	Proto string
	// Tracer enables client-side trace origination (DESIGN.md §5h):
	// each decode head-samples on (session id, per-session frame
	// index) — the same deterministic decision the server would make —
	// and propagates the sampled id in the request so the server joins
	// the trace instead of starting its own. Nil disables: requests
	// carry no trace id and the wire bytes are unchanged.
	Tracer *obs.Tracer
	// Flight receives the client's resilience events — broken
	// connections, successful redials, breaker transitions — so a
	// post-incident dump shows both sides of the story. Nil disables.
	Flight *obs.FlightRecorder
	// SessionTTL reclaims the client's own per-session bookkeeping
	// (breaker state, trace frame index, cached handoff snapshot) for
	// sessions idle longer than this, mirroring the server's
	// Config.SessionTTL policy: a client churning through many
	// short-lived session ids holds memory proportional to the live
	// set, not the lifetime id count. The sweep runs inline on calls
	// (no background goroutine), at most once per TTL/2. Eviction
	// forgets breaker state the same way the server forgets the
	// session — a re-used id starts with a closed breaker and frame
	// index zero. 0 disables (entries live for the client lifetime,
	// the pre-§5j behavior).
	SessionTTL time.Duration
}

func (c ClientConfig) redialBase() time.Duration {
	if c.RedialBase > 0 {
		return c.RedialBase
	}
	return 50 * time.Millisecond
}

func (c ClientConfig) redialMax() time.Duration {
	if c.RedialMax > 0 {
		return c.RedialMax
	}
	return 2 * time.Second
}

func (c ClientConfig) cooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return time.Second
}

// ClientHealth is a snapshot of the client's self-healing activity.
type ClientHealth struct {
	// Dials counts successful connection establishments (including the
	// first); Redials the successful re-establishments among them.
	Dials, Redials int
	// BrokenConns counts connections torn down after an I/O failure.
	BrokenConns int
	// BreakerOpens counts closed→open transitions across all sessions;
	// BreakerFastFails counts calls rejected locally by an open circuit.
	BreakerOpens, BreakerFastFails int
	// OpenBreakers is the number of sessions currently open or half-open.
	OpenBreakers int
}

// newJitter builds the deterministic backoff-jitter stream.
func newJitter(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// breaker is one session's circuit. States: closed (normal), open
// (fast-fail until cooldown elapses), half-open (one probe in flight).
type breaker struct {
	fails    int // consecutive hard failures while closed
	open     bool
	openedAt time.Time
	probing  bool // half-open probe admitted, awaiting verdict
}

// clientSession is the client's per-session bookkeeping: the circuit
// breaker, the trace head-sampling frame index, and the latest handoff
// snapshot a decode response carried. One map entry per tracked id,
// reclaimed by the SessionTTL sweep — keeping all three in one entry
// is what makes the idle-eviction policy cover all of them (the
// pre-§5j client kept breakers and frame indexes in two maps, neither
// of which ever shrank under session churn).
type clientSession struct {
	br       breaker
	frame    int // per-session decode/mdecode index for head sampling
	handoff  *HandoffState
	lastUsed time.Time // stamped only when SessionTTL > 0
}

// Client is a connection to a reader daemon. Calls are synchronous
// (one request in flight per client, matching the server's
// per-connection ordering that keeps a session's decode stream
// deterministic); open one client per concurrent session. Safe for
// concurrent use — calls serialize on an internal lock.
//
// With a non-zero ClientConfig the client self-heals: every frame
// write and read carries a deadline, a broken connection is redialed
// with seeded-jitter exponential backoff, and a per-session circuit
// breaker sheds calls to sessions that keep failing hard instead of
// hammering a struggling daemon.
type Client struct {
	mu     sync.Mutex
	cfg    ClientConfig
	conn   net.Conn // nil when broken
	br     *bufio.Reader
	bw     *bufio.Writer
	closed bool

	// Binary-protocol state: the frame reader with its bounded reused
	// body buffer, the reused encode buffer, and the session intern
	// table. All nil/zero on JSON connections.
	binary bool
	fr     *frameReader
	wbuf   []byte
	names  internTable

	jitter *rand.Rand // seeded; guarded by mu
	// sessions holds per-session state (breaker, trace index, cached
	// handoff), swept by the SessionTTL policy. Entries are created
	// only when a feature needs them (breaker, tracer, or a handoff
	// snapshot arriving), so a zero-config client stays map-empty.
	sessions  map[string]*clientSession
	lastSweep time.Time
	health    ClientHealth

	// Injectable for deterministic tests; real clock/sleep otherwise.
	now   func() time.Time
	sleep func(time.Duration)
	dial  func(addr string) (net.Conn, error)
}

// Dial connects to a daemon at addr with the zero (legacy, fragile)
// configuration. Use DialClient for the self-healing behavior.
func Dial(addr string) (*Client, error) {
	return DialClient(ClientConfig{Addr: addr})
}

// DialClient connects with an explicit configuration.
func DialClient(cfg ClientConfig) (*Client, error) {
	switch cfg.Proto {
	case "", "json", "binary":
	default:
		return nil, fmt.Errorf("serve: unknown protocol %q (want json or binary)", cfg.Proto)
	}
	c := &Client{
		cfg:      cfg,
		binary:   cfg.Proto == "binary",
		jitter:   newJitter(cfg.JitterSeed),
		sessions: make(map[string]*clientSession),
		now:      time.Now,
		sleep:    time.Sleep,
		dial:     func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect establishes the connection, negotiating the binary protocol
// when configured (the handshake reruns on every redial). Caller holds
// mu (or the client is not yet shared).
func (c *Client) connect() error {
	conn, err := c.dial(c.cfg.Addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	if c.binary {
		if err := c.negotiate(); err != nil {
			conn.Close()
			c.conn, c.br, c.bw = nil, nil, nil
			return err
		}
		c.fr = &frameReader{br: c.br, le: true}
	}
	c.health.Dials++
	return nil
}

// negotiate runs the binary preamble handshake: send ours, read the
// server's echo, and require version agreement. Caller holds mu.
func (c *Client) negotiate() error {
	if c.cfg.IOTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.cfg.IOTimeout)); err != nil {
			return err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(binPreamble[:]); err != nil {
		return fmt.Errorf("serve: binary handshake write: %w", err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(c.br, ack[:]); err != nil {
		return fmt.Errorf("serve: binary handshake read: %w", err)
	}
	if ack[0] != binPreamble[0] || ack[1] != binPreamble[1] || ack[2] != binPreamble[2] {
		return errors.New("serve: peer does not speak the binary protocol")
	}
	if ack[3] != binVersion {
		return fmt.Errorf("serve: binary protocol version skew: server v%d, client v%d", ack[3], binVersion)
	}
	return nil
}

// breakConnLocked tears down a connection the client believes is bad.
func (c *Client) breakConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br, c.bw, c.fr = nil, nil, nil
		c.health.BrokenConns++
		c.cfg.Flight.Record(obs.FlightConnBroken, "", c.cfg.Addr, 0)
	}
}

// BreakConn forcibly severs the underlying connection (the chaos
// harness's connection-kill fault). The client is not closed: the next
// call heals through the redial path.
func (c *Client) BreakConn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.breakConnLocked()
}

// Health returns a snapshot of the client's self-healing counters.
func (c *Client) Health() ClientHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health
	for _, cs := range c.sessions {
		if cs.br.open {
			h.OpenBreakers++
		}
	}
	return h
}

// TrackedSessions reports how many session ids the client currently
// holds state for — the quantity the SessionTTL sweep bounds.
func (c *Client) TrackedSessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// redialDelay returns the backoff before redial attempt k ≥ 1:
// exponential in k, capped, with deterministic jitter drawn from the
// seeded stream (uniform in [d/2, d], so backoff never degenerates to
// zero but two clients with the same seed still agree).
func (c *Client) redialDelay(attempt int) time.Duration {
	d := c.cfg.redialBase() << uint(attempt-1)
	if max := c.cfg.redialMax(); d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + time.Duration(c.jitter.Int63n(int64(half)+1))
}

// track returns (creating if a configured feature needs one) the
// session's state entry and stamps its idle clock. Returns nil for
// sessionless calls (ping) and when no feature wants per-session
// state — the zero-config client keeps an empty map. Caller holds mu.
func (c *Client) track(session string) *clientSession {
	if session == "" {
		return nil
	}
	cs := c.sessions[session]
	if cs == nil {
		if c.cfg.BreakerThreshold <= 0 && c.cfg.Tracer == nil {
			return nil
		}
		cs = &clientSession{}
		c.sessions[session] = cs
	}
	if c.cfg.SessionTTL > 0 {
		cs.lastUsed = c.now()
	}
	return cs
}

// sweepSessions reclaims session entries idle past the TTL, at most
// once per TTL/2 so a busy client pays O(sessions) only occasionally.
// Runs inline under mu — no background goroutine to leak or race.
func (c *Client) sweepSessions() {
	ttl := c.cfg.SessionTTL
	if ttl <= 0 {
		return
	}
	now := c.now()
	if now.Sub(c.lastSweep) < ttl/2 {
		return
	}
	c.lastSweep = now
	for id, cs := range c.sessions {
		if now.Sub(cs.lastUsed) >= ttl {
			delete(c.sessions, id)
		}
	}
}

// breakerAllow gates a call on the session's circuit. A nil entry
// (ping, or breaking disabled) bypasses entirely.
func (c *Client) breakerAllow(cs *clientSession, session string) error {
	if c.cfg.BreakerThreshold <= 0 || cs == nil {
		return nil
	}
	b := &cs.br
	if !b.open {
		return nil
	}
	if c.now().Sub(b.openedAt) < c.cfg.cooldown() || b.probing {
		c.health.BreakerFastFails++
		return fmt.Errorf("%w: session %q cooling down", ErrBreakerOpen, session)
	}
	b.probing = true // half-open: admit exactly this probe
	return nil
}

// breakerRecord feeds a call's verdict back into the session's
// circuit. Hard failures are transport breaks and CodeError responses;
// typed backpressure and bad requests are the server answering
// healthily and count as successes here.
func (c *Client) breakerRecord(cs *clientSession, session string, hardFail bool) {
	if c.cfg.BreakerThreshold <= 0 || cs == nil {
		return
	}
	b := &cs.br
	switch {
	case !hardFail:
		if b.open {
			c.cfg.Flight.Record(obs.FlightBreakerClose, session, "half-open probe succeeded", 0)
		}
		b.fails, b.open, b.probing = 0, false, false
	case b.open:
		// Failed half-open probe (or racing failure): restart cooldown.
		b.openedAt, b.probing = c.now(), false
	default:
		b.fails++
		if b.fails >= c.cfg.BreakerThreshold {
			b.open, b.openedAt, b.probing = true, c.now(), false
			c.health.BreakerOpens++
			c.cfg.Flight.Record(obs.FlightBreakerOpen, session,
				fmt.Sprintf("%d consecutive hard failures", b.fails), 0)
		}
	}
}

// exchange runs one framed round trip on the current connection,
// applying write and read deadlines. Caller holds mu.
func (c *Client) exchange(req *Request) (*Response, error) {
	if c.cfg.IOTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.cfg.IOTimeout)); err != nil {
			return nil, err
		}
	}
	if c.binary {
		b := append(c.wbuf[:0], 0, 0, 0, 0)
		b, err := appendRequestBinary(b, req)
		if err != nil {
			return nil, err
		}
		c.wbuf = b
		if _, err := c.bw.Write(finishBinaryFrame(b)); err != nil {
			return nil, err
		}
	} else if err := WriteFrame(c.bw, req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if c.cfg.IOTimeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.IOTimeout)); err != nil {
			return nil, err
		}
	}
	var resp Response
	if c.binary {
		body, err := c.fr.read()
		if err != nil {
			return nil, fmt.Errorf("serve: read response: %w", err)
		}
		if err := decodeResponseBinary(body, &resp, &c.names, nil); err != nil {
			return nil, fmt.Errorf("serve: read response: %w", err)
		}
	} else if err := ReadFrame(c.br, &resp); err != nil {
		return nil, fmt.Errorf("serve: read response: %w", err)
	}
	return &resp, nil
}

// do runs one request/response round trip, healing a broken connection
// within the redial budget. A transport failure surfaces as
// ErrConnBroken (joined with the underlying error); because the
// request may have executed before the connection died, retries across
// ErrConnBroken are at-least-once.
func (c *Client) do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.sweepSessions()
	cs := c.track(req.Session)
	if err := c.breakerAllow(cs, req.Session); err != nil {
		return nil, err
	}
	// Head-sample decode and mdecode frames on (session, per-session
	// index): the sampled id rides the request so the server's stage
	// spans join the same trace. The index advances per attempted
	// frame — including failed calls — so the client's decision
	// sequence is deterministic for a fixed call order regardless of
	// outcomes. mdecode samples from the same per-session index the
	// server head-samples on (its slot counter), so multi-tag traces
	// line up end to end exactly like single-tag ones.
	var tctx obs.TraceCtx
	if c.cfg.Tracer != nil && (req.Op == OpDecode || req.Op == OpMultiDecode) {
		n := cs.frame
		cs.frame = n + 1
		tctx = c.cfg.Tracer.Head(req.Session, n)
		req.Trace = tctx.ID()
	}
	tsp := tctx.Start("client_send")
	resp, err := c.doLocked(req)
	tsp.End()
	c.breakerRecord(cs, req.Session, err != nil || resp.Code == CodeError)
	if err == nil && resp.Handoff != nil {
		// Cache the session's latest portable snapshot (Config.Handoff
		// servers attach one per decode); this is what a cluster client
		// installs on a survivor node after a failure.
		if cs == nil {
			cs = &clientSession{}
			if c.cfg.SessionTTL > 0 {
				cs.lastUsed = c.now()
			}
			c.sessions[req.Session] = cs
		}
		cs.handoff = resp.Handoff
	}
	return resp, err
}

// LastHandoff returns the session's most recent handoff snapshot (nil
// if none arrived or its entry was TTL-evicted). The snapshot is the
// one the latest successful decode response carried — installing it on
// another node and retrying the failed frame resumes the stream with
// no duplicate or lost frames.
func (c *Client) LastHandoff(session string) *HandoffState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cs := c.sessions[session]; cs != nil {
		return cs.handoff
	}
	return nil
}

// doLocked is do without the breaker wrapping. Caller holds mu.
func (c *Client) doLocked(req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRedials; attempt++ {
		if attempt > 0 {
			c.sleep(c.redialDelay(attempt))
		}
		if c.conn == nil {
			if c.cfg.MaxRedials == 0 {
				return nil, errors.Join(ErrConnBroken, errors.New("serve: reconnection disabled"))
			}
			if err := c.connect(); err != nil {
				lastErr = err
				continue
			}
			c.health.Redials++
			c.cfg.Flight.Record(obs.FlightRedial, req.Session,
				fmt.Sprintf("reconnected to %s on attempt %d", c.cfg.Addr, attempt), req.Trace)
		}
		resp, err := c.exchange(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		c.breakConnLocked()
	}
	return nil, errors.Join(ErrConnBroken, lastErr)
}

// Decode submits one application frame for the session and returns the
// outcome. Typed rejections (ErrQueueFull, ErrDraining, ErrDeadline)
// come back as the error with the response still populated, so callers
// can distinguish backpressure from transport failure with errors.Is.
func (c *Client) Decode(session string, payload []byte) (*Response, error) {
	resp, err := c.do(&Request{Op: OpDecode, Session: session, Payload: payload})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// DecodeTimeout is Decode with an explicit per-job deadline in
// milliseconds, overriding the server default.
func (c *Client) DecodeTimeout(session string, payload []byte, timeoutMs int) (*Response, error) {
	resp, err := c.do(&Request{Op: OpDecode, Session: session, Payload: payload, TimeoutMs: timeoutMs})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// MultiDecode offers one payload per tag of the session's multi-tag
// group and runs a jointly decoded slot. The first MultiDecode on a
// session fixes its group size; later calls must match it. Per-tag
// outcomes come back in Response.Tags, aligned with payloads.
func (c *Client) MultiDecode(session string, payloads [][]byte) (*Response, error) {
	resp, err := c.do(&Request{Op: OpMultiDecode, Session: session, Payloads: payloads})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// InstallHandoff submits a handoff snapshot for the session: the
// daemon (running with Config.Handoff) builds a fresh session, replays
// its fault timeline, and restores the snapshot so the session's next
// decode continues the origin node's stream byte-identically.
func (c *Client) InstallHandoff(session string, hs *HandoffState) (*Response, error) {
	resp, err := c.do(&Request{Op: OpHandoff, Session: session, Handoff: hs})
	if err != nil {
		return nil, err
	}
	return resp, resp.Err()
}

// Stats returns the session's accumulated statistics, ordered after
// every decode the session has answered.
func (c *Client) Stats(session string) (*SessionStats, error) {
	resp, err := c.do(&Request{Op: OpStats, Session: session})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("serve: stats response missing body")
	}
	return resp.Stats, nil
}

// Ping checks daemon liveness.
func (c *Client) Ping() error {
	resp, err := c.do(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Close drops the connection permanently; the client will not redial.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.br, c.bw = nil, nil, nil
	return err
}
