package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer. All methods are safe
// on a nil receiver (no-ops / zero), which is how disabled metrics cost
// nothing on the hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced at runtime).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds v (CAS loop).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histShards is the number of independent accumulation slots per
// histogram. Observations pick a shard from a hash of the value bits,
// so concurrent writers of differing values rarely contend on the
// sum/count words; per-bucket counts are separate atomics regardless.
// Power of two, so the shard index is a mask.
const histShards = 8

// histShard is one accumulation slot, padded to its own cache lines so
// shards don't false-share.
type histShard struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	_       [48]byte      // pad to 64 bytes
}

// Histogram is a fixed-bucket, lock-free histogram: observation does
// two atomic adds plus one CAS loop and never blocks. Bucket semantics
// follow Prometheus: counts[i] counts observations v <= bounds[i], with
// one extra +Inf bucket at the end.
type Histogram struct {
	bounds []float64
	// counts are cumulative-izable per-bucket tallies; they are shared
	// across shards because distinct buckets are already distinct words.
	counts []atomic.Int64
	shards [histShards]histShard
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// shardIndex spreads observations across shards by a 64-bit mix of the
// value bits. Identical repeated values share a shard, which is still
// lock-free — they only retry each other's sum CAS — while the common
// case (continuously varying durations, dB levels, BERs) spreads.
func shardIndex(v float64) int {
	h := math.Float64bits(v)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & (histShards - 1))
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	s := &h.shards[shardIndex(v)]
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.shards {
		n += h.shards[i].count.Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	var s float64
	for i := range h.shards {
		s += math.Float64frombits(h.shards[i].sumBits.Load())
	}
	return s
}

// Span times one region and records the elapsed seconds into a
// histogram. It is a value type: starting a span on a nil histogram
// returns the zero Span, whose End is a no-op that never reads the
// clock — the whole disabled path is two nil checks.
type Span struct {
	h     *Histogram
	start time.Time
}

// Start begins a span backed by h. On a nil histogram it returns the
// zero Span without touching the clock.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed time. Safe to call on the zero Span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.start).Seconds())
	}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinBuckets returns n linearly spaced bucket bounds starting at start
// with the given width.
func LinBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Shared bucket layouts for the simulator's standard quantities.
var (
	// DurationBuckets covers 1 µs to ~30 s, the span from a single DSP
	// kernel to a full figure harness.
	DurationBuckets = ExpBuckets(1e-6, math.Sqrt(10), 16)
	// DBBuckets covers -130..+95 dB(m) in 5 dB steps — SIC residuals,
	// cancellation depths, and SNRs all land here.
	DBBuckets = LinBuckets(-130, 5, 46)
	// BERBuckets covers 1e-6..1 per decade.
	BERBuckets = ExpBuckets(1e-6, 10, 7)
	// CountBuckets covers small integer tallies (corrected bits, offsets)
	// 1..4096 in powers of two; 0 falls in the first (≤1) bucket.
	CountBuckets = ExpBuckets(1, 2, 13)
	// LatencyBuckets resolves serve-path latencies on both sides of the
	// binary-protocol switch: DurationBuckets' half-decade steps were
	// laid out for the 125 ms JSON regime and put the binary path's
	// whole 1–10 ms operating range (p99 ≈ 8.3 ms) inside two buckets.
	// These bounds give sub-millisecond resolution through the tail
	// that matters while still covering the JSON-era 100 ms+ regime.
	LatencyBuckets = []float64{
		50e-6, 100e-6, 200e-6, 500e-6,
		1e-3, 2e-3, 3e-3, 5e-3, 8e-3, 12e-3, 20e-3, 35e-3,
		60e-3, 125e-3, 250e-3, 500e-3, 1,
	}
)
