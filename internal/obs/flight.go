package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Black-box flight recorder (DESIGN.md §5h): a bounded lock-free ring
// of the structured events that explain an incident after the fact —
// configuration switches, watchdog trips, breaker state changes,
// redials, fault-timeline epochs, panics. The ring always records (it
// is cheap enough to leave on); the dump happens on anomaly — watchdog
// trip, connection panic, SIGTERM — into a manifest-adjacent JSON
// file, or on demand via the /debug/flightrecorder endpoint.
//
// Events carry an optional trace id linking them to the per-frame
// timeline of the frame that triggered them (a watchdog trip names the
// exact traced frame whose SIC residual crossed the threshold).

// Flight-recorder event kinds. Anomaly kinds (watchdog_trip,
// conn_panic, job_panic, sigterm) trigger the automatic dump.
const (
	FlightConfigSwitch  = "config_switch"
	FlightFaultSwitch   = "fault_switch"
	FlightWatchdogTrip  = "watchdog_trip"
	FlightWatchdogClear = "watchdog_clear"
	FlightBreakerOpen   = "breaker_open"
	FlightBreakerClose  = "breaker_close"
	FlightRedial        = "redial"
	FlightConnBroken    = "conn_broken"
	FlightConnPanic     = "conn_panic"
	FlightJobPanic      = "job_panic"
	FlightSigterm       = "sigterm"
	FlightSessionEvict  = "session_evict"
	// Cluster serving (DESIGN.md §5j): a node marked down by the
	// cluster client, a session re-routed to a survivor, and a handoff
	// snapshot installed on the receiving node. The three share the
	// failing frame's trace id, so one trace links kill → re-route →
	// handoff across processes.
	FlightNodeDown       = "node_down"
	FlightNodeUp         = "node_up"
	FlightReroute        = "reroute"
	FlightHandoffInstall = "handoff_install"
	// Energy-aware polling (DESIGN.md §5k): a session's tag ran its
	// supercap down and went dark, and the wake after it banked back up.
	// Both carry the trace id of the poll frame that observed the
	// transition, so a delivery gap in a trace links directly to the
	// energy episode that caused it (the watchdog-event pattern).
	FlightTagDark = "tag_dark"
	FlightTagWake = "tag_wake"
)

// FlightEvent is one recorded event. Seq is a global record counter
// (monotonic, so gaps reveal ring overwrites); Trace links the event
// to a per-frame trace when the triggering frame was sampled.
type FlightEvent struct {
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	Kind     string `json:"kind"`
	Session  string `json:"session,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Trace    uint64 `json:"trace,omitempty"`
}

// FlightRecorder is the ring. All methods are safe on a nil receiver
// (recording disabled) and safe for concurrent use.
type FlightRecorder struct {
	ring   []atomic.Pointer[FlightEvent]
	cursor atomic.Uint64
	now    func() int64 // UnixNano; injectable for tests

	dumpMu   sync.Mutex
	dumpPath atomic.Pointer[string]
}

// NewFlightRecorder builds a recorder holding the last capacity events
// (<= 0 means 1024).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &FlightRecorder{ring: make([]atomic.Pointer[FlightEvent], capacity)}
}

// SetDumpPath arms the automatic anomaly dump: every Anomaly rewrites
// path with the current ring contents (latest dump wins — the file is
// the state of the ring at the most recent anomaly).
func (f *FlightRecorder) SetDumpPath(path string) {
	if f == nil {
		return
	}
	f.dumpPath.Store(&path)
}

// Record appends an event. Lock-free; ~one atomic add + one store.
func (f *FlightRecorder) Record(kind, session, detail string, trace uint64) {
	if f == nil {
		return
	}
	seq := f.cursor.Add(1) - 1
	ev := FlightEvent{Seq: seq, UnixNano: f.unixNano(), Kind: kind, Session: session, Detail: detail, Trace: trace}
	f.ring[seq%uint64(len(f.ring))].Store(&ev)
}

// Anomaly records the event and, if a dump path is armed, dumps the
// ring to it. Use for the events that should leave a black box behind
// even if the process dies right after (watchdog trip, panic, SIGTERM).
func (f *FlightRecorder) Anomaly(kind, session, detail string, trace uint64) {
	if f == nil {
		return
	}
	f.Record(kind, session, detail, trace)
	if p := f.dumpPath.Load(); p != nil && *p != "" {
		_ = f.DumpFile(*p)
	}
}

func (f *FlightRecorder) unixNano() int64 {
	if f.now != nil {
		return f.now()
	}
	return time.Now().UnixNano()
}

// Events snapshots the ring in seq order.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.ring))
	for i := range f.ring {
		if p := f.ring[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Count returns how many snapshotted events have the given kind.
func (f *FlightRecorder) Count(kind string) int {
	n := 0
	for _, ev := range f.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// flightDump is the dump/WriteJSON document shape.
type flightDump struct {
	Recorded uint64        `json:"recorded_total"`
	Dropped  uint64        `json:"dropped"`
	Events   []FlightEvent `json:"events"`
}

func (f *FlightRecorder) dump() flightDump {
	if f == nil {
		return flightDump{Events: []FlightEvent{}}
	}
	evs := f.Events()
	total := f.cursor.Load()
	dropped := uint64(0)
	if n := uint64(len(f.ring)); total > n {
		dropped = total - n
	}
	return flightDump{Recorded: total, Dropped: dropped, Events: evs}
}

// WriteJSON writes the ring snapshot as indented JSON. Nil-safe.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.dump())
}

// DumpFile atomically rewrites path with the ring snapshot (write to
// a temp file in the same directory, then rename). Dumps serialize so
// concurrent anomalies cannot interleave a torn file.
func (f *FlightRecorder) DumpFile(path string) error {
	if f == nil {
		return nil
	}
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	b, err := json.MarshalIndent(f.dump(), "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
