package obs

// Shared metric names. The per-stage pipeline metrics are emitted from
// several packages (sic, reader, core, parallel), so the names live
// here to keep one family per quantity; the "stage" label carries the
// pipeline position. See DESIGN.md §5c for the observability contract
// — what each metric means and how it maps to the paper's figures.
const (
	// MetricStageDuration is the per-stage wall-clock histogram
	// (label stage = excitation_build | channel_sim | decode_total |
	// sic_train | sic_analog_train | sic_digital_train | sic_cancel |
	// channel_estimate | timing_search | mrc | viterbi).
	MetricStageDuration = "backfi_stage_duration_seconds"
	// MetricStageFailures counts decode aborts by stage (label stage =
	// wake | wake_timing | sic_train | channel_estimate | preamble_room |
	// payload_room | frame_crc).
	MetricStageFailures = "backfi_stage_failures_total"

	// MetricSICResidual is the post-cancellation floor in dBm (the
	// paper's Fig. 7 residual, ≈ thermal floor when cancellation is
	// working).
	MetricSICResidual = "backfi_sic_residual_db"
	// MetricSICCancellation is the achieved suppression in dB
	// (paper: ≈78–80 dB).
	MetricSICCancellation = "backfi_sic_cancellation_db"

	// MetricPreambleCorr is the normalized tag-preamble correlation
	// (1 = perfect).
	MetricPreambleCorr = "backfi_preamble_correlation"
	// MetricTimingOffset is the |symbol-timing correction| in samples
	// found by the PN preamble search.
	MetricTimingOffset = "backfi_timing_offset_samples"
	// MetricViterbiCorrected is the per-frame count of coded bits the
	// Viterbi decoder corrected (hard decisions vs the re-encoded
	// decoded frame).
	MetricViterbiCorrected = "backfi_viterbi_corrected_bits"

	// MetricSNR is the per-packet SNR histogram in dB (label kind =
	// expected | expected_mrc | measured).
	MetricSNR = "backfi_snr_db"
	// MetricRawBER is the per-packet pre-FEC bit error rate.
	MetricRawBER = "backfi_raw_ber"

	// MetricPackets counts packet exchanges attempted; MetricPacketsOK
	// counts frames whose payload matched exactly.
	MetricPackets   = "backfi_packets_total"
	MetricPacketsOK = "backfi_packets_ok_total"

	// Parallel-engine metrics: per-work-item latency, per-worker busy
	// time per batch, batch wall time, and the configured worker count.
	MetricParallelItem    = "backfi_parallel_item_seconds"
	MetricParallelBusy    = "backfi_parallel_worker_busy_seconds"
	MetricParallelBatch   = "backfi_parallel_batch_seconds"
	MetricParallelWorkers = "backfi_parallel_workers"

	// MetricFigureDuration times one figure harness (label fig).
	MetricFigureDuration = "backfi_figure_duration_seconds"

	// MetricFaultsInjected counts impairments applied by the fault
	// layer (label kind = cfo | sco | phase_noise | adc_clip |
	// interference_burst | truncate | preamble_corrupt | ack_drop |
	// wake_drop).
	// Units vary by kind: per-packet applications for cfo/sco/
	// phase_noise/truncate/wake_drop, per-sample-component clips for
	// adc_clip, bursts for interference_burst, chips for
	// preamble_corrupt and frames for ack_drop.
	MetricFaultsInjected = "backfi_faults_injected_total"

	// Serving-path metrics (internal/serve, DESIGN.md §5e).
	// MetricServeJobs counts decode-job admission outcomes (label
	// outcome = admitted | rejected_full | rejected_draining |
	// deadline | done | error | panic).
	MetricServeJobs = "backfi_serve_jobs_total"
	// MetricServeQueueDepth is the per-shard queued-job gauge (label
	// shard).
	MetricServeQueueDepth = "backfi_serve_queue_depth"
	// MetricServeJobStage is the per-stage job latency histogram (label
	// stage = queue_wait | decode).
	MetricServeJobStage = "backfi_serve_job_stage_seconds"
	// MetricServeBatchJobs is the jobs-per-shard-batch histogram — the
	// shard utilization signal (batches near BatchMax mean the shard is
	// running saturated).
	MetricServeBatchJobs = "backfi_serve_batch_jobs"
	// MetricServeSessions gauges live sessions; MetricServeConns counts
	// accepted connections; MetricServeConnPanics counts connection
	// handlers recovered from a panic (panic isolation contract).
	MetricServeSessions   = "backfi_serve_sessions"
	MetricServeConns      = "backfi_serve_connections_total"
	MetricServeConnPanics = "backfi_serve_conn_panics_total"
	// MetricServeEvictions counts idle sessions reclaimed by the
	// per-shard TTL sweep (DESIGN.md §5i) — the decrement side of the
	// MetricServeSessions gauge under churn.
	MetricServeEvictions = "backfi_serve_session_evictions_total"
	// MetricServeDegraded gauges sessions the SIC-health watchdog is
	// currently holding in degraded mode (forced-robust configuration);
	// MetricServeDegradedTrans counts mode transitions (label dir =
	// enter | exit).
	MetricServeDegraded      = "backfi_serve_degraded_sessions"
	MetricServeDegradedTrans = "backfi_serve_degraded_transitions_total"
	// MetricServeFaultSwitches counts scripted fault-profile switches
	// the serving timeline applied to sessions;
	// MetricServeConfigSwitches counts rate-controller ladder moves
	// applied to serving sessions (adaptation + watchdog forcing).
	MetricServeFaultSwitches  = "backfi_serve_fault_switches_total"
	MetricServeConfigSwitches = "backfi_serve_config_switches_total"

	// MetricServeHandoffs counts handoff snapshots installed into this
	// node (label outcome = ok | rejected) — the receiving half of the
	// cluster migration path (DESIGN.md §5j).
	MetricServeHandoffs = "backfi_serve_handoffs_total"

	// Energy-aware polling metrics (DESIGN.md §5k). MetricTagLiveness
	// gauges the per-shard mean of the sessions' liveness estimates —
	// the EWMA probability that a poll finds the tag awake;
	// MetricServeDarkPolls counts polls answered tag_dark without
	// spending a decode (label reason = asleep | backoff).
	MetricTagLiveness    = "backfi_tag_liveness"
	MetricServeDarkPolls = "backfi_serve_dark_polls_total"

	// Wire-protocol metrics (DESIGN.md §5g). MetricServeWireBytes counts
	// bytes on the wire by direction (label dir = rx | tx) and protocol
	// (label proto = json | binary); MetricServeFrameCodec is the
	// per-frame encode/decode latency histogram (label op = encode |
	// decode, label proto as above); MetricServeConnsProto counts
	// accepted connections by negotiated protocol (label proto).
	MetricServeWireBytes  = "backfi_serve_wire_bytes_total"
	MetricServeFrameCodec = "backfi_serve_frame_codec_seconds"
	MetricServeConnsProto = "backfi_serve_connections_proto_total"

	// MetricLinkCache counts excitation-cache lookups on the session-
	// cache serving hot path (label outcome = hit | miss). A healthy
	// steady-state session hits on every frame; misses flag tag-config
	// churn forcing excitation rebuilds.
	MetricLinkCache = "backfi_link_excitation_cache_total"

	// SLO metrics (DESIGN.md §5h). MetricSLOBurnRate is the rolling-
	// window error-budget burn rate (label slo = delivery | latency;
	// > 1 means the objective fails if the window persists);
	// MetricSLODeliveryRate and MetricSLOLatencyP99 are the raw window
	// quantities behind the burn rates.
	MetricSLOBurnRate     = "backfi_slo_burn_rate"
	MetricSLODeliveryRate = "backfi_slo_delivery_rate"
	MetricSLOLatencyP99   = "backfi_slo_latency_p99_seconds"
)

// AllMetricNames lists every metric family name declared above, so
// tests can pin the registry's naming invariants (uniqueness, valid
// Prometheus identifiers, stable prefix) in one place. Keep in sync
// when adding names.
var AllMetricNames = []string{
	MetricStageDuration,
	MetricStageFailures,
	MetricSICResidual,
	MetricSICCancellation,
	MetricPreambleCorr,
	MetricTimingOffset,
	MetricViterbiCorrected,
	MetricSNR,
	MetricRawBER,
	MetricPackets,
	MetricPacketsOK,
	MetricParallelItem,
	MetricParallelBusy,
	MetricParallelBatch,
	MetricParallelWorkers,
	MetricFigureDuration,
	MetricFaultsInjected,
	MetricServeJobs,
	MetricServeQueueDepth,
	MetricServeJobStage,
	MetricServeBatchJobs,
	MetricServeSessions,
	MetricServeEvictions,
	MetricServeConns,
	MetricServeConnPanics,
	MetricServeDegraded,
	MetricServeDegradedTrans,
	MetricServeFaultSwitches,
	MetricServeConfigSwitches,
	MetricServeHandoffs,
	MetricTagLiveness,
	MetricServeDarkPolls,
	MetricServeWireBytes,
	MetricServeFrameCodec,
	MetricServeConnsProto,
	MetricLinkCache,
	MetricSLOBurnRate,
	MetricSLODeliveryRate,
	MetricSLOLatencyP99,
}

// HelpStageDuration is shared by every MetricStageDuration registration
// so the family help text is identical regardless of which package
// registers the family first.
const HelpStageDuration = "Wall-clock seconds per decoder pipeline stage."

// HelpFaultsInjected is shared by every MetricFaultsInjected
// registration (one per fault kind) for the same reason.
const HelpFaultsInjected = "Impairments applied by the fault-injection layer, by kind."
