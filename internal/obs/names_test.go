package obs

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Every declared metric name must be a valid Prometheus identifier
// under the repository prefix, and the list must hold no duplicates —
// two constants aliasing one family would silently merge series.
func TestAllMetricNamesValid(t *testing.T) {
	ident := regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
	seen := map[string]bool{}
	for _, name := range AllMetricNames {
		if !strings.HasPrefix(name, "backfi_") {
			t.Errorf("%s: missing backfi_ prefix", name)
		}
		if !ident.MatchString(name) {
			t.Errorf("%s: not a valid Prometheus metric name", name)
		}
		if seen[name] {
			t.Errorf("%s: declared twice", name)
		}
		seen[name] = true
	}
	if len(seen) < 30 {
		t.Fatalf("AllMetricNames lists %d names — out of sync with names.go?", len(seen))
	}
}

// Registration is idempotent: the same (name, labels) always returns
// the same instrument, so increments from different call sites land on
// one series.
func TestDuplicateRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(MetricPackets, "help", "kind", "x")
	b := r.Counter(MetricPackets, "different help text", "kind", "x")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("shared series value = %d, want 2", got)
	}
	// Label order must not matter: the signature is canonicalized.
	h1 := r.Histogram(MetricServeJobStage, "h", LatencyBuckets, "stage", "s", "op", "o")
	h2 := r.Histogram(MetricServeJobStage, "h", LatencyBuckets, "op", "o", "stage", "s")
	if h1 != h2 {
		t.Fatal("label order changed the series identity")
	}
	// Re-registering a family under a different kind is a programmer
	// error and must fail loudly, not corrupt the family.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch did not panic")
			}
		}()
		r.Gauge(MetricPackets, "help")
	}()
}

// Label cardinality is bounded: past MaxSeriesPerFamily distinct label
// sets, new sets collapse into the shared overflow series instead of
// growing the registry without bound.
func TestLabelCardinalityBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < MaxSeriesPerFamily+100; i++ {
		r.Counter(MetricServeJobs, "h", "outcome", fmt.Sprintf("v%d", i)).Inc()
	}
	snap := r.Snapshot()
	var total, overflow int64
	nSeries := 0
	for _, c := range snap.Counters {
		if c.Name != MetricServeJobs {
			continue
		}
		nSeries++
		total += c.Value
		if c.Labels == `{overflow="true"}` {
			overflow = c.Value
		}
	}
	if nSeries > MaxSeriesPerFamily+1 {
		t.Fatalf("family grew to %d series, cap is %d(+overflow)", nSeries, MaxSeriesPerFamily)
	}
	if overflow != 100 {
		t.Fatalf("overflow series absorbed %d increments, want 100", overflow)
	}
	if total != MaxSeriesPerFamily+100 {
		t.Fatalf("increments lost at the cardinality cap: %d", total)
	}
	// Existing series keep resolving after the cap.
	if r.Counter(MetricServeJobs, "h", "outcome", "v0").Value() != 1 {
		t.Fatal("pre-cap series lost after overflow")
	}
}

// Concurrent registration of overlapping names/labels must be safe and
// must still converge on one instrument per series (run with -race).
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter(MetricServeConns, "h", "shard", fmt.Sprintf("%d", i%8)).Inc()
				r.Gauge(MetricServeSessions, "h").Set(float64(i))
				r.Histogram(MetricStageDuration, "h", DurationBuckets, "stage", "x").Observe(0.001)
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var conns int64
	for _, c := range snap.Counters {
		if c.Name == MetricServeConns {
			conns += c.Value
		}
	}
	if conns != goroutines*perG {
		t.Fatalf("lost increments under concurrent registration: %d of %d", conns, goroutines*perG)
	}
	h, ok := snap.Histogram(MetricStageDuration, `{stage="x"}`)
	if !ok || h.Count != goroutines*perG {
		t.Fatalf("histogram count = %d (found=%v), want %d", h.Count, ok, goroutines*perG)
	}
}
