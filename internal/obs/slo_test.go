package obs

import (
	"math"
	"testing"
	"time"
)

// sloAt builds a monitor with an injectable clock starting at t0.
func sloAt(cfg SLOConfig, t0 time.Time) (*SLO, *time.Time) {
	s := NewSLO(cfg)
	now := t0
	s.now = func() time.Time { return now }
	return s, &now
}

func TestSLOEmptyWindowHealthy(t *testing.T) {
	s, _ := sloAt(SLOConfig{}, time.Unix(1000, 0))
	snap := s.Snapshot()
	if !snap.Healthy || snap.DeliveryRate != 1 || snap.DeliveryBurn != 0 || snap.LatencyBurn != 0 {
		t.Fatalf("empty window not healthy: %+v", snap)
	}
	var nilS *SLO
	nilS.Record(true, 0.001)
	if snap := nilS.Snapshot(); !snap.Healthy {
		t.Fatalf("nil SLO unhealthy: %+v", snap)
	}
}

func TestSLOBurnMath(t *testing.T) {
	// 90% delivery objective: 80 delivered of 100 burns (1-0.8)/(1-0.9) = 2.
	s, _ := sloAt(SLOConfig{DeliveryObjective: 0.9, LatencyObjectiveSec: 0.025}, time.Unix(1000, 0))
	for i := 0; i < 100; i++ {
		s.Record(i < 80, 0.001)
	}
	snap := s.Snapshot()
	if math.Abs(snap.DeliveryBurn-2) > 1e-9 {
		t.Fatalf("delivery burn = %v, want 2", snap.DeliveryBurn)
	}
	if snap.Healthy {
		t.Fatal("burning window reported healthy")
	}
	if snap.LatencyBurn != 0 {
		t.Fatalf("latency burn = %v, want 0 (all fast)", snap.LatencyBurn)
	}

	// Latency: 2 slow frames of 100 under a p99 objective burns
	// 0.02/0.01 = 2.
	s2, _ := sloAt(SLOConfig{LatencyObjectiveSec: 0.025, LatencyQuantile: 0.99}, time.Unix(1000, 0))
	for i := 0; i < 100; i++ {
		lat := 0.001
		if i < 2 {
			lat = 0.1
		}
		s2.Record(true, lat)
	}
	snap2 := s2.Snapshot()
	if math.Abs(snap2.LatencyBurn-2) > 1e-9 {
		t.Fatalf("latency burn = %v, want 2", snap2.LatencyBurn)
	}
	if snap2.DeliveryBurn != 0 || snap2.Healthy {
		t.Fatalf("snapshot = %+v", snap2)
	}
	if snap2.LatencyP99Sec <= 0.025 {
		t.Fatalf("p99 = %v, should exceed the objective with 2%% slow frames", snap2.LatencyP99Sec)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	s, now := sloAt(SLOConfig{Window: 60 * time.Second, Buckets: 12}, time.Unix(1000, 0))
	for i := 0; i < 50; i++ {
		s.Record(false, 0.001) // everything failing
	}
	if snap := s.Snapshot(); snap.Healthy || snap.Frames != 50 {
		t.Fatalf("pre-expiry snapshot = %+v", snap)
	}
	// Step past the whole window: the bad epoch ages out entirely.
	*now = now.Add(61 * time.Second)
	snap := s.Snapshot()
	if snap.Frames != 0 || !snap.Healthy {
		t.Fatalf("post-expiry snapshot = %+v", snap)
	}
	// New records land in fresh buckets (the ring slot is reset, not
	// accumulated into the stale epoch).
	s.Record(true, 0.001)
	if snap := s.Snapshot(); snap.Frames != 1 || snap.Delivered != 1 {
		t.Fatalf("post-reset snapshot = %+v", snap)
	}
}

func TestSLOGauges(t *testing.T) {
	reg := NewRegistry()
	s, _ := sloAt(SLOConfig{Obs: reg, DeliveryObjective: 0.9}, time.Unix(1000, 0))
	for i := 0; i < 10; i++ {
		s.Record(i < 8, 0.001)
	}
	s.Snapshot()
	snap := reg.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == MetricSLOBurnRate && g.Labels == `{slo="delivery"}` {
			found = true
			if math.Abs(g.Value-2) > 1e-9 {
				t.Fatalf("burn gauge = %v, want 2", g.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no %s{slo=\"delivery\"} gauge in %+v", MetricSLOBurnRate, snap.Gauges)
	}
}
