package obs

import (
	"sync"
	"time"
)

// SLO burn-rate monitoring (DESIGN.md §5h). Two objectives over a
// rolling window:
//
//   - delivery: at least DeliveryObjective of offered frames deliver;
//   - latency: at least LatencyQuantile of frames finish within
//     LatencyObjectiveSec (i.e. "p99 < objective").
//
// For each, the burn rate is bad-fraction / error-budget: 1.0 means
// the window is consuming budget exactly as fast as the objective
// allows, > 1 means the objective fails if the window's behavior
// persists. Burn rates export as gauges and drive /healthz.
//
// The window is a ring of time buckets so old behavior ages out in
// O(1): each Record lands in the bucket of its epoch, and Snapshot
// sums only buckets still inside the window. The per-record cost is a
// short mutex hold — the recording site is the serve job path (~ms
// cadence), not the per-sample DSP hot path.

// SLOConfig configures an SLO monitor. Zero fields take the defaults
// documented per field.
type SLOConfig struct {
	// Window is the rolling evaluation window (default 60s).
	Window time.Duration
	// Buckets is the ring granularity (default 12 — 5s buckets under
	// the default window).
	Buckets int
	// DeliveryObjective is the target delivered fraction in (0,1)
	// (default 0.9 — ARQ at range loses real frames).
	DeliveryObjective float64
	// LatencyObjectiveSec is the per-frame latency threshold (default
	// 25ms — comfortably above the binary-protocol p99 of ~8.3ms).
	LatencyObjectiveSec float64
	// LatencyQuantile is the fraction of frames that must meet the
	// threshold (default 0.99: "p99 < objective").
	LatencyQuantile float64
	// Obs receives the burn-rate/delivery/p99 gauges (nil = none).
	Obs *Registry
}

func (c *SLOConfig) withDefaults() {
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 12
	}
	if c.DeliveryObjective <= 0 || c.DeliveryObjective >= 1 {
		c.DeliveryObjective = 0.9
	}
	if c.LatencyObjectiveSec <= 0 {
		c.LatencyObjectiveSec = 25e-3
	}
	if c.LatencyQuantile <= 0 || c.LatencyQuantile >= 1 {
		c.LatencyQuantile = 0.99
	}
}

type sloBucket struct {
	epoch     int64
	total     int64
	delivered int64
	slow      int64
	// latency histogram over LatencyBuckets bounds (+overflow) for
	// the window p99 estimate.
	lat []int64
}

// SLOSnapshot is one rolling-window evaluation.
type SLOSnapshot struct {
	WindowSeconds float64 `json:"window_seconds"`
	Frames        int64   `json:"frames"`
	Delivered     int64   `json:"delivered"`
	Slow          int64   `json:"slow"`

	DeliveryRate      float64 `json:"delivery_rate"`
	DeliveryObjective float64 `json:"delivery_objective"`
	DeliveryBurn      float64 `json:"delivery_burn_rate"`

	LatencyP99Sec       float64 `json:"latency_p99_seconds"`
	LatencyObjectiveSec float64 `json:"latency_objective_seconds"`
	LatencyBurn         float64 `json:"latency_burn_rate"`

	// Healthy is true when neither objective is burning budget faster
	// than it accrues (both burn rates <= 1).
	Healthy bool `json:"healthy"`
}

// SLO is the monitor. Nil-safe: a nil *SLO records nothing and
// snapshots an empty, healthy window.
type SLO struct {
	mu      sync.Mutex
	cfg     SLOConfig
	width   time.Duration
	buckets []sloBucket
	now     func() time.Time // injectable for tests

	gDeliveryBurn *Gauge
	gLatencyBurn  *Gauge
	gDeliveryRate *Gauge
	gLatencyP99   *Gauge
}

// NewSLO builds a monitor; see SLOConfig.
func NewSLO(cfg SLOConfig) *SLO {
	cfg.withDefaults()
	s := &SLO{
		cfg:     cfg,
		width:   cfg.Window / time.Duration(cfg.Buckets),
		buckets: make([]sloBucket, cfg.Buckets),
		now:     time.Now,
	}
	for i := range s.buckets {
		s.buckets[i].epoch = -1
		s.buckets[i].lat = make([]int64, len(LatencyBuckets)+1)
	}
	s.gDeliveryBurn = cfg.Obs.Gauge(MetricSLOBurnRate, "SLO error-budget burn rate over the rolling window (>1 = objective failing).", "slo", "delivery")
	s.gLatencyBurn = cfg.Obs.Gauge(MetricSLOBurnRate, "SLO error-budget burn rate over the rolling window (>1 = objective failing).", "slo", "latency")
	s.gDeliveryRate = cfg.Obs.Gauge(MetricSLODeliveryRate, "Delivered fraction of offered frames over the rolling SLO window.")
	s.gLatencyP99 = cfg.Obs.Gauge(MetricSLOLatencyP99, "Estimated p99 frame latency in seconds over the rolling SLO window.")
	return s
}

// Record accounts one offered frame: whether it delivered, and its
// end-to-end latency in seconds (admission to response).
func (s *SLO) Record(delivered bool, latencySec float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	b := s.bucketLocked(s.now())
	b.total++
	if delivered {
		b.delivered++
	}
	if latencySec > s.cfg.LatencyObjectiveSec {
		b.slow++
	}
	i := 0
	for i < len(LatencyBuckets) && latencySec > LatencyBuckets[i] {
		i++
	}
	b.lat[i]++
	s.mu.Unlock()
}

// bucketLocked returns the live bucket for t, resetting it if its slot
// still holds an expired epoch.
func (s *SLO) bucketLocked(t time.Time) *sloBucket {
	epoch := t.UnixNano() / int64(s.width)
	b := &s.buckets[epoch%int64(len(s.buckets))]
	if b.epoch != epoch {
		b.epoch = epoch
		b.total, b.delivered, b.slow = 0, 0, 0
		for i := range b.lat {
			b.lat[i] = 0
		}
	}
	return b
}

// Snapshot evaluates the window and refreshes the gauges. An empty
// window is healthy (burn 0, delivery 1).
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{DeliveryRate: 1, Healthy: true}
	}
	s.mu.Lock()
	epoch := s.now().UnixNano() / int64(s.width)
	minEpoch := epoch - int64(len(s.buckets)) + 1
	var total, delivered, slow int64
	lat := make([]int64, len(LatencyBuckets)+1)
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch < minEpoch || b.epoch > epoch {
			continue
		}
		total += b.total
		delivered += b.delivered
		slow += b.slow
		for j, n := range b.lat {
			lat[j] += n
		}
	}
	s.mu.Unlock()

	snap := SLOSnapshot{
		WindowSeconds:       s.cfg.Window.Seconds(),
		Frames:              total,
		Delivered:           delivered,
		Slow:                slow,
		DeliveryRate:        1,
		DeliveryObjective:   s.cfg.DeliveryObjective,
		LatencyObjectiveSec: s.cfg.LatencyObjectiveSec,
	}
	if total > 0 {
		snap.DeliveryRate = float64(delivered) / float64(total)
		snap.DeliveryBurn = (1 - snap.DeliveryRate) / (1 - s.cfg.DeliveryObjective)
		snap.LatencyBurn = (float64(slow) / float64(total)) / (1 - s.cfg.LatencyQuantile)
		snap.LatencyP99Sec = latencyQuantile(lat, s.cfg.LatencyQuantile)
	}
	snap.Healthy = snap.DeliveryBurn <= 1 && snap.LatencyBurn <= 1

	s.gDeliveryBurn.Set(snap.DeliveryBurn)
	s.gLatencyBurn.Set(snap.LatencyBurn)
	s.gDeliveryRate.Set(snap.DeliveryRate)
	s.gLatencyP99.Set(snap.LatencyP99Sec)
	return snap
}

// latencyQuantile interpolates quantile q from counts bucketed over
// LatencyBuckets (same linear-within-bucket rule as HistogramSnap).
func latencyQuantile(counts []int64, q float64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = LatencyBuckets[i-1]
		}
		hi := lo
		if i < len(LatencyBuckets) {
			hi = LatencyBuckets[i]
		}
		frac := (rank - float64(prev)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return LatencyBuckets[len(LatencyBuckets)-1]
}
