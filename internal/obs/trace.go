package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Per-frame distributed tracing (DESIGN.md §5h). The tracer is the
// same shape as the rest of this package: zero dependencies, nil-safe
// everywhere, lock-free on the record path, and inert when disabled —
// a zero TraceCtx never reads the clock, so the untraced hot path pays
// only a pointer compare per span site (the PR2 nil-overhead contract
// extends to tracing; see BenchmarkRunPacketNilTracer).
//
// Sampling is deterministic head sampling: whether a frame is traced —
// and the trace id it gets — is a pure function of (seed, session id,
// frame index). Two consequences the serve stack relies on:
//
//   - reproducibility: the same run samples the same frames, so a
//     trace captured in CI can be regenerated locally;
//   - distribution without negotiation: a client and server configured
//     with the same seed derive the same trace id for the same frame
//     independently, and a propagated id (Request.Trace on the wire)
//     lets both sides contribute spans to one timeline even when only
//     one end samples.
//
// Tracing never feeds back into computation: spans observe wall-clock
// only, responses carry no trace fields, and the decode byte stream is
// pinned identical with tracing off/on/sampled (TestProtocolDeterminism).

// TraceEvent is one completed span in the ring.
type TraceEvent struct {
	Trace uint64 `json:"trace"`
	Name  string `json:"name"`
	Start int64  `json:"start_unix_nano"`
	Dur   int64  `json:"dur_nano"`
}

// TracerConfig configures a Tracer. The zero value samples every frame
// into a default-capacity ring.
type TracerConfig struct {
	// Seed salts trace ids and the sampling decision. Same seed =>
	// same sampled set and same ids for the same (session, frame)s.
	Seed int64
	// SampleEvery is the head-sampling rate: 1 traces every frame, N
	// traces ~1/N of frames (deterministically — see Head). Values
	// <= 1 trace everything.
	SampleEvery int
	// Capacity bounds the completed-span ring; the oldest spans are
	// overwritten once it wraps. <= 0 means 4096.
	Capacity int
}

// Tracer records completed spans into a bounded lock-free ring.
// All methods are safe on a nil receiver (tracing disabled).
type Tracer struct {
	seed  int64
	every uint64

	ring    []atomic.Pointer[TraceEvent]
	cursor  atomic.Uint64
	sampled atomic.Int64
}

// NewTracer builds a tracer; see TracerConfig for knobs.
func NewTracer(cfg TracerConfig) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 4096
	}
	every := uint64(1)
	if cfg.SampleEvery > 1 {
		every = uint64(cfg.SampleEvery)
	}
	return &Tracer{
		seed:  cfg.Seed,
		every: every,
		ring:  make([]atomic.Pointer[TraceEvent], capacity),
	}
}

// TraceID derives the deterministic trace id for frame index frame of
// session under seed: FNV-1a 64 over the seed bytes, the session id,
// and the frame index. The result is never zero (zero means "no
// trace" on the wire and in TraceCtx).
func TraceID(seed int64, session string, frame int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	v := uint64(seed)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= prime64
		v >>= 8
	}
	for i := 0; i < len(session); i++ {
		h ^= uint64(session[i])
		h *= prime64
	}
	f := uint64(frame)
	for i := 0; i < 8; i++ {
		h ^= f & 0xFF
		h *= prime64
		f >>= 8
	}
	if h == 0 {
		h = offset64
	}
	return h
}

// Head makes the head-sampling decision for frame index frame of
// session: a live TraceCtx when the frame is sampled, the zero (inert)
// TraceCtx otherwise. Pure function of (tracer seed, session, frame).
func (t *Tracer) Head(session string, frame int) TraceCtx {
	if t == nil {
		return TraceCtx{}
	}
	id := TraceID(t.seed, session, frame)
	if t.every > 1 && id%t.every != 0 {
		return TraceCtx{}
	}
	t.sampled.Add(1)
	return TraceCtx{t: t, id: id}
}

// Join adopts a trace id propagated from a peer (e.g. Request.Trace):
// the frame is traced here regardless of the local sampling decision,
// under the peer's id, so both sides land on one timeline. A zero id
// or nil tracer yields the inert TraceCtx.
func (t *Tracer) Join(id uint64) TraceCtx {
	if t == nil || id == 0 {
		return TraceCtx{}
	}
	return TraceCtx{t: t, id: id}
}

// Stats reports sampling-decision hits, spans recorded, and spans
// overwritten by ring wrap.
func (t *Tracer) Stats() (sampled, spans, dropped int64) {
	if t == nil {
		return 0, 0, 0
	}
	n := int64(t.cursor.Load())
	d := n - int64(len(t.ring))
	if d < 0 {
		d = 0
	}
	return t.sampled.Load(), n, d
}

func (t *Tracer) record(ev TraceEvent) {
	i := t.cursor.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(&ev)
}

// Events snapshots the ring, ordered by start time (ties broken by
// trace id then name so the order is deterministic).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	out := make([]TraceEvent, 0, len(t.ring))
	for i := range t.ring {
		if p := t.ring[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event; ts/dur in microseconds). Load the output at
// chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the ring as Chrome trace-event JSON. Spans
// of one trace share a tid, so each traced frame renders as its own
// row. Nil-safe: a nil tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(evs))}
	for _, ev := range evs {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: ev.Name,
			Cat:  "backfi",
			Ph:   "X",
			TS:   float64(ev.Start) / 1e3,
			Dur:  float64(ev.Dur) / 1e3,
			PID:  1,
			// Chrome treats tid as a small int; fold the id but keep
			// the full value in args for correlation.
			TID:  ev.Trace % 1_000_000,
			Args: map[string]string{"trace": hex64(ev.Trace)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func hex64(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xF]
		v >>= 4
	}
	return string(b[:])
}

// TraceCtx is the per-frame trace handle threaded through the decode
// pipeline. The zero value is the disabled path: Enabled is false,
// Start returns an inert span, and nothing — including the clock — is
// touched. It is a 2-word value, copied freely.
type TraceCtx struct {
	t  *Tracer
	id uint64
}

// Enabled reports whether spans recorded on this ctx go anywhere.
func (c TraceCtx) Enabled() bool { return c.t != nil }

// ID is the trace id (0 when disabled) — the value propagated on the
// wire as Request.Trace.
func (c TraceCtx) ID() uint64 {
	if c.t == nil {
		return 0
	}
	return c.id
}

// Start opens a span. On the zero ctx this is two nil stores and no
// clock read.
func (c TraceCtx) Start(name string) TraceSpan {
	if c.t == nil {
		return TraceSpan{}
	}
	return TraceSpan{c: c, name: name, start: time.Now()}
}

// Record logs a span after the fact — for intervals measured before
// the sampling decision existed (queue wait is stamped at enqueue;
// whether the job is traced is known only when it is served).
func (c TraceCtx) Record(name string, start time.Time, d time.Duration) {
	if c.t == nil {
		return
	}
	c.t.record(TraceEvent{Trace: c.id, Name: name, Start: start.UnixNano(), Dur: int64(d)})
}

// TraceSpan is an open span; End records it. The zero span's End is a
// nil compare.
type TraceSpan struct {
	c     TraceCtx
	name  string
	start time.Time
}

// End completes the span and records it into the ring.
func (s TraceSpan) End() {
	if s.c.t == nil {
		return
	}
	s.c.Record(s.name, s.start, time.Since(s.start))
}
