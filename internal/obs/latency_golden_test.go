package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// The serving latency buckets must resolve the binary-protocol regime:
// sub-millisecond resolution at the bottom (codec spans run in
// microseconds), single-millisecond steps through the ~8.3ms decode
// p99, and the legacy 125ms JSON regime still inside the range. The
// golden file pins the exact bucket layout as rendered on /metrics —
// changing LatencyBuckets is a dashboard-breaking change and must show
// up in review as a golden diff.
func TestLatencyBucketsGolden(t *testing.T) {
	if len(LatencyBuckets) < 12 {
		t.Fatalf("LatencyBuckets has %d bounds — lost sub-ms resolution?", len(LatencyBuckets))
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, LatencyBuckets)
		}
	}
	if LatencyBuckets[0] > 100e-6 {
		t.Fatalf("first bound %v too coarse for codec latencies", LatencyBuckets[0])
	}

	r := NewRegistry()
	h := r.Histogram(MetricServeJobStage, "Per-stage serving latency.", LatencyBuckets, "stage", "decode")
	// One observation per regime of interest: codec (80µs), binary
	// serving p50 (3.1ms), binary p99 (8.3ms), JSON p99 (125ms).
	for _, v := range []float64{80e-6, 3.1e-3, 8.3e-3, 125e-3} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "latency_buckets.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Prometheus export drifted from golden file %s\n-- got --\n%s\n-- want --\n%s",
			golden, buf.Bytes(), want)
	}
}
