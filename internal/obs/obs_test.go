package obs

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("g", "a gauge", "k", "v")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("gauge = %v, want 3.0", got)
	}
}

func TestLabelSignatureSorted(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h", "b", "2", "a", "1")
	b := r.Counter("x_total", "h", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "h")
}

// TestNilRegistrySafe is the zero-overhead contract: every operation on
// a nil registry and its nil instruments must be a safe no-op.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("g", "h")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("h", "h", DurationBuckets)
	h.Observe(1)
	sp := h.Start()
	sp.End()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accumulated")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q (err %v)", sb.String(), err)
	}
}

// TestHistogramQuantileVsOracle checks bucket-interpolated quantiles
// against a sorted-slice oracle: the estimate must land within one
// bucket width of the exact order statistic.
func TestHistogramQuantileVsOracle(t *testing.T) {
	const width = 0.5
	bounds := LinBuckets(0, width, 41) // 0..20
	r := NewRegistry()
	h := r.Histogram("q", "h", bounds)
	rng := rand.New(rand.NewSource(7))
	var vals []float64
	for i := 0; i < 5000; i++ {
		v := rng.Float64()*18 + rng.NormFloat64()*0.3
		if v < 0 {
			v = 0
		}
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	snap, ok := r.Snapshot().Histogram("q", "")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		oracle := vals[int(q*float64(len(vals)-1))]
		got := snap.Quantile(q)
		if diff := got - oracle; diff < -width || diff > width {
			t.Errorf("q=%.2f: bucket quantile %.3f vs oracle %.3f (|diff| > bucket width %.2f)", q, got, oracle, width)
		}
	}
	if snap.Count != int64(len(vals)) {
		t.Fatalf("count %d, want %d", snap.Count, len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if rel := (snap.Sum - sum) / sum; rel < -1e-9 || rel > 1e-9 {
		t.Fatalf("sum %.6f, want %.6f", snap.Sum, sum)
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines; totals must be exact. Run with -race
// in CI, this is also the data-race check for the lock-free paths.
func TestConcurrentIncrements(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h", "h", LinBuckets(0, 1, 8), "stage", "x")
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64((w*perG + i) % 10))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	// Bucket tallies must add up to the sharded count.
	snap, _ := r.Snapshot().Histogram("h", `{stage="x"}`)
	var bucketTotal int64
	for _, n := range snap.Counts {
		bucketTotal += n
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
}

// TestPrometheusGolden pins the text exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("backfi_packets_total", "Packet exchanges attempted.").Add(3)
	r.Gauge("backfi_parallel_workers", "Configured worker count.").Set(8)
	h := r.Histogram("backfi_stage_duration_seconds", "Per-stage wall clock.",
		[]float64{1, 2, 4}, "stage", "mrc")
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(8)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP backfi_packets_total Packet exchanges attempted.
# TYPE backfi_packets_total counter
backfi_packets_total 3
# HELP backfi_parallel_workers Configured worker count.
# TYPE backfi_parallel_workers gauge
backfi_parallel_workers 8
# HELP backfi_stage_duration_seconds Per-stage wall clock.
# TYPE backfi_stage_duration_seconds histogram
backfi_stage_duration_seconds_bucket{stage="mrc",le="1"} 1
backfi_stage_duration_seconds_bucket{stage="mrc",le="2"} 1
backfi_stage_duration_seconds_bucket{stage="mrc",le="4"} 2
backfi_stage_duration_seconds_bucket{stage="mrc",le="+Inf"} 3
backfi_stage_duration_seconds_sum{stage="mrc"} 11.5
backfi_stage_duration_seconds_count{stage="mrc"} 3
`
	if got := sb.String(); got != want {
		t.Fatalf("prometheus text drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", "x", "1").Inc()
	r.Histogram("d", "h", DurationBuckets).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("a_total", `{x="1"}`) != 1 {
		t.Fatalf("counter lost in round trip: %s", raw)
	}
	if h, ok := back.Histogram("d", ""); !ok || h.Count != 1 {
		t.Fatalf("histogram lost in round trip: %s", raw)
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s", "h", DurationBuckets)
	sp := h.Start()
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span recorded %d observations, want 1", h.Count())
	}
	if h.Sum() < 0 {
		t.Fatalf("span recorded negative duration %v", h.Sum())
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("backfi_packets_total", "h").Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "backfi_packets_total 2") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil || snap.Counter("backfi_packets_total", "") != 2 {
		t.Fatalf("/metrics.json wrong (err %v): %+v", err, snap)
	}
}

func TestServePprof(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("backfi_packets_total", "h").Add(7)
	m := NewManifest("test-run", map[string]any{"seed": 1, "trials": 2})
	m.AddPhase("fig8", 1.25, "Mbps@1m", 4.5)
	m.Finish(r)
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Command != "test-run" || back.GoVersion == "" || back.NumCPU <= 0 {
		t.Fatalf("manifest header wrong: %+v", back)
	}
	if len(back.Phases) != 1 || back.Phases[0].Metric != "Mbps@1m" || back.Phases[0].Value != 4.5 {
		t.Fatalf("manifest phases wrong: %+v", back.Phases)
	}
	if back.Metrics == nil || back.Metrics.Counter("backfi_packets_total", "") != 7 {
		t.Fatalf("manifest metrics wrong: %+v", back.Metrics)
	}
	if back.WallSeconds < 0 || back.EndTime.Before(back.StartTime) {
		t.Fatalf("manifest timing wrong: %+v", back)
	}
}
