package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CounterSnap is one counter series in a Snapshot.
type CounterSnap struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// GaugeSnap is one gauge series in a Snapshot.
type GaugeSnap struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramSnap is one histogram series in a Snapshot. Counts are
// per-bucket (not cumulative); Bounds[i] is the upper bound of
// Counts[i] and the final Counts entry is the +Inf bucket.
type HistogramSnap struct {
	Name   string    `json:"name"`
	Labels string    `json:"labels,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the target rank, matching
// the Prometheus histogram_quantile convention. Resolution is one
// bucket width; values in the +Inf bucket clamp to the last finite
// bound.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket
			return h.Bounds[len(h.Bounds)-1]
		}
		upper := h.Bounds[i]
		if i == 0 {
			return upper
		}
		lower := h.Bounds[i-1]
		if c == 0 {
			return upper
		}
		frac := (rank - float64(cum)) / float64(c)
		return lower + frac*(upper-lower)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of every instrument, ordered by
// (name, labels) so marshalled output is reproducible.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Histogram returns the named histogram series (labels as rendered
// signature, "" for unlabelled), or false.
func (s *Snapshot) Histogram(name, labels string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && h.Labels == labels {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// Counter returns the named counter series value, or 0.
func (s *Snapshot) Counter(name, labels string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.Labels == labels {
			return c.Value
		}
	}
	return 0
}

// Snapshot copies the current state of every instrument. Nil registries
// return an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	for _, f := range r.collect() {
		for _, s := range f.series {
			switch inst := s.inst.(type) {
			case *Counter:
				snap.Counters = append(snap.Counters, CounterSnap{Name: f.name, Labels: s.sig, Value: inst.Value()})
			case *Gauge:
				snap.Gauges = append(snap.Gauges, GaugeSnap{Name: f.name, Labels: s.sig, Value: inst.Value()})
			case *Histogram:
				hs := HistogramSnap{
					Name:   f.name,
					Labels: s.sig,
					Count:  inst.Count(),
					Sum:    inst.Sum(),
					Bounds: append([]float64(nil), inst.bounds...),
					Counts: make([]int64, len(inst.counts)),
				}
				for i := range inst.counts {
					hs.Counts[i] = inst.counts[i].Load()
				}
				snap.Histograms = append(snap.Histograms, hs)
			}
		}
	}
	return snap
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName splices the `le` pair into an existing label signature for
// histogram bucket lines.
func bucketLabels(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(sig, "}") + `,le="` + le + `"}`
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.collect() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch inst := s.inst.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.sig, inst.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.sig, formatFloat(inst.Value()))
			case *Histogram:
				var cum int64
				for i := range inst.counts {
					cum += inst.counts[i].Load()
					le := "+Inf"
					if i < len(inst.bounds) {
						le = formatFloat(inst.bounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, bucketLabels(s.sig, le), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.sig, formatFloat(inst.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.sig, inst.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
