package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestOpsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricPackets, "h").Inc()
	tr := NewTracer(TracerConfig{})
	tr.Head("sess", 0).Record("decode", time.Unix(1, 0), time.Millisecond)
	fl := NewFlightRecorder(16)
	fl.Record(FlightWatchdogTrip, "sess", "residual", 7)
	slo := NewSLO(SLOConfig{Obs: reg})
	slo.Record(true, 0.002)
	ready := true
	mux := opsMux(ServeOpts{
		Registry: reg,
		Tracer:   tr,
		Flight:   fl,
		SLO:      slo,
		Ready:    func() bool { return ready },
	})

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, MetricPackets) {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	// The SLO gauges refresh on scrape: the burn-rate family appears
	// even though nothing called Snapshot explicitly.
	if _, body := get("/metrics"); !strings.Contains(body, MetricSLOBurnRate) {
		t.Fatalf("/metrics missing SLO gauges:\n%s", body)
	}

	if code, body := get("/debug/trace"); code != 200 {
		t.Fatalf("/debug/trace: %d", code)
	} else {
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.TraceEvents) != 1 {
			t.Fatalf("/debug/trace body: %v\n%s", err, body)
		}
	}

	if code, body := get("/debug/flightrecorder"); code != 200 || !strings.Contains(body, FlightWatchdogTrip) {
		t.Fatalf("/debug/flightrecorder: %d\n%s", code, body)
	}

	if code, body := get("/healthz"); code != 200 {
		t.Fatalf("/healthz: %d", code)
	} else {
		var snap SLOSnapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil || !snap.Healthy || snap.Frames != 1 {
			t.Fatalf("/healthz body: %v\n%s", err, body)
		}
	}

	if code, body := get("/readyz"); code != 200 || body != "ok\n" {
		t.Fatalf("/readyz ready: %d %q", code, body)
	}
	ready = false
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz draining: %d %q", code, body)
	}
}

// Every component is optional: the zero ServeOpts must serve valid
// empty responses, matching the package's nil-safe convention.
func TestOpsEndpointsNilComponents(t *testing.T) {
	mux := opsMux(ServeOpts{})
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/trace", "/debug/flightrecorder", "/healthz", "/readyz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s with nil components: %d", path, rec.Code)
		}
	}
}
