// Package obs is the simulator's dependency-free observability core:
// atomic counters, gauges, lock-free sharded histograms, and lightweight
// timing spans, collected in a Registry that snapshots to JSON and
// renders the Prometheus text exposition format.
//
// The package exists because BackFi's decoder is a multi-stage physical
// pipeline (self-interference cancellation → preamble detection →
// channel estimation → MRC demod → Viterbi) whose paper-level claims
// are stage-level quantities — the ~80 dB SIC residual of Fig. 7, the
// SNR-vs-distance curves of Figs. 9/10 — while the figure harnesses
// only report end-to-end summaries. Instruments registered here let a
// regression inside one stage show up immediately instead of as an
// unexplained drift in a figure.
//
// Design contract, relied on by every instrumented package:
//
//   - A nil *Registry is valid everywhere and means "disabled". Every
//     lookup on a nil Registry returns a nil instrument, and every
//     method on a nil instrument is a no-op that performs no time
//     syscalls and no allocation, so the hot path pays only nil checks
//     (verified by BenchmarkRunPacket* in internal/core and the nil
//     benchmarks in this package).
//   - Instruments are concurrency-safe via atomics only — observation
//     never takes a lock — so the deterministic parallel engine can
//     record from every worker without perturbing scheduling. Metrics
//     observe the computation; they never feed back into it, which is
//     what keeps figure outputs byte-identical with metrics on or off
//     (see internal/experiments' determinism tests).
//   - Series identity is (name, sorted label pairs). Rendering orders
//     families and series lexicographically, so output is reproducible
//     and the Prometheus text form can be golden-file tested.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// kind discriminates the instrument families a Registry can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family groups every labelled series of one metric name.
type family struct {
	name string
	help string
	kind kind
	// bounds are the histogram bucket upper bounds shared by all series
	// of a histogram family (nil otherwise). The first registration
	// wins; later registrations with different bounds reuse them so the
	// family stays renderable.
	bounds []float64
	// series maps the rendered label signature (`{k="v",…}` or "") to
	// the instrument (*Counter, *Gauge, or *Histogram).
	series map[string]any
}

// Registry holds the process's instruments. The zero value is not
// usable; call NewRegistry. A nil *Registry is the documented
// "metrics disabled" state.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelSignature renders alternating key/value pairs as a canonical
// Prometheus label block, sorted by key. It panics on an odd number of
// strings — a programmer error at the registration site.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// MaxSeriesPerFamily bounds label cardinality: once a family holds
// this many series, further distinct label sets collapse into one
// shared overflow series (labelled overflow="true") instead of growing
// the map without bound. Metrics must never be able to exhaust memory
// because a caller put an unbounded value (session id, error string)
// in a label.
const MaxSeriesPerFamily = 512

// overflowSignature is the rendered label block of the shared
// overflow series.
const overflowSignature = `{overflow="true"}`

// lookup returns (or creates) the series for (name, labels), verifying
// the family kind. Registration is idempotent: the same (name, labels)
// always returns the same instrument.
func (r *Registry) lookup(k kind, name, help string, bounds []float64, labels []string) any {
	sig := labelSignature(labels)

	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if inst, ok := f.series[sig]; ok && f.kind == k {
			r.mu.RUnlock()
			return inst
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.kind, k))
	}
	if inst, ok := f.series[sig]; ok {
		return inst
	}
	if sig != "" && len(f.series) >= MaxSeriesPerFamily {
		sig = overflowSignature
		if inst, ok := f.series[sig]; ok {
			return inst
		}
	}
	var inst any
	switch k {
	case kindCounter:
		inst = &Counter{}
	case kindGauge:
		inst = &Gauge{}
	case kindHistogram:
		inst = newHistogram(f.bounds)
	}
	f.series[sig] = inst
	return inst
}

// Counter returns the counter series for (name, labels), creating it on
// first use. Labels are alternating key/value strings. Nil registries
// return a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(kindCounter, name, help, nil, labels).(*Counter)
}

// Gauge returns the gauge series for (name, labels). Nil registries
// return a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(kindGauge, name, help, nil, labels).(*Gauge)
}

// Histogram returns the histogram series for (name, labels) with the
// given bucket upper bounds (ascending; +Inf is implicit). The first
// registration of a family fixes the bounds for every series. Nil
// registries return a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(kindHistogram, name, help, bounds, labels).(*Histogram)
}

// familyView is a race-free copy of one family's structure: the maps
// are snapshotted under the registry lock, while the instruments
// themselves are atomic and safe to read afterwards.
type familyView struct {
	name   string
	help   string
	kind   kind
	bounds []float64
	series []seriesView
}

type seriesView struct {
	sig  string // rendered label block, "" for unlabelled
	inst any
}

// collect snapshots the registry structure in deterministic order:
// families by name, series by label signature.
func (r *Registry) collect() []familyView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		fv := familyView{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds}
		for sig, inst := range f.series {
			fv.series = append(fv.series, seriesView{sig: sig, inst: inst})
		}
		sort.Slice(fv.series, func(i, j int) bool { return fv.series[i].sig < fv.series[j].sig })
		out = append(out, fv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
