package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry: /metrics in Prometheus text format and
// /metrics.json as a Snapshot. Works (serving empty output) on a nil
// registry.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	return mux
}

// ServeOpts wires the daemon-facing operational surface. Every field
// is optional: nil components serve empty (but valid) responses, and a
// nil Ready means always ready.
type ServeOpts struct {
	Registry *Registry
	Tracer   *Tracer
	Flight   *FlightRecorder
	SLO      *SLO
	// Ready gates /readyz — a drain-aware server returns false once
	// graceful shutdown starts so load balancers stop routing to it
	// while admitted jobs finish.
	Ready func() bool
}

// opsMux builds the handler tree for ServeOps; split out so tests can
// exercise the endpoints without a listener.
func opsMux(o ServeOpts) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		o.SLO.Snapshot() // refresh the SLO gauges before rendering
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		o.SLO.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Registry.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer.WriteChromeTrace(w)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Flight.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		snap := o.SLO.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		// Liveness always answers 200: a burning SLO is a paging
		// signal, not a reason for the orchestrator to kill the
		// process. The body carries the burn rates.
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if o.Ready != nil && !o.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeOps starts an HTTP server on addr exposing the full operational
// surface: /metrics + /metrics.json, /debug/pprof/, /debug/trace
// (Chrome trace-event JSON of the span ring), /debug/flightrecorder
// (the event ring), /healthz (SLO snapshot, always 200), and /readyz
// (503 while draining). It returns the server and the bound address
// (useful with ":0") and serves in a background goroutine; callers own
// the server's shutdown.
func ServeOps(addr string, o ServeOpts) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: opsMux(o)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// Serve starts an HTTP server on addr exposing the registry
// (/metrics, /metrics.json) plus the runtime profiler under
// /debug/pprof/. It is ServeOps with only a registry, kept for
// callers that predate the tracing/flight/SLO surface.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	return ServeOps(addr, ServeOpts{Registry: r})
}
