package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry: /metrics in Prometheus text format and
// /metrics.json as a Snapshot. Works (serving empty output) on a nil
// registry.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	return mux
}

// Serve starts an HTTP server on addr exposing the registry
// (/metrics, /metrics.json) plus the runtime profiler under
// /debug/pprof/. It returns the server and the bound address (useful
// with ":0") and serves in a background goroutine; callers own the
// server's shutdown.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
