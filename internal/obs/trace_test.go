package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// The sampling decision and the trace id must be pure functions of
// (seed, session, frame): same inputs, same outputs, across tracer
// instances — this is what lets a client and server agree on sampled
// frames without negotiating, and lets CI traces be regenerated
// locally.
func TestTraceIDDeterministic(t *testing.T) {
	a := TraceID(42, "sess-7", 1234)
	b := TraceID(42, "sess-7", 1234)
	if a != b {
		t.Fatalf("TraceID not deterministic: %x vs %x", a, b)
	}
	if a == 0 {
		t.Fatal("TraceID returned the zero (no-trace) id")
	}
	if TraceID(42, "sess-7", 1235) == a {
		t.Fatal("frame index does not perturb the id")
	}
	if TraceID(42, "sess-8", 1234) == a {
		t.Fatal("session id does not perturb the id")
	}
	if TraceID(43, "sess-7", 1234) == a {
		t.Fatal("seed does not perturb the id")
	}
}

func TestHeadSamplingDeterministic(t *testing.T) {
	mk := func() *Tracer { return NewTracer(TracerConfig{Seed: 9, SampleEvery: 8}) }
	t1, t2 := mk(), mk()
	var sampled, total int
	for frame := 0; frame < 4096; frame++ {
		c1 := t1.Head("sess", frame)
		c2 := t2.Head("sess", frame)
		if c1.Enabled() != c2.Enabled() || c1.ID() != c2.ID() {
			t.Fatalf("frame %d: tracers disagree (%v/%x vs %v/%x)",
				frame, c1.Enabled(), c1.ID(), c2.Enabled(), c2.ID())
		}
		total++
		if c1.Enabled() {
			sampled++
		}
	}
	// id % 8 == 0 over well-mixed FNV ids: expect ~1/8, loosely bounded.
	if sampled < total/16 || sampled > total/4 {
		t.Fatalf("SampleEvery=8 sampled %d of %d frames", sampled, total)
	}
	// SampleEvery <= 1 traces everything.
	all := NewTracer(TracerConfig{})
	for frame := 0; frame < 64; frame++ {
		if !all.Head("s", frame).Enabled() {
			t.Fatalf("SampleEvery=0 tracer skipped frame %d", frame)
		}
	}
}

func TestTraceZeroCtxInert(t *testing.T) {
	var c TraceCtx
	if c.Enabled() || c.ID() != 0 {
		t.Fatal("zero ctx not inert")
	}
	c.Start("x").End() // must not panic or record
	c.Record("y", time.Time{}, 0)
	var nilT *Tracer
	if nilT.Head("s", 0).Enabled() || nilT.Join(7).Enabled() {
		t.Fatal("nil tracer produced a live ctx")
	}
	if evs := nilT.Events(); evs != nil {
		t.Fatalf("nil tracer has events: %v", evs)
	}
	if s, sp, d := nilT.Stats(); s != 0 || sp != 0 || d != 0 {
		t.Fatal("nil tracer has stats")
	}
	if err := nilT.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil tracer chrome export: %v", err)
	}
}

func TestTraceJoin(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30}) // samples nothing by head
	if tr.Join(0).Enabled() {
		t.Fatal("zero id joined")
	}
	c := tr.Join(0xDEAD)
	if !c.Enabled() || c.ID() != 0xDEAD {
		t.Fatalf("join: got enabled=%v id=%x", c.Enabled(), c.ID())
	}
	c.Start("joined_span").End()
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Trace != 0xDEAD || evs[0].Name != "joined_span" {
		t.Fatalf("joined span not recorded: %+v", evs)
	}
}

func TestTraceRingWrap(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8})
	c := tr.Head("s", 0)
	for i := 0; i < 20; i++ {
		c.Record("span", time.Unix(0, int64(i)), time.Nanosecond)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	// The survivors are the newest 12..19 (ordered by start).
	if evs[0].Start != 12 || evs[len(evs)-1].Start != 19 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", evs[0].Start, evs[len(evs)-1].Start)
	}
	if _, spans, dropped := tr.Stats(); spans != 20 || dropped != 12 {
		t.Fatalf("stats: spans=%d dropped=%d, want 20/12", spans, dropped)
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := tr.Head("sess", g)
			for i := 0; i < 100; i++ {
				c.Start("work").End()
			}
		}(g)
	}
	wg.Wait()
	if _, spans, _ := tr.Stats(); spans != 800 {
		t.Fatalf("recorded %d spans, want 800", spans)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 1})
	c := tr.Head("sess", 0)
	c.Record("decode", time.Unix(1, 500), 2*time.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("got %d events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "decode" || ev.Ph != "X" {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.Dur != 2 { // 2µs
		t.Fatalf("dur = %v µs, want 2", ev.Dur)
	}
	if ev.TID != c.ID()%1_000_000 {
		t.Fatalf("tid %d does not fold trace id %x", ev.TID, c.ID())
	}
	if got := ev.Args["trace"]; got != hex64(c.ID()) || len(got) != 16 ||
		strings.ToLower(got) != got {
		t.Fatalf("args.trace = %q, want %q", got, hex64(c.ID()))
	}
}
