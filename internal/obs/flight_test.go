package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightConfigSwitch, "s", "", 0)
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Seqs are global and monotonic; the ring keeps the newest.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightRedial, "s", "d", 1)
	f.Anomaly(FlightJobPanic, "s", "d", 1)
	f.SetDumpPath("/nonexistent/x.json")
	if evs := f.Events(); evs != nil {
		t.Fatalf("nil recorder has events: %v", evs)
	}
	if n := f.Count(FlightRedial); n != 0 {
		t.Fatalf("nil recorder count = %d", n)
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := f.DumpFile(filepath.Join(t.TempDir(), "x.json")); err != nil {
		t.Fatalf("nil DumpFile: %v", err)
	}
}

func TestFlightAnomalyAutoDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	f := NewFlightRecorder(16)
	f.Record(FlightConfigSwitch, "sess-1", "rung down", 0)
	// No dump path armed yet: anomaly records but writes nothing.
	f.Anomaly(FlightWatchdogTrip, "sess-1", "residual high", 0xBEEF)
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("dump written without an armed path: %v", err)
	}
	f.SetDumpPath(path)
	f.Anomaly(FlightConnPanic, "", "boom", 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("anomaly did not dump: %v", err)
	}
	var dump struct {
		Recorded uint64        `json:"recorded_total"`
		Dropped  uint64        `json:"dropped"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, raw)
	}
	if dump.Recorded != 3 || dump.Dropped != 0 || len(dump.Events) != 3 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump.Events[1].Kind != FlightWatchdogTrip || dump.Events[1].Trace != 0xBEEF {
		t.Fatalf("trip event lost its trace link: %+v", dump.Events[1])
	}
}

func TestFlightCount(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Record(FlightRedial, "a", "", 0)
	f.Record(FlightRedial, "b", "", 0)
	f.Record(FlightBreakerOpen, "a", "", 0)
	if n := f.Count(FlightRedial); n != 2 {
		t.Fatalf("Count(redial) = %d, want 2", n)
	}
	if n := f.Count(FlightSigterm); n != 0 {
		t.Fatalf("Count(sigterm) = %d, want 0", n)
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	f.SetDumpPath(filepath.Join(t.TempDir(), "dump.json"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f.Record(FlightConfigSwitch, "s", "", 0)
				if i%10 == 0 {
					f.Anomaly(FlightWatchdogTrip, "s", "", 0)
				}
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, ev := range f.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
