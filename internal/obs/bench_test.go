package obs

import "testing"

// The nil benchmarks quantify the disabled-metrics cost: each op must
// compile to a nil check (sub-nanosecond), which is what lets the hot
// path keep its instrumentation unconditionally.

func BenchmarkNilCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("c", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var r *Registry
	h := r.Histogram("h", "h", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkNilSpan(b *testing.B) {
	var r *Registry
	h := r.Histogram("h", "h", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "h", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h", "h", DurationBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0
		for pb.Next() {
			h.Observe(float64(v&1023) * 1e-6)
			v++
		}
	})
}

func BenchmarkSpan(b *testing.B) {
	h := NewRegistry().Histogram("h", "h", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := h.Start()
		sp.End()
	}
}
