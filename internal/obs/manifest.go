package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Phase is one timed section of a run — for the figure harnesses, one
// figure, carrying the same headline metric the BENCH_*.json trajectory
// tracks so a manifest is self-describing.
type Phase struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	// Metric/Value name the phase's headline number, when it has one.
	Metric string  `json:"metric,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// Manifest is a per-run record: what was run, with which configuration
// and seed, on what build, how long each phase took, and the final
// metric snapshot. Written as JSON next to figure outputs it makes a
// BENCH_results.json trajectory reproducible after the fact.
type Manifest struct {
	Command string         `json:"command"`
	Args    []string       `json:"args,omitempty"`
	Config  map[string]any `json:"config,omitempty"`

	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	StartTime   time.Time `json:"start_time"`
	EndTime     time.Time `json:"end_time"`
	WallSeconds float64   `json:"wall_seconds"`

	Phases  []Phase   `json:"phases,omitempty"`
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for the named command, stamping the
// start time, host facts, and build info from debug.ReadBuildInfo.
// config carries the run's knobs (seed, trials, workers, …) verbatim.
func NewManifest(command string, config map[string]any) *Manifest {
	m := &Manifest{
		Command:   command,
		Args:      os.Args[1:],
		Config:    config,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		StartTime: time.Now(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// AddPhase appends one timed section. metric may be "" for phases with
// no headline number.
func (m *Manifest) AddPhase(name string, wallSeconds float64, metric string, value float64) {
	m.Phases = append(m.Phases, Phase{Name: name, WallSeconds: wallSeconds, Metric: metric, Value: value})
}

// Finish stamps the end time and attaches the registry's final
// snapshot (nil registry leaves Metrics empty).
func (m *Manifest) Finish(r *Registry) {
	m.EndTime = time.Now()
	m.WallSeconds = m.EndTime.Sub(m.StartTime).Seconds()
	if r != nil {
		m.Metrics = r.Snapshot()
	}
}

// WriteFile marshals the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	return f.Close()
}
