package energy

import (
	"math"
	"testing"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

func TestModelReproducesAllPublishedCells(t *testing.T) {
	// Every one of the 36 Fig. 7 REPB cells must be reproduced to
	// better than 0.5%.
	for row, rs := range TableSymbolRates {
		for col, c := range Columns {
			want := publishedREPB[row][col]
			got, err := REPB(c.Mod, c.Coding, rs)
			if err != nil {
				t.Fatal(err)
			}
			if relErr := math.Abs(got-want) / want; relErr > 0.005 {
				t.Fatalf("(%v, %v, %v Hz): model %v vs published %v (%.3f%%)",
					c.Mod, c.Coding, rs, got, want, relErr*100)
			}
		}
	}
}

func TestReferenceConfigurationIsUnity(t *testing.T) {
	got, err := REPB(tag.BPSK, fec.Rate12, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 0.005 {
		t.Fatalf("reference REPB = %v, want 1", got)
	}
	epb, _ := EPB(tag.BPSK, fec.Rate12, 1e6)
	if math.Abs(epb-ReferenceEPBJoules)/ReferenceEPBJoules > 0.005 {
		t.Fatalf("reference EPB = %v, want %v", epb, ReferenceEPBJoules)
	}
}

func TestPublishedREPBLookup(t *testing.T) {
	got, err := PublishedREPB(tag.PSK16, fec.Rate23, 2.5e6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1.9019 {
		t.Fatalf("lookup = %v", got)
	}
	if _, err := PublishedREPB(tag.BPSK, fec.Rate12, 123); err == nil {
		t.Fatal("expected error for off-table symbol rate")
	}
	if _, err := PublishedREPB(tag.BPSK, fec.Rate34, 1e6); err == nil {
		t.Fatal("expected error for off-table coding rate")
	}
}

func TestEPBDecreasesWithSymbolRate(t *testing.T) {
	// Static power amortizes over more bits at higher rates (the
	// paper's observation that REPB falls down each Fig. 7 column).
	for _, c := range Columns {
		prev := math.Inf(1)
		for _, rs := range TableSymbolRates {
			e, err := EPB(c.Mod, c.Coding, rs)
			if err != nil {
				t.Fatal(err)
			}
			if e >= prev {
				t.Fatalf("(%v,%v): EPB %v at %v Hz not below %v", c.Mod, c.Coding, e, rs, prev)
			}
			prev = e
		}
	}
}

func TestHigherCodingRateLowersEPB(t *testing.T) {
	// Paper Sec. 6.1: going 1/2 → 2/3 at the same symbol rate lowers
	// REPB (more info bits for nearly the same energy).
	for _, mod := range tag.Modulations {
		for _, rs := range TableSymbolRates {
			e12, _ := EPB(mod, fec.Rate12, rs)
			e23, _ := EPB(mod, fec.Rate23, rs)
			if e23 >= e12 {
				t.Fatalf("%v @ %v Hz: rate 2/3 EPB %v not below 1/2's %v", mod, rs, e23, e12)
			}
		}
	}
}

func TestHigherModulationCostsMoreEnergyPerBit(t *testing.T) {
	// 16PSK needs 15 switches for 4× BPSK's throughput, so its EPB is
	// higher at the same symbol rate (paper Sec. 5.2.1).
	for _, rs := range []float64{500e3, 1e6, 2.5e6} {
		eb, _ := EPB(tag.BPSK, fec.Rate12, rs)
		e16, _ := EPB(tag.PSK16, fec.Rate12, rs)
		if e16 <= eb {
			t.Fatalf("@%v Hz: 16PSK EPB %v not above BPSK %v", rs, e16, eb)
		}
	}
}

func TestThroughputMatchesPublishedColumn(t *testing.T) {
	// Fig. 7 throughput cells: 16PSK 2/3 at 2.5 MHz is 6.67 Mbps.
	got := ThroughputBps(tag.PSK16, fec.Rate23, 2.5e6)
	if math.Abs(got-6.6667e6) > 1e3 {
		t.Fatalf("throughput = %v", got)
	}
	// BPSK 1/2 at 10 kHz is 5 kbps.
	if ThroughputBps(tag.BPSK, fec.Rate12, 10e3) != 5e3 {
		t.Fatal("BPSK 1/2 @ 10 kHz should be 5 kbps")
	}
}

func TestFittedParametersPhysical(t *testing.T) {
	// Static powers must be positive, sub-milliwatt (it's a tag), and
	// grow with switch count.
	sB, _ := StaticPowerW(tag.BPSK, fec.Rate12)
	sQ, _ := StaticPowerW(tag.QPSK, fec.Rate12)
	s16, _ := StaticPowerW(tag.PSK16, fec.Rate12)
	for _, s := range []float64{sB, sQ, s16} {
		if s <= 0 || s > 1e-3 {
			t.Fatalf("unphysical static power %v W", s)
		}
	}
	if !(sB < sQ && sQ < s16) {
		t.Fatalf("static power not increasing with switches: %v %v %v", sB, sQ, s16)
	}
	dB, _ := DynamicEPBJoules(tag.BPSK, fec.Rate12)
	if dB <= 0 || dB > 100e-12 {
		t.Fatalf("unphysical dynamic EPB %v J", dB)
	}
}

func TestErrors(t *testing.T) {
	if _, err := EPB(tag.BPSK, fec.Rate34, 1e6); err == nil {
		t.Fatal("expected error for unmodeled coding rate")
	}
	if _, err := EPB(tag.BPSK, fec.Rate12, 0); err == nil {
		t.Fatal("expected error for zero symbol rate")
	}
	if _, err := REPB(tag.BPSK, fec.Rate34, 1e6); err == nil {
		t.Fatal("expected REPB error passthrough")
	}
	if _, err := StaticPowerW(tag.QPSK, fec.Rate34); err == nil {
		t.Fatal("expected error")
	}
	if _, err := DynamicEPBJoules(tag.QPSK, fec.Rate34); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfigREPB(t *testing.T) {
	cfg := tag.Config{Mod: tag.QPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: 32}
	got, err := ConfigREPB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := REPB(tag.QPSK, fec.Rate12, 1e6)
	if got != want {
		t.Fatalf("ConfigREPB = %v, want %v", got, want)
	}
}

func TestInterpolatedRateBetweenRows(t *testing.T) {
	// The model extrapolates smoothly: REPB at 750 kHz must sit between
	// the 500 kHz and 1 MHz cells.
	lo, _ := REPB(tag.QPSK, fec.Rate12, 1e6)
	hi, _ := REPB(tag.QPSK, fec.Rate12, 500e3)
	mid, err := REPB(tag.QPSK, fec.Rate12, 750e3)
	if err != nil {
		t.Fatal(err)
	}
	if mid <= lo || mid >= hi {
		t.Fatalf("REPB(750k)=%v not between %v and %v", mid, lo, hi)
	}
}
