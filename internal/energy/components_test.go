package energy

import (
	"math"
	"testing"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

func TestDerivedComponentsPhysical(t *testing.T) {
	c := DeriveComponents()
	if c.MemReadJ <= 0 || c.MemReadJ > 10e-12 {
		t.Fatalf("memory read %v J implausible", c.MemReadJ)
	}
	if c.EncoderBitJ < 0 || c.EncoderBitJ > 1e-12 {
		t.Fatalf("encoder %v J should be tiny (paper: shift registers + XORs)", c.EncoderBitJ)
	}
	if c.SwitchUseJ <= 0 || c.SwitchUseJ > 10e-12 {
		t.Fatalf("switch use %v J implausible", c.SwitchUseJ)
	}
	if c.BaseStaticW <= 0 || c.BaseStaticW > 10e-6 {
		t.Fatalf("base static %v W implausible", c.BaseStaticW)
	}
	if c.SwitchStaticW <= 0 || c.SwitchStaticW > 1e-6 {
		t.Fatalf("per-switch static %v W implausible", c.SwitchStaticW)
	}
}

func TestComponentDynamicsMatchFitExactly(t *testing.T) {
	// The published table's dynamic energies are internally consistent
	// with the component structure, so the bottom-up dynamics must
	// reproduce the fitted D of every rate-1/2 column to ≪1%.
	c := DeriveComponents()
	for _, mod := range tag.Modulations {
		fitted, _ := DynamicEPBJoules(mod, fec.Rate12)
		b, err := c.BreakdownFor(mod, fec.Rate12, 1e12) // statics vanish at huge rate
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(b.TotalJ()-fitted) / fitted; rel > 0.01 {
			t.Fatalf("%v 1/2: bottom-up dynamic %v vs fitted %v (%.2f%%)", mod, b.TotalJ(), fitted, rel*100)
		}
	}
}

func TestComponentEPBApproximatesHeadlineModel(t *testing.T) {
	// Across all columns and symbol rates, the bottom-up EPB must stay
	// within 45% of the table-fitted model. The residual is entirely in
	// the static terms: the published statics vary with coding rate and
	// grow sub-linearly in switch count, which a physical leakage model
	// cannot express (see the package comment).
	c := DeriveComponents()
	for _, col := range Columns {
		for _, rs := range TableSymbolRates {
			fitted, _ := EPB(col.Mod, col.Coding, rs)
			bottom, err := c.EPB(col.Mod, col.Coding, rs)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(bottom-fitted) / fitted; rel > 0.45 {
				t.Fatalf("(%v,%v,%v): bottom-up %v vs fitted %v (%.1f%%)",
					col.Mod, col.Coding, rs, bottom, fitted, rel*100)
			}
		}
	}
}

func TestBreakdownAttribution(t *testing.T) {
	c := DeriveComponents()
	// At 16PSK the modulator dominates the dynamics (15 switches for 4
	// bits); at BPSK the split is more even.
	b16, err := c.BreakdownFor(tag.PSK16, fec.Rate12, 2.5e6)
	if err != nil {
		t.Fatal(err)
	}
	if b16.ModJ < b16.MemJ {
		t.Fatalf("16PSK modulator %v should dominate memory %v", b16.ModJ, b16.MemJ)
	}
	// Encoder is a small fraction everywhere (paper Sec. 5.2.1).
	if b16.EncJ > 0.2*b16.TotalJ() {
		t.Fatalf("encoder share %v too large", b16.EncJ/b16.TotalJ())
	}
	// Lower symbol rate → statics dominate → bigger totals.
	slow, _ := c.BreakdownFor(tag.PSK16, fec.Rate12, 10e3)
	if slow.TotalJ() <= b16.TotalJ() {
		t.Fatal("static amortization missing")
	}
}

func TestBreakdownErrors(t *testing.T) {
	c := DeriveComponents()
	if _, err := c.BreakdownFor(tag.BPSK, fec.Rate12, 0); err == nil {
		t.Fatal("expected error for zero symbol rate")
	}
	if _, err := c.EPB(tag.BPSK, fec.Rate12, -1); err == nil {
		t.Fatal("expected error passthrough")
	}
}
