package energy

import (
	"errors"
	"fmt"
	"math"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

// ErrNonFiniteHarvest is returned when a harvest power is NaN or
// infinite. NaN in particular slips through a plain `<= 0` guard
// (every NaN comparison is false) and used to propagate garbage duty
// cycles; callers can errors.Is against this instead of checking for
// zeros.
var ErrNonFiniteHarvest = errors.New("energy: harvest power is not finite")

// Harvesting budget analysis for requirement R2 (paper Sec. 1): a
// battery-free tag powered by ambient RF harvests on the order of
// 60–100 µW [46, 51, 44, 29]; the radio must fit its communication
// inside that budget. Power while transmitting is
//
//	P_tx = S + D · R_b
//
// (the fitted static power plus dynamic energy times the information
// rate), and a tag whose P_tx exceeds the harvest rate must duty-cycle:
// bank energy while idle, burst while transmitting.

// HarvestedPowerW is the paper's representative ambient-RF harvesting
// rate (100 µW from TV-band signals).
const HarvestedPowerW = 100e-6

// TxPowerW returns the tag's total power draw while actively
// backscattering with the given configuration.
func TxPowerW(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) (float64, error) {
	epb, err := EPB(mod, coding, symbolRateHz)
	if err != nil {
		return 0, err
	}
	return epb * ThroughputBps(mod, coding, symbolRateHz), nil
}

// SustainableDutyCycle returns the fraction of time the tag can spend
// transmitting when it harvests harvestW continuously, assuming the
// idle (banking) power is negligible next to the transmit power. A
// value ≥ 1 means the tag can transmit continuously.
func SustainableDutyCycle(mod tag.Modulation, coding fec.CodeRate, symbolRateHz, harvestW float64) (float64, error) {
	if math.IsNaN(harvestW) || math.IsInf(harvestW, 0) {
		return 0, fmt.Errorf("%w: %v W", ErrNonFiniteHarvest, harvestW)
	}
	if harvestW <= 0 {
		return 0, fmt.Errorf("energy: harvest power must be positive")
	}
	p, err := TxPowerW(mod, coding, symbolRateHz)
	if err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("energy: non-positive transmit power")
	}
	return harvestW / p, nil
}

// SustainedThroughputBps returns the long-run information rate a
// harvesting tag can sustain: the configuration's bit rate times the
// sustainable duty cycle, capped at continuous operation.
func SustainedThroughputBps(mod tag.Modulation, coding fec.CodeRate, symbolRateHz, harvestW float64) (float64, error) {
	duty, err := SustainableDutyCycle(mod, coding, symbolRateHz, harvestW)
	if err != nil {
		return 0, err
	}
	if duty > 1 {
		duty = 1
	}
	return duty * ThroughputBps(mod, coding, symbolRateHz), nil
}

// BatteryLifeSeconds returns how long a battery of capacityJoules
// lasts while transmitting a payload of bitsPerDay information bits
// per day with the given configuration (idle power ignored) — the
// "years on a coin cell" arithmetic for duty-cycled sensors.
func BatteryLifeSeconds(mod tag.Modulation, coding fec.CodeRate, symbolRateHz, capacityJoules, bitsPerDay float64) (float64, error) {
	if capacityJoules <= 0 || bitsPerDay <= 0 {
		return 0, fmt.Errorf("energy: capacity and traffic must be positive")
	}
	epb, err := EPB(mod, coding, symbolRateHz)
	if err != nil {
		return 0, err
	}
	joulesPerDay := epb * bitsPerDay
	return capacityJoules / joulesPerDay * 86400, nil
}
