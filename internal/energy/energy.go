// Package energy implements the BackFi tag's energy-per-bit model
// (paper Sec. 5.2.1, Eq. 8) and the relative-EPB (REPB) metric used
// throughout the evaluation.
//
// The paper decomposes tag energy into the RF modulator, the channel
// encoder, and the memory read, each with a dynamic (per-operation) and
// a static (per-unit-time) part:
//
//	EPB = EPB_mem + EPB_mod + EPB_enc
//	EPB_x = EPB_x,dynamic + P_x,static × (time per information bit)
//
// Summed over components, this collapses to the two-parameter form per
// (modulation, code-rate) column
//
//	EPB(R_s) = S / R_b + D,   R_b = R_s · b · r
//
// where S is the total static power and D the total dynamic energy per
// information bit. S and D are fitted to the paper's published Fig. 7
// REPB table (derived from the ADG904 switch and CY62146EV30 SRAM
// datasheets) using the 10 kHz and 2.5 MHz rows of each column, and the
// fit reproduces all 36 published cells to better than 0.5% (asserted
// by tests). The reference point is BPSK, rate 1/2, 1 Msym/s at
// 3.15 pJ/bit (paper Sec. 5.2.1).
package energy

import (
	"fmt"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

// ReferenceEPBJoules is the absolute EPB of the reference configuration
// (BPSK, rate 1/2, 1 Msym/s): 3.15 pJ/bit.
const ReferenceEPBJoules = 3.15e-12

// TableSymbolRates are the symbol rates of the published Fig. 7 rows.
var TableSymbolRates = []float64{10e3, 100e3, 500e3, 1e6, 2e6, 2.5e6}

// columnKey identifies one column of Fig. 7.
type columnKey struct {
	mod    tag.Modulation
	coding fec.CodeRate
}

// Columns lists the Fig. 7 column configurations in paper order.
var Columns = []struct {
	Mod    tag.Modulation
	Coding fec.CodeRate
}{
	{tag.BPSK, fec.Rate12},
	{tag.BPSK, fec.Rate23},
	{tag.QPSK, fec.Rate12},
	{tag.QPSK, fec.Rate23},
	{tag.PSK16, fec.Rate12},
	{tag.PSK16, fec.Rate23},
}

// publishedREPB is the Fig. 7 table: publishedREPB[row][col] with rows
// in TableSymbolRates order and columns in Columns order.
var publishedREPB = [6][6]float64{
	{29.2162, 28.1984, 31.2517, 29.7250, 40.4117, 36.5951},
	{3.5651, 3.3333, 4.0287, 3.6810, 6.1151, 5.2458},
	{1.2850, 1.1231, 1.6089, 1.3660, 3.0665, 2.4592},
	{1.0000, 0.8468, 1.3064, 1.0766, 2.6855, 2.1109},
	{0.8575, 0.7086, 1.1552, 0.9319, 2.4949, 1.9367},
	{0.8290, 0.6810, 1.1250, 0.9030, 2.4568, 1.9019},
}

// PublishedREPB returns the Fig. 7 cell for the given configuration,
// or an error if the combination is not in the published table.
func PublishedREPB(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) (float64, error) {
	row, col := -1, -1
	for i, rs := range TableSymbolRates {
		if rs == symbolRateHz {
			row = i
		}
	}
	for i, c := range Columns {
		if c.Mod == mod && c.Coding == coding {
			col = i
		}
	}
	if row < 0 || col < 0 {
		return 0, fmt.Errorf("energy: (%v, %v, %v Hz) not in the published Fig. 7 table", mod, coding, symbolRateHz)
	}
	return publishedREPB[row][col], nil
}

// params is the fitted (S, D) pair of one column.
type params struct {
	staticW  float64 // total static power S, watts
	dynamicJ float64 // total dynamic energy per info bit D, joules
}

var fitted = fitColumns()

// bitRate returns the information bit rate for a column at a symbol
// rate.
func bitRate(mod tag.Modulation, coding fec.CodeRate, rs float64) float64 {
	return rs * float64(mod.BitsPerSymbol()) * coding.Fraction()
}

// fitColumns solves S and D per column from the 10 kHz and 2.5 MHz
// anchor rows of the published table.
func fitColumns() map[columnKey]params {
	out := make(map[columnKey]params, len(Columns))
	loRow, hiRow := 0, len(TableSymbolRates)-1
	for col, c := range Columns {
		rbLo := bitRate(c.Mod, c.Coding, TableSymbolRates[loRow])
		rbHi := bitRate(c.Mod, c.Coding, TableSymbolRates[hiRow])
		epbLo := publishedREPB[loRow][col] * ReferenceEPBJoules
		epbHi := publishedREPB[hiRow][col] * ReferenceEPBJoules
		s := (epbLo - epbHi) / (1/rbLo - 1/rbHi)
		d := epbLo - s/rbLo
		out[columnKey{c.Mod, c.Coding}] = params{staticW: s, dynamicJ: d}
	}
	return out
}

// EPB returns the modeled energy per information bit in joules for a
// tag configuration at an arbitrary symbol rate (not restricted to the
// published rows).
func EPB(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) (float64, error) {
	p, ok := fitted[columnKey{mod, coding}]
	if !ok {
		return 0, fmt.Errorf("energy: no model for (%v, %v)", mod, coding)
	}
	if symbolRateHz <= 0 {
		return 0, fmt.Errorf("energy: symbol rate must be positive")
	}
	return p.staticW/bitRate(mod, coding, symbolRateHz) + p.dynamicJ, nil
}

// REPB returns EPB normalized by the reference configuration.
func REPB(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) (float64, error) {
	epb, err := EPB(mod, coding, symbolRateHz)
	if err != nil {
		return 0, err
	}
	return epb / ReferenceEPBJoules, nil
}

// ConfigREPB is a convenience wrapper over a tag.Config.
func ConfigREPB(cfg tag.Config) (float64, error) {
	return REPB(cfg.Mod, cfg.Coding, cfg.SymbolRateHz)
}

// ThroughputBps returns the information bit rate of a configuration.
func ThroughputBps(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) float64 {
	return bitRate(mod, coding, symbolRateHz)
}

// StaticPowerW returns the fitted total static power of a column — the
// physical interpretation is the leakage/bias power of the modulator
// switches, encoder, and SRAM (Eq. 8's P_static terms).
func StaticPowerW(mod tag.Modulation, coding fec.CodeRate) (float64, error) {
	p, ok := fitted[columnKey{mod, coding}]
	if !ok {
		return 0, fmt.Errorf("energy: no model for (%v, %v)", mod, coding)
	}
	return p.staticW, nil
}

// DynamicEPBJoules returns the fitted dynamic energy per information
// bit of a column (switch toggling + encoder XORs + SRAM read).
func DynamicEPBJoules(mod tag.Modulation, coding fec.CodeRate) (float64, error) {
	p, ok := fitted[columnKey{mod, coding}]
	if !ok {
		return 0, fmt.Errorf("energy: no model for (%v, %v)", mod, coding)
	}
	return p.dynamicJ, nil
}
