package energy

import (
	"fmt"
	"math"
)

// Supercap state machine for harvest-limited tags "in the wild"
// (GuardRider regime, DESIGN.md §5k). A real battery-free tag banks
// ambient-RF energy into a supercapacitor while idle and spends it in
// bursts while backscattering; when the cap runs down the tag goes
// DARK and stops answering polls until it has banked past a wake
// threshold again. The Tank models that loop deterministically: the
// harvest trace is a pure function of (Seed, slot index, Severity),
// drains are a pure function of the decode stream, so a tag's state
// at any poll slot is a pure function of (seed, frame) — replayable
// by any shard, worker, or node that applies the same slot/drain
// sequence.

// TankState is the tag's energy state.
type TankState int

const (
	// TankDark: the cap is below the wake threshold; the tag cannot
	// answer a poll and a decode attempt would be wasted airtime.
	TankDark TankState = iota
	// TankWaking: the cap has banked past WakeJ; the tag is booting
	// its radio and will answer polls from the next slot on.
	TankWaking
	// TankLive: the tag answers polls and pays transmit energy per
	// decode attempt.
	TankLive
)

// String returns the state's wire-friendly lowercase name.
func (s TankState) String() string {
	switch s {
	case TankDark:
		return "dark"
	case TankWaking:
		return "waking"
	case TankLive:
		return "live"
	default:
		return fmt.Sprintf("TankState(%d)", int(s))
	}
}

// TankConfig parameterizes a supercap tank. The zero value is not
// usable; start from DefaultTankConfig and override.
type TankConfig struct {
	// CapacityJ is the supercap capacity in joules; charge saturates
	// here.
	CapacityJ float64
	// WakeJ is the hysteresis upper threshold: a DARK tank that banks
	// to WakeJ or above starts waking.
	WakeJ float64
	// SleepJ is the hysteresis lower threshold: a LIVE tank drained
	// to SleepJ or below goes dark. Must sit strictly below WakeJ so
	// a tag cannot flap within one slot.
	SleepJ float64
	// InitialJ is the charge at slot zero.
	InitialJ float64
	// SlotSeconds is the poll-slot duration one StepSlot integrates
	// harvest and leakage over.
	SlotSeconds float64
	// HarvestW is the ambient harvest power in a good slot
	// (HarvestedPowerW, the paper's 100 µW, is the usual choice).
	HarvestW float64
	// Severity in [0,1] is harvest scarcity: the deterministic
	// per-slot availability draw starves a Severity-fraction of slots
	// down to ScarceFrac of HarvestW. 0 = steady harvest, 1 = starved
	// in (almost) every slot.
	Severity float64
	// ScarceFrac in [0,1) is the harvest fraction left in a starved
	// slot (default 0.1: scraps, not zero — real ambient RF rarely
	// vanishes completely).
	ScarceFrac float64
	// LeakW is the standing leakage drain applied every slot.
	LeakW float64
	// Seed drives the per-slot availability draws.
	Seed int64
}

// DefaultTankConfig is sized so a tag decoding paper-default frames
// duty-cycles visibly at mid severities: a few frames of burst energy
// in the cap, wake/sleep thresholds a factor of five apart.
func DefaultTankConfig(seed int64) TankConfig {
	return TankConfig{
		CapacityJ:   4e-6,
		WakeJ:       2e-6,
		SleepJ:      0.4e-6,
		InitialJ:    4e-6,
		SlotSeconds: 5e-3,
		HarvestW:    HarvestedPowerW,
		Severity:    0,
		ScarceFrac:  0.1,
		LeakW:       1e-6,
		Seed:        seed,
	}
}

// Validate reports whether the configuration is usable, never
// panicking (PR3 convention). A nil error means NewTank succeeds.
func (c TankConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CapacityJ", c.CapacityJ}, {"WakeJ", c.WakeJ}, {"SleepJ", c.SleepJ},
		{"InitialJ", c.InitialJ}, {"SlotSeconds", c.SlotSeconds},
		{"HarvestW", c.HarvestW}, {"Severity", c.Severity},
		{"ScarceFrac", c.ScarceFrac}, {"LeakW", c.LeakW},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("energy: tank %s is not finite", f.name)
		}
	}
	if c.CapacityJ <= 0 {
		return fmt.Errorf("energy: tank capacity must be positive, got %v J", c.CapacityJ)
	}
	if c.WakeJ <= 0 || c.WakeJ > c.CapacityJ {
		return fmt.Errorf("energy: wake threshold %v J outside (0, capacity %v J]", c.WakeJ, c.CapacityJ)
	}
	if c.SleepJ < 0 || c.SleepJ >= c.WakeJ {
		return fmt.Errorf("energy: sleep threshold %v J outside [0, wake %v J)", c.SleepJ, c.WakeJ)
	}
	if c.InitialJ < 0 || c.InitialJ > c.CapacityJ {
		return fmt.Errorf("energy: initial charge %v J outside [0, capacity %v J]", c.InitialJ, c.CapacityJ)
	}
	if c.SlotSeconds <= 0 {
		return fmt.Errorf("energy: slot duration must be positive, got %v s", c.SlotSeconds)
	}
	if c.HarvestW <= 0 {
		return fmt.Errorf("energy: harvest power must be positive, got %v W", c.HarvestW)
	}
	if c.Severity < 0 || c.Severity > 1 {
		return fmt.Errorf("energy: severity %v outside [0,1]", c.Severity)
	}
	if c.ScarceFrac < 0 || c.ScarceFrac >= 1 {
		return fmt.Errorf("energy: scarce fraction %v outside [0,1)", c.ScarceFrac)
	}
	if c.LeakW < 0 {
		return fmt.Errorf("energy: leakage must be non-negative, got %v W", c.LeakW)
	}
	return nil
}

// withDefaults fills the one defaultable knob.
func (c TankConfig) withDefaults() TankConfig {
	if c.ScarceFrac == 0 {
		c.ScarceFrac = 0.1
	}
	return c
}

// Tank is the running state machine. Not safe for concurrent use;
// each serving session owns its own.
type Tank struct {
	cfg     TankConfig
	chargeJ float64
	state   TankState
	slot    int
	spentJ  float64
}

// NewTank validates cfg and returns a tank at slot zero holding
// InitialJ. The initial state follows the hysteresis thresholds:
// LIVE at or above WakeJ, DARK otherwise.
func NewTank(cfg TankConfig) (*Tank, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tank{cfg: cfg, chargeJ: cfg.InitialJ, state: TankDark}
	if cfg.InitialJ >= cfg.WakeJ {
		t.state = TankLive
	}
	return t, nil
}

// State returns the current energy state.
func (t *Tank) State() TankState { return t.state }

// Config returns the tank's configuration (with defaults filled).
func (t *Tank) Config() TankConfig { return t.cfg }

// ChargeJ returns the banked charge in joules.
func (t *Tank) ChargeJ() float64 { return t.chargeJ }

// Slot returns how many poll slots the tank has stepped through.
func (t *Tank) Slot() int { return t.slot }

// SpentJ returns the total transmit energy drained so far — the
// numerator of joules-per-delivered-bit accounting.
func (t *Tank) SpentJ() float64 { return t.spentJ }

// slotMix hashes (seed, slot) into a uniform availability draw via a
// splitmix64 finalizer, so the harvest trace is a pure function of
// both and independent of call ordering anywhere else.
func slotMix(seed int64, slot int) float64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(slot+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// HarvestInSlot returns the joules the tank banks in the given slot:
// full harvest when the availability draw clears Severity, ScarceFrac
// of it otherwise. Exported so harnesses can account offered energy
// without replaying a tank.
func (c TankConfig) HarvestInSlot(slot int) float64 {
	c = c.withDefaults()
	p := c.HarvestW
	if slotMix(c.Seed, slot) < c.Severity {
		p *= c.ScarceFrac
	}
	return p * c.SlotSeconds
}

// StepSlot advances one poll slot: bank the slot's harvest, pay
// leakage, then run the hysteresis transitions. Returns the state
// after the step — the state the scheduler polls against.
func (t *Tank) StepSlot() TankState {
	t.chargeJ += t.cfg.HarvestInSlot(t.slot)
	t.chargeJ -= t.cfg.LeakW * t.cfg.SlotSeconds
	if t.chargeJ < 0 {
		t.chargeJ = 0
	}
	if t.chargeJ > t.cfg.CapacityJ {
		t.chargeJ = t.cfg.CapacityJ
	}
	t.slot++
	switch t.state {
	case TankDark:
		if t.chargeJ >= t.cfg.WakeJ {
			t.state = TankWaking
		}
	case TankWaking:
		// Booting costs one slot; the radio answers from the next.
		t.state = TankLive
	case TankLive:
		if t.chargeJ <= t.cfg.SleepJ {
			t.state = TankDark
		}
	}
	return t.state
}

// Drain spends transmit energy (joules ≥ 0) from the cap, e.g.
// TxPowerW(cfg) × attempt airtime after a decode. A LIVE tank drained
// to the sleep threshold goes DARK. Returns the state after the
// drain.
func (t *Tank) Drain(joules float64) TankState {
	if joules < 0 || math.IsNaN(joules) || math.IsInf(joules, 0) {
		return t.state
	}
	t.chargeJ -= joules
	t.spentJ += joules
	if t.chargeJ < 0 {
		t.chargeJ = 0
	}
	if t.state == TankLive && t.chargeJ <= t.cfg.SleepJ {
		t.state = TankDark
	}
	return t.state
}
