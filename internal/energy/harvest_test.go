package energy

import (
	"math"
	"testing"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

func TestTxPowerMicrowattScale(t *testing.T) {
	// The headline configurations must draw a few µW — the point of R2
	// (tens of µW available from harvesting).
	for _, c := range Columns {
		p, err := TxPowerW(c.Mod, c.Coding, 2.5e6)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.5e-6 || p > 50e-6 {
			t.Fatalf("(%v,%v): transmit power %v W out of µW scale", c.Mod, c.Coding, p)
		}
	}
}

func TestContinuousOperationUnderHarvest(t *testing.T) {
	// At 100 µW harvested, every Fig. 7 configuration can run
	// continuously — BackFi's battery-free claim.
	for _, c := range Columns {
		for _, rs := range TableSymbolRates {
			duty, err := SustainableDutyCycle(c.Mod, c.Coding, rs, HarvestedPowerW)
			if err != nil {
				t.Fatal(err)
			}
			if duty < 1 {
				t.Fatalf("(%v,%v,%v): duty %v < 1 at 100 µW", c.Mod, c.Coding, rs, duty)
			}
		}
	}
}

func TestDutyCycleUnderScarceHarvest(t *testing.T) {
	// At 1 µW the fastest configuration must duty-cycle, and the
	// sustained throughput reflects it.
	duty, err := SustainableDutyCycle(tag.PSK16, fec.Rate23, 2.5e6, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if duty >= 1 {
		t.Fatalf("duty %v should be < 1 at 1 µW", duty)
	}
	sustained, err := SustainedThroughputBps(tag.PSK16, fec.Rate23, 2.5e6, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	full := ThroughputBps(tag.PSK16, fec.Rate23, 2.5e6)
	if math.Abs(sustained-duty*full)/full > 1e-12 {
		t.Fatalf("sustained %v vs duty×rate %v", sustained, duty*full)
	}
}

func TestSustainedThroughputCapped(t *testing.T) {
	// Plenty of power: sustained equals the configuration rate.
	got, err := SustainedThroughputBps(tag.BPSK, fec.Rate12, 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != ThroughputBps(tag.BPSK, fec.Rate12, 1e6) {
		t.Fatalf("sustained %v not capped at the config rate", got)
	}
}

func TestBatteryLifeArithmetic(t *testing.T) {
	// A CR2032 (~2400 J) sending 1 Mbit/day at the reference config
	// (3.15 pJ/bit) lasts essentially forever; sanity: > 100 years.
	life, err := BatteryLifeSeconds(tag.BPSK, fec.Rate12, 1e6, 2400, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if life < 100*365*86400 {
		t.Fatalf("battery life %v s implausibly short", life)
	}
	// More traffic → shorter life.
	busy, _ := BatteryLifeSeconds(tag.BPSK, fec.Rate12, 1e6, 2400, 1e9)
	if busy >= life {
		t.Fatal("heavier traffic should shorten life")
	}
}

func TestHarvestErrors(t *testing.T) {
	if _, err := SustainableDutyCycle(tag.BPSK, fec.Rate12, 1e6, 0); err == nil {
		t.Fatal("expected error for zero harvest")
	}
	if _, err := SustainableDutyCycle(tag.BPSK, fec.Rate34, 1e6, 1); err == nil {
		t.Fatal("expected error for unmodeled rate")
	}
	if _, err := SustainedThroughputBps(tag.BPSK, fec.Rate34, 1e6, 1); err == nil {
		t.Fatal("expected error passthrough")
	}
	if _, err := BatteryLifeSeconds(tag.BPSK, fec.Rate12, 1e6, 0, 1); err == nil {
		t.Fatal("expected error for zero capacity")
	}
	if _, err := TxPowerW(tag.BPSK, fec.Rate34, 1e6); err == nil {
		t.Fatal("expected error for unmodeled rate")
	}
}
