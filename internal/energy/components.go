package energy

import (
	"fmt"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

// Bottom-up component model of Eq. 8. The fitted per-column (S, D)
// pairs of the headline model are totals; this file decomposes them
// into the paper's three contributors — RF modulator, channel encoder,
// and memory read — using the structure the paper describes:
//
//   - modulator dynamic energy scales with switch-uses per information
//     bit, N_sw/(b·r) (paper Sec. 5.2.1: BPSK→QPSK raises modulator
//     EPB by 3/2, BPSK→16PSK by 15/4, and a rate-r code multiplies it
//     by 1/r);
//   - encoder dynamic energy scales with coded bits per information
//     bit (1/r) and is tiny ("6 shift registers and a few XOR gates");
//   - memory read energy is per information bit;
//   - static power is a base (memory + encoder leakage) plus a
//     per-switch term.
//
// The dynamic decomposition reproduces the fitted D values almost
// exactly (the published table is internally consistent with this
// structure); the static decomposition is a least-squares fit across
// switch counts with a residual of up to ~40% at the static-dominated
// 10 kHz rows, because the published statics vary with coding rate and
// grow sub-linearly in switch count — structure a physical leakage
// model cannot express. Use the fitted headline model for numbers and
// this decomposition for attribution.

// Components holds the per-operation energies and static powers of the
// tag's subsystems.
type Components struct {
	// MemReadJ is the SRAM read energy per information bit
	// (CY62146EV30-class).
	MemReadJ float64
	// EncoderBitJ is the convolutional encoder energy per coded bit.
	EncoderBitJ float64
	// SwitchUseJ is the RF switch-tree energy per switch-use per
	// symbol (ADG904-class).
	SwitchUseJ float64
	// BaseStaticW is the memory + encoder leakage power.
	BaseStaticW float64
	// SwitchStaticW is the per-SPDT-switch static power.
	SwitchStaticW float64
}

// DeriveComponents solves the component energies from the fitted
// headline model (which itself reproduces the published Fig. 7 table).
func DeriveComponents() Components {
	var c Components
	// Dynamics from the three rate-1/2 columns: D = M' + u·(N_sw/b)/r
	// with r = 1/2 → D = M' + 2u·(N_sw/b). Solve u from BPSK vs 16PSK,
	// M' from BPSK; then split M' = mem + 2·enc using the BPSK 2/3
	// column.
	dB, _ := DynamicEPBJoules(tag.BPSK, fec.Rate12)
	d16, _ := DynamicEPBJoules(tag.PSK16, fec.Rate12)
	dB23, _ := DynamicEPBJoules(tag.BPSK, fec.Rate23)
	// Switch-uses per info bit at rate 1/2: BPSK 2·1, 16PSK 2·15/4.
	c.SwitchUseJ = (d16 - dB) / (2*15.0/4 - 2*1)
	mPrime := dB - 2*c.SwitchUseJ // mem + 2·enc
	// BPSK 2/3: D = mem + 1.5·enc + 1.5·u.
	memPlus15Enc := dB23 - 1.5*c.SwitchUseJ
	c.EncoderBitJ = 2 * (mPrime - memPlus15Enc)
	if c.EncoderBitJ < 0 {
		c.EncoderBitJ = 0 // the encoder term is below the table's resolution
	}
	c.MemReadJ = mPrime - 2*c.EncoderBitJ

	// Statics: least squares of S(N_sw) = base + N_sw·perSwitch over
	// all six columns (N_sw = 1, 3, 15 at both coding rates — the
	// published statics vary slightly with coding rate, which a
	// leakage model cannot express, so the fit centers the residual).
	var sumN, sumS, sumNN, sumNS, k float64
	for _, col := range Columns {
		s, _ := StaticPowerW(col.Mod, col.Coding)
		n := float64(col.Mod.SwitchCount())
		sumN += n
		sumS += s
		sumNN += n * n
		sumNS += n * s
		k++
	}
	c.SwitchStaticW = (k*sumNS - sumN*sumS) / (k*sumNN - sumN*sumN)
	c.BaseStaticW = (sumS - c.SwitchStaticW*sumN) / k
	return c
}

// Breakdown is the Eq. 8 attribution of one configuration's EPB.
type Breakdown struct {
	// MemJ, ModJ, EncJ are the per-information-bit energies of the
	// three subsystems (dynamic + that subsystem's static share).
	MemJ, ModJ, EncJ float64
}

// TotalJ sums the contributions.
func (b Breakdown) TotalJ() float64 { return b.MemJ + b.ModJ + b.EncJ }

// EPB computes the bottom-up energy per information bit.
func (c Components) EPB(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) (float64, error) {
	b, err := c.BreakdownFor(mod, coding, symbolRateHz)
	if err != nil {
		return 0, err
	}
	return b.TotalJ(), nil
}

// BreakdownFor attributes the energy per information bit.
func (c Components) BreakdownFor(mod tag.Modulation, coding fec.CodeRate, symbolRateHz float64) (Breakdown, error) {
	if symbolRateHz <= 0 {
		return Breakdown{}, fmt.Errorf("energy: symbol rate must be positive")
	}
	r := coding.Fraction()
	b := float64(mod.BitsPerSymbol())
	rb := symbolRateHz * b * r // information bit rate
	var out Breakdown
	// Dynamic parts.
	out.MemJ = c.MemReadJ
	out.EncJ = c.EncoderBitJ / r
	out.ModJ = c.SwitchUseJ * modUnitUses(mod) / r
	// Static parts, amortized over the information bit rate.
	out.MemJ += c.BaseStaticW / rb
	out.ModJ += c.SwitchStaticW * float64(mod.SwitchCount()) / rb
	return out, nil
}

// modUnitUses returns N_sw/b — the paper's modulator scaling units per
// coded bit.
func modUnitUses(mod tag.Modulation) float64 {
	return float64(mod.SwitchCount()) / float64(mod.BitsPerSymbol())
}
