package energy

import (
	"errors"
	"math"
	"testing"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

func TestTankConfigValidate(t *testing.T) {
	base := DefaultTankConfig(1)
	if err := base.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*TankConfig)
	}{
		{"zero capacity", func(c *TankConfig) { c.CapacityJ = 0 }},
		{"nan capacity", func(c *TankConfig) { c.CapacityJ = math.NaN() }},
		{"inf harvest", func(c *TankConfig) { c.HarvestW = math.Inf(1) }},
		{"wake above capacity", func(c *TankConfig) { c.WakeJ = c.CapacityJ * 2 }},
		{"sleep at wake", func(c *TankConfig) { c.SleepJ = c.WakeJ }},
		{"negative sleep", func(c *TankConfig) { c.SleepJ = -1e-9 }},
		{"initial above capacity", func(c *TankConfig) { c.InitialJ = c.CapacityJ * 2 }},
		{"zero slot", func(c *TankConfig) { c.SlotSeconds = 0 }},
		{"severity above 1", func(c *TankConfig) { c.Severity = 1.5 }},
		{"scarce frac 1", func(c *TankConfig) { c.ScarceFrac = 1 }},
		{"negative leak", func(c *TankConfig) { c.LeakW = -1e-9 }},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
		if _, err := NewTank(c); err == nil {
			t.Errorf("%s: NewTank accepted bad config", tc.name)
		}
	}
}

// A tank is a pure function of (seed, slot sequence, drain sequence):
// two tanks from the same config fed the same calls agree exactly,
// and a different seed diverges the harvest trace.
func TestTankDeterminism(t *testing.T) {
	cfg := DefaultTankConfig(7)
	cfg.Severity = 0.6
	a, err := NewTank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewTank(cfg)
	for i := 0; i < 500; i++ {
		sa, sb := a.StepSlot(), b.StepSlot()
		if sa != sb || a.ChargeJ() != b.ChargeJ() {
			t.Fatalf("slot %d: diverged (%v %.3g J vs %v %.3g J)", i, sa, a.ChargeJ(), sb, b.ChargeJ())
		}
		if sa == TankLive && i%3 == 0 {
			a.Drain(1.2e-7)
			b.Drain(1.2e-7)
		}
	}
	// Empty tanks, so the charge trajectory exposes the harvest trace
	// instead of saturating at capacity.
	empty := cfg
	empty.InitialJ = 0
	other := empty
	other.Seed = 8
	c, _ := NewTank(empty)
	d, _ := NewTank(other)
	diverged := false
	for i := 0; i < 500; i++ {
		c.StepSlot()
		d.StepSlot()
		if c.ChargeJ() != d.ChargeJ() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical harvest traces")
	}
}

// The hysteresis loop: a drained tank goes DARK, banks back up
// through WAKING (one boot slot), and answers again as LIVE; the
// sleep threshold sits strictly below wake so it cannot flap.
func TestTankHysteresisCycle(t *testing.T) {
	cfg := DefaultTankConfig(3)
	cfg.Severity = 0 // steady harvest so the recharge time is exact
	tk, err := NewTank(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tk.State() != TankLive {
		t.Fatalf("full tank starts %v, want live", tk.State())
	}
	// Burn it down past the sleep threshold.
	for tk.State() == TankLive {
		tk.Drain(1e-6)
	}
	if tk.State() != TankDark {
		t.Fatalf("drained tank is %v, want dark", tk.State())
	}
	// Bank back up: must pass through exactly one WAKING slot.
	sawWaking := false
	for i := 0; i < 10000 && tk.State() != TankLive; i++ {
		s := tk.StepSlot()
		if s == TankWaking {
			if sawWaking {
				t.Fatal("spent more than one slot waking")
			}
			sawWaking = true
		}
	}
	if tk.State() != TankLive {
		t.Fatal("tank never woke under steady harvest")
	}
	if !sawWaking {
		t.Fatal("tank skipped the WAKING boot slot")
	}
	if tk.SpentJ() <= 0 {
		t.Fatal("drain accounting lost the spent energy")
	}
}

// Higher harvest severity must starve the tank monotonically: the
// fraction of LIVE slots over a long trace never rises with severity.
func TestTankSeverityStarves(t *testing.T) {
	liveFrac := func(sev float64) float64 {
		cfg := DefaultTankConfig(11)
		cfg.Severity = sev
		tk, err := NewTank(cfg)
		if err != nil {
			t.Fatal(err)
		}
		live := 0
		const slots = 4000
		for i := 0; i < slots; i++ {
			if tk.StepSlot() == TankLive {
				live++
				tk.Drain(2.5e-7) // steady decode load while awake
			}
		}
		return float64(live) / slots
	}
	lo, mid, hi := liveFrac(0), liveFrac(0.5), liveFrac(1)
	if !(lo >= mid && mid >= hi) {
		t.Fatalf("live fraction not monotone in severity: %0.3f, %0.3f, %0.3f", lo, mid, hi)
	}
	if lo < 0.9 {
		t.Fatalf("severity 0 should keep a lightly-loaded tag mostly live, got %0.3f", lo)
	}
	if hi > 0.5 {
		t.Fatalf("severity 1 should starve the tag, got live fraction %0.3f", hi)
	}
}

func TestSustainableDutyCycleNonFinite(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		_, err := SustainableDutyCycle(tag.BPSK, fec.Rate12, 1e6, w)
		if !errors.Is(err, ErrNonFiniteHarvest) {
			t.Errorf("harvest %v: got %v, want ErrNonFiniteHarvest", w, err)
		}
	}
	if _, err := SustainableDutyCycle(tag.BPSK, fec.Rate12, 1e6, HarvestedPowerW); err != nil {
		t.Errorf("finite harvest rejected: %v", err)
	}
}
