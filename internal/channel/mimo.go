package channel

import (
	"fmt"
	"math/rand"
)

// MIMOScenario extends Scenario with multiple AP receive antennas
// (the paper's Sec. 7 extension). The AP transmits from one antenna;
// every antenna receives. Each receive chain sees its own
// self-interference channel (its own leakage/reflection geometry), its
// own backward channel from the tag, and independent thermal noise —
// the independence across antennas is what provides spatial diversity.
type MIMOScenario struct {
	Cfg Config
	// HF is the single forward channel (TX antenna → tag).
	HF Taps
	// HEnv[i] and HB[i] are antenna i's self-interference and backward
	// channels.
	HEnv, HB []Taps
	// Noise is shared; calls draw independent samples per antenna.
	Noise *AWGN
	// Distortion is the (single) transmitter's hardware error source.
	Distortion *TxDistortion
}

// NewMIMOScenario draws one placement with nrx receive antennas. Bad
// configuration (including nrx < 1) is reported as an error.
func NewMIMOScenario(cfg Config, nrx int, r *rand.Rand) (*MIMOScenario, error) {
	if nrx < 1 {
		return nil, fmt.Errorf("channel: need at least one receive antenna, got %d", nrx)
	}
	base, err := NewScenario(cfg, r)
	if err != nil {
		return nil, err
	}
	m := &MIMOScenario{
		Cfg:        base.Cfg,
		HF:         base.HF,
		HEnv:       []Taps{base.HEnv},
		HB:         []Taps{base.HB},
		Noise:      base.Noise,
		Distortion: base.Distortion,
	}
	cfgFull := base.Cfg
	for i := 1; i < nrx; i++ {
		extra, err := NewScenario(cfgFull, r)
		if err != nil {
			return nil, err
		}
		m.HEnv = append(m.HEnv, extra.HEnv)
		m.HB = append(m.HB, extra.HB)
	}
	return m, nil
}

// NumRx returns the receive antenna count.
func (m *MIMOScenario) NumRx() int { return len(m.HB) }
