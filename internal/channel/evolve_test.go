package channel

import (
	"math"
	"math/rand"
	"testing"
)

func TestMIMOScenarioStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := mustMIMOScenario(DefaultConfig(2), 3, r)
	if m.NumRx() != 3 {
		t.Fatalf("NumRx = %d", m.NumRx())
	}
	if len(m.HEnv) != 3 || len(m.HB) != 3 {
		t.Fatalf("per-antenna channels missing: %d/%d", len(m.HEnv), len(m.HB))
	}
	// Antenna channels must be distinct realizations (independent
	// fading is the point of diversity).
	same := true
	for i := range m.HB[0] {
		if m.HB[0][i] != m.HB[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("antenna channels identical — no diversity")
	}
	// Single forward channel shared.
	if m.HF.Gain() == 0 {
		t.Fatal("forward channel missing")
	}
}

func TestMIMOScenarioRejectsZeroAntennas(t *testing.T) {
	if _, err := NewMIMOScenario(DefaultConfig(1), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for zero antennas")
	}
}

func TestEvolverStationaryStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := mustScenario(DefaultConfig(2), r)
	ref := s.HF.Gain()
	ev := mustEvolver(r, 0.9, s)
	var mean float64
	const steps = 2000
	for i := 0; i < steps; i++ {
		ev.Step()
		mean += s.HF.Gain()
	}
	mean /= steps
	// Long-run mean power within a factor of a few of the stationary
	// value (Rayleigh fading spread around it).
	if mean < ref/5 || mean > ref*5 {
		t.Fatalf("mean gain %v vs stationary %v", mean, ref)
	}
}

func TestEvolverLeakageTapFrozen(t *testing.T) {
	// The circulator leakage (h_env tap 0) is AP-internal and must not
	// fade.
	r := rand.New(rand.NewSource(3))
	s := mustScenario(DefaultConfig(1), r)
	leak := s.HEnv[0]
	ev := mustEvolver(r, 0.5, s)
	for i := 0; i < 50; i++ {
		ev.Step()
	}
	if s.HEnv[0] != leak {
		t.Fatal("leakage tap faded")
	}
	// Environmental taps do evolve.
	evolved := false
	for i := 1; i < len(s.HEnv); i++ {
		if s.HEnv[i] != 0 {
			evolved = true
		}
	}
	if !evolved {
		t.Fatal("environment taps vanished")
	}
}

func TestEvolverRhoValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := mustScenario(DefaultConfig(1), r)
	if _, err := NewEvolver(r, 1.5, s); err == nil {
		t.Fatal("expected error for rho out of range")
	}
}

func TestMobilityRhoMapping(t *testing.T) {
	// Faster motion → lower correlation; static → exactly 1.
	if r := MobilityRho(0, DefaultCarrierHz, 5e-3); r != 1 {
		t.Fatalf("static mobility rho = %v, want 1", r)
	}
	walk := MobilityRho(1.4, DefaultCarrierHz, 5e-3)
	jog := MobilityRho(3, DefaultCarrierHz, 5e-3)
	if !(walk < 1 && jog < walk && jog > 0) {
		t.Fatalf("mobility rho ordering wrong: walk %v, jog %v", walk, jog)
	}
	// Spot-check the composition: fd = v·fc/c, τ = 0.423/fd, ρ = exp(−Δt/τ).
	fd := DopplerHz(1.4, DefaultCarrierHz)
	want := math.Exp(-5e-3 * fd / 0.423)
	if math.Abs(walk-want) > 1e-12 {
		t.Fatalf("walk rho %v, want %v", walk, want)
	}
}

func TestEvolverSetRho(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := mustScenario(DefaultConfig(1), r)
	ev := mustEvolver(r, 0.9, s)
	if err := ev.SetRho(1.5); err == nil {
		t.Fatal("expected error for rho out of range")
	}
	if ev.Rho() != 0.9 {
		t.Fatalf("failed SetRho mutated rho to %v", ev.Rho())
	}
	if err := ev.SetRho(0.5); err != nil {
		t.Fatal(err)
	}
	if ev.Rho() != 0.5 {
		t.Fatalf("rho = %v after SetRho(0.5)", ev.Rho())
	}
	// Two evolvers applying the same rho switch at the same step stay
	// bit-identical; the stationary powers are untouched by the switch.
	r1, r2 := rand.New(rand.NewSource(6)), rand.New(rand.NewSource(6))
	s1, s2 := mustScenario(DefaultConfig(2), r1), mustScenario(DefaultConfig(2), r2)
	e1, e2 := mustEvolver(r1, 0.95, s1), mustEvolver(r2, 0.95, s2)
	for i := 0; i < 40; i++ {
		if i == 20 {
			if err := e1.SetRho(0.7); err != nil {
				t.Fatal(err)
			}
			if err := e2.SetRho(0.7); err != nil {
				t.Fatal(err)
			}
		}
		e1.Step()
		e2.Step()
		for k := range s1.HB {
			if s1.HB[k] != s2.HB[k] {
				t.Fatalf("step %d: tap %d diverged under identical rho switches", i, k)
			}
		}
	}
}

func TestCoherenceRhoMonotone(t *testing.T) {
	// Longer coherence → higher correlation.
	fast := CoherenceRho(0.01, 0.02)
	slow := CoherenceRho(0.01, 1.0)
	if !(slow > fast && slow < 1 && fast > 0) {
		t.Fatalf("rho ordering wrong: %v vs %v", fast, slow)
	}
	if math.Abs(CoherenceRho(0.693, 1)-0.5) > 0.01 {
		t.Fatalf("rho(ln2) = %v, want 0.5", CoherenceRho(0.693, 1))
	}
}
