package channel

import (
	"math"
	"math/rand"
	"testing"
)

func TestMIMOScenarioStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := mustMIMOScenario(DefaultConfig(2), 3, r)
	if m.NumRx() != 3 {
		t.Fatalf("NumRx = %d", m.NumRx())
	}
	if len(m.HEnv) != 3 || len(m.HB) != 3 {
		t.Fatalf("per-antenna channels missing: %d/%d", len(m.HEnv), len(m.HB))
	}
	// Antenna channels must be distinct realizations (independent
	// fading is the point of diversity).
	same := true
	for i := range m.HB[0] {
		if m.HB[0][i] != m.HB[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("antenna channels identical — no diversity")
	}
	// Single forward channel shared.
	if m.HF.Gain() == 0 {
		t.Fatal("forward channel missing")
	}
}

func TestMIMOScenarioRejectsZeroAntennas(t *testing.T) {
	if _, err := NewMIMOScenario(DefaultConfig(1), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for zero antennas")
	}
}

func TestEvolverStationaryStatistics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	s := mustScenario(DefaultConfig(2), r)
	ref := s.HF.Gain()
	ev := mustEvolver(r, 0.9, s)
	var mean float64
	const steps = 2000
	for i := 0; i < steps; i++ {
		ev.Step()
		mean += s.HF.Gain()
	}
	mean /= steps
	// Long-run mean power within a factor of a few of the stationary
	// value (Rayleigh fading spread around it).
	if mean < ref/5 || mean > ref*5 {
		t.Fatalf("mean gain %v vs stationary %v", mean, ref)
	}
}

func TestEvolverLeakageTapFrozen(t *testing.T) {
	// The circulator leakage (h_env tap 0) is AP-internal and must not
	// fade.
	r := rand.New(rand.NewSource(3))
	s := mustScenario(DefaultConfig(1), r)
	leak := s.HEnv[0]
	ev := mustEvolver(r, 0.5, s)
	for i := 0; i < 50; i++ {
		ev.Step()
	}
	if s.HEnv[0] != leak {
		t.Fatal("leakage tap faded")
	}
	// Environmental taps do evolve.
	evolved := false
	for i := 1; i < len(s.HEnv); i++ {
		if s.HEnv[i] != 0 {
			evolved = true
		}
	}
	if !evolved {
		t.Fatal("environment taps vanished")
	}
}

func TestEvolverRhoValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := mustScenario(DefaultConfig(1), r)
	if _, err := NewEvolver(r, 1.5, s); err == nil {
		t.Fatal("expected error for rho out of range")
	}
}

func TestCoherenceRhoMonotone(t *testing.T) {
	// Longer coherence → higher correlation.
	fast := CoherenceRho(0.01, 0.02)
	slow := CoherenceRho(0.01, 1.0)
	if !(slow > fast && slow < 1 && fast > 0) {
		t.Fatalf("rho ordering wrong: %v vs %v", fast, slow)
	}
	if math.Abs(CoherenceRho(0.693, 1)-0.5) > 0.01 {
		t.Fatalf("rho(ln2) = %v, want 0.5", CoherenceRho(0.693, 1))
	}
}
