package channel

import (
	"math"
	"math/rand"

	"backfi/internal/dsp"
)

// Taps is a causal FIR channel impulse response at sample spacing.
type Taps []complex128

// Gain returns the total power gain sum |h[k]|².
func (t Taps) Gain() float64 {
	var g float64
	for _, v := range t {
		g += real(v)*real(v) + imag(v)*imag(v)
	}
	return g
}

// GainDB returns Gain in dB.
func (t Taps) GainDB() float64 { return dsp.DB(t.Gain()) }

// Apply convolves x with the channel, keeping the input length (causal
// FIR semantics).
func (t Taps) Apply(x []complex128) []complex128 {
	return dsp.ConvolveSame(x, t)
}

// Scale returns a copy of the taps scaled so the total power gain is
// gainDB.
func (t Taps) Scale(gainDB float64) Taps {
	g := t.Gain()
	if g == 0 {
		out := make(Taps, len(t))
		copy(out, t)
		return out
	}
	s := complex(math.Sqrt(dsp.UnDB(gainDB)/g), 0)
	out := make(Taps, len(t))
	for i, v := range t {
		out[i] = v * s
	}
	return out
}

// Convolve returns the cascade of two channels (t then u).
func (t Taps) Convolve(u Taps) Taps {
	return Taps(dsp.Convolve(t, u))
}

// RayleighTaps draws an n-tap Rayleigh-fading profile with an
// exponential power-delay profile of the given decay (power ratio
// between successive taps, in (0,1]); total gain is normalized to 0 dB
// before the caller scales it. n must be >= 1.
func RayleighTaps(r *rand.Rand, n int, decay float64) Taps {
	if n < 1 {
		panic("channel: need at least one tap")
	}
	if decay <= 0 || decay > 1 {
		panic("channel: decay must be in (0,1]")
	}
	t := make(Taps, n)
	p := 1.0
	for i := range t {
		sigma := math.Sqrt(p / 2)
		t[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
		p *= decay
	}
	return t.Scale(0)
}

// RicianTaps draws an n-tap profile whose first tap has a deterministic
// line-of-sight component with Rician K-factor kdB (LOS/NLOS power
// ratio); the remaining energy is Rayleigh with exponential decay.
// Total gain is normalized to 0 dB. The LOS phase is drawn uniformly.
func RicianTaps(r *rand.Rand, n int, kdB, decay float64) Taps {
	t := RayleighTaps(r, n, decay)
	k := dsp.UnDB(kdB)
	// Split power: LOS fraction k/(k+1) on tap 0, scatter 1/(k+1).
	scatter := math.Sqrt(1 / (k + 1))
	for i := range t {
		t[i] *= complex(scatter, 0)
	}
	los := math.Sqrt(k / (k + 1))
	t[0] += dsp.Phasor(r.Float64()*2*math.Pi) * complex(los, 0)
	return t.Scale(0)
}

// DelayTaps prepends d zero taps to a channel (integer bulk delay).
func (t Taps) DelayTaps(d int) Taps {
	if d < 0 {
		panic("channel: negative delay")
	}
	out := make(Taps, d+len(t))
	copy(out[d:], t)
	return out
}

// FrequencyResponse returns the channel's DFT over nfft bins (FFT
// order): H[k] = Σ_n h[n] e^{−j2πkn/nfft}. Useful for inspecting the
// frequency selectivity that breaks single-tap (tone-style)
// cancellation on wideband excitations (paper Sec. 3.2).
func (t Taps) FrequencyResponse(nfft int) []complex128 {
	padded := make([]complex128, nfft)
	copy(padded, t)
	return dsp.FFT(padded)
}

// SelectivityDB returns the max-to-min power ratio of the frequency
// response over nfft bins, in dB — 0 for a single tap (flat channel),
// large for multipath.
func (t Taps) SelectivityDB(nfft int) float64 {
	h := t.FrequencyResponse(nfft)
	minP, maxP := math.Inf(1), 0.0
	for _, v := range h {
		p := real(v)*real(v) + imag(v)*imag(v)
		if p < minP {
			minP = p
		}
		if p > maxP {
			maxP = p
		}
	}
	if minP <= 0 {
		return math.Inf(1)
	}
	return dsp.DB(maxP / minP)
}
