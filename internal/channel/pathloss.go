// Package channel models the propagation environment of the BackFi
// testbed at complex baseband: path loss, sample-spaced multipath
// fading taps, thermal noise, and transmit-hardware distortion. It
// builds the three FIR channels of the paper's signal model (Eq. 1):
// h_env (self-interference: direct TX→RX leakage plus environmental
// reflections), h_f (AP→tag forward), and h_b (tag→AP backward).
//
// Convention: waveforms are in units of √watts, so dsp.Power of a
// signal is its power in watts and channel tap magnitudes are linear
// amplitude gains.
package channel

import "math"

// SpeedOfLight in m/s.
const SpeedOfLight = 299792458.0

// DefaultCarrierHz is WiFi channel 6 (2.437 GHz), the band used in the
// paper's experiments.
const DefaultCarrierHz = 2.437e9

// BoltzmannK is Boltzmann's constant in J/K.
const BoltzmannK = 1.380649e-23

// FSPLdB returns the free-space path loss in dB between isotropic
// antennas at distance d meters and carrier frequency f Hz.
func FSPLdB(d, f float64) float64 {
	if d <= 0 || f <= 0 {
		panic("channel: FSPL requires positive distance and frequency")
	}
	return 20 * math.Log10(4*math.Pi*d*f/SpeedOfLight)
}

// LogDistancePLdB returns path loss under the log-distance model:
// the free-space loss at reference distance d0, plus 10·η·log10(d/d0).
// η=2 is free space; indoor NLOS is typically 2.5–4. BackFi's
// backscatter link uses a calibrated shallow exponent (see package
// backscatter scenario) reflecting the rich-reflection lab of the paper.
func LogDistancePLdB(d, f, eta, d0 float64) float64 {
	if d <= 0 || d0 <= 0 {
		panic("channel: log-distance requires positive distances")
	}
	return FSPLdB(d0, f) + 10*eta*math.Log10(d/d0)
}

// ThermalNoiseW returns thermal noise power kTB in watts over bandwidth
// b Hz at temperature 290 K, increased by a receiver noise figure in dB.
func ThermalNoiseW(b, noiseFigureDB float64) float64 {
	return BoltzmannK * 290 * b * math.Pow(10, noiseFigureDB/10)
}

// PropagationDelaySamples returns the one-way propagation delay in
// (possibly fractional) samples at the given sample rate.
func PropagationDelaySamples(d, sampleRate float64) float64 {
	return d / SpeedOfLight * sampleRate
}
