package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// Packet-to-packet channel evolution. Within one excitation packet the
// paper treats h_f/h_b/h_env as time-invariant (delay spread ≪ symbol,
// coherence time ≫ packet); across packets, people and doors move. The
// evolver applies a first-order Gauss-Markov (AR(1)) process to each
// tap around its *stationary* power — captured when the evolver is
// created — which is the standard slow-fading model between channel
// uses: t ← ρ·t + √(1−ρ²)·w with w drawn at the stationary tap power,
// so E|t|² stays at the stationary value for all time.

// Evolver perturbs one scenario's channels between packets.
type Evolver struct {
	rng *rand.Rand
	rho float64
	// Stationary per-tap powers captured at construction.
	refEnv, refF, refB []float64
	scenario           *Scenario
}

// NewEvolver builds an evolver bound to a scenario, with AR(1)
// correlation rho in [0, 1] (1 = frozen, 0 = independent redraw per
// step). An out-of-range rho is reported as an error.
func NewEvolver(r *rand.Rand, rho float64, s *Scenario) (*Evolver, error) {
	if rho < 0 || rho > 1 {
		return nil, fmt.Errorf("channel: evolution rho %v outside [0,1]", rho)
	}
	e := &Evolver{rng: r, rho: rho, scenario: s}
	// The leakage tap (index 0 of h_env) is AP-internal and does not
	// fade; mark it with a zero reference so Step leaves it alone.
	e.refEnv = tapPowers(s.HEnv)
	if len(e.refEnv) > 0 {
		e.refEnv[0] = 0
	}
	e.refF = tapPowers(s.HF)
	e.refB = tapPowers(s.HB)
	return e, nil
}

func tapPowers(t Taps) []float64 {
	out := make([]float64, len(t))
	for i, v := range t {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// Step advances the bound scenario's channels by one packet interval.
func (e *Evolver) Step() {
	if e.rho == 1 {
		return
	}
	e.step(e.scenario.HEnv, e.refEnv)
	e.step(e.scenario.HF, e.refF)
	e.step(e.scenario.HB, e.refB)
}

func (e *Evolver) step(t Taps, ref []float64) {
	inno := math.Sqrt(1 - e.rho*e.rho)
	for i := range t {
		if ref[i] == 0 {
			continue // non-fading component
		}
		sigma := math.Sqrt(ref[i] / 2)
		w := complex(e.rng.NormFloat64()*sigma, e.rng.NormFloat64()*sigma)
		t[i] = complex(e.rho, 0)*t[i] + complex(inno, 0)*w
	}
}

// CoherenceRho converts a physical coherence time and packet interval
// to the AR(1) ρ: ρ = exp(−Δt/τ).
func CoherenceRho(packetIntervalSec, coherenceSec float64) float64 {
	if coherenceSec <= 0 {
		return 0
	}
	return math.Exp(-packetIntervalSec / coherenceSec)
}

// Rho returns the evolver's current AR(1) correlation.
func (e *Evolver) Rho() float64 { return e.rho }

// SetRho retargets the AR(1) correlation mid-stream — the mobility
// hook (DESIGN.md §5k): a scripted fault timeline that sets a tag in
// motion lowers ρ from the step's frame on. The stationary tap powers
// keep their construction-time values, so E|t|² is preserved across
// the change; only the decorrelation speed moves. Note that ρ = 1
// short-circuits Step without consuming RNG draws, so crossing 1 in
// either direction changes the draw schedule — callers that need
// replayability must apply the same ρ switches at the same step
// ordinals (the serving layer's frame-indexed timeline does).
func (e *Evolver) SetRho(rho float64) error {
	if rho < 0 || rho > 1 {
		return fmt.Errorf("channel: evolution rho %v outside [0,1]", rho)
	}
	e.rho = rho
	return nil
}

// DopplerHz is the maximum Doppler shift of a scatterer moving at
// speedMps under carrierHz: f_d = v·f_c/c.
func DopplerHz(speedMps, carrierHz float64) float64 {
	return speedMps * carrierHz / 299792458.0
}

// ClarkeCoherenceSec is the standard Clarke-model coherence time for a
// maximum Doppler f_d: τ ≈ 0.423/f_d (the 50%-correlation definition).
// Non-positive Doppler means a static channel (infinite coherence).
func ClarkeCoherenceSec(dopplerHz float64) float64 {
	if dopplerHz <= 0 {
		return math.Inf(1)
	}
	return 0.423 / dopplerHz
}

// MobilityRho maps a tag (or nearby scatterer) speed to the AR(1) ρ a
// packet-to-packet evolver should run at: speed → Doppler → Clarke
// coherence time → ρ = exp(−Δt/τ). A non-positive speed returns 1
// (mobility imposes no decorrelation; the caller keeps its static
// baseline).
func MobilityRho(speedMps, carrierHz, packetIntervalSec float64) float64 {
	if speedMps <= 0 || carrierHz <= 0 || packetIntervalSec <= 0 {
		return 1
	}
	tau := ClarkeCoherenceSec(DopplerHz(speedMps, carrierHz))
	if math.IsInf(tau, 1) {
		return 1
	}
	return CoherenceRho(packetIntervalSec, tau)
}
