package channel

import (
	"math"
	"math/rand"
	"testing"

	"backfi/internal/dsp"
)

func TestFSPLKnownValue(t *testing.T) {
	// Free space at 1 m, 2.437 GHz ≈ 40.2 dB.
	got := FSPLdB(1, 2.437e9)
	if math.Abs(got-40.2) > 0.1 {
		t.Fatalf("FSPL = %v, want ≈40.2", got)
	}
	// Doubling distance adds 6 dB.
	if d := FSPLdB(2, 2.437e9) - got; math.Abs(d-6.02) > 0.01 {
		t.Fatalf("distance doubling added %v dB", d)
	}
}

func TestFSPLPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FSPLdB(0, 1e9)
}

func TestLogDistanceReducesToFSPL(t *testing.T) {
	for _, d := range []float64{0.5, 1, 3, 10} {
		fs := FSPLdB(d, 2.4e9)
		ld := LogDistancePLdB(d, 2.4e9, 2, 1)
		if math.Abs(fs-ld) > 1e-9 {
			t.Fatalf("d=%v: log-distance %v vs FSPL %v", d, ld, fs)
		}
	}
}

func TestLogDistanceExponent(t *testing.T) {
	// η=4: 10× distance adds 40 dB.
	d1 := LogDistancePLdB(1, 2.4e9, 4, 1)
	d10 := LogDistancePLdB(10, 2.4e9, 4, 1)
	if math.Abs(d10-d1-40) > 1e-9 {
		t.Fatalf("exponent-4 delta = %v", d10-d1)
	}
}

func TestThermalNoiseKnownValue(t *testing.T) {
	// kTB over 20 MHz ≈ −101 dBm; +6 dB NF ≈ −95 dBm.
	got := dsp.DBm(ThermalNoiseW(20e6, 6))
	if math.Abs(got-(-95)) > 0.3 {
		t.Fatalf("noise = %v dBm, want ≈ −95", got)
	}
}

func TestTapsGainAndScale(t *testing.T) {
	taps := Taps{complex(1, 0), complex(0, 0.5)}
	if g := taps.Gain(); math.Abs(g-1.25) > 1e-12 {
		t.Fatalf("Gain = %v", g)
	}
	scaled := taps.Scale(-20)
	if math.Abs(scaled.GainDB()-(-20)) > 1e-9 {
		t.Fatalf("scaled gain %v dB", scaled.GainDB())
	}
	// Relative tap structure preserved.
	r0 := scaled[1] / scaled[0]
	if math.Abs(real(r0)-0) > 1e-12 || math.Abs(imag(r0)-0.5) > 1e-12 {
		t.Fatalf("tap structure changed: %v", r0)
	}
}

func TestRayleighTapsNormalizedAndDecaying(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	taps := RayleighTaps(r, 8, 0.5)
	if math.Abs(taps.Gain()-1) > 1e-9 {
		t.Fatalf("gain %v, want 1", taps.Gain())
	}
	// Average over many draws: later taps weaker.
	var p0, p7 float64
	for i := 0; i < 400; i++ {
		tp := RayleighTaps(r, 8, 0.5)
		p0 += real(tp[0])*real(tp[0]) + imag(tp[0])*imag(tp[0])
		p7 += real(tp[7])*real(tp[7]) + imag(tp[7])*imag(tp[7])
	}
	if p0 < 30*p7 { // expect ≈128× on average
		t.Fatalf("PDP not decaying: first %v last %v", p0, p7)
	}
}

func TestRicianKFactorConcentratesFirstTap(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var first float64
	const trials = 300
	for i := 0; i < trials; i++ {
		tp := RicianTaps(r, 6, 10, 0.5)
		first += real(tp[0])*real(tp[0]) + imag(tp[0])*imag(tp[0])
	}
	first /= trials
	// K=10 dB: LOS fraction ≈ 0.91 of total (plus tap-0 scatter share).
	if first < 0.85 {
		t.Fatalf("first-tap power fraction %v, want > 0.85", first)
	}
}

func TestDelayTaps(t *testing.T) {
	taps := Taps{1}.DelayTaps(3)
	if len(taps) != 4 || taps[3] != 1 || taps[0] != 0 {
		t.Fatalf("DelayTaps = %v", taps)
	}
}

func TestTapsApplyMatchesConvolution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := make([]complex128, 50)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	taps := Taps{1, complex(0.2, -0.1)}
	y := taps.Apply(x)
	want := dsp.ConvolveSame(x, taps)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Apply differs at %d", i)
		}
	}
}

func TestAWGNPowerAndWhiteness(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	src := NewAWGN(r, 2.0)
	n := src.Samples(200000)
	if p := dsp.Power(n); math.Abs(p-2) > 0.05 {
		t.Fatalf("noise power %v, want 2", p)
	}
	// Lag-1 correlation should be near zero.
	c := dsp.AutoCorrelateLag(n, 1, len(n)-1)
	if rho := real(c) / dsp.Energy(n); math.Abs(rho) > 0.01 {
		t.Fatalf("lag-1 correlation %v", rho)
	}
}

func TestAWGNAddPreservesSignal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	src := NewAWGN(r, 0)
	x := []complex128{1, complex(0, 2)}
	y := src.Add(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("zero-power noise changed the signal")
		}
	}
}

func TestTxDistortionEVMLevel(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	d := NewTxDistortion(r, -20)
	x := make([]complex128, 100000)
	for i := range x {
		x[i] = dsp.Phasor(r.Float64() * 2 * math.Pi)
	}
	y := d.Apply(x)
	errP := dsp.Power(dsp.Sub(y, x))
	if got := dsp.DB(errP / dsp.Power(x)); math.Abs(got-(-20)) > 0.3 {
		t.Fatalf("distortion EVM %v dB, want −20", got)
	}
}

func TestTxDistortionDisabled(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	d := NewTxDistortion(r, math.Inf(-1))
	x := []complex128{1, 2, 3}
	y := d.Apply(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("disabled distortion changed the signal")
		}
	}
}

func TestScenarioStructure(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	s := mustScenario(DefaultConfig(2), r)
	if s.HEnv.Gain() == 0 || s.HF.Gain() == 0 || s.HB.Gain() == 0 {
		t.Fatal("channels should be non-zero")
	}
	// Self-interference is vastly stronger than the backscatter path.
	si := s.SelfInterferencePowerW()
	bs := s.BackscatterRxPowerW()
	if dsp.DB(si/bs) < 20 {
		t.Fatalf("self-interference only %v dB above backscatter", dsp.DB(si/bs))
	}
	// And the backscatter should still be above thermal noise at 2 m.
	if s.ExpectedSNRdB() < 5 {
		t.Fatalf("expected SNR %v dB at 2 m", s.ExpectedSNRdB())
	}
}

func TestScenarioSNRDecreasesWithDistance(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var prev float64 = math.Inf(1)
	for _, d := range []float64{0.5, 1, 2, 4, 7} {
		// Average a few realizations to smooth fading.
		var snr float64
		const reps = 20
		for i := 0; i < reps; i++ {
			snr += mustScenario(DefaultConfig(d), r).ExpectedSNRdB()
		}
		snr /= reps
		if snr >= prev {
			t.Fatalf("SNR %v at %v m not below %v", snr, d, prev)
		}
		prev = snr
	}
}

func TestScenarioRequiresDistance(t *testing.T) {
	if _, err := NewScenario(Config{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for zero distance")
	}
}

func TestDownlinkGainTracksDistance(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	var g1, g8 float64
	for i := 0; i < 50; i++ {
		t1, _ := Downlink(r, 1, 2.5, 2.4e9, 4, 6, 20e6)
		t8, _ := Downlink(r, 8, 2.5, 2.4e9, 4, 6, 20e6)
		g1 += t1.Gain()
		g8 += t8.Gain()
	}
	// 8× distance at η=2.5 is ≈22.6 dB.
	if d := dsp.DB(g1 / g8); math.Abs(d-22.6) > 2 {
		t.Fatalf("distance delta %v dB, want ≈22.6", d)
	}
}

func TestPropagationDelaySamples(t *testing.T) {
	// 15 m at 20 MHz is exactly one sample.
	got := PropagationDelaySamples(SpeedOfLight/20e6, 20e6)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("delay = %v samples", got)
	}
}

func TestTapsConvolveCascade(t *testing.T) {
	a := Taps{1, complex(0.5, 0)}
	b := Taps{complex(0, 1)}
	c := a.Convolve(b)
	if len(c) != 2 || c[0] != complex(0, 1) || c[1] != complex(0, 0.5) {
		t.Fatalf("cascade = %v", c)
	}
}

func TestFrequencyResponseSingleTapFlat(t *testing.T) {
	flat := Taps{complex(0.5, 0.2)}
	if s := flat.SelectivityDB(64); s > 1e-9 {
		t.Fatalf("single tap selectivity %v dB, want 0", s)
	}
	h := flat.FrequencyResponse(64)
	for _, v := range h {
		if v != flat[0] {
			t.Fatal("flat channel response should equal the tap")
		}
	}
}

func TestFrequencyResponseMultipathSelective(t *testing.T) {
	// Two near-equal taps create a deep null: the paper's reason that
	// a programmable attenuator + phase shifter cannot cancel a 20 MHz
	// excitation (Sec. 3.2).
	twoTap := Taps{1, complex(0.9, 0)}
	if s := twoTap.SelectivityDB(64); s < 20 {
		t.Fatalf("two-tap selectivity only %v dB", s)
	}
	r := rand.New(rand.NewSource(1))
	multi := RayleighTaps(r, 8, 0.5)
	if s := multi.SelectivityDB(64); s < 3 {
		t.Fatalf("multipath selectivity %v dB implausibly flat", s)
	}
}
