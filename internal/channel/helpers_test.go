package channel

import "math/rand"

// Test helpers: constructors return errors since the panic-free API
// refactor; tests built on known-valid configs unwrap them here.

func mustScenario(cfg Config, r *rand.Rand) *Scenario {
	s, err := NewScenario(cfg, r)
	if err != nil {
		panic(err)
	}
	return s
}

func mustMIMOScenario(cfg Config, nrx int, r *rand.Rand) *MIMOScenario {
	m, err := NewMIMOScenario(cfg, nrx, r)
	if err != nil {
		panic(err)
	}
	return m
}

func mustEvolver(r *rand.Rand, rho float64, s *Scenario) *Evolver {
	e, err := NewEvolver(r, rho, s)
	if err != nil {
		panic(err)
	}
	return e
}
