package channel

import (
	"math"
	"math/rand"
)

// AWGN is a seeded additive white Gaussian noise source.
type AWGN struct {
	rng    *rand.Rand
	sigma  float64 // per-dimension standard deviation
	powerW float64
}

// NewAWGN returns a noise source of the given total complex power in
// watts.
func NewAWGN(r *rand.Rand, powerW float64) *AWGN {
	if powerW < 0 {
		panic("channel: negative noise power")
	}
	return &AWGN{rng: r, sigma: math.Sqrt(powerW / 2), powerW: powerW}
}

// PowerW returns the configured noise power.
func (a *AWGN) PowerW() float64 { return a.powerW }

// Add returns x plus white complex Gaussian noise.
func (a *AWGN) Add(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] + complex(a.rng.NormFloat64()*a.sigma, a.rng.NormFloat64()*a.sigma)
	}
	return out
}

// AddInPlaceRange adds fresh noise to x[lo:hi] in place, drawing
// exactly hi−lo complex samples from the source. The windowed serve
// hot path uses it to pay for noise only over the samples the decoder
// will read; the draw sequence is deterministic for a fixed sequence
// of window sizes.
func (a *AWGN) AddInPlaceRange(x []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		x[i] += complex(a.rng.NormFloat64()*a.sigma, a.rng.NormFloat64()*a.sigma)
	}
}

// Samples returns n fresh noise samples.
func (a *AWGN) Samples(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(a.rng.NormFloat64()*a.sigma, a.rng.NormFloat64()*a.sigma)
	}
	return out
}

// TxDistortion models transmitter hardware error (PA nonlinearity, IQ
// imbalance, phase noise) as an additive white error floor at a fixed
// EVM relative to the instantaneous signal power. The receiver's ideal
// copy of the transmitted signal does not include this error, which is
// what bounds achievable cancellation and backscatter SNR at short
// range (WARP-class hardware: ≈ −28 dB EVM).
type TxDistortion struct {
	rng   *rand.Rand
	evmDB float64
}

// NewTxDistortion returns a distortion source with the given EVM floor
// in dB (negative; e.g. −28). An EVM of −inf disables distortion.
func NewTxDistortion(r *rand.Rand, evmDB float64) *TxDistortion {
	return &TxDistortion{rng: r, evmDB: evmDB}
}

// Apply returns x plus the distortion error term.
func (d *TxDistortion) Apply(x []complex128) []complex128 {
	if math.IsInf(d.evmDB, -1) {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	ratio := math.Pow(10, d.evmDB/10)
	out := make([]complex128, len(x))
	for i, v := range x {
		p := (real(v)*real(v) + imag(v)*imag(v)) * ratio
		s := math.Sqrt(p / 2)
		out[i] = v + complex(d.rng.NormFloat64()*s, d.rng.NormFloat64()*s)
	}
	return out
}
