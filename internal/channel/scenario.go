package channel

import (
	"fmt"
	"math"
	"math/rand"

	"backfi/internal/dsp"
)

// Config describes one placement of the BackFi AP, tag, and
// environment. Zero values are replaced by the calibrated defaults of
// DefaultConfig.
type Config struct {
	// DistanceM is the AP–tag separation in meters.
	DistanceM float64
	// CarrierHz is the RF carrier (defaults to WiFi channel 6).
	CarrierHz float64
	// SampleRate is the baseband rate in Hz (defaults to 20 MHz).
	SampleRate float64
	// TxPowerDBm is the AP transmit power.
	TxPowerDBm float64
	// NoiseFigureDB is the AP receiver noise figure.
	NoiseFigureDB float64
	// BandwidthHz sets the thermal noise bandwidth (defaults to the
	// sample rate).
	BandwidthHz float64
	// PathLossExponent is the one-way log-distance exponent of the
	// backscatter link. The default is calibrated to the paper's
	// measured throughput-vs-range points (Sec. 6.1), which imply a
	// shallow effective exponent in their rich-reflection lab.
	PathLossExponent float64
	// TagGainDB aggregates tag antenna gains minus modulator
	// reflection/insertion loss over the round trip.
	TagGainDB float64
	// LeakageDB is the direct TX→RX leakage power gain (circulator
	// isolation), relative to transmit power. Typically −15…−25 dB.
	LeakageDB float64
	// EnvReflectDB is the aggregate power gain of environmental
	// reflections arriving back at the AP receiver.
	EnvReflectDB float64
	// EnvTaps is the FIR length of the environmental reflections.
	EnvTaps int
	// LinkTaps is the FIR length of each of h_f and h_b.
	LinkTaps int
	// DecayPerTap is the exponential power-delay-profile ratio.
	DecayPerTap float64
	// RicianKdB is the K-factor of the tag link's first tap.
	RicianKdB float64
	// TxEVMdB is the transmitter hardware error floor (−inf disables).
	TxEVMdB float64
}

// DefaultConfig returns the calibrated testbed model at the given AP–tag
// distance.
func DefaultConfig(distanceM float64) Config {
	return Config{
		DistanceM:        distanceM,
		CarrierHz:        DefaultCarrierHz,
		SampleRate:       20e6,
		TxPowerDBm:       20,
		NoiseFigureDB:    6,
		BandwidthHz:      20e6,
		PathLossExponent: 1.05,
		TagGainDB:        -13,
		LeakageDB:        -18,
		EnvReflectDB:     -40,
		EnvTaps:          10,
		LinkTaps:         3,
		DecayPerTap:      0.5,
		RicianKdB:        12,
		TxEVMdB:          -28,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig(c.DistanceM)
	if c.CarrierHz == 0 {
		c.CarrierHz = d.CarrierHz
	}
	if c.SampleRate == 0 {
		c.SampleRate = d.SampleRate
	}
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = d.TxPowerDBm
	}
	if c.NoiseFigureDB == 0 {
		c.NoiseFigureDB = d.NoiseFigureDB
	}
	if c.BandwidthHz == 0 {
		c.BandwidthHz = c.SampleRate
	}
	if c.PathLossExponent == 0 {
		c.PathLossExponent = d.PathLossExponent
	}
	if c.TagGainDB == 0 {
		c.TagGainDB = d.TagGainDB
	}
	if c.LeakageDB == 0 {
		c.LeakageDB = d.LeakageDB
	}
	if c.EnvReflectDB == 0 {
		c.EnvReflectDB = d.EnvReflectDB
	}
	if c.EnvTaps == 0 {
		c.EnvTaps = d.EnvTaps
	}
	if c.LinkTaps == 0 {
		c.LinkTaps = d.LinkTaps
	}
	if c.DecayPerTap == 0 {
		c.DecayPerTap = d.DecayPerTap
	}
	if c.RicianKdB == 0 {
		c.RicianKdB = d.RicianKdB
	}
	if c.TxEVMdB == 0 {
		c.TxEVMdB = d.TxEVMdB
	}
	return c
}

// Validate checks the configuration as NewScenario will see it, i.e.
// after zero fields are filled from DefaultConfig — a zero CarrierHz is
// fine (it means "default"), a negative one is not.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.DistanceM <= 0 {
		return fmt.Errorf("channel: AP–tag distance %v m must be positive", c.DistanceM)
	}
	if c.CarrierHz <= 0 {
		return fmt.Errorf("channel: carrier %v Hz must be positive", c.CarrierHz)
	}
	if c.SampleRate <= 0 {
		return fmt.Errorf("channel: sample rate %v Hz must be positive", c.SampleRate)
	}
	if c.BandwidthHz <= 0 {
		return fmt.Errorf("channel: noise bandwidth %v Hz must be positive", c.BandwidthHz)
	}
	if c.PathLossExponent <= 0 {
		return fmt.Errorf("channel: path-loss exponent %v must be positive", c.PathLossExponent)
	}
	if c.EnvTaps < 1 {
		return fmt.Errorf("channel: EnvTaps %d must be at least 1", c.EnvTaps)
	}
	if c.LinkTaps < 1 {
		return fmt.Errorf("channel: LinkTaps %d must be at least 1", c.LinkTaps)
	}
	if c.DecayPerTap <= 0 || c.DecayPerTap > 1 {
		return fmt.Errorf("channel: DecayPerTap %v outside (0,1]", c.DecayPerTap)
	}
	return nil
}

// Scenario is one realized placement: the three channels of the
// paper's Eq. 1 plus noise and transmit-hardware distortion sources.
type Scenario struct {
	Cfg Config
	// HEnv is the self-interference channel (leakage + environment).
	HEnv Taps
	// HF and HB are the forward (AP→tag) and backward (tag→AP)
	// channels.
	HF, HB Taps
	// Noise is the AP receiver's thermal noise source.
	Noise *AWGN
	// Distortion is the AP transmitter's hardware error source.
	Distortion *TxDistortion
}

// NewScenario draws one random placement realization. The configuration
// is rejected with an error (never a panic) if Validate fails.
func NewScenario(cfg Config, r *rand.Rand) (*Scenario, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	// Self-interference: a dominant leakage tap at zero delay plus
	// Rayleigh environmental reflections spread over EnvTaps.
	leak := make(Taps, 1)
	leak[0] = dsp.Phasor(r.Float64()*2*math.Pi) * complex(math.Sqrt(dsp.UnDB(cfg.LeakageDB)), 0)
	env := RayleighTaps(r, cfg.EnvTaps, cfg.DecayPerTap).Scale(cfg.EnvReflectDB).DelayTaps(1)
	henv := make(Taps, len(env))
	copy(henv, env)
	henv[0] += leak[0]

	// One-way tag link gain: path loss at the configured exponent plus
	// half the tag gain budget on each leg.
	pl := LogDistancePLdB(cfg.DistanceM, cfg.CarrierHz, cfg.PathLossExponent, 1)
	oneway := -pl + cfg.TagGainDB/2
	delay := int(math.Round(PropagationDelaySamples(cfg.DistanceM, cfg.SampleRate)))
	hf := RicianTaps(r, cfg.LinkTaps, cfg.RicianKdB, cfg.DecayPerTap).Scale(oneway).DelayTaps(delay)
	hb := RicianTaps(r, cfg.LinkTaps, cfg.RicianKdB, cfg.DecayPerTap).Scale(oneway).DelayTaps(delay)

	noiseW := ThermalNoiseW(cfg.BandwidthHz, cfg.NoiseFigureDB)
	return &Scenario{
		Cfg:        cfg,
		HEnv:       henv,
		HF:         hf,
		HB:         hb,
		Noise:      NewAWGN(r, noiseW),
		Distortion: NewTxDistortion(r, cfg.TxEVMdB),
	}, nil
}

// TxPowerW returns the configured transmit power in watts.
func (s *Scenario) TxPowerW() float64 { return dsp.UnDBm(s.Cfg.TxPowerDBm) }

// BackscatterRxPowerW returns the oracle (VNA-style) backscatter signal
// power at the AP receiver for a unit-modulation tag.
func (s *Scenario) BackscatterRxPowerW() float64 {
	return s.TxPowerW() * s.HF.Gain() * s.HB.Gain()
}

// ExpectedSNRdB returns the oracle backscatter SNR against thermal
// noise only — the "expected SNR" axis of the paper's Fig. 11a.
func (s *Scenario) ExpectedSNRdB() float64 {
	return dsp.SNRdB(s.BackscatterRxPowerW(), s.Noise.PowerW())
}

// SelfInterferencePowerW returns the self-interference power at the AP
// receiver before cancellation.
func (s *Scenario) SelfInterferencePowerW() float64 {
	return s.TxPowerW() * s.HEnv.Gain()
}

// Downlink draws a one-way WiFi channel (AP→client) at the given
// distance with indoor exponent eta, returning the taps and the client
// noise power. Used by the WiFi-impact experiments (Figs. 12b/13).
func Downlink(r *rand.Rand, distanceM, eta, carrierHz float64, ntaps int, noiseFigureDB, bandwidthHz float64) (Taps, float64) {
	pl := LogDistancePLdB(distanceM, carrierHz, eta, 1)
	taps := RicianTaps(r, ntaps, 6, 0.5).Scale(-pl)
	return taps, ThermalNoiseW(bandwidthHz, noiseFigureDB)
}
