// Package adapt closes the loop the paper leaves open: Sec. 6.1 picks
// the best of the 36 tag configurations *offline* (Monte-Carlo
// feasibility at a known placement), but a deployed link drifts —
// people move, a neighboring cell starts streaming, the tag's
// oscillator warms up. This package is a deterministic runtime rate
// controller: it consumes the per-packet diagnostics the pipeline
// already lifts into core.PacketResult (raw BER, SIC residual,
// Viterbi corrections, wake misses, ACK drops) and walks a ladder of
// tag configurations with hysteresis — fast downshift on hard failure,
// slow upshift only after a sustained clean run — so a session
// degrades to a robust operating point instead of exhausting its ARQ
// budget, and climbs back when the channel recovers.
//
// Everything is a pure function of the observation stream: no wall
// clock, no RNG. The same sequence of Observations produces a
// byte-identical switch trace, which is what makes the serving layer's
// shard-count determinism contract (DESIGN.md §5e) extend to adaptive
// sessions (§5f).
package adapt

import (
	"fmt"
	"sort"

	"backfi/internal/tag"
)

// Config tunes the controller's thresholds. The zero value of any
// field selects the default noted on it; Defaults() returns the fully
// resolved set.
type Config struct {
	// DownAfter is the consecutive hard failures (CRC fail or wake
	// miss) that trigger a downshift — small, so collapse is caught
	// within a frame's retry budget. Default 2.
	DownAfter int
	// UpAfter is the consecutive end-to-end deliveries required before
	// an upshift is considered — large, so one lucky packet cannot
	// bounce the link back into a rate that just failed. Default 12.
	UpAfter int
	// HoldPackets is the post-switch hold-down: after any switch the
	// controller observes at least this many attempts before it will
	// upshift, bounding oscillation frequency. Default 8.
	HoldPackets int
	// BERDown: a decoded attempt whose raw (pre-FEC) BER reaches this
	// counts as dirty, and a dirty EWMA at/above it forces a downshift
	// even while the CRC still passes — the early-warning path. The
	// rate-1/2 K=7 code corrects comfortably to ~5–6% raw BER, so by
	// 8% frames are dying. Default 0.08.
	BERDown float64
	// BERUp: the BER EWMA must be at or below this before an upshift —
	// the hysteresis gap between BERUp and BERDown is what keeps the
	// controller from ping-ponging on a boundary channel. Default 0.02.
	BERUp float64
	// EWMAAlpha is the BER EWMA smoothing weight on the newest decoded
	// attempt. Default 0.25.
	EWMAAlpha float64
	// ResidualMarginDB: a decoded attempt whose SIC residual sits this
	// far above the session's observed floor counts as dirty (the
	// canceller is being jammed, e.g. an interference burst in the
	// training window). Default 10.
	ResidualMarginDB float64
	// Floor is the minimum ladder index the controller will not
	// downshift below. Default 0 (the ladder's most robust rung).
	Floor int
}

// Defaults returns cfg with every unset field resolved.
func (c Config) Defaults() Config {
	if c.DownAfter == 0 {
		c.DownAfter = 2
	}
	if c.UpAfter == 0 {
		c.UpAfter = 12
	}
	if c.HoldPackets == 0 {
		c.HoldPackets = 8
	}
	if c.BERDown == 0 {
		c.BERDown = 0.08
	}
	if c.BERUp == 0 {
		c.BERUp = 0.02
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.25
	}
	if c.ResidualMarginDB == 0 {
		c.ResidualMarginDB = 10
	}
	return c
}

// Validate checks a resolved configuration.
func (c Config) Validate() error {
	if c.DownAfter < 1 || c.UpAfter < 1 || c.HoldPackets < 0 {
		return fmt.Errorf("adapt: counters must be positive (DownAfter %d, UpAfter %d, HoldPackets %d)", c.DownAfter, c.UpAfter, c.HoldPackets)
	}
	if c.BERDown <= 0 || c.BERDown > 0.5 || c.BERUp <= 0 || c.BERUp > c.BERDown {
		return fmt.Errorf("adapt: need 0 < BERUp %v <= BERDown %v <= 0.5", c.BERUp, c.BERDown)
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		return fmt.Errorf("adapt: EWMAAlpha %v outside (0,1]", c.EWMAAlpha)
	}
	if c.ResidualMarginDB <= 0 {
		return fmt.Errorf("adapt: ResidualMarginDB %v must be positive", c.ResidualMarginDB)
	}
	if c.Floor < 0 {
		return fmt.Errorf("adapt: negative Floor %d", c.Floor)
	}
	return nil
}

// Observation is one attempt's diagnostics, in the controller's terms.
// The session layer fills it from core.PacketResult plus the ARQ
// outcome; no field requires ground truth the reader does not have.
type Observation struct {
	// NoWake: the tag slept through the wake preamble — the hardest
	// failure (no diagnostics at all below this line are valid).
	NoWake bool
	// PayloadOK: the frame CRC checked at the reader.
	PayloadOK bool
	// Delivered: the frame completed end to end (PayloadOK and the ACK
	// reached the tag).
	Delivered bool
	// ACKDropped: decoded but the ACK back to the tag was lost; the
	// PHY is fine, so this resets the clean streak without counting as
	// a hard failure.
	ACKDropped bool
	// RawBER is the attempt's pre-FEC coded-bit error rate.
	RawBER float64
	// SICResidualDBm is the post-cancellation floor over the training
	// window; the controller tracks its minimum as the noise floor.
	SICResidualDBm float64
	// ViterbiCorrectedBits counts coded bits the decoder repaired.
	ViterbiCorrectedBits int
	// MeasuredSNRdB is the post-MRC symbol SNR.
	MeasuredSNRdB float64
}

// Switch records one ladder move.
type Switch struct {
	// Attempt is the 1-based observation count at which the switch was
	// decided (it applies from the next attempt).
	Attempt int
	// From/To are the rungs.
	From, To tag.Config
	// Reason is a short deterministic tag: "down:crc", "down:wake",
	// "down:ber", "down:ceiling", "up:clean".
	Reason string
}

// String formats one trace line; the format is stable because tests
// byte-compare traces across worker and shard counts.
func (s Switch) String() string {
	return fmt.Sprintf("attempt %d: %s -> %s (%s)", s.Attempt, s.From, s.To, s.Reason)
}

// Controller walks a ladder of tag configurations. Not safe for
// concurrent use: like the session that owns it, it belongs to one
// decode stream.
type Controller struct {
	cfg     Config
	ladder  []tag.Config
	idx     int
	ceiling int

	attempts    int
	consecFail  int
	consecGood  int
	sinceSwitch int

	ewmaBER float64
	ewmaSet bool

	floorDBm float64
	floorSet bool

	trace []Switch
}

// Ladder orders configurations ascending by information bit rate
// (ties broken by symbol rate, then the config's string), dropping
// duplicates. Index 0 is the most robust rung — lowest rate, hence the
// largest per-symbol MRC gain.
func Ladder(cfgs []tag.Config) []tag.Config {
	out := make([]tag.Config, 0, len(cfgs))
	seen := map[tag.Config]bool{}
	for _, c := range cfgs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BitRate() != out[j].BitRate() {
			return out[i].BitRate() < out[j].BitRate()
		}
		if out[i].SymbolRateHz != out[j].SymbolRateHz {
			return out[i].SymbolRateHz < out[j].SymbolRateHz
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// NewController builds a controller over the ladder, starting at the
// rung equal to start (or, if start is not on the ladder, the fastest
// rung not exceeding start's bit rate). The ladder is re-sorted and
// deduplicated via Ladder, and every rung is validated.
func NewController(cfg Config, cfgs []tag.Config, start tag.Config) (*Controller, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ladder := Ladder(cfgs)
	if len(ladder) == 0 {
		return nil, fmt.Errorf("adapt: empty ladder")
	}
	for _, c := range ladder {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("adapt: ladder rung %s: %w", c, err)
		}
	}
	if cfg.Floor >= len(ladder) {
		return nil, fmt.Errorf("adapt: Floor %d beyond ladder of %d rungs", cfg.Floor, len(ladder))
	}
	idx := -1
	for i, c := range ladder {
		if c == start {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Nearest rung from below; a start slower than the whole ladder
		// begins at the floor.
		idx = cfg.Floor
		for i, c := range ladder {
			if c.BitRate() <= start.BitRate() {
				idx = i
			}
		}
	}
	if idx < cfg.Floor {
		idx = cfg.Floor
	}
	return &Controller{cfg: cfg, ladder: ladder, idx: idx, ceiling: len(ladder) - 1}, nil
}

// State is the controller's complete mutable state, exported for
// session handoff (DESIGN.md §5j): a survivor node restores it into a
// freshly built controller over the same ladder and continues the
// decision stream byte-identically. The switch trace is deliberately
// not part of the state — it is observability, not control input (no
// decision reads it), and the serving layer's ConfigSwitches counter
// rides in core.SessionStats instead.
type State struct {
	// Index / Ceiling are the current rung and the watchdog clamp.
	Index, Ceiling int
	// Attempts, ConsecFail, ConsecGood, SinceSwitch are the streak
	// counters driving hysteresis.
	Attempts, ConsecFail, ConsecGood, SinceSwitch int
	// EWMABER / EWMASet carry the raw-BER estimate.
	EWMABER float64
	EWMASet bool
	// FloorDBm / FloorSet carry the observed SIC noise floor.
	FloorDBm float64
	FloorSet bool
}

// State snapshots the controller for handoff.
func (c *Controller) State() State {
	return State{
		Index: c.idx, Ceiling: c.ceiling,
		Attempts: c.attempts, ConsecFail: c.consecFail, ConsecGood: c.consecGood, SinceSwitch: c.sinceSwitch,
		EWMABER: c.ewmaBER, EWMASet: c.ewmaSet,
		FloorDBm: c.floorDBm, FloorSet: c.floorSet,
	}
}

// Restore installs a snapshot taken from a controller over an
// identical ladder. Counters and rung indices are validated against
// this controller's ladder; the switch trace restarts empty.
func (c *Controller) Restore(s State) error {
	if s.Index < 0 || s.Index >= len(c.ladder) || s.Ceiling < 0 || s.Ceiling >= len(c.ladder) {
		return fmt.Errorf("adapt: restore rung %d / ceiling %d outside ladder of %d rungs", s.Index, s.Ceiling, len(c.ladder))
	}
	if s.Index < c.cfg.Floor {
		return fmt.Errorf("adapt: restore rung %d below floor %d", s.Index, c.cfg.Floor)
	}
	if s.Attempts < 0 || s.ConsecFail < 0 || s.ConsecGood < 0 || s.SinceSwitch < 0 {
		return fmt.Errorf("adapt: negative restore counters")
	}
	c.idx, c.ceiling = s.Index, s.Ceiling
	c.attempts, c.consecFail, c.consecGood, c.sinceSwitch = s.Attempts, s.ConsecFail, s.ConsecGood, s.SinceSwitch
	c.ewmaBER, c.ewmaSet = s.EWMABER, s.EWMASet
	c.floorDBm, c.floorSet = s.FloorDBm, s.FloorSet
	c.trace = nil
	return nil
}

// Config returns the current rung.
func (c *Controller) Config() tag.Config { return c.ladder[c.idx] }

// Index returns the current ladder index.
func (c *Controller) Index() int { return c.idx }

// Ceiling returns the highest ladder index currently allowed.
func (c *Controller) Ceiling() int { return c.ceiling }

// IndexOf locates a configuration on the ladder.
func (c *Controller) IndexOf(cfg tag.Config) (int, bool) {
	for i, l := range c.ladder {
		if l == cfg {
			return i, true
		}
	}
	return 0, false
}

// Trace returns the switch history (shared slice; do not mutate).
func (c *Controller) Trace() []Switch { return c.trace }

// TraceStrings renders the switch history in the stable format the
// determinism tests byte-compare.
func (c *Controller) TraceStrings() []string {
	out := make([]string, len(c.trace))
	for i, s := range c.trace {
		out[i] = s.String()
	}
	return out
}

// SetCeiling clamps the ladder to index i (the serve watchdog's
// degraded mode forces a robust rung this way). If the controller is
// currently above the new ceiling it downshifts immediately, recorded
// as one "down:ceiling" switch; raising the ceiling lets the ordinary
// slow-upshift rules climb back. Out-of-range values are clamped.
func (c *Controller) SetCeiling(i int) (tag.Config, bool) {
	if i < c.cfg.Floor {
		i = c.cfg.Floor
	}
	if i > len(c.ladder)-1 {
		i = len(c.ladder) - 1
	}
	c.ceiling = i
	if c.idx <= i {
		return c.Config(), false
	}
	c.shift(i, "down:ceiling")
	return c.Config(), true
}

// shift moves to rung i and resets the streak state. A switch
// invalidates the BER estimate (it was measured on the old rung), so
// the EWMA re-seeds from the next decoded attempt.
func (c *Controller) shift(i int, reason string) {
	c.trace = append(c.trace, Switch{Attempt: c.attempts, From: c.ladder[c.idx], To: c.ladder[i], Reason: reason})
	c.idx = i
	c.consecFail = 0
	c.consecGood = 0
	c.sinceSwitch = 0
	c.ewmaSet = false
}

// Observe consumes one attempt's outcome and returns the rung the next
// attempt should use, plus whether it changed. Deterministic: state
// depends only on the observation sequence.
func (c *Controller) Observe(o Observation) (tag.Config, bool) {
	c.attempts++
	c.sinceSwitch++

	// Estimate the noise floor as the minimum residual seen; only
	// decoded attempts carry a residual measurement.
	if !o.NoWake {
		if !c.floorSet || o.SICResidualDBm < c.floorDBm {
			c.floorDBm = o.SICResidualDBm
			c.floorSet = true
		}
		if c.ewmaSet {
			c.ewmaBER += c.cfg.EWMAAlpha * (o.RawBER - c.ewmaBER)
		} else {
			c.ewmaBER = o.RawBER
			c.ewmaSet = true
		}
	}

	hardFail := o.NoWake || !o.PayloadOK
	dirty := hardFail ||
		o.RawBER >= c.cfg.BERDown ||
		(c.floorSet && o.SICResidualDBm > c.floorDBm+c.cfg.ResidualMarginDB)
	switch {
	case hardFail:
		c.consecFail++
		c.consecGood = 0
	case o.Delivered && !dirty:
		c.consecGood++
		c.consecFail = 0
	default:
		// Decoded but dirty (high BER, jammed canceller) or the ACK was
		// lost: not a PHY failure, but not evidence for climbing either.
		c.consecGood = 0
		if !dirty {
			c.consecFail = 0
		}
	}

	before := c.idx
	switch {
	case c.consecFail >= c.cfg.DownAfter && c.idx > c.cfg.Floor:
		// Fast downshift. A wake miss or a collapsed EWMA means the
		// current rung is hopeless, so drop two rungs at once.
		step, reason := 1, "down:crc"
		if o.NoWake {
			step, reason = 2, "down:wake"
		} else if c.ewmaSet && c.ewmaBER >= 2*c.cfg.BERDown {
			step = 2
		}
		i := c.idx - step
		if i < c.cfg.Floor {
			i = c.cfg.Floor
		}
		c.shift(i, reason)
	case c.ewmaSet && c.ewmaBER >= c.cfg.BERDown && c.sinceSwitch >= c.cfg.DownAfter && c.idx > c.cfg.Floor:
		// Early-warning downshift: the CRC still passes, but the raw
		// BER says the rung is living off the Viterbi decoder.
		c.shift(c.idx-1, "down:ber")
	case c.consecGood >= c.cfg.UpAfter && c.sinceSwitch >= c.cfg.HoldPackets &&
		c.ewmaSet && c.ewmaBER <= c.cfg.BERUp && c.idx < c.ceiling:
		c.shift(c.idx+1, "up:clean")
	}
	return c.ladder[c.idx], c.idx != before
}
