package adapt

import (
	"reflect"
	"strings"
	"testing"

	"backfi/internal/fec"
	"backfi/internal/tag"
)

// testLadder is a four-rung ladder, deliberately given out of order and
// with a duplicate to exercise Ladder's sort/dedup.
func testLadder() []tag.Config {
	mk := func(mod tag.Modulation, rate float64) tag.Config {
		return tag.Config{Mod: mod, Coding: fec.Rate12, SymbolRateHz: rate, PreambleChips: tag.DefaultPreambleChips, ID: 1}
	}
	return []tag.Config{
		mk(tag.QPSK, 1e6),
		mk(tag.BPSK, 100e3),
		mk(tag.QPSK, 2.5e6),
		mk(tag.BPSK, 500e3),
		mk(tag.BPSK, 100e3), // duplicate
	}
}

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	start := tag.Config{Mod: tag.QPSK, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: tag.DefaultPreambleChips, ID: 1}
	c, err := NewController(cfg, testLadder(), start)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Canonical observations.
var (
	clean = Observation{PayloadOK: true, Delivered: true, RawBER: 0.005, SICResidualDBm: -92}
	crc   = Observation{PayloadOK: false, RawBER: 0.2, SICResidualDBm: -92}
	wake  = Observation{NoWake: true}
)

func TestLadderSortedDeduped(t *testing.T) {
	l := Ladder(testLadder())
	if len(l) != 4 {
		t.Fatalf("ladder has %d rungs, want 4 (dedup)", len(l))
	}
	for i := 1; i < len(l); i++ {
		if l[i-1].BitRate() > l[i].BitRate() {
			t.Fatalf("ladder not sorted: %s (%v bps) before %s (%v bps)", l[i-1], l[i-1].BitRate(), l[i], l[i].BitRate())
		}
	}
}

func TestStartRungResolution(t *testing.T) {
	// A start config not on the ladder lands on the fastest rung at or
	// below its bit rate.
	start := tag.Config{Mod: tag.PSK16, Coding: fec.Rate23, SymbolRateHz: 500e3, PreambleChips: tag.DefaultPreambleChips, ID: 1}
	c, err := NewController(Config{}, testLadder(), start)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Config().BitRate(); got > start.BitRate() {
		t.Fatalf("start rung %s faster than requested %s", c.Config(), start)
	}
}

func TestFastDownshiftOnConsecutiveFailures(t *testing.T) {
	c := newTestController(t, Config{DownAfter: 2})
	if _, changed := c.Observe(crc); changed {
		t.Fatal("downshifted after a single failure")
	}
	next, changed := c.Observe(crc)
	if !changed {
		t.Fatal("no downshift after DownAfter consecutive failures")
	}
	if next.BitRate() >= 1e6 {
		t.Fatalf("downshift went up: %s", next)
	}
	tr := c.Trace()
	if len(tr) != 1 || !strings.HasPrefix(tr[0].Reason, "down:") {
		t.Fatalf("trace = %v", tr)
	}
}

func TestWakeMissDropsTwoRungs(t *testing.T) {
	c := newTestController(t, Config{DownAfter: 2})
	from := c.Index()
	c.Observe(wake)
	_, changed := c.Observe(wake)
	if !changed {
		t.Fatal("no downshift after consecutive wake misses")
	}
	if got := from - c.Index(); got != 2 {
		t.Fatalf("wake-miss downshift moved %d rungs, want 2", got)
	}
	if r := c.Trace()[0].Reason; r != "down:wake" {
		t.Fatalf("reason = %q, want down:wake", r)
	}
}

func TestBEREarlyWarningDownshift(t *testing.T) {
	// CRC passes but raw BER sits above BERDown: the controller must
	// step down without waiting for frame loss.
	c := newTestController(t, Config{})
	hot := Observation{PayloadOK: true, Delivered: true, RawBER: 0.12, SICResidualDBm: -92}
	changed := false
	for i := 0; i < 6 && !changed; i++ {
		_, changed = c.Observe(hot)
	}
	if !changed {
		t.Fatal("no early-warning downshift on sustained high BER")
	}
	if r := c.Trace()[0].Reason; r != "down:ber" {
		t.Fatalf("reason = %q, want down:ber", r)
	}
}

func TestSlowUpshiftWithHysteresis(t *testing.T) {
	c := newTestController(t, Config{DownAfter: 2, UpAfter: 4, HoldPackets: 6})
	c.Observe(crc)
	c.Observe(crc) // downshift at attempt 2
	idx := c.Index()
	// Four clean deliveries satisfy UpAfter but not HoldPackets (the
	// switch was 4 attempts ago, hold is 6): no upshift yet.
	for i := 0; i < 4; i++ {
		c.Observe(clean)
	}
	if c.Index() != idx {
		t.Fatal("upshifted inside the hold-down window")
	}
	// Two more clean packets clear the hold-down.
	c.Observe(clean)
	_, changed := c.Observe(clean)
	if !changed || c.Index() != idx+1 {
		t.Fatalf("no upshift after hold-down: idx %d (was %d), changed %v", c.Index(), idx, changed)
	}
	if r := c.Trace()[1].Reason; r != "up:clean" {
		t.Fatalf("reason = %q, want up:clean", r)
	}
}

func TestACKDropResetsStreakWithoutFailure(t *testing.T) {
	c := newTestController(t, Config{DownAfter: 2, UpAfter: 3, HoldPackets: 1})
	ack := Observation{PayloadOK: true, Delivered: false, ACKDropped: true, RawBER: 0.005, SICResidualDBm: -92}
	// Alternating clean/ACK-drop never accumulates UpAfter clean
	// deliveries, and never downshifts either.
	for i := 0; i < 12; i++ {
		c.Observe(clean)
		c.Observe(ack)
	}
	if len(c.Trace()) != 0 {
		t.Fatalf("ACK drops moved the ladder: %v", c.TraceStrings())
	}
}

func TestResidualAboveFloorBlocksUpshift(t *testing.T) {
	c := newTestController(t, Config{DownAfter: 2, UpAfter: 2, HoldPackets: 1})
	// Establish the floor, then deliver with a jammed canceller: +20 dB
	// residual marks attempts dirty, so no upshift credit accrues.
	c.Observe(clean)
	jammed := clean
	jammed.SICResidualDBm = clean.SICResidualDBm + 20
	for i := 0; i < 8; i++ {
		c.Observe(jammed)
	}
	if len(c.Trace()) != 0 {
		t.Fatalf("jammed-canceller deliveries moved the ladder: %v", c.TraceStrings())
	}
}

func TestFloorStopsDownshift(t *testing.T) {
	c := newTestController(t, Config{DownAfter: 1})
	for i := 0; i < 20; i++ {
		c.Observe(crc)
	}
	if c.Index() != 0 {
		t.Fatalf("index %d after sustained failure, want floor 0", c.Index())
	}
	// Every switch in the trace moves down and none crosses the floor.
	for _, s := range c.Trace() {
		if s.To.BitRate() >= s.From.BitRate() {
			t.Fatalf("non-downward switch under sustained failure: %s", s)
		}
	}
}

func TestSetCeilingForcesAndHolds(t *testing.T) {
	c := newTestController(t, Config{UpAfter: 2, HoldPackets: 1})
	cfg, changed := c.SetCeiling(0)
	if !changed || c.Index() != 0 {
		t.Fatalf("ceiling 0 did not force the floor rung: idx %d changed %v", c.Index(), changed)
	}
	if cfg != c.Config() {
		t.Fatal("SetCeiling returned a different rung than Config()")
	}
	if r := c.Trace()[0].Reason; r != "down:ceiling" {
		t.Fatalf("reason = %q, want down:ceiling", r)
	}
	// Clean traffic cannot climb past the ceiling.
	for i := 0; i < 10; i++ {
		c.Observe(clean)
	}
	if c.Index() != 0 {
		t.Fatalf("climbed to %d past ceiling 0", c.Index())
	}
	// Raising the ceiling lets the slow-upshift rules climb again.
	c.SetCeiling(3)
	for i := 0; i < 10; i++ {
		c.Observe(clean)
	}
	if c.Index() == 0 {
		t.Fatal("never climbed after the ceiling lifted")
	}
}

// TestDeterministicTrace replays one mixed observation stream twice and
// requires byte-identical traces — the property the serving layer's
// shard-count determinism test leans on.
func TestDeterministicTrace(t *testing.T) {
	stream := []Observation{
		clean, crc, crc, wake, clean, clean, clean, clean, clean, clean,
		clean, clean, clean, clean, clean, crc, clean, wake, wake, clean,
	}
	run := func() []string {
		c := newTestController(t, Config{DownAfter: 2, UpAfter: 3, HoldPackets: 2})
		for _, o := range stream {
			c.Observe(o)
		}
		return c.TraceStrings()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("trace diverged across identical replays:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("stream produced no switches; test is vacuous")
	}
}

func TestConfigValidation(t *testing.T) {
	start := tag.Config{Mod: tag.BPSK, Coding: fec.Rate12, SymbolRateHz: 100e3, PreambleChips: tag.DefaultPreambleChips, ID: 1}
	for _, tc := range []struct {
		name string
		cfg  Config
		lad  []tag.Config
	}{
		{"empty ladder", Config{}, nil},
		{"inverted BER thresholds", Config{BERUp: 0.2, BERDown: 0.1}, testLadder()},
		{"floor beyond ladder", Config{Floor: 99}, testLadder()},
		{"bad alpha", Config{EWMAAlpha: 1.5}, testLadder()},
		{"invalid rung", Config{}, []tag.Config{{Mod: tag.BPSK, Coding: fec.Rate12, SymbolRateHz: 123, PreambleChips: 32}}},
	} {
		if _, err := NewController(tc.cfg, tc.lad, start); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
