package sic

import (
	"math"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

// testSignal builds a white, WiFi-power-scaled excitation.
func testSignal(r *rand.Rand, n int, powerW float64) []complex128 {
	x := make([]complex128, n)
	s := math.Sqrt(powerW / 2)
	for i := range x {
		x[i] = complex(r.NormFloat64()*s, r.NormFloat64()*s)
	}
	return x
}

func TestCancellationReachesNoiseFloorWithoutDistortion(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	txW := dsp.UnDBm(20)
	x := testSignal(r, 4000, txW)
	henv := channel.RayleighTaps(r, 10, 0.5).Scale(-20)
	noiseW := channel.ThermalNoiseW(20e6, 6)
	noise := channel.NewAWGN(r, noiseW)
	y := noise.Add(henv.Apply(x))

	c, err := Train(DefaultConfig(), x, x, y, 0, 320)
	if err != nil {
		t.Fatal(err)
	}
	resid := c.Cancel(x, x, y)
	residDBm := dsp.DBm(dsp.Power(resid[320:]))
	floorDBm := dsp.DBm(noiseW)
	// Ideal hardware: residual within 1 dB of thermal noise even though
	// self-interference was ~75 dB above it.
	if residDBm > floorDBm+1 {
		t.Fatalf("residual %v dBm, noise floor %v dBm", residDBm, floorDBm)
	}
	if rep := c.Report(); rep.CancellationDB < 60 {
		t.Fatalf("only %v dB cancellation", rep.CancellationDB)
	}
}

func TestDigitalOnlyIsTxDistortionBounded(t *testing.T) {
	// Without the PA-output tap (digital-only cancellation from the
	// ideal samples), a −28 dB EVM transmitter leaves a residue near
	// (SI power − 28 dB): the canceller cannot subtract distortion it
	// has no record of. This is why full-duplex hardware taps the PA.
	r := rand.New(rand.NewSource(2))
	txW := dsp.UnDBm(20)
	x := testSignal(r, 4000, txW)
	dist := channel.NewTxDistortion(r, -28)
	xAir := dist.Apply(x)
	henv := channel.RayleighTaps(r, 10, 0.5).Scale(-20)
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	y := noise.Add(henv.Apply(xAir))

	cfg := Config{AnalogTaps: 0, DigitalTaps: 32, Lambda: 1e-12}
	c, err := Train(cfg, x, x, y, 0, 320)
	if err != nil {
		t.Fatal(err)
	}
	resid := c.Cancel(x, x, y)
	residDBm := dsp.DBm(dsp.Power(resid[320:]))
	siDBm := dsp.DBm(txW) - 20 // SI power at the receiver
	expected := siDBm - 28     // distortion floor through the same channel
	if math.Abs(residDBm-expected) > 3 {
		t.Fatalf("residual %v dBm, want ≈%v (distortion-bounded)", residDBm, expected)
	}
}

func TestAnalogPATapRemovesTxDistortion(t *testing.T) {
	// With the analog stage referenced to the PA output (xTap = the
	// distorted air signal), transmit noise is cancelled along with the
	// linear self-interference, and the residue approaches the floor
	// set by analog quantization — tens of dB below the digital-only
	// case above (the [Bharadia'13] result BackFi builds on).
	r := rand.New(rand.NewSource(22))
	txW := dsp.UnDBm(20)
	x := testSignal(r, 4000, txW)
	dist := channel.NewTxDistortion(r, -28)
	xAir := dist.Apply(x)
	henv := channel.RayleighTaps(r, 10, 0.5).Scale(-20)
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	y := noise.Add(henv.Apply(xAir))

	c, err := Train(DefaultConfig(), xAir, x, y, 0, 320)
	if err != nil {
		t.Fatal(err)
	}
	resid := c.Cancel(xAir, x, y)
	residDBm := dsp.DBm(dsp.Power(resid[320:]))
	digitalOnlyFloor := dsp.DBm(txW) - 20 - 28
	if residDBm > digitalOnlyFloor-20 {
		t.Fatalf("PA-tapped residual %v dBm, want at least 20 dB below the digital-only floor %v dBm",
			residDBm, digitalOnlyFloor)
	}
}

func TestBackscatterSurvivesCancellation(t *testing.T) {
	// Train during a silent window, then add a weak backscatter signal
	// outside it: cancellation must not remove it (paper Sec. 4.2).
	r := rand.New(rand.NewSource(3))
	txW := dsp.UnDBm(20)
	x := testSignal(r, 6000, txW)
	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))

	// Backscatter: modulated copy through a weak round-trip channel,
	// active only after sample 2000.
	hfb := channel.RayleighTaps(r, 4, 0.5).Scale(-70)
	m := make([]complex128, len(x))
	for i := 2000; i < len(x); i++ {
		if (i/20)%2 == 0 {
			m[i] = 1
		} else {
			m[i] = -1
		}
	}
	zs := hfb.Apply(x)
	bs := make([]complex128, len(x))
	for i := range bs {
		bs[i] = zs[i] * m[i]
	}
	y := noise.Add(dsp.Add(henv.Apply(x), bs))

	c, err := Train(DefaultConfig(), x, x, y, 0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	resid := c.Cancel(x, x, y)
	// Residual power where backscatter is active should carry the
	// backscatter power (−50 dBm) rather than being nulled.
	bsPower := dsp.Power(bs[2000:])
	residPower := dsp.Power(resid[2000:])
	if residPower < bsPower*0.5 {
		t.Fatalf("backscatter was cancelled: resid %v vs backscatter %v", dsp.DBm(residPower), dsp.DBm(bsPower))
	}
	// Correlation of residual with the true backscatter should be high.
	corr := dsp.Dot(resid[2000:], bs[2000:])
	rho := real(corr) / math.Sqrt(dsp.Energy(resid[2000:])*dsp.Energy(bs[2000:]))
	if rho < 0.8 {
		t.Fatalf("residual decorrelated from backscatter: ρ=%v", rho)
	}
}

func TestTrainingWindowWithBackscatterDegrades(t *testing.T) {
	// Ablation of the protocol's silent period: if the tag modulates
	// during training, the estimate degrades and the canceller eats
	// part of the backscatter. This is why BackFi's link layer forces
	// the 16 µs silence.
	r := rand.New(rand.NewSource(4))
	txW := dsp.UnDBm(20)
	x := testSignal(r, 6000, txW)
	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	hfb := channel.RayleighTaps(r, 4, 0.5).Scale(-55)
	// Worst case for a naive (non-BackFi) design: the tag reflects with
	// a constant phase while the reader trains. The reflection is then
	// indistinguishable from an environmental path and is absorbed into
	// the h_env estimate — and subtracted from the whole packet.
	m := make([]complex128, len(x))
	for i := range m {
		m[i] = 1
	}
	zs := hfb.Apply(x)
	bs := make([]complex128, len(x))
	for i := range bs {
		bs[i] = zs[i] * m[i]
	}
	y := noise.Add(dsp.Add(henv.Apply(x), bs))

	c, err := Train(DefaultConfig(), x, x, y, 0, 1500) // tag active during training!
	if err != nil {
		t.Fatal(err)
	}
	resid := c.Cancel(x, x, y)
	// The residual should retain almost none of the backscatter energy.
	residP := dsp.Power(resid[2000:])
	bsP := dsp.Power(bs[2000:])
	if residP > bsP/10 {
		t.Fatalf("backscatter not absorbed when training over it: resid %v dBm vs backscatter %v dBm",
			dsp.DBm(residP), dsp.DBm(bsP))
	}
}

func TestAnalogStagePreventsSaturation(t *testing.T) {
	// The analog stage alone must knock the SI down by tens of dB.
	r := rand.New(rand.NewSource(5))
	x := testSignal(r, 3000, dsp.UnDBm(20))
	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-18)
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	y := noise.Add(henv.Apply(x))
	c, err := Train(DefaultConfig(), x, x, y, 0, 320)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	analogGain := rep.BeforeDBm - rep.AfterAnalogDBm
	if analogGain < 25 {
		t.Fatalf("analog stage only %v dB", analogGain)
	}
	// Digital must improve on analog.
	if rep.AfterDBm >= rep.AfterAnalogDBm {
		t.Fatalf("digital stage did not improve: %v vs %v", rep.AfterDBm, rep.AfterAnalogDBm)
	}
}

func TestDigitalOnlyConfiguration(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x := testSignal(r, 2000, dsp.UnDBm(10))
	henv := channel.Taps{complex(0.1, -0.05), complex(0.02, 0.01)}
	noise := channel.NewAWGN(r, 1e-12)
	y := noise.Add(henv.Apply(x))
	cfg := Config{AnalogTaps: 0, DigitalTaps: 8, Lambda: 1e-15}
	c, err := Train(cfg, x, x, y, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep := c.Report(); rep.CancellationDB < 50 {
		t.Fatalf("digital-only cancellation %v dB", rep.CancellationDB)
	}
}

func TestTrainErrors(t *testing.T) {
	x := make([]complex128, 100)
	if _, err := Train(Config{DigitalTaps: 0}, x, x, x, 0, 50); err == nil {
		t.Fatal("expected error for no digital taps")
	}
	if _, err := Train(Config{DigitalTaps: 64}, x, x, x, 0, 50); err == nil {
		t.Fatal("expected error for short window")
	}
}

func TestEstimatedChannelMatchesTruth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := testSignal(r, 3000, dsp.UnDBm(20))
	henv := channel.RayleighTaps(r, 6, 0.5).Scale(-20)
	noise := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6))
	y := noise.Add(henv.Apply(x))
	c, err := Train(DefaultConfig(), x, x, y, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	est := c.EstimatedChannel()
	var errE, refE float64
	for i, h := range henv {
		d := est[i] - h
		errE += real(d)*real(d) + imag(d)*imag(d)
		refE += real(h)*real(h) + imag(h)*imag(h)
	}
	if dsp.DB(errE/refE) > -40 {
		t.Fatalf("channel estimate error %v dB", dsp.DB(errE/refE))
	}
}
