package sic

import (
	"fmt"
	"math"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/linalg"
	"backfi/internal/obs"
)

// Reusable is the serving hot path's canceller: one instance per
// session that is retrained every frame (the AR(1) channel decorrelates
// too fast for stale taps to survive a step) but reuses every buffer —
// tap vectors, normal-equation workspaces, reconstruction scratch — so
// steady-state retraining allocates nothing. It also works over sample
// windows: training reads only the silent window and CancelRange
// reconstructs interference only where the decoder will look, instead
// of over the whole capture.
//
// Numerics: Retrain solves the same ridge normal equations as Train
// via linalg.ToeplitzLSFast, which sums the Gram in a different order —
// results are deterministic but not bit-identical to Train. The fast
// serve path owns its determinism contract end to end (see DESIGN.md
// §5g), so that is the intended trade.
//
// Not safe for concurrent use; the reader daemon keys one per session,
// and sessions are serialized per shard.
type Reusable struct {
	cfg     Config
	analog  []complex128
	digital []complex128
	report  Report

	wsA, wsD linalg.ToeplitzWorkspace
	work     []complex128 // y minus analog reconstruction (window only)
	scratch  []complex128 // convolution reconstruction buffer
	scratch2 []complex128 // second stage reconstruction buffer
}

// NewReusable validates cfg and returns an untrained reusable
// canceller. Call Retrain before CancelRange.
func NewReusable(cfg Config) (*Reusable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Reusable{
		cfg:     cfg,
		analog:  make([]complex128, cfg.AnalogTaps),
		digital: make([]complex128, cfg.DigitalTaps),
	}, nil
}

// SetTrace points subsequent Retrain calls at the per-frame trace
// context (DESIGN.md §5h). The zero value disables tracing; the ctx is
// a 2-word copy, so per-frame reassignment costs nothing.
func (c *Reusable) SetTrace(t obs.TraceCtx) { c.cfg.Trace = t }

// Retrain re-estimates both cancellation stages from the silent window
// [start, stop) of y, exactly as Train does but into the receiver's
// preallocated state. xTap/xIdeal are the PA-output and ideal transmit
// copies; only their samples up to stop are read.
func (c *Reusable) Retrain(xTap, xIdeal, y []complex128, start, stop int) error {
	cfg := c.cfg
	if stop-start < cfg.DigitalTaps*2 {
		return fmt.Errorf("sic: training window of %d samples too short for %d taps", stop-start, cfg.DigitalTaps)
	}
	c.report.BeforeDBm = dsp.DBm(dsp.Power(y[start:stop]))

	work := y
	if cfg.AnalogTaps > 0 {
		tsp := cfg.Trace.Start("sic_analog_train")
		hA, err := linalg.ToeplitzLSFast(&c.wsA, xTap, y, cfg.AnalogTaps, start, stop, cfg.Lambda)
		if err != nil {
			return fmt.Errorf("sic: analog estimate: %w", err)
		}
		quantizeTapsInto(c.analog, hA, cfg.AnalogMagBits, cfg.AnalogPhaseBits)
		c.scratch = dsp.ConvolveRangeInto(c.scratch, xTap, c.analog, start, stop)
		if cap(c.work) < len(y) {
			c.work = make([]complex128, len(y))
		}
		c.work = c.work[:len(y)]
		for n := start; n < stop; n++ {
			c.work[n] = y[n] - c.scratch[n]
		}
		work = c.work
		c.report.AfterAnalogDBm = dsp.DBm(dsp.Power(work[start:stop]))
		tsp.End()
	} else {
		c.report.AfterAnalogDBm = c.report.BeforeDBm
	}

	tsp := cfg.Trace.Start("sic_digital_train")
	hD, err := linalg.ToeplitzLSFast(&c.wsD, xIdeal, work, cfg.DigitalTaps, start, stop, cfg.Lambda)
	if err != nil {
		return fmt.Errorf("sic: digital estimate: %w", err)
	}
	copy(c.digital, hD)
	c.scratch2 = dsp.ConvolveRangeInto(c.scratch2, xIdeal, c.digital, start, stop)
	var pw float64
	for n := start; n < stop; n++ {
		r := work[n] - c.scratch2[n]
		pw += real(r)*real(r) + imag(r)*imag(r)
	}
	c.report.AfterDBm = dsp.DBm(pw / float64(stop-start))
	c.report.CancellationDB = c.report.BeforeDBm - c.report.AfterDBm
	tsp.End()
	return nil
}

// CancelRange writes y minus the reconstructed self-interference over
// samples [lo, hi) into dst (grown to len(y) if needed; samples outside
// the window are left as-is) and returns dst. The reconstruction uses
// the taps from the latest Retrain.
func (c *Reusable) CancelRange(dst, xTap, xIdeal, y []complex128, lo, hi int) []complex128 {
	if cap(dst) < len(y) {
		dst = make([]complex128, len(y))
	}
	dst = dst[:len(y)]
	lo = max(lo, 0)
	hi = min(hi, len(y))
	if lo >= hi {
		return dst
	}
	c.scratch2 = dsp.ConvolveRangeInto(c.scratch2, xIdeal, c.digital, lo, hi)
	if c.cfg.AnalogTaps > 0 {
		c.scratch = dsp.ConvolveRangeInto(c.scratch, xTap, c.analog, lo, hi)
		for n := lo; n < hi; n++ {
			dst[n] = y[n] - c.scratch[n] - c.scratch2[n]
		}
		return dst
	}
	for n := lo; n < hi; n++ {
		dst[n] = y[n] - c.scratch2[n]
	}
	return dst
}

// Report returns the training-window power summary of the last Retrain.
func (c *Reusable) Report() Report { return c.report }

// quantizeTapsInto is quantizeTaps writing into a caller-owned slice
// (len(dst) == len(taps)) so the hot path's per-frame analog
// requantization allocates nothing.
func quantizeTapsInto(dst, taps []complex128, magBits, phaseBits int) {
	maxMag := 0.0
	for _, t := range taps {
		if m := cmplx.Abs(t); m > maxMag {
			maxMag = m
		}
	}
	if maxMag == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	magSteps := float64(int(1) << uint(magBits))
	phaseSteps := float64(int(1) << uint(phaseBits))
	for i, t := range taps {
		m := cmplx.Abs(t)
		ph := cmplx.Phase(t)
		qm := math.Round(m/maxMag*magSteps) / magSteps * maxMag
		qp := math.Round(ph/(2*math.Pi)*phaseSteps) / phaseSteps * 2 * math.Pi
		dst[i] = cmplx.Rect(qm, qp)
	}
}
