package sic

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

func TestReusableMatchesTrainCancel(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	txW := dsp.UnDBm(20)
	x := testSignal(r, 4000, txW)
	henv := channel.RayleighTaps(r, 10, 0.5).Scale(-20)
	noiseW := channel.ThermalNoiseW(20e6, 6)
	noise := channel.NewAWGN(r, noiseW)
	y := noise.Add(henv.Apply(x))

	cfg := DefaultConfig()
	ref, err := Train(cfg, x, x, y, 0, 320)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Cancel(x, x, y)

	ru, err := NewReusable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ru.Retrain(x, x, y, 0, 320); err != nil {
		t.Fatal(err)
	}
	got := ru.CancelRange(nil, x, x, y, 0, len(y))

	// Fast normal-equation assembly reorders the Gram sums, so taps agree
	// to solver precision, not bit-for-bit; the cancelled residue must
	// match to well below the thermal floor (~1e-13 W scale).
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > 1e-6 {
			t.Fatalf("sample %d differs by %g: fast %v vs reference %v", i, d, got[i], want[i])
		}
	}
	rr, wr := ru.Report(), ref.Report()
	if diff := rr.CancellationDB - wr.CancellationDB; diff > 0.5 || diff < -0.5 {
		t.Fatalf("cancellation depth: fast %v dB vs reference %v dB", rr.CancellationDB, wr.CancellationDB)
	}
}

func TestReusableWindowedCancelMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	x := testSignal(r, 3000, dsp.UnDBm(20))
	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-25)
	y := henv.Apply(x)

	ru, err := NewReusable(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ru.Retrain(x, x, y, 0, 320); err != nil {
		t.Fatal(err)
	}
	full := ru.CancelRange(nil, x, x, y, 0, len(y))
	fullCopy := make([]complex128, len(full))
	copy(fullCopy, full)
	win := ru.CancelRange(nil, x, x, y, 700, 1900)
	for i := 700; i < 1900; i++ {
		if win[i] != fullCopy[i] {
			t.Fatalf("sample %d: windowed %v vs full %v", i, win[i], fullCopy[i])
		}
	}
}

func TestReusableRetrainTracksChannelChange(t *testing.T) {
	// The whole point of Reusable is per-frame retraining: after the
	// channel changes, a retrained canceller must cancel the new channel
	// as deeply as a fresh Train would.
	r := rand.New(rand.NewSource(33))
	x := testSignal(r, 3000, dsp.UnDBm(20))
	h1 := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	h2 := channel.RayleighTaps(r, 8, 0.5).Scale(-20)

	ru, err := NewReusable(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ru.Retrain(x, x, h1.Apply(x), 0, 320); err != nil {
		t.Fatal(err)
	}
	y2 := h2.Apply(x)
	if err := ru.Retrain(x, x, y2, 0, 320); err != nil {
		t.Fatal(err)
	}
	resid := ru.CancelRange(nil, x, x, y2, 320, len(y2))
	residDBm := dsp.DBm(dsp.Power(resid[320:]))
	beforeDBm := dsp.DBm(dsp.Power(y2[320:]))
	if beforeDBm-residDBm < 60 {
		t.Fatalf("retrained canceller achieves only %v dB on the new channel", beforeDBm-residDBm)
	}
}

func TestReusableZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	x := testSignal(r, 3000, dsp.UnDBm(20))
	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	y := henv.Apply(x)

	ru, err := NewReusable(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, len(y))
	if err := ru.Retrain(x, x, y, 0, 320); err != nil {
		t.Fatal(err)
	}
	dst = ru.CancelRange(dst, x, x, y, 320, 2000)
	allocs := testing.AllocsPerRun(10, func() {
		if err := ru.Retrain(x, x, y, 0, 320); err != nil {
			t.Fatal(err)
		}
		dst = ru.CancelRange(dst, x, x, y, 320, 2000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Retrain+CancelRange allocates %v per run, want 0", allocs)
	}
}

func TestNewReusableValidates(t *testing.T) {
	if _, err := NewReusable(Config{DigitalTaps: 0}); err == nil {
		t.Fatal("want error for missing digital stage")
	}
}
