// Package sic implements the BackFi AP's two-stage self-interference
// cancellation (paper Sec. 4.2). During the tag's silent period the
// receiver sees only its own transmission through h_env (circulator
// leakage plus environmental reflections); the canceller estimates that
// channel by least squares and subtracts the reconstructed interference
// from the whole packet.
//
// The two stages differ in what copy of the transmission they can use,
// which is the crux of full-duplex hardware [Bharadia'13]:
//
//   - The ANALOG stage taps the power-amplifier output itself, so its
//     reference includes the transmitter's own distortion/noise — it can
//     cancel TX noise — but its FIR taps are implemented with discrete
//     attenuator and phase-shifter steps, so its depth is
//     quantization-limited.
//   - The DIGITAL stage subtracts in baseband using the ideal
//     transmitted samples at full numeric precision, but it can never
//     remove the TX-noise part of the residue because it has no record
//     of it.
//
// Because training happens only while the tag is silent, the
// backscatter signal is never part of the estimate and is not degraded
// by cancellation — the paper's key protocol point. The residue that
// remains (analog quantization of the TX-noise path plus estimation
// noise from the finite silent window) is the 1.7–2.3 dB degradation
// the paper measures (Fig. 11a); it emerges here rather than being
// hardcoded.
package sic

import (
	"fmt"
	"math"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/linalg"
	"backfi/internal/obs"
)

// Config tunes the canceller.
type Config struct {
	// AnalogTaps is the RF canceller FIR length.
	AnalogTaps int
	// AnalogPhaseBits quantizes each analog tap's phase to 2^bits
	// steps. AnalogTaps = 0 disables the analog stage.
	AnalogPhaseBits int
	// AnalogMagBits is the attenuator resolution in bits.
	AnalogMagBits int
	// DigitalTaps is the digital canceller FIR length.
	DigitalTaps int
	// Lambda is the ridge regularizer of the LS estimates.
	Lambda float64
	// Obs receives the canceller's health metrics (training-stage
	// durations, residual floor, cancellation depth). Nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry
	// Trace is the per-frame trace context of the packet being
	// decoded (DESIGN.md §5h); the training sub-stages record spans
	// onto it. The zero value disables tracing at zero cost.
	Trace obs.TraceCtx
}

// Validate checks the canceller configuration. The digital stage is
// mandatory; the analog stage is optional (AnalogTaps = 0) but when
// present its quantizer resolutions must be positive.
func (c Config) Validate() error {
	if c.DigitalTaps <= 0 {
		return fmt.Errorf("sic: digital stage is required (DigitalTaps=%d)", c.DigitalTaps)
	}
	if c.AnalogTaps < 0 {
		return fmt.Errorf("sic: AnalogTaps %d must be non-negative", c.AnalogTaps)
	}
	if c.AnalogTaps > 0 && (c.AnalogPhaseBits < 1 || c.AnalogMagBits < 1) {
		return fmt.Errorf("sic: analog stage needs positive phase/magnitude resolution, got %d/%d bits",
			c.AnalogPhaseBits, c.AnalogMagBits)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("sic: ridge regularizer %v must be non-negative", c.Lambda)
	}
	return nil
}

// DefaultConfig mirrors the full-duplex hardware of [Bharadia'13]: a
// 16-tap analog board with fine attenuator/phase steps (the board's
// tuning achieves ~60 dB of analog suppression) and a 32-tap digital
// stage.
func DefaultConfig() Config {
	return Config{
		AnalogTaps:      16,
		AnalogPhaseBits: 11,
		AnalogMagBits:   11,
		DigitalTaps:     32,
		Lambda:          1e-12,
	}
}

// Report summarizes a cancellation run.
type Report struct {
	// BeforeDBm is the received power in the training window before
	// cancellation.
	BeforeDBm float64
	// AfterAnalogDBm is the power after the analog stage only.
	AfterAnalogDBm float64
	// AfterDBm is the power after analog + digital cancellation.
	AfterDBm float64
	// CancellationDB is the total suppression achieved.
	CancellationDB float64
}

// Canceller holds trained analog and digital channel estimates.
//
// A Canceller reuses an internal scratch buffer between Train and
// Cancel, so one instance must not be shared across goroutines; the
// parallel sweep engine gives every trial its own link (and therefore
// its own canceller).
type Canceller struct {
	cfg     Config
	analog  []complex128
	digital []complex128
	report  Report
	scratch []complex128 // reconstruction buffer reused across calls
}

// Train estimates the self-interference channel from the window
// [start, stop) of the received signal y, during which only the AP's
// own transmission (and noise) is on the air — the tag's silent period.
//
// xTap is the PA-output copy available to the analog canceller
// (including transmit distortion); xIdeal is the clean baseband copy
// the digital stage uses. In an ideal-hardware simulation the two may
// be the same slice.
func Train(cfg Config, xTap, xIdeal, y []complex128, start, stop int) (*Canceller, error) {
	if cfg.DigitalTaps <= 0 {
		return nil, fmt.Errorf("sic: digital stage is required (DigitalTaps=%d)", cfg.DigitalTaps)
	}
	if stop-start < cfg.DigitalTaps*2 {
		return nil, fmt.Errorf("sic: training window of %d samples too short for %d taps", stop-start, cfg.DigitalTaps)
	}
	c := &Canceller{cfg: cfg}
	c.report.BeforeDBm = dsp.DBm(dsp.Power(y[start:stop]))

	work := y
	if cfg.AnalogTaps > 0 {
		tsp := cfg.Trace.Start("sic_analog_train")
		sp := cfg.Obs.Histogram(obs.MetricStageDuration, obs.HelpStageDuration, obs.DurationBuckets, "stage", "sic_analog_train").Start()
		hA, err := linalg.ToeplitzLS(xTap, y, cfg.AnalogTaps, start, stop, cfg.Lambda)
		if err != nil {
			return nil, fmt.Errorf("sic: analog estimate: %w", err)
		}
		c.analog = quantizeTaps(hA, cfg.AnalogMagBits, cfg.AnalogPhaseBits)
		c.scratch = dsp.ConvolveSameInto(c.scratch, xTap, c.analog)
		work = dsp.Sub(y, c.scratch)
		c.report.AfterAnalogDBm = dsp.DBm(dsp.Power(work[start:stop]))
		sp.End()
		tsp.End()
	} else {
		c.report.AfterAnalogDBm = c.report.BeforeDBm
	}

	tsp := cfg.Trace.Start("sic_digital_train")
	sp := cfg.Obs.Histogram(obs.MetricStageDuration, obs.HelpStageDuration, obs.DurationBuckets, "stage", "sic_digital_train").Start()
	hD, err := linalg.ToeplitzLS(xIdeal, work, cfg.DigitalTaps, start, stop, cfg.Lambda)
	if err != nil {
		return nil, fmt.Errorf("sic: digital estimate: %w", err)
	}
	c.digital = hD
	c.scratch = dsp.ConvolveSameInto(c.scratch, xIdeal, hD)
	resid := dsp.Sub(work[start:stop], c.scratch[start:stop])
	c.report.AfterDBm = dsp.DBm(dsp.Power(resid))
	c.report.CancellationDB = c.report.BeforeDBm - c.report.AfterDBm
	sp.End()
	tsp.End()

	// Canceller health: the residual floor is the paper's Fig. 7
	// quantity (≈ thermal floor when cancellation works), and the
	// achieved depth is its ≈78–80 dB headline.
	cfg.Obs.Histogram(obs.MetricSICResidual, "Post-cancellation floor in dBm over the training window.", obs.DBBuckets).Observe(c.report.AfterDBm)
	cfg.Obs.Histogram(obs.MetricSICCancellation, "Total self-interference suppression in dB.", obs.DBBuckets).Observe(c.report.CancellationDB)
	return c, nil
}

// Cancel subtracts the reconstructed self-interference from the whole
// received signal, using the same transmit copies as Train. y is not
// modified.
func (c *Canceller) Cancel(xTap, xIdeal, y []complex128) []complex128 {
	var out []complex128
	if len(c.analog) > 0 {
		c.scratch = dsp.ConvolveSameInto(c.scratch, xTap, c.analog)
		out = dsp.Sub(y, c.scratch)
		c.scratch = dsp.ConvolveSameInto(c.scratch, xIdeal, c.digital)
		dsp.SubInPlace(out, c.scratch)
		return out
	}
	c.scratch = dsp.ConvolveSameInto(c.scratch, xIdeal, c.digital)
	return dsp.Sub(y, c.scratch)
}

// Report returns the training-window power summary.
func (c *Canceller) Report() Report { return c.report }

// EstimatedChannel returns the combined analog+digital h_env estimate.
func (c *Canceller) EstimatedChannel() []complex128 {
	n := max(len(c.analog), len(c.digital))
	out := make([]complex128, n)
	for i, v := range c.analog {
		out[i] += v
	}
	for i, v := range c.digital {
		out[i] += v
	}
	return out
}

// quantizeTaps models analog tuning hardware: each tap's magnitude is
// quantized to 2^magBits uniform steps of the maximum magnitude, and
// its phase to 2^phaseBits steps.
func quantizeTaps(taps []complex128, magBits, phaseBits int) []complex128 {
	out := make([]complex128, len(taps))
	maxMag := 0.0
	for _, t := range taps {
		if m := cmplx.Abs(t); m > maxMag {
			maxMag = m
		}
	}
	if maxMag == 0 {
		return out
	}
	magSteps := float64(int(1) << uint(magBits))
	phaseSteps := float64(int(1) << uint(phaseBits))
	for i, t := range taps {
		m := cmplx.Abs(t)
		ph := cmplx.Phase(t)
		qm := math.Round(m/maxMag*magSteps) / magSteps * maxMag
		qp := math.Round(ph/(2*math.Pi)*phaseSteps) / phaseSteps * 2 * math.Pi
		out[i] = cmplx.Rect(qm, qp)
	}
	return out
}
