package dsp

import "math"

// DB converts a linear power ratio to decibels. Non-positive ratios map
// to -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// UnDB converts decibels to a linear power ratio.
func UnDB(db float64) float64 { return math.Pow(10, db/10) }

// DBm converts a power in watts to dBm.
func DBm(watts float64) float64 { return DB(watts) + 30 }

// UnDBm converts dBm to watts.
func UnDBm(dbm float64) float64 { return UnDB(dbm - 30) }

// SNRdB returns the signal-to-noise ratio of (signal, noise) powers in dB.
func SNRdB(signalPower, noisePower float64) float64 {
	if noisePower <= 0 {
		return math.Inf(1)
	}
	return DB(signalPower / noisePower)
}

// EVMToSNRdB converts an error-vector-magnitude ratio (RMS error / RMS
// reference) to an equivalent SNR in dB.
func EVMToSNRdB(evm float64) float64 {
	if evm <= 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(evm)
}
