package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchPSDTotalPower(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := randSignal(r, 8192)
	psd := WelchPSD(x, 256)
	var mean float64
	for _, p := range psd {
		mean += p
	}
	mean /= float64(len(psd))
	if math.Abs(mean-Power(x))/Power(x) > 0.1 {
		t.Fatalf("PSD mean %v vs signal power %v", mean, Power(x))
	}
}

func TestWelchPSDToneConcentration(t *testing.T) {
	const n = 4096
	const bin = 32 // of 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = Phasor(2 * math.Pi * float64(bin) / 256 * float64(i))
	}
	psd := WelchPSD(x, 256)
	if got := PeakIndex(psd); got != bin {
		t.Fatalf("peak at %d, want %d", got, bin)
	}
	// A tone occupies a tiny fraction of the band.
	if occ := OccupiedBandwidth(psd, 0.99); occ > 0.05 {
		t.Fatalf("tone occupancy %v", occ)
	}
}

func TestWelchPSDWhiteNoiseFlat(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randSignal(r, 65536)
	psd := WelchPSD(x, 64)
	// White noise occupies nearly the whole band.
	if occ := OccupiedBandwidth(psd, 0.9); occ < 0.7 {
		t.Fatalf("white-noise occupancy %v", occ)
	}
}

func TestWelchPSDPanics(t *testing.T) {
	for _, c := range []struct {
		n, nfft int
	}{{100, 12}, {100, 0}, {10, 64}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for n=%d nfft=%d", c.n, c.nfft)
				}
			}()
			WelchPSD(make([]complex128, c.n), c.nfft)
		}()
	}
}

func TestOccupiedBandwidthEdges(t *testing.T) {
	if OccupiedBandwidth(nil, 0.99) != 0 {
		t.Fatal("empty PSD should give 0")
	}
	if OccupiedBandwidth([]float64{0, 0}, 0.99) != 0 {
		t.Fatal("zero PSD should give 0")
	}
	// Uniform PSD: fraction f needs ≈f of the bins.
	uniform := make([]float64, 100)
	for i := range uniform {
		uniform[i] = 1
	}
	if got := OccupiedBandwidth(uniform, 0.5); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("uniform occupancy %v", got)
	}
}

func TestPAPR(t *testing.T) {
	// Constant-envelope signal: 0 dB PAPR.
	x := make([]complex128, 64)
	for i := range x {
		x[i] = Phasor(float64(i))
	}
	if got := PAPRdB(x); math.Abs(got) > 1e-9 {
		t.Fatalf("constant-envelope PAPR %v", got)
	}
	// One big peak: positive PAPR.
	x[3] *= 10
	if got := PAPRdB(x); got < 15 {
		t.Fatalf("peaky PAPR %v", got)
	}
	if PAPRdB(Zeros(4)) != 0 {
		t.Fatal("zero signal PAPR should be 0")
	}
}
