package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// dftNaive is the O(n^2) reference implementation.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for i := 0; i < n; i++ {
			acc += x[i] * Phasor(-2*math.Pi*float64(k)*float64(i)/float64(n))
		}
		out[k] = acc
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		x := randSignal(r, n)
		got := FFT(x)
		want := dftNaive(x)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-7*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 16, 64, 256, 1024} {
		x := randSignal(r, n)
		y := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := Zeros(64)
	x[0] = 1
	y := FFT(x)
	for k, v := range y {
		if cmplx.Abs(v-1) > eps {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSingleToneConcentrates(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = Phasor(2 * math.Pi * bin * float64(i) / n)
	}
	y := FFT(x)
	if got := PeakIndexAbs(y); got != bin {
		t.Fatalf("peak at bin %d, want %d", got, bin)
	}
	if cmplx.Abs(y[bin]) < n-1e-6 {
		t.Fatalf("tone bin magnitude %v, want %d", cmplx.Abs(y[bin]), n)
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	x := randSignal(r, 128)
	y := FFT(x)
	// sum|x|^2 == sum|X|^2 / N
	if !approx(Energy(x), Energy(y)/128, 1e-7*Energy(x)) {
		t.Fatalf("Parseval violated: %v vs %v", Energy(x), Energy(y)/128)
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randSignal(r, 32)
	b := randSignal(r, 32)
	lhs := FFT(Add(a, b))
	rhs := Add(FFT(a), FFT(b))
	for i := range lhs {
		if cmplx.Abs(lhs[i]-rhs[i]) > 1e-8 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	y := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("FFTShift = %v", y)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 63: 64, 64: 64, 65: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConvolutionTheorem(t *testing.T) {
	// Circular convolution via FFT equals linear convolution when both
	// inputs are zero-padded to the full length.
	r := rand.New(rand.NewSource(11))
	x := randSignal(r, 20)
	h := randSignal(r, 9)
	n := NextPow2(len(x) + len(h) - 1)
	xp := append(append([]complex128{}, x...), Zeros(n-len(x))...)
	hp := append(append([]complex128{}, h...), Zeros(n-len(h))...)
	viaFFT := IFFT(Mul(FFT(xp), FFT(hp)))
	direct := Convolve(x, h)
	for i := range direct {
		if cmplx.Abs(viaFFT[i]-direct[i]) > 1e-8 {
			t.Fatalf("sample %d: fft %v direct %v", i, viaFFT[i], direct[i])
		}
	}
}
