package dsp

import "math"

// WelchPSD estimates the power spectral density of x by Welch's
// method: Hann-windowed segments of length nfft (a power of two) with
// 50% overlap, periodograms averaged. The result has nfft bins in FFT
// order (bin 0 = DC) and is normalized so that the mean of the bins
// equals the signal's average power.
func WelchPSD(x []complex128, nfft int) []float64 {
	if nfft < 2 || nfft&(nfft-1) != 0 {
		panic("dsp: Welch nfft must be a power of two >= 2")
	}
	if len(x) < nfft {
		panic("dsp: signal shorter than one Welch segment")
	}
	win := Hann(nfft)
	var winPow float64
	for _, w := range win {
		winPow += w * w
	}
	psd := make([]float64, nfft)
	segments := 0
	for start := 0; start+nfft <= len(x); start += nfft / 2 {
		seg := ApplyWindow(x[start:start+nfft], win)
		spec := FFT(seg)
		// Parseval: Σ_k |FFT|² = nfft·Σ_n |w·x|² ≈ nfft·winPow·Power, so
		// dividing by winPow makes the bins *average* to the signal
		// power.
		for k, v := range spec {
			psd[k] += (real(v)*real(v) + imag(v)*imag(v)) / winPow
		}
		segments++
	}
	for k := range psd {
		psd[k] /= float64(segments)
	}
	return psd
}

// OccupiedBandwidth returns the fraction of nfft bins needed to hold
// `fraction` (e.g. 0.99) of the total PSD power, counting bins from
// strongest to weakest — a quick flatness/occupancy measure for
// checking that an OFDM signal fills its channel.
func OccupiedBandwidth(psd []float64, fraction float64) float64 {
	if len(psd) == 0 {
		return 0
	}
	var total float64
	sorted := append([]float64{}, psd...)
	for _, p := range sorted {
		total += p
	}
	if total <= 0 {
		return 0
	}
	// Insertion sort descending (bins counts are small).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var acc float64
	for i, p := range sorted {
		acc += p
		if acc >= fraction*total {
			return float64(i+1) / float64(len(sorted))
		}
	}
	return 1
}

// PAPRdB returns the peak-to-average power ratio of x in dB — the
// OFDM crest factor.
func PAPRdB(x []complex128) float64 {
	avg := Power(x)
	if avg == 0 {
		return 0
	}
	peak := 0.0
	for _, v := range x {
		if p := real(v)*real(v) + imag(v)*imag(v); p > peak {
			peak = p
		}
	}
	return 10 * math.Log10(peak/avg)
}
