package dsp

import "math"

// Convolve returns the full linear convolution of x and h, of length
// len(x)+len(h)-1. Either argument may be empty, yielding nil.
//
// Direct convolution is used for short kernels (the simulator's channels
// are ≤ 64 taps); FFT-based overlap is not needed at these sizes.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		for j, xv := range x {
			out[i+j] += xv * hv
		}
	}
	return out
}

// ConvolveSame returns the causal "same-length" convolution: the first
// len(x) samples of the full convolution. This is the natural model of a
// causal FIR channel acting on a signal: output sample n depends on
// x[n-k] for tap k.
func ConvolveSame(x, h []complex128) []complex128 {
	return ConvolveSameInto(nil, x, h)
}

// ConvolveSameInto is ConvolveSame writing into dst, which is grown if
// cap(dst) < len(x) and reused otherwise — the hot-path variant for
// callers that convolve repeatedly at a fixed length (the reader's
// reference signal, the canceller's reconstruction). It returns the
// result slice (always dst[:len(x)] when dst had capacity). dst must
// not alias x or h. Unlike the full convolution it never computes the
// len(h)-1 tail samples that "same" semantics would discard.
func ConvolveSameInto(dst, x, h []complex128) []complex128 {
	if cap(dst) < len(x) {
		dst = make([]complex128, len(x))
	}
	dst = dst[:len(x)]
	for i := range dst {
		dst[i] = 0
	}
	for i, hv := range h {
		if hv == 0 || i >= len(x) {
			continue
		}
		xs := x[:len(x)-i]
		out := dst[i:]
		for j, xv := range xs {
			out[j] += xv * hv
		}
	}
	return dst
}

// ConvolveRangeInto computes only the output samples [lo, hi) of the
// "same"-length convolution x⊛h, writing them into dst[lo:hi] (dst is
// grown to len(x) if needed; samples outside [lo, hi) are left as-is).
// Each requested sample equals the one ConvolveSameInto would produce,
// so a caller that only reads a window of the result — the serving hot
// path cancelling and correlating around the tag frame instead of the
// whole capture — skips the rest of the waveform entirely. dst must
// not alias x or h.
func ConvolveRangeInto(dst, x, h []complex128, lo, hi int) []complex128 {
	if cap(dst) < len(x) {
		grown := make([]complex128, len(x))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:len(x)]
	if lo < 0 {
		lo = 0
	}
	if hi > len(x) {
		hi = len(x)
	}
	if lo >= hi {
		return dst
	}
	for i := lo; i < hi; i++ {
		dst[i] = 0
	}
	for i, hv := range h {
		if hv == 0 || i >= hi {
			continue
		}
		// Output sample n ∈ [lo, hi) accumulates x[n-i]·h[i]; n-i ranges
		// over [max(lo-i,0), hi-i).
		from := lo - i
		if from < 0 {
			from = 0
		}
		xs := x[from : hi-i]
		out := dst[from+i:]
		for j, xv := range xs {
			out[j] += xv * hv
		}
	}
	return dst
}

// FIR is a streaming finite-impulse-response filter with persistent
// state, so successive Process calls behave like one long convolution.
type FIR struct {
	taps  []complex128
	state []complex128 // most recent len(taps)-1 inputs, newest last
}

// NewFIR returns a streaming filter with the given taps (tap 0 applied to
// the current sample). The taps are copied.
func NewFIR(taps []complex128) *FIR {
	t := make([]complex128, len(taps))
	copy(t, taps)
	return &FIR{taps: t, state: make([]complex128, max(0, len(taps)-1))}
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []complex128 {
	t := make([]complex128, len(f.taps))
	copy(t, f.taps)
	return t
}

// Reset clears the filter memory.
func (f *FIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
}

// Process filters x, returning len(x) output samples and updating the
// internal delay line.
func (f *FIR) Process(x []complex128) []complex128 {
	if len(f.taps) == 0 {
		return Zeros(len(x))
	}
	// Work on the concatenation [state | x].
	buf := make([]complex128, len(f.state)+len(x))
	copy(buf, f.state)
	copy(buf[len(f.state):], x)
	out := make([]complex128, len(x))
	off := len(f.state)
	for n := range x {
		var acc complex128
		for k, tap := range f.taps {
			idx := off + n - k
			if idx < 0 {
				break
			}
			acc += tap * buf[idx]
		}
		out[n] = acc
	}
	// Save the trailing samples as new state.
	if len(f.state) > 0 {
		tail := buf[len(buf)-len(f.state):]
		copy(f.state, tail)
	}
	return out
}

// Delay returns x delayed by d samples (zero-padded at the front),
// truncated to the original length. d must be >= 0.
func Delay(x []complex128, d int) []complex128 {
	if d < 0 {
		panic("dsp: negative delay")
	}
	out := make([]complex128, len(x))
	copy(out[min(d, len(x)):], x)
	return out
}

// LowPassFIR designs a linear-phase low-pass filter by the
// Hamming-windowed-sinc method: cutoff is the normalized frequency
// (cycles/sample, 0 < cutoff < 0.5) and taps the odd filter length.
// The passband gain is normalized to exactly 1 at DC.
func LowPassFIR(cutoff float64, taps int) []complex128 {
	if cutoff <= 0 || cutoff >= 0.5 {
		panic("dsp: low-pass cutoff must be in (0, 0.5)")
	}
	if taps < 3 || taps%2 == 0 {
		panic("dsp: low-pass taps must be odd and >= 3")
	}
	h := make([]complex128, taps)
	w := Hamming(taps)
	mid := taps / 2
	var sum float64
	for i := range h {
		n := float64(i - mid)
		var v float64
		if n == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*n) / (math.Pi * n)
		}
		v *= w[i]
		sum += v
		h[i] = complex(v, 0)
	}
	for i := range h {
		h[i] /= complex(sum, 0)
	}
	return h
}
