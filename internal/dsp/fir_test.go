package dsp

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvolveKnownValues(t *testing.T) {
	x := []complex128{1, 2, 3}
	h := []complex128{1, -1}
	got := Convolve(x, h)
	want := []complex128{1, 1, 1, -3}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !capprox(got[i], want[i], eps) {
			t.Fatalf("sample %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []complex128{1}) != nil {
		t.Fatal("empty x should give nil")
	}
	if Convolve([]complex128{1}, nil) != nil {
		t.Fatal("empty h should give nil")
	}
}

func TestConvolveCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	x := randSignal(r, 15)
	h := randSignal(r, 7)
	a := Convolve(x, h)
	b := Convolve(h, x)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("commutativity violated at %d", i)
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	f := func(re, im float64, n uint8) bool {
		m := int(n%16) + 1
		x := make([]complex128, m)
		for i := range x {
			x[i] = complex(re, im)
		}
		y := Convolve(x, []complex128{1})
		if len(y) != m {
			return false
		}
		for i := range x {
			if y[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveSameLength(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	x := randSignal(r, 40)
	h := randSignal(r, 5)
	y := ConvolveSame(x, h)
	if len(y) != len(x) {
		t.Fatalf("length %d, want %d", len(y), len(x))
	}
	full := Convolve(x, h)
	for i := range y {
		if y[i] != full[i] {
			t.Fatalf("sample %d differs from full convolution", i)
		}
	}
}

func TestFIRStreamingMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	taps := randSignal(r, 8)
	x := randSignal(r, 200)
	want := ConvolveSame(x, taps)

	f := NewFIR(taps)
	var got []complex128
	// Feed in uneven chunks to exercise state carry-over.
	for _, chunk := range [][2]int{{0, 13}, {13, 14}, {14, 77}, {77, 200}} {
		got = append(got, f.Process(x[chunk[0]:chunk[1]])...)
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("sample %d: streaming %v batch %v", i, got[i], want[i])
		}
	}
}

func TestFIRReset(t *testing.T) {
	taps := []complex128{1, 1}
	f := NewFIR(taps)
	f.Process([]complex128{5})
	f.Reset()
	out := f.Process([]complex128{1})
	if !capprox(out[0], 1, eps) {
		t.Fatalf("after reset, output %v, want 1 (no memory)", out[0])
	}
}

func TestFIRTapsCopied(t *testing.T) {
	taps := []complex128{1, 2}
	f := NewFIR(taps)
	taps[0] = 99
	if f.Taps()[0] != 1 {
		t.Fatal("NewFIR should copy taps")
	}
	got := f.Taps()
	got[1] = 42
	if f.Taps()[1] != 2 {
		t.Fatal("Taps should return a copy")
	}
}

func TestDelay(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	y := Delay(x, 2)
	want := []complex128{0, 0, 1, 2}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Delay = %v", y)
		}
	}
	if z := Delay(x, 10); Energy(z) != 0 {
		t.Fatal("over-delay should zero the signal")
	}
}

func TestDelayNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Delay([]complex128{1}, -1)
}

func TestLowPassFIRResponse(t *testing.T) {
	h := LowPassFIR(0.1, 63)
	// DC gain exactly 1.
	var dc complex128
	for _, v := range h {
		dc += v
	}
	if cmplx.Abs(dc-1) > 1e-12 {
		t.Fatalf("DC gain %v", dc)
	}
	// Evaluate the frequency response: passband (0.05) near 0 dB,
	// stopband (0.25) strongly attenuated.
	resp := func(f float64) float64 {
		var acc complex128
		for n, v := range h {
			acc += v * Phasor(-2*3.141592653589793*f*float64(n))
		}
		return cmplx.Abs(acc)
	}
	if g := resp(0.05); g < 0.95 || g > 1.05 {
		t.Fatalf("passband gain %v", g)
	}
	if g := resp(0.25); g > 0.02 {
		t.Fatalf("stopband gain %v", g)
	}
}

func TestLowPassFIRValidation(t *testing.T) {
	for _, c := range []struct {
		cutoff float64
		taps   int
	}{{0, 11}, {0.5, 11}, {0.1, 4}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for cutoff=%v taps=%d", c.cutoff, c.taps)
				}
			}()
			LowPassFIR(c.cutoff, c.taps)
		}()
	}
}

func TestConvolveRangeIntoMatchesSame(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	x := make([]complex128, 200)
	h := make([]complex128, 13)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	for i := range h {
		h[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	h[4] = 0 // exercise the zero-tap skip
	full := ConvolveSame(x, h)
	for _, win := range [][2]int{
		{0, len(x)},  // full range must match exactly
		{0, 25},      // prefix including the filter transient
		{50, 120},    // interior window
		{190, 200},   // suffix
		{-5, 210},    // out-of-range bounds are clamped
		{80, 80},     // empty window computes nothing
	} {
		dst := ConvolveRangeInto(nil, x, h, win[0], win[1])
		lo, hi := max(win[0], 0), min(win[1], len(x))
		for i := lo; i < hi; i++ {
			if full[i] != dst[i] {
				t.Fatalf("window %v sample %d: got %v want %v", win, i, dst[i], full[i])
			}
		}
	}
}

func TestConvolveRangeIntoPreservesOutside(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5, 6}
	h := []complex128{1, 1}
	dst := make([]complex128, len(x))
	for i := range dst {
		dst[i] = complex(99, 0)
	}
	dst = ConvolveRangeInto(dst, x, h, 2, 4)
	for i, v := range dst {
		if i >= 2 && i < 4 {
			continue
		}
		if v != complex(99, 0) {
			t.Fatalf("sample %d outside window was overwritten: %v", i, v)
		}
	}
	full := ConvolveSame(x, h)
	if dst[2] != full[2] || dst[3] != full[3] {
		t.Fatalf("window samples wrong: %v vs %v", dst[2:4], full[2:4])
	}
}

func TestConvolveRangeIntoZeroAlloc(t *testing.T) {
	x := make([]complex128, 512)
	h := make([]complex128, 32)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	for i := range h {
		h[i] = complex(1, -1)
	}
	dst := make([]complex128, len(x))
	allocs := testing.AllocsPerRun(20, func() {
		dst = ConvolveRangeInto(dst, x, h, 100, 400)
	})
	if allocs != 0 {
		t.Fatalf("ConvolveRangeInto with capacity allocates %v per run, want 0", allocs)
	}
}
