package dsp

import "math/cmplx"

// CrossCorrelate returns c[k] = sum_n x[n+k] * conj(ref[n]) for lags
// k = 0 .. len(x)-len(ref), the sliding inner product used for preamble
// detection. len(ref) must be <= len(x) and non-zero.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	lags := len(x) - len(ref) + 1
	out := make([]complex128, lags)
	for k := 0; k < lags; k++ {
		var acc complex128
		for n, r := range ref {
			acc += x[k+n] * cmplx.Conj(r)
		}
		out[k] = acc
	}
	return out
}

// NormalizedCrossCorrelate returns |c[k]|^2 / (E_ref * E_window), a value
// in [0,1] that is immune to amplitude scaling. Windows with zero energy
// yield 0.
func NormalizedCrossCorrelate(x, ref []complex128) []float64 {
	if len(ref) == 0 || len(ref) > len(x) {
		return nil
	}
	eref := Energy(ref)
	lags := len(x) - len(ref) + 1
	out := make([]float64, lags)
	// Maintain the window energy incrementally.
	var ewin float64
	for n := 0; n < len(ref); n++ {
		ewin += absSq(x[n])
	}
	for k := 0; k < lags; k++ {
		var acc complex128
		for n, r := range ref {
			acc += x[k+n] * cmplx.Conj(r)
		}
		if ewin > 0 && eref > 0 {
			out[k] = absSq(acc) / (eref * ewin)
		}
		if k+len(ref) < len(x) {
			ewin += absSq(x[k+len(ref)]) - absSq(x[k])
			if ewin < 0 {
				ewin = 0
			}
		}
	}
	return out
}

// AutoCorrelateLag returns a[k] = sum_n x[n] * conj(x[n+lag]) over the
// first n samples where both indices are valid. Used by Schmidl-Cox style
// packet detection on the periodic WiFi short training field.
func AutoCorrelateLag(x []complex128, lag, n int) complex128 {
	var acc complex128
	for i := 0; i < n && i+lag < len(x); i++ {
		acc += x[i] * cmplx.Conj(x[i+lag])
	}
	return acc
}

// PeakIndex returns the index of the maximum value in v, or -1 if empty.
func PeakIndex(v []float64) int {
	best, idx := 0.0, -1
	for i, x := range v {
		if idx == -1 || x > best {
			best, idx = x, i
		}
	}
	return idx
}

// PeakIndexAbs returns the index of the maximum |v[i]|, or -1 if empty.
func PeakIndexAbs(v []complex128) int {
	best, idx := 0.0, -1
	for i, x := range v {
		if m := absSq(x); idx == -1 || m > best {
			best, idx = m, i
		}
	}
	return idx
}

func absSq(v complex128) float64 {
	return real(v)*real(v) + imag(v)*imag(v)
}
