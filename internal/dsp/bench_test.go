package dsp

import (
	"math/rand"
	"testing"
)

func benchSignal(n int) []complex128 {
	r := rand.New(rand.NewSource(1))
	return randSignal(r, n)
}

func BenchmarkFFT64(b *testing.B) {
	x := benchSignal(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := benchSignal(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTInPlace64(b *testing.B) {
	x := benchSignal(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFTInPlace(x)
	}
}

func BenchmarkIFFTInPlace64(b *testing.B) {
	x := benchSignal(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IFFTInPlace(x)
	}
}

func BenchmarkConvolveSameInto32Taps(b *testing.B) {
	x := benchSignal(20000)
	h := benchSignal(32)
	dst := make([]complex128, len(x))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvolveSameInto(dst, x, h)
	}
}

func BenchmarkConvolveSame32Taps(b *testing.B) {
	x := benchSignal(20000) // 1 ms at 20 MHz
	h := benchSignal(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ConvolveSame(x, h)
	}
}

func BenchmarkNormalizedCrossCorrelate(b *testing.B) {
	x := benchSignal(4000)
	ref := benchSignal(160)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalizedCrossCorrelate(x, ref)
	}
}

func BenchmarkWelchPSD(b *testing.B) {
	x := benchSignal(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		WelchPSD(x, 64)
	}
}
