// Package dsp provides the complex-baseband signal processing substrate
// used throughout the BackFi simulator: vector arithmetic, FFTs, FIR
// filtering, correlation, windowing, and power/SNR measurement.
//
// All signals are slices of complex128 sampled at a caller-chosen rate
// (the simulator uses 20 MHz). Functions never retain their arguments
// unless documented; in-place variants are suffixed InPlace.
package dsp

import (
	"math"
	"math/cmplx"
)

// Add returns a+b elementwise. The slices must have equal length.
func Add(a, b []complex128) []complex128 {
	mustSameLen(len(a), len(b))
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddInPlace adds b into a elementwise.
func AddInPlace(a, b []complex128) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] += b[i]
	}
}

// Sub returns a-b elementwise.
func Sub(a, b []complex128) []complex128 {
	mustSameLen(len(a), len(b))
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// SubInPlace subtracts b from a elementwise.
func SubInPlace(a, b []complex128) {
	mustSameLen(len(a), len(b))
	for i := range a {
		a[i] -= b[i]
	}
}

// Mul returns the elementwise (Hadamard) product a.*b.
func Mul(a, b []complex128) []complex128 {
	mustSameLen(len(a), len(b))
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Scale returns s*a for a scalar s.
func Scale(a []complex128, s complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = s * a[i]
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a []complex128, s complex128) {
	for i := range a {
		a[i] *= s
	}
}

// Conj returns the elementwise complex conjugate of a.
func Conj(a []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = cmplx.Conj(a[i])
	}
	return out
}

// Dot returns the inner product sum_i a[i] * conj(b[i]).
//
// Note the convention: the second argument is conjugated, matching the
// standard complex inner product <a,b> used in MRC combining.
func Dot(a, b []complex128) complex128 {
	mustSameLen(len(a), len(b))
	var acc complex128
	for i := range a {
		acc += a[i] * cmplx.Conj(b[i])
	}
	return acc
}

// Energy returns sum |a[i]|^2.
func Energy(a []complex128) float64 {
	var acc float64
	for _, v := range a {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc
}

// Power returns the mean of |a[i]|^2, or 0 for an empty slice.
func Power(a []complex128) float64 {
	if len(a) == 0 {
		return 0
	}
	return Energy(a) / float64(len(a))
}

// RMS returns sqrt(Power(a)).
func RMS(a []complex128) float64 { return math.Sqrt(Power(a)) }

// MaxAbs returns the maximum |a[i]|, or 0 for an empty slice.
func MaxAbs(a []complex128) float64 {
	max := 0.0
	for _, v := range a {
		if m := cmplx.Abs(v); m > max {
			max = m
		}
	}
	return max
}

// NormalizePower scales a copy of a so its mean power equals target.
// A zero signal is returned unchanged.
func NormalizePower(a []complex128, target float64) []complex128 {
	p := Power(a)
	if p == 0 {
		out := make([]complex128, len(a))
		copy(out, a)
		return out
	}
	return Scale(a, complex(math.Sqrt(target/p), 0))
}

// Phasor returns e^{j*theta}.
func Phasor(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// Rotate returns a copy of a with a progressive phase rotation
// e^{j*(phi0 + dphi*n)} applied to sample n. It implements carrier
// frequency/phase offsets at baseband.
func Rotate(a []complex128, phi0, dphi float64) []complex128 {
	out := make([]complex128, len(a))
	rot := Phasor(phi0)
	step := Phasor(dphi)
	for i, v := range a {
		out[i] = v * rot
		rot *= step
	}
	return out
}

// Abs returns the elementwise magnitudes of a.
func Abs(a []complex128) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Abs(v)
	}
	return out
}

// Angle returns the elementwise phases of a in radians.
func Angle(a []complex128) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = cmplx.Phase(v)
	}
	return out
}

// WrapPhase wraps theta into (-pi, pi].
func WrapPhase(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

// Concat concatenates the given signals into one new slice.
func Concat(parts ...[]complex128) []complex128 {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]complex128, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Zeros returns a zero signal of length n.
func Zeros(n int) []complex128 { return make([]complex128, n) }

func mustSameLen(a, b int) {
	if a != b {
		panic("dsp: length mismatch")
	}
}
