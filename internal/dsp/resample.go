package dsp

import "math"

// Decimate returns every factor-th sample of x starting at offset.
// factor must be >= 1 and offset in [0, factor).
func Decimate(x []complex128, factor, offset int) []complex128 {
	if factor < 1 {
		panic("dsp: decimation factor must be >= 1")
	}
	if offset < 0 || offset >= factor {
		panic("dsp: decimation offset out of range")
	}
	out := make([]complex128, 0, (len(x)-offset+factor-1)/factor)
	for i := offset; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// Upsample inserts factor-1 zeros after every sample of x.
func Upsample(x []complex128, factor int) []complex128 {
	if factor < 1 {
		panic("dsp: upsample factor must be >= 1")
	}
	out := make([]complex128, len(x)*factor)
	for i, v := range x {
		out[i*factor] = v
	}
	return out
}

// RepeatHold repeats each sample of x factor times (zero-order hold),
// the waveform a switching modulator produces when it holds one phase
// state for several baseband samples.
func RepeatHold(x []complex128, factor int) []complex128 {
	if factor < 1 {
		panic("dsp: hold factor must be >= 1")
	}
	out := make([]complex128, len(x)*factor)
	for i, v := range x {
		for k := 0; k < factor; k++ {
			out[i*factor+k] = v
		}
	}
	return out
}

// Goertzel evaluates the DFT of x at a single normalized frequency
// f (cycles per sample), returning sum_n x[n] e^{-j2π f n}. It is the
// cheap way to probe one tone, e.g. for tone-excitation RFID baselines.
func Goertzel(x []complex128, f float64) complex128 {
	var acc complex128
	w := Phasor(-2 * math.Pi * f)
	rot := complex(1, 0)
	for _, v := range x {
		acc += v * rot
		rot *= w
	}
	return acc
}
