package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func capprox(a, b complex128, tol float64) bool { return cmplx.Abs(a-b) <= tol }

func randSignal(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestAddSubRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randSignal(r, 64)
	b := randSignal(r, 64)
	got := Sub(Add(a, b), b)
	for i := range a {
		if !capprox(got[i], a[i], eps) {
			t.Fatalf("sample %d: got %v want %v", i, got[i], a[i])
		}
	}
}

func TestAddInPlaceMatchesAdd(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randSignal(r, 33)
	b := randSignal(r, 33)
	want := Add(a, b)
	AddInPlace(a, b)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestSubInPlaceMatchesSub(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randSignal(r, 17)
	b := randSignal(r, 17)
	want := Sub(a, b)
	SubInPlace(a, b)
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Add(make([]complex128, 3), make([]complex128, 4))
}

func TestDotConjugatesSecondArgument(t *testing.T) {
	a := []complex128{complex(0, 1)}
	b := []complex128{complex(0, 1)}
	// <j, j> = j * conj(j) = j * (-j) = 1.
	if got := Dot(a, b); !capprox(got, 1, eps) {
		t.Fatalf("Dot = %v, want 1", got)
	}
}

func TestEnergyPowerRMS(t *testing.T) {
	x := []complex128{3, complex(0, 4)}
	if got := Energy(x); !approx(got, 25, eps) {
		t.Fatalf("Energy = %v, want 25", got)
	}
	if got := Power(x); !approx(got, 12.5, eps) {
		t.Fatalf("Power = %v, want 12.5", got)
	}
	if got := RMS(x); !approx(got, math.Sqrt(12.5), eps) {
		t.Fatalf("RMS = %v", got)
	}
	if Power(nil) != 0 {
		t.Fatal("Power(nil) should be 0")
	}
}

func TestNormalizePower(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := randSignal(r, 256)
	y := NormalizePower(x, 2.5)
	if got := Power(y); !approx(got, 2.5, 1e-9) {
		t.Fatalf("normalized power = %v, want 2.5", got)
	}
	// Zero signal passes through.
	z := NormalizePower(Zeros(8), 1)
	if Power(z) != 0 {
		t.Fatal("zero signal should remain zero")
	}
}

func TestPhasorUnitMagnitude(t *testing.T) {
	for _, th := range []float64{0, 0.1, math.Pi / 2, -3, 100} {
		p := Phasor(th)
		if !approx(cmplx.Abs(p), 1, eps) {
			t.Fatalf("Phasor(%v) magnitude %v", th, cmplx.Abs(p))
		}
		if !approx(WrapPhase(cmplx.Phase(p)-WrapPhase(th)), 0, 1e-9) {
			t.Fatalf("Phasor(%v) phase %v", th, cmplx.Phase(p))
		}
	}
}

func TestRotateAppliesProgressivePhase(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	dphi := 0.3
	y := Rotate(x, 0.1, dphi)
	for i := range y {
		want := Phasor(0.1 + dphi*float64(i))
		if !capprox(y[i], want, eps) {
			t.Fatalf("sample %d: got %v want %v", i, y[i], want)
		}
	}
}

func TestRotatePreservesPowerProperty(t *testing.T) {
	f := func(re, im float64, phi0, dphi float64, n uint8) bool {
		if math.Abs(re) > 1e6 || math.Abs(im) > 1e6 || math.Abs(phi0) > 1e6 || math.Abs(dphi) > 1e6 {
			return true
		}
		m := int(n%32) + 1
		x := make([]complex128, m)
		for i := range x {
			x[i] = complex(re, im)
		}
		y := Rotate(x, phi0, dphi)
		return approx(Power(y), Power(x), 1e-9*(1+Power(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapPhaseRange(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) || math.Abs(theta) > 1e6 {
			return true
		}
		w := WrapPhase(theta)
		return w > -math.Pi-eps && w <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcat(t *testing.T) {
	a := []complex128{1, 2}
	b := []complex128{3}
	c := Concat(a, nil, b)
	if len(c) != 3 || c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Fatalf("Concat = %v", c)
	}
}

func TestMaxAbs(t *testing.T) {
	x := []complex128{1, complex(3, 4), -2}
	if got := MaxAbs(x); !approx(got, 5, eps) {
		t.Fatalf("MaxAbs = %v, want 5", got)
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) should be 0")
	}
}

func TestConjInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := randSignal(r, 20)
	y := Conj(Conj(x))
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("conj(conj(x)) differs at %d", i)
		}
	}
}

func TestScaleInPlace(t *testing.T) {
	x := []complex128{1, 2}
	ScaleInPlace(x, complex(0, 1))
	if x[0] != complex(0, 1) || x[1] != complex(0, 2) {
		t.Fatalf("ScaleInPlace = %v", x)
	}
}

func TestMulHadamard(t *testing.T) {
	a := []complex128{2, complex(0, 1)}
	b := []complex128{3, complex(0, 1)}
	c := Mul(a, b)
	if c[0] != 6 || c[1] != -1 {
		t.Fatalf("Mul = %v", c)
	}
}
