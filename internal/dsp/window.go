package dsp

import "math"

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, 0.54, 0.46)
}

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, 0.5, 0.5)
}

func cosineWindow(n int, a, b float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = a - b*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies signal x elementwise by the real window w.
func ApplyWindow(x []complex128, w []float64) []complex128 {
	mustSameLen(len(x), len(w))
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * complex(w[i], 0)
	}
	return out
}

// MovingAverage returns the k-point trailing moving average of v (the
// first k-1 outputs average the available prefix). k must be >= 1.
func MovingAverage(v []float64, k int) []float64 {
	if k < 1 {
		panic("dsp: moving average window must be >= 1")
	}
	out := make([]float64, len(v))
	var acc float64
	for i := range v {
		acc += v[i]
		if i >= k {
			acc -= v[i-k]
		}
		n := min(i+1, k)
		out[i] = acc / float64(n)
	}
	return out
}
