package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFT computes the in-order radix-2 decimation-in-time discrete Fourier
// transform of x. len(x) must be a power of two. The input is not
// modified. The forward transform is unnormalized:
//
//	X[k] = sum_n x[n] * e^{-j 2π k n / N}
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	FFTInPlace(out)
	return out
}

// IFFT computes the inverse DFT with 1/N normalization so that
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	IFFTInPlace(out)
	return out
}

// FFTInPlace transforms x in place. After the first call for a given
// size the transform is allocation-free: the twiddle factors and
// bit-reversal permutation come from a shared per-size plan cache.
func FFTInPlace(x []complex128) {
	fftForward(x)
}

// IFFTInPlace computes the inverse DFT of x in place, with 1/N
// normalization. Allocation-free once the size's plan is cached.
func IFFTInPlace(x []complex128) {
	if len(x) == 0 {
		return
	}
	// IFFT(x) = conj(FFT(conj(x)))/N. Conjugation is exact in IEEE
	// arithmetic, so this matches a dedicated inverse butterfly pass
	// bit for bit while sharing the forward twiddle table.
	conjInPlace(x)
	fftForward(x)
	n := 1 / float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])*n, -imag(x[i])*n)
	}
}

// plan caches the size-dependent constants of the radix-2 transform:
// the bit-reversal permutation and the forward twiddle factors for
// every butterfly stage. Plans are immutable once built and shared by
// all goroutines, so the parallel sweep engine hits the cache instead
// of re-deriving the w *= wstep recurrence on every call (the
// precomputed exp(-j2πk/size) values are also more accurate than the
// accumulated recurrence).
type plan struct {
	perm []int32
	// tw packs the stages back to back: size 2 contributes 1 twiddle,
	// size 4 two, ..., size n n/2 — n−1 in total. Stage with half
	// butterflies starts at offset half−1.
	tw []complex128
}

var planCache sync.Map // map[int]*plan

func planFor(n int) *plan {
	if p, ok := planCache.Load(n); ok {
		return p.(*plan)
	}
	p, _ := planCache.LoadOrStore(n, newPlan(n))
	return p.(*plan)
}

func newPlan(n int) *plan {
	p := &plan{perm: make([]int32, n), tw: make([]complex128, n-1)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	idx := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		for k := 0; k < half; k++ {
			p.tw[idx] = Phasor(-2 * math.Pi * float64(k) / float64(size))
			idx++
		}
	}
	return p
}

// fftForward runs the iterative radix-2 Cooley-Tukey transform using
// the cached plan for len(a).
func fftForward(a []complex128) {
	n := len(a)
	if n <= 1 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	p := planFor(n)
	for i, j := range p.perm {
		if int(j) > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	idx := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := p.tw[idx : idx+half]
		idx += half
		for start := 0; start < n; start += size {
			blk := a[start : start+size : start+size]
			for k, w := range stage {
				u := blk[k]
				t := blk[k+half] * w
				blk[k] = u + t
				blk[k+half] = u - t
			}
		}
	}
}

func conjInPlace(a []complex128) {
	for i := range a {
		a[i] = complex(real(a[i]), -imag(a[i]))
	}
}

// FFTShift swaps the two halves of a spectrum so DC moves to the center.
// len(x) must be even.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	if n%2 != 0 {
		panic("dsp: FFTShift requires even length")
	}
	out := make([]complex128, n)
	copy(out, x[n/2:])
	copy(out[n/2:], x[:n/2])
	return out
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}
