package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-order radix-2 decimation-in-time discrete Fourier
// transform of x. len(x) must be a power of two. The input is not
// modified. The forward transform is unnormalized:
//
//	X[k] = sum_n x[n] * e^{-j 2π k n / N}
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse DFT with 1/N normalization so that
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	n := complex(1/float64(len(x)), 0)
	for i := range out {
		out[i] *= n
	}
	return out
}

// fftInPlace runs an iterative radix-2 Cooley-Tukey transform.
func fftInPlace(a []complex128, inverse bool) {
	n := len(a)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := Phasor(step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				t := a[start+k+half] * w
				a[start+k] = u + t
				a[start+k+half] = u - t
				w *= wstep
			}
		}
	}
}

// FFTShift swaps the two halves of a spectrum so DC moves to the center.
// len(x) must be even.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	if n%2 != 0 {
		panic("dsp: FFTShift requires even length")
	}
	out := make([]complex128, n)
	copy(out, x[n/2:])
	copy(out[n/2:], x[:n/2])
	return out
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}
