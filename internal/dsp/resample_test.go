package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestDecimate(t *testing.T) {
	x := []complex128{0, 1, 2, 3, 4, 5, 6}
	got := Decimate(x, 3, 1)
	want := []complex128{1, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Decimate = %v", got)
		}
	}
}

func TestDecimateBadArgsPanics(t *testing.T) {
	for _, c := range []struct{ f, o int }{{0, 0}, {2, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for factor=%d offset=%d", c.f, c.o)
				}
			}()
			Decimate([]complex128{1}, c.f, c.o)
		}()
	}
}

func TestUpsampleDecimateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	x := randSignal(r, 25)
	y := Decimate(Upsample(x, 4), 4, 0)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestRepeatHold(t *testing.T) {
	x := []complex128{1, complex(0, 2)}
	y := RepeatHold(x, 3)
	want := []complex128{1, 1, 1, complex(0, 2), complex(0, 2), complex(0, 2)}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("RepeatHold = %v", y)
		}
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	x := randSignal(r, 64)
	y := FFT(x)
	for _, k := range []int{0, 1, 7, 31} {
		g := Goertzel(x, float64(k)/64)
		if cmplx.Abs(g-y[k]) > 1e-8 {
			t.Fatalf("bin %d: goertzel %v fft %v", k, g, y[k])
		}
	}
}

func TestGoertzelTone(t *testing.T) {
	const n = 100
	const f = 0.13
	x := make([]complex128, n)
	for i := range x {
		x[i] = Phasor(2 * math.Pi * f * float64(i))
	}
	g := Goertzel(x, f)
	if !approx(cmplx.Abs(g), n, 1e-6) {
		t.Fatalf("tone magnitude %v, want %d", cmplx.Abs(g), n)
	}
}

func TestWindowsEndpointsAndSymmetry(t *testing.T) {
	for name, w := range map[string][]float64{"hamming": Hamming(33), "hann": Hann(33)} {
		for i := range w {
			if !approx(w[i], w[len(w)-1-i], 1e-12) {
				t.Fatalf("%s window asymmetric at %d", name, i)
			}
			if w[i] < 0 || w[i] > 1 {
				t.Fatalf("%s window out of range: %v", name, w[i])
			}
		}
	}
	if Hann(33)[0] > 1e-12 {
		t.Fatal("hann endpoints should be 0")
	}
	if Hamming(1)[0] != 1 || Hann(1)[0] != 1 {
		t.Fatal("single-point windows should be 1")
	}
}

func TestApplyWindow(t *testing.T) {
	x := []complex128{2, 2}
	w := []float64{0.5, 1}
	y := ApplyWindow(x, w)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("ApplyWindow = %v", y)
	}
}

func TestMovingAverage(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	got := MovingAverage(v, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if !approx(got[i], want[i], eps) {
			t.Fatalf("MovingAverage = %v", got)
		}
	}
}
