package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBKnownValues(t *testing.T) {
	if !approx(DB(10), 10, eps) {
		t.Fatalf("DB(10) = %v", DB(10))
	}
	if !approx(DB(1), 0, eps) {
		t.Fatalf("DB(1) = %v", DB(1))
	}
	if !approx(DB(0.5), -3.0103, 1e-3) {
		t.Fatalf("DB(0.5) = %v", DB(0.5))
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Fatal("DB of non-positive should be -Inf")
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		if math.Abs(db) > 200 || math.IsNaN(db) {
			return true
		}
		return approx(DB(UnDB(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDBmConversions(t *testing.T) {
	if !approx(DBm(1), 30, eps) {
		t.Fatalf("DBm(1 W) = %v, want 30", DBm(1))
	}
	if !approx(DBm(0.001), 0, eps) {
		t.Fatalf("DBm(1 mW) = %v, want 0", DBm(0.001))
	}
	if !approx(UnDBm(20), 0.1, 1e-12) {
		t.Fatalf("UnDBm(20) = %v, want 0.1 W", UnDBm(20))
	}
}

func TestSNRdB(t *testing.T) {
	if !approx(SNRdB(100, 1), 20, eps) {
		t.Fatalf("SNRdB = %v", SNRdB(100, 1))
	}
	if !math.IsInf(SNRdB(1, 0), 1) {
		t.Fatal("zero noise should give +Inf")
	}
}

func TestEVMToSNRdB(t *testing.T) {
	// EVM of 10% is 20 dB SNR.
	if !approx(EVMToSNRdB(0.1), 20, eps) {
		t.Fatalf("EVMToSNRdB(0.1) = %v", EVMToSNRdB(0.1))
	}
	if !math.IsInf(EVMToSNRdB(0), 1) {
		t.Fatal("zero EVM should give +Inf")
	}
}
