package dsp

import (
	"math/rand"
	"sync"
	"testing"
)

func TestFFTInPlaceMatchesFFT(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 16, 64, 256, 1024} {
		x := randSignal(r, n)
		want := FFT(x)
		got := make([]complex128, n)
		copy(got, x)
		FFTInPlace(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: in-place differs from FFT at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestIFFTInPlaceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 8, 64, 512} {
		x := randSignal(r, n)
		y := make([]complex128, n)
		copy(y, x)
		FFTInPlace(y)
		IFFTInPlace(y)
		for i := range y {
			if d := y[i] - x[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Fatalf("n=%d: round trip error %v at %d", n, d, i)
			}
		}
	}
}

func TestIFFTInPlaceMatchesIFFT(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	x := randSignal(r, 128)
	want := IFFT(x)
	got := make([]complex128, len(x))
	copy(got, x)
	IFFTInPlace(got)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("in-place inverse differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestFFTPlanCacheConcurrent hammers the plan cache from many
// goroutines over many sizes — the race detector is the assertion.
func TestFFTPlanCacheConcurrent(t *testing.T) {
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 50; iter++ {
				n := sizes[(g+iter)%len(sizes)]
				x := randSignal(r, n)
				y := IFFT(FFT(x))
				for i := range y {
					if d := y[i] - x[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
						t.Errorf("n=%d: round trip error %v", n, d)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFFTDeterministicAcrossCalls(t *testing.T) {
	// Cached twiddles must make repeated transforms bit-identical.
	r := rand.New(rand.NewSource(10))
	x := randSignal(r, 64)
	a := FFT(x)
	b := FFT(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic FFT at %d", i)
		}
	}
}

func TestConvolveSameIntoMatchesConvolveSame(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ nx, nh int }{{1, 1}, {10, 3}, {3, 10}, {100, 32}, {5, 5}} {
		x := randSignal(r, tc.nx)
		h := randSignal(r, tc.nh)
		want := Convolve(x, h)[:tc.nx]
		got := ConvolveSameInto(nil, x, h)
		if len(got) != tc.nx {
			t.Fatalf("nx=%d nh=%d: len %d", tc.nx, tc.nh, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("nx=%d nh=%d: differs at %d: %v vs %v", tc.nx, tc.nh, i, got[i], want[i])
			}
		}
	}
}

func TestConvolveSameIntoReusesBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	x := randSignal(r, 50)
	h := randSignal(r, 8)
	buf := make([]complex128, 50)
	got := ConvolveSameInto(buf, x, h)
	if &got[0] != &buf[0] {
		t.Fatal("buffer with sufficient capacity was not reused")
	}
	// Dirty buffer must not leak into the result.
	for i := range buf {
		buf[i] = complex(1e9, -1e9)
	}
	got = ConvolveSameInto(buf, x, h)
	want := ConvolveSame(x, h)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dirty buffer leaked at %d", i)
		}
	}
	// Short buffer grows.
	got = ConvolveSameInto(make([]complex128, 3), x, h)
	if len(got) != 50 {
		t.Fatalf("short dst not grown: len %d", len(got))
	}
}

func TestConvolveSameIntoEmpty(t *testing.T) {
	if got := ConvolveSameInto(nil, nil, []complex128{1}); len(got) != 0 {
		t.Fatalf("empty x: len %d", len(got))
	}
	got := ConvolveSameInto(nil, []complex128{1, 2}, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty h should zero-fill: %v", got)
	}
}
