package dsp

import (
	"math/rand"
	"testing"
)

func TestCrossCorrelateFindsEmbeddedPattern(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	ref := randSignal(r, 16)
	x := Zeros(100)
	copy(x[37:], ref)
	c := CrossCorrelate(x, ref)
	if got := PeakIndexAbs(c); got != 37 {
		t.Fatalf("peak at lag %d, want 37", got)
	}
}

func TestNormalizedCrossCorrelatePeakIsOne(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ref := randSignal(r, 32)
	// Embed a scaled copy — normalization should still give ~1.
	x := randSignal(r, 200)
	for i := range ref {
		x[90+i] = ref[i] * complex(3.7, 0)
	}
	c := NormalizedCrossCorrelate(x, ref)
	peak := PeakIndex(c)
	if peak != 90 {
		t.Fatalf("peak at %d, want 90", peak)
	}
	if c[peak] < 0.999 || c[peak] > 1.001 {
		t.Fatalf("normalized peak %v, want ~1", c[peak])
	}
	for i, v := range c {
		if v > 1.0001 {
			t.Fatalf("normalized value %v > 1 at %d", v, i)
		}
	}
}

func TestCrossCorrelateDegenerate(t *testing.T) {
	if CrossCorrelate([]complex128{1}, nil) != nil {
		t.Fatal("empty ref should give nil")
	}
	if CrossCorrelate([]complex128{1}, []complex128{1, 2}) != nil {
		t.Fatal("ref longer than x should give nil")
	}
}

func TestAutoCorrelateLagDetectsPeriodicity(t *testing.T) {
	// A signal with period 16 has |autocorrelation at lag 16| equal to
	// the window energy.
	r := rand.New(rand.NewSource(32))
	base := randSignal(r, 16)
	x := Concat(base, base, base)
	ac := AutoCorrelateLag(x, 16, 32)
	e := Energy(x[:32])
	if !approx(real(ac), e, 1e-9*e) || !approx(imag(ac), 0, 1e-9*e) {
		t.Fatalf("autocorr %v, want %v", ac, e)
	}
}

func TestPeakIndexEmpty(t *testing.T) {
	if PeakIndex(nil) != -1 {
		t.Fatal("PeakIndex(nil) should be -1")
	}
	if PeakIndexAbs(nil) != -1 {
		t.Fatal("PeakIndexAbs(nil) should be -1")
	}
}

func TestPeakIndexNegativeValues(t *testing.T) {
	if got := PeakIndex([]float64{-5, -2, -9}); got != 1 {
		t.Fatalf("PeakIndex = %d, want 1", got)
	}
}
