package mac

import (
	"fmt"
	"math/rand"
)

// Deterministic tag-arbitration MAC (paper Sec. 4.1 generalized to
// groups). BackFi addresses one tag per excitation by prefixing the
// wake preamble it alone correlates against; with joint successive
// cancellation at the reader (DESIGN.md §5i) one excitation can carry
// several tags, so arbitration becomes: which GROUP of tags does frame
// k light up?
//
// TagMAC answers that as a pure function of (Seed, frame index). Each
// round is a seeded permutation of the population sliced into groups
// of GroupSize; round r uses an RNG keyed by Seed and r, so any
// worker — a shard goroutine, a replayed trace, a remote client — can
// compute frame k's group independently, in O(population), with no
// shared state. That is the same determinism contract the serving
// layer pins for session streams (§5e): arbitration must never depend
// on who computed it.
//
// When a group fails joint decode (too many reflections for the SIC
// depth), Split gives the query-tree fallback: halve the group and
// poll the halves in consecutive frames, recursing until every tag is
// isolated — the classic binary tree walk, still fully deterministic.

// TagMACConfig sizes the arbitration.
type TagMACConfig struct {
	// Tags is the population size (tag IDs 0..Tags-1).
	Tags int
	// GroupSize is how many tags share one excitation — the joint-SIC
	// decode depth the reader is provisioned for. 1 degenerates to the
	// paper's single-tag polling.
	GroupSize int
	// Seed keys the per-round permutations.
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c TagMACConfig) Validate() error {
	if c.Tags <= 0 {
		return fmt.Errorf("mac: Tags %d, need > 0", c.Tags)
	}
	if c.GroupSize <= 0 {
		return fmt.Errorf("mac: GroupSize %d, need > 0", c.GroupSize)
	}
	return nil
}

// TagMAC is the deterministic slotted arbiter. It holds only the
// (immutable) config; all scheduling state is derived per call.
type TagMAC struct {
	cfg TagMACConfig
}

// NewTagMAC builds an arbiter.
func NewTagMAC(cfg TagMACConfig) (*TagMAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TagMAC{cfg: cfg}, nil
}

// SlotsPerRound is how many frames one full pass over the population
// takes: every tag is polled exactly once per round.
func (m *TagMAC) SlotsPerRound() int {
	g := m.cfg.GroupSize
	return (m.cfg.Tags + g - 1) / g
}

// Slot returns the tag IDs lit by frame (slot) index `frame`, in
// ascending order. Pure: two calls with the same frame always agree,
// and frames may be computed in any order by any caller.
func (m *TagMAC) Slot(frame int) []int {
	if frame < 0 {
		return nil
	}
	spr := m.SlotsPerRound()
	round := frame / spr
	slot := frame % spr
	perm := m.roundPermutation(round)
	g := m.cfg.GroupSize
	lo := slot * g
	hi := lo + g
	if hi > len(perm) {
		hi = len(perm)
	}
	group := append([]int(nil), perm[lo:hi]...)
	sortInts(group)
	return group
}

// roundPermutation is the seeded Fisher-Yates shuffle for one round,
// keyed by (Seed, round) so rounds differ but replays agree.
func (m *TagMAC) roundPermutation(round int) []int {
	r := rand.New(rand.NewSource(mixSeed(m.cfg.Seed, uint64(round))))
	perm := make([]int, m.cfg.Tags)
	for i := range perm {
		perm[i] = i
	}
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// Split is the query-tree collision fallback: a group whose joint
// decode failed is halved, and the halves are polled in consecutive
// frames. Splitting a singleton (or empty group) returns nil — the
// tree bottoms out at isolated tags.
func Split(group []int) [][]int {
	if len(group) < 2 {
		return nil
	}
	mid := len(group) / 2
	return [][]int{
		append([]int(nil), group[:mid]...),
		append([]int(nil), group[mid:]...),
	}
}

// mixSeed folds a round counter into the seed, FNV-1a style, so
// adjacent rounds get uncorrelated permutations.
func mixSeed(seed int64, v uint64) int64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return int64(h)
}

// sortInts is a tiny insertion sort; groups are a handful of entries
// and this avoids pulling sort into the hot slot path.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
