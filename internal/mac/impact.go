package mac

import (
	"fmt"
	"math"
	"math/rand"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/fec"
	"backfi/internal/tag"
	"backfi/internal/wifi"
)

// requiredSNRdB is the approximate post-equalization SNR each 802.11a/g
// rate needs for a low packet error rate.
var requiredSNRdB = map[int]float64{
	6: 5, 9: 6.5, 12: 8, 18: 10.5, 24: 13.5, 36: 17.5, 48: 21.5, 54: 23.5,
}

// RequiredSNRdB returns the decode threshold for a rate.
func RequiredSNRdB(mbps int) (float64, error) {
	v, ok := requiredSNRdB[mbps]
	if !ok {
		return 0, fmt.Errorf("mac: unknown rate %d Mbps", mbps)
	}
	return v, nil
}

// ClientDistanceForRate returns the AP–client distance at which the
// downlink SNR sits margin dB above the rate's threshold, under the
// given indoor exponent and transmit power.
func ClientDistanceForRate(mbps int, txPowerDBm, eta, marginDB float64) (float64, error) {
	thr, err := RequiredSNRdB(mbps)
	if err != nil {
		return 0, err
	}
	noiseDBm := dsp.DBm(channel.ThermalNoiseW(20e6, 6))
	// txPower − PL(d) − noise = thr + margin
	pl := txPowerDBm - noiseDBm - thr - marginDB
	pl1 := channel.FSPLdB(1, channel.DefaultCarrierHz)
	d := math.Pow(10, (pl-pl1)/(10*eta))
	if d < 0.5 {
		d = 0.5
	}
	return d, nil
}

// ImpactConfig describes one WiFi-impact experiment: a normal AP→client
// downlink with a BackFi tag modulating nearby.
type ImpactConfig struct {
	// TagDistanceM is the AP–tag separation (the interference is
	// strongest when the tag is nearly on top of the AP).
	TagDistanceM float64
	// TagClientDistanceM is the tag→client separation.
	TagClientDistanceM float64
	// ClientDistanceM is the AP–client separation.
	ClientDistanceM float64
	// WiFiMbps and PSDUBytes describe the downlink traffic.
	WiFiMbps  int
	PSDUBytes int
	// DownlinkExponent is the indoor path-loss exponent of the normal
	// WiFi links (≈3–4 through walls and furniture).
	DownlinkExponent float64
	// TxPowerDBm is the AP power.
	TxPowerDBm float64
}

// DefaultImpactConfig returns the Fig. 13 worst case: tag at 0.25 m.
func DefaultImpactConfig(mbps int, clientDistanceM float64) ImpactConfig {
	return ImpactConfig{
		TagDistanceM:       0.25,
		TagClientDistanceM: clientDistanceM,
		ClientDistanceM:    clientDistanceM,
		WiFiMbps:           mbps,
		PSDUBytes:          500,
		DownlinkExponent:   3.5,
		TxPowerDBm:         20,
	}
}

// ImpactResult compares the downlink with and without the tag active.
type ImpactResult struct {
	// PEROn / PEROff are the client's packet error rates.
	PEROn, PEROff float64
	// SNROnDB / SNROffDB are mean client post-equalization SNRs.
	SNROnDB, SNROffDB float64
	// ThroughputOnBps / ThroughputOffBps are PHY goodputs
	// rate × (1−PER).
	ThroughputOnBps, ThroughputOffBps float64
}

// SNRDegradationDB returns the SNR cost of the tag.
func (r ImpactResult) SNRDegradationDB() float64 { return r.SNROffDB - r.SNROnDB }

// SimulateClientImpact runs `trials` physical downlink packets through
// the real OFDM PHY, with the tag's backscatter (a 16PSK 2.5 Msym/s
// modulated copy of the same transmission) arriving at the client as
// interference, and the same packets again with the tag silent.
func SimulateClientImpact(cfg ImpactConfig, trials int, seed int64) (ImpactResult, error) {
	rate, err := wifi.RateByMbps(cfg.WiFiMbps)
	if err != nil {
		return ImpactResult{}, err
	}
	if trials <= 0 {
		return ImpactResult{}, fmt.Errorf("mac: trials must be positive")
	}
	r := rand.New(rand.NewSource(seed))
	rx := wifi.NewReceiver()

	tcfg := tag.Config{Mod: tag.PSK16, Coding: fec.Rate12, SymbolRateHz: 2.5e6, PreambleChips: 32, ID: 1}
	tg, err := tag.New(tcfg)
	if err != nil {
		return ImpactResult{}, err
	}

	var res ImpactResult
	var snrOnSum, snrOffSum float64
	var okOn, okOff, snrOnN, snrOffN int
	for i := 0; i < trials; i++ {
		psdu := make([]byte, cfg.PSDUBytes)
		r.Read(psdu)
		wave, err := wifi.Transmit(psdu, rate, wifi.DefaultScramblerSeed)
		if err != nil {
			return ImpactResult{}, err
		}
		xp := dsp.Scale(wave, complex(math.Sqrt(dsp.UnDBm(cfg.TxPowerDBm)), 0))

		// Downlink channel and client noise.
		hc, noiseW := channel.Downlink(r, cfg.ClientDistanceM, cfg.DownlinkExponent, channel.DefaultCarrierHz, 4, 6, 20e6)
		noise := channel.NewAWGN(r, noiseW)

		// Tag interference path: AP→tag (backscatter budget) then
		// tag→client (one-way loss).
		bsCfg := channel.DefaultConfig(math.Max(cfg.TagDistanceM, 0.1))
		plAPTag := channel.LogDistancePLdB(math.Max(cfg.TagDistanceM, 0.1), channel.DefaultCarrierHz, bsCfg.PathLossExponent, 1)
		hfGain := -plAPTag + bsCfg.TagGainDB/2
		hf := channel.RicianTaps(r, 3, 12, 0.5).Scale(hfGain)
		plTagClient := channel.LogDistancePLdB(math.Max(cfg.TagClientDistanceM, 0.1), channel.DefaultCarrierHz, cfg.DownlinkExponent, 1)
		htc := channel.RicianTaps(r, 3, 12, 0.5).Scale(-plTagClient + bsCfg.TagGainDB/2)

		capN := tg.PayloadCapacity(len(xp))
		var interference []complex128
		if capN >= 0 {
			payload := make([]byte, capN)
			r.Read(payload)
			m, _, err := tg.ModulationSequence(len(xp), payload)
			if err != nil {
				return ImpactResult{}, err
			}
			interference = htc.Apply(tag.Backscatter(hf.Apply(xp), m))
		} else {
			interference = dsp.Zeros(len(xp))
		}

		direct := hc.Apply(xp)
		rxOff := noise.Add(direct)
		rxOn := noise.Add(dsp.Add(direct, interference))

		if got, info, err := rx.Receive(rxOff); err == nil && bytesEqual(got, psdu) {
			okOff++
			snrOffSum += info.SNRdB
			snrOffN++
		}
		if got, info, err := rx.Receive(rxOn); err == nil && bytesEqual(got, psdu) {
			okOn++
			snrOnSum += info.SNRdB
			snrOnN++
		}
	}
	res.PEROff = 1 - float64(okOff)/float64(trials)
	res.PEROn = 1 - float64(okOn)/float64(trials)
	if snrOffN > 0 {
		res.SNROffDB = snrOffSum / float64(snrOffN)
	}
	if snrOnN > 0 {
		res.SNROnDB = snrOnSum / float64(snrOnN)
	}
	res.ThroughputOffBps = float64(cfg.WiFiMbps) * 1e6 * (1 - res.PEROff)
	res.ThroughputOnBps = float64(cfg.WiFiMbps) * 1e6 * (1 - res.PEROn)
	return res, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
