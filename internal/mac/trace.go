// Package mac models the network-level behaviour of BackFi: loaded
// WiFi networks whose AP airtime gives the tag its backscatter
// opportunities (paper Sec. 6.3, Fig. 12a), and the impact of the
// tag's reflections on normal WiFi clients (Secs. 6.4/6.5,
// Figs. 12b/13).
//
// The paper replays captured hotspot traces [24, 41, 47]; per the
// substitution rule we generate synthetic AP airtime traces with the
// same structure: alternating busy bursts (the AP's own packets, sized
// like real downlink traffic) and idle gaps (contention, client
// traffic), parameterized by the AP's long-run airtime share.
package mac

import (
	"fmt"
	"math"
	"math/rand"
)

// Burst is one contiguous AP transmission opportunity.
type Burst struct {
	// StartSec is the burst's start time.
	StartSec float64
	// DurSec is the burst's duration.
	DurSec float64
}

// Trace is a sequence of AP transmission bursts over a time horizon.
type Trace struct {
	// Bursts in increasing time order, non-overlapping.
	Bursts []Burst
	// HorizonSec is the total observed duration.
	HorizonSec float64
}

// AirtimeFraction returns the AP's share of airtime.
func (t *Trace) AirtimeFraction() float64 {
	if t.HorizonSec <= 0 {
		return 0
	}
	var busy float64
	for _, b := range t.Bursts {
		busy += b.DurSec
	}
	return busy / t.HorizonSec
}

// TraceConfig parameterizes a synthetic loaded-AP trace.
type TraceConfig struct {
	// HorizonSec is the generated duration.
	HorizonSec float64
	// APAirtime is the target long-run fraction of time the AP
	// transmits (heavily loaded downlink networks: 0.5–0.95).
	APAirtime float64
	// MeanBurstSec is the mean busy-burst length (a frame exchange or
	// TXOP; ≈1–3 ms for 1500-byte packets with aggregation).
	MeanBurstSec float64
	// BurstShape controls burst-length variability: durations are
	// drawn log-normally with this σ (0 → deterministic).
	BurstShape float64
}

// DefaultTraceConfig models one heavily loaded AP.
func DefaultTraceConfig(apAirtime float64) TraceConfig {
	return TraceConfig{
		HorizonSec:   2.0,
		APAirtime:    apAirtime,
		MeanBurstSec: 2e-3,
		BurstShape:   0.6,
	}
}

// Generate draws a trace: busy bursts with log-normal durations
// separated by exponential idle gaps whose mean is set by the target
// airtime share.
func Generate(cfg TraceConfig, r *rand.Rand) (*Trace, error) {
	if cfg.HorizonSec <= 0 || cfg.MeanBurstSec <= 0 {
		return nil, fmt.Errorf("mac: horizon and burst length must be positive")
	}
	if cfg.APAirtime <= 0 || cfg.APAirtime >= 1 {
		return nil, fmt.Errorf("mac: AP airtime %v must be in (0,1)", cfg.APAirtime)
	}
	meanIdle := cfg.MeanBurstSec * (1 - cfg.APAirtime) / cfg.APAirtime
	// Log-normal with mean MeanBurstSec: mu = ln(mean) - σ²/2.
	mu := math.Log(cfg.MeanBurstSec) - cfg.BurstShape*cfg.BurstShape/2
	tr := &Trace{HorizonSec: cfg.HorizonSec}
	now := r.ExpFloat64() * meanIdle
	for now < cfg.HorizonSec {
		d := math.Exp(mu + cfg.BurstShape*r.NormFloat64())
		if now+d > cfg.HorizonSec {
			d = cfg.HorizonSec - now
		}
		if d > 0 {
			tr.Bursts = append(tr.Bursts, Burst{StartSec: now, DurSec: d})
		}
		now += d + r.ExpFloat64()*meanIdle
	}
	return tr, nil
}

// OpportunityConfig describes what the tag needs from each burst.
type OpportunityConfig struct {
	// OverheadSec is the per-burst protocol cost before payload
	// symbols flow: CTS-to-SELF, wake preamble (16 µs), silence
	// (16 µs), and the tag preamble (32 µs).
	OverheadSec float64
	// LinkBps is the tag's information rate while modulating (the
	// optimal rate at the tag's range, e.g. 5 Mbps at 1 m).
	LinkBps float64
}

// DefaultOpportunityConfig uses the paper's protocol timing and a
// 5 Mbps link (the optimum at 1 m).
func DefaultOpportunityConfig() OpportunityConfig {
	return OpportunityConfig{
		OverheadSec: 44e-6 + 16e-6 + 16e-6 + 32e-6, // CTS + wake + silent + preamble
		LinkBps:     5e6,
	}
}

// Throughput computes the tag's achievable rate over a trace: each
// burst long enough to cover the protocol overhead contributes its
// remaining duration at the link rate (paper Sec. 6.3's replay).
func Throughput(tr *Trace, cfg OpportunityConfig) float64 {
	if tr.HorizonSec <= 0 {
		return 0
	}
	var bits float64
	for _, b := range tr.Bursts {
		if usable := b.DurSec - cfg.OverheadSec; usable > 0 {
			bits += usable * cfg.LinkBps
		}
	}
	return bits / tr.HorizonSec
}
