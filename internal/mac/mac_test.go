package mac

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateAirtimeMatchesTarget(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, target := range []float64{0.3, 0.6, 0.85} {
		cfg := DefaultTraceConfig(target)
		cfg.HorizonSec = 20
		tr, err := Generate(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.AirtimeFraction(); math.Abs(got-target) > 0.08 {
			t.Fatalf("airtime %v, target %v", got, target)
		}
	}
}

func TestGenerateBurstsOrderedAndDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr, err := Generate(DefaultTraceConfig(0.7), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Bursts) < 10 {
		t.Fatalf("only %d bursts in 2 s", len(tr.Bursts))
	}
	prevEnd := 0.0
	for i, b := range tr.Bursts {
		if b.StartSec < prevEnd {
			t.Fatalf("burst %d overlaps previous", i)
		}
		if b.DurSec <= 0 {
			t.Fatalf("burst %d non-positive", i)
		}
		if b.StartSec+b.DurSec > tr.HorizonSec+1e-9 {
			t.Fatalf("burst %d exceeds horizon", i)
		}
		prevEnd = b.StartSec + b.DurSec
	}
}

func TestGenerateValidation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if _, err := Generate(TraceConfig{HorizonSec: 0, APAirtime: 0.5, MeanBurstSec: 1e-3}, r); err == nil {
		t.Fatal("expected error for zero horizon")
	}
	if _, err := Generate(TraceConfig{HorizonSec: 1, APAirtime: 1.5, MeanBurstSec: 1e-3}, r); err == nil {
		t.Fatal("expected error for airtime out of range")
	}
	if _, err := Generate(TraceConfig{HorizonSec: 1, APAirtime: 0.5, MeanBurstSec: 0}, r); err == nil {
		t.Fatal("expected error for zero burst length")
	}
}

func TestThroughputScalesWithAirtime(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	opp := DefaultOpportunityConfig()
	get := func(air float64) float64 {
		cfg := DefaultTraceConfig(air)
		cfg.HorizonSec = 10
		tr, err := Generate(cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		return Throughput(tr, opp)
	}
	lo := get(0.3)
	hi := get(0.9)
	if hi <= lo {
		t.Fatalf("throughput should grow with airtime: %v vs %v", lo, hi)
	}
	// A 90%-loaded AP should deliver most of the 5 Mbps optimum (the
	// paper's median over trace replays is ≈80%).
	if hi < 0.55*opp.LinkBps || hi > opp.LinkBps {
		t.Fatalf("high-load throughput %v implausible", hi)
	}
}

func TestThroughputOverheadCost(t *testing.T) {
	// Many short bursts suffer more overhead than a few long ones.
	tr := &Trace{HorizonSec: 1}
	for i := 0; i < 1000; i++ { // 1000 × 0.5 ms bursts = 0.5 s airtime
		tr.Bursts = append(tr.Bursts, Burst{StartSec: float64(i) * 1e-3, DurSec: 0.5e-3})
	}
	long := &Trace{HorizonSec: 1, Bursts: []Burst{{0, 0.5}}}
	opp := DefaultOpportunityConfig()
	short := Throughput(tr, opp)
	big := Throughput(long, opp)
	if short >= big {
		t.Fatalf("fragmented airtime should cost throughput: %v vs %v", short, big)
	}
	// Bursts shorter than the overhead contribute nothing.
	tiny := &Trace{HorizonSec: 1, Bursts: []Burst{{0, 50e-6}}}
	if Throughput(tiny, opp) != 0 {
		t.Fatal("sub-overhead bursts should yield zero")
	}
}

func TestRequiredSNRMonotone(t *testing.T) {
	rates := []int{6, 9, 12, 18, 24, 36, 48, 54}
	prev := -1.0
	for _, mbps := range rates {
		v, err := RequiredSNRdB(mbps)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("threshold for %d Mbps not increasing", mbps)
		}
		prev = v
	}
	if _, err := RequiredSNRdB(7); err == nil {
		t.Fatal("expected error for unknown rate")
	}
}

func TestClientDistanceForRate(t *testing.T) {
	d54, err := ClientDistanceForRate(54, 20, 3.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	d6, err := ClientDistanceForRate(6, 20, 3.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Higher rates need the client closer.
	if d54 >= d6 {
		t.Fatalf("54 Mbps distance %v should be below 6 Mbps %v", d54, d6)
	}
	if d54 < 0.5 || d6 > 200 {
		t.Fatalf("implausible distances %v, %v", d54, d6)
	}
	if _, err := ClientDistanceForRate(7, 20, 3.5, 3); err == nil {
		t.Fatal("expected error")
	}
}

func TestClientImpactNegligibleWhenTagFar(t *testing.T) {
	d, _ := ClientDistanceForRate(24, 20, 3.5, 6)
	cfg := DefaultImpactConfig(24, d)
	cfg.TagDistanceM = 4 // tag far from AP: re-radiated power tiny
	res, err := SimulateClientImpact(cfg, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEROff > 0.2 {
		t.Fatalf("baseline PER %v too high — client placement broken", res.PEROff)
	}
	if res.PEROn > res.PEROff+0.2 {
		t.Fatalf("distant tag should not hurt: PER %v vs %v", res.PEROn, res.PEROff)
	}
}

func TestClientImpactWorstCaseSNRLoss(t *testing.T) {
	// Tag at 0.25 m from the AP, client near: some SNR degradation
	// appears but the link survives at a mid rate (paper Fig. 13).
	d, _ := ClientDistanceForRate(24, 20, 3.5, 6)
	cfg := DefaultImpactConfig(24, d)
	res, err := SimulateClientImpact(cfg, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEROff > 0.2 {
		t.Fatalf("baseline PER %v too high", res.PEROff)
	}
	if res.SNRDegradationDB() < -1 {
		t.Fatalf("tag should not improve SNR: degradation %v", res.SNRDegradationDB())
	}
	if res.PEROn > 0.6 {
		t.Fatalf("worst-case tag should not kill a 24 Mbps link: PER %v", res.PEROn)
	}
}

func TestSimulateClientImpactValidation(t *testing.T) {
	if _, err := SimulateClientImpact(DefaultImpactConfig(7, 1), 2, 1); err == nil {
		t.Fatal("expected error for bad rate")
	}
	if _, err := SimulateClientImpact(DefaultImpactConfig(24, 1), 0, 1); err == nil {
		t.Fatal("expected error for zero trials")
	}
}
