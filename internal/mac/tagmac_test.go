package mac

import (
	"reflect"
	"testing"
)

func TestTagMACDeterministicAndPure(t *testing.T) {
	m, err := NewTagMAC(TagMACConfig{Tags: 17, GroupSize: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewTagMAC(TagMACConfig{Tags: 17, GroupSize: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Same frame must agree across instances and across call order:
	// compute frames backwards on one arbiter, forwards on the other.
	const frames = 40
	fwd := make([][]int, frames)
	for f := 0; f < frames; f++ {
		fwd[f] = m.Slot(f)
	}
	for f := frames - 1; f >= 0; f-- {
		if got := m2.Slot(f); !reflect.DeepEqual(got, fwd[f]) {
			t.Fatalf("frame %d: %v vs %v (order-dependent arbitration)", f, got, fwd[f])
		}
	}
	// Different seeds must disagree somewhere.
	m3, _ := NewTagMAC(TagMACConfig{Tags: 17, GroupSize: 3, Seed: 43})
	same := true
	for f := 0; f < frames; f++ {
		if !reflect.DeepEqual(m3.Slot(f), fwd[f]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence arbitration")
	}
}

func TestTagMACRoundCoversPopulation(t *testing.T) {
	for _, tc := range []struct{ tags, group int }{{1, 1}, {8, 2}, {17, 3}, {5, 8}} {
		m, err := NewTagMAC(TagMACConfig{Tags: tc.tags, GroupSize: tc.group, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		spr := m.SlotsPerRound()
		for round := 0; round < 3; round++ {
			seen := map[int]int{}
			for s := 0; s < spr; s++ {
				for _, id := range m.Slot(round*spr + s) {
					seen[id]++
				}
			}
			if len(seen) != tc.tags {
				t.Fatalf("tags=%d group=%d round %d covered %d tags", tc.tags, tc.group, round, len(seen))
			}
			for id, n := range seen {
				if n != 1 {
					t.Fatalf("tags=%d group=%d round %d polled tag %d %d times", tc.tags, tc.group, round, id, n)
				}
				if id < 0 || id >= tc.tags {
					t.Fatalf("tag id %d out of range", id)
				}
			}
		}
	}
}

func TestTagMACGroupSize(t *testing.T) {
	m, _ := NewTagMAC(TagMACConfig{Tags: 10, GroupSize: 4, Seed: 1})
	if spr := m.SlotsPerRound(); spr != 3 {
		t.Fatalf("SlotsPerRound = %d, want 3", spr)
	}
	// Last slot of a round holds the remainder.
	sizes := map[int]int{}
	for s := 0; s < 3; s++ {
		sizes[len(m.Slot(s))]++
	}
	if sizes[4] != 2 || sizes[2] != 1 {
		t.Fatalf("slot sizes %v, want two of 4 and one of 2", sizes)
	}
	if g := m.Slot(-1); g != nil {
		t.Fatalf("negative frame returned %v", g)
	}
}

func TestTagMACSplit(t *testing.T) {
	halves := Split([]int{3, 1, 4, 1, 5})
	if len(halves) != 2 || len(halves[0]) != 2 || len(halves[1]) != 3 {
		t.Fatalf("split = %v", halves)
	}
	// Splitting must not alias the input.
	halves[0][0] = 99
	if got := []int{3, 1, 4, 1, 5}[0]; got != 3 {
		t.Fatal("split aliases input")
	}
	if Split([]int{7}) != nil || Split(nil) != nil {
		t.Fatal("singleton/empty split should bottom out")
	}
}

func TestTagMACValidate(t *testing.T) {
	if _, err := NewTagMAC(TagMACConfig{Tags: 0, GroupSize: 1}); err == nil {
		t.Fatal("expected error for empty population")
	}
	if _, err := NewTagMAC(TagMACConfig{Tags: 4, GroupSize: 0}); err == nil {
		t.Fatal("expected error for zero group")
	}
}
