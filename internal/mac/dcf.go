package mac

import (
	"fmt"
	"math/rand"
	"sort"
)

// Event-driven 802.11 DCF (CSMA/CA) simulation. Where Generate draws
// AP airtime statistically, SimulateDCF derives it from contention:
// stations with saturated queues run the standard
// DIFS → backoff → transmit → SIFS/ACK cycle with binary exponential
// backoff on collision. The AP's transmissions become the backscatter
// opportunities of Fig. 12a, so the trace's burst structure emerges
// from the MAC rather than being parameterized.

// 802.11a/g DCF timing (µs).
const (
	slotUs = 9
	sifsUs = 16
	difsUs = 34 // SIFS + 2 slots
	ackUs  = 44 // ACK at a basic rate including preamble
	cwMin  = 15
	cwMax  = 1023
)

// DCFStation is one contender.
type DCFStation struct {
	// Name labels the station ("AP", "sta1", ...).
	Name string
	// Weight is the relative offered load: a station with weight 0
	// idles; the AP in a downlink-heavy cell has the largest weight.
	// Between its own transmissions a station re-queues with
	// probability Weight (1 = saturated).
	Weight float64
	// PacketAirtimeUs is the duration of one of its transmissions
	// (PPDU at its rate).
	PacketAirtimeUs int
}

// DCFConfig describes the cell.
type DCFConfig struct {
	Stations []DCFStation
	// HorizonUs is the simulated duration.
	HorizonUs int
}

// DCFResult carries the outcome.
type DCFResult struct {
	// Trace holds the AP's transmissions (station 0) as backscatter
	// opportunities.
	Trace *Trace
	// AirtimeShare maps station name → fraction of the horizon spent
	// transmitting successfully.
	AirtimeShare map[string]float64
	// Collisions counts collision events.
	Collisions int
	// Attempts counts transmission attempts.
	Attempts int
}

// SimulateDCF runs the contention process. Station 0 must be the AP.
func SimulateDCF(cfg DCFConfig, r *rand.Rand) (*DCFResult, error) {
	if len(cfg.Stations) == 0 {
		return nil, fmt.Errorf("mac: no stations")
	}
	if cfg.HorizonUs <= 0 {
		return nil, fmt.Errorf("mac: horizon must be positive")
	}
	for i, s := range cfg.Stations {
		if s.PacketAirtimeUs <= 0 {
			return nil, fmt.Errorf("mac: station %d has no airtime", i)
		}
		if s.Weight < 0 || s.Weight > 1 {
			return nil, fmt.Errorf("mac: station %d weight %v out of [0,1]", i, s.Weight)
		}
	}

	type stationState struct {
		backoff int // remaining backoff slots; -1 = no pending packet
		cw      int
	}
	states := make([]stationState, len(cfg.Stations))
	for i := range states {
		states[i] = stationState{backoff: -1, cw: cwMin}
	}
	// enqueue draws whether a station has a packet ready and a fresh
	// backoff for it.
	enqueue := func(i int) {
		if r.Float64() < cfg.Stations[i].Weight {
			states[i].backoff = r.Intn(states[i].cw + 1)
		} else {
			states[i].backoff = -1
		}
	}
	for i := range states {
		enqueue(i)
	}

	res := &DCFResult{
		Trace:        &Trace{HorizonSec: float64(cfg.HorizonUs) * 1e-6},
		AirtimeShare: map[string]float64{},
	}
	busyUs := make([]int, len(cfg.Stations))

	now := difsUs
	for now < cfg.HorizonUs {
		// Find contenders with zero backoff; others count down one slot.
		var ready []int
		anyPending := false
		for i := range states {
			if states[i].backoff == 0 {
				ready = append(ready, i)
			}
			if states[i].backoff >= 0 {
				anyPending = true
			}
		}
		if !anyPending {
			// Idle slot: stations may receive fresh traffic.
			now += slotUs
			for i := range states {
				if states[i].backoff < 0 {
					enqueue(i)
				}
			}
			continue
		}
		if len(ready) == 0 {
			for i := range states {
				if states[i].backoff > 0 {
					states[i].backoff--
				}
			}
			now += slotUs
			continue
		}

		res.Attempts += len(ready)
		if len(ready) == 1 {
			i := ready[0]
			dur := cfg.Stations[i].PacketAirtimeUs
			if now+dur > cfg.HorizonUs {
				dur = cfg.HorizonUs - now
			}
			if i == 0 && dur > 0 {
				res.Trace.Bursts = append(res.Trace.Bursts, Burst{
					StartSec: float64(now) * 1e-6,
					DurSec:   float64(dur) * 1e-6,
				})
			}
			busyUs[i] += dur
			now += dur + sifsUs + ackUs + difsUs
			states[i].cw = cwMin
			enqueue(i)
		} else {
			// Collision: everyone transmits, nothing delivered, CW
			// doubles.
			maxDur := 0
			for _, i := range ready {
				if cfg.Stations[i].PacketAirtimeUs > maxDur {
					maxDur = cfg.Stations[i].PacketAirtimeUs
				}
			}
			res.Collisions++
			now += maxDur + difsUs
			for _, i := range ready {
				states[i].cw = min(2*(states[i].cw+1)-1, cwMax)
				states[i].backoff = r.Intn(states[i].cw + 1)
			}
		}
	}

	for i, s := range cfg.Stations {
		res.AirtimeShare[s.Name] = float64(busyUs[i]) / float64(cfg.HorizonUs)
	}
	sort.Slice(res.Trace.Bursts, func(a, b int) bool {
		return res.Trace.Bursts[a].StartSec < res.Trace.Bursts[b].StartSec
	})
	return res, nil
}

// DownlinkHeavyCell builds the typical BackFi deployment: a saturated
// AP pushing large downlink packets plus nClients lightly loaded
// clients.
func DownlinkHeavyCell(nClients int, clientLoad float64, horizonUs int) DCFConfig {
	cfg := DCFConfig{HorizonUs: horizonUs}
	cfg.Stations = append(cfg.Stations, DCFStation{
		Name: "AP", Weight: 1.0, PacketAirtimeUs: 1100, // ~1500 B A-MSDU exchange at 24 Mbps
	})
	for i := 0; i < nClients; i++ {
		cfg.Stations = append(cfg.Stations, DCFStation{
			Name:            fmt.Sprintf("sta%d", i+1),
			Weight:          clientLoad,
			PacketAirtimeUs: 300, // small uplink frames
		})
	}
	return cfg
}
