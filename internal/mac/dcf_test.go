package mac

import (
	"math/rand"
	"testing"
)

func TestDCFSaturatedAPAloneOwnsTheAir(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	res, err := SimulateDCF(DownlinkHeavyCell(0, 0, 2_000_000), r)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, a saturated AP spends most of the air transmitting (the
	// rest is DIFS/SIFS/ACK/backoff overhead).
	if share := res.AirtimeShare["AP"]; share < 0.6 || share > 0.95 {
		t.Fatalf("solo AP airtime %v", share)
	}
	if res.Collisions != 0 {
		t.Fatalf("%d collisions with one station", res.Collisions)
	}
	if len(res.Trace.Bursts) < 100 {
		t.Fatalf("only %d bursts", len(res.Trace.Bursts))
	}
}

func TestDCFContentionReducesAPShare(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	solo, err := SimulateDCF(DownlinkHeavyCell(0, 0, 2_000_000), r)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := SimulateDCF(DownlinkHeavyCell(8, 0.5, 2_000_000), r)
	if err != nil {
		t.Fatal(err)
	}
	if busy.AirtimeShare["AP"] >= solo.AirtimeShare["AP"] {
		t.Fatalf("contention should cut AP share: %v vs %v",
			busy.AirtimeShare["AP"], solo.AirtimeShare["AP"])
	}
	if busy.Collisions == 0 {
		t.Fatal("nine saturated-ish stations should collide sometimes")
	}
}

func TestDCFIdleStationsNeverTransmit(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := DownlinkHeavyCell(3, 0, 1_000_000)
	res, err := SimulateDCF(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cfg.Stations[1:] {
		if res.AirtimeShare[s.Name] != 0 {
			t.Fatalf("idle station %s transmitted", s.Name)
		}
	}
}

func TestDCFTraceWellFormedAndFeedsOpportunity(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	res, err := SimulateDCF(DownlinkHeavyCell(4, 0.3, 2_000_000), r)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := 0.0
	for i, b := range res.Trace.Bursts {
		if b.StartSec < prevEnd {
			t.Fatalf("burst %d overlaps", i)
		}
		if b.DurSec <= 0 {
			t.Fatalf("burst %d empty", i)
		}
		prevEnd = b.StartSec + b.DurSec
	}
	// The DCF trace plugs straight into the Fig. 12a opportunity
	// calculation.
	tput := Throughput(res.Trace, DefaultOpportunityConfig())
	if tput <= 0 {
		t.Fatal("no backscatter throughput from a busy AP")
	}
	// It cannot exceed airtime × link rate.
	if max := res.AirtimeShare["AP"] * DefaultOpportunityConfig().LinkBps; tput > max {
		t.Fatalf("throughput %v exceeds airtime bound %v", tput, max)
	}
}

func TestDCFFairnessAmongEqualStations(t *testing.T) {
	// Equal saturated stations should split the air roughly evenly.
	r := rand.New(rand.NewSource(5))
	cfg := DCFConfig{HorizonUs: 4_000_000}
	for i := 0; i < 4; i++ {
		cfg.Stations = append(cfg.Stations, DCFStation{
			Name: []string{"AP", "a", "b", "c"}[i], Weight: 1, PacketAirtimeUs: 500,
		})
	}
	res, err := SimulateDCF(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	var minS, maxS float64 = 1, 0
	for _, s := range cfg.Stations {
		v := res.AirtimeShare[s.Name]
		if v < minS {
			minS = v
		}
		if v > maxS {
			maxS = v
		}
	}
	if maxS > 2.2*minS {
		t.Fatalf("unfair split: min %v max %v", minS, maxS)
	}
}

func TestDCFValidation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	if _, err := SimulateDCF(DCFConfig{HorizonUs: 100}, r); err == nil {
		t.Fatal("expected error for no stations")
	}
	bad := DownlinkHeavyCell(0, 0, 0)
	if _, err := SimulateDCF(bad, r); err == nil {
		t.Fatal("expected error for zero horizon")
	}
	bad = DownlinkHeavyCell(0, 0, 100)
	bad.Stations[0].PacketAirtimeUs = 0
	if _, err := SimulateDCF(bad, r); err == nil {
		t.Fatal("expected error for zero airtime")
	}
	bad = DownlinkHeavyCell(1, 0, 100)
	bad.Stations[1].Weight = 2
	if _, err := SimulateDCF(bad, r); err == nil {
		t.Fatal("expected error for weight > 1")
	}
}

func TestDCFBackoffExpandsUnderCollisions(t *testing.T) {
	// With many saturated equal stations the collision count is
	// substantial but bounded (exponential backoff does its job: far
	// fewer collisions than attempts).
	r := rand.New(rand.NewSource(7))
	cfg := DCFConfig{HorizonUs: 2_000_000}
	for i := 0; i < 10; i++ {
		cfg.Stations = append(cfg.Stations, DCFStation{
			Name: string(rune('A' + i)), Weight: 1, PacketAirtimeUs: 400,
		})
	}
	res, err := SimulateDCF(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Fatal("expected collisions")
	}
	if float64(res.Collisions) > 0.5*float64(res.Attempts) {
		t.Fatalf("collision rate %d/%d too high — backoff broken", res.Collisions, res.Attempts)
	}
}
