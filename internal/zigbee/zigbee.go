// Package zigbee implements the IEEE 802.15.4 2.4 GHz O-QPSK PHY
// (250 kbps, 2 Mchip/s DSSS with 32-chip symbols and half-sine pulse
// shaping), resampled to the simulator's 20 MHz baseband.
//
// The BackFi paper notes the system "is applicable for other types of
// communication signals like Bluetooth, Zigbee, etc." (Sec. 1): the
// reader's cancellation and MRC decoder only need a known wideband
// excitation. This package provides that alternative excitation and a
// full receiver, so the claim is testable end to end.
package zigbee

import (
	"fmt"
	"math"

	"backfi/internal/dsp"
	"backfi/internal/fec"
)

// PHY constants for the 2.4 GHz O-QPSK page.
const (
	// ChipRateHz is the DSSS chip rate.
	ChipRateHz = 2e6
	// SampleRate is the simulation baseband rate.
	SampleRate = 20e6
	// SamplesPerChip at 20 MHz.
	SamplesPerChip = int(SampleRate / ChipRateHz)
	// ChipsPerSymbol is the PN spreading length.
	ChipsPerSymbol = 32
	// BitsPerSymbol carried by each PN sequence.
	BitsPerSymbol = 4
	// SymbolRateHz = 62.5 ksym/s → 250 kbps.
	SymbolRateHz = ChipRateHz / ChipsPerSymbol
	// PreambleSymbols is the SHR preamble (8 zero symbols).
	PreambleSymbols = 8
	// SFD is the start-of-frame delimiter byte pair (0xA7 per spec,
	// transmitted as two symbols 0x7, 0xA).
	sfdLow, sfdHigh = 0x7, 0xA
	// MaxPayload is the PHY's frame ceiling.
	MaxPayload = 127
)

// chipTable holds the 16 nearly-orthogonal 32-chip PN sequences of
// IEEE 802.15.4-2011 Table 73, LSB (chip 0) first.
var chipTable = [16]uint32{
	0xD9C3522E, 0xED9C3522, 0x2ED9C352, 0x22ED9C35,
	0x522ED9C3, 0x3522ED9C, 0xC3522ED9, 0x9C3522ED,
	0x8C96077B, 0xB8C96077, 0x7B8C9607, 0x77B8C960,
	0x077B8C96, 0x6077B8C9, 0x96077B8C, 0xC96077B8,
}

// chip returns chip k (0..31) of symbol s as ±1.
func chip(s, k int) float64 {
	if chipTable[s]>>uint(k)&1 == 1 {
		return 1
	}
	return -1
}

// Transmit encodes a PSDU (≤127 bytes) into the O-QPSK baseband
// waveform at unit average power: preamble (8× symbol 0), SFD, length
// byte, payload.
func Transmit(psdu []byte) ([]complex128, error) {
	if len(psdu) < 1 || len(psdu) > MaxPayload {
		return nil, fmt.Errorf("zigbee: PSDU length %d out of [1,%d]", len(psdu), MaxPayload)
	}
	var symbols []int
	for i := 0; i < PreambleSymbols; i++ {
		symbols = append(symbols, 0)
	}
	symbols = append(symbols, sfdLow, sfdHigh)
	appendByte := func(b byte) {
		symbols = append(symbols, int(b&0x0F), int(b>>4))
	}
	appendByte(byte(len(psdu)))
	for _, b := range psdu {
		appendByte(b)
	}
	return modulate(symbols), nil
}

// modulate maps symbols to chips, O-QPSK-modulates with half-sine
// shaping: even chips on I, odd chips on Q delayed half a chip.
func modulate(symbols []int) []complex128 {
	nchips := len(symbols) * ChipsPerSymbol
	// One chip occupies 2×SamplesPerChip of half-sine on its rail
	// (each rail runs at 1 Mchip/s with 2 Mchip/s interleaved overall).
	spc := SamplesPerChip
	total := nchips*spc + spc // trailing half-chip for the Q offset
	out := make([]complex128, total)
	for ci := 0; ci < nchips; ci++ {
		c := chip(symbols[ci/ChipsPerSymbol], ci%ChipsPerSymbol)
		// Chip ci starts at ci·Tc; its half-sine pulse spans 2·Tc. The
		// even/odd interleaving onto I/Q is itself the O-QPSK offset.
		start := ci * spc
		for k := 0; k < 2*spc; k++ {
			idx := start + k
			if idx >= total {
				break
			}
			p := c * math.Sin(math.Pi*float64(k)/float64(2*spc))
			if ci%2 == 0 {
				out[idx] += complex(p, 0)
			} else {
				out[idx] += complex(0, p)
			}
		}
	}
	return dsp.NormalizePower(out, 1)
}

// referenceSymbol returns the unit-power waveform of one symbol,
// used for correlation despreading.
var symbolRefs = buildSymbolRefs()

func buildSymbolRefs() [16][]complex128 {
	var refs [16][]complex128
	for s := 0; s < 16; s++ {
		w := modulate([]int{s})
		refs[s] = w[:ChipsPerSymbol*SamplesPerChip]
	}
	return refs
}

// Receive synchronizes to the preamble+SFD and decodes a PSDU.
func Receive(samples []complex128) ([]byte, error) {
	symLen := ChipsPerSymbol * SamplesPerChip
	if len(samples) < (PreambleSymbols+4)*symLen {
		return nil, fmt.Errorf("zigbee: stream too short")
	}
	// Detect: correlate with two consecutive symbol-0 references.
	ref := dsp.Concat(symbolRefs[0], symbolRefs[0])
	corr := dsp.NormalizedCrossCorrelate(samples, ref)
	peak := dsp.PeakIndex(corr)
	// The normalized correlation approaches P_s/(P_s+P_n); the DSSS
	// processing gain lets the despreader work well below 0 dB, so the
	// detector threshold sits low (noise-only windows score ≈1/len).
	if peak < 0 || corr[peak] < 0.08 {
		return nil, fmt.Errorf("zigbee: no preamble found")
	}
	// Walk back to the earliest preamble symbol boundary consistent
	// with the peak, then forward to find the SFD.
	start := peak % symLen
	syms := demodSymbols(samples, start)
	// Find the SFD after at least a couple of preamble zeros.
	idx := -1
	for i := 1; i+1 < len(syms); i++ {
		if syms[i] == sfdLow && syms[i+1] == sfdHigh && syms[i-1] == 0 {
			idx = i + 2
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("zigbee: SFD not found")
	}
	if idx+2 > len(syms) {
		return nil, fmt.Errorf("zigbee: truncated header")
	}
	n := syms[idx] | syms[idx+1]<<4
	if n < 1 || n > MaxPayload {
		return nil, fmt.Errorf("zigbee: bad length %d", n)
	}
	if idx+2+2*n > len(syms) {
		return nil, fmt.Errorf("zigbee: truncated payload (%d of %d symbols)", len(syms)-idx-2, 2*n)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte(syms[idx+2+2*i]) | byte(syms[idx+3+2*i])<<4
	}
	return out, nil
}

// demodSymbols correlation-despreads every whole symbol from offset
// start, with a non-coherent (magnitude) metric so an unknown channel
// phase doesn't matter.
func demodSymbols(samples []complex128, start int) []int {
	symLen := ChipsPerSymbol * SamplesPerChip
	var out []int
	for p := start; p+symLen <= len(samples); p += symLen {
		win := samples[p : p+symLen]
		best, bi := -1.0, 0
		for s := 0; s < 16; s++ {
			c := dsp.Dot(win, symbolRefs[s])
			m := real(c)*real(c) + imag(c)*imag(c)
			if m > best {
				best, bi = m, s
			}
		}
		out = append(out, bi)
	}
	return out
}

// AirtimeSeconds returns the on-air duration of a PSDU.
func AirtimeSeconds(psduLen int) float64 {
	symbols := PreambleSymbols + 2 + 2 + 2*psduLen
	return float64(symbols) / SymbolRateHz
}

// BuildFrame wraps a payload with the 802.15.4 FCS (CRC-16/CCITT is
// the spec; the simulator reuses its CRC-8 for the short frames here
// via fec.CRC8 on top of payloads when needed). Provided for symmetry
// with the wifi package: PSDU = payload as-is.
func BuildFrame(payload []byte) []byte {
	out := make([]byte, len(payload)+1)
	copy(out, payload)
	out[len(payload)] = fec.CRC8(payload)
	return out
}

// CheckFrame validates BuildFrame's trailer.
func CheckFrame(frame []byte) ([]byte, error) {
	if len(frame) < 2 {
		return nil, fmt.Errorf("zigbee: frame too short")
	}
	body := frame[:len(frame)-1]
	if fec.CRC8(body) != frame[len(frame)-1] {
		return nil, fmt.Errorf("zigbee: FCS mismatch")
	}
	return body, nil
}
