package zigbee

import (
	"bytes"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

func TestChipSequencesNearOrthogonal(t *testing.T) {
	// The 16 PN sequences differ pairwise in ≥12 of 32 chips — what
	// makes non-coherent despreading work.
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			d := bits.OnesCount32(chipTable[a] ^ chipTable[b])
			if d < 12 {
				t.Fatalf("sequences %d,%d differ in only %d chips", a, b, d)
			}
		}
	}
}

func TestTransmitShapeAndPower(t *testing.T) {
	psdu := []byte{1, 2, 3}
	wave, err := Transmit(psdu)
	if err != nil {
		t.Fatal(err)
	}
	if p := dsp.Power(wave); math.Abs(p-1) > 0.05 {
		t.Fatalf("waveform power %v", p)
	}
	// Constant-envelope-ish: O-QPSK/MSK has low PAPR (< 1 dB).
	body := wave[SamplesPerChip : len(wave)-2*SamplesPerChip]
	if papr := dsp.PAPRdB(body); papr > 1.5 {
		t.Fatalf("PAPR %v dB too high for O-QPSK", papr)
	}
	// 250 kbps: 3 bytes take (8+2+2+6) symbols at 62.5 ksym/s.
	if at := AirtimeSeconds(3); math.Abs(at-18.0/62500) > 1e-9 {
		t.Fatalf("airtime %v", at)
	}
}

func TestCleanRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 20, 127} {
		psdu := make([]byte, n)
		r.Read(psdu)
		wave, err := Transmit(psdu)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Receive(dsp.Concat(dsp.Zeros(777), wave, dsp.Zeros(500)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("n=%d: PSDU differs", n)
		}
	}
}

func TestNoisyRoundTrip(t *testing.T) {
	// DSSS processing gain: decodes far below 0 dB per-sample SNR.
	r := rand.New(rand.NewSource(2))
	psdu := make([]byte, 40)
	r.Read(psdu)
	wave, _ := Transmit(psdu)
	noise := channel.NewAWGN(r, dsp.UnDB(5)) // signal power 1 → −5 dB SNR
	rx := noise.Add(dsp.Concat(dsp.Zeros(300), wave, dsp.Zeros(300)))
	got, err := Receive(rx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, psdu) {
		t.Fatal("PSDU corrupted at −5 dB SNR (32-chip spreading should survive)")
	}
}

func TestChannelPhaseRotationTolerated(t *testing.T) {
	// Non-coherent despreading: an arbitrary channel phase must not
	// break decoding.
	r := rand.New(rand.NewSource(3))
	psdu := make([]byte, 30)
	r.Read(psdu)
	wave, _ := Transmit(psdu)
	rotated := dsp.Scale(wave, dsp.Phasor(2.1))
	got, err := Receive(dsp.Concat(dsp.Zeros(100), rotated, dsp.Zeros(100)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, psdu) {
		t.Fatal("phase rotation broke decoding")
	}
}

func TestReceiveErrors(t *testing.T) {
	if _, err := Receive(dsp.Zeros(100)); err == nil {
		t.Fatal("expected short-stream error")
	}
	r := rand.New(rand.NewSource(4))
	noise := channel.NewAWGN(r, 1)
	if _, err := Receive(noise.Samples(30000)); err == nil {
		t.Fatal("expected no-preamble error on noise")
	}
	// Truncated payload.
	psdu := make([]byte, 60)
	wave, _ := Transmit(psdu)
	if _, err := Receive(wave[:len(wave)/2]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestTransmitValidation(t *testing.T) {
	if _, err := Transmit(nil); err == nil {
		t.Fatal("expected error for empty PSDU")
	}
	if _, err := Transmit(make([]byte, 128)); err == nil {
		t.Fatal("expected error for oversized PSDU")
	}
}

func TestFrameHelpers(t *testing.T) {
	payload := []byte("zigbee sensor frame")
	frame := BuildFrame(payload)
	got, err := CheckFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload differs")
	}
	frame[3] ^= 0xFF
	if _, err := CheckFrame(frame); err == nil {
		t.Fatal("expected FCS error")
	}
	if _, err := CheckFrame([]byte{1}); err == nil {
		t.Fatal("expected short-frame error")
	}
}

func TestOccupiedBandwidthNarrowerThanWiFi(t *testing.T) {
	// A 2 MHz O-QPSK signal occupies ~1/10 of the 20 MHz band.
	psdu := make([]byte, 100)
	wave, _ := Transmit(psdu)
	psd := dsp.WelchPSD(wave, 128)
	occ := dsp.OccupiedBandwidth(psd, 0.99)
	if occ > 0.35 {
		t.Fatalf("occupancy %v — should be a narrowband excitation", occ)
	}
}
