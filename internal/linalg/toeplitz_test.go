package linalg

import (
	"math/rand"
	"testing"
)

func TestToeplitzLSFastMatchesToeplitzLS(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		ntaps, start, stop, n int
	}{
		{8, 0, 64, 128},     // window starting at x[0] (zero-padded rows)
		{16, 40, 200, 256},  // interior window, analog-stage shape
		{32, 64, 320, 512},  // digital-stage shape over the silent window
		{3, 5, 9, 16},       // minimal window: stop-start barely >= ntaps
		{12, 100, 128, 128}, // window ending exactly at len(x)
	} {
		x := randVec(r, tc.n)
		y := randVec(r, tc.n)
		want, err := ToeplitzLS(x, y, tc.ntaps, tc.start, tc.stop, 1e-9)
		if err != nil {
			t.Fatalf("ToeplitzLS %+v: %v", tc, err)
		}
		var ws ToeplitzWorkspace
		got, err := ToeplitzLSFast(&ws, x, y, tc.ntaps, tc.start, tc.stop, 1e-9)
		if err != nil {
			t.Fatalf("ToeplitzLSFast %+v: %v", tc, err)
		}
		vecApprox(t, got, want, 1e-8)
	}
}

func TestToeplitzLSFastWorkspaceReuse(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	var ws ToeplitzWorkspace
	// Successive calls with different tap counts and data must each
	// match the reference solver — the workspace carries no state
	// between problems beyond reusable capacity.
	for i := 0; i < 5; i++ {
		ntaps := 4 + 7*i
		x := randVec(r, 300)
		y := randVec(r, 300)
		want, err := ToeplitzLS(x, y, ntaps, 20, 280, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ToeplitzLSFast(&ws, x, y, ntaps, 20, 280, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		vecApprox(t, got, want, 1e-8)
	}
}

func TestToeplitzLSFastRecoversKnownTaps(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	x := randVec(r, 400)
	h := randVec(r, 10)
	// y = x ⊛ h with causal "same" semantics.
	y := make([]complex128, len(x))
	for k, hv := range h {
		for n := k; n < len(x); n++ {
			y[n] += hv * x[n-k]
		}
	}
	var ws ToeplitzWorkspace
	got, err := ToeplitzLSFast(&ws, x, y, len(h), 50, 350, 0)
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, got, h, 1e-9)
}

func TestToeplitzLSFastErrors(t *testing.T) {
	var ws ToeplitzWorkspace
	x := make([]complex128, 32)
	if _, err := ToeplitzLSFast(&ws, x, x, 0, 0, 32, 0); err == nil {
		t.Fatal("want error for ntaps=0")
	}
	if _, err := ToeplitzLSFast(&ws, x, x, 4, 10, 40, 0); err == nil {
		t.Fatal("want error for stop past len(x)")
	}
	if _, err := ToeplitzLSFast(&ws, x, x, 16, 0, 8, 0); err == nil {
		t.Fatal("want error for window shorter than taps")
	}
}

func TestToeplitzLSFastZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	x := randVec(r, 512)
	y := randVec(r, 512)
	var ws ToeplitzWorkspace
	if _, err := ToeplitzLSFast(&ws, x, y, 32, 0, 320, 1e-12); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ToeplitzLSFast(&ws, x, y, 32, 0, 320, 1e-12); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ToeplitzLSFast allocates %v per run, want 0", allocs)
	}
}
