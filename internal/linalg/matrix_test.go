package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randVec(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func vecApprox(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > tol {
			t.Fatalf("element %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, complex(5, -1))
	if m.At(1, 2) != complex(5, -1) {
		t.Fatal("At/Set mismatch")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh matrix should be zero")
	}
}

func TestMulVecIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	x := []complex128{1, complex(0, 2), -3}
	vecApprox(t, m.MulVec(x), x, 1e-12)
}

func TestConjTransposeMulVecMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randMatrix(r, 5, 3)
	y := randVec(r, 5)
	got := a.ConjTransposeMulVec(y)
	// Explicit: out[c] = sum_r conj(a[r][c]) y[r]
	want := make([]complex128, 3)
	for c := 0; c < 3; c++ {
		for row := 0; row < 5; row++ {
			want[c] += cmplx.Conj(a.At(row, c)) * y[row]
		}
	}
	vecApprox(t, got, want, 1e-12)
}

func TestGramIsHermitianPSD(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMatrix(r, 10, 4)
	g := a.Gram()
	for i := 0; i < 4; i++ {
		if imag(g.At(i, i)) != 0 && cmplx.Abs(complex(0, imag(g.At(i, i)))) > 1e-12 {
			t.Fatalf("diagonal not real: %v", g.At(i, i))
		}
		if real(g.At(i, i)) < 0 {
			t.Fatalf("diagonal negative: %v", g.At(i, i))
		}
		for j := 0; j < 4; j++ {
			if cmplx.Abs(g.At(i, j)-cmplx.Conj(g.At(j, i))) > 1e-12 {
				t.Fatalf("not Hermitian at (%d,%d)", i, j)
			}
		}
	}
	// xᴴ G x >= 0 for random x.
	for trial := 0; trial < 10; trial++ {
		x := randVec(r, 4)
		gx := g.MulVec(x)
		var quad complex128
		for i := range x {
			quad += cmplx.Conj(x[i]) * gx[i]
		}
		if real(quad) < -1e-9 {
			t.Fatalf("Gram not PSD: %v", quad)
		}
	}
}

func TestSolveHermitianExact(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Build an SPD matrix A = BᴴB + I and a known solution.
	b := randMatrix(r, 8, 5)
	a := b.Gram()
	for i := 0; i < 5; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	want := randVec(r, 5)
	rhs := a.MulVec(want)
	got, err := SolveHermitian(a, rhs, 0)
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, got, want, 1e-9)
}

func TestSolveHermitianRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, -1)
	a.Set(1, 1, 1)
	if _, err := SolveHermitian(a, []complex128{1, 1}, 0); err == nil {
		t.Fatal("expected failure on indefinite matrix")
	}
}

func TestSolveHermitianShapeErrors(t *testing.T) {
	if _, err := SolveHermitian(NewMatrix(2, 3), []complex128{1, 1}, 0); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
	if _, err := SolveHermitian(NewMatrix(2, 2), []complex128{1}, 0); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

func TestLeastSquaresRecoversExactSolution(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randMatrix(r, 20, 6)
	want := randVec(r, 6)
	b := a.MulVec(want)
	got, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, got, want, 1e-8)
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space: Aᴴ r = 0.
	r := rand.New(rand.NewSource(5))
	a := randMatrix(r, 30, 5)
	b := randVec(r, 30)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := Residual(a, x, b)
	proj := a.ConjTransposeMulVec(res)
	for i, v := range proj {
		if cmplx.Abs(v) > 1e-8 {
			t.Fatalf("residual not orthogonal: Aᴴr[%d] = %v", i, v)
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(2, 5), randVec(rand.New(rand.NewSource(6)), 2), 0); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randMatrix(r, 25, 4)
	b := randVec(r, 25)
	x0, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := LeastSquares(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	e0, e1 := 0.0, 0.0
	for i := range x0 {
		e0 += real(x0[i])*real(x0[i]) + imag(x0[i])*imag(x0[i])
		e1 += real(x1[i])*real(x1[i]) + imag(x1[i])*imag(x1[i])
	}
	if e1 >= e0 {
		t.Fatalf("ridge should shrink solution: %v vs %v", e1, e0)
	}
}

func TestToeplitzLSIdentifiesFIR(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	x := randVec(r, 300)
	h := []complex128{complex(0.9, 0.1), complex(-0.3, 0.2), complex(0.05, -0.4)}
	// y[n] = sum_k h[k] x[n-k]
	y := make([]complex128, len(x))
	for n := range x {
		for k, hv := range h {
			if n-k >= 0 {
				y[n] += hv * x[n-k]
			}
		}
	}
	got, err := ToeplitzLS(x, y, len(h), 10, 290, 0)
	if err != nil {
		t.Fatal(err)
	}
	vecApprox(t, got, h, 1e-9)
}

func TestToeplitzLSNoisyStillClose(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	x := randVec(r, 2000)
	h := []complex128{1, complex(0.5, -0.5)}
	y := make([]complex128, len(x))
	for n := range x {
		for k, hv := range h {
			if n-k >= 0 {
				y[n] += hv * x[n-k]
			}
		}
		y[n] += complex(r.NormFloat64(), r.NormFloat64()) * 0.01
	}
	got, err := ToeplitzLS(x, y, 2, 5, 1995, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if cmplx.Abs(got[i]-h[i]) > 0.01 {
			t.Fatalf("tap %d: got %v want %v", i, got[i], h[i])
		}
	}
}

func TestToeplitzLSArgErrors(t *testing.T) {
	x := randVec(rand.New(rand.NewSource(10)), 50)
	if _, err := ToeplitzLS(x, x, 0, 0, 10, 0); err == nil {
		t.Fatal("expected error for ntaps=0")
	}
	if _, err := ToeplitzLS(x, x, 2, 10, 5, 0); err == nil {
		t.Fatal("expected error for inverted range")
	}
	if _, err := ToeplitzLS(x, x, 2, 0, 100, 0); err == nil {
		t.Fatal("expected error for out-of-range stop")
	}
	if _, err := ToeplitzLS(x, x, 20, 0, 10, 0); err == nil {
		t.Fatal("expected error for too few observations")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should be independent")
	}
}
