// Package linalg implements the small dense complex linear algebra the
// BackFi receiver needs: Hermitian normal equations and least-squares
// solves for FIR channel estimation (self-interference h_env and the
// combined forward·backward tag channel h_f⊛h_b).
//
// Systems are small (tens of unknowns), so straightforward O(n^3)
// factorizations are the right tool; no blocking or pivatized exotica.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, element (r,c) at r*Cols+c
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x for a column vector x (len m.Cols).
func (m *Matrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc complex128
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			acc += v * x[c]
		}
		out[r] = acc
	}
	return out
}

// ConjTransposeMulVec returns mᴴ·y for a column vector y (len m.Rows).
func (m *Matrix) ConjTransposeMulVec(y []complex128) []complex128 {
	if len(y) != m.Rows {
		panic(fmt.Sprintf("linalg: ConjTransposeMulVec dimension mismatch %d vs %d", len(y), m.Rows))
	}
	out := make([]complex128, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		yr := y[r]
		for c, v := range row {
			out[c] += cmplx.Conj(v) * yr
		}
	}
	return out
}

// Gram returns the Hermitian Gram matrix mᴴ·m (Cols×Cols).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for i := 0; i < m.Cols; i++ {
			ci := cmplx.Conj(row[i])
			for j := i; j < m.Cols; j++ {
				g.Data[i*m.Cols+j] += ci * row[j]
			}
		}
	}
	// Fill the lower triangle by Hermitian symmetry.
	for i := 0; i < m.Cols; i++ {
		for j := 0; j < i; j++ {
			g.Data[i*m.Cols+j] = cmplx.Conj(g.Data[j*m.Cols+i])
		}
	}
	return g
}

// SolveHermitian solves A·x = b in place of a scratch copy, where A is
// Hermitian positive definite, via Cholesky factorization A = L·Lᴴ.
// A small diagonal loading term lambda (>= 0) is added for numerical
// robustness, which is also how ridge-regularized least squares enters.
func SolveHermitian(a *Matrix, b []complex128, lambda float64) ([]complex128, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: SolveHermitian on %dx%d matrix", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	l := a.Clone()
	for i := 0; i < n; i++ {
		l.Data[i*n+i] += complex(lambda, 0)
	}
	if err := choleskyInPlace(l); err != nil {
		return nil, err
	}
	x := make([]complex128, n)
	copy(x, b)
	choleskySolve(l, x)
	return x, nil
}

// choleskyInPlace factors the Hermitian positive-definite matrix in
// place: on return the lower triangle of l holds L with A = L·Lᴴ.
func choleskyInPlace(l *Matrix) error {
	n := l.Rows
	for j := 0; j < n; j++ {
		d := real(l.Data[j*n+j])
		for k := 0; k < j; k++ {
			v := l.Data[j*n+k]
			d -= real(v)*real(v) + imag(v)*imag(v)
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		sq := math.Sqrt(d)
		l.Data[j*n+j] = complex(sq, 0)
		for i := j + 1; i < n; i++ {
			v := l.Data[i*n+j]
			for k := 0; k < j; k++ {
				v -= l.Data[i*n+k] * cmplx.Conj(l.Data[j*n+k])
			}
			l.Data[i*n+j] = v / complex(sq, 0)
		}
	}
	return nil
}

// choleskySolve overwrites v with the solution of L·Lᴴ·x = v given the
// factor from choleskyInPlace. Forward then back substitution, both in
// place, so the solve itself allocates nothing.
func choleskySolve(l *Matrix, v []complex128) {
	n := l.Rows
	for i := 0; i < n; i++ {
		acc := v[i]
		for k := 0; k < i; k++ {
			acc -= l.Data[i*n+k] * v[k]
		}
		v[i] = acc / l.Data[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		acc := v[i]
		for k := i + 1; k < n; k++ {
			acc -= cmplx.Conj(l.Data[k*n+i]) * v[k]
		}
		v[i] = acc / l.Data[i*n+i]
	}
}

// LeastSquares solves min_x ||A·x - b||² via the normal equations
// (Aᴴ A + lambda·I) x = Aᴴ b. A must have Rows >= Cols.
func LeastSquares(a *Matrix, b []complex128, lambda float64) ([]complex128, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: rhs length %d for %d rows", len(b), a.Rows)
	}
	return SolveHermitian(a.Gram(), a.ConjTransposeMulVec(b), lambda)
}

// ToeplitzLS solves the FIR system-identification problem: given input x
// and observed output y ≈ (x ⊛ h)[n] for a causal FIR h of ntaps taps,
// it builds the convolution (Toeplitz) matrix over the sample range
// [start, stop) and returns the least-squares tap estimate.
//
// Rows with indices n in [start, stop) impose
//
//	y[n] = sum_k h[k] x[n-k]
//
// with out-of-range x treated as zero. This is the estimator used both
// for self-interference (h_env) and the combined tag channel (h_f⊛h_b,
// with x pre-multiplied by the known preamble phase).
func ToeplitzLS(x, y []complex128, ntaps, start, stop int, lambda float64) ([]complex128, error) {
	if ntaps <= 0 {
		return nil, fmt.Errorf("linalg: ntaps must be positive, got %d", ntaps)
	}
	if start < 0 || stop > len(y) || stop > len(x) || start >= stop {
		return nil, fmt.Errorf("linalg: bad sample range [%d,%d) for len(x)=%d len(y)=%d", start, stop, len(x), len(y))
	}
	rows := stop - start
	if rows < ntaps {
		return nil, fmt.Errorf("linalg: %d observations for %d taps", rows, ntaps)
	}
	a := NewMatrix(rows, ntaps)
	for r := 0; r < rows; r++ {
		n := start + r
		for k := 0; k < ntaps; k++ {
			if idx := n - k; idx >= 0 {
				a.Data[r*ntaps+k] = x[idx]
			}
		}
	}
	return LeastSquares(a, y[start:stop], lambda)
}

// Residual returns b - A·x, useful for checking fit quality.
func Residual(a *Matrix, x, b []complex128) []complex128 {
	ax := a.MulVec(x)
	out := make([]complex128, len(b))
	for i := range b {
		out[i] = b[i] - ax[i]
	}
	return out
}
