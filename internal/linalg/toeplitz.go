package linalg

import (
	"fmt"
	"math/cmplx"
)

// ToeplitzWorkspace holds the scratch a repeated ToeplitzLSFast call
// reuses: the Gram matrix, the right-hand side, and the solve scratch.
// The zero value is ready to use; one workspace serves one goroutine.
type ToeplitzWorkspace struct {
	gram *Matrix
	rhs  []complex128
	sol  []complex128
}

// ToeplitzLSFast solves the same FIR system-identification problem as
// ToeplitzLS — find h with y[n] ≈ (x ⊛ h)[n] over rows n ∈ [start,
// stop) — but builds the normal equations directly from x instead of
// materializing the convolution matrix. The Gram matrix of a Toeplitz
// system obeys the shift recurrence
//
//	G[i+1][j+1] = G[i][j] + x̄[start-1-i]·x[start-1-j] − x̄[stop-1-i]·x[stop-1-j]
//
// so only the first row and column are summed over the window; the
// interior fills in O(L²). Total cost is O(w·L + L³) against the
// direct construction's O(w·L²) — an order of magnitude on the
// serving hot path, where the canceller re-estimates a 32-tap channel
// over a 320-sample silent window on every frame.
//
// The result is numerically equivalent to ToeplitzLS (same normal
// equations, same Cholesky solve) but not bit-identical: the recurrence
// sums in a different order. It is deterministic for fixed inputs. The
// returned slice aliases ws and is valid until the next call on the
// same workspace.
func ToeplitzLSFast(ws *ToeplitzWorkspace, x, y []complex128, ntaps, start, stop int, lambda float64) ([]complex128, error) {
	if ntaps <= 0 {
		return nil, fmt.Errorf("linalg: ntaps must be positive, got %d", ntaps)
	}
	if start < 0 || stop > len(y) || stop > len(x) || start >= stop {
		return nil, fmt.Errorf("linalg: bad sample range [%d,%d) for len(x)=%d len(y)=%d", start, stop, len(x), len(y))
	}
	if stop-start < ntaps {
		return nil, fmt.Errorf("linalg: %d observations for %d taps", stop-start, ntaps)
	}
	L := ntaps
	if ws.gram == nil || ws.gram.Rows != L {
		ws.gram = NewMatrix(L, L)
		ws.rhs = make([]complex128, L)
	}
	g := ws.gram
	for i := range g.Data {
		g.Data[i] = 0
	}
	for i := range ws.rhs {
		ws.rhs[i] = 0
	}
	// xat treats out-of-range indices as zero, matching the Toeplitz
	// matrix construction for rows near the start of x.
	xat := func(n int) complex128 {
		if n < 0 || n >= len(x) {
			return 0
		}
		return x[n]
	}
	// First row (i=0): G[0][j] = Σ_n x̄[n]·x[n-j]; and the RHS
	// b[k] = Σ_n x̄[n-k]·y[n]. One pass over the window covers both.
	for n := start; n < stop; n++ {
		xn := cmplx.Conj(xat(n))
		yn := y[n]
		for j := 0; j < L; j++ {
			v := xat(n - j)
			g.Data[j] += xn * v
			ws.rhs[j] += cmplx.Conj(v) * yn
		}
	}
	// First column by Hermitian symmetry of the full Gram matrix.
	for i := 1; i < L; i++ {
		g.Data[i*L] = cmplx.Conj(g.Data[i])
	}
	// Interior via the shift recurrence, diagonal by diagonal.
	for i := 0; i < L-1; i++ {
		for j := 0; j < L-1; j++ {
			g.Data[(i+1)*L+j+1] = g.Data[i*L+j] +
				cmplx.Conj(xat(start-1-i))*xat(start-1-j) -
				cmplx.Conj(xat(stop-1-i))*xat(stop-1-j)
		}
	}
	sol, err := solveHermitianInto(ws, g, ws.rhs, lambda)
	if err != nil {
		return nil, err
	}
	return sol, nil
}

// solveHermitianInto is SolveHermitian factoring in place of the
// caller-owned matrix (g is destroyed) and reusing ws.sol for the
// solution, so a hot-path solve allocates nothing.
func solveHermitianInto(ws *ToeplitzWorkspace, g *Matrix, b []complex128, lambda float64) ([]complex128, error) {
	n := g.Rows
	if cap(ws.sol) < n {
		ws.sol = make([]complex128, n)
	}
	x := ws.sol[:n]
	copy(x, b)
	if err := SolveHermitianInPlace(g, x, lambda); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveHermitianInPlace is the allocation-free form of SolveHermitian:
// g is factored in place (destroyed) and b is overwritten with the
// solution. Callers that assemble normal equations into a reused
// matrix — the serving hot path's channel estimator — pair this with
// that scratch to solve with zero heap traffic.
func SolveHermitianInPlace(g *Matrix, b []complex128, lambda float64) error {
	n := g.Rows
	if g.Cols != n {
		return fmt.Errorf("linalg: SolveHermitianInPlace on %dx%d matrix", g.Rows, g.Cols)
	}
	if len(b) != n {
		return fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	for i := 0; i < n; i++ {
		g.Data[i*n+i] += complex(lambda, 0)
	}
	if err := choleskyInPlace(g); err != nil {
		return err
	}
	choleskySolve(g, b)
	return nil
}
