package baseline

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

func TestPriorWiFiWorksAtShortRange(t *testing.T) {
	res := SimulatePriorWiFi(DefaultPriorWiFiConfig(0.3), 2000, 1)
	if res.BER > 0.05 {
		t.Fatalf("BER %v at 0.3 m, prior system should work there", res.BER)
	}
	if res.ThroughputBps < 500 {
		t.Fatalf("throughput %v bps at 0.3 m, expected ≈1 kbps", res.ThroughputBps)
	}
}

func TestPriorWiFiFailsBeyondAMeter(t *testing.T) {
	// Paper Sec. 2: the helper cannot see the RSSI swing once the tag
	// is much past a meter.
	res := SimulatePriorWiFi(DefaultPriorWiFiConfig(3), 2000, 2)
	if res.BER < 0.2 {
		t.Fatalf("BER %v at 3 m — prior system should be broken there", res.BER)
	}
	if res.ThroughputBps > 400 {
		t.Fatalf("throughput %v bps at 3 m should collapse", res.ThroughputBps)
	}
}

func TestPriorWiFiRSSISwingShrinksWithDistance(t *testing.T) {
	near := SimulatePriorWiFi(DefaultPriorWiFiConfig(0.3), 100, 3)
	far := SimulatePriorWiFi(DefaultPriorWiFiConfig(2), 100, 3)
	if far.DeltaRSSIdB >= near.DeltaRSSIdB {
		t.Fatalf("RSSI swing should shrink: %v dB at 0.3 m vs %v dB at 2 m",
			near.DeltaRSSIdB, far.DeltaRSSIdB)
	}
}

func TestBackFiOrdersOfMagnitudeFaster(t *testing.T) {
	// Headline claim: BackFi's 1–6.67 Mbps vs the prior ≈1 kbps is
	// three orders of magnitude. Using our simulated prior throughput:
	prior := SimulatePriorWiFi(DefaultPriorWiFiConfig(0.5), 2000, 4)
	backfiAt1m := 5e6 // established by the core-package sweep tests
	if ratio := backfiAt1m / math.Max(prior.ThroughputBps, 1); ratio < 1000 {
		t.Fatalf("BackFi/prior ratio %v, want ≥ 1000×", ratio)
	}
}

func TestToneSingleTapCancelPerfectOnTone(t *testing.T) {
	// A tone through any LTI channel is one complex gain: single-tap
	// cancellation reaches the noise floor (paper Sec. 3.1.1).
	r := rand.New(rand.NewSource(5))
	var tr ToneReader
	tr.ToneFreq = 0.11
	x := tr.Tone(4000, dsp.UnDBm(20))
	henv := channel.RayleighTaps(r, 8, 0.5).Scale(-20)
	noiseW := channel.ThermalNoiseW(20e6, 6)
	y := channel.NewAWGN(r, noiseW).Add(henv.Apply(x))
	_, resid := tr.SingleTapCancel(x, y, 100, 2000)
	if above := dsp.DB(resid / noiseW); above > 1 {
		t.Fatalf("tone residual %v dB above floor", above)
	}
}

func TestToneSingleTapCancelFailsOnWideband(t *testing.T) {
	// The same architecture on a 20 MHz-wide excitation leaves a huge
	// residual — the paper's core motivation (Sec. 3.2).
	resid := WidebandResidualDB(6, 10, -20)
	if resid < 30 {
		t.Fatalf("wideband residual only %v dB above floor; expected tens of dB", resid)
	}
}

func TestToneDecodeRecoversPhases(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var tr ToneReader
	tr.ToneFreq = 0.07
	const sps = 50
	const nsym = 40
	x := tr.Tone(sps*nsym+500, dsp.UnDBm(10))

	// Tag modulation: QPSK phases, first symbol a reference.
	phases := make([]complex128, nsym)
	phases[0] = 1
	for s := 1; s < nsym; s++ {
		phases[s] = dsp.Phasor(float64(r.Intn(4)) * math.Pi / 2)
	}
	hf := channel.RicianTaps(r, 2, 15, 0.5).Scale(-30)
	hb := channel.RicianTaps(r, 2, 15, 0.5).Scale(-30)
	m := make([]complex128, len(x))
	for s := 0; s < nsym; s++ {
		for k := 0; k < sps; k++ {
			m[200+s*sps+k] = phases[s]
		}
	}
	z := hf.Apply(x)
	bs := make([]complex128, len(x))
	for i := range bs {
		bs[i] = z[i] * m[i]
	}
	bs = hb.Apply(bs)
	henv := channel.RayleighTaps(r, 1, 1).Scale(-20) // tone: flat env channel
	y := channel.NewAWGN(r, channel.ThermalNoiseW(20e6, 6)).Add(dsp.Add(henv.Apply(x), bs))

	clean, _ := tr.SingleTapCancel(x, y, 0, 150)
	got := tr.DecodeTonePhases(x, clean, 200, sps, nsym)
	for s := 1; s < nsym; s++ {
		d := dsp.WrapPhase(cmplx.Phase(got[s]) - cmplx.Phase(phases[s]))
		if math.Abs(d) > math.Pi/4 {
			t.Fatalf("symbol %d phase off by %v rad", s, d)
		}
	}
}

func TestBinaryEntropyProperties(t *testing.T) {
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Fatal("entropy endpoints should be 0")
	}
	if h := binaryEntropy(0.5); math.Abs(h-1) > 1e-12 {
		t.Fatalf("H(0.5) = %v", h)
	}
	if binaryEntropy(0.1) >= binaryEntropy(0.3) {
		t.Fatal("entropy should increase toward 0.5")
	}
}
