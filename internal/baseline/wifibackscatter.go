// Package baseline implements the comparison systems of the paper:
// the prior WiFi backscatter design of Kellogg et al. [27] (1 bit per
// WiFi packet, detected as RSSI changes at a helper device) and the
// classic tone-excitation RFID reader whose single-tap cancellation
// and LTI decoding BackFi's wideband design replaces (paper Sec. 3.1).
package baseline

import (
	"math"
	"math/rand"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

// PriorWiFiConfig models the Kellogg'14 system: the tag toggles its
// reflection once per WiFi packet, and a *helper* device (not the AP —
// the prior design has no self-interference cancellation) watches for
// RSSI changes while receiving the AP's strong transmission.
type PriorWiFiConfig struct {
	// HelperDistanceM is the AP→helper distance.
	HelperDistanceM float64
	// TagDistanceM is the helper→tag distance (the system's range).
	TagDistanceM float64
	// PacketAirtimeSec is one excitation packet's duration (the prior
	// system signals one bit per packet).
	PacketAirtimeSec float64
	// PacketsPerSecond is the rate of usable ambient packets.
	PacketsPerSecond float64
	// TxPowerDBm, Exponent describe the links.
	TxPowerDBm float64
	Exponent   float64
}

// DefaultPriorWiFiConfig mirrors the prior paper's operating point:
// helper ~2 m from the AP, 1 kbps peak signaling.
func DefaultPriorWiFiConfig(tagDistanceM float64) PriorWiFiConfig {
	return PriorWiFiConfig{
		HelperDistanceM:  2,
		TagDistanceM:     tagDistanceM,
		PacketAirtimeSec: 1e-3,
		PacketsPerSecond: 1000,
		TxPowerDBm:       20,
		Exponent:         2.2,
	}
}

// PriorWiFiResult summarizes a simulated prior-system run.
type PriorWiFiResult struct {
	// BER is the per-bit detection error rate at the helper.
	BER float64
	// ThroughputBps is the effective information rate
	// (1 bit/packet × packet rate × (1 − H(BER)) capacity factor).
	ThroughputBps float64
	// DeltaRSSIdB is the mean RSSI swing the tag induces at the helper.
	DeltaRSSIdB float64
}

// SimulatePriorWiFi runs a Monte-Carlo of the RSSI-change detector.
//
// Per packet, the helper measures received power; the tag either adds
// its reflection (bit 1) or not (bit 0). Crucially the weak reflection
// adds *coherently* to the strong direct signal, so the RSSI swing is
// 2·a·cosφ where a is the amplitude ratio — tiny, but measurable at
// very short range. The helper thresholds against the midpoint learned
// from training packets. Because a shrinks with tag distance while the
// helper's RSSI measurement noise does not, detection collapses past
// roughly a meter — the reason the prior system is range-limited
// (paper Sec. 2).
func SimulatePriorWiFi(cfg PriorWiFiConfig, packets int, seed int64) PriorWiFiResult {
	r := rand.New(rand.NewSource(seed))
	// Direct AP→helper power.
	plHelper := channel.LogDistancePLdB(cfg.HelperDistanceM, channel.DefaultCarrierHz, cfg.Exponent, 1)
	direct := dsp.UnDBm(cfg.TxPowerDBm - plHelper)
	// Amplitude ratio of the reflection (helper→tag path plus ≈6 dB
	// tag reflection loss) to the direct signal.
	plTag := channel.LogDistancePLdB(math.Max(cfg.TagDistanceM, 0.1), channel.DefaultCarrierHz, cfg.Exponent, 1)
	a := math.Sqrt(dsp.UnDB(-plTag - 6))
	// Relative phase of the reflection: fixed per placement.
	cosPhi := math.Cos(r.Float64() * 2 * math.Pi)
	swing := 2 * a * cosPhi * direct // RSSI difference between bit 1 and 0

	// RSSI estimation noise: integrating N samples of a fluctuating
	// OFDM signal gives a relative std of 1/√N, plus residual
	// measurement jitter.
	nSamples := cfg.PacketAirtimeSec * 20e6
	sigma := direct * math.Hypot(1/math.Sqrt(nSamples), 0.002)

	threshold := direct + swing/2
	errs := 0
	for i := 0; i < packets; i++ {
		bit := r.Intn(2)
		p := direct + r.NormFloat64()*sigma
		if bit == 1 {
			p += swing
		}
		det := 0
		if (p > threshold) == (swing > 0) {
			det = 1
		}
		if det != bit {
			errs++
		}
	}
	ber := float64(errs) / float64(packets)
	if ber > 0.5 {
		ber = 0.5
	}
	return PriorWiFiResult{
		BER:           ber,
		ThroughputBps: cfg.PacketsPerSecond * (1 - binaryEntropy(ber)),
		DeltaRSSIdB:   dsp.DB((direct + math.Abs(swing)) / direct),
	}
}

// binaryEntropy returns H(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
