package baseline

import (
	"math"
	"math/cmplx"
	"math/rand"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

// ToneReader is the classic RFID architecture of paper Sec. 3.1: a
// single-frequency excitation, self-interference removed by one
// programmable attenuator + phase shifter (a single complex tap), and
// LTI decoding of the tag's phase modulation.
type ToneReader struct {
	// ToneFreq is the excitation tone's normalized frequency
	// (cycles/sample); 0 is a pure DC baseband tone.
	ToneFreq float64
}

// Tone generates n samples of the excitation at the given power.
func (tr ToneReader) Tone(n int, powerW float64) []complex128 {
	out := make([]complex128, n)
	amp := complex(math.Sqrt(powerW), 0)
	for i := range out {
		out[i] = amp * dsp.Phasor(2*math.Pi*tr.ToneFreq*float64(i))
	}
	return out
}

// SingleTapCancel estimates the one complex coefficient relating x to y
// over the training window and subtracts — all a tone needs, because a
// sinusoid through any LTI channel is just scaled and rotated.
// It returns the cleaned signal and the residual power in the window.
func (tr ToneReader) SingleTapCancel(x, y []complex128, start, stop int) ([]complex128, float64) {
	var num complex128
	var den float64
	for n := start; n < stop; n++ {
		num += y[n] * cmplx.Conj(x[n])
		den += real(x[n])*real(x[n]) + imag(x[n])*imag(x[n])
	}
	var h complex128
	if den > 0 {
		h = num / complex(den, 0)
	}
	out := make([]complex128, len(y))
	for n := range y {
		out[n] = y[n] - h*x[n]
	}
	return out, dsp.Power(out[start:stop])
}

// DecodeTonePhases recovers per-symbol tag phases from a cancelled tone
// backscatter: with a tone, the combined channel is one complex gain,
// so each symbol is decoded by correlating against the excitation
// (paper Eq. 2's standard LTI decode).
func (tr ToneReader) DecodeTonePhases(x, clean []complex128, start, sps, nsym int) []complex128 {
	// Estimate the channel gain from the first symbol (known reference
	// phase 0), then normalize every symbol by it.
	out := make([]complex128, nsym)
	var g complex128
	for s := 0; s < nsym; s++ {
		var acc complex128
		var den float64
		for n := start + s*sps; n < start+(s+1)*sps && n < len(clean); n++ {
			acc += clean[n] * cmplx.Conj(x[n])
			den += real(x[n])*real(x[n]) + imag(x[n])*imag(x[n])
		}
		if den > 0 {
			acc /= complex(den, 0)
		}
		if s == 0 {
			g = acc
			out[s] = 1
			continue
		}
		if g != 0 {
			out[s] = acc / g
		}
	}
	return out
}

// WidebandResidualDB quantifies why the tone architecture fails on
// WiFi: it applies single-tap cancellation to a wideband excitation
// through a frequency-selective channel and reports how far above the
// noise floor the residual sits (paper Sec. 3.2). A multipath channel
// with delay spread leaves tens of dB of uncancelled interference.
func WidebandResidualDB(seed int64, envTaps int, leakageDB float64) float64 {
	r := rand.New(rand.NewSource(seed))
	txW := dsp.UnDBm(20)
	sigma := math.Sqrt(txW / 2)
	x := make([]complex128, 4000)
	for i := range x {
		x[i] = complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	henv := channel.RayleighTaps(r, envTaps, 0.5).Scale(leakageDB)
	noiseW := channel.ThermalNoiseW(20e6, 6)
	y := channel.NewAWGN(r, noiseW).Add(henv.Apply(x))
	var tr ToneReader
	_, residW := tr.SingleTapCancel(x, y, 0, 320)
	return dsp.DB(residW / noiseW)
}
