package wifi

import (
	"math/rand"
	"testing"
)

func BenchmarkTransmit1500BAt24Mbps(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	rate, _ := RateByMbps(24)
	psdu := make([]byte, 1500)
	r.Read(psdu)
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		if _, err := Transmit(psdu, rate, DefaultScramblerSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceive1500BAt24Mbps(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	rate, _ := RateByMbps(24)
	psdu := make([]byte, 1500)
	r.Read(psdu)
	wave, err := Transmit(psdu, rate, DefaultScramblerSeed)
	if err != nil {
		b.Fatal(err)
	}
	rx := NewReceiver()
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		if _, _, err := rx.Receive(wave); err != nil {
			b.Fatal(err)
		}
	}
}
