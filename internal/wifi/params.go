// Package wifi implements a complete 802.11a/g-style 20 MHz OFDM
// baseband PHY: transmitter and receiver for the 6–54 Mbps rate set,
// including scrambling, convolutional coding with puncturing,
// interleaving, BPSK–64QAM mapping, pilot insertion and tracking, the
// short/long training preamble, and the SIGNAL field.
//
// In the BackFi system this PHY plays the role of the WARP WiFi radio:
// it produces the wideband excitation signal the tag backscatters, and
// it is also used to evaluate the impact of backscatter on the normal
// WiFi downlink (paper Sec. 6.4/6.5).
package wifi

import (
	"math"

	"backfi/internal/fec"
)

// Core OFDM numerology for 20 MHz 802.11a/g.
const (
	// FFTSize is the number of subcarriers in the OFDM symbol.
	FFTSize = 64
	// CPLen is the cyclic prefix length in samples (800 ns).
	CPLen = 16
	// SymbolLen is the total OFDM symbol length in samples (4 µs).
	SymbolLen = FFTSize + CPLen
	// NumDataCarriers is the number of data-bearing subcarriers.
	NumDataCarriers = 48
	// NumPilots is the number of pilot subcarriers.
	NumPilots = 4
	// SampleRate is the baseband sample rate in Hz.
	SampleRate = 20e6
	// STFLen and LTFLen are the short/long training field lengths.
	STFLen = 160
	// LTFLen is the long training field length in samples.
	LTFLen = 160
	// PreambleLen is the total PLCP preamble length (16 µs).
	PreambleLen = STFLen + LTFLen
	// ServiceBits is the number of SERVICE field bits prepended to the PSDU.
	ServiceBits = 16
)

// dataCarriers lists the data subcarrier indices in the order bits are
// mapped (−26..26 skipping DC and pilots), per 802.11-2012 18.3.5.10.
var dataCarriers = buildDataCarriers()

// pilotCarriers are the pilot subcarrier indices.
var pilotCarriers = [NumPilots]int{-21, -7, 7, 21}

// pilotValues are the base pilot symbols at those indices, multiplied by
// the per-symbol polarity.
var pilotValues = [NumPilots]complex128{1, 1, 1, -1}

func buildDataCarriers() [NumDataCarriers]int {
	var out [NumDataCarriers]int
	i := 0
	for k := -26; k <= 26; k++ {
		if k == 0 || k == -21 || k == -7 || k == 7 || k == 21 {
			continue
		}
		out[i] = k
		i++
	}
	return out
}

// pilotPolarity is the 127-element polarity sequence p_n of
// 802.11-2012 Eq. 18-25; it equals the all-ones-seeded scrambler
// keystream mapped 0→+1, 1→−1.
var pilotPolarity = buildPilotPolarity()

func buildPilotPolarity() [127]float64 {
	var p [127]float64
	s := fec.NewScrambler(0x7F)
	for i := range p {
		p[i] = 1 - 2*float64(s.Next())
	}
	return p
}

// carrierScale normalizes a 52-tone OFDM symbol to unit average power
// after the 1/N IFFT.
var carrierScale = complex(FFTSize/math.Sqrt(52), 0)

// binFor maps a signed subcarrier index (−32..31) to its FFT bin.
func binFor(k int) int { return (k + FFTSize) % FFTSize }
