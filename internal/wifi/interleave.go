package wifi

// Interleave applies the 802.11 two-permutation block interleaver to one
// OFDM symbol's worth of coded bits (len(bits) must equal NCBPS for the
// rate). nbpsc is the coded bits per subcarrier.
//
// First permutation (k→i) spreads adjacent coded bits across
// non-adjacent subcarriers; second (i→j) alternates them between
// significant and less-significant constellation bits.
func Interleave(bits []byte, nbpsc int) []byte {
	ncbps := len(bits)
	out := make([]byte, ncbps)
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	for k := 0; k < ncbps; k++ {
		i := (ncbps/16)*(k%16) + k/16
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		out[j] = bits[k]
	}
	return out
}

// Deinterleave inverts Interleave on hard bits.
func Deinterleave(bits []byte, nbpsc int) []byte {
	ncbps := len(bits)
	out := make([]byte, ncbps)
	perm := interleavePerm(ncbps, nbpsc)
	for k := 0; k < ncbps; k++ {
		out[k] = bits[perm[k]]
	}
	return out
}

// DeinterleaveSoft inverts Interleave on soft values.
func DeinterleaveSoft(soft []float64, nbpsc int) []float64 {
	ncbps := len(soft)
	out := make([]float64, ncbps)
	perm := interleavePerm(ncbps, nbpsc)
	for k := 0; k < ncbps; k++ {
		out[k] = soft[perm[k]]
	}
	return out
}

// interleavePerm returns perm such that interleaved[perm[k]] is the
// coded bit that entered position k.
func interleavePerm(ncbps, nbpsc int) []int {
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	perm := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		i := (ncbps/16)*(k%16) + k/16
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		perm[k] = j
	}
	return perm
}
