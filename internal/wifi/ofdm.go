package wifi

import (
	"fmt"

	"backfi/internal/dsp"
)

// assembleSymbol builds one time-domain OFDM symbol (with cyclic prefix)
// from 48 data constellation points and the pilot polarity for the given
// symbol index (0 = SIGNAL).
func assembleSymbol(points []complex128, symbolIndex int) []complex128 {
	if len(points) != NumDataCarriers {
		panic(fmt.Sprintf("wifi: %d data points, want %d", len(points), NumDataCarriers))
	}
	bins := make([]complex128, FFTSize)
	for i, k := range dataCarriers {
		bins[binFor(k)] = points[i] * carrierScale
	}
	pol := complex(pilotPolarity[symbolIndex%127], 0)
	for i, k := range pilotCarriers {
		bins[binFor(k)] = pilotValues[i] * pol * carrierScale
	}
	dsp.IFFTInPlace(bins)
	out := make([]complex128, 0, SymbolLen)
	out = append(out, bins[FFTSize-CPLen:]...)
	out = append(out, bins...)
	return out
}

// splitSymbol FFTs one CP-stripped OFDM symbol back to subcarrier bins.
func splitSymbol(samples []complex128) []complex128 {
	if len(samples) != FFTSize {
		panic(fmt.Sprintf("wifi: symbol body length %d, want %d", len(samples), FFTSize))
	}
	return dsp.FFT(samples)
}

// extractCarriers pulls the 48 equalized data points and 4 pilot points
// out of an FFT'd symbol given the channel estimate per bin.
func extractCarriers(bins, chanEst []complex128) (data, pilots []complex128) {
	data = make([]complex128, NumDataCarriers)
	for i, k := range dataCarriers {
		b := binFor(k)
		data[i] = equalize(bins[b], chanEst[b])
	}
	pilots = make([]complex128, NumPilots)
	for i, k := range pilotCarriers {
		b := binFor(k)
		pilots[i] = equalize(bins[b], chanEst[b])
	}
	return data, pilots
}

// equalize performs zero-forcing equalization of one bin, guarding
// against a null channel estimate.
func equalize(y, h complex128) complex128 {
	if h == 0 {
		return 0
	}
	return y / h / carrierScale
}

// extractCarriersMMSE is extractCarriers with MMSE weights
// conj(H)/(|H|²+σ²): faded bins are attenuated toward zero instead of
// noise-amplified, which the soft demapper then naturally de-weights.
func extractCarriersMMSE(bins, chanEst []complex128, noiseVar float64) (data, pilots []complex128) {
	eq := func(b int) complex128 {
		h := chanEst[b]
		den := real(h)*real(h) + imag(h)*imag(h) + noiseVar
		if den == 0 {
			return 0
		}
		w := complex(real(h), -imag(h)) / complex(den, 0)
		return bins[b] * w / carrierScale
	}
	data = make([]complex128, NumDataCarriers)
	for i, k := range dataCarriers {
		data[i] = eq(binFor(k))
	}
	pilots = make([]complex128, NumPilots)
	for i, k := range pilotCarriers {
		pilots[i] = eq(binFor(k))
	}
	return data, pilots
}
