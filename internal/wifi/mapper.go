package wifi

import (
	"math"
)

// Constellation tables per 802.11-2012 18.3.5.8, Gray-coded with the
// standard normalization factors (K_mod): BPSK 1, QPSK 1/√2,
// 16-QAM 1/√10, 64-QAM 1/√42.

// gray2 maps 2 bits (b0 b1, b0 first) to a 4-PAM-like axis level for
// 16-QAM per the standard: 00→−3, 01→−1, 11→+1, 10→+3.
func gray2(b0, b1 byte) float64 {
	switch b0<<1 | b1 {
	case 0b00:
		return -3
	case 0b01:
		return -1
	case 0b11:
		return 1
	default: // 0b10
		return 3
	}
}

// gray3 maps 3 bits to an 8-level axis for 64-QAM per the standard:
// 000→−7, 001→−5, 011→−3, 010→−1, 110→+1, 111→+3, 101→+5, 100→+7.
func gray3(b0, b1, b2 byte) float64 {
	switch b0<<2 | b1<<1 | b2 {
	case 0b000:
		return -7
	case 0b001:
		return -5
	case 0b011:
		return -3
	case 0b010:
		return -1
	case 0b110:
		return 1
	case 0b111:
		return 3
	case 0b101:
		return 5
	default: // 0b100
		return 7
	}
}

// Map converts coded bits to constellation points for modulation m.
// len(bits) must be a multiple of m.BitsPerSymbol().
func Map(bits []byte, m Modulation) []complex128 {
	n := m.BitsPerSymbol()
	if len(bits)%n != 0 {
		panic("wifi: bit count not a multiple of bits-per-symbol")
	}
	out := make([]complex128, len(bits)/n)
	for i := range out {
		b := bits[i*n : (i+1)*n]
		switch m {
		case BPSK:
			out[i] = complex(2*float64(b[0])-1, 0)
		case QPSK:
			out[i] = complex(2*float64(b[0])-1, 2*float64(b[1])-1) / complex(math.Sqrt2, 0)
		case QAM16:
			out[i] = complex(gray2(b[0], b[1]), gray2(b[2], b[3])) / complex(math.Sqrt(10), 0)
		case QAM64:
			out[i] = complex(gray3(b[0], b[1], b[2]), gray3(b[3], b[4], b[5])) / complex(math.Sqrt(42), 0)
		}
	}
	return out
}

// constellation returns all points of m with their bit labels.
func constellation(m Modulation) ([]complex128, [][]byte) {
	n := m.BitsPerSymbol()
	count := 1 << uint(n)
	pts := make([]complex128, count)
	labels := make([][]byte, count)
	for v := 0; v < count; v++ {
		bits := make([]byte, n)
		for i := 0; i < n; i++ {
			bits[i] = byte(v>>uint(n-1-i)) & 1
		}
		pts[v] = Map(bits, m)[0]
		labels[v] = bits
	}
	return pts, labels
}

// demapTables caches per-modulation constellation point lists.
var demapTables = map[Modulation]struct {
	pts    []complex128
	labels [][]byte
}{}

func init() {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		pts, labels := constellation(m)
		demapTables[m] = struct {
			pts    []complex128
			labels [][]byte
		}{pts, labels}
	}
}

// DemapSoft computes per-bit soft values for each received point using
// the max-log-MAP approximation: for bit i,
//
//	soft_i = min_{s: bit_i(s)=1} |y−s|² − min_{s: bit_i(s)=0} |y−s|²
//
// which is positive when bit 0 is more likely, matching the fec soft
// convention. Values are not noise-normalized; the Viterbi decoder is
// scale-invariant.
func DemapSoft(points []complex128, m Modulation) []float64 {
	tbl := demapTables[m]
	n := m.BitsPerSymbol()
	out := make([]float64, len(points)*n)
	for pi, y := range points {
		for i := 0; i < n; i++ {
			d0 := math.Inf(1)
			d1 := math.Inf(1)
			for si, s := range tbl.pts {
				dr := real(y) - real(s)
				di := imag(y) - imag(s)
				d := dr*dr + di*di
				if tbl.labels[si][i] == 0 {
					if d < d0 {
						d0 = d
					}
				} else if d < d1 {
					d1 = d
				}
			}
			out[pi*n+i] = d1 - d0
		}
	}
	return out
}

// DemapHard slices each received point to the nearest constellation
// point and returns its bit label.
func DemapHard(points []complex128, m Modulation) []byte {
	tbl := demapTables[m]
	n := m.BitsPerSymbol()
	out := make([]byte, 0, len(points)*n)
	for _, y := range points {
		best := math.Inf(1)
		bi := 0
		for si, s := range tbl.pts {
			dr := real(y) - real(s)
			di := imag(y) - imag(s)
			if d := dr*dr + di*di; d < best {
				best, bi = d, si
			}
		}
		out = append(out, tbl.labels[bi]...)
	}
	return out
}
