package wifi

import (
	"fmt"

	"backfi/internal/fec"
)

// maxPSDULen is the 802.11 LENGTH field ceiling (12 bits).
const maxPSDULen = 4095

// buildSignalField returns the 24 SIGNAL bits for a PPDU carrying a
// length-byte PSDU at the given rate: RATE(4) | R(1) | LENGTH(12, LSB
// first) | even parity(1) | tail(6).
func buildSignalField(rate Rate, length int) ([]byte, error) {
	if length < 1 || length > maxPSDULen {
		return nil, fmt.Errorf("wifi: PSDU length %d out of range [1,%d]", length, maxPSDULen)
	}
	bits := make([]byte, 24)
	for i := 0; i < 4; i++ {
		bits[i] = (rate.SignalBits >> uint(3-i)) & 1
	}
	// bits[4] reserved = 0.
	for i := 0; i < 12; i++ {
		bits[5+i] = byte(length>>uint(i)) & 1
	}
	var par byte
	for _, b := range bits[:17] {
		par ^= b
	}
	bits[17] = par
	// bits[18:24] tail zeros.
	return bits, nil
}

// parseSignalField validates and decodes 24 SIGNAL bits.
func parseSignalField(bits []byte) (Rate, int, error) {
	if len(bits) != 24 {
		return Rate{}, 0, fmt.Errorf("wifi: SIGNAL field has %d bits", len(bits))
	}
	var par byte
	for _, b := range bits[:18] {
		par ^= b
	}
	if par != 0 {
		return Rate{}, 0, fmt.Errorf("wifi: SIGNAL parity check failed")
	}
	var rbits byte
	for i := 0; i < 4; i++ {
		rbits = rbits<<1 | bits[i]
	}
	rate, err := rateBySignalBits(rbits)
	if err != nil {
		return Rate{}, 0, err
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]) << uint(i)
	}
	if length == 0 {
		return Rate{}, 0, fmt.Errorf("wifi: SIGNAL length is zero")
	}
	return rate, length, nil
}

// encodeSignalSymbol turns the SIGNAL bits into the one BPSK rate-1/2
// OFDM symbol that follows the preamble (symbol index 0).
func encodeSignalSymbol(sigBits []byte) []complex128 {
	coded := fec.ConvEncode(sigBits) // 48 bits; the 6 tail zeros terminate the trellis
	inter := Interleave(coded, 1)
	points := Map(inter, BPSK)
	return assembleSymbol(points, 0)
}

// decodeSignalSymbol inverts encodeSignalSymbol given equalized data
// points.
func decodeSignalSymbol(points []complex128) (Rate, int, error) {
	soft := DemapSoft(points, BPSK)
	desoft := DeinterleaveSoft(soft, 1)
	bits, err := fec.ViterbiDecode(desoft, true) // tail-terminated, returns 18 bits
	if err != nil {
		return Rate{}, 0, err
	}
	full := make([]byte, 24)
	copy(full, bits)
	return parseSignalField(full)
}
