package wifi

import (
	"bytes"
	"math/rand"
	"testing"

	"backfi/internal/dsp"
)

// fadedWave builds a PPDU through a channel with a deep in-band null.
func fadedWave(t *testing.T, r *rand.Rand, mbps, psduLen int, snrDB float64) ([]complex128, []byte) {
	t.Helper()
	rate, err := RateByMbps(mbps)
	if err != nil {
		t.Fatal(err)
	}
	psdu := make([]byte, psduLen)
	r.Read(psdu)
	wave, err := Transmit(psdu, rate, DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Two-tap channel h = [1, 0.95] puts a deep null near the band edge.
	taps := []complex128{1, complex(0.95, 0)}
	faded := dsp.ConvolveSame(dsp.Concat(dsp.Zeros(64), wave, dsp.Zeros(16)), taps)
	sigma := dsp.UnDB(-snrDB) * dsp.Power(faded)
	out := make([]complex128, len(faded))
	for i := range faded {
		out[i] = faded[i] + complex(r.NormFloat64(), r.NormFloat64())*complex(mathSqrt(sigma/2), 0)
	}
	return out, psdu
}

func mathSqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 30; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestMMSEBeatsZFThroughDeepNull(t *testing.T) {
	// 36 Mbps (16-QAM 3/4) through a near-null channel at 22 dB: ZF
	// amplifies the nulled subcarriers' noise; MMSE de-weights them.
	r := rand.New(rand.NewSource(42))
	zf := NewReceiver()
	mmse := NewReceiver()
	mmse.MMSE = true

	okZF, okMMSE := 0, 0
	const trials = 12
	for i := 0; i < trials; i++ {
		rx, psdu := fadedWave(t, r, 36, 300, 22)
		if got, _, err := zf.Receive(rx); err == nil && bytes.Equal(got, psdu) {
			okZF++
		}
		if got, _, err := mmse.Receive(rx); err == nil && bytes.Equal(got, psdu) {
			okMMSE++
		}
	}
	if okMMSE < okZF {
		t.Fatalf("MMSE (%d/%d) should not lose to ZF (%d/%d) through a null",
			okMMSE, trials, okZF, trials)
	}
	if okMMSE == 0 {
		t.Fatal("MMSE decoded nothing — equalizer broken")
	}
}

func TestMMSEMatchesZFOnCleanChannel(t *testing.T) {
	// With no fading the two equalizers must both decode everything.
	r := rand.New(rand.NewSource(43))
	rate, _ := RateByMbps(54)
	psdu := make([]byte, 400)
	r.Read(psdu)
	wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)
	noisy := addAWGN(r, dsp.Concat(dsp.Zeros(50), wave), dsp.UnDB(-30))

	for _, useMMSE := range []bool{false, true} {
		rx := NewReceiver()
		rx.MMSE = useMMSE
		got, _, err := rx.Receive(noisy)
		if err != nil {
			t.Fatalf("mmse=%v: %v", useMMSE, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("mmse=%v: corrupted", useMMSE)
		}
	}
}

func TestMMSENoiseEstimateScale(t *testing.T) {
	// Indirect check: MMSE must still decode across a wide SNR range —
	// a mis-scaled noise estimate would over- or under-weight bins and
	// break one end.
	r := rand.New(rand.NewSource(44))
	rx := NewReceiver()
	rx.MMSE = true
	for _, snr := range []float64{12.0, 20, 35} {
		rate, _ := RateByMbps(12)
		psdu := make([]byte, 200)
		r.Read(psdu)
		wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)
		noisy := addAWGN(r, wave, dsp.UnDB(-snr))
		got, _, err := rx.Receive(noisy)
		if err != nil {
			t.Fatalf("snr=%v: %v", snr, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("snr=%v: corrupted", snr)
		}
	}
}
