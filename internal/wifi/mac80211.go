package wifi

import (
	"encoding/binary"
	"fmt"

	"backfi/internal/fec"
)

// Minimal 802.11 MAC framing: enough to build the frames the BackFi
// protocol actually uses — a CTS-to-SELF to silence the cell before a
// backscatter exchange (paper Sec. 4.1) and data MPDUs for the normal
// downlink traffic the tag rides on.

// MACAddr is an EUI-48 address.
type MACAddr [6]byte

// String formats the address conventionally.
func (a MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Frame-control field values (type/subtype in bits 2–7, LSB-first
// ordering per 802.11).
const (
	// fcCTS is a control frame, subtype CTS (type 01, subtype 1100).
	fcCTS = 0x00C4
	// fcData is a data frame, subtype Data (type 10, subtype 0000),
	// FromDS set.
	fcData = 0x0208
)

// CTSToSelfBytes is the fixed CTS frame length including FCS.
const CTSToSelfBytes = 14

// BuildCTSToSelf returns the 14-byte CTS-to-SELF MPDU: the AP
// addresses the CTS to itself with a NAV duration covering the
// backscatter exchange, forcing other stations silent.
func BuildCTSToSelf(ra MACAddr, durationUs int) ([]byte, error) {
	if durationUs < 0 || durationUs > 32767 {
		return nil, fmt.Errorf("wifi: NAV duration %d µs out of range", durationUs)
	}
	out := make([]byte, CTSToSelfBytes)
	binary.LittleEndian.PutUint16(out[0:2], fcCTS)
	binary.LittleEndian.PutUint16(out[2:4], uint16(durationUs))
	copy(out[4:10], ra[:])
	binary.LittleEndian.PutUint32(out[10:14], fec.FCS32(out[:10]))
	return out, nil
}

// ParseCTSToSelf validates a CTS MPDU and returns its receiver address
// and NAV duration.
func ParseCTSToSelf(mpdu []byte) (MACAddr, int, error) {
	var ra MACAddr
	if len(mpdu) != CTSToSelfBytes {
		return ra, 0, fmt.Errorf("wifi: CTS length %d", len(mpdu))
	}
	if binary.LittleEndian.Uint16(mpdu[0:2]) != fcCTS {
		return ra, 0, fmt.Errorf("wifi: not a CTS frame")
	}
	if fec.FCS32(mpdu[:10]) != binary.LittleEndian.Uint32(mpdu[10:14]) {
		return ra, 0, fmt.Errorf("wifi: CTS FCS mismatch")
	}
	copy(ra[:], mpdu[4:10])
	return ra, int(binary.LittleEndian.Uint16(mpdu[2:4])), nil
}

// MPDUHeader is the three-address data frame header.
type MPDUHeader struct {
	// Duration is the NAV value in µs.
	Duration int
	// Addr1 (receiver), Addr2 (transmitter), Addr3 (BSSID/DA).
	Addr1, Addr2, Addr3 MACAddr
	// Seq is the 12-bit sequence number.
	Seq int
}

// mpduHeaderBytes is the data header length (no QoS/HT fields).
const mpduHeaderBytes = 24

// BuildDataMPDU wraps a payload (MSDU) in a data MPDU with FCS.
func BuildDataMPDU(h MPDUHeader, payload []byte) ([]byte, error) {
	if h.Seq < 0 || h.Seq > 0xFFF {
		return nil, fmt.Errorf("wifi: sequence %d out of range", h.Seq)
	}
	if h.Duration < 0 || h.Duration > 32767 {
		return nil, fmt.Errorf("wifi: duration %d out of range", h.Duration)
	}
	out := make([]byte, mpduHeaderBytes+len(payload)+4)
	binary.LittleEndian.PutUint16(out[0:2], fcData)
	binary.LittleEndian.PutUint16(out[2:4], uint16(h.Duration))
	copy(out[4:10], h.Addr1[:])
	copy(out[10:16], h.Addr2[:])
	copy(out[16:22], h.Addr3[:])
	binary.LittleEndian.PutUint16(out[22:24], uint16(h.Seq)<<4)
	copy(out[24:], payload)
	binary.LittleEndian.PutUint32(out[len(out)-4:], fec.FCS32(out[:len(out)-4]))
	return out, nil
}

// ParseDataMPDU validates a data MPDU and returns the header and MSDU.
func ParseDataMPDU(mpdu []byte) (MPDUHeader, []byte, error) {
	var h MPDUHeader
	if len(mpdu) < mpduHeaderBytes+4 {
		return h, nil, fmt.Errorf("wifi: MPDU of %d bytes too short", len(mpdu))
	}
	if fec.FCS32(mpdu[:len(mpdu)-4]) != binary.LittleEndian.Uint32(mpdu[len(mpdu)-4:]) {
		return h, nil, fmt.Errorf("wifi: MPDU FCS mismatch")
	}
	if binary.LittleEndian.Uint16(mpdu[0:2]) != fcData {
		return h, nil, fmt.Errorf("wifi: not a data frame")
	}
	h.Duration = int(binary.LittleEndian.Uint16(mpdu[2:4]))
	copy(h.Addr1[:], mpdu[4:10])
	copy(h.Addr2[:], mpdu[10:16])
	copy(h.Addr3[:], mpdu[16:22])
	h.Seq = int(binary.LittleEndian.Uint16(mpdu[22:24]) >> 4)
	return h, mpdu[24 : len(mpdu)-4], nil
}
