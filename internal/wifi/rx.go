package wifi

import (
	"fmt"
	"math"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/fec"
)

// RxInfo carries receiver diagnostics alongside a decoded PSDU.
type RxInfo struct {
	// Rate is the rate decoded from the SIGNAL field.
	Rate Rate
	// PayloadStart is the sample index of the first data symbol.
	PayloadStart int
	// CFO is the estimated carrier frequency offset in radians/sample.
	CFO float64
	// EVM is the RMS error-vector magnitude of the equalized data
	// constellation (against hard decisions).
	EVM float64
	// SNRdB is the EVM-derived post-equalization SNR estimate.
	SNRdB float64
	// NumSymbols is the number of data OFDM symbols.
	NumSymbols int
}

// Receiver decodes 802.11a/g PPDUs from baseband samples.
type Receiver struct {
	// DetectThreshold is the normalized LTF correlation required to
	// declare a packet (0..1).
	DetectThreshold float64
	// MMSE selects minimum-mean-square-error equalization instead of
	// zero forcing: bins are weighted conj(H)/(|H|²+σ²) with the noise
	// variance estimated from the two LTF repetitions. ZF inverts
	// channel nulls and blows up their noise; MMSE de-weights them,
	// which matters for 64-QAM through frequency-selective fades.
	MMSE bool
}

// NewReceiver returns a receiver with standard thresholds (zero
// forcing, matching the WARP reference design).
func NewReceiver() *Receiver {
	return &Receiver{DetectThreshold: 0.5}
}

// errNoPacket is returned when no preamble is found.
var errNoPacket = fmt.Errorf("wifi: no packet detected")

// IsNoPacket reports whether err means no preamble was found (as
// opposed to a corrupted packet).
func IsNoPacket(err error) bool { return err == errNoPacket }

// Receive synchronizes to the first PPDU in samples and decodes it.
func (rx *Receiver) Receive(samples []complex128) ([]byte, *RxInfo, error) {
	ltf := LongTrainingField()
	if len(samples) < PreambleLen+SymbolLen {
		return nil, nil, errNoPacket
	}
	corr := dsp.NormalizedCrossCorrelate(samples, ltf)
	peak := dsp.PeakIndex(corr)
	if peak < 0 || corr[peak] < rx.DetectThreshold {
		return nil, nil, errNoPacket
	}
	// Back the timing off a few samples: in a multipath channel the
	// correlation peak follows the strongest tap, which may not be the
	// first. Sampling early lands safely inside each cyclic prefix
	// (absorbed as linear phase by the channel estimate), while
	// sampling late pulls inter-symbol interference into the FFT.
	const timingBackoff = 4
	ltfStart := peak - timingBackoff
	if ltfStart < 0 {
		ltfStart = 0
	}

	// CFO from the repetition of the two long training symbols.
	var acc complex128
	for n := ltfStart + 32; n+64 < len(samples) && n < ltfStart+32+64; n++ {
		acc += samples[n] * cmplx.Conj(samples[n+64])
	}
	cfo := cmplx.Phase(acc) / 64 // radians per sample
	work := dsp.Rotate(samples, 0, cfo)

	// Channel estimation from the averaged long training symbols.
	if ltfStart+LTFLen+SymbolLen > len(work) {
		return nil, nil, errNoPacket
	}
	lt1 := work[ltfStart+32 : ltfStart+96]
	lt2 := work[ltfStart+96 : ltfStart+160]
	avg := make([]complex128, FFTSize)
	for i := range avg {
		avg[i] = (lt1[i] + lt2[i]) / 2
	}
	bins := splitSymbol(avg)
	chanEst := make([]complex128, FFTSize)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		b := binFor(k)
		chanEst[b] = bins[b] / (complex(LTFCarrier(k), 0) * carrierScale)
	}
	// Per-bin noise variance from the difference of the two identical
	// LTF symbols: |FFT(lt1−lt2)|²/2 averaged over used bins, referred
	// to the normalized constellation domain for the MMSE weights.
	var noiseVar float64
	if rx.MMSE {
		diff := make([]complex128, FFTSize)
		for i := range diff {
			diff[i] = (lt1[i] - lt2[i]) / 2
		}
		dbins := splitSymbol(diff)
		var acc float64
		for k := -26; k <= 26; k++ {
			if k == 0 {
				continue
			}
			v := dbins[binFor(k)]
			acc += real(v)*real(v) + imag(v)*imag(v)
		}
		// The averaged LTF has half the noise of one symbol; the data
		// symbols carry full noise, so scale ×2, then refer to the
		// unit-power constellation domain (divide by |carrierScale|²).
		cs := real(carrierScale)
		noiseVar = 2 * acc / 52 / (cs * cs)
	}

	// SIGNAL symbol.
	sigStart := ltfStart + LTFLen
	sigPoints, sigPilots := rx.demodSymbol(work, sigStart, chanEst, 0, noiseVar)
	if sigPoints == nil {
		return nil, nil, errNoPacket
	}
	_ = sigPilots
	rate, psduLen, err := decodeSignalSymbol(sigPoints)
	if err != nil {
		return nil, nil, fmt.Errorf("wifi: SIGNAL decode: %w", err)
	}

	// Data symbols.
	ndbps := rate.NDBPS()
	payloadBits := ServiceBits + 8*psduLen + fec.TailBits
	nsym := (payloadBits + ndbps - 1) / ndbps
	dataStart := sigStart + SymbolLen
	if dataStart+nsym*SymbolLen > len(work) {
		return nil, nil, fmt.Errorf("wifi: truncated packet: need %d symbols", nsym)
	}

	soft := make([]float64, 0, nsym*rate.NCBPS())
	var evmNum, evmDen float64
	for s := 0; s < nsym; s++ {
		points, _ := rx.demodSymbol(work, dataStart+s*SymbolLen, chanEst, s+1, noiseVar)
		if points == nil {
			return nil, nil, fmt.Errorf("wifi: symbol %d out of range", s)
		}
		// EVM against hard decisions.
		hard := DemapHard(points, rate.Mod)
		ideal := Map(hard, rate.Mod)
		for i := range points {
			d := points[i] - ideal[i]
			evmNum += real(d)*real(d) + imag(d)*imag(d)
			evmDen += real(ideal[i])*real(ideal[i]) + imag(ideal[i])*imag(ideal[i])
		}
		symSoft := DeinterleaveSoft(DemapSoft(points, rate.Mod), rate.NBPSC())
		soft = append(soft, symSoft...)
	}

	steps := nsym * ndbps
	mother, err := fec.Depuncture(soft, rate.Coding, 2*steps)
	if err != nil {
		return nil, nil, fmt.Errorf("wifi: depuncture: %w", err)
	}
	scrambled, err := fec.ViterbiDecode(mother, false)
	if err != nil {
		return nil, nil, fmt.Errorf("wifi: viterbi: %w", err)
	}

	descrambled, err := descrambleFromService(scrambled)
	if err != nil {
		return nil, nil, err
	}
	psduBits := descrambled[ServiceBits : ServiceBits+8*psduLen]
	psdu := fec.BitsToBytes(psduBits)

	evm := 0.0
	if evmDen > 0 {
		evm = math.Sqrt(evmNum / evmDen)
	}
	info := &RxInfo{
		Rate:         rate,
		PayloadStart: dataStart,
		CFO:          -cfo, // sign flipped: we corrected by rotating with +cfo
		EVM:          evm,
		SNRdB:        dsp.EVMToSNRdB(evm),
		NumSymbols:   nsym,
	}
	return psdu, info, nil
}

// demodSymbol strips the CP, FFTs, equalizes (ZF, or MMSE when
// noiseVar > 0), and corrects common phase error from pilots for the
// OFDM symbol starting at start.
func (rx *Receiver) demodSymbol(samples []complex128, start int, chanEst []complex128, symbolIndex int, noiseVar float64) (data, pilots []complex128) {
	if start+SymbolLen > len(samples) {
		return nil, nil
	}
	body := samples[start+CPLen : start+SymbolLen]
	bins := splitSymbol(body)
	if rx.MMSE && noiseVar > 0 {
		data, pilots = extractCarriersMMSE(bins, chanEst, noiseVar)
	} else {
		data, pilots = extractCarriers(bins, chanEst)
	}
	// Common phase error from pilots.
	pol := complex(pilotPolarity[symbolIndex%127], 0)
	var acc complex128
	for i := range pilots {
		expected := pilotValues[i] * pol
		acc += pilots[i] * cmplx.Conj(expected)
	}
	if acc != 0 {
		rot := cmplx.Conj(acc / complex(cmplx.Abs(acc), 0))
		for i := range data {
			data[i] *= rot
		}
		for i := range pilots {
			pilots[i] *= rot
		}
	}
	return data, pilots
}

// descrambleFromService recovers the scrambler seed from the first 7
// SERVICE bits (which are zero before scrambling, so the received bits
// are the raw keystream) and descrambles the whole stream.
func descrambleFromService(bits []byte) ([]byte, error) {
	if len(bits) < 7 {
		return nil, fmt.Errorf("wifi: stream too short for SERVICE field")
	}
	for seed := byte(1); seed < 128; seed++ {
		s := fec.NewScrambler(seed)
		ok := true
		for i := 0; i < 7; i++ {
			if s.Next() != bits[i] {
				ok = false
				break
			}
		}
		if ok {
			return fec.NewScrambler(seed).Scramble(bits), nil
		}
	}
	return nil, fmt.Errorf("wifi: could not recover scrambler seed")
}
