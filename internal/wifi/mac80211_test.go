package wifi

import (
	"bytes"
	"math/rand"
	"testing"
)

var (
	apAddr     = MACAddr{0x02, 0x00, 0x00, 0xba, 0xcf, 0x01}
	clientAddr = MACAddr{0x02, 0x00, 0x00, 0xc1, 0x1e, 0x42}
)

func TestCTSToSelfRoundTrip(t *testing.T) {
	mpdu, err := BuildCTSToSelf(apAddr, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(mpdu) != CTSToSelfBytes {
		t.Fatalf("CTS length %d", len(mpdu))
	}
	ra, dur, err := ParseCTSToSelf(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if ra != apAddr || dur != 1500 {
		t.Fatalf("parsed %v/%d", ra, dur)
	}
}

func TestCTSToSelfValidation(t *testing.T) {
	if _, err := BuildCTSToSelf(apAddr, -1); err == nil {
		t.Fatal("expected duration error")
	}
	if _, err := BuildCTSToSelf(apAddr, 40000); err == nil {
		t.Fatal("expected duration error")
	}
	mpdu, _ := BuildCTSToSelf(apAddr, 100)
	mpdu[5] ^= 1
	if _, _, err := ParseCTSToSelf(mpdu); err == nil {
		t.Fatal("expected FCS error")
	}
	if _, _, err := ParseCTSToSelf(mpdu[:10]); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDataMPDURoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	payload := make([]byte, 700)
	r.Read(payload)
	h := MPDUHeader{Duration: 44, Addr1: clientAddr, Addr2: apAddr, Addr3: apAddr, Seq: 0x7AB}
	mpdu, err := BuildDataMPDU(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, msdu, err := ParseDataMPDU(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v vs %+v", got, h)
	}
	if !bytes.Equal(msdu, payload) {
		t.Fatal("payload differs")
	}
}

func TestDataMPDUValidation(t *testing.T) {
	h := MPDUHeader{Seq: 0x1000}
	if _, err := BuildDataMPDU(h, nil); err == nil {
		t.Fatal("expected sequence error")
	}
	h = MPDUHeader{Duration: 99999}
	if _, err := BuildDataMPDU(h, nil); err == nil {
		t.Fatal("expected duration error")
	}
	good, _ := BuildDataMPDU(MPDUHeader{Seq: 1}, []byte{1, 2, 3})
	good[30] ^= 0xFF
	if _, _, err := ParseDataMPDU(good); err == nil {
		t.Fatal("expected FCS error")
	}
	if _, _, err := ParseDataMPDU(good[:10]); err == nil {
		t.Fatal("expected length error")
	}
	// CTS parsed as data should be rejected.
	cts, _ := BuildCTSToSelf(apAddr, 10)
	padded := append(cts, make([]byte, 20)...)
	if _, _, err := ParseDataMPDU(padded); err == nil {
		t.Fatal("expected frame-type error")
	}
}

func TestMPDUOverPHY(t *testing.T) {
	// A framed MPDU travels the full PHY as the PSDU — the actual
	// BackFi excitation is exactly this.
	r := rand.New(rand.NewSource(2))
	rate, _ := RateByMbps(24)
	payload := make([]byte, 400)
	r.Read(payload)
	mpdu, err := BuildDataMPDU(MPDUHeader{Addr1: clientAddr, Addr2: apAddr, Addr3: apAddr, Seq: 9}, payload)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := Transmit(mpdu, rate, DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := NewReceiver().Receive(wave)
	if err != nil {
		t.Fatal(err)
	}
	h, msdu, err := ParseDataMPDU(got)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seq != 9 || !bytes.Equal(msdu, payload) {
		t.Fatal("MPDU corrupted over the PHY")
	}
}

func TestMACAddrString(t *testing.T) {
	if apAddr.String() != "02:00:00:ba:cf:01" {
		t.Fatalf("String = %q", apAddr.String())
	}
}
