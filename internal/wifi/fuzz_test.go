package wifi

import (
	"math"
	"testing"
)

// bytesToSamples reinterprets fuzz bytes as a crude complex stream.
func bytesToSamples(data []byte) []complex128 {
	out := make([]complex128, len(data)/2)
	for i := range out {
		out[i] = complex(float64(int8(data[2*i]))/32, float64(int8(data[2*i+1]))/32)
	}
	return out
}

// FuzzReceive feeds arbitrary sample streams to the receiver: it must
// return an error or a PSDU, never panic, hang, or produce NaN
// diagnostics.
func FuzzReceive(f *testing.F) {
	// Seed with a real packet so the corpus reaches deep paths.
	rate, _ := RateByMbps(6)
	wave, _ := Transmit([]byte{1, 2, 3}, rate, DefaultScramblerSeed)
	seed := make([]byte, 0, 2*len(wave))
	for _, v := range wave {
		seed = append(seed, byte(int8(real(v)*32)), byte(int8(imag(v)*32)))
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 4096))

	rx := NewReceiver()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		psdu, info, err := rx.Receive(bytesToSamples(data))
		if err != nil {
			return
		}
		if len(psdu) == 0 || len(psdu) > maxPSDULen {
			t.Fatalf("accepted PSDU of %d bytes", len(psdu))
		}
		if math.IsNaN(info.EVM) {
			t.Fatal("NaN EVM on accepted packet")
		}
	})
}

// FuzzParseDataMPDU must never panic on arbitrary frames.
func FuzzParseDataMPDU(f *testing.F) {
	good, _ := BuildDataMPDU(MPDUHeader{Seq: 1}, []byte("payload"))
	f.Add(good)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ParseDataMPDU(data)
		_, _, _ = ParseCTSToSelf(data)
	})
}
