package wifi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based coverage (testing/quick) of the PHY's core
// invariants, complementing the directed tests.

func TestQuickTransmitReceiveRoundTrip(t *testing.T) {
	rx := NewReceiver()
	f := func(seed int64, rateIdx uint8, lenSel uint16) bool {
		r := rand.New(rand.NewSource(seed))
		rate := Rates[int(rateIdx)%len(Rates)]
		n := 1 + int(lenSel)%600
		psdu := make([]byte, n)
		r.Read(psdu)
		wave, err := Transmit(psdu, rate, DefaultScramblerSeed)
		if err != nil {
			return false
		}
		got, info, err := rx.Receive(wave)
		if err != nil {
			return false
		}
		return bytes.Equal(got, psdu) && info.Rate.Mbps == rate.Mbps
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInterleaverBijective(t *testing.T) {
	f := func(seed int64, rateIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rate := Rates[int(rateIdx)%len(Rates)]
		bits := make([]byte, rate.NCBPS())
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		back := Deinterleave(Interleave(bits, rate.NBPSC()), rate.NBPSC())
		return bytes.Equal(back, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMapperRoundTrip(t *testing.T) {
	f := func(seed int64, modSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := []Modulation{BPSK, QPSK, QAM16, QAM64}[int(modSel)%4]
		bits := make([]byte, m.BitsPerSymbol()*48)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		return bytes.Equal(DemapHard(Map(bits, m), m), bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMPDURoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, seq uint16, dur uint16) bool {
		r := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(n)+1)
		r.Read(payload)
		h := MPDUHeader{
			Duration: int(dur) % 32768,
			Addr1:    apAddr, Addr2: clientAddr, Addr3: apAddr,
			Seq: int(seq) % 4096,
		}
		mpdu, err := BuildDataMPDU(h, payload)
		if err != nil {
			return false
		}
		got, msdu, err := ParseDataMPDU(mpdu)
		if err != nil {
			return false
		}
		return got == h && bytes.Equal(msdu, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
