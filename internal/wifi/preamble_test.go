package wifi

import (
	"math"
	"math/cmplx"
	"testing"

	"backfi/internal/dsp"
)

func TestSTFPeriodicity(t *testing.T) {
	stf := ShortTrainingField()
	if len(stf) != STFLen {
		t.Fatalf("STF length %d", len(stf))
	}
	for i := 0; i+16 < len(stf); i++ {
		if cmplx.Abs(stf[i]-stf[i+16]) > 1e-9 {
			t.Fatalf("STF not 16-periodic at %d", i)
		}
	}
}

func TestLTFStructure(t *testing.T) {
	ltf := LongTrainingField()
	if len(ltf) != LTFLen {
		t.Fatalf("LTF length %d", len(ltf))
	}
	// Two identical 64-sample symbols after the 32-sample guard.
	for i := 0; i < 64; i++ {
		if cmplx.Abs(ltf[32+i]-ltf[96+i]) > 1e-9 {
			t.Fatalf("LTF symbols differ at %d", i)
		}
	}
	// Guard is the cyclic tail.
	for i := 0; i < 32; i++ {
		if cmplx.Abs(ltf[i]-ltf[128+i]) > 1e-9 {
			t.Fatalf("LTF guard not cyclic at %d", i)
		}
	}
}

func TestPreambleUnitPower(t *testing.T) {
	p := dsp.Power(Preamble())
	if math.Abs(p-1) > 0.05 {
		t.Fatalf("preamble power %v, want ~1", p)
	}
}

func TestLTFSequenceProperties(t *testing.T) {
	// 53 entries, DC zero, all others ±1.
	if len(ltfSequence) != 53 {
		t.Fatalf("LTF sequence length %d", len(ltfSequence))
	}
	if LTFCarrier(0) != 0 {
		t.Fatal("DC carrier should be 0")
	}
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		if v := LTFCarrier(k); v != 1 && v != -1 {
			t.Fatalf("L[%d] = %v", k, v)
		}
	}
}

func TestLTFAutocorrelationSharp(t *testing.T) {
	// The long training symbol must have a strong self-correlation peak:
	// that is what gives symbol timing. Off-peak correlation should be
	// much smaller.
	ltf := LongTrainingField()
	padded := dsp.Concat(dsp.Zeros(100), ltf, dsp.Zeros(100))
	c := dsp.NormalizedCrossCorrelate(padded, ltf)
	peak := dsp.PeakIndex(c)
	if peak != 100 {
		t.Fatalf("peak at %d, want 100", peak)
	}
	// The period-64 internal structure yields known ~0.64 sidelobes at
	// ±64 lag; everywhere else correlation must be small, and the ±64
	// sidelobes must stay clearly below the peak.
	for i, v := range c {
		switch {
		case i >= 95 && i <= 105: // main peak region
		case i >= 95-64 && i <= 105-64, i >= 95+64 && i <= 105+64:
			if v > 0.8 {
				t.Fatalf("±64 sidelobe %v at %d too close to peak", v, i)
			}
		default:
			if v > 0.5 {
				t.Fatalf("sidelobe %v at %d", v, i)
			}
		}
	}
}

func TestPilotPolarityMatchesStandardPrefix(t *testing.T) {
	// First entries of p_n per 802.11-2012 Eq. 18-25:
	// 1,1,1,1, -1,-1,-1,1, -1,-1,-1,-1, 1,1,-1,1 ...
	want := []float64{1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1}
	for i, w := range want {
		if pilotPolarity[i] != w {
			t.Fatalf("p_%d = %v, want %v", i, pilotPolarity[i], w)
		}
	}
}

func TestDataCarrierLayout(t *testing.T) {
	if len(dataCarriers) != NumDataCarriers {
		t.Fatalf("%d data carriers", len(dataCarriers))
	}
	seen := map[int]bool{}
	for _, k := range dataCarriers {
		if k == 0 {
			t.Fatal("DC used as data carrier")
		}
		for _, p := range pilotCarriers {
			if k == p {
				t.Fatalf("pilot carrier %d used for data", k)
			}
		}
		if k < -26 || k > 26 {
			t.Fatalf("carrier %d out of range", k)
		}
		if seen[k] {
			t.Fatalf("carrier %d duplicated", k)
		}
		seen[k] = true
	}
}

func TestSymbolAssemblyRoundTrip(t *testing.T) {
	// assembleSymbol then CP-strip + FFT + extract must return the
	// original points under an ideal (flat unity) channel.
	bits := make([]byte, NumDataCarriers*2)
	for i := range bits {
		bits[i] = byte((i * 7) % 2)
	}
	points := Map(bits, QPSK)
	sym := assembleSymbol(points, 3)
	if len(sym) != SymbolLen {
		t.Fatalf("symbol length %d", len(sym))
	}
	// CP check: first CPLen samples equal the last CPLen.
	for i := 0; i < CPLen; i++ {
		if cmplx.Abs(sym[i]-sym[FFTSize+i]) > 1e-9 {
			t.Fatalf("cyclic prefix broken at %d", i)
		}
	}
	bins := splitSymbol(sym[CPLen:])
	flat := make([]complex128, FFTSize)
	for i := range flat {
		flat[i] = 1
	}
	data, pilots := extractCarriers(bins, flat)
	for i := range points {
		if cmplx.Abs(data[i]-points[i]) > 1e-9 {
			t.Fatalf("data point %d: got %v want %v", i, data[i], points[i])
		}
	}
	pol := complex(pilotPolarity[3], 0)
	for i := range pilots {
		if cmplx.Abs(pilots[i]-pilotValues[i]*pol) > 1e-9 {
			t.Fatalf("pilot %d: got %v", i, pilots[i])
		}
	}
}

func TestTransmitSpectralMask(t *testing.T) {
	// The OFDM waveform's power must sit inside the occupied ±26
	// subcarriers: out-of-band bins (|k| > 26, measured at 64-bin
	// resolution) carry only CP-discontinuity leakage, tens of dB below
	// the in-band level.
	rate, _ := RateByMbps(54)
	psdu := make([]byte, 800)
	for i := range psdu {
		psdu[i] = byte(i * 31)
	}
	wave, err := Transmit(psdu, rate, DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	psd := dsp.WelchPSD(wave, 64)
	var inBand, outBand float64
	var nIn, nOut int
	for k := -32; k < 32; k++ {
		p := psd[(k+64)%64]
		if k != 0 && k >= -26 && k <= 26 {
			inBand += p
			nIn++
		} else if k < -28 || k > 28 { // guard for window leakage
			outBand += p
			nOut++
		}
	}
	ratio := dsp.DB((inBand / float64(nIn)) / (outBand / float64(nOut)))
	if ratio < 15 {
		t.Fatalf("in-band only %v dB above out-of-band", ratio)
	}
}
