package wifi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomBits(r *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	return bits
}

func TestMapUnitAveragePower(t *testing.T) {
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		pts, _ := constellation(m)
		var p float64
		for _, s := range pts {
			p += real(s)*real(s) + imag(s)*imag(s)
		}
		p /= float64(len(pts))
		if math.Abs(p-1) > 1e-12 {
			t.Fatalf("%s: average constellation power %v, want 1", m, p)
		}
	}
}

func TestMapDemapHardRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := randomBits(r, m.BitsPerSymbol()*100)
		got := DemapHard(Map(bits, m), m)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%s: bit %d differs", m, i)
			}
		}
	}
}

func TestDemapHardNearestNeighbor(t *testing.T) {
	// A point perturbed by less than half the minimum distance must
	// slice back to its own label.
	r := rand.New(rand.NewSource(2))
	for _, m := range []Modulation{QPSK, QAM16, QAM64} {
		dmin := minDistance(m)
		bits := randomBits(r, m.BitsPerSymbol()*50)
		pts := Map(bits, m)
		for i := range pts {
			pts[i] += complex(r.NormFloat64(), r.NormFloat64()) * complex(dmin/8, 0)
		}
		got := DemapHard(pts, m)
		errs := 0
		for i := range bits {
			if got[i] != bits[i] {
				errs++
			}
		}
		if errs > 2 { // tiny Gaussian tail allowance
			t.Fatalf("%s: %d errors with small perturbation", m, errs)
		}
	}
}

func minDistance(m Modulation) float64 {
	pts, _ := constellation(m)
	best := math.Inf(1)
	for i := range pts {
		for j := range pts {
			if i == j {
				continue
			}
			if d := cmplx.Abs(pts[i] - pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}

func TestDemapSoftSignsMatchHard(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		bits := randomBits(r, m.BitsPerSymbol()*64)
		pts := Map(bits, m)
		soft := DemapSoft(pts, m)
		for i, b := range bits {
			if b == 0 && soft[i] <= 0 {
				t.Fatalf("%s: bit %d=0 but soft %v", m, i, soft[i])
			}
			if b == 1 && soft[i] >= 0 {
				t.Fatalf("%s: bit %d=1 but soft %v", m, i, soft[i])
			}
		}
	}
}

func TestGrayNeighborsDifferByOneBit(t *testing.T) {
	// Gray property: nearest-neighbor constellation points differ in
	// exactly one bit — the reason PSK/QAM bit errors stay small.
	for _, m := range []Modulation{QPSK, QAM16, QAM64} {
		pts, labels := constellation(m)
		dmin := minDistance(m)
		for i := range pts {
			for j := range pts {
				if i == j || cmplx.Abs(pts[i]-pts[j]) > dmin*1.001 {
					continue
				}
				diff := 0
				for k := range labels[i] {
					if labels[i][k] != labels[j][k] {
						diff++
					}
				}
				if diff != 1 {
					t.Fatalf("%s: neighbors %v/%v differ in %d bits", m, labels[i], labels[j], diff)
				}
			}
		}
	}
}

func TestMapRejectsBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Map([]byte{1}, QPSK)
}

func TestInterleaveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, rate := range Rates {
		bits := randomBits(r, rate.NCBPS())
		got := Deinterleave(Interleave(bits, rate.NBPSC()), rate.NBPSC())
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v: bit %d differs", rate, i)
			}
		}
	}
}

func TestInterleaveSoftMatchesHard(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, rate := range Rates {
		bits := randomBits(r, rate.NCBPS())
		inter := Interleave(bits, rate.NBPSC())
		soft := make([]float64, len(inter))
		for i, b := range inter {
			soft[i] = 1 - 2*float64(b)
		}
		deHard := Deinterleave(inter, rate.NBPSC())
		deSoft := DeinterleaveSoft(soft, rate.NBPSC())
		for i := range deHard {
			if deSoft[i] != 1-2*float64(deHard[i]) {
				t.Fatalf("%v: soft/hard deinterleave mismatch at %d", rate, i)
			}
		}
	}
}

func TestInterleaveIsPermutation(t *testing.T) {
	for _, rate := range Rates {
		n := rate.NCBPS()
		idx := make([]byte, n)
		// Mark a single position and find it after interleaving; every
		// position must map somewhere unique.
		seen := make([]bool, n)
		for k := 0; k < n; k++ {
			for i := range idx {
				idx[i] = 0
			}
			idx[k] = 1
			out := Interleave(idx, rate.NBPSC())
			pos := -1
			for i, b := range out {
				if b == 1 {
					if pos != -1 {
						t.Fatalf("%v: duplicated bit", rate)
					}
					pos = i
				}
			}
			if pos == -1 {
				t.Fatalf("%v: bit lost", rate)
			}
			if seen[pos] {
				t.Fatalf("%v: position %d hit twice", rate, pos)
			}
			seen[pos] = true
		}
	}
}

func TestSpreadingProperty(t *testing.T) {
	// Adjacent coded bits must land on non-adjacent subcarriers (the
	// point of the first permutation). Check for 54 Mbps.
	rate := Rates[len(Rates)-1]
	n := rate.NCBPS()
	bits := make([]byte, n)
	bits[0], bits[1] = 1, 1
	out := Interleave(bits, rate.NBPSC())
	positions := []int{}
	for i, b := range out {
		if b == 1 {
			positions = append(positions, i)
		}
	}
	if len(positions) != 2 {
		t.Fatalf("lost bits: %v", positions)
	}
	// They should be separated by at least one subcarrier's worth of bits.
	if d := positions[1] - positions[0]; d < rate.NBPSC() {
		t.Fatalf("adjacent coded bits map %d bits apart", d)
	}
}
