package wifi

import (
	"math"

	"backfi/internal/dsp"
)

// ltfSequence is the frequency-domain long training sequence
// L_{−26..26} of 802.11-2012 Eq. 18-10 (53 entries, DC in the middle).
var ltfSequence = []float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// stfCarriers maps subcarrier index → value (before the √(13/6) boost)
// for the short training sequence of Eq. 18-8.
var stfCarriers = map[int]complex128{
	-24: complex(1, 1), -20: complex(-1, -1), -16: complex(1, 1),
	-12: complex(-1, -1), -8: complex(-1, -1), -4: complex(1, 1),
	4: complex(-1, -1), 8: complex(-1, -1), 12: complex(1, 1),
	16: complex(1, 1), 20: complex(1, 1), 24: complex(1, 1),
}

// LTFCarrier returns L_k for subcarrier k in [−26, 26].
func LTFCarrier(k int) float64 {
	return ltfSequence[k+26]
}

// ShortTrainingField returns the 160-sample STF: ten repetitions of the
// 16-sample short training symbol, at unit average power.
func ShortTrainingField() []complex128 {
	bins := make([]complex128, FFTSize)
	boost := complex(math.Sqrt(13.0/6.0), 0)
	for k, v := range stfCarriers {
		bins[binFor(k)] = v * boost * carrierScale
	}
	sym := dsp.IFFT(bins)
	short := sym[:16]
	out := make([]complex128, 0, STFLen)
	for i := 0; i < 10; i++ {
		out = append(out, short...)
	}
	return out
}

// longTrainingSymbol returns one 64-sample long training symbol.
func longTrainingSymbol() []complex128 {
	bins := make([]complex128, FFTSize)
	for k := -26; k <= 26; k++ {
		bins[binFor(k)] = complex(LTFCarrier(k), 0) * carrierScale
	}
	return dsp.IFFT(bins)
}

// LongTrainingField returns the 160-sample LTF: a 32-sample cyclic
// prefix followed by two repetitions of the long training symbol.
func LongTrainingField() []complex128 {
	sym := longTrainingSymbol()
	out := make([]complex128, 0, LTFLen)
	out = append(out, sym[32:]...) // 32-sample guard = tail of the symbol
	out = append(out, sym...)
	out = append(out, sym...)
	return out
}

// Preamble returns the full 320-sample (16 µs) PLCP preamble.
func Preamble() []complex128 {
	return dsp.Concat(ShortTrainingField(), LongTrainingField())
}
