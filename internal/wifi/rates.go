package wifi

import (
	"fmt"

	"backfi/internal/fec"
)

// Modulation identifies the per-subcarrier constellation.
type Modulation int

const (
	// BPSK carries 1 bit per subcarrier.
	BPSK Modulation = iota
	// QPSK carries 2 bits per subcarrier.
	QPSK
	// QAM16 carries 4 bits per subcarrier.
	QAM16
	// QAM64 carries 6 bits per subcarrier.
	QAM64
)

// BitsPerSymbol returns the bits carried per subcarrier.
func (m Modulation) BitsPerSymbol() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("wifi: unknown modulation")
}

// String names the modulation.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// Rate describes one entry of the 802.11a/g rate set.
type Rate struct {
	// Mbps is the nominal data rate in megabits per second.
	Mbps int
	// Mod is the subcarrier modulation.
	Mod Modulation
	// Coding is the convolutional code rate.
	Coding fec.CodeRate
	// SignalBits is the 4-bit RATE field encoding (R1..R4, R1 first).
	SignalBits byte
}

// NBPSC returns coded bits per subcarrier.
func (r Rate) NBPSC() int { return r.Mod.BitsPerSymbol() }

// NCBPS returns coded bits per OFDM symbol.
func (r Rate) NCBPS() int { return r.NBPSC() * NumDataCarriers }

// NDBPS returns data bits per OFDM symbol.
func (r Rate) NDBPS() int {
	switch r.Coding {
	case fec.Rate12:
		return r.NCBPS() / 2
	case fec.Rate23:
		return r.NCBPS() * 2 / 3
	case fec.Rate34:
		return r.NCBPS() * 3 / 4
	}
	panic("wifi: unknown code rate")
}

// String formats the rate like "24 Mbps (16-QAM 1/2)".
func (r Rate) String() string {
	return fmt.Sprintf("%d Mbps (%s %s)", r.Mbps, r.Mod, r.Coding)
}

// Rates is the standard 802.11a/g rate set in increasing order.
var Rates = []Rate{
	{6, BPSK, fec.Rate12, 0b1101},
	{9, BPSK, fec.Rate34, 0b1111},
	{12, QPSK, fec.Rate12, 0b0101},
	{18, QPSK, fec.Rate34, 0b0111},
	{24, QAM16, fec.Rate12, 0b1001},
	{36, QAM16, fec.Rate34, 0b1011},
	{48, QAM64, fec.Rate23, 0b0001},
	{54, QAM64, fec.Rate34, 0b0011},
}

// RateByMbps returns the rate entry with the given nominal Mbps.
func RateByMbps(mbps int) (Rate, error) {
	for _, r := range Rates {
		if r.Mbps == mbps {
			return r, nil
		}
	}
	return Rate{}, fmt.Errorf("wifi: no such rate: %d Mbps", mbps)
}

// rateBySignalBits looks up a rate from the SIGNAL field encoding.
func rateBySignalBits(bits byte) (Rate, error) {
	for _, r := range Rates {
		if r.SignalBits == bits {
			return r, nil
		}
	}
	return Rate{}, fmt.Errorf("wifi: invalid SIGNAL rate bits %04b", bits)
}
