package wifi

import (
	"fmt"

	"backfi/internal/dsp"
	"backfi/internal/fec"
)

// DefaultScramblerSeed is the scrambler seed used when the caller does
// not care (any non-zero 7-bit value is valid; the receiver recovers it
// from the SERVICE field).
const DefaultScramblerSeed = 0x5D

// Transmit encodes a PSDU into a complete PPDU waveform at unit average
// power: STF, LTF, SIGNAL symbol, and data symbols.
func Transmit(psdu []byte, rate Rate, scramblerSeed byte) ([]complex128, error) {
	sigBits, err := buildSignalField(rate, len(psdu))
	if err != nil {
		return nil, err
	}

	// DATA field bit assembly: SERVICE (16 zero bits) | PSDU | tail (6) | pad.
	ndbps := rate.NDBPS()
	payloadBits := ServiceBits + 8*len(psdu) + fec.TailBits
	nsym := (payloadBits + ndbps - 1) / ndbps
	bits := make([]byte, nsym*ndbps)
	copy(bits[ServiceBits:], fec.BytesToBits(psdu))

	// Scramble everything, then zero the tail bits so the trellis
	// terminates (802.11-2012 18.3.5.3).
	scrambled := fec.NewScrambler(scramblerSeed).Scramble(bits)
	tailStart := ServiceBits + 8*len(psdu)
	for i := 0; i < fec.TailBits; i++ {
		scrambled[tailStart+i] = 0
	}

	coded := fec.Puncture(fec.ConvEncode(scrambled), rate.Coding)
	ncbps := rate.NCBPS()
	if len(coded) != nsym*ncbps {
		return nil, fmt.Errorf("wifi: internal coded length %d, want %d", len(coded), nsym*ncbps)
	}

	waveform := dsp.Concat(Preamble(), encodeSignalSymbol(sigBits))
	for s := 0; s < nsym; s++ {
		chunk := Interleave(coded[s*ncbps:(s+1)*ncbps], rate.NBPSC())
		points := Map(chunk, rate.Mod)
		waveform = append(waveform, assembleSymbol(points, s+1)...)
	}
	return waveform, nil
}

// PPDULen returns the total waveform length in samples for a PSDU of
// the given byte length at the given rate.
func PPDULen(psduLen int, rate Rate) int {
	payloadBits := ServiceBits + 8*psduLen + fec.TailBits
	nsym := (payloadBits + rate.NDBPS() - 1) / rate.NDBPS()
	return PreambleLen + SymbolLen + nsym*SymbolLen
}

// AirtimeSeconds returns the on-air duration of a PSDU at the rate.
func AirtimeSeconds(psduLen int, rate Rate) float64 {
	return float64(PPDULen(psduLen, rate)) / SampleRate
}
