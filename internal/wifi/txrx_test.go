package wifi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/dsp"
)

func randPSDU(r *rand.Rand, n int) []byte {
	p := make([]byte, n)
	r.Read(p)
	return p
}

// addAWGN adds complex Gaussian noise with the given per-sample power.
func addAWGN(r *rand.Rand, x []complex128, power float64) []complex128 {
	sigma := math.Sqrt(power / 2)
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] + complex(r.NormFloat64()*sigma, r.NormFloat64()*sigma)
	}
	return out
}

func TestTransmitLengthMatchesPPDULen(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, rate := range Rates {
		for _, n := range []int{1, 40, 100, 1500} {
			wave, err := Transmit(randPSDU(r, n), rate, DefaultScramblerSeed)
			if err != nil {
				t.Fatal(err)
			}
			if len(wave) != PPDULen(n, rate) {
				t.Fatalf("%v len %d: got %d want %d", rate, n, len(wave), PPDULen(n, rate))
			}
		}
	}
}

func TestTransmitUnitPower(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	rate, _ := RateByMbps(24)
	wave, err := Transmit(randPSDU(r, 500), rate, DefaultScramblerSeed)
	if err != nil {
		t.Fatal(err)
	}
	if p := dsp.Power(wave); math.Abs(p-1) > 0.1 {
		t.Fatalf("waveform power %v, want ~1", p)
	}
}

func TestTransmitRejectsBadLength(t *testing.T) {
	rate, _ := RateByMbps(6)
	if _, err := Transmit(nil, rate, DefaultScramblerSeed); err == nil {
		t.Fatal("expected error for empty PSDU")
	}
	if _, err := Transmit(make([]byte, 5000), rate, DefaultScramblerSeed); err == nil {
		t.Fatal("expected error for oversized PSDU")
	}
}

func TestCleanChannelRoundTripAllRates(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	rx := NewReceiver()
	for _, rate := range Rates {
		psdu := randPSDU(r, 300)
		wave, err := Transmit(psdu, rate, DefaultScramblerSeed)
		if err != nil {
			t.Fatal(err)
		}
		// Pad with leading/trailing silence so sync is non-trivial.
		signal := dsp.Concat(dsp.Zeros(133), wave, dsp.Zeros(50))
		got, info, err := rx.Receive(signal)
		if err != nil {
			t.Fatalf("%v: %v", rate, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("%v: PSDU corrupted", rate)
		}
		if info.Rate.Mbps != rate.Mbps {
			t.Fatalf("%v: decoded rate %v", rate, info.Rate)
		}
		if info.SNRdB < 40 {
			t.Fatalf("%v: clean-channel SNR only %v dB", rate, info.SNRdB)
		}
	}
}

func TestNoisyChannelRoundTrip(t *testing.T) {
	// 25 dB SNR should decode even 54 Mbps.
	r := rand.New(rand.NewSource(4))
	rx := NewReceiver()
	for _, mbps := range []int{6, 24, 54} {
		rate, _ := RateByMbps(mbps)
		psdu := randPSDU(r, 400)
		wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)
		noisy := addAWGN(r, dsp.Concat(dsp.Zeros(80), wave), dsp.UnDB(-25))
		got, _, err := rx.Receive(noisy)
		if err != nil {
			t.Fatalf("%d Mbps: %v", mbps, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("%d Mbps: PSDU corrupted at 25 dB SNR", mbps)
		}
	}
}

func TestLowRateSurvivesLowSNR(t *testing.T) {
	// 6 Mbps (BPSK 1/2) should decode at 8 dB SNR where 54 Mbps cannot.
	r := rand.New(rand.NewSource(5))
	rx := NewReceiver()
	rate6, _ := RateByMbps(6)
	psdu := randPSDU(r, 200)
	wave, _ := Transmit(psdu, rate6, DefaultScramblerSeed)
	ok := 0
	for trial := 0; trial < 5; trial++ {
		noisy := addAWGN(r, wave, dsp.UnDB(-8))
		got, _, err := rx.Receive(noisy)
		if err == nil && bytes.Equal(got, psdu) {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("6 Mbps decoded %d/5 at 8 dB SNR", ok)
	}
}

func TestMultipathChannelRoundTrip(t *testing.T) {
	// A 4-tap frequency-selective channel within the CP must be fully
	// equalized by the per-carrier channel estimate.
	r := rand.New(rand.NewSource(6))
	rx := NewReceiver()
	taps := []complex128{1, complex(0.4, -0.3), 0, complex(-0.2, 0.1)}
	for _, mbps := range []int{12, 48} {
		rate, _ := RateByMbps(mbps)
		psdu := randPSDU(r, 256)
		wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)
		faded := dsp.ConvolveSame(dsp.Concat(dsp.Zeros(64), wave, dsp.Zeros(16)), taps)
		noisy := addAWGN(r, faded, dsp.UnDB(-30))
		got, _, err := rx.Receive(noisy)
		if err != nil {
			t.Fatalf("%d Mbps: %v", mbps, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("%d Mbps: corrupted through multipath", mbps)
		}
	}
}

func TestCFOCorrection(t *testing.T) {
	// Apply a CFO of a few kHz (typical crystal offset) and verify the
	// receiver both corrects and reports it.
	r := rand.New(rand.NewSource(7))
	rx := NewReceiver()
	rate, _ := RateByMbps(24)
	psdu := randPSDU(r, 300)
	wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)
	cfoHz := 40e3 // ~17 ppm at 2.4 GHz
	dphi := 2 * math.Pi * cfoHz / SampleRate
	rotated := dsp.Rotate(wave, 0.7, dphi)
	noisy := addAWGN(r, rotated, dsp.UnDB(-28))
	got, info, err := rx.Receive(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, psdu) {
		t.Fatal("PSDU corrupted under CFO")
	}
	if math.Abs(info.CFO-dphi) > dphi*0.1 {
		t.Fatalf("CFO estimate %v, want %v", info.CFO, dphi)
	}
}

func TestScramblerSeedRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	rx := NewReceiver()
	rate, _ := RateByMbps(12)
	psdu := randPSDU(r, 100)
	for _, seed := range []byte{0x01, 0x33, 0x7F} {
		wave, _ := Transmit(psdu, rate, seed)
		got, _, err := rx.Receive(wave)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("seed %#x: corrupted", seed)
		}
	}
}

func TestReceiveNoPacket(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	rx := NewReceiver()
	noise := addAWGN(r, dsp.Zeros(2000), 1)
	if _, _, err := rx.Receive(noise); !IsNoPacket(err) {
		t.Fatalf("expected no-packet, got %v", err)
	}
	if _, _, err := rx.Receive(dsp.Zeros(10)); !IsNoPacket(err) {
		t.Fatal("expected no-packet for short input")
	}
}

func TestReceiveTruncatedPacket(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	rx := NewReceiver()
	rate, _ := RateByMbps(6)
	psdu := randPSDU(r, 500)
	wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)
	_, _, err := rx.Receive(wave[:len(wave)/2])
	if err == nil {
		t.Fatal("expected error for truncated packet")
	}
}

func TestSignalFieldRoundTrip(t *testing.T) {
	for _, rate := range Rates {
		for _, n := range []int{1, 77, 4095} {
			bits, err := buildSignalField(rate, n)
			if err != nil {
				t.Fatal(err)
			}
			gotRate, gotLen, err := parseSignalField(bits)
			if err != nil {
				t.Fatal(err)
			}
			if gotRate.Mbps != rate.Mbps || gotLen != n {
				t.Fatalf("round trip: %v/%d → %v/%d", rate, n, gotRate, gotLen)
			}
		}
	}
}

func TestSignalFieldParityDetection(t *testing.T) {
	rate, _ := RateByMbps(36)
	bits, _ := buildSignalField(rate, 1000)
	bits[6] ^= 1
	if _, _, err := parseSignalField(bits); err == nil {
		t.Fatal("expected parity failure")
	}
}

func TestSignalFieldBadRateBits(t *testing.T) {
	bits := make([]byte, 24)
	// RATE 0000 is invalid; fix parity so the rate check is reached.
	bits[5] = 1 // length=1
	var par byte
	for _, b := range bits[:17] {
		par ^= b
	}
	bits[17] = par
	if _, _, err := parseSignalField(bits); err == nil {
		t.Fatal("expected invalid rate bits error")
	}
}

func TestAirtimeMonotonicInLengthAndRate(t *testing.T) {
	r24, _ := RateByMbps(24)
	r54, _ := RateByMbps(54)
	if AirtimeSeconds(100, r24) >= AirtimeSeconds(1000, r24) {
		t.Fatal("airtime should grow with length")
	}
	if AirtimeSeconds(1000, r54) >= AirtimeSeconds(1000, r24) {
		t.Fatal("airtime should shrink with rate")
	}
}

func TestRateTableConsistency(t *testing.T) {
	for _, rate := range Rates {
		// NDBPS per 4 µs symbol must equal Mbps × 4.
		if rate.NDBPS() != rate.Mbps*4 {
			t.Fatalf("%v: NDBPS %d != %d", rate, rate.NDBPS(), rate.Mbps*4)
		}
	}
	if _, err := RateByMbps(7); err == nil {
		t.Fatal("expected error for unknown rate")
	}
}

func TestRxInfoEVMSanity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rx := NewReceiver()
	rate, _ := RateByMbps(24)
	psdu := randPSDU(r, 300)
	wave, _ := Transmit(psdu, rate, DefaultScramblerSeed)

	_, cleanInfo, err := rx.Receive(wave)
	if err != nil {
		t.Fatal(err)
	}
	noisy := addAWGN(r, wave, dsp.UnDB(-20))
	_, noisyInfo, err := rx.Receive(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if noisyInfo.SNRdB >= cleanInfo.SNRdB {
		t.Fatalf("noisy SNR %v should be below clean %v", noisyInfo.SNRdB, cleanInfo.SNRdB)
	}
	// EVM-derived SNR should be within a few dB of the true 20 dB.
	if noisyInfo.SNRdB < 15 || noisyInfo.SNRdB > 25 {
		t.Fatalf("estimated SNR %v dB, want ≈20", noisyInfo.SNRdB)
	}
}
