package ble

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

func TestWhitenInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	bits := make([]byte, 333)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	twice := whiten(whiten(bits))
	for i := range bits {
		if twice[i] != bits[i] {
			t.Fatalf("whitening not an involution at %d", i)
		}
	}
	// It must actually whiten: a zero stream becomes balanced-ish.
	zeros := make([]byte, 1270)
	ones := 0
	for _, b := range whiten(zeros) {
		ones += int(b)
	}
	if ones < 400 || ones > 870 {
		t.Fatalf("whitened zeros have %d ones of %d", ones, len(zeros))
	}
}

func TestCRC24DetectsErrors(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	bits := make([]byte, 200)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	c1 := crc24(bits)
	bits[57] ^= 1
	c2 := crc24(bits)
	same := true
	for i := range c1 {
		if c1[i] != c2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("CRC-24 missed a single-bit error")
	}
}

func TestGFSKConstantEnvelope(t *testing.T) {
	wave, err := Transmit([]byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range wave {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("sample %d magnitude %v — GFSK is constant envelope", i, cmplx.Abs(v))
		}
	}
}

func TestCleanRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 10, 80} {
		pdu := make([]byte, n)
		r.Read(pdu)
		wave, err := Transmit(pdu)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Receive(dsp.Concat(dsp.Zeros(137), wave, dsp.Zeros(200)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, pdu) {
			t.Fatalf("n=%d: PDU differs", n)
		}
	}
}

func TestNoisyRoundTrip(t *testing.T) {
	// The channel-select filter rejects out-of-band noise before the
	// discriminator, so the 1 MHz GFSK signal decodes well below the
	// raw-band SNR a bare discriminator would need.
	r := rand.New(rand.NewSource(4))
	pdu := make([]byte, 30)
	r.Read(pdu)
	wave, _ := Transmit(pdu)
	noise := channel.NewAWGN(r, dsp.UnDB(-12))
	got, err := Receive(noise.Add(dsp.Concat(dsp.Zeros(100), wave, dsp.Zeros(100))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pdu) {
		t.Fatal("PDU corrupted at 12 dB raw-band SNR")
	}
}

func TestPhaseRotationTolerated(t *testing.T) {
	// The discriminator differentiates phase, so a constant channel
	// rotation is invisible.
	r := rand.New(rand.NewSource(5))
	pdu := make([]byte, 20)
	r.Read(pdu)
	wave, _ := Transmit(pdu)
	rotated := dsp.Scale(wave, dsp.Phasor(1.234))
	got, err := Receive(dsp.Concat(dsp.Zeros(60), rotated, dsp.Zeros(60)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pdu) {
		t.Fatal("rotation broke the discriminator")
	}
}

func TestReceiveErrors(t *testing.T) {
	if _, err := Receive(dsp.Zeros(100)); err == nil {
		t.Fatal("expected short-stream error")
	}
	r := rand.New(rand.NewSource(6))
	noise := channel.NewAWGN(r, 1)
	if _, err := Receive(noise.Samples(3000)); err == nil {
		t.Fatal("expected AA-not-found on noise")
	}
}

func TestTransmitValidation(t *testing.T) {
	if _, err := Transmit(nil); err == nil {
		t.Fatal("expected error for empty PDU")
	}
	if _, err := Transmit(make([]byte, 256)); err == nil {
		t.Fatal("expected error for oversized PDU")
	}
}

func TestAirtime(t *testing.T) {
	// 30-byte PDU: 8+32+240+24 bits at 1 Mbps = 304 µs.
	if at := AirtimeSeconds(30); math.Abs(at-304e-6) > 1e-12 {
		t.Fatalf("airtime %v", at)
	}
}

func TestOccupiedBandwidthNarrow(t *testing.T) {
	pdu := make([]byte, 100)
	rand.New(rand.NewSource(7)).Read(pdu)
	wave, _ := Transmit(pdu)
	psd := dsp.WelchPSD(wave, 128)
	if occ := dsp.OccupiedBandwidth(psd, 0.99); occ > 0.25 {
		t.Fatalf("occupancy %v — BLE is a ~1 MHz signal in a 20 MHz band", occ)
	}
}
