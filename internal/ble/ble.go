// Package ble implements a Bluetooth Low Energy LE 1M PHY at complex
// baseband: GFSK with modulation index 0.5 (±250 kHz deviation at
// 1 Mbit/s), BT=0.5 Gaussian pulse shaping, the 8-bit preamble and
// 32-bit access address, data whitening, and CRC-24 — resampled to the
// simulator's 20 MHz rate.
//
// Together with internal/zigbee this closes the BackFi paper's
// generality claim (Sec. 1): the backscatter reader needs only a known
// excitation, whatever radio produced it.
package ble

import (
	"fmt"
	"math"

	"backfi/internal/dsp"
)

// PHY constants for LE 1M.
const (
	// BitRateHz is the LE 1M symbol rate.
	BitRateHz = 1e6
	// SampleRate is the simulation baseband rate.
	SampleRate = 20e6
	// SamplesPerBit at 20 MHz.
	SamplesPerBit = int(SampleRate / BitRateHz)
	// DeviationHz is the nominal frequency deviation (h = 0.5).
	DeviationHz = 250e3
	// AccessAddress is the advertising-channel access address.
	AccessAddress uint32 = 0x8E89BED6
	// MaxPayload is the PDU ceiling handled here.
	MaxPayload = 255
)

// gaussianTaps builds the BT=0.5 Gaussian pulse-shaping filter
// spanning ±2 bit periods.
var gaussianTaps = buildGaussian()

func buildGaussian() []float64 {
	const bt = 0.5
	span := 2 * SamplesPerBit
	sigma := math.Sqrt(math.Ln2) / (2 * math.Pi * bt) // in bit periods
	taps := make([]float64, 2*span+1)
	var sum float64
	for i := range taps {
		t := float64(i-span) / float64(SamplesPerBit)
		taps[i] = math.Exp(-t * t / (2 * sigma * sigma))
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// whiten XORs the BLE-style whitening stream (7-bit LFSR, polynomial
// x^7+x^4+1, channel-37 seed) into bits. Whitening is an involution:
// applying it twice recovers the input, so the same function
// dewhitens.
func whiten(bits []byte) []byte {
	state := byte(0x65) // 1 | channel index 37
	out := make([]byte, len(bits))
	for i, b := range bits {
		w := state >> 6 & 1
		out[i] = b ^ w
		state = (state<<1 | w) & 0x7F
		if w == 1 {
			state ^= 0x10 // x^4 tap
		}
	}
	return out
}

// crc24 computes the BLE CRC-24 (poly 0x00065B, init 0x555555) over
// bits LSB-first, returning 24 bits LSB-first.
func crc24(bits []byte) []byte {
	state := uint32(0x555555)
	for _, b := range bits {
		fb := (state >> 23 & 1) ^ uint32(b&1)
		state = (state << 1) & 0xFFFFFF
		if fb == 1 {
			state ^= 0x00065B
		}
	}
	out := make([]byte, 24)
	for i := 0; i < 24; i++ {
		out[i] = byte(state >> uint(23-i) & 1)
	}
	return out
}

// bitsLSB unpacks bytes LSB-first (BLE air order).
func bitsLSB(data []byte) []byte {
	out := make([]byte, 0, 8*len(data))
	for _, b := range data {
		for i := 0; i < 8; i++ {
			out = append(out, b>>uint(i)&1)
		}
	}
	return out
}

// Transmit modulates a PDU: preamble (0xAA), access address, whitened
// PDU+CRC, GFSK at unit average power.
func Transmit(pdu []byte) ([]complex128, error) {
	if len(pdu) < 1 || len(pdu) > MaxPayload {
		return nil, fmt.Errorf("ble: PDU length %d out of [1,%d]", len(pdu), MaxPayload)
	}
	var bits []byte
	bits = append(bits, bitsLSB([]byte{0xAA})...)
	aa := []byte{byte(AccessAddress & 0xFF), byte(AccessAddress >> 8 & 0xFF), byte(AccessAddress >> 16 & 0xFF), byte(AccessAddress >> 24)}
	bits = append(bits, bitsLSB(aa)...)
	body := bitsLSB(pdu)
	body = append(body, crc24(body)...)
	bits = append(bits, whiten(body)...)
	return modulateGFSK(bits), nil
}

// modulateGFSK integrates Gaussian-shaped frequency pulses into phase.
func modulateGFSK(bits []byte) []complex128 {
	n := len(bits) * SamplesPerBit
	freq := make([]float64, n)
	for i, b := range bits {
		v := 1.0
		if b == 0 {
			v = -1
		}
		for k := 0; k < SamplesPerBit; k++ {
			freq[i*SamplesPerBit+k] = v
		}
	}
	// Gaussian filter the NRZ frequency track.
	shaped := make([]float64, n)
	half := len(gaussianTaps) / 2
	for i := range shaped {
		var acc float64
		for j, tp := range gaussianTaps {
			if idx := i + j - half; idx >= 0 && idx < n {
				acc += tp * freq[idx]
			}
		}
		shaped[i] = acc
	}
	// Integrate to phase: dφ = 2π·Δf·dt.
	out := make([]complex128, n)
	phase := 0.0
	dt := 1.0 / SampleRate
	for i := range out {
		phase += 2 * math.Pi * DeviationHz * shaped[i] * dt
		out[i] = dsp.Phasor(phase)
	}
	return out
}

// rxFilter is the receive pre-filter: a windowed-sinc low-pass whose
// passband covers the GFSK deviation plus Gaussian spread (≈±700 kHz)
// and rejects out-of-channel noise before the discriminator — a 10+ dB
// sensitivity improvement over discriminating the raw 20 MHz band.
var rxFilter = dsp.LowPassFIR(700e3/SampleRate, 41)

// Receive demodulates: channel-select filtering, frequency
// discriminator, bit decisions, access address correlation,
// dewhitening, CRC check.
func Receive(samples []complex128) ([]byte, error) {
	if len(samples) < 48*SamplesPerBit {
		return nil, fmt.Errorf("ble: stream too short")
	}
	filtered := dsp.ConvolveSame(samples, rxFilter)
	// Discriminator: instantaneous frequency from phase differences.
	disc := make([]float64, len(filtered)-1)
	for i := range disc {
		d := filtered[i+1] * complexConj(filtered[i])
		disc[i] = math.Atan2(imag(d), real(d))
	}
	// Integrate per candidate bit alignment; search the access address.
	aaBits := bitsLSB([]byte{byte(AccessAddress & 0xFF), byte(AccessAddress >> 8 & 0xFF), byte(AccessAddress >> 16 & 0xFF), byte(AccessAddress >> 24)})
	bestOff, bestScore := -1, 0.0
	for off := 0; off < SamplesPerBit; off++ {
		bits := sliceBits(disc, off)
		for pos := 0; pos+len(aaBits) <= len(bits); pos++ {
			score := 0
			for i, a := range aaBits {
				if bits[pos+i] == a {
					score++
				}
			}
			if float64(score) > bestScore {
				bestScore = float64(score)
				bestOff = off*1000000 + pos // pack (offset, position)
			}
		}
	}
	if bestOff < 0 || bestScore < float64(len(aaBits)-1) {
		return nil, fmt.Errorf("ble: access address not found (best %d/32)", int(bestScore))
	}
	off, pos := bestOff/1000000, bestOff%1000000
	bits := sliceBits(disc, off)
	payloadBits := bits[pos+len(aaBits):]
	// Dewhiten everything after the access address.
	clear := whiten(payloadBits) // whitening is an XOR stream: same op
	// We don't know the PDU length a priori at this layer; try every
	// byte length until the CRC matches (the caller's framing usually
	// knows, but this keeps the receiver self-contained).
	for n := 1; n <= MaxPayload && 8*n+24 <= len(clear); n++ {
		body := clear[:8*n]
		crc := clear[8*n : 8*n+24]
		want := crc24(body)
		ok := true
		for i := range want {
			if crc[i] != want[i] {
				ok = false
				break
			}
		}
		if ok {
			out := make([]byte, n)
			for i := 0; i < 8*n; i++ {
				if body[i] == 1 {
					out[i/8] |= 1 << uint(i%8)
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("ble: no CRC-valid PDU length")
}

// sliceBits integrates the discriminator over the central half of each
// bit period at the given sample offset and thresholds at zero. The
// edges of a bit carry the Gaussian inter-symbol transitions, so
// excluding them roughly doubles the decision margin on isolated bits.
func sliceBits(disc []float64, off int) []byte {
	var out []byte
	lo, hi := SamplesPerBit/4, 3*SamplesPerBit/4
	for p := off; p+SamplesPerBit <= len(disc); p += SamplesPerBit {
		var acc float64
		for k := lo; k < hi; k++ {
			acc += disc[p+k]
		}
		if acc > 0 {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

func complexConj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// AirtimeSeconds returns the on-air duration of a PDU.
func AirtimeSeconds(pduLen int) float64 {
	bits := 8 + 32 + 8*pduLen + 24
	return float64(bits) / BitRateHz
}
