package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(t *testing.T, n int) (*ring, []string) {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		addrs = append(addrs, fmt.Sprintf("10.0.0.%d:9000", i+1))
	}
	r, err := newRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r, addrs
}

func TestRingValidation(t *testing.T) {
	if _, err := newRing([]string{"a:1", "a:1"}, 8); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if _, err := newRing([]string{"a:1", ""}, 8); err == nil {
		t.Fatal("empty address accepted")
	}
	r, err := newRing(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.owner("s"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestRingDeterminismAndBalance pins the routing contract: ownership
// is a pure function of (member set, session id) — identical across
// independently-built rings — and 64 vnodes spread sessions across a
// 3-node cluster without starving any node.
func TestRingDeterminismAndBalance(t *testing.T) {
	r1, addrs := ringNodes(t, 3)
	r2, _ := ringNodes(t, 3)
	counts := map[string]int{}
	const sessions = 3000
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("sess-%04d", i)
		a, ok := r1.owner(id)
		b, _ := r2.owner(id)
		if !ok || a != b {
			t.Fatalf("session %s: owners %q vs %q", id, a, b)
		}
		counts[a]++
	}
	for _, a := range addrs {
		if frac := float64(counts[a]) / sessions; frac < 0.15 {
			t.Errorf("node %s owns %.1f%% of sessions — ring unbalanced (%v)", a, 100*frac, counts)
		}
	}
}

// TestRingRemoveOnlyRemapsVictims is the consistency half: removing a
// node must not move any session owned by a survivor, and every
// orphaned session must land on some survivor. Re-adding the node
// restores the original placement exactly.
func TestRingRemoveOnlyRemapsVictims(t *testing.T) {
	r, addrs := ringNodes(t, 3)
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("sess-%04d", i)
		before[id], _ = r.owner(id)
	}
	dead := addrs[1]
	r.remove(dead)
	moved := 0
	for id, was := range before {
		now, ok := r.owner(id)
		if !ok || now == dead {
			t.Fatalf("session %s routed to removed node (%q, ok=%v)", id, now, ok)
		}
		if was != dead && now != was {
			t.Fatalf("session %s moved %s -> %s though its owner survived", id, was, now)
		}
		if was == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no sessions — test vacuous")
	}
	r.add(dead)
	for id, was := range before {
		if now, _ := r.owner(id); now != was {
			t.Fatalf("session %s at %s after rejoin, originally %s", id, now, was)
		}
	}
}
