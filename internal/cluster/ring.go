// Package cluster routes BackFi serving sessions across a set of
// backfi-readerd nodes (DESIGN.md §5j): a consistent-hash ring pins
// each session id to one node, node failure re-routes the session to a
// survivor, and the serve-layer handoff snapshot makes the move
// invisible — the survivor continues the session's byte-identical
// decode stream with no duplicate or lost frames.
package cluster

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over node addresses. Each address
// contributes vnodes points (FNV-1a 64 over "addr#i"); a session id
// hashes to the first point clockwise. Membership changes only remap
// the sessions whose arc moved — sessions on surviving nodes keep
// their owner, which is what makes failover cheap and deterministic.
//
// The ring is a value-semantics helper owned by Client under its
// mutex; it is not safe for unsynchronized concurrent use.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	addr string
}

// fnv64a is FNV-1a 64 finished with murmur3's 64-bit mixer. Bare FNV
// clusters badly on the near-identical short strings rings see
// ("host:port#0", "host:port#1", ...) — without the finalizer a
// 3-node ring routed >90% of sessions to one node. Deterministic
// across processes, which is what routing needs.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// newRing builds a ring over addrs. vnodes <= 0 defaults to 64 points
// per node — enough that a 3-node ring is balanced to within a few
// percent while membership changes stay O(100) points.
func newRing(addrs []string, vnodes int) (*ring, error) {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{vnodes: vnodes}
	seen := map[string]bool{}
	for _, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if seen[a] {
			return nil, fmt.Errorf("cluster: duplicate node address %q", a)
		}
		seen[a] = true
		r.add(a)
	}
	return r, nil
}

func (r *ring) add(addr string) {
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{fnv64a(fmt.Sprintf("%s#%d", addr, i)), addr})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on address so equal hashes order deterministically.
		return r.points[i].addr < r.points[j].addr
	})
}

func (r *ring) remove(addr string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.addr != addr {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the node owning session, false when the ring is empty.
// Pure function of (membership, session): every client that agrees on
// the live node set routes the session identically.
func (r *ring) owner(session string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := fnv64a(session)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr, true
}

// nodes returns the distinct member addresses, sorted.
func (r *ring) nodes() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	sort.Strings(out)
	return out
}
