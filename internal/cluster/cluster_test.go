package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"backfi/internal/core"
	"backfi/internal/obs"
	"backfi/internal/serve"
)

// clusterNodeConfig is the shared node template: every node must run
// the same serving config for routing to be state-free, and Handoff
// must be on for failover to carry state.
func clusterNodeConfig() serve.Config {
	link := core.DefaultLinkConfig(2.5)
	link.Seed = 11
	return serve.Config{
		Addr:       "localhost:0",
		Link:       link,
		Shards:     2,
		MaxRetries: 2,
		Handoff:    true,
	}
}

func startNode(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

func clusterTemplate() serve.ClientConfig {
	return serve.ClientConfig{
		Proto:      "binary",
		IOTimeout:  10 * time.Second,
		MaxRedials: 2,
		RedialBase: time.Millisecond,
		RedialMax:  2 * time.Millisecond,
	}
}

func framePayload(session string, i int) []byte {
	p := []byte(fmt.Sprintf("%s/%06d/", session, i))
	for len(p) < 24 {
		p = append(p, byte(i))
	}
	return p[:24]
}

// TestClusterFailoverByteIdentical is the tentpole's acceptance test
// in miniature: sessions spread over three nodes, one node is hard-
// killed mid-stream, every session heals onto a survivor, and each
// session's full response stream is byte-identical to a single
// uninterrupted control node.
func TestClusterFailoverByteIdentical(t *testing.T) {
	cfg := clusterNodeConfig()
	control := startNode(t, cfg)
	cc, err := serve.DialClient(serve.ClientConfig{Addr: control.Addr(), Proto: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	nodes := []*serve.Server{startNode(t, cfg), startNode(t, cfg), startNode(t, cfg)}
	addrs := make([]string, len(nodes))
	byAddr := map[string]*serve.Server{}
	for i, n := range nodes {
		addrs[i] = n.Addr()
		byAddr[n.Addr()] = n
	}
	flight := obs.NewFlightRecorder(0)
	cl, err := New(Config{Addrs: addrs, Client: clusterTemplate(), Flight: flight, TraceSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sessions := make([]string, 6)
	for i := range sessions {
		sessions[i] = fmt.Sprintf("fleet-%02d", i)
	}
	const frames, cut = 10, 4
	want := map[string][]string{}
	got := map[string][]string{}
	decodeRound := func(from, to int) {
		for _, id := range sessions {
			for i := from; i < to; i++ {
				cr, err := cc.Decode(id, framePayload(id, i))
				if err != nil {
					t.Fatalf("control %s frame %d: %v", id, i, err)
				}
				gr, err := cl.Decode(id, framePayload(id, i))
				if err != nil {
					t.Fatalf("cluster %s frame %d: %v", id, i, err)
				}
				wb, _ := json.Marshal(cr)
				gb, _ := json.Marshal(gr)
				want[id] = append(want[id], string(wb))
				got[id] = append(got[id], string(gb))
			}
		}
	}
	decodeRound(0, cut)

	// Hard-kill the node owning the first session (no drain — the
	// clients see a dead peer, exactly like a crashed process).
	victim, ok := cl.Owner(sessions[0])
	if !ok {
		t.Fatal("no owner")
	}
	victimSessions := 0
	for _, id := range sessions {
		if o, _ := cl.Owner(id); o == victim {
			victimSessions++
		}
	}
	byAddr[victim].Kill()
	decodeRound(cut, frames)

	for _, id := range sessions {
		if len(got[id]) != frames {
			t.Fatalf("%s: %d frames, want %d", id, len(got[id]), frames)
		}
		for i := range want[id] {
			if got[id][i] != want[id][i] {
				t.Fatalf("%s frame %d diverged from control:\ngot  %s\nwant %s",
					id, i, got[id][i], want[id][i])
			}
		}
	}
	if up := cl.UpNodes(); len(up) != 2 {
		t.Fatalf("up nodes after kill = %v", up)
	}
	if o, _ := cl.Owner(sessions[0]); o == victim {
		t.Fatal("killed node still owns sessions")
	}

	// The black box tells the failover story: one node_down, one
	// reroute + handoff per session the victim owned, and each
	// session's episode events share a nonzero trace id so the kill,
	// re-route, and handoff line up on one timeline.
	if n := flight.Count(obs.FlightNodeDown); n != 1 {
		t.Errorf("node_down events = %d, want 1", n)
	}
	if n := flight.Count(obs.FlightReroute); n != victimSessions {
		t.Errorf("reroute events = %d, want %d (victim owned that many sessions)", n, victimSessions)
	}
	if n := flight.Count(obs.FlightHandoffInstall); n != victimSessions {
		t.Errorf("handoff_install events = %d, want %d", n, victimSessions)
	}
	reroutes := map[uint64]bool{}
	installs := map[uint64]bool{}
	var downTrace uint64
	for _, ev := range flight.Events() {
		if ev.Trace == 0 {
			t.Fatalf("%s event without a trace id: %+v", ev.Kind, ev)
		}
		switch ev.Kind {
		case obs.FlightReroute:
			reroutes[ev.Trace] = true
		case obs.FlightHandoffInstall:
			installs[ev.Trace] = true
		case obs.FlightNodeDown:
			downTrace = ev.Trace
		}
	}
	if !reroutes[downTrace] || !installs[downTrace] {
		t.Errorf("node_down trace %x has no linked reroute/handoff_install event", downTrace)
	}
	for tr := range reroutes {
		if !installs[tr] {
			t.Errorf("reroute trace %x has no matching handoff_install", tr)
		}
	}
}

// TestClusterRejoinMigratesBack drives the rebalance half: a node
// marked down (spuriously — the process is fine) loses its sessions to
// survivors; after a health probe re-admits it, its sessions migrate
// back with their snapshots and the stream stays byte-identical to the
// control node throughout.
func TestClusterRejoinMigratesBack(t *testing.T) {
	cfg := clusterNodeConfig()
	control := startNode(t, cfg)
	cc, err := serve.DialClient(serve.ClientConfig{Addr: control.Addr(), Proto: "binary"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	nodes := []*serve.Server{startNode(t, cfg), startNode(t, cfg), startNode(t, cfg)}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.Addr()
	}
	flight := obs.NewFlightRecorder(0)
	cl, err := New(Config{Addrs: addrs, Client: clusterTemplate(), Flight: flight, TraceSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const id = "boomerang"
	check := func(i int) {
		cr, err := cc.Decode(id, framePayload(id, i))
		if err != nil {
			t.Fatalf("control frame %d: %v", i, err)
		}
		gr, err := cl.Decode(id, framePayload(id, i))
		if err != nil {
			t.Fatalf("cluster frame %d: %v", i, err)
		}
		wb, _ := json.Marshal(cr)
		gb, _ := json.Marshal(gr)
		if string(wb) != string(gb) {
			t.Fatalf("frame %d diverged:\ngot  %s\nwant %s", i, gb, wb)
		}
	}
	for i := 0; i < 3; i++ {
		check(i)
	}
	home, _ := cl.Owner(id)

	// Spurious down-mark: routing abandons the node though it is alive.
	cl.mu.Lock()
	cl.markDown(home, id, 0, errors.New("injected"))
	cl.mu.Unlock()
	for i := 3; i < 6; i++ {
		check(i)
	}
	if away, _ := cl.Owner(id); away == home {
		t.Fatal("session did not move off the down node")
	}

	// The probe re-admits it; ownership and state both return.
	if revived := cl.ProbeOnce(); len(revived) != 1 || revived[0] != home {
		t.Fatalf("ProbeOnce revived %v, want [%s]", revived, home)
	}
	if back, _ := cl.Owner(id); back != home {
		t.Fatalf("owner after rejoin = %s, want %s", back, home)
	}
	for i := 6; i < 9; i++ {
		check(i)
	}
	if n := flight.Count(obs.FlightNodeUp); n != 1 {
		t.Errorf("node_up events = %d, want 1", n)
	}
	// Two migrations happened (away and back), each carrying state.
	if n := flight.Count(obs.FlightHandoffInstall); n != 2 {
		t.Errorf("handoff_install events = %d, want 2", n)
	}
	// Final stats agree with the uninterrupted control session.
	cstats, err := cc.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	gstats, err := cl.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	if *cstats != *gstats {
		t.Fatalf("stats diverged:\ngot  %+v\nwant %+v", gstats, cstats)
	}
}

// TestClusterAllNodesDown pins the terminal error: when every node is
// gone the client fails typed, not hung.
func TestClusterAllNodesDown(t *testing.T) {
	cfg := clusterNodeConfig()
	n1, n2 := startNode(t, cfg), startNode(t, cfg)
	cl, err := New(Config{Addrs: []string{n1.Addr(), n2.Addr()}, Client: clusterTemplate()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Decode("d", framePayload("d", 0)); err != nil {
		t.Fatal(err)
	}
	n1.Kill()
	n2.Kill()
	if _, err := cl.Decode("d", framePayload("d", 1)); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("want ErrNoNodes, got %v", err)
	}
}
