package cluster

import (
	"errors"
	"fmt"
	"sync"

	"backfi/internal/obs"
	"backfi/internal/serve"
)

// ErrNoNodes is returned when every cluster node is down (or the
// member list was empty to begin with). Wrapped in the returned
// errors; match with errors.Is.
var ErrNoNodes = errors.New("cluster: no live nodes")

// Config configures a cluster Client.
type Config struct {
	// Addrs is the static member list (host:port per backfi-readerd
	// node). Membership is fixed for the Client's lifetime; health
	// state decides which members are routable.
	Addrs []string
	// VNodes is the consistent-hash points per node (<= 0 means 64).
	VNodes int
	// Client is the per-node serve client template; Addr is overwritten
	// with each node's address. Keep the redial budget small — it is
	// the failover detection latency for a killed node.
	Client serve.ClientConfig
	// Flight records the cluster's failover events (node_down, node_up,
	// reroute, handoff_install). Events of one failover episode share a
	// trace id derived from (TraceSeed, session, frame), so a kill, the
	// re-route it forced, and the handoff that healed it line up under
	// one id next to the frame's decode spans.
	Flight *obs.FlightRecorder
	// TraceSeed salts the episode trace ids; use the tracer's seed so
	// flight events and trace spans share the same id space.
	TraceSeed int64
}

// node is one member: its lazily-dialed serve client plus health.
// The client survives the node being marked down — its session state
// (breakers, cached handoff snapshots) is what heals sessions onto
// survivors.
type node struct {
	addr string
	c    *serve.Client
	up   bool
}

// route is one session's placement: the node it last decoded on and
// how many decode calls the cluster has made for it (the episode
// trace-id index).
type route struct {
	addr   string
	frames int
}

// Client routes sessions across the cluster. One Client serializes its
// calls (mirroring serve.Client's one-connection semantics); run
// several for parallel load.
//
// The healing invariant (DESIGN.md §5j): the cached handoff snapshot
// always describes the session as of its last successful frame, so
// installing it on any node and retrying the in-flight frame continues
// the exact stream an uninterrupted node would have produced —
// at-least-once transport retries collapse to exactly-once decode
// semantics because the replacement state never includes the frame
// being retried.
type Client struct {
	cfg Config

	mu     sync.Mutex
	ring   *ring
	nodes  map[string]*node
	routes map[string]*route
	closed bool
}

// New builds a cluster Client over the member list. Nodes are dialed
// lazily on first use, so New succeeds even while nodes are still
// booting.
func New(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("%w: empty member list", ErrNoNodes)
	}
	r, err := newRing(cfg.Addrs, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, ring: r, nodes: map[string]*node{}, routes: map[string]*route{}}
	for _, a := range cfg.Addrs {
		c.nodes[a] = &node{addr: a, up: true}
	}
	return c, nil
}

// Close closes every node client.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	var first error
	for _, n := range c.nodes {
		if n.c != nil {
			if err := n.c.Close(); err != nil && first == nil {
				first = err
			}
			n.c = nil
		}
	}
	return first
}

// UpNodes returns the currently-routable member addresses, sorted.
func (c *Client) UpNodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.nodes()
}

// Owner reports which node currently owns session (false when the
// cluster has no live nodes). Deterministic across clients that agree
// on the live set.
func (c *Client) Owner(session string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.owner(session)
}

// nodeFailure reports whether err means the node itself is unusable
// (transport dead beyond the redial budget, or its circuit open) as
// opposed to the server answering unhappily, which must not trigger
// failover.
func nodeFailure(err error) bool {
	return errors.Is(err, serve.ErrConnBroken) || errors.Is(err, serve.ErrBreakerOpen)
}

// client returns addr's serve client, dialing on first use. Caller
// holds mu.
func (c *Client) client(addr string) (*serve.Client, error) {
	n := c.nodes[addr]
	if n.c == nil {
		cc := c.cfg.Client
		cc.Addr = addr
		sc, err := serve.DialClient(cc)
		if err != nil {
			return nil, err
		}
		n.c = sc
	}
	return n.c, nil
}

// markDown removes addr from the ring and records the event. Caller
// holds mu. The node's client object is retained: its cached handoff
// snapshots heal the node's sessions onto survivors.
func (c *Client) markDown(addr, session string, trace uint64, cause error) {
	n := c.nodes[addr]
	if !n.up {
		return
	}
	n.up = false
	c.ring.remove(addr)
	c.cfg.Flight.Record(obs.FlightNodeDown, session, fmt.Sprintf("%s: %v", addr, cause), trace)
}

// ProbeOnce pings every down node once and re-admits the ones that
// answer, returning their addresses. Sessions the failover moved away
// re-route back on their next call; the migration path re-installs
// their latest snapshot, so a rejoined (possibly restarted and empty)
// node continues each stream exactly where the survivor left it.
func (c *Client) ProbeOnce() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var revived []string
	for _, addr := range c.cfg.Addrs {
		n := c.nodes[addr]
		if n.up {
			continue
		}
		// The retained client's connection is dead; redial from scratch.
		if n.c != nil {
			_ = n.c.Close()
			n.c = nil
		}
		cc, err := c.client(addr)
		if err != nil {
			continue
		}
		if err := cc.Ping(); err != nil {
			continue
		}
		n.up = true
		c.ring.add(addr)
		c.cfg.Flight.Record(obs.FlightNodeUp, "", addr, 0)
		revived = append(revived, addr)
	}
	return revived
}

// place routes session onto the ring's current owner, migrating its
// handoff snapshot when the owner differs from where the session last
// decoded (failover re-route or rebalance after a node rejoined).
// Returns the owner's client. Caller holds mu.
func (c *Client) place(session string, rt *route, trace uint64) (*serve.Client, string, error) {
	for {
		owner, ok := c.ring.owner(session)
		if !ok {
			return nil, "", fmt.Errorf("%w: session %q unroutable", ErrNoNodes, session)
		}
		cc, err := c.client(owner)
		if err != nil {
			c.markDown(owner, session, trace, err)
			continue
		}
		if rt.addr == owner || rt.addr == "" {
			return cc, owner, nil
		}
		// The session moved. Carry its state: the previous node's client
		// holds the snapshot of the last successful frame even if that
		// node is gone.
		var snap *serve.HandoffState
		if prev := c.nodes[rt.addr]; prev != nil && prev.c != nil {
			snap = prev.c.LastHandoff(session)
		}
		c.cfg.Flight.Record(obs.FlightReroute, session,
			fmt.Sprintf("%s -> %s", rt.addr, owner), trace)
		if snap != nil {
			if _, err := cc.InstallHandoff(session, snap); err != nil {
				if nodeFailure(err) {
					c.markDown(owner, session, trace, err)
					continue
				}
				return nil, "", fmt.Errorf("cluster: handoff %q to %s: %w", session, owner, err)
			}
			c.cfg.Flight.Record(obs.FlightHandoffInstall, session,
				fmt.Sprintf("seq %d on %s", snap.Seq, owner), trace)
		}
		rt.addr = owner
		return cc, owner, nil
	}
}

// Decode offers one frame of session to the cluster, healing onto a
// survivor (snapshot install + deterministic retry of this frame) when
// the owning node fails mid-call.
func (c *Client) Decode(session string, payload []byte) (*serve.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, serve.ErrClientClosed
	}
	rt := c.routes[session]
	if rt == nil {
		rt = &route{}
		c.routes[session] = rt
	}
	trace := obs.TraceID(c.cfg.TraceSeed, session, rt.frames)
	rt.frames++
	for {
		cc, owner, err := c.place(session, rt, trace)
		if err != nil {
			return nil, err
		}
		resp, err := cc.Decode(session, payload)
		if err == nil {
			rt.addr = owner
			return resp, nil
		}
		if !nodeFailure(err) {
			return resp, err
		}
		c.markDown(owner, session, trace, err)
		// Loop: place() re-routes to a survivor, installs the snapshot
		// of the last successful frame, and this frame is retried there.
	}
}

// Stats fetches session stats from the session's current owner.
func (c *Client) Stats(session string) (*serve.SessionStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, serve.ErrClientClosed
	}
	rt := c.routes[session]
	if rt == nil {
		rt = &route{}
		c.routes[session] = rt
	}
	cc, _, err := c.place(session, rt, 0)
	if err != nil {
		return nil, err
	}
	return cc.Stats(session)
}
