package experiments

import (
	"fmt"

	"backfi/internal/baseline"
	"backfi/internal/parallel"
	"backfi/internal/tag"
)

// HeadlineResult captures the paper's abstract-level claims: BackFi's
// throughput at 1 m and 5 m, and the prior WiFi-backscatter system's
// throughput at its best (≤1 m) for comparison.
type HeadlineResult struct {
	BackFiAt1mBps  float64
	Config1m       string
	BackFiAt5mBps  float64
	Config5m       string
	PriorAt05mBps  float64
	PriorAt3mBps   float64
	ToneResidualDB float64 // single-tap cancellation residual on wideband (why RFID readers can't do this)
}

// SpeedupAt1m returns BackFi's factor over the prior system.
func (h *HeadlineResult) SpeedupAt1m() float64 {
	if h.PriorAt05mBps <= 0 {
		return 0
	}
	return h.BackFiAt1mBps / h.PriorAt05mBps
}

// Headline measures the comparison. Its five independent measurements
// each fill their own fields, so they run concurrently under
// opt.Workers.
func Headline(opt Options) (*HeadlineResult, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("headline")
	defer sp.End()
	res := &HeadlineResult{}
	tasks := []func() error{
		func() (err error) {
			res.BackFiAt1mBps, res.Config1m, err = maxThroughputAt(1, tag.DefaultPreambleChips, opt, 7001)
			return err
		},
		func() (err error) {
			res.BackFiAt5mBps, res.Config5m, err = maxThroughputAt(5, tag.DefaultPreambleChips, opt, 7002)
			return err
		},
		func() error {
			res.PriorAt05mBps = baseline.SimulatePriorWiFi(baseline.DefaultPriorWiFiConfig(0.5), 4000, opt.Seed).ThroughputBps
			return nil
		},
		func() error {
			res.PriorAt3mBps = baseline.SimulatePriorWiFi(baseline.DefaultPriorWiFiConfig(3), 4000, opt.Seed).ThroughputBps
			return nil
		},
		func() error {
			res.ToneResidualDB = baseline.WidebandResidualDB(opt.Seed, 10, -20)
			return nil
		},
	}
	if err := parallel.ForEachErr(len(tasks), opt.Workers, func(i int) error { return tasks[i]() }); err != nil {
		return nil, err
	}
	return res, nil
}

// RenderHeadline prints the comparison.
func RenderHeadline(h *HeadlineResult) string {
	return fmt.Sprintf(`BackFi @1 m:  %.2f Mbps (%s)
BackFi @5 m:  %.2f Mbps (%s)
Prior WiFi backscatter @0.5 m: %.3f kbps
Prior WiFi backscatter @3 m:   %.3f kbps
BackFi/prior speedup @≈1 m:    %.0f×
Tone-style single-tap cancellation residual on a WiFi excitation: %.1f dB above the noise floor
`,
		h.BackFiAt1mBps/1e6, h.Config1m,
		h.BackFiAt5mBps/1e6, h.Config5m,
		h.PriorAt05mBps/1e3, h.PriorAt3mBps/1e3,
		h.SpeedupAt1m(), h.ToneResidualDB)
}
