package experiments

import (
	"context"
	"errors"
	"fmt"

	"backfi/internal/core"
	"backfi/internal/energy"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/parallel"
	"backfi/internal/serve"
)

// WildRow is one (mobility severity, harvest severity) cell of the
// "in the wild" sweep (DESIGN.md §5k): a tag that moves (Clarke-model
// Doppler fading plus moderate RF impairments, fault.Wild) and lives
// off a scarce ambient harvest (the serving supercap state machine),
// served end to end by an energy-aware reader daemon.
type WildRow struct {
	// MobilitySeverity is the fault.Wild knob in [0,1]; 1 is ~2 m/s
	// (brisk walking) plus Standard(0.5) impairments.
	MobilitySeverity float64
	// HarvestSeverity is the serve.Config.EnergySeverity knob in [0,1];
	// 0 keeps every harvest slot plentiful, 1 makes them all scarce.
	HarvestSeverity float64
	// DeliveryRate is delivered frames over offered frames. A frame is
	// offered once; dark polls are retried and do not count as offers.
	DeliveryRate float64
	// DarkPollFrac is the fraction of all polls (dark probes + live
	// decodes) the daemon answered tag_dark.
	DarkPollFrac float64
	// DarkEpisodes / Wakes count the flight recorder's live→dark
	// transitions and recoveries across the cell's sessions.
	DarkEpisodes int
	Wakes        int
	// JoulesPerDeliveredBit is the tags' total transmit energy (EPB
	// model power × modulation airtime, exactly what the daemon drains
	// from each tank) over the delivered payload bits.
	JoulesPerDeliveredBit float64
}

// Wild runs the sweep: each cell boots an in-process energy-aware
// reader daemon whose sessions carry a partially banked supercap, and
// drives a closed-loop workload that retries through dark episodes.
// The axes stress the two ways a deployed tag goes quiet — fading it
// can't control and energy it doesn't have — and the row reports both
// what survived (delivery) and what it cost (joules per delivered
// bit). Options.Faults is ignored: the sweep owns the impairment axis.
func Wild(opt Options) ([]WildRow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("wild")
	defer sp.End()

	mobilities := []float64{0, 0.5, 1}
	harvests := []float64{0, 0.9, 1}
	const distance = 1.0
	const sessions = 2
	const payloadBytes = 24
	// Enough frames that a severity-1 harvest drains the cold-start
	// bank below the sleep threshold mid-soak (~22 frames at ~1 nJ per
	// frame), so the dark/wake cycle is exercised, not just configured.
	frames := opt.Trials * 8
	if frames < 24 {
		frames = 24
	}

	rows := make([]WildRow, len(mobilities)*len(harvests))
	err := parallel.ForEachErr(len(rows), opt.Workers, func(k int) error {
		mob := mobilities[k/len(harvests)]
		hs := harvests[k%len(harvests)]
		row, err := wildCell(mob, hs, sessions, frames, payloadBytes, distance, opt.Seed+int64(k)*101)
		if err != nil {
			return fmt.Errorf("wild cell mob=%.2g harvest=%.2g: %w", mob, hs, err)
		}
		rows[k] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// wildCell serves one grid point. The daemon is real (TCP, shards,
// batches) but the outcome is deterministic in the seed: the serving
// determinism contract makes responses independent of shard count and
// scheduling, and the dark/wake schedule is a pure function of the
// per-session harvest trace.
func wildCell(mob, harvest float64, sessions, frames, payloadBytes int, distance float64, seed int64) (*WildRow, error) {
	link := core.DefaultLinkConfig(distance)
	link.Seed = seed
	if mob > 0 {
		p := fault.Wild(mob)
		link.Faults = &p
	}
	// Cold start: the bank opens 60% charged so a scarce harvest drains
	// it inside the soak instead of coasting on the full-capacity seed.
	tank := serve.DefaultEnergyTank()
	tank.InitialJ = 0.6 * tank.CapacityJ
	flight := obs.NewFlightRecorder(0)
	srv, err := serve.NewServer(serve.Config{
		Addr:           "localhost:0",
		Link:           link,
		CoherenceRho:   0.95,
		MaxRetries:     2,
		Shards:         2,
		Energy:         true,
		EnergySeverity: harvest,
		EnergyTank:     &tank,
		Flight:         flight,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Shutdown(context.Background())

	delivered, darkPolls, livePolls := 0, 0, 0
	var airtimeSec float64
	for s := 0; s < sessions; s++ {
		c, err := serve.DialClient(serve.ClientConfig{Addr: srv.Addr(), Proto: "binary"})
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("wild-%03d", s)
		for i := 0; i < frames; i++ {
			p := []byte(fmt.Sprintf("%s/%06d/", id, i))
			for len(p) < payloadBytes {
				p = append(p, byte(i))
			}
			var resp *serve.Response
			for attempt := 0; ; attempt++ {
				resp, err = c.Decode(id, p[:payloadBytes])
				if errors.Is(err, serve.ErrTagDark) {
					darkPolls++
					if attempt < 400 {
						continue
					}
					return nil, fmt.Errorf("session %s frame %d: tag never woke in 400 polls", id, i)
				}
				break
			}
			if err != nil {
				c.Close()
				return nil, err
			}
			livePolls++
			if resp.Delivered {
				delivered++
			}
		}
		st, err := c.Stats(id)
		c.Close()
		if err != nil {
			return nil, err
		}
		airtimeSec += st.AirtimeSec
	}

	txW, err := energy.TxPowerW(link.Tag.Mod, link.Tag.Coding, link.Tag.SymbolRateHz)
	if err != nil {
		return nil, err
	}
	row := &WildRow{
		MobilitySeverity: mob,
		HarvestSeverity:  harvest,
		DeliveryRate:     float64(delivered) / float64(sessions*frames),
		DarkEpisodes:     flight.Count(obs.FlightTagDark),
		Wakes:            flight.Count(obs.FlightTagWake),
	}
	if total := darkPolls + livePolls; total > 0 {
		row.DarkPollFrac = float64(darkPolls) / float64(total)
	}
	if delivered > 0 {
		row.JoulesPerDeliveredBit = txW * airtimeSec / float64(delivered*payloadBytes*8)
	}
	return row, nil
}

// RenderWild prints the sweep grouped by mobility severity.
func RenderWild(rows []WildRow) string {
	header := []string{"Mobility", "Harvest", "Delivery", "DarkPoll", "Dark", "Wakes", "nJ/bit"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.MobilitySeverity),
			fmt.Sprintf("%.2f", r.HarvestSeverity),
			fmt.Sprintf("%.2f", r.DeliveryRate),
			fmt.Sprintf("%.2f", r.DarkPollFrac),
			fmt.Sprintf("%d", r.DarkEpisodes),
			fmt.Sprintf("%d", r.Wakes),
			fmt.Sprintf("%.3f", r.JoulesPerDeliveredBit*1e9),
		})
	}
	return table(header, out)
}
