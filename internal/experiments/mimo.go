package experiments

import (
	"errors"
	"fmt"

	"backfi/internal/core"
	"backfi/internal/parallel"
)

// MIMORow is one (antennas, range) point of the Sec. 7 extension
// study.
type MIMORow struct {
	Antennas  int
	DistanceM float64
	// SuccessRate of the paper's 1 Mbps operating configuration
	// (QPSK 1/2 @ 1 Msym/s).
	SuccessRate float64
	// MeanJointSNRdB is the cross-antenna combined symbol SNR.
	MeanJointSNRdB float64
}

// MIMOExtension quantifies the paper's Sec. 7 prediction: "multiple
// antennas at the AP provides additional diversity combining gain ...
// BackFi's range and throughput can be enhanced further". It sweeps
// receive-antenna counts over range with the fixed 1 Mbps
// configuration and reports where the link holds.
func MIMOExtension(opt Options) ([]MIMORow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("mimo")
	defer sp.End()
	antennas := []int{1, 2, 4}
	dists := []float64{3, 5, 7, 9}
	rows := make([]MIMORow, len(antennas)*len(dists))
	err := parallel.ForEachErr(len(rows), opt.Workers, func(k int) error {
		nrx, d := antennas[k/len(dists)], dists[k%len(dists)]
		row := MIMORow{Antennas: nrx, DistanceM: d}
		ok := 0
		var snr float64
		n := 0
		for trial := 0; trial < opt.Trials; trial++ {
			cfg := core.DefaultLinkConfig(d)
			cfg.Seed = opt.Seed + int64(trial)*61
			cfg.Obs = opt.Obs
			cfg.Faults = opt.Faults
			link, err := core.NewMIMOLink(cfg, nrx)
			if err != nil {
				return err
			}
			res, err := link.RunPacket(link.RandomPayload(24))
			if err != nil {
				if !errors.Is(err, core.ErrTagNoWake) {
					return err
				}
				continue // wake failure at extreme range counts as loss
			}
			n++
			if res.PayloadOK {
				ok++
			}
			snr += res.JointSNRdB
		}
		row.SuccessRate = float64(ok) / float64(opt.Trials)
		if n > 0 {
			row.MeanJointSNRdB = snr / float64(n)
		}
		rows[k] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderMIMO prints the extension study.
func RenderMIMO(rows []MIMORow) string {
	header := []string{"Antennas", "Range(m)", "Success", "Joint SNR(dB)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Antennas),
			fmt.Sprintf("%.0f", r.DistanceM),
			fmt.Sprintf("%.2f", r.SuccessRate),
			fmt.Sprintf("%.1f", r.MeanJointSNRdB),
		})
	}
	return table(header, out)
}
