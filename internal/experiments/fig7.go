package experiments

import (
	"fmt"

	"backfi/internal/energy"
	"backfi/internal/fec"
	"backfi/internal/tag"
)

// Fig7Cell is one (symbol rate, modulation, coding) entry of the
// paper's Fig. 7 table.
type Fig7Cell struct {
	Mod           tag.Modulation
	Coding        fec.CodeRate
	SymbolRateHz  float64
	ModelREPB     float64
	PublishedREPB float64
	ThroughputBps float64
}

// Fig7Row groups the cells of one symbol rate.
type Fig7Row struct {
	SymbolRateHz float64
	Cells        []Fig7Cell
}

// Fig7 regenerates the REPB/throughput table from the energy model and
// pairs each cell with the published value.
func Fig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, rs := range energy.TableSymbolRates {
		row := Fig7Row{SymbolRateHz: rs}
		for _, col := range energy.Columns {
			repb, err := energy.REPB(col.Mod, col.Coding, rs)
			if err != nil {
				return nil, err
			}
			pub, err := energy.PublishedREPB(col.Mod, col.Coding, rs)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, Fig7Cell{
				Mod:           col.Mod,
				Coding:        col.Coding,
				SymbolRateHz:  rs,
				ModelREPB:     repb,
				PublishedREPB: pub,
				ThroughputBps: energy.ThroughputBps(col.Mod, col.Coding, rs),
			})
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7 prints the table in the paper's layout with model and
// published REPB side by side.
func RenderFig7(rows []Fig7Row) string {
	header := []string{"SymRate"}
	for _, col := range energy.Columns {
		header = append(header, fmt.Sprintf("%s,%s", col.Mod, col.Coding))
	}
	var out [][]string
	for _, row := range rows {
		repb := []string{fmt.Sprintf("%g kHz REPB", row.SymbolRateHz/1e3)}
		pub := []string{"     (paper)"}
		tput := []string{"     Thrput(Mbps)"}
		for _, c := range row.Cells {
			repb = append(repb, fmt.Sprintf("%.4f", c.ModelREPB))
			pub = append(pub, fmt.Sprintf("%.4f", c.PublishedREPB))
			tput = append(tput, mbps(c.ThroughputBps))
		}
		out = append(out, repb, pub, tput)
	}
	return table(header, out)
}
