package experiments

import (
	"testing"

	"backfi/internal/channel"
	"backfi/internal/core"
	"backfi/internal/fec"
	"backfi/internal/obs"
	"backfi/internal/parallel"
	"backfi/internal/reader"
	"backfi/internal/tag"
)

// TestEvaluateWorkersBitIdentical is the engine's core contract: the
// Monte-Carlo summary must not depend on the worker count, because
// every trial seeds from its index and reduction happens in index
// order.
func TestEvaluateWorkersBitIdentical(t *testing.T) {
	cfg := tag.Config{
		Mod:           tag.QPSK,
		Coding:        fec.Rate12,
		SymbolRateHz:  1e6,
		PreambleChips: tag.DefaultPreambleChips,
		ID:            1,
	}
	rdr := reader.DefaultConfig()
	seq, err := core.EvaluateWorkers(channel.DefaultConfig(1), cfg, rdr, 6, 24, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.EvaluateWorkers(channel.DefaultConfig(1), cfg, rdr, 6, 24, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("workers=1 vs workers=8 diverged:\n  seq %+v\n  par %+v", seq, par)
	}
}

// TestFig8DeterministicAcrossWorkers renders the full Fig. 8 table
// once sequentially and once with 8 workers and requires the outputs
// to be byte-identical.
func TestFig8DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	run := func(workers int) string {
		rows, err := Fig8(Options{Trials: 2, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return RenderFig8(rows)
	}
	seq := run(1)
	par := run(8)
	if seq != par {
		t.Fatalf("Fig8 diverged across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// TestFig12aDeterministicAcrossWorkers covers the per-index RNG
// derivation: each AP's trace must come out the same whether APs
// replay sequentially or concurrently.
func TestFig12aDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		res, err := Fig12a(12, Options{Trials: 2, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerAPBps
	}
	seq := run(1)
	par := run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("AP %d diverged: %v vs %v", i, seq[i], par[i])
		}
	}
}

// TestMetricsDoNotPerturbFigures is the observability contract: an
// attached registry (plus the parallel pool's instrumentation) is a
// write-only observer, so figure output must be byte-identical with
// metrics enabled and disabled, sequentially and concurrently.
func TestMetricsDoNotPerturbFigures(t *testing.T) {
	run := func(workers int, instrumented bool) string {
		opt := Options{Trials: 2, Seed: 5, Workers: workers}
		if instrumented {
			opt.Obs = obs.NewRegistry()
			parallel.SetRegistry(opt.Obs)
			t.Cleanup(func() { parallel.SetRegistry(nil) })
		}
		res, err := Fig11a(4, 2, opt)
		if err != nil {
			t.Fatal(err)
		}
		return RenderFig11a(res)
	}
	plain := run(1, false)
	for _, c := range []struct {
		workers      int
		instrumented bool
	}{{1, true}, {8, false}, {8, true}} {
		if got := run(c.workers, c.instrumented); got != plain {
			t.Fatalf("workers=%d instrumented=%v diverged from plain sequential output:\n%s\nvs\n%s",
				c.workers, c.instrumented, got, plain)
		}
	}
}
