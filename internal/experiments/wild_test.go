package experiments

import (
	"reflect"
	"testing"
)

// TestWildSweep pins the §5k sweep's contract: the grid is
// deterministic in the seed (the daemons it boots are real TCP servers,
// but the serving determinism contract makes their streams pure
// functions of the seed), the ideal cell stays dark-free, and the
// starved-harvest cells actually exercise the dark/wake cycle.
func TestWildSweep(t *testing.T) {
	opt := QuickOptions()
	rows, err := Wild(opt)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Wild(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatalf("wild sweep not deterministic:\n first %+v\nsecond %+v", rows, again)
	}

	byCell := map[[2]float64]WildRow{}
	for _, r := range rows {
		byCell[[2]float64{r.MobilitySeverity, r.HarvestSeverity}] = r
	}
	ideal := byCell[[2]float64{0, 0}]
	if ideal.DarkPollFrac != 0 || ideal.DarkEpisodes != 0 {
		t.Fatalf("ideal cell saw dark polls: %+v", ideal)
	}
	if ideal.DeliveryRate < 0.9 {
		t.Fatalf("ideal cell delivery %.2f < 0.9", ideal.DeliveryRate)
	}
	for _, mob := range []float64{0, 0.5, 1} {
		starved := byCell[[2]float64{mob, 1}]
		if starved.DarkEpisodes < 1 || starved.Wakes < starved.DarkEpisodes {
			t.Fatalf("starved cell mob=%v never cycled dark→wake: %+v", mob, starved)
		}
		if starved.DeliveryRate <= 0 || starved.JoulesPerDeliveredBit <= 0 {
			t.Fatalf("starved cell mob=%v delivered nothing: %+v", mob, starved)
		}
	}
}
