package experiments

import (
	"fmt"

	"backfi/internal/core"
	"backfi/internal/fec"
	"backfi/internal/parallel"
	"backfi/internal/tag"
)

// Fig11aPoint is one (location, run) of the cancellation benchmark:
// oracle-predicted post-MRC SNR vs the SNR the decoder actually
// measured.
type Fig11aPoint struct {
	Location      int
	ExpectedSNRdB float64
	MeasuredSNRdB float64
}

// Fig11aResult is the scatter plus its summary statistic.
type Fig11aResult struct {
	Points []Fig11aPoint
	// MedianDegradationDB is the median of expected − measured, the
	// paper's headline cancellation metric (they report < 2.3 dB from
	// SI residue alone; the full chain here also pays channel
	// estimation and TX-distortion costs).
	MedianDegradationDB float64
}

// Fig11a places the AP and tag at `locations` random placements
// (paper: 30) with `runsPerLocation` packets each (paper: 10) and
// scatters measured vs expected SNR. The (location, run) grid is
// flattened and filled concurrently under opt.Workers; each point's
// seed depends only on its indices, so the scatter is identical for
// every worker count.
func Fig11a(locations, runsPerLocation int, opt Options) (*Fig11aResult, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("11a")
	defer sp.End()
	res := &Fig11aResult{Points: make([]Fig11aPoint, locations*runsPerLocation)}
	degr := make([]float64, locations*runsPerLocation)
	err := parallel.ForEachErr(locations*runsPerLocation, opt.Workers, func(k int) error {
		loc, run := k/runsPerLocation, k%runsPerLocation
		// Distances spread over the paper's 0.5–5 m testbed.
		d := 0.5 + 4.5*float64(loc)/float64(max(locations-1, 1))
		cfg := core.DefaultLinkConfig(d)
		cfg.Seed = opt.Seed + int64(loc)*1000 + int64(run)
		cfg.Obs = opt.Obs
		cfg.Faults = opt.Faults
		link, err := core.NewLink(cfg)
		if err != nil {
			return err
		}
		pr, err := link.RunPacket(link.RandomPayload(60))
		if err != nil {
			return err
		}
		res.Points[k] = Fig11aPoint{
			Location:      loc,
			ExpectedSNRdB: pr.ExpectedMRCSNRdB,
			MeasuredSNRdB: pr.MeasuredSNRdB,
		}
		degr[k] = pr.ExpectedMRCSNRdB - pr.MeasuredSNRdB
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.MedianDegradationDB = percentile(degr, 0.5)
	return res, nil
}

// RenderFig11a prints the scatter summary.
func RenderFig11a(res *Fig11aResult) string {
	header := []string{"Loc", "Expected(dB)", "Measured(dB)", "Degr(dB)"}
	var out [][]string
	for _, p := range res.Points {
		out = append(out, []string{
			fmt.Sprintf("%d", p.Location),
			fmt.Sprintf("%.1f", p.ExpectedSNRdB),
			fmt.Sprintf("%.1f", p.MeasuredSNRdB),
			fmt.Sprintf("%.1f", p.ExpectedSNRdB-p.MeasuredSNRdB),
		})
	}
	s := table(header, out)
	return s + fmt.Sprintf("median degradation: %.2f dB\n", res.MedianDegradationDB)
}

// Fig11bRow is one (modulation, symbol rate) BER point of the MRC
// waterfall.
type Fig11bRow struct {
	Mod          tag.Modulation
	SymbolRateHz float64
	RawBER       float64
	MeanSNRdB    float64
}

// Fig11b sweeps tag symbol rate for BPSK and QPSK at rate 1/2 with a
// fixed placement (paper: BER falls like a waterfall as MRC gain
// grows with symbol period). The (modulation, rate) waterfall points
// run concurrently under opt.Workers; the trial accumulation inside a
// point stays in trial order so sums are bit-identical.
func Fig11b(opt Options) ([]Fig11bRow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("11b")
	defer sp.End()
	const distance = 4.0 // noise-limited so the waterfall is visible
	rates := []float64{2.5e6, 2e6, 1e6, 500e3, 100e3}
	mods := []tag.Modulation{tag.BPSK, tag.QPSK}
	rows := make([]Fig11bRow, len(mods)*len(rates))
	err := parallel.ForEachErr(len(mods)*len(rates), opt.Workers, func(k int) error {
		mi, ri := k/len(rates), k%len(rates)
		mod, rs := mods[mi], rates[ri]
		var errBits, bits int
		var snr float64
		for trial := 0; trial < opt.Trials; trial++ {
			cfg := core.DefaultLinkConfig(distance)
			cfg.Tag.Mod = mod
			cfg.Tag.Coding = fec.Rate12
			cfg.Tag.SymbolRateHz = rs
			cfg.Seed = opt.Seed + int64(ri)*100 + int64(trial) // same placements across mods/rates
			cfg.Obs = opt.Obs
			cfg.Faults = opt.Faults
			link, err := core.NewLink(cfg)
			if err != nil {
				return err
			}
			n := 48
			if rs < 500e3 {
				n = 8
			}
			pr, err := link.RunPacket(link.RandomPayload(n))
			if err != nil {
				return err
			}
			errBits += pr.RawBitErrors
			bits += pr.RawBits
			snr += pr.MeasuredSNRdB
		}
		rows[k] = Fig11bRow{
			Mod:          mod,
			SymbolRateHz: rs,
			RawBER:       float64(errBits) / float64(max(bits, 1)),
			MeanSNRdB:    snr / float64(opt.Trials),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig11b prints the BER-vs-symbol-rate series.
func RenderFig11b(rows []Fig11bRow) string {
	header := []string{"Mod", "SymRate(MHz)", "raw BER", "SNR(dB)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Mod.String(),
			fmt.Sprintf("%.2f", r.SymbolRateHz/1e6),
			fmt.Sprintf("%.2e", r.RawBER),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
		})
	}
	return table(header, out)
}
