package experiments

import (
	"errors"
	"fmt"
	"math"

	"backfi/internal/channel"
	"backfi/internal/core"
	"backfi/internal/parallel"
	"backfi/internal/tag"
)

// AblationRow is one variant of one ablation study.
type AblationRow struct {
	// Study names the design choice being ablated.
	Study string
	// Variant names the configuration under test.
	Variant string
	// SuccessRate, MeanSNRdB, MeanRawBER summarize the link.
	SuccessRate float64
	MeanSNRdB   float64
	MeanRawBER  float64
}

// Ablations quantifies the design choices the paper argues for:
//
//   - the analog (PA-tapped) cancellation stage vs digital-only
//     (Sec. 4.2: TX noise must be cancelled in analog);
//   - the tag preamble length (Sec. 6.1 / Fig. 8: training time vs
//     channel-estimate quality at the range edge);
//   - transmit hardware quality (the EVM floor that bounds everything
//     at short range);
//   - the convolutional code (Sec. 4.1: raw symbol errors vs delivered
//     frames).
func Ablations(opt Options) ([]AblationRow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("ablation")
	defer sp.End()

	// Build the study list in presentation order; the variants then fill
	// a pre-indexed row slice concurrently under opt.Workers.
	type job struct {
		study, variant string
		lcfg           core.LinkConfig
		salt           int64
	}
	var jobs []job

	// --- Analog cancellation stage, at the paper's 1 m headline point.
	for _, variant := range []struct {
		name       string
		analogTaps int
	}{{"analog+digital (BackFi)", 16}, {"digital-only", 0}} {
		lcfg := core.DefaultLinkConfig(1)
		lcfg.Reader.SIC.AnalogTaps = variant.analogTaps
		jobs = append(jobs, job{"analog cancellation stage", variant.name, lcfg, 10})
	}

	// --- Tag preamble length at the range edge (6 m).
	for _, chips := range []int{8, 16, tag.DefaultPreambleChips, tag.ExtendedPreambleChips} {
		lcfg := core.DefaultLinkConfig(6)
		lcfg.Tag.PreambleChips = chips
		jobs = append(jobs, job{"tag preamble length @6 m", fmt.Sprintf("%d µs", chips), lcfg, 20})
	}

	// --- Transmit hardware EVM floor at 0.5 m (short range is
	// distortion-limited, not noise-limited).
	for _, evm := range []float64{-20, -28, math.Inf(-1)} {
		lcfg := core.DefaultLinkConfig(0.5)
		lcfg.Channel = channel.DefaultConfig(0.5)
		lcfg.Channel.TxEVMdB = evm
		lcfg.Tag.Mod = tag.PSK16
		lcfg.Tag.SymbolRateHz = 2.5e6
		name := fmt.Sprintf("%.0f dB EVM", evm)
		if math.IsInf(evm, -1) {
			name = "ideal TX"
		}
		jobs = append(jobs, job{"TX hardware EVM @0.5 m (16PSK)", name, lcfg, 30})
	}

	// --- Modulation family: n-PSK (the paper's choice) vs a
	// [49]-style 16-QAM reflection modulator at the same 4 bits/symbol.
	// Peak-normalized QAM reflects 5/9 of the energy on average and
	// adds amplitude decisions, which is exactly why the paper chose
	// PSK ("the least amount of RF signal degradation", Sec. 5.2).
	for _, variant := range []struct {
		name string
		mod  tag.Modulation
	}{{"16PSK (BackFi)", tag.PSK16}, {"16QAM ([49]-style)", tag.QAM16}} {
		lcfg := core.DefaultLinkConfig(2)
		lcfg.Tag.Mod = variant.mod
		lcfg.Tag.SymbolRateHz = 2e6
		jobs = append(jobs, job{"modulation family @2 m, 4 b/sym", variant.name, lcfg, 50})
	}

	// --- Channel code: compare the delivered-frame rate against what
	// raw symbol slicing alone would give (success requires every raw
	// bit correct) at 4 m.
	lcfgCoded := core.DefaultLinkConfig(4)
	jobs = append(jobs, job{"convolutional code @4 m", "coded (BackFi)", lcfgCoded, 40})

	rows := make([]AblationRow, len(jobs))
	err := parallel.ForEachErr(len(jobs), opt.Workers, func(i int) error {
		row, err := runAblation(jobs[i].study, jobs[i].variant, jobs[i].lcfg, opt, jobs[i].salt)
		if err != nil {
			return err
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Uncoded proxy: P(all raw bits correct) from the measured raw BER
	// over the same frames as the coded row.
	coded := rows[len(rows)-1]
	uncoded := coded
	uncoded.Variant = "uncoded (raw-slice proxy)"
	bits := float64(tag.FrameInfoBits(24))
	uncoded.SuccessRate = math.Pow(1-coded.MeanRawBER, bits)
	rows = append(rows, uncoded)

	return rows, nil
}

// runAblation evaluates one link variant over opt.Trials placements.
// Trials fill indexed slots under opt.Workers and reduce in trial
// order, so the row matches the historical sequential accumulation.
func runAblation(study, variant string, lcfg core.LinkConfig, opt Options, salt int64) (*AblationRow, error) {
	type outcome struct {
		err       error
		completed bool // RunPacket succeeded (wake failures count as loss)
		ok        bool
		snr, ber  float64
	}
	outcomes := make([]outcome, opt.Trials)
	parallel.ForEach(opt.Trials, opt.Workers, func(i int) {
		cfg := lcfg
		cfg.Seed = opt.Seed + salt*10000 + int64(i)*53
		cfg.Obs = opt.Obs
		cfg.Faults = opt.Faults
		link, err := core.NewLink(cfg)
		if err != nil {
			outcomes[i].err = err
			return
		}
		res, err := link.RunPacket(link.RandomPayload(24))
		if err != nil {
			if !errors.Is(err, core.ErrTagNoWake) {
				outcomes[i].err = err // genuine pipeline failure
			}
			return // a sleeping tag at the range edge counts as loss
		}
		outcomes[i] = outcome{completed: true, ok: res.PayloadOK, snr: res.MeasuredSNRdB, ber: res.RawBER()}
	})
	row := &AblationRow{Study: study, Variant: variant}
	ok := 0
	for _, o := range outcomes {
		if o.err != nil {
			return nil, o.err
		}
		if !o.completed {
			continue
		}
		if o.ok {
			ok++
		}
		row.MeanSNRdB += o.snr
		row.MeanRawBER += o.ber
	}
	row.SuccessRate = float64(ok) / float64(opt.Trials)
	row.MeanSNRdB /= float64(opt.Trials)
	row.MeanRawBER /= float64(opt.Trials)
	return row, nil
}

// RenderAblations prints the study table.
func RenderAblations(rows []AblationRow) string {
	header := []string{"Study", "Variant", "Success", "SNR(dB)", "raw BER"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Study, r.Variant,
			fmt.Sprintf("%.2f", r.SuccessRate),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
			fmt.Sprintf("%.2e", r.MeanRawBER),
		})
	}
	return table(header, out)
}
