// Package experiments regenerates every table and figure of the
// BackFi paper's evaluation (Sec. 6). Each harness returns typed rows
// plus a paper-style text rendering; cmd/backfi-bench drives them all
// and bench_test.go exposes each as a testing.B benchmark.
//
// Absolute numbers come from the calibrated simulator (see DESIGN.md);
// what is asserted and reported is the paper's shape: who wins, by
// what rough factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/parallel"
)

// Options tunes experiment fidelity.
type Options struct {
	// Trials is the Monte-Carlo packet count per point.
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the evaluation concurrency at both fan-out levels
	// (grid points and Monte-Carlo trials): 0 uses every CPU, 1
	// reproduces the historical sequential execution order exactly.
	// Results are bit-identical for every value — each work item
	// derives its randomness from its index and writes into a
	// pre-indexed slot, and reduction happens in index order.
	Workers int
	// Obs, when non-nil, collects pipeline metrics (stage durations,
	// SIC/decoder health, per-figure wall clock) from every link the
	// harness builds. Metrics are write-only observers of the
	// deterministic trial grid, so figure outputs are byte-identical
	// with or without a registry (see determinism_test.go).
	Obs *obs.Registry
	// Faults injects an RF-impairment profile into every link the
	// harness builds (DESIGN.md §5d). Nil runs the paper's ideal front
	// end and leaves every figure byte-identical to an unfaulted build.
	Faults *fault.Profile
}

// DefaultOptions gives publication-grade fidelity; QuickOptions is for
// benchmarks and CI. Both run on all available CPUs.
func DefaultOptions() Options { return Options{Trials: 10, Seed: 1} }

// QuickOptions runs each point with the minimum statistically useful
// trial count.
func QuickOptions() Options { return Options{Trials: 3, Seed: 1} }

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = DefaultOptions().Trials
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Workers = parallel.Normalize(o.Workers)
	return o
}

// figureSpan times one figure harness end to end under
// backfi_figure_duration_seconds{fig="..."}. The returned span's End is
// safe on the zero value, so harnesses call it unconditionally.
func (o Options) figureSpan(fig string) obs.Span {
	return o.Obs.Histogram(obs.MetricFigureDuration, "Wall-clock seconds per figure harness.", obs.DurationBuckets, "fig", fig).Start()
}

// table renders aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// percentile returns the p-quantile (p in [0,1]) of values by linear
// interpolation between order statistics, sorting a copy. Callers that
// need several quantiles of the same data should sort once and use
// percentileSorted.
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64{}, values...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// percentileSorted is percentile over already-sorted data, avoiding
// the per-call copy and re-sort.
func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if frac == 0 {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

func mbps(bps float64) string { return fmt.Sprintf("%.2f", bps/1e6) }
