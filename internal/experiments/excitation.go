package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"backfi/internal/ble"
	"backfi/internal/core"
	"backfi/internal/dsp"
	"backfi/internal/dsss"
	"backfi/internal/parallel"
	"backfi/internal/tag"
	"backfi/internal/zigbee"
)

// ExcitationRow compares one ambient-signal family as the BackFi
// excitation (the paper's Sec. 1 generality claim, quantified).
type ExcitationRow struct {
	// Excitation names the signal family.
	Excitation string
	// BandOccupancy is the fraction of the 20 MHz band holding 99% of
	// the excitation power (frequency diversity available to the
	// channel estimator).
	BandOccupancy float64
	// SuccessRate / MeanSNRdB / MeanRawBER summarize the backscatter
	// link at the test point.
	SuccessRate float64
	MeanSNRdB   float64
	MeanRawBER  float64
}

// ExcitationComparison runs the same tag configuration (QPSK 1/2 at
// 500 ksym/s, 2 m) over five excitations: the WiFi OFDM packets the
// paper uses, 802.11b DSSS, 802.15.4 O-QPSK, BLE GFSK, and an ideal
// white pseudo-random waveform. Wideband excitations give the combined
// channel estimator more frequency diversity; all of them decode,
// which is the generality claim.
func ExcitationComparison(opt Options) ([]ExcitationRow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("excitation")
	defer sp.End()
	const distance = 2.0
	const payloadBytes = 24

	build := func(kind string, link *core.Link, need int, r *rand.Rand) ([]complex128, error) {
		switch kind {
		case "wifi":
			return nil, nil // use the standard RunPacket path
		case "zigbee":
			var out []complex128
			for len(out) < need {
				psdu := make([]byte, 100)
				r.Read(psdu)
				w, err := zigbee.Transmit(psdu)
				if err != nil {
					return nil, err
				}
				out = append(out, w...)
			}
			return out, nil
		case "ble":
			var out []complex128
			for len(out) < need {
				pdu := make([]byte, 200)
				r.Read(pdu)
				w, err := ble.Transmit(pdu)
				if err != nil {
					return nil, err
				}
				out = append(out, w...)
			}
			return out, nil
		case "11b":
			var out []complex128
			for len(out) < need {
				psdu := make([]byte, 500)
				r.Read(psdu)
				w, err := dsss.Transmit(psdu, dsss.DQPSK2M)
				if err != nil {
					return nil, err
				}
				out = append(out, w...)
			}
			return out, nil
		case "white":
			out := make([]complex128, need)
			for i := range out {
				out[i] = complex(r.NormFloat64(), r.NormFloat64())
			}
			return dsp.NormalizePower(out, 1), nil
		}
		return nil, fmt.Errorf("experiments: unknown excitation %q", kind)
	}

	kinds := []string{"wifi", "11b", "zigbee", "ble", "white"}
	rows := make([]ExcitationRow, len(kinds))
	err := parallel.ForEachErr(len(kinds), opt.Workers, func(ki int) error {
		kind := kinds[ki]
		row := ExcitationRow{Excitation: kind}
		var occSet bool
		ok := 0
		for trial := 0; trial < opt.Trials; trial++ {
			cfg := core.DefaultLinkConfig(distance)
			cfg.Tag.SymbolRateHz = 500e3
			cfg.Seed = opt.Seed + int64(trial)*31
			cfg.Obs = opt.Obs
			cfg.Faults = opt.Faults
			link, err := core.NewLink(cfg)
			if err != nil {
				return err
			}
			payload := link.RandomPayload(payloadBytes)
			need := tag.SilentSamples + cfg.Tag.PreambleSamples() +
				tag.SymbolsForPayload(payloadBytes, cfg.Tag.Coding, cfg.Tag.Mod)*cfg.Tag.SamplesPerSymbol() + 2000

			var res *core.PacketResult
			if kind == "wifi" {
				res, err = link.RunPacket(payload)
			} else {
				r := rand.New(rand.NewSource(cfg.Seed + 9999))
				var exc []complex128
				exc, err = build(kind, link, need, r)
				if err != nil {
					return err
				}
				if !occSet {
					psd := dsp.WelchPSD(exc[:min(len(exc), 8192)], 128)
					row.BandOccupancy = dsp.OccupiedBandwidth(psd, 0.99)
					occSet = true
				}
				res, err = link.RunCustomExcitation(exc, payload)
			}
			if err != nil {
				if !errors.Is(err, core.ErrTagNoWake) {
					return err
				}
				continue // no wake counts as loss
			}
			if kind == "wifi" && !occSet {
				row.BandOccupancy = 0.84 // 52 of 64 subcarriers
				occSet = true
			}
			if res.PayloadOK {
				ok++
			}
			row.MeanSNRdB += res.MeasuredSNRdB
			row.MeanRawBER += res.RawBER()
		}
		row.SuccessRate = float64(ok) / float64(opt.Trials)
		row.MeanSNRdB /= float64(opt.Trials)
		row.MeanRawBER /= float64(opt.Trials)
		rows[ki] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderExcitation prints the comparison.
func RenderExcitation(rows []ExcitationRow) string {
	header := []string{"Excitation", "Band occ.", "Success", "SNR(dB)", "raw BER"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Excitation,
			fmt.Sprintf("%.0f%%", r.BandOccupancy*100),
			fmt.Sprintf("%.2f", r.SuccessRate),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
			fmt.Sprintf("%.2e", r.MeanRawBER),
		})
	}
	return table(header, out)
}
