package experiments

import (
	"fmt"

	"backfi/internal/channel"
	"backfi/internal/core"
	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/parallel"
	"backfi/internal/tag"
)

// RobustnessRow is one (impairment severity, modulation) point of the
// hardening sweep: how the link degrades as the ideal front end of the
// paper's evaluation is replaced by an increasingly hostile one
// (DESIGN.md §5d).
type RobustnessRow struct {
	// Severity is the fault.Standard knob in [0,1]; 0 is the paper's
	// ideal front end.
	Severity float64
	// Mod is the tag modulation under test at 1 Msym/s rate-1/2.
	Mod tag.Modulation
	// SuccessRate / MeanRawBER / MeanSNRdB summarize opt.Trials
	// placements at 1 m.
	SuccessRate float64
	MeanRawBER  float64
	MeanSNRdB   float64
	// WakeRate is the fraction of trials whose tag woke and produced a
	// decode attempt (denominator of the BER/SNR means).
	WakeRate float64
}

// Robustness sweeps fault.Standard severities against the tag
// modulation ladder at the paper's 1 m headline point (1 Msym/s,
// rate 1/2). Severity 0 must reproduce the unfaulted link exactly;
// denser constellations should fall off the cliff first as phase noise
// and interference eat the decision margin. Options.Faults is ignored
// here — the sweep owns the impairment axis.
func Robustness(opt Options) ([]RobustnessRow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("robustness")
	defer sp.End()

	severities := []float64{0, 0.25, 0.5, 0.75, 1}
	mods := []tag.Modulation{tag.BPSK, tag.QPSK, tag.PSK16}
	const distance = 1.0
	const payloadBytes = 24

	rows := make([]RobustnessRow, len(severities)*len(mods))
	err := parallel.ForEachErr(len(rows), opt.Workers, func(k int) error {
		sev := severities[k/len(mods)]
		mod := mods[k%len(mods)]
		tcfg := tag.Config{Mod: mod, Coding: fec.Rate12, SymbolRateHz: 1e6,
			PreambleChips: tag.DefaultPreambleChips, ID: 1}
		var profile *fault.Profile
		if sev > 0 {
			p := fault.Standard(sev)
			profile = &p
		}
		rdr := core.DefaultLinkConfig(distance).Reader
		f, err := core.EvaluateFaults(channel.DefaultConfig(distance), tcfg, rdr,
			profile, opt.Trials, payloadBytes, opt.Seed+int64(k)*101, opt.Workers)
		if err != nil {
			return err
		}
		rows[k] = RobustnessRow{
			Severity:    sev,
			Mod:         mod,
			SuccessRate: f.SuccessRate,
			MeanRawBER:  f.MeanRawBER,
			MeanSNRdB:   f.MeanSNRdB,
			WakeRate:    f.WakeRate,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderRobustness prints the sweep grouped by severity.
func RenderRobustness(rows []RobustnessRow) string {
	header := []string{"Severity", "Mod", "Success", "Wake", "SNR(dB)", "raw BER"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.Severity),
			r.Mod.String(),
			fmt.Sprintf("%.2f", r.SuccessRate),
			fmt.Sprintf("%.2f", r.WakeRate),
			fmt.Sprintf("%.1f", r.MeanSNRdB),
			fmt.Sprintf("%.2e", r.MeanRawBER),
		})
	}
	return table(header, out)
}
