package experiments

import (
	"fmt"
	"sort"

	"backfi/internal/channel"
	"backfi/internal/core"
	"backfi/internal/parallel"
	"backfi/internal/reader"
	"backfi/internal/tag"
)

// Fig8Distances are the evaluated AP–tag ranges (paper: 0.5–7 m).
var Fig8Distances = []float64{0.5, 1, 2, 3, 4, 5, 6, 7}

// Fig8Row is one range point: the maximum decodable throughput with
// the standard 32 µs tag preamble and the extended 96 µs one.
type Fig8Row struct {
	DistanceM float64
	Best32Bps float64
	Config32  string
	Best96Bps float64
	Config96  string
}

// Fig8 reproduces throughput vs range for the two preamble durations.
// For each distance it scans the Fig. 7 configurations from fastest to
// slowest and reports the first that decodes reliably. The
// (distance, preamble) points run concurrently under opt.Workers; each
// point writes its own row fields, so output is independent of the
// worker count.
func Fig8(opt Options) ([]Fig8Row, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("8")
	defer sp.End()
	preambles := []int{tag.DefaultPreambleChips, tag.ExtendedPreambleChips}
	rows := make([]Fig8Row, len(Fig8Distances))
	for di, d := range Fig8Distances {
		rows[di].DistanceM = d
	}
	err := parallel.ForEachErr(len(Fig8Distances)*len(preambles), opt.Workers, func(k int) error {
		di, pi := k/len(preambles), k%len(preambles)
		bps, name, err := maxThroughputAt(Fig8Distances[di], preambles[pi], opt, int64(di))
		if err != nil {
			return err
		}
		if preambles[pi] == tag.DefaultPreambleChips {
			rows[di].Best32Bps, rows[di].Config32 = bps, name
		} else {
			rows[di].Best96Bps, rows[di].Config96 = bps, name
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// maxThroughputAt finds the fastest decodable configuration at one
// distance. Configurations are scanned in descending bit-rate order so
// the scan can stop at the first success.
func maxThroughputAt(d float64, preambleChips int, opt Options, salt int64) (float64, string, error) {
	cfgs := core.StandardConfigs(preambleChips, 1)
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].BitRate() > cfgs[j].BitRate() })
	rdr := reader.DefaultConfig()
	rdr.Obs = opt.Obs
	for i, c := range cfgs {
		payload := 24
		if c.SymbolRateHz < 100e3 {
			payload = 4 // keep very-low-rate excitations tractable
		}
		f, err := core.EvaluateFaults(channel.DefaultConfig(d), c, rdr, opt.Faults, opt.Trials, payload, opt.Seed+salt*1000+int64(i)*37, opt.Workers)
		if err != nil {
			return 0, "", err
		}
		if f.Decodable() {
			return f.ThroughputBps, c.String(), nil
		}
	}
	return 0, "none", nil
}

// RenderFig8 prints the two throughput-vs-range series.
func RenderFig8(rows []Fig8Row) string {
	header := []string{"Range(m)", "32µs Mbps", "32µs config", "96µs Mbps", "96µs config"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.1f", r.DistanceM),
			mbps(r.Best32Bps), r.Config32,
			mbps(r.Best96Bps), r.Config96,
		})
	}
	return table(header, out)
}
