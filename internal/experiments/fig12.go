package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"backfi/internal/mac"
	"backfi/internal/parallel"
)

// Fig12aResult is the loaded-network throughput distribution.
type Fig12aResult struct {
	// PerAPBps is the BackFi throughput under each AP's trace.
	PerAPBps []float64
	// MedianBps and the paper's comparison point.
	MedianBps float64
	// OptimalBps is the continuously-excited link rate at the tag's
	// range (5 Mbps at 1 m).
	OptimalBps float64
}

// FractionOfOptimal returns median/optimal (paper: ≈80%).
func (r *Fig12aResult) FractionOfOptimal() float64 {
	if r.OptimalBps == 0 {
		return 0
	}
	return r.MedianBps / r.OptimalBps
}

// Fig12a replays 20 loaded-AP airtime traces (paper: captured hotspot
// traces; here the synthetic generator spans the same load regimes)
// with the tag at 1 m, where the optimal continuously-excited rate is
// 5 Mbps. Every AP draws from its own index-derived RNG, so the trace
// set is independent of evaluation order and APs replay concurrently
// under opt.Workers.
func Fig12a(numAPs int, opt Options) (*Fig12aResult, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("12a")
	defer sp.End()
	opp := mac.DefaultOpportunityConfig()
	res := &Fig12aResult{OptimalBps: opp.LinkBps, PerAPBps: make([]float64, numAPs)}
	err := parallel.ForEachErr(numAPs, opt.Workers, func(ap int) error {
		r := rand.New(rand.NewSource(opt.Seed + int64(ap)*1_000_003))
		// Heavily loaded networks: AP airtime between 0.55 and 0.95.
		air := 0.55 + 0.4*r.Float64()
		cfg := mac.DefaultTraceConfig(air)
		cfg.HorizonSec = 5
		tr, err := mac.Generate(cfg, r)
		if err != nil {
			return err
		}
		res.PerAPBps[ap] = mac.Throughput(tr, opp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sorted := append([]float64{}, res.PerAPBps...)
	sort.Float64s(sorted)
	res.MedianBps = sorted[len(sorted)/2]
	return res, nil
}

// RenderFig12a prints the CDF.
func RenderFig12a(res *Fig12aResult) string {
	sorted := append([]float64{}, res.PerAPBps...)
	sort.Float64s(sorted)
	header := []string{"CDF", "Throughput(Mbps)"}
	var out [][]string
	for i, v := range sorted {
		out = append(out, []string{
			fmt.Sprintf("%.2f", float64(i+1)/float64(len(sorted))),
			mbps(v),
		})
	}
	s := table(header, out)
	return s + fmt.Sprintf("median %.2f Mbps = %.0f%% of the %.1f Mbps optimum\n",
		res.MedianBps/1e6, res.FractionOfOptimal()*100, res.OptimalBps/1e6)
}

// Fig12aDCF is the contention-derived variant of Fig. 12a: instead of
// statistical airtime traces, each AP's transmission schedule comes
// from an event-driven CSMA/CA (DCF) simulation of a downlink-heavy
// cell with a varying number of contending clients.
func Fig12aDCF(numAPs int, opt Options) (*Fig12aResult, error) {
	opt = opt.withDefaults()
	opp := mac.DefaultOpportunityConfig()
	res := &Fig12aResult{OptimalBps: opp.LinkBps, PerAPBps: make([]float64, numAPs)}
	err := parallel.ForEachErr(numAPs, opt.Workers, func(ap int) error {
		r := rand.New(rand.NewSource(opt.Seed + 17 + int64(ap)*1_000_003))
		nClients := r.Intn(8)
		load := 0.1 + 0.5*r.Float64()
		dcf, err := mac.SimulateDCF(mac.DownlinkHeavyCell(nClients, load, 2_000_000), r)
		if err != nil {
			return err
		}
		res.PerAPBps[ap] = mac.Throughput(dcf.Trace, opp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sorted := append([]float64{}, res.PerAPBps...)
	sort.Float64s(sorted)
	res.MedianBps = sorted[len(sorted)/2]
	return res, nil
}

// Fig12bRow is one tag-distance point of the network-impact curve.
type Fig12bRow struct {
	TagDistanceM float64
	// MeanThroughputOnBps / OffBps average client PHY goodput across
	// client placements with the tag modulating / silent.
	MeanThroughputOnBps, MeanThroughputOffBps float64
	// DropFraction is 1 − on/off.
	DropFraction float64
}

// Fig12b sweeps the tag's distance from the AP and measures average
// WiFi client throughput with and without backscatter, across random
// client placements (paper: ≤10% drop at 0.25 m, negligible beyond).
// The (distance, client) pairs fill indexed on/off slots concurrently
// under opt.Workers; each row then reduces its clients in index order,
// so the sums match the historical sequential accumulation exactly.
func Fig12b(clients int, opt Options) ([]Fig12bRow, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("12b")
	defer sp.End()
	distances := []float64{0.25, 0.5, 1, 2, 4}
	type pair struct{ on, off float64 }
	cells := make([]pair, len(distances)*clients)
	err := parallel.ForEachErr(len(cells), opt.Workers, func(k int) error {
		di, c := k/clients, k%clients
		td := distances[di]
		mbpsRate := []int{6, 12, 24, 36, 54}[c%5]
		cd, err := mac.ClientDistanceForRate(mbpsRate, 20, 3.5, 5)
		if err != nil {
			return err
		}
		cfg := mac.DefaultImpactConfig(mbpsRate, cd)
		cfg.TagDistanceM = td
		res, err := mac.SimulateClientImpact(cfg, opt.Trials, opt.Seed+int64(td*100)+int64(c)*17)
		if err != nil {
			return err
		}
		cells[k] = pair{on: res.ThroughputOnBps, off: res.ThroughputOffBps}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig12bRow, 0, len(distances))
	for di, td := range distances {
		var onSum, offSum float64
		for c := 0; c < clients; c++ {
			onSum += cells[di*clients+c].on
			offSum += cells[di*clients+c].off
		}
		row := Fig12bRow{
			TagDistanceM:         td,
			MeanThroughputOnBps:  onSum / float64(clients),
			MeanThroughputOffBps: offSum / float64(clients),
		}
		if row.MeanThroughputOffBps > 0 {
			row.DropFraction = 1 - row.MeanThroughputOnBps/row.MeanThroughputOffBps
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig12b prints the impact curve.
func RenderFig12b(rows []Fig12bRow) string {
	header := []string{"TagDist(m)", "WiFi w/ tag (Mbps)", "WiFi w/o tag (Mbps)", "Drop(%)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.TagDistanceM),
			mbps(r.MeanThroughputOnBps),
			mbps(r.MeanThroughputOffBps),
			fmt.Sprintf("%.1f", r.DropFraction*100),
		})
	}
	return table(header, out)
}
