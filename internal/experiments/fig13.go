package experiments

import (
	"fmt"

	"backfi/internal/mac"
	"backfi/internal/parallel"
)

// Fig13Row is one WiFi-bitrate point of the worst-case micro-benchmark
// (tag at 0.25 m from the AP): it carries both Fig. 13a (throughput)
// and Fig. 13b (SNR degradation).
type Fig13Row struct {
	WiFiMbps int
	// ClientDistanceM is where the client was placed so it just
	// sustains this rate.
	ClientDistanceM float64
	Result          mac.ImpactResult
}

// Fig13 places a single client at the distance appropriate for each
// WiFi bitrate and measures PHY throughput and SNR with the tag on and
// off (paper: only the 54 Mbps point shows a noticeable difference).
// The bitrate points fill a pre-indexed row slice concurrently under
// opt.Workers.
func Fig13(opt Options) ([]Fig13Row, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("13")
	defer sp.End()
	rates := []int{6, 9, 12, 18, 24, 36, 48, 54}
	rows := make([]Fig13Row, len(rates))
	err := parallel.ForEachErr(len(rates), opt.Workers, func(i int) error {
		mbpsRate := rates[i]
		cd, err := mac.ClientDistanceForRate(mbpsRate, 20, 3.5, 5)
		if err != nil {
			return err
		}
		cfg := mac.DefaultImpactConfig(mbpsRate, cd)
		res, err := mac.SimulateClientImpact(cfg, opt.Trials*4, opt.Seed+int64(i)*97)
		if err != nil {
			return err
		}
		rows[i] = Fig13Row{WiFiMbps: mbpsRate, ClientDistanceM: cd, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig13 prints both panels.
func RenderFig13(rows []Fig13Row) string {
	header := []string{"Rate(Mbps)", "Client(m)", "Tput on", "Tput off", "PER on", "PER off", "SNR degr(dB)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.WiFiMbps),
			fmt.Sprintf("%.1f", r.ClientDistanceM),
			mbps(r.Result.ThroughputOnBps),
			mbps(r.Result.ThroughputOffBps),
			fmt.Sprintf("%.2f", r.Result.PEROn),
			fmt.Sprintf("%.2f", r.Result.PEROff),
			fmt.Sprintf("%.2f", r.Result.SNRDegradationDB()),
		})
	}
	return table(header, out)
}
