package experiments

import (
	"fmt"

	"backfi/internal/core"
	"backfi/internal/parallel"
	"backfi/internal/tag"
)

// Fig10Targets are the fixed throughputs of paper Fig. 10.
var Fig10Targets = []float64{1.25e6, 5e6}

// Fig10Row is one (range, target throughput) point: the cheapest
// configuration achieving the target.
type Fig10Row struct {
	DistanceM float64
	TargetBps float64
	// REPB of the chosen config; 0 with Achieved=false when the target
	// is infeasible at this range.
	REPB     float64
	Config   string
	Achieved bool
}

// Fig10 computes REPB vs range at the paper's two fixed throughputs:
// for each range, sweep all configurations and pick the minimum-REPB
// one that still delivers the target. Ranges fill a pre-indexed row
// grid concurrently under opt.Workers.
func Fig10(opt Options) ([]Fig10Row, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("10")
	defer sp.End()
	cfgs := core.StandardConfigs(tag.DefaultPreambleChips, 1)
	ranges := []float64{0.5, 1, 2, 3, 4, 5}
	rows := make([]Fig10Row, len(ranges)*len(Fig10Targets))
	err := parallel.ForEachErr(len(ranges), opt.Workers, func(di int) error {
		d := ranges[di]
		results, err := sweepWithBudget(d, cfgs, opt, 100+int64(di))
		if err != nil {
			return err
		}
		for ti, target := range Fig10Targets {
			row := Fig10Row{DistanceM: d, TargetBps: target}
			if f, ok := core.MinREPBAtThroughput(results, target); ok {
				row.REPB = f.REPB
				row.Config = f.Cfg.String()
				row.Achieved = true
			}
			rows[di*len(Fig10Targets)+ti] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig10 prints the two REPB-vs-range series.
func RenderFig10(rows []Fig10Row) string {
	header := []string{"Range(m)", "Target(Mbps)", "REPB", "Config"}
	var out [][]string
	for _, r := range rows {
		repb, cfg := "infeasible", ""
		if r.Achieved {
			repb = fmt.Sprintf("%.3f", r.REPB)
			cfg = r.Config
		}
		out = append(out, []string{
			fmt.Sprintf("%.1f", r.DistanceM),
			mbps(r.TargetBps),
			repb, cfg,
		})
	}
	return table(header, out)
}
