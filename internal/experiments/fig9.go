package experiments

import (
	"fmt"

	"backfi/internal/channel"
	"backfi/internal/core"
	"backfi/internal/parallel"
	"backfi/internal/reader"
	"backfi/internal/tag"
)

// Fig9Ranges are the per-curve distances of paper Fig. 9.
var Fig9Ranges = []float64{0.5, 1, 2, 4, 5}

// Fig9Curve is one range's REPB-vs-throughput frontier: for every
// achievable throughput among decodable configurations, the minimum
// REPB.
type Fig9Curve struct {
	DistanceM float64
	Points    []core.Feasibility
}

// MaxThroughputBps returns the curve's vertical-cutoff throughput.
func (c Fig9Curve) MaxThroughputBps() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[len(c.Points)-1].ThroughputBps
}

// Fig9 sweeps all Fig. 7 configurations at each range and reduces to
// the min-REPB frontier (paper Fig. 9). Ranges run concurrently under
// opt.Workers, as do the configurations and trials inside each sweep.
func Fig9(opt Options) ([]Fig9Curve, error) {
	opt = opt.withDefaults()
	sp := opt.figureSpan("9")
	defer sp.End()
	cfgs := core.StandardConfigs(tag.DefaultPreambleChips, 1)
	curves := make([]Fig9Curve, len(Fig9Ranges))
	err := parallel.ForEachErr(len(Fig9Ranges), opt.Workers, func(di int) error {
		d := Fig9Ranges[di]
		results, err := sweepWithBudget(d, cfgs, opt, int64(di))
		if err != nil {
			return err
		}
		curves[di] = Fig9Curve{DistanceM: d, Points: core.ParetoREPB(results)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return curves, nil
}

// sweepWithBudget evaluates every configuration, shrinking payloads at
// very low symbol rates to bound excitation length. Configurations
// fill a pre-indexed result slice concurrently.
func sweepWithBudget(d float64, cfgs []tag.Config, opt Options, salt int64) ([]core.Feasibility, error) {
	rdr := reader.DefaultConfig()
	rdr.Obs = opt.Obs
	out := make([]core.Feasibility, len(cfgs))
	err := parallel.ForEachErr(len(cfgs), opt.Workers, func(i int) error {
		c := cfgs[i]
		payload := 24
		if c.SymbolRateHz < 100e3 {
			payload = 4
		}
		f, err := core.EvaluateFaults(channel.DefaultConfig(d), c, rdr, opt.Faults, opt.Trials, payload, opt.Seed+salt*5000+int64(i)*101, opt.Workers)
		if err != nil {
			return err
		}
		out[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFig9 prints each range's frontier.
func RenderFig9(curves []Fig9Curve) string {
	header := []string{"Range(m)", "Thrput(Mbps)", "REPB", "Config"}
	var out [][]string
	for _, c := range curves {
		for _, p := range c.Points {
			out = append(out, []string{
				fmt.Sprintf("%.1f", c.DistanceM),
				mbps(p.ThroughputBps),
				fmt.Sprintf("%.3f", p.REPB),
				p.Cfg.String(),
			})
		}
		out = append(out, []string{
			fmt.Sprintf("%.1f", c.DistanceM), "cutoff → " + mbps(c.MaxThroughputBps()), "", "",
		})
	}
	return table(header, out)
}
