package experiments

import (
	"math"
	"strings"
	"testing"

	"backfi/internal/tag"
)

func TestFig7TableMatchesPaper(t *testing.T) {
	rows, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if len(row.Cells) != 6 {
			t.Fatalf("%d cells", len(row.Cells))
		}
		for _, c := range row.Cells {
			if rel := math.Abs(c.ModelREPB-c.PublishedREPB) / c.PublishedREPB; rel > 0.005 {
				t.Fatalf("cell (%v,%v,%v): model %v vs paper %v", c.Mod, c.Coding, c.SymbolRateHz, c.ModelREPB, c.PublishedREPB)
			}
		}
	}
	// Spot-check the headline cell: 16PSK 2/3 at 2.5 MHz → 6.67 Mbps.
	last := rows[5].Cells[5]
	if math.Abs(last.ThroughputBps-6.6667e6) > 1e3 {
		t.Fatalf("headline throughput cell %v", last.ThroughputBps)
	}
	if !strings.Contains(RenderFig7(rows), "16PSK") {
		t.Fatal("render missing modulation labels")
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := Fig8(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	byDist := map[float64]Fig8Row{}
	for _, r := range rows {
		byDist[r.DistanceM] = r
	}
	// Paper-shape assertions (±1 rate step of slack):
	if byDist[0.5].Best32Bps < 5e6 {
		t.Fatalf("0.5 m: %v bps, want ≥ 5 Mbps", byDist[0.5].Best32Bps)
	}
	if byDist[1].Best32Bps < 3e6 {
		t.Fatalf("1 m: %v bps, want ≥ 3 Mbps", byDist[1].Best32Bps)
	}
	if byDist[5].Best32Bps < 0.5e6 {
		t.Fatalf("5 m: %v bps, want ≥ 0.5 Mbps", byDist[5].Best32Bps)
	}
	// Non-increasing with distance (allow one small inversion from
	// Monte-Carlo noise).
	inversions := 0
	for i := 1; i < len(rows); i++ {
		if rows[i].Best32Bps > rows[i-1].Best32Bps*1.01 {
			inversions++
		}
	}
	if inversions > 1 {
		t.Fatalf("%d throughput inversions with distance", inversions)
	}
	// The 96 µs preamble must help (or at least not hurt) at the edge;
	// allow one rate step of Monte-Carlo slack at the marginal config.
	if byDist[7].Best96Bps < byDist[7].Best32Bps*0.7 {
		t.Fatalf("96 µs preamble worse at 7 m: %v vs %v", byDist[7].Best96Bps, byDist[7].Best32Bps)
	}
}

func TestFig9FrontiersWellFormed(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	opt := QuickOptions()
	curves, err := Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != len(Fig9Ranges) {
		t.Fatalf("%d curves", len(curves))
	}
	var prevMax float64 = math.Inf(1)
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Fatalf("empty frontier at %v m", c.DistanceM)
		}
		// Frontier sorted by throughput.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].ThroughputBps < c.Points[i-1].ThroughputBps {
				t.Fatalf("frontier unsorted at %v m", c.DistanceM)
			}
		}
		// Vertical cutoff non-increasing with range (one inversion of
		// Monte-Carlo slack allowed via 10% factor).
		if c.MaxThroughputBps() > prevMax*1.35 {
			t.Fatalf("cutoff grew with range at %v m: %v > %v", c.DistanceM, c.MaxThroughputBps(), prevMax)
		}
		prevMax = c.MaxThroughputBps()
		// Paper: REPB mostly between 0.5 and 3 for feasible points.
		for _, p := range c.Points {
			if p.REPB < 0.3 || p.REPB > 50 {
				t.Fatalf("REPB %v out of plausible range", p.REPB)
			}
		}
	}
}

func TestFig10StepsWithRange(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := Fig10(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 1.25 Mbps: achievable at short range, REPB non-decreasing-ish
	// with range, infeasible (or costly) far out.
	var low []Fig10Row
	for _, r := range rows {
		if r.TargetBps == 1.25e6 {
			low = append(low, r)
		}
	}
	if !low[0].Achieved {
		t.Fatal("1.25 Mbps must be achievable at 0.5 m")
	}
	// 5 Mbps must be achievable close and infeasible at 5 m.
	var five []Fig10Row
	for _, r := range rows {
		if r.TargetBps == 5e6 {
			five = append(five, r)
		}
	}
	if !five[0].Achieved {
		t.Fatal("5 Mbps must be achievable at 0.5 m")
	}
	if five[len(five)-1].Achieved {
		t.Fatal("5 Mbps should be infeasible at 5 m")
	}
}

func TestFig11aScatterAndMedian(t *testing.T) {
	res, err := Fig11a(6, 2, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Measured tracks expected: positive correlation and bounded
	// median degradation.
	if res.MedianDegradationDB < 0 || res.MedianDegradationDB > 12 {
		t.Fatalf("median degradation %v dB", res.MedianDegradationDB)
	}
	var cov, vx, vy, mx, my float64
	for _, p := range res.Points {
		mx += p.ExpectedSNRdB
		my += p.MeasuredSNRdB
	}
	mx /= float64(len(res.Points))
	my /= float64(len(res.Points))
	for _, p := range res.Points {
		cov += (p.ExpectedSNRdB - mx) * (p.MeasuredSNRdB - my)
		vx += (p.ExpectedSNRdB - mx) * (p.ExpectedSNRdB - mx)
		vy += (p.MeasuredSNRdB - my) * (p.MeasuredSNRdB - my)
	}
	if rho := cov / math.Sqrt(vx*vy); rho < 0.7 {
		t.Fatalf("expected/measured correlation %v", rho)
	}
}

func TestFig11bWaterfall(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := Fig11b(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// For each modulation: BER at the lowest symbol rate must be far
	// below BER at the highest (the MRC waterfall).
	for _, mod := range []tag.Modulation{tag.BPSK, tag.QPSK} {
		var hi, lo float64
		var hiSNR, loSNR float64
		for _, r := range rows {
			if r.Mod != mod {
				continue
			}
			if r.SymbolRateHz == 2.5e6 {
				hi, hiSNR = r.RawBER, r.MeanSNRdB
			}
			if r.SymbolRateHz == 100e3 {
				lo, loSNR = r.RawBER, r.MeanSNRdB
			}
		}
		if loSNR <= hiSNR+5 {
			t.Fatalf("%v: SNR should grow ≥5 dB from 2.5 MHz to 100 kHz (%v vs %v)", mod, loSNR, hiSNR)
		}
		if lo > hi/2 && hi > 1e-4 {
			t.Fatalf("%v: BER did not fall with symbol period: %v vs %v", mod, lo, hi)
		}
	}
}

func TestFig12aLoadedNetworkMedian(t *testing.T) {
	res, err := Fig12a(20, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerAPBps) != 20 {
		t.Fatalf("%d APs", len(res.PerAPBps))
	}
	// Paper: median ≈ 4 Mbps ≈ 80% of the 5 Mbps optimum.
	frac := res.FractionOfOptimal()
	if frac < 0.5 || frac > 0.98 {
		t.Fatalf("median fraction of optimal %v", frac)
	}
}

func TestFig12bImpactDecaysWithTagDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("physical PHY Monte-Carlo")
	}
	rows, err := Fig12b(3, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	near := rows[0]
	far := rows[len(rows)-1]
	if near.TagDistanceM != 0.25 {
		t.Fatalf("first row %v", near.TagDistanceM)
	}
	// Far tags must cost (almost) nothing; near tags may cost a little
	// but must not collapse the network (paper: ≤10%).
	if far.DropFraction > 0.15 {
		t.Fatalf("distant tag drop %v", far.DropFraction)
	}
	if near.DropFraction > 0.5 {
		t.Fatalf("near tag drop %v too destructive", near.DropFraction)
	}
}

func TestFig13OnlyTopRatesSuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("physical PHY Monte-Carlo")
	}
	rows, err := Fig13(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	// Low rates: negligible throughput impact even with the tag at
	// 0.25 m (paper Fig. 13a).
	for _, r := range rows {
		if r.WiFiMbps <= 12 {
			drop := 1 - r.Result.ThroughputOnBps/math.Max(r.Result.ThroughputOffBps, 1)
			if drop > 0.25 {
				t.Fatalf("%d Mbps: drop %v too large", r.WiFiMbps, drop)
			}
		}
		// SNR degradation bounded everywhere.
		if d := r.Result.SNRDegradationDB(); d > 6 {
			t.Fatalf("%d Mbps: SNR degradation %v dB", r.WiFiMbps, d)
		}
	}
}

func TestHeadlineOrdersOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	h, err := Headline(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h.BackFiAt1mBps < 3e6 {
		t.Fatalf("BackFi @1 m %v bps", h.BackFiAt1mBps)
	}
	if h.BackFiAt5mBps < 0.5e6 {
		t.Fatalf("BackFi @5 m %v bps", h.BackFiAt5mBps)
	}
	if h.SpeedupAt1m() < 1000 {
		t.Fatalf("speedup %v×, paper claims 3 orders of magnitude", h.SpeedupAt1m())
	}
	if h.ToneResidualDB < 30 {
		t.Fatalf("tone residual %v dB — wideband failure should be dramatic", h.ToneResidualDB)
	}
	if !strings.Contains(RenderHeadline(h), "speedup") {
		t.Fatal("render incomplete")
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	rows7, _ := Fig7()
	if RenderFig7(rows7) == "" {
		t.Fatal("empty Fig7 render")
	}
	if RenderFig8([]Fig8Row{{DistanceM: 1, Best32Bps: 5e6, Config32: "x", Best96Bps: 5e6, Config96: "y"}}) == "" {
		t.Fatal("empty Fig8 render")
	}
	if RenderFig10([]Fig10Row{{DistanceM: 1, TargetBps: 1.25e6}}) == "" {
		t.Fatal("empty Fig10 render")
	}
	if RenderFig12b([]Fig12bRow{{TagDistanceM: 0.25}}) == "" {
		t.Fatal("empty Fig12b render")
	}
	if RenderFig13([]Fig13Row{{WiFiMbps: 6}}) == "" {
		t.Fatal("empty Fig13 render")
	}
	if RenderFig11b([]Fig11bRow{{Mod: tag.BPSK, SymbolRateHz: 1e6}}) == "" {
		t.Fatal("empty Fig11b render")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials <= 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if QuickOptions().Trials >= DefaultOptions().Trials {
		t.Fatal("quick should be cheaper than default")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if percentile(v, 0.5) != 3 {
		t.Fatalf("median = %v", percentile(v, 0.5))
	}
	if percentile(v, 0) != 1 || percentile(v, 1) != 5 {
		t.Fatal("percentile endpoints wrong")
	}
	if percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Linear interpolation between order statistics: p90 of the sorted
	// odd slice [1..5] sits at position 3.6 → 4 + 0.6·(5−4).
	if got := percentile(v, 0.9); math.Abs(got-4.6) > 1e-12 {
		t.Fatalf("odd p90 = %v, want 4.6", got)
	}
	// Even-length slices have no middle element; the median must
	// interpolate, not truncate to an index.
	even := []float64{4, 1, 3, 2}
	if got := percentile(even, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if got := percentile(even, 0.9); math.Abs(got-3.7) > 1e-12 {
		t.Fatalf("even p90 = %v, want 3.7", got)
	}
	// The input slice must not be reordered by the call.
	if v[0] != 5 || v[4] != 4 {
		t.Fatalf("percentile mutated its input: %v", v)
	}
	// percentileSorted agrees with percentile on pre-sorted data.
	sorted := []float64{1, 2, 3, 4, 5}
	if percentileSorted(sorted, 0.9) != percentile(sorted, 0.9) {
		t.Fatal("percentileSorted disagrees with percentile")
	}
}

func TestFig12aDCFVariant(t *testing.T) {
	res, err := Fig12aDCF(10, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerAPBps) != 10 {
		t.Fatalf("%d APs", len(res.PerAPBps))
	}
	// Contention-derived airtime still delivers a large fraction of the
	// optimum in downlink-heavy cells.
	if frac := res.FractionOfOptimal(); frac < 0.3 || frac > 0.98 {
		t.Fatalf("DCF median fraction %v", frac)
	}
}

func TestExcitationComparisonGenerality(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := ExcitationComparison(Options{Trials: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byKind := map[string]ExcitationRow{}
	for _, r := range rows {
		byKind[r.Excitation] = r
	}
	// The generality claim: every excitation family carries the link.
	for _, kind := range []string{"wifi", "11b", "zigbee", "ble", "white"} {
		if byKind[kind].SuccessRate < 0.75 {
			t.Fatalf("%s excitation success %v", kind, byKind[kind].SuccessRate)
		}
	}
	// Narrowband excitations occupy far less of the band than WiFi.
	if byKind["ble"].BandOccupancy >= byKind["wifi"].BandOccupancy {
		t.Fatalf("BLE occupancy %v should be below WiFi %v",
			byKind["ble"].BandOccupancy, byKind["wifi"].BandOccupancy)
	}
	if RenderExcitation(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestMIMOExtensionHelpsAtRange(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := MIMOExtension(Options{Trials: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(nrx int, d float64) MIMORow {
		for _, r := range rows {
			if r.Antennas == nrx && r.DistanceM == d {
				return r
			}
		}
		t.Fatalf("missing row %d/%v", nrx, d)
		return MIMORow{}
	}
	// More antennas → higher combined SNR at every range.
	for _, d := range []float64{3, 5, 7} {
		if get(4, d).MeanJointSNRdB <= get(1, d).MeanJointSNRdB {
			t.Fatalf("4 antennas not above 1 at %v m: %v vs %v",
				d, get(4, d).MeanJointSNRdB, get(1, d).MeanJointSNRdB)
		}
	}
	// And success at the far edge does not get worse.
	if get(4, 7).SuccessRate < get(1, 7).SuccessRate {
		t.Fatalf("4 antennas worse at 7 m: %v vs %v", get(4, 7).SuccessRate, get(1, 7).SuccessRate)
	}
}
