package experiments

import (
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := Ablations(Options{Trials: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Study+"/"+r.Variant] = r
	}

	// The PA-tapped analog stage is what makes 1 m work: digital-only
	// cancellation leaves the TX-noise residue and the link collapses.
	full := byKey["analog cancellation stage/analog+digital (BackFi)"]
	digOnly := byKey["analog cancellation stage/digital-only"]
	if full.SuccessRate < 0.75 {
		t.Fatalf("full SIC success %v", full.SuccessRate)
	}
	if digOnly.MeanSNRdB >= full.MeanSNRdB-5 {
		t.Fatalf("digital-only SNR %v should be far below full %v", digOnly.MeanSNRdB, full.MeanSNRdB)
	}

	// Longer preambles can't hurt at the edge (channel estimate
	// improves with training).
	p8 := byKey["tag preamble length @6 m/8 µs"]
	p96 := byKey["tag preamble length @6 m/96 µs"]
	if p96.MeanSNRdB < p8.MeanSNRdB-1 {
		t.Fatalf("96 µs SNR %v below 8 µs %v", p96.MeanSNRdB, p8.MeanSNRdB)
	}

	// Ideal TX beats −20 dB EVM at short range with 16PSK.
	ideal := byKey["TX hardware EVM @0.5 m (16PSK)/ideal TX"]
	bad := byKey["TX hardware EVM @0.5 m (16PSK)/-20 dB EVM"]
	if ideal.MeanSNRdB <= bad.MeanSNRdB {
		t.Fatalf("ideal TX SNR %v not above −20 dB EVM's %v", ideal.MeanSNRdB, bad.MeanSNRdB)
	}

	// Coding must deliver at least as many frames as raw slicing would.
	coded := byKey["convolutional code @4 m/coded (BackFi)"]
	uncoded := byKey["convolutional code @4 m/uncoded (raw-slice proxy)"]
	if coded.SuccessRate < uncoded.SuccessRate {
		t.Fatalf("coded %v below uncoded proxy %v", coded.SuccessRate, uncoded.SuccessRate)
	}

	if !strings.Contains(RenderAblations(rows), "analog") {
		t.Fatal("render incomplete")
	}
}

func TestAblationPSKBeatsQAM(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo sweep")
	}
	rows, err := Ablations(Options{Trials: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var psk, qam AblationRow
	for _, r := range rows {
		if r.Study != "modulation family @2 m, 4 b/sym" {
			continue
		}
		if r.Variant == "16PSK (BackFi)" {
			psk = r
		} else {
			qam = r
		}
	}
	// The paper's design argument: at equal bits/symbol, the
	// constant-envelope PSK reflection yields a lower raw BER than the
	// peak-limited QAM one.
	if psk.MeanRawBER > qam.MeanRawBER {
		t.Fatalf("PSK raw BER %v should not exceed QAM's %v", psk.MeanRawBER, qam.MeanRawBER)
	}
}
