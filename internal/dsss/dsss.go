// Package dsss implements an 802.11b-style DSSS PHY at complex
// baseband: 11-chip Barker spreading with DBPSK at 1 Mbps (and DQPSK at
// 2 Mbps), the long PLCP preamble (scrambled sync + SFD) and header
// with CRC-16 — sampled at the simulator's 20 MHz rate (one 1 µs
// Barker symbol = exactly 20 samples).
//
// In 2015-era hotspots much of the ambient traffic was still 11b; this
// PHY joins wifi (OFDM), zigbee (O-QPSK), and ble (GFSK) as excitation
// sources for the BackFi reader.
package dsss

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/cmplx"

	"backfi/internal/dsp"
	"backfi/internal/fec"
)

// PHY constants.
const (
	// SampleRate is the simulation baseband rate.
	SampleRate = 20e6
	// SymbolRateHz is the Barker symbol rate (1 Msym/s).
	SymbolRateHz = 1e6
	// SamplesPerSymbol at 20 MHz.
	SamplesPerSymbol = int(SampleRate / SymbolRateHz)
	// SyncBits is the long-preamble sync length.
	SyncBits = 128
	// MaxPayload is the PSDU ceiling handled here.
	MaxPayload = 2047
)

// Rate selects the DSSS bit rate.
type Rate int

const (
	// DBPSK1M is 1 Mbps (1 bit per Barker symbol, differential BPSK).
	DBPSK1M Rate = iota
	// DQPSK2M is 2 Mbps (2 bits per symbol, differential QPSK).
	DQPSK2M
)

// String names the rate.
func (r Rate) String() string {
	if r == DQPSK2M {
		return "2 Mbps DQPSK"
	}
	return "1 Mbps DBPSK"
}

// bitsPerSymbol of the rate.
func (r Rate) bitsPerSymbol() int {
	if r == DQPSK2M {
		return 2
	}
	return 1
}

// barker is the 11-chip sequence.
var barker = [11]float64{1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1}

// symbolWave is the 20-sample unit-power Barker waveform (chip i at
// sample floor(n·11/20)).
var symbolWave = buildSymbolWave()

func buildSymbolWave() []complex128 {
	w := make([]complex128, SamplesPerSymbol)
	for n := range w {
		w[n] = complex(barker[n*11/SamplesPerSymbol], 0)
	}
	return w
}

// sfd is the long-preamble start-of-frame delimiter (0xF3A0,
// transmitted LSB first).
const sfd uint32 = 0xF3A0

// Transmit builds the PPDU waveform: scrambled sync (128 ones), SFD,
// a 6-byte header (signal, service, length×2, CRC-16×2), and the PSDU,
// all Barker-spread at the chosen rate (header always at 1 Mbps, per
// the long-preamble format).
func Transmit(psdu []byte, rate Rate) ([]complex128, error) {
	if len(psdu) < 1 || len(psdu) > MaxPayload {
		return nil, fmt.Errorf("dsss: PSDU length %d out of [1,%d]", len(psdu), MaxPayload)
	}
	// Clear-text PPDU bits: sync (128 ones), SFD, header, PSDU.
	var clear []byte
	for i := 0; i < SyncBits; i++ {
		clear = append(clear, 1)
	}
	for i := 0; i < 16; i++ {
		clear = append(clear, byte(sfd>>uint(i)&1))
	}
	// Header: SIGNAL (rate code), SERVICE, LENGTH (µs), CRC-16.
	hdr := make([]byte, 4)
	if rate == DQPSK2M {
		hdr[0] = 0x14 // 2 Mbps code (20 × 100 kbps)
	} else {
		hdr[0] = 0x0A // 1 Mbps
	}
	usPerByte := 8.0 / float64(rate.bitsPerSymbol())
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(math.Ceil(float64(len(psdu))*usPerByte)))
	crc := fec.CRC16CCITT(hdr)
	clear = append(clear, fec.BytesToBits(hdr)...)
	clear = append(clear, fec.BytesToBits([]byte{byte(crc >> 8), byte(crc)})...)
	clear = append(clear, fec.BytesToBits(psdu)...)

	// Self-synchronizing whitening over the whole PPDU (802.11b's
	// G(z) = z^−7 + z^−4 + 1), then differential Barker modulation:
	// preamble+header at 1 Mbps, payload at the selected rate.
	bits := fec.SelfSyncScramble(clear, 0x1B)
	hdrSyms := SyncBits + 16 + 48
	wave := modulateDiff(bits[:hdrSyms], DBPSK1M)
	wave = append(wave, modulateDiffFrom(bits[hdrSyms:], rate, lastPhase(wave))...)
	return wave, nil
}

// modulateDiff starts from reference phase 0.
func modulateDiff(bits []byte, rate Rate) []complex128 {
	return modulateDiffFrom(bits, rate, 0)
}

// modulateDiffFrom differentially encodes bits onto Barker symbols:
// DBPSK shifts phase by 0/π per bit; DQPSK by 0, π/2, π, 3π/2 per
// dibit (Gray: 00→0, 01→π/2, 11→π, 10→3π/2).
func modulateDiffFrom(bits []byte, rate Rate, phase float64) []complex128 {
	k := rate.bitsPerSymbol()
	nsym := len(bits) / k
	out := make([]complex128, 0, nsym*SamplesPerSymbol)
	for s := 0; s < nsym; s++ {
		var dphi float64
		if k == 1 {
			dphi = math.Pi * float64(bits[s])
		} else {
			switch bits[2*s]<<1 | bits[2*s+1] {
			case 0b00:
				dphi = 0
			case 0b01:
				dphi = math.Pi / 2
			case 0b11:
				dphi = math.Pi
			default:
				dphi = 3 * math.Pi / 2
			}
		}
		phase += dphi
		rot := dsp.Phasor(phase)
		for _, c := range symbolWave {
			out = append(out, c*rot)
		}
	}
	return out
}

// lastPhase recovers the final symbol's phase reference.
func lastPhase(wave []complex128) float64 {
	if len(wave) < SamplesPerSymbol {
		return 0
	}
	sym := wave[len(wave)-SamplesPerSymbol:]
	return cmplx.Phase(dsp.Dot(sym, symbolWave))
}

// Receive synchronizes on the Barker grid, finds the SFD, validates the
// header CRC, and descrambles the PSDU.
func Receive(samples []complex128) ([]byte, error) {
	if len(samples) < (SyncBits+16+48+8)*SamplesPerSymbol {
		return nil, fmt.Errorf("dsss: stream too short")
	}
	// Chip-grid timing: the Barker autocorrelation peaks once per
	// symbol; pick the offset with the largest mean despread energy.
	bestOff, bestE := 0, -1.0
	for off := 0; off < SamplesPerSymbol; off++ {
		var e float64
		for s := 0; s < 64; s++ {
			p := off + s*SamplesPerSymbol
			c := dsp.Dot(samples[p:p+SamplesPerSymbol], symbolWave)
			e += real(c)*real(c) + imag(c)*imag(c)
		}
		if e > bestE {
			bestE, bestOff = e, off
		}
	}
	// Despread all symbols to phasors, then differential-decode at
	// 1 bit/symbol for preamble+header.
	var phasors []complex128
	for p := bestOff; p+SamplesPerSymbol <= len(samples); p += SamplesPerSymbol {
		phasors = append(phasors, dsp.Dot(samples[p:p+SamplesPerSymbol], symbolWave))
	}
	bits := make([]byte, 0, len(phasors))
	for i := 1; i < len(phasors); i++ {
		d := phasors[i] * cmplx.Conj(phasors[i-1])
		if real(d) < 0 {
			bits = append(bits, 1)
		} else {
			bits = append(bits, 0)
		}
	}
	// The self-synchronizing descrambler aligns from the received bits
	// themselves, so reception may start anywhere in the stream.
	clear := fec.SelfSyncDescramble(bits, 0)
	sfdPos := -1
	for i := 16; i+16 <= len(clear); i++ {
		match := true
		for k := 0; k < 16; k++ {
			if clear[i+k] != byte(sfd>>uint(k)&1) {
				match = false
				break
			}
		}
		// Require a run of descrambled sync ones before the SFD so a
		// payload byte pattern cannot alias as the delimiter.
		if match && clear[i-1] == 1 && clear[i-2] == 1 && clear[i-3] == 1 && clear[i-4] == 1 {
			sfdPos = i + 16
			break
		}
	}
	if sfdPos < 0 {
		return nil, fmt.Errorf("dsss: SFD not found")
	}
	if sfdPos+48 > len(clear) {
		return nil, fmt.Errorf("dsss: truncated header")
	}
	hdrBytes := fec.BitsToBytes(clear[sfdPos : sfdPos+48])
	wantCRC := uint16(hdrBytes[4])<<8 | uint16(hdrBytes[5])
	if fec.CRC16CCITT(hdrBytes[:4]) != wantCRC {
		return nil, fmt.Errorf("dsss: header CRC mismatch")
	}
	rate := DBPSK1M
	if hdrBytes[0] == 0x14 {
		rate = DQPSK2M
	}
	lengthUs := int(binary.LittleEndian.Uint16(hdrBytes[2:4]))
	k := rate.bitsPerSymbol()
	psduBytes := lengthUs * k / 8
	if psduBytes < 1 || psduBytes > MaxPayload {
		return nil, fmt.Errorf("dsss: bad length %d", psduBytes)
	}

	// Payload symbols follow the header. bits[i] is the transition into
	// phasor i+1, so payload bit j lives at bits[sfdPos+48+...]; at
	// 2 Mbps each symbol transition carries a dibit.
	needSyms := (8*psduBytes + k - 1) / k
	if sfdPos+48+needSyms > len(bits)+0 {
		return nil, fmt.Errorf("dsss: truncated payload")
	}
	scrambledPay := make([]byte, 0, 8*psduBytes)
	if k == 1 {
		scrambledPay = append(scrambledPay, bits[sfdPos+48:sfdPos+48+needSyms]...)
	} else {
		// Re-derive dibits from the phasors (the 1-bit slicer above
		// only kept BPSK decisions). Phasor index of the first payload
		// symbol: bits index i corresponds to transition into phasor
		// i+1, so payload transitions start at phasor sfdPos+48+1.
		base := sfdPos + 48
		for s := 0; s < needSyms; s++ {
			i := base + s + 1
			if i >= len(phasors) {
				return nil, fmt.Errorf("dsss: truncated payload")
			}
			d := phasors[i] * cmplx.Conj(phasors[i-1])
			phi := cmplx.Phase(d)
			q := int(math.Round(phi/(math.Pi/2))+4) % 4
			switch q {
			case 0:
				scrambledPay = append(scrambledPay, 0, 0)
			case 1:
				scrambledPay = append(scrambledPay, 0, 1)
			case 2:
				scrambledPay = append(scrambledPay, 1, 1)
			default:
				scrambledPay = append(scrambledPay, 1, 0)
			}
		}
	}
	scrambledPay = scrambledPay[:8*psduBytes]
	// For the 1 Mbps path the payload bits are part of the same
	// received stream, so reuse the aligned descramble output.
	if k == 1 {
		return fec.BitsToBytes(clear[sfdPos+48 : sfdPos+48+8*psduBytes]), nil
	}
	// For DQPSK the scrambler advanced one bit per TX bit; rebuild the
	// register from the scrambled header tail and run forward.
	state := byte(0)
	for i := sfdPos + 48 - 7; i < sfdPos+48; i++ {
		state = state<<1 | bits[i]
	}
	out := make([]byte, len(scrambledPay))
	for i, b := range scrambledPay {
		out[i] = b ^ (state >> 3 & 1) ^ (state >> 6 & 1)
		state = (state<<1 | b) & 0x7F
	}
	return fec.BitsToBytes(out), nil
}

// AirtimeSeconds returns the on-air duration of a PSDU at the rate.
func AirtimeSeconds(psduLen int, rate Rate) float64 {
	symbols := SyncBits + 16 + 48 + (8*psduLen+rate.bitsPerSymbol()-1)/rate.bitsPerSymbol()
	return float64(symbols) / SymbolRateHz
}
