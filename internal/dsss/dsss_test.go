package dsss

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/dsp"
)

func TestBarkerAutocorrelation(t *testing.T) {
	// The Barker-11 sequence's aperiodic autocorrelation sidelobes are
	// all ≤ 1 (vs peak 11) — the property that gives chip timing.
	for lag := 1; lag < 11; lag++ {
		var acc float64
		for i := 0; i+lag < 11; i++ {
			acc += barker[i] * barker[i+lag]
		}
		if math.Abs(acc) > 1 {
			t.Fatalf("lag %d sidelobe %v", lag, acc)
		}
	}
}

func TestSymbolWaveStructure(t *testing.T) {
	if len(symbolWave) != 20 {
		t.Fatalf("symbol wave %d samples", len(symbolWave))
	}
	for _, v := range symbolWave {
		if real(v) != 1 && real(v) != -1 || imag(v) != 0 {
			t.Fatalf("chip value %v", v)
		}
	}
}

func TestCleanRoundTrip1M(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 50, 500} {
		psdu := make([]byte, n)
		r.Read(psdu)
		wave, err := Transmit(psdu, DBPSK1M)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Receive(dsp.Concat(dsp.Zeros(333), wave, dsp.Zeros(200)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("n=%d: PSDU differs", n)
		}
	}
}

func TestCleanRoundTrip2M(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	psdu := make([]byte, 200)
	r.Read(psdu)
	wave, err := Transmit(psdu, DQPSK2M)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Receive(dsp.Concat(dsp.Zeros(100), wave, dsp.Zeros(100)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, psdu) {
		t.Fatal("DQPSK PSDU differs")
	}
}

func TestNoisyRoundTripWithSpreadingGain(t *testing.T) {
	// 11-chip spreading (×20 samples): decodes below 0 dB raw SNR.
	r := rand.New(rand.NewSource(3))
	psdu := make([]byte, 100)
	r.Read(psdu)
	wave, _ := Transmit(psdu, DBPSK1M)
	noise := channel.NewAWGN(r, dsp.UnDB(3)) // −3 dB SNR
	got, err := Receive(noise.Add(dsp.Concat(dsp.Zeros(100), wave, dsp.Zeros(100))))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, psdu) {
		t.Fatal("PSDU corrupted at −3 dB SNR")
	}
}

func TestPhaseRotationTolerated(t *testing.T) {
	// Differential modulation: a constant channel phase cancels.
	r := rand.New(rand.NewSource(4))
	psdu := make([]byte, 60)
	r.Read(psdu)
	wave, _ := Transmit(psdu, DBPSK1M)
	rotated := dsp.Scale(wave, dsp.Phasor(2.5))
	got, err := Receive(dsp.Concat(dsp.Zeros(60), rotated, dsp.Zeros(60)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, psdu) {
		t.Fatal("rotation broke differential decoding")
	}
}

func TestReceiveErrors(t *testing.T) {
	if _, err := Receive(dsp.Zeros(100)); err == nil {
		t.Fatal("expected short-stream error")
	}
	r := rand.New(rand.NewSource(5))
	noise := channel.NewAWGN(r, 1)
	if _, err := Receive(noise.Samples(8000)); err == nil {
		t.Fatal("expected SFD-not-found on noise")
	}
	psdu := make([]byte, 400)
	wave, _ := Transmit(psdu, DBPSK1M)
	if _, err := Receive(wave[:len(wave)*2/3]); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestTransmitValidation(t *testing.T) {
	if _, err := Transmit(nil, DBPSK1M); err == nil {
		t.Fatal("expected error for empty PSDU")
	}
	if _, err := Transmit(make([]byte, MaxPayload+1), DBPSK1M); err == nil {
		t.Fatal("expected error for oversized PSDU")
	}
}

func TestAirtimeAndRateNames(t *testing.T) {
	// 100 bytes at 1 Mbps: (128+16+48+800) µs.
	if at := AirtimeSeconds(100, DBPSK1M); math.Abs(at-992e-6) > 1e-12 {
		t.Fatalf("airtime %v", at)
	}
	// 2 Mbps halves only the payload part.
	if at := AirtimeSeconds(100, DQPSK2M); math.Abs(at-592e-6) > 1e-12 {
		t.Fatalf("airtime %v", at)
	}
	if DBPSK1M.String() == DQPSK2M.String() {
		t.Fatal("rate names collide")
	}
}

func TestConstantEnvelope(t *testing.T) {
	wave, _ := Transmit([]byte{0xAB, 0xCD}, DBPSK1M)
	for i, v := range wave {
		m := real(v)*real(v) + imag(v)*imag(v)
		if math.Abs(m-1) > 1e-9 {
			t.Fatalf("sample %d power %v — DSSS/PSK is constant envelope", i, m)
		}
	}
}
