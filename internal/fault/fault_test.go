package fault

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"backfi/internal/obs"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *Profile
		ok   bool
	}{
		{"nil", nil, true},
		{"zero", &Profile{}, true},
		{"standard", func() *Profile { p := Standard(0.7); return &p }(), true},
		{"trunc prob high", &Profile{TruncateProb: 1.5}, false},
		{"trunc prob negative", &Profile{TruncateProb: -0.1}, false},
		{"preamble prob high", &Profile{PreambleCorruptProb: 2}, false},
		{"ack prob negative", &Profile{ACKDropProb: -1}, false},
		{"duty one", &Profile{InterfDuty: 1}, false},
		{"duty negative", &Profile{InterfDuty: -0.2}, false},
		{"trunc frac high", &Profile{TruncateFrac: 1.1}, false},
		{"adc bits negative", &Profile{ADCBits: -1}, false},
		{"adc bits huge", &Profile{ADCBits: 48}, false},
		{"phase noise negative", &Profile{PhaseNoiseHz: -10}, false},
		{"burst negative", &Profile{InterfBurstUs: -1, InterfDuty: 0.1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestNewInjectorNilForDisabled(t *testing.T) {
	for _, p := range []*Profile{nil, {}} {
		in, err := NewInjector(p, 1, 20e6, nil)
		if err != nil {
			t.Fatalf("profile %+v: %v", p, err)
		}
		if in != nil {
			t.Fatalf("profile %+v: expected nil injector", p)
		}
	}
	if _, err := NewInjector(&Profile{TruncateProb: 2}, 1, 20e6, nil); err == nil {
		t.Fatal("invalid profile must error")
	}
}

// TestNilInjectorNoOps: every method of a nil injector returns its
// input unchanged — the contract that makes LinkConfig.Faults == nil
// byte-identical to the unfaulted pipeline.
func TestNilInjectorNoOps(t *testing.T) {
	var in *Injector
	x := []complex128{1, 2i, 3}
	if got := in.ApplyFrontEnd(x); &got[0] != &x[0] {
		t.Fatal("nil ApplyFrontEnd must return the same slice")
	}
	m := []complex128{1, -1}
	in.ApplyTagPhaseNoise(m)
	if m[0] != 1 || m[1] != -1 {
		t.Fatal("nil ApplyTagPhaseNoise mutated input")
	}
	if in.CorruptPreamble(m, 0, 2, 1) != 0 {
		t.Fatal("nil CorruptPreamble flipped chips")
	}
	if in.AddInterference(x) != 0 {
		t.Fatal("nil AddInterference reported bursts")
	}
	if in.ApplyADC(x) != 0 {
		t.Fatal("nil ApplyADC reported clips")
	}
	if in.TruncateTail(x, 0, 3) != 0 {
		t.Fatal("nil TruncateTail lost samples")
	}
	if in.DropACK() {
		t.Fatal("nil DropACK dropped")
	}
	if in.DropWake() {
		t.Fatal("nil DropWake dropped")
	}
	if x[0] != 1 || x[1] != 2i || x[2] != 3 {
		t.Fatal("nil methods mutated input")
	}
	if (in.Profile() != Profile{}) {
		t.Fatal("nil Profile() not zero")
	}
}

func randomWave(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

// TestDeterminism: a fixed (profile, seed) reproduces every method's
// output exactly across independent injectors.
func TestDeterminism(t *testing.T) {
	p := Standard(0.8)
	run := func() ([]complex128, []complex128, []complex128, bool) {
		in, err := NewInjector(&p, 77, 20e6, nil)
		if err != nil {
			t.Fatal(err)
		}
		x := in.ApplyFrontEnd(randomWave(512, 1))
		m := randomWave(512, 2)
		in.ApplyTagPhaseNoise(m)
		in.CorruptPreamble(m, 64, 8, 20)
		y := randomWave(512, 3)
		in.AddInterference(y)
		in.ApplyADC(y)
		in.TruncateTail(y, 100, 300)
		return x, m, y, in.DropACK()
	}
	x1, m1, y1, d1 := run()
	x2, m2, y2, d2 := run()
	if d1 != d2 {
		t.Fatal("DropACK diverged")
	}
	for i := range x1 {
		if x1[i] != x2[i] || m1[i] != m2[i] || y1[i] != y2[i] {
			t.Fatalf("sample %d diverged", i)
		}
	}
}

// TestDropWake pins the wake-fault edge probabilities and the injected
// count surfacing in the §5c registry.
func TestDropWake(t *testing.T) {
	reg := obs.NewRegistry()
	in, err := NewInjector(&Profile{NoWakeProb: 1}, 5, 20e6, reg)
	if err != nil {
		t.Fatal(err)
	}
	const packets = 7
	for i := 0; i < packets; i++ {
		if !in.DropWake() {
			t.Fatal("NoWakeProb=1 must drop every wake")
		}
	}
	if got := reg.Snapshot().Counter(obs.MetricFaultsInjected, `{kind="wake_drop"}`); got != packets {
		t.Fatalf("wake_drop count %d, want %d", got, packets)
	}
	never, err := NewInjector(&Profile{NoWakeProb: 0, ACKDropProb: 1}, 5, 20e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if never.DropWake() {
		t.Fatal("NoWakeProb=0 dropped a wake")
	}
	if err := (&Profile{NoWakeProb: 1.5}).Validate(); err == nil {
		t.Fatal("NoWakeProb above 1 must fail validation")
	}
}

func TestCFORotation(t *testing.T) {
	p := &Profile{CFOHz: 1000}
	in, err := NewInjector(p, 1, 20e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 100
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	out := in.ApplyFrontEnd(x)
	for i, v := range out {
		want := 2 * math.Pi * 1000 / 20e6 * float64(i)
		if diff := math.Abs(cmplx.Phase(v) - want); diff > 1e-9 {
			t.Fatalf("sample %d: phase %v want %v", i, cmplx.Phase(v), want)
		}
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("sample %d: CFO changed magnitude", i)
		}
	}
}

func TestADCQuantizeAndClip(t *testing.T) {
	p := &Profile{ADCBits: 4, ADCClipDB: 0} // full scale = RMS, defaults give 12 → set via withDefaults check below
	in, err := NewInjector(p, 1, 20e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.Profile().ADCClipDB != 12 {
		t.Fatalf("withDefaults: ADCClipDB = %v, want 12", in.Profile().ADCClipDB)
	}
	// A single huge outlier among unit samples must clip.
	y := make([]complex128, 256)
	for i := range y {
		y[i] = complex(1, -1)
	}
	y[7] = complex(1e6, 0)
	clipped := in.ApplyADC(y)
	if clipped == 0 {
		t.Fatal("outlier did not clip")
	}
	// All surviving values must lie on the quantization grid.
	var pw float64
	levels := map[float64]bool{}
	for _, v := range y {
		pw += real(v)*real(v) + imag(v)*imag(v)
		levels[real(v)] = true
		levels[imag(v)] = true
	}
	if len(levels) > 1<<5 {
		t.Fatalf("more distinct levels (%d) than a 4-bit grid plus clip rails allows", len(levels))
	}
}

func TestInterferenceDuty(t *testing.T) {
	p := &Profile{InterfDuty: 0.3, InterfPowerDBm: -40, InterfBurstUs: 5}
	in, err := NewInjector(p, 9, 20e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 200000
	y := make([]complex128, n)
	in.AddInterference(y)
	hit := 0
	for _, v := range y {
		if v != 0 {
			hit++
		}
	}
	duty := float64(hit) / float64(n)
	if duty < 0.2 || duty > 0.4 {
		t.Fatalf("measured duty %.3f far from configured 0.3", duty)
	}
}

func TestTruncateTailBounds(t *testing.T) {
	p := &Profile{TruncateProb: 1, TruncateFrac: 0.5}
	in, err := NewInjector(p, 3, 20e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	y := randomWave(1000, 4)
	lost := in.TruncateTail(y, 200, 600)
	if lost < 1 || lost > 301 {
		t.Fatalf("lost %d samples, want within (0, 0.5·600]", lost)
	}
	// Only the tail of [200, 800) may be zeroed; everything outside is intact.
	for i := 0; i < 800-lost; i++ {
		if y[i] == 0 {
			t.Fatalf("sample %d before the lost tail was zeroed", i)
		}
	}
	for i := 800 - lost; i < 800; i++ {
		if y[i] != 0 {
			t.Fatalf("sample %d inside the lost tail survived", i)
		}
	}
	for i := 800; i < 1000; i++ {
		if y[i] == 0 {
			t.Fatalf("sample %d after the packet was zeroed", i)
		}
	}
}

func TestPreambleCorruptFlipsWholeChips(t *testing.T) {
	p := &Profile{PreambleCorruptProb: 1}
	in, err := NewInjector(p, 5, 20e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := make([]complex128, 200)
	for i := range m {
		m[i] = 1
	}
	flipped := in.CorruptPreamble(m, 40, 4, 20)
	if flipped != 4 {
		t.Fatalf("flipped %d chips, want all 4", flipped)
	}
	for i := 40; i < 120; i++ {
		if m[i] != -1 {
			t.Fatalf("preamble sample %d not inverted", i)
		}
	}
	for i := 0; i < 40; i++ {
		if m[i] != 1 {
			t.Fatalf("pre-preamble sample %d modified", i)
		}
	}
}

func TestStandardProfile(t *testing.T) {
	p0, p5 := Standard(0), Standard(0.5)
	if p0.Enabled() {
		t.Fatal("severity 0 must disable everything")
	}
	if !p5.Enabled() {
		t.Fatal("severity 0.5 must enable impairments")
	}
	if Standard(-3) != Standard(0) || Standard(7) != Standard(1) {
		t.Fatal("severity must clamp to [0,1]")
	}
	if err := func() *Profile { p := Standard(1); return &p }().Validate(); err != nil {
		t.Fatalf("Standard(1) invalid: %v", err)
	}
}

func TestInjectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := &Profile{TruncateProb: 1, TruncateFrac: 0.2, ACKDropProb: 1}
	in, err := NewInjector(p, 11, 20e6, reg)
	if err != nil {
		t.Fatal(err)
	}
	in.TruncateTail(randomWave(100, 1), 0, 100)
	if !in.DropACK() {
		t.Fatal("ACKDropProb=1 must drop")
	}
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, c := range snap.Counters {
		if c.Name == obs.MetricFaultsInjected && c.Value > 0 {
			found[c.Labels] = true
		}
	}
	if len(found) < 2 {
		t.Fatalf("want truncate and ack_drop counters > 0, got %+v (all: %+v)", found, snap.Counters)
	}
}
