package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Timeline scripts how a link's fault profile changes over a session's
// lifetime — the input to the chaos/soak harness (cmd/backfi-chaos)
// and to the serving layer's scripted-fault mode (DESIGN.md §5f).
//
// Steps are indexed by *frame count*, not wall clock: step k applies
// from the session's Frame-th offered frame onward. Frame indexing is
// what keeps scripted chaos deterministic — a session serves its
// frames in order regardless of shard count, worker count, or how slow
// the machine is, so the same (seed, timeline) pair reproduces the
// same fault sequence everywhere.
type Timeline struct {
	steps []TimelineStep
}

// TimelineStep is one scripted point.
type TimelineStep struct {
	// Frame is the 0-based session frame index the step applies from.
	Frame int
	// Severity selects Standard(Severity) when Profile is nil.
	Severity float64
	// Profile, when non-nil, overrides the severity mapping with an
	// explicit impairment profile.
	Profile *Profile
}

// profile materializes the step's profile.
func (s TimelineStep) profile() *Profile {
	if s.Profile != nil {
		return s.Profile
	}
	p := Standard(s.Severity)
	return &p
}

// NewTimeline validates and sorts the steps (stably, by frame; later
// entries at the same frame win). An empty step list is an error — use
// a nil *Timeline for "no script".
func NewTimeline(steps []TimelineStep) (*Timeline, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("fault: empty timeline")
	}
	out := make([]TimelineStep, len(steps))
	copy(out, steps)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	for _, s := range out {
		if s.Frame < 0 {
			return nil, fmt.Errorf("fault: negative timeline frame %d", s.Frame)
		}
		if s.Profile == nil && (s.Severity < 0 || s.Severity > 1) {
			return nil, fmt.Errorf("fault: timeline severity %v outside [0,1]", s.Severity)
		}
		if err := s.Profile.Validate(); err != nil {
			return nil, err
		}
	}
	return &Timeline{steps: out}, nil
}

// ParseTimeline parses the CLI spec format: comma-separated
// "frame:severity" pairs, e.g. "0:0,40:0.7,80:0.25" — ideal front end
// for the first 40 frames, a severity-0.7 burst until frame 80, then a
// partial recovery. An empty spec returns (nil, nil): no script.
func ParseTimeline(spec string) (*Timeline, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var steps []TimelineStep
	for _, part := range strings.Split(spec, ",") {
		fs := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(fs) != 2 {
			return nil, fmt.Errorf("fault: timeline step %q is not frame:severity", part)
		}
		frame, err := strconv.Atoi(fs[0])
		if err != nil {
			return nil, fmt.Errorf("fault: timeline frame %q: %v", fs[0], err)
		}
		sev, err := strconv.ParseFloat(fs[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: timeline severity %q: %v", fs[1], err)
		}
		steps = append(steps, TimelineStep{Frame: frame, Severity: sev})
	}
	return NewTimeline(steps)
}

// ParseWildTimeline parses the same CLI spec as ParseTimeline but maps
// each step's severity through Wild instead of Standard — the "in the
// wild" mode of the chaos harness and the reader daemon, where a
// severity ramp means the tag picks up speed (and moderate RF
// impairments) rather than standing in a worsening static jammer. An
// empty spec returns (nil, nil): no script.
func ParseWildTimeline(spec string) (*Timeline, error) {
	tl, err := ParseTimeline(spec)
	if err != nil || tl == nil {
		return tl, err
	}
	steps := make([]TimelineStep, len(tl.steps))
	copy(steps, tl.steps)
	for i := range steps {
		p := Wild(steps[i].Severity)
		steps[i].Profile = &p
	}
	return NewTimeline(steps)
}

// Steps returns the sorted steps (shared slice; do not mutate).
func (t *Timeline) Steps() []TimelineStep {
	if t == nil {
		return nil
	}
	return t.steps
}

// String renders the spec format back out.
func (t *Timeline) String() string {
	if t == nil {
		return ""
	}
	parts := make([]string, len(t.steps))
	for i, s := range t.steps {
		if s.Profile != nil {
			parts[i] = fmt.Sprintf("%d:<profile>", s.Frame)
			continue
		}
		parts[i] = fmt.Sprintf("%d:%g", s.Frame, s.Severity)
	}
	return strings.Join(parts, ",")
}

// Advance walks the timeline cursor up to (and including) frame:
// starting from cursor (0 on first call), it consumes every step whose
// Frame is ≤ frame and returns the last one's profile. switched is
// true when at least one step was consumed — the caller applies the
// profile exactly once per crossing, keeping injector reseeding
// deterministic. Safe on a nil timeline (never switches).
func (t *Timeline) Advance(cursor, frame int) (next int, p *Profile, switched bool) {
	if t == nil {
		return cursor, nil, false
	}
	next = cursor
	for next < len(t.steps) && t.steps[next].Frame <= frame {
		p = t.steps[next].profile()
		next++
	}
	return next, p, next != cursor
}
