// Package fault is the deterministic RF-impairment and fault-injection
// layer of the BackFi simulator. The paper's evaluation assumes an
// ideal front end — no frequency offset, no phase noise, an infinite-
// resolution ADC, and a channel that only fades — but the rate
// adaptation of Sec. 6.1 exists precisely because real deployments
// degrade. This package models the degradations a deployed reader/tag
// pair actually sees so the pipeline's robustness can be measured
// instead of assumed:
//
//   - carrier frequency offset and sampling clock offset on the
//     excitation as the reader receives it (the excitation transmitter
//     and the reader are only the same oscillator in the idealized
//     full-duplex AP; residual LO drift and non-AP excitations break
//     that assumption);
//   - oscillator phase noise at the tag, modeled as a Wiener process
//     with a Lorentzian linewidth (the standard free-running-oscillator
//     model);
//   - ADC quantization and clipping at the reader front end;
//   - bursty co-channel interference (a Gauss-Markov on/off hidden
//     state, e.g. a neighboring WiFi cell) landing anywhere in the
//     packet, including the SIC training window;
//   - packet-level faults: excitation truncation, tag-preamble chip
//     corruption, and dropped ACKs for the session ARQ.
//
// Everything is seeded: an Injector draws from its own rand.Rand, so
// enabling faults never perturbs the simulator's placement/noise/
// payload streams, and a fixed (profile, seed) pair is bit-identical
// for any worker count. A nil *Profile (or an all-zero one) yields a
// nil *Injector whose methods are all no-ops returning their inputs
// unchanged — the unfaulted pipeline is byte-identical to a build
// without this package.
package fault

import (
	"fmt"
	"math"
)

// Profile configures which impairments an Injector applies and how
// hard. The zero value disables everything.
type Profile struct {
	// CFOHz is the carrier frequency offset of the excitation relative
	// to the reader's local oscillator, applied to the over-the-air
	// waveform (the reader's ideal transmit copy keeps its own clock,
	// which is what degrades cancellation and channel estimation).
	CFOHz float64
	// SCOPpm is the sampling clock offset in parts per million: the
	// received waveform is resampled by (1 + SCOPpm·1e−6).
	SCOPpm float64
	// PhaseNoiseHz is the Lorentzian linewidth of the tag's oscillator
	// in Hz; the tag's reflection picks up a Wiener phase walk with
	// per-sample variance 2π·linewidth/fs. 0 disables.
	PhaseNoiseHz float64
	// ADCBits quantizes the reader's received I and Q to 2^bits uniform
	// levels, clipping beyond full scale. 0 disables (ideal converter).
	ADCBits int
	// ADCClipDB places the converter's full scale this many dB above
	// the packet's RMS input (an AGC that leaves headroom). Defaults to
	// 12 dB when ADCBits > 0.
	ADCClipDB float64
	// InterfDuty is the long-run fraction of samples covered by
	// co-channel interference bursts, in [0, 1).
	InterfDuty float64
	// InterfPowerDBm is the burst power at the reader input.
	InterfPowerDBm float64
	// InterfBurstUs is the mean burst duration in µs (default 10).
	InterfBurstUs float64
	// TruncateProb is the per-packet probability that the received
	// capture is cut short; the zeroed tail length is drawn uniformly
	// in (0, TruncateFrac·packetLen].
	TruncateProb float64
	// TruncateFrac is the maximum fraction of the packet lost to a
	// truncation fault (default 0.25 when TruncateProb > 0).
	TruncateFrac float64
	// PreambleCorruptProb is the per-chip probability that the tag
	// inverts one of its preamble chips (a modulator glitch corrupting
	// the reader's training sequence).
	PreambleCorruptProb float64
	// ACKDropProb is the per-frame probability that the reader's ACK
	// never reaches the tag, forcing a retransmission of a frame that
	// was in fact decoded (session ARQ).
	ACKDropProb float64
	// NoWakeProb is the per-packet probability that the tag sleeps
	// through its wake preamble (a desensitized envelope detector or an
	// ill-timed duty cycle). The exchange fails before the tag ever
	// modulates — RunPacket returns core.ErrTagNoWake — so the session
	// ARQ counts a lost attempt with zero tag airtime
	// (SessionStats.NoWakes).
	NoWakeProb float64
	// MobilitySpeedMps sets the tag (or a dominant nearby scatterer) in
	// motion at this speed: the serving session maps it through the
	// Clarke model (speed → Doppler → coherence time) and lowers its
	// channel evolver's packet-to-packet ρ accordingly, floored by the
	// session's static baseline (DESIGN.md §5k). 0 keeps the placement
	// static. Walking is ~1.4 m/s.
	MobilitySpeedMps float64
}

// Validate checks the profile. A nil profile is valid (faults off).
func (p *Profile) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"TruncateProb", p.TruncateProb},
		{"PreambleCorruptProb", p.PreambleCorruptProb},
		{"ACKDropProb", p.ACKDropProb},
		{"NoWakeProb", p.NoWakeProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.InterfDuty < 0 || p.InterfDuty >= 1 {
		return fmt.Errorf("fault: InterfDuty %v outside [0,1)", p.InterfDuty)
	}
	if p.TruncateFrac < 0 || p.TruncateFrac > 1 {
		return fmt.Errorf("fault: TruncateFrac %v outside [0,1]", p.TruncateFrac)
	}
	if p.ADCBits < 0 || p.ADCBits > 24 {
		return fmt.Errorf("fault: ADCBits %d outside [0,24]", p.ADCBits)
	}
	if p.PhaseNoiseHz < 0 {
		return fmt.Errorf("fault: PhaseNoiseHz %v must be non-negative", p.PhaseNoiseHz)
	}
	if p.InterfBurstUs < 0 {
		return fmt.Errorf("fault: InterfBurstUs %v must be non-negative", p.InterfBurstUs)
	}
	if p.MobilitySpeedMps < 0 || math.IsNaN(p.MobilitySpeedMps) || math.IsInf(p.MobilitySpeedMps, 0) {
		return fmt.Errorf("fault: MobilitySpeedMps %v must be non-negative and finite", p.MobilitySpeedMps)
	}
	return nil
}

// Enabled reports whether any impairment is switched on.
func (p *Profile) Enabled() bool {
	if p == nil {
		return false
	}
	return p.CFOHz != 0 || p.SCOPpm != 0 || p.PhaseNoiseHz > 0 ||
		p.ADCBits > 0 || p.InterfDuty > 0 || p.TruncateProb > 0 ||
		p.PreambleCorruptProb > 0 || p.ACKDropProb > 0 || p.NoWakeProb > 0 ||
		p.MobilitySpeedMps > 0
}

// withDefaults fills the secondary knobs of enabled impairments.
func (p Profile) withDefaults() Profile {
	if p.ADCBits > 0 && p.ADCClipDB == 0 {
		p.ADCClipDB = 12
	}
	if p.InterfDuty > 0 && p.InterfBurstUs == 0 {
		p.InterfBurstUs = 10
	}
	if p.TruncateProb > 0 && p.TruncateFrac == 0 {
		p.TruncateFrac = 0.25
	}
	return p
}

// Standard returns the calibrated reference profile at the given
// severity in [0, 1]: 0 is the paper's ideal front end, 1 is a hostile
// deployment (strong CFO, coarse ADC, a loud neighboring transmitter,
// lossy control channel). The robustness sweep (experiments.Robustness)
// and the -impair CLI flags scale along this axis. Severity is clamped
// to [0, 1].
func Standard(severity float64) Profile {
	if severity < 0 {
		severity = 0
	}
	if severity > 1 {
		severity = 1
	}
	if severity == 0 {
		return Profile{}
	}
	// The slopes are calibrated so the 1 m QPSK link degrades gradually:
	// mild at 0.25, marginal near 0.5, gone by 1. The ADC keeps 18 dB of
	// clip headroom — OFDM excitation peaks ~12 dB above RMS, and an AGC
	// that clips them costs far more than the lost quantizer levels.
	return Profile{
		CFOHz:               50 * severity,
		SCOPpm:              5 * severity,
		PhaseNoiseHz:        300 * severity,
		ADCBits:             16 - int(4*severity),
		ADCClipDB:           18,
		InterfDuty:          0.25 * severity,
		InterfPowerDBm:      -80 + 15*severity,
		InterfBurstUs:       10,
		TruncateProb:        0.2 * severity,
		TruncateFrac:        0.25,
		PreambleCorruptProb: 0.1 * severity,
		ACKDropProb:         0.15 * severity,
	}
}

// Wild returns the calibrated "in the wild" profile at the given
// severity in [0, 1] (DESIGN.md §5k): the Standard RF impairments at
// half weight — a moving deployment is rarely also the worst static
// one — plus tag mobility ramping from static to a brisk 2 m/s walk.
// Standard itself is untouched, so every existing severity sweep stays
// byte-identical. Severity is clamped to [0, 1].
func Wild(severity float64) Profile {
	if severity < 0 {
		severity = 0
	}
	if severity > 1 {
		severity = 1
	}
	if severity == 0 {
		return Profile{}
	}
	p := Standard(severity / 2)
	p.MobilitySpeedMps = 2 * severity
	return p
}
