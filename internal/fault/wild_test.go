package fault

import (
	"math"
	"testing"
)

func TestMobilityValidation(t *testing.T) {
	for _, v := range []float64{-1, math.NaN(), math.Inf(1)} {
		p := Profile{MobilitySpeedMps: v}
		if err := p.Validate(); err == nil {
			t.Errorf("MobilitySpeedMps %v accepted", v)
		}
	}
	p := Profile{MobilitySpeedMps: 1.4}
	if err := p.Validate(); err != nil {
		t.Fatalf("walking speed rejected: %v", err)
	}
	if !p.Enabled() {
		t.Fatal("mobility-only profile reports disabled")
	}
}

func TestWildProfile(t *testing.T) {
	if p := Wild(0); p.Enabled() {
		t.Fatal("Wild(0) must be the ideal front end")
	}
	p := Wild(1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MobilitySpeedMps != 2 {
		t.Fatalf("Wild(1) speed %v, want 2 m/s", p.MobilitySpeedMps)
	}
	// Standard is untouched by the wild axis: no mobility, and Wild's RF
	// terms sit at half the Standard severity.
	if Standard(1).MobilitySpeedMps != 0 {
		t.Fatal("Standard grew a mobility term")
	}
	if got, want := p.CFOHz, Standard(0.5).CFOHz; got != want {
		t.Fatalf("Wild(1) CFO %v, want Standard(0.5)'s %v", got, want)
	}
}

func TestParseWildTimeline(t *testing.T) {
	tl, err := ParseWildTimeline("0:0,5:0.5,9:1")
	if err != nil {
		t.Fatal(err)
	}
	steps := tl.Steps()
	if len(steps) != 3 {
		t.Fatalf("%d steps", len(steps))
	}
	for i, s := range steps {
		if s.Profile == nil {
			t.Fatalf("step %d has no explicit profile", i)
		}
		want := Wild(s.Severity)
		if *s.Profile != want {
			t.Fatalf("step %d profile diverges from Wild(%v)", i, s.Severity)
		}
	}
	if tl, err := ParseWildTimeline(""); err != nil || tl != nil {
		t.Fatalf("empty spec: %v %v", tl, err)
	}
	if _, err := ParseWildTimeline("bogus"); err == nil {
		t.Fatal("bad spec accepted")
	}
}
