package fault

import (
	"math"
	"math/rand"

	"backfi/internal/obs"
)

// injectorMetrics holds the per-kind injection counters, resolved once
// at construction. All fields are nil (no-op) without a registry.
type injectorMetrics struct {
	cfo         *obs.Counter
	sco         *obs.Counter
	phaseNoise  *obs.Counter
	adcClipped  *obs.Counter
	interfBurst *obs.Counter
	truncated   *obs.Counter
	preamble    *obs.Counter
	ackDropped  *obs.Counter
	wakeDropped *obs.Counter
}

func newInjectorMetrics(r *obs.Registry) injectorMetrics {
	if r == nil {
		return injectorMetrics{}
	}
	kind := func(name string) *obs.Counter {
		return r.Counter(obs.MetricFaultsInjected, obs.HelpFaultsInjected, "kind", name)
	}
	return injectorMetrics{
		cfo:         kind("cfo"),
		sco:         kind("sco"),
		phaseNoise:  kind("phase_noise"),
		adcClipped:  kind("adc_clip"),
		interfBurst: kind("interference_burst"),
		truncated:   kind("truncate"),
		preamble:    kind("preamble_corrupt"),
		ackDropped:  kind("ack_drop"),
		wakeDropped: kind("wake_drop"),
	}
}

// Injector applies one profile's impairments to a link's packets. It
// owns a private RNG stream, so the simulator's placement/noise/payload
// draws are identical with and without faults; a (profile, seed) pair
// reproduces exactly. All methods are safe on a nil receiver and are
// then no-ops that return their input unchanged.
//
// An Injector is not safe for concurrent use — like the link that owns
// it, each Monte-Carlo trial builds its own.
type Injector struct {
	p          Profile
	rng        *rand.Rand
	sampleRate float64
	m          injectorMetrics
}

// NewInjector realizes a profile. A nil or all-zero profile returns a
// (nil, nil) injector — the explicit "no faults" value — so callers
// thread the result unconditionally. sampleRate is the baseband rate
// the waveforms are defined at.
func NewInjector(p *Profile, seed int64, sampleRate float64, reg *obs.Registry) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &Injector{
		p:          p.withDefaults(),
		rng:        rand.New(rand.NewSource(seed)),
		sampleRate: sampleRate,
		m:          newInjectorMetrics(reg),
	}, nil
}

// Profile returns the realized profile (zero value for a nil injector).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.p
}

// Reseed re-points the injector's private stream at a fresh seed —
// the migratable-session mode (DESIGN.md §5j) calls it once per link
// attempt so every fault draw becomes a pure function of (profile,
// seed) instead of the attempt history, which is what lets a survivor
// node resume a handed-off session byte-identically. No-op on a nil
// injector. The Markov interference state is per-call, so reseeding
// between attempts leaves single-attempt fault statistics unchanged.
func (in *Injector) Reseed(seed int64) {
	if in == nil {
		return
	}
	in.rng.Seed(seed)
}

// ApplyFrontEnd applies carrier frequency offset and sampling clock
// offset to the over-the-air excitation copy. The reader's ideal
// transmit reference keeps its own clock, so these offsets degrade
// self-interference cancellation and channel estimation the way a
// non-ideal front end does. Returns x unchanged when both are off.
func (in *Injector) ApplyFrontEnd(x []complex128) []complex128 {
	if in == nil || (in.p.CFOHz == 0 && in.p.SCOPpm == 0) {
		return x
	}
	out := make([]complex128, len(x))
	eps := in.p.SCOPpm * 1e-6
	step := 2 * math.Pi * in.p.CFOHz / in.sampleRate
	for n := range out {
		v := x[n]
		if eps != 0 {
			// Resample at position n·(1+eps) by linear interpolation.
			pos := float64(n) * (1 + eps)
			i := int(pos)
			if i >= len(x)-1 {
				v = x[len(x)-1]
			} else {
				frac := complex(pos-float64(i), 0)
				v = x[i]*(1-frac) + x[i+1]*frac
			}
		}
		if step != 0 {
			s, c := math.Sincos(step * float64(n))
			v *= complex(c, s)
		}
		out[n] = v
	}
	if in.p.CFOHz != 0 {
		in.m.cfo.Inc()
	}
	if eps != 0 {
		in.m.sco.Inc()
	}
	return out
}

// ApplyTagPhaseNoise walks a Wiener phase process over the tag's
// per-sample reflection coefficients in place: φ[n] = φ[n−1] + w[n],
// w ~ N(0, 2π·linewidth/fs). The walk advances through silent samples
// too (the oscillator does not pause), but only modulated samples are
// rotated.
func (in *Injector) ApplyTagPhaseNoise(m []complex128) {
	if in == nil || in.p.PhaseNoiseHz <= 0 {
		return
	}
	sigma := math.Sqrt(2 * math.Pi * in.p.PhaseNoiseHz / in.sampleRate)
	phi := 0.0
	for i := range m {
		phi += in.rng.NormFloat64() * sigma
		if m[i] != 0 {
			s, c := math.Sincos(phi)
			m[i] *= complex(c, s)
		}
	}
	in.m.phaseNoise.Inc()
}

// CorruptPreamble inverts each of the tag's preamble chips with the
// profile's per-chip probability, corrupting the reader's training
// sequence. m is the packet-relative modulation sequence, silentEnd the
// index where the preamble begins. Returns the number of chips flipped.
func (in *Injector) CorruptPreamble(m []complex128, silentEnd, chips, chipSamples int) int {
	if in == nil || in.p.PreambleCorruptProb <= 0 {
		return 0
	}
	flipped := 0
	for c := 0; c < chips; c++ {
		if in.rng.Float64() >= in.p.PreambleCorruptProb {
			continue
		}
		start := silentEnd + c*chipSamples
		for k := start; k < start+chipSamples && k < len(m); k++ {
			m[k] = -m[k]
		}
		flipped++
	}
	in.m.preamble.Add(int64(flipped))
	return flipped
}

// AddInterference overlays bursty co-channel interference on the
// received samples in place. The burst process is a two-state Markov
// chain whose mean on-duration is InterfBurstUs and whose stationary
// on-fraction is InterfDuty; burst samples are complex Gaussian at
// InterfPowerDBm. Bursts can land anywhere, including the SIC training
// window. Returns the number of bursts started.
func (in *Injector) AddInterference(y []complex128) int {
	if in == nil || in.p.InterfDuty <= 0 {
		return 0
	}
	burstSamples := in.p.InterfBurstUs * 1e-6 * in.sampleRate
	if burstSamples < 1 {
		burstSamples = 1
	}
	pExit := 1 / burstSamples
	d := in.p.InterfDuty
	pEnter := d / (1 - d) * pExit
	if pEnter > 1 {
		pEnter = 1
	}
	powerW := math.Pow(10, in.p.InterfPowerDBm/10) * 1e-3
	sigma := math.Sqrt(powerW / 2)
	on := in.rng.Float64() < d // stationary start
	bursts := 0
	if on {
		bursts++
	}
	for i := range y {
		if on {
			y[i] += complex(in.rng.NormFloat64()*sigma, in.rng.NormFloat64()*sigma)
			if in.rng.Float64() < pExit {
				on = false
			}
		} else if in.rng.Float64() < pEnter {
			on = true
			bursts++
		}
	}
	in.m.interfBurst.Add(int64(bursts))
	return bursts
}

// ApplyADC runs the received samples through the reader's converter in
// place: I and Q are quantized to 2^bits uniform levels over a full
// scale set ADCClipDB above the packet RMS (an AGC with headroom), and
// samples beyond full scale clip. Returns the number of clipped
// components.
func (in *Injector) ApplyADC(y []complex128) int {
	if in == nil || in.p.ADCBits <= 0 || len(y) == 0 {
		return 0
	}
	var p float64
	for _, v := range y {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	rms := math.Sqrt(p / float64(len(y)) / 2) // per-dimension RMS
	if rms == 0 {
		return 0
	}
	fs := rms * math.Pow(10, in.p.ADCClipDB/20)
	lsb := fs / float64(int(1)<<uint(in.p.ADCBits-1))
	clipped := 0
	q := func(v float64) float64 {
		if v > fs {
			clipped++
			return fs
		}
		if v < -fs {
			clipped++
			return -fs
		}
		return math.Round(v/lsb) * lsb
	}
	for i, v := range y {
		y[i] = complex(q(real(v)), q(imag(v)))
	}
	in.m.adcClipped.Add(int64(clipped))
	return clipped
}

// TruncateTail models a capture cut short: with the profile's per-packet
// probability it zeroes a uniformly drawn tail of the packet region
// [packetStart, packetStart+packetLen) of y. Returns the number of
// samples lost (0 when the packet survived intact).
func (in *Injector) TruncateTail(y []complex128, packetStart, packetLen int) int {
	if in == nil || in.p.TruncateProb <= 0 {
		return 0
	}
	if in.rng.Float64() >= in.p.TruncateProb {
		return 0
	}
	lost := 1 + int(in.rng.Float64()*in.p.TruncateFrac*float64(packetLen))
	if lost > packetLen {
		lost = packetLen
	}
	end := packetStart + packetLen
	if end > len(y) {
		end = len(y)
	}
	start := end - lost
	if start < 0 {
		start = 0
	}
	for i := start; i < end; i++ {
		y[i] = 0
	}
	in.m.truncated.Inc()
	return end - start
}

// DropWake reports whether the tag sleeps through this packet's wake
// preamble. The link translates a dropped wake into core.ErrTagNoWake
// before the tag modulates anything, so the attempt costs excitation
// airtime but zero tag airtime.
func (in *Injector) DropWake() bool {
	if in == nil || in.p.NoWakeProb <= 0 {
		return false
	}
	if in.rng.Float64() >= in.p.NoWakeProb {
		return false
	}
	in.m.wakeDropped.Inc()
	return true
}

// DropACK reports whether this frame's ACK was lost on its way back to
// the tag (the tag will retransmit a frame the reader already has).
func (in *Injector) DropACK() bool {
	if in == nil || in.p.ACKDropProb <= 0 {
		return false
	}
	if in.rng.Float64() >= in.p.ACKDropProb {
		return false
	}
	in.m.ackDropped.Inc()
	return true
}
