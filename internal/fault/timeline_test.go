package fault

import "testing"

func TestParseTimeline(t *testing.T) {
	tl, err := ParseTimeline("0:0, 40:0.7,80:0.25")
	if err != nil {
		t.Fatal(err)
	}
	steps := tl.Steps()
	if len(steps) != 3 {
		t.Fatalf("%d steps, want 3", len(steps))
	}
	if steps[1].Frame != 40 || steps[1].Severity != 0.7 {
		t.Fatalf("step 1 = %+v", steps[1])
	}
	if got := tl.String(); got != "0:0,40:0.7,80:0.25" {
		t.Fatalf("String() = %q", got)
	}
}

func TestParseTimelineEmptyAndInvalid(t *testing.T) {
	if tl, err := ParseTimeline("  "); err != nil || tl != nil {
		t.Fatalf("empty spec: tl=%v err=%v, want nil,nil", tl, err)
	}
	for _, spec := range []string{"abc", "1", "1:2:3x", "x:0.5", "5:high", "5:1.5", "-2:0.5"} {
		if _, err := ParseTimeline(spec); err == nil {
			t.Errorf("spec %q: no error", spec)
		}
	}
}

func TestTimelineSortsStably(t *testing.T) {
	tl, err := NewTimeline([]TimelineStep{
		{Frame: 50, Severity: 0.9},
		{Frame: 10, Severity: 0.3},
		{Frame: 50, Severity: 0.1}, // later same-frame entry wins
	})
	if err != nil {
		t.Fatal(err)
	}
	_, p, switched := tl.Advance(0, 60)
	if !switched {
		t.Fatal("no switch across the whole timeline")
	}
	// Severity 0.1 → Standard(0.1) → CFOHz = 5.
	if p.CFOHz != 5 {
		t.Fatalf("same-frame tie broke wrong: CFOHz %v, want 5", p.CFOHz)
	}
}

func TestAdvanceCursorSemantics(t *testing.T) {
	tl, err := NewTimeline([]TimelineStep{
		{Frame: 0, Severity: 0},
		{Frame: 3, Severity: 0.5},
		{Frame: 7, Severity: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cur := 0
	var p *Profile
	var sw bool

	// Frame 0 consumes the first step: severity 0 → disabled profile.
	cur, p, sw = tl.Advance(cur, 0)
	if !sw || cur != 1 || p.Enabled() {
		t.Fatalf("frame 0: cur=%d sw=%v enabled=%v", cur, sw, p.Enabled())
	}
	// Frames 1–2 cross nothing.
	if cur2, _, sw := tl.Advance(cur, 2); sw || cur2 != cur {
		t.Fatalf("frame 2 switched (cur %d → %d)", cur, cur2)
	}
	// Jumping straight to frame 9 consumes both remaining steps but
	// yields only the last profile.
	cur, p, sw = tl.Advance(cur, 9)
	if !sw || cur != 3 {
		t.Fatalf("frame 9: cur=%d sw=%v", cur, sw)
	}
	if want := Standard(0.2); p.CFOHz != want.CFOHz {
		t.Fatalf("frame 9 profile severity wrong: CFOHz %v want %v", p.CFOHz, want.CFOHz)
	}
	// Past the end: never switches again.
	if _, _, sw := tl.Advance(cur, 1000); sw {
		t.Fatal("switched past the final step")
	}
}

func TestAdvanceNilTimeline(t *testing.T) {
	var tl *Timeline
	if cur, p, sw := tl.Advance(0, 100); sw || p != nil || cur != 0 {
		t.Fatalf("nil timeline advanced: cur=%d p=%v sw=%v", cur, p, sw)
	}
	if tl.Steps() != nil || tl.String() != "" {
		t.Fatal("nil timeline not inert")
	}
}

func TestTimelineExplicitProfile(t *testing.T) {
	p := &Profile{ACKDropProb: 0.5}
	tl, err := NewTimeline([]TimelineStep{{Frame: 2, Profile: p}})
	if err != nil {
		t.Fatal(err)
	}
	_, got, sw := tl.Advance(0, 5)
	if !sw || got != p {
		t.Fatalf("explicit profile not returned: %v", got)
	}
	// Invalid explicit profiles are rejected at construction.
	if _, err := NewTimeline([]TimelineStep{{Frame: 0, Profile: &Profile{ACKDropProb: 2}}}); err == nil {
		t.Fatal("invalid explicit profile accepted")
	}
}
