package fec

import (
	"fmt"
	"math"
)

// viterbiTables holds the precomputed trellis structure of the (133,171)
// code: for each state and input bit, the next state and the two
// expected output bits.
type viterbiTables struct {
	nextState [NumStates][2]int
	// outSign[s][b][i] is +1 if expected output bit i (0=A, 1=B) for
	// transition (state s, input b) is 0, else −1; matches the soft
	// convention so branch metrics are plain dot products.
	outSign [NumStates][2][2]float64
}

var trellis = buildTrellis()

func buildTrellis() *viterbiTables {
	t := &viterbiTables{}
	for s := 0; s < NumStates; s++ {
		for b := 0; b < 2; b++ {
			window := uint32(s) | uint32(b)<<(ConstraintLength-1)
			a := parity(window & G0)
			bb := parity(window & G1)
			t.nextState[s][b] = int(window >> 1)
			t.outSign[s][b][0] = 1 - 2*float64(a)
			t.outSign[s][b][1] = 1 - 2*float64(bb)
		}
	}
	return t
}

// ViterbiDecode performs maximum-likelihood sequence decoding of the
// rate-1/2 mother code from soft values (+1 → bit 0, −1 → bit 1,
// 0 → erasure; magnitudes act as reliabilities). len(soft) must be even;
// each pair (A, B) is one trellis step.
//
// If terminated is true the encoder is assumed to have appended TailBits
// zeros (EncodeTerminated): the survivor ending in state 0 is chosen and
// the tail is stripped from the returned bits. Otherwise the best final
// state is used and all decisions are returned.
func ViterbiDecode(soft []float64, terminated bool) ([]byte, error) {
	if len(soft)%2 != 0 {
		return nil, fmt.Errorf("fec: soft stream length %d is odd", len(soft))
	}
	steps := len(soft) / 2
	if steps == 0 {
		return nil, nil
	}
	if terminated && steps < TailBits {
		return nil, fmt.Errorf("fec: %d steps too short for terminated trellis", steps)
	}

	negInf := math.Inf(-1)
	metric := make([]float64, NumStates)
	next := make([]float64, NumStates)
	for s := 1; s < NumStates; s++ {
		metric[s] = negInf // encoder starts in state 0
	}
	// decisions[t*NumStates+s] packs the survivor entering state s at
	// step t: predecessor state in the low bits, input bit in bit 7
	// (NumStates = 64 fits in 6 bits).
	decisions := make([]uint8, steps*NumStates)

	for t := 0; t < steps; t++ {
		sa, sb := soft[2*t], soft[2*t+1]
		dec := decisions[t*NumStates : (t+1)*NumStates]
		for i := range next {
			next[i] = negInf
		}
		for s := 0; s < NumStates; s++ {
			m := metric[s]
			if m == negInf {
				continue
			}
			for b := 0; b < 2; b++ {
				ns := trellis.nextState[s][b]
				bm := m + sa*trellis.outSign[s][b][0] + sb*trellis.outSign[s][b][1]
				if bm > next[ns] {
					next[ns] = bm
					dec[ns] = uint8(s) | uint8(b)<<7
				}
			}
		}
		metric, next = next, metric
	}

	// Pick the final state.
	final := 0
	if !terminated {
		best := negInf
		for s, m := range metric {
			if m > best {
				best, final = m, s
			}
		}
	} else if metric[0] == negInf {
		return nil, fmt.Errorf("fec: no survivor reaches the zero state")
	}

	// Traceback.
	bits := make([]byte, steps)
	s := final
	for t := steps - 1; t >= 0; t-- {
		d := decisions[t*NumStates+s]
		bits[t] = d >> 7
		s = int(d & 0x3F)
	}
	if terminated {
		bits = bits[:steps-TailBits]
	}
	return bits, nil
}

// DecodePunctured depunctures a soft stream of the given rate and runs
// the Viterbi decoder. nInfo is the number of information bits expected
// (excluding tail); terminated indicates whether TailBits zeros were
// appended before encoding.
func DecodePunctured(soft []float64, rate CodeRate, nInfo int, terminated bool) ([]byte, error) {
	steps := nInfo
	if terminated {
		steps += TailBits
	}
	mother, err := Depuncture(soft, rate, 2*steps)
	if err != nil {
		return nil, err
	}
	bits, err := ViterbiDecode(mother, terminated)
	if err != nil {
		return nil, err
	}
	if len(bits) < nInfo {
		return nil, fmt.Errorf("fec: decoded %d bits, expected %d", len(bits), nInfo)
	}
	return bits[:nInfo], nil
}

// EncodePunctured encodes bits with the terminated mother code and
// punctures to the given rate.
func EncodePunctured(bits []byte, rate CodeRate) []byte {
	return Puncture(EncodeTerminated(bits), rate)
}
