package fec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(r *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	return bits
}

func TestConvEncodeRateAndDeterminism(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0}
	a := ConvEncode(bits)
	b := ConvEncode(bits)
	if len(a) != 2*len(bits) {
		t.Fatalf("coded length %d, want %d", len(a), 2*len(bits))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoder not deterministic")
		}
	}
}

func TestConvEncodeKnownVector(t *testing.T) {
	// A single 1 followed by zeros produces the code's impulse response:
	// the generator taps read out over the next K steps.
	bits := []byte{1, 0, 0, 0, 0, 0, 0}
	out := ConvEncode(bits)
	// Window for step t has the 1 at bit position (K-1)-t. Output A is
	// parity(window & G0): for t=0 the 1 sits at MSB of the window.
	wantA := []byte{1, 0, 1, 1, 0, 1, 1} // bits of 133 octal = 1011011 MSB-first
	wantB := []byte{1, 1, 1, 1, 0, 0, 1} // bits of 171 octal = 1111001 MSB-first
	for i := 0; i < 7; i++ {
		if out[2*i] != wantA[i] || out[2*i+1] != wantB[i] {
			t.Fatalf("step %d: got (%d,%d), want (%d,%d)", i, out[2*i], out[2*i+1], wantA[i], wantB[i])
		}
	}
}

func TestConvEncodeLinearity(t *testing.T) {
	// Convolutional codes are linear: enc(a XOR b) = enc(a) XOR enc(b).
	r := rand.New(rand.NewSource(1))
	a := randBits(r, 40)
	b := randBits(r, 40)
	x := make([]byte, 40)
	for i := range x {
		x[i] = a[i] ^ b[i]
	}
	ea, eb, ex := ConvEncode(a), ConvEncode(b), ConvEncode(x)
	for i := range ex {
		if ex[i] != ea[i]^eb[i] {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestConvEncodeRejectsBadBit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-binary input")
		}
	}()
	ConvEncode([]byte{2})
}

func TestEncodeTerminatedEndsInZeroState(t *testing.T) {
	// After the tail, re-encoding zeros from the final state must give
	// the all-zero output — verified indirectly: the last TailBits steps
	// of encoding [data | zeros...] from any data return to state 0,
	// which Viterbi(terminated) relies on. Here we just check length.
	bits := []byte{1, 1, 0, 1}
	out := EncodeTerminated(bits)
	if len(out) != 2*(len(bits)+TailBits) {
		t.Fatalf("terminated length %d", len(out))
	}
}

func TestPunctureLengths(t *testing.T) {
	coded := make([]byte, 24) // 12 trellis steps
	if got := len(Puncture(coded, Rate12)); got != 24 {
		t.Fatalf("rate 1/2 length %d", got)
	}
	if got := len(Puncture(coded, Rate23)); got != 18 {
		t.Fatalf("rate 2/3 length %d, want 18", got)
	}
	if got := len(Puncture(coded, Rate34)); got != 16 {
		t.Fatalf("rate 3/4 length %d, want 16", got)
	}
}

func TestPuncturedLengthMatchesPuncture(t *testing.T) {
	for _, rate := range []CodeRate{Rate12, Rate23, Rate34} {
		for _, n := range []int{2, 4, 6, 12, 24, 48, 100} {
			coded := make([]byte, n)
			if got, want := PuncturedLength(n, rate), len(Puncture(coded, rate)); got != want {
				t.Fatalf("rate %s len %d: PuncturedLength %d, Puncture %d", rate, n, got, want)
			}
		}
	}
}

func TestDepunctureRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, rate := range []CodeRate{Rate12, Rate23, Rate34} {
		mother := randBits(r, 48)
		punct := Puncture(mother, rate)
		soft, err := Depuncture(HardToSoft(punct), rate, len(mother))
		if err != nil {
			t.Fatalf("rate %s: %v", rate, err)
		}
		pat := rate.puncturePattern()
		for i, s := range soft {
			if pat[i%len(pat)] {
				if s != 1-2*float64(mother[i]) {
					t.Fatalf("rate %s: kept bit %d corrupted", rate, i)
				}
			} else if s != 0 {
				t.Fatalf("rate %s: erasure %d not zero", rate, i)
			}
		}
	}
}

func TestDepunctureLengthErrors(t *testing.T) {
	if _, err := Depuncture([]float64{1, 1}, Rate12, 6); err == nil {
		t.Fatal("expected error for short stream")
	}
	if _, err := Depuncture([]float64{1, 1, 1, 1}, Rate12, 2); err == nil {
		t.Fatal("expected error for long stream")
	}
}

func TestCodeRateStringsAndFractions(t *testing.T) {
	cases := []struct {
		r    CodeRate
		s    string
		frac float64
	}{{Rate12, "1/2", 0.5}, {Rate23, "2/3", 2.0 / 3.0}, {Rate34, "3/4", 0.75}}
	for _, c := range cases {
		if c.r.String() != c.s {
			t.Fatalf("String = %q", c.r.String())
		}
		if c.r.Fraction() != c.frac {
			t.Fatalf("Fraction = %v", c.r.Fraction())
		}
	}
}

func TestHardToSoft(t *testing.T) {
	soft := HardToSoft([]byte{0, 1})
	if soft[0] != 1 || soft[1] != -1 {
		t.Fatalf("HardToSoft = %v", soft)
	}
}

func TestParityProperty(t *testing.T) {
	f := func(v uint32) bool {
		want := byte(0)
		for i := 0; i < 32; i++ {
			want ^= byte((v >> uint(i)) & 1)
		}
		return parity(v) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
