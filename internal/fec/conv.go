// Package fec implements the forward-error-correction primitives shared
// by the WiFi PHY and the BackFi tag: the industry-standard K=7
// (133,171) convolutional code, 802.11 puncturing to rates 2/3 and 3/4,
// a soft-decision Viterbi decoder, the 802.11 scrambler, and CRC framing
// checks.
package fec

import "fmt"

// Generator polynomials of the rate-1/2, constraint-length-7 mother code
// (octal 133 and 171), as used by 802.11 and by the BackFi tag encoder
// ("6 shift registers and 8 XOR gates", paper Sec. 4.1).
const (
	G0 = 0o133
	G1 = 0o171
	// ConstraintLength is the code's constraint length K.
	ConstraintLength = 7
	// NumStates is the number of trellis states (2^(K-1)).
	NumStates = 1 << (ConstraintLength - 1)
	// TailBits is the number of zero bits appended to terminate the
	// trellis (K-1).
	TailBits = ConstraintLength - 1
)

// parity returns the parity (XOR of all bits) of v.
func parity(v uint32) byte {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return byte(v & 1)
}

// ConvEncode encodes bits with the (133,171) mother code at rate 1/2.
// For each input bit it emits two output bits (A from G0, then B from
// G1). The encoder starts from the all-zeros state. Callers wanting a
// terminated trellis should append TailBits zero bits first (see
// EncodeTerminated).
func ConvEncode(bits []byte) []byte {
	out := make([]byte, 0, 2*len(bits))
	var state uint32 // shift register, most recent bit in MSB position of the K-bit window
	for _, b := range bits {
		if b > 1 {
			panic(fmt.Sprintf("fec: input bit %d out of range", b))
		}
		window := state | uint32(b)<<(ConstraintLength-1)
		out = append(out, parity(window&G0), parity(window&G1))
		state = window >> 1
	}
	return out
}

// EncodeTerminated appends TailBits zeros to bits and encodes, returning
// a trellis that ends in the all-zeros state. The decoder counterpart is
// ViterbiDecode with terminated=true, which strips the tail.
func EncodeTerminated(bits []byte) []byte {
	padded := make([]byte, len(bits)+TailBits)
	copy(padded, bits)
	return ConvEncode(padded)
}

// CodeRate identifies one of the supported punctured code rates.
type CodeRate int

const (
	// Rate12 is the unpunctured rate-1/2 mother code.
	Rate12 CodeRate = iota
	// Rate23 is 802.11's rate-2/3 puncturing (drop every second B bit).
	Rate23
	// Rate34 is 802.11's rate-3/4 puncturing.
	Rate34
)

// String returns the conventional name of the rate.
func (r CodeRate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("CodeRate(%d)", int(r))
}

// Validate reports whether r is one of the defined rates. Rate-dependent
// lookups (Fraction, puncturing) treat an unknown rate as an internal
// invariant violation and panic, so config paths must validate first.
func (r CodeRate) Validate() error {
	switch r {
	case Rate12, Rate23, Rate34:
		return nil
	}
	return fmt.Errorf("fec: unknown code rate %d", int(r))
}

// Fraction returns the information rate as a float (e.g. 0.5 for 1/2).
func (r CodeRate) Fraction() float64 {
	switch r {
	case Rate12:
		return 0.5
	case Rate23:
		return 2.0 / 3.0
	case Rate34:
		return 0.75
	}
	panic("fec: unknown code rate")
}

// puncturePattern returns the keep-mask over mother-code output bits
// (period = len(pattern)), matching IEEE 802.11-2012 Sec. 18.3.5.6.
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate12:
		return []bool{true, true}
	case Rate23:
		// A1 B1 A2 (B2 stolen): keep, keep, keep, drop.
		return []bool{true, true, true, false}
	case Rate34:
		// A1 B1 B2 A3 (A2, B3 stolen).
		return []bool{true, true, false, true, true, false}
	}
	panic("fec: unknown code rate")
}

// Puncture removes the stolen bits of the given rate from a rate-1/2
// coded stream.
func Puncture(coded []byte, rate CodeRate) []byte {
	pat := rate.puncturePattern()
	out := make([]byte, 0, len(coded))
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// Depuncture re-inserts erasures (value 0) into a punctured soft stream
// so it lines up with the rate-1/2 trellis. Soft values use the
// convention +1 → bit 0, −1 → bit 1, 0 → erasure. motherLen is the
// desired output length (2 × number of trellis steps).
func Depuncture(soft []float64, rate CodeRate, motherLen int) ([]float64, error) {
	pat := rate.puncturePattern()
	out := make([]float64, motherLen)
	si := 0
	for i := 0; i < motherLen; i++ {
		if pat[i%len(pat)] {
			if si >= len(soft) {
				return nil, fmt.Errorf("fec: punctured stream too short: need > %d soft values", len(soft))
			}
			out[i] = soft[si]
			si++
		}
	}
	if si != len(soft) {
		return nil, fmt.Errorf("fec: punctured stream length %d does not match mother length %d at rate %s", len(soft), motherLen, rate)
	}
	return out, nil
}

// PuncturedLength returns the number of transmitted coded bits for
// nInfo information bits (with tail included if terminated) at the given
// rate. It errors if the mother length doesn't align with the puncture
// period, in which case the caller should pad.
func PuncturedLength(motherLen int, rate CodeRate) int {
	pat := rate.puncturePattern()
	n := 0
	for i := 0; i < motherLen; i++ {
		if pat[i%len(pat)] {
			n++
		}
	}
	return n
}

// HardToSoft converts hard bits to the soft convention (+1 → 0, −1 → 1).
func HardToSoft(bits []byte) []float64 {
	out := make([]float64, len(bits))
	for i, b := range bits {
		out[i] = 1 - 2*float64(b)
	}
	return out
}
