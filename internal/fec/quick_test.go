package fec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based coverage of the FEC invariants.

func TestQuickViterbiInvertsEncoder(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		bits := make([]byte, 1+int(n)%400)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		got, err := ViterbiDecode(HardToSoft(EncodeTerminated(bits)), true)
		if err != nil {
			return false
		}
		return bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPuncturedRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16, rateSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rate := []CodeRate{Rate12, Rate23, Rate34}[int(rateSel)%3]
		bits := make([]byte, 12+int(n)%300)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		got, err := DecodePunctured(HardToSoft(EncodePunctured(bits, rate)), rate, len(bits), true)
		if err != nil {
			return false
		}
		return bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScramblerInvolution(t *testing.T) {
	f := func(seed int64, scrSeed uint8, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		s := scrSeed&0x7F | 1
		bits := make([]byte, int(n)%1000+1)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		round := NewScrambler(s).Scramble(NewScrambler(s).Scramble(bits))
		return bytes.Equal(round, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCRC8LinearityUnderAppend(t *testing.T) {
	// CRC of data with its own CRC appended passes verification — the
	// property frames rely on.
	f := func(data []byte) bool {
		c := CRC8(data)
		full := append(append([]byte{}, data...), c)
		// Recomputing over data must match the trailer.
		return CRC8(full[:len(full)-1]) == full[len(full)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
