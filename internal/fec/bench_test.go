package fec

import (
	"math/rand"
	"testing"
)

func BenchmarkConvEncode1500B(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bits := randBits(r, 12000)
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		ConvEncode(bits)
	}
}

func BenchmarkViterbiDecode1500B(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	bits := randBits(r, 12000)
	soft := HardToSoft(EncodeTerminated(bits))
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		if _, err := ViterbiDecode(soft, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScramble1500B(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	bits := randBits(r, 12000)
	b.ReportAllocs()
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		NewScrambler(0x5D).Scramble(bits)
	}
}
