package fec

import "hash/crc32"

// Scrambler is the 802.11 frame-synchronous scrambler with generator
// polynomial S(x) = x^7 + x^4 + 1. The same structure descrambles, so
// one type serves both directions.
type Scrambler struct {
	state byte // 7-bit LFSR state, must be non-zero
}

// NewScrambler returns a scrambler seeded with the given non-zero 7-bit
// state (802.11 pseudo-random seed; the all-ones seed 0x7F is the
// conventional default).
func NewScrambler(seed byte) *Scrambler {
	if seed&0x7F == 0 {
		panic("fec: scrambler seed must be non-zero")
	}
	return &Scrambler{state: seed & 0x7F}
}

// Next returns the next scrambling bit and advances the LFSR.
func (s *Scrambler) Next() byte {
	// Feedback = x^7 XOR x^4 (bits 6 and 3 of the register).
	fb := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | fb) & 0x7F
	return fb
}

// Scramble XORs the keystream into bits, returning a new slice. Calling
// it again on the output with a scrambler in the same starting state
// recovers the input.
func (s *Scrambler) Scramble(bits []byte) []byte {
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = b ^ s.Next()
	}
	return out
}

// FCS32 computes the 802.11 frame check sequence (IEEE CRC-32) of data.
func FCS32(data []byte) uint32 {
	return crc32.ChecksumIEEE(data)
}

// CRC8 computes an 8-bit CRC with polynomial x^8+x^2+x+1 (0x07), used
// by the tag packet header where a 4-byte FCS would be disproportionate.
func CRC8(data []byte) byte {
	var crc byte
	for _, d := range data {
		crc ^= d
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = (crc << 1) ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// BytesToBits unpacks bytes LSB-first into a bit slice (802.11 bit
// ordering).
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs bits LSB-first into bytes; len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []byte) []byte {
	if len(bits)%8 != 0 {
		panic("fec: bit count not a multiple of 8")
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b&1 != 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}

// CRC16CCITT computes the CRC-16/CCITT-FALSE (poly 0x1021, init
// 0xFFFF) used by the 802.11b PLCP header.
func CRC16CCITT(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, d := range data {
		crc ^= uint16(d) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// SelfSyncScramble applies the 802.11b self-synchronizing scrambler
// (G(z) = z^−7 + z^−4 + 1): each output bit is the input XOR taps of
// the *output* history, so the descrambler aligns itself from the
// received stream after 7 bits regardless of where reception started.
func SelfSyncScramble(bits []byte, seed byte) []byte {
	state := seed & 0x7F
	out := make([]byte, len(bits))
	for i, b := range bits {
		o := b ^ (state >> 3 & 1) ^ (state >> 6 & 1)
		out[i] = o
		state = (state<<1 | o) & 0x7F
	}
	return out
}

// SelfSyncDescramble inverts SelfSyncScramble using the received bits
// as the shift-register history; any seed converges within 7 bits.
func SelfSyncDescramble(bits []byte, seed byte) []byte {
	state := seed & 0x7F
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = b ^ (state >> 3 & 1) ^ (state >> 6 & 1)
		state = (state<<1 | b) & 0x7F
	}
	return out
}
