package fec

import (
	"math/rand"
	"testing"
)

func TestScramblerKnownSequence(t *testing.T) {
	// With the all-ones seed the 802.11 scrambler emits the well-known
	// 127-bit sequence beginning 0000 1110 1111 0010 1100 1001 0000...
	s := NewScrambler(0x7F)
	want := []byte{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("bit %d: got %d want %d", i, got, w)
		}
	}
}

func TestScramblerPeriod127(t *testing.T) {
	s := NewScrambler(0x7F)
	var seq []byte
	for i := 0; i < 254; i++ {
		seq = append(seq, s.Next())
	}
	for i := 0; i < 127; i++ {
		if seq[i] != seq[i+127] {
			t.Fatalf("sequence not periodic with 127 at %d", i)
		}
	}
	// Maximal-length: 127 bits contain 64 ones and 63 zeros.
	ones := 0
	for _, b := range seq[:127] {
		ones += int(b)
	}
	if ones != 64 {
		t.Fatalf("ones in period = %d, want 64", ones)
	}
}

func TestScrambleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	bits := randBits(r, 333)
	for _, seed := range []byte{0x7F, 0x5D, 0x01} {
		enc := NewScrambler(seed).Scramble(bits)
		dec := NewScrambler(seed).Scramble(enc)
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("seed %#x: bit %d differs", seed, i)
			}
		}
	}
}

func TestScramblerZeroSeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero seed")
		}
	}()
	NewScrambler(0x80) // 0x80 & 0x7F == 0
}

func TestScramblerWhitens(t *testing.T) {
	// Scrambling a long run of zeros should produce a balanced stream.
	zeros := make([]byte, 1270)
	out := NewScrambler(0x7F).Scramble(zeros)
	ones := 0
	for _, b := range out {
		ones += int(b)
	}
	if ones < 500 || ones > 770 {
		t.Fatalf("scrambled zeros have %d ones of %d", ones, len(out))
	}
}

func TestFCS32KnownValue(t *testing.T) {
	// CRC-32/IEEE of "123456789" is 0xCBF43926.
	if got := FCS32([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("FCS32 = %#x", got)
	}
}

func TestCRC8KnownValueAndErrorDetection(t *testing.T) {
	// CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("CRC8 = %#x", got)
	}
	data := []byte{1, 2, 3, 4}
	c := CRC8(data)
	data[2] ^= 0x10
	if CRC8(data) == c {
		t.Fatal("CRC8 failed to detect single-bit error")
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	data := make([]byte, 64)
	r.Read(data)
	bits := BytesToBits(data)
	if len(bits) != 512 {
		t.Fatalf("bit length %d", len(bits))
	}
	back := BitsToBytes(bits)
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestBytesToBitsLSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x01, 0x80})
	if bits[0] != 1 || bits[7] != 0 || bits[8] != 0 || bits[15] != 1 {
		t.Fatalf("LSB-first ordering violated: %v", bits)
	}
}

func TestBitsToBytesBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitsToBytes(make([]byte, 7))
}

func TestCRC16CCITTKnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16CCITT([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#x", got)
	}
	data := []byte{1, 2, 3}
	c := CRC16CCITT(data)
	data[1] ^= 4
	if CRC16CCITT(data) == c {
		t.Fatal("CRC16 missed an error")
	}
}

func TestSelfSyncScramblerRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	bits := randBits(r, 500)
	enc := SelfSyncScramble(bits, 0x1B)
	dec := SelfSyncDescramble(enc, 0x1B)
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestSelfSyncDescramblerSelfAligns(t *testing.T) {
	// Start the descrambler mid-stream with the WRONG seed: after 7
	// bits it must recover (the self-synchronizing property that makes
	// 802.11b reception offset-tolerant).
	r := rand.New(rand.NewSource(10))
	bits := randBits(r, 400)
	enc := SelfSyncScramble(bits, 0x1B)
	dec := SelfSyncDescramble(enc[100:], 0x00)
	for i := 7; i < len(dec); i++ {
		if dec[i] != bits[100+i] {
			t.Fatalf("bit %d not aligned", i)
		}
	}
}

func TestSelfSyncScramblerWhitens(t *testing.T) {
	zeros := make([]byte, 1000)
	ones := 0
	for _, b := range SelfSyncScramble(zeros, 0x6C) {
		ones += int(b)
	}
	if ones < 350 || ones > 650 {
		t.Fatalf("scrambled zeros: %d ones of 1000", ones)
	}
}
