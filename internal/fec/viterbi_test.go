package fec

import (
	"math/rand"
	"testing"
)

func TestViterbiNoiselessRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 7, 64, 500} {
		bits := randBits(r, n)
		coded := EncodeTerminated(bits)
		got, err := ViterbiDecode(HardToSoft(coded), true)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d bits", n, len(got))
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
	}
}

func TestViterbiUnterminated(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	bits := randBits(r, 100)
	coded := ConvEncode(bits)
	got, err := ViterbiDecode(HardToSoft(coded), false)
	if err != nil {
		t.Fatal(err)
	}
	// Without termination the last few bits are unreliable; check all
	// but the final TailBits.
	for i := 0; i < len(bits)-TailBits; i++ {
		if got[i] != bits[i] {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestViterbiCorrectsBitErrors(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	bits := randBits(r, 200)
	coded := EncodeTerminated(bits)
	// Flip isolated coded bits (well separated, within free distance).
	for _, pos := range []int{10, 60, 120, 250, 399} {
		coded[pos] ^= 1
	}
	got, err := ViterbiDecode(HardToSoft(coded), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d not corrected", i)
		}
	}
}

func TestViterbiCorrectsErrorBurstWithinFreeDistance(t *testing.T) {
	// The (133,171) code has free distance 10: any pattern of up to 4
	// coded-bit errors in one constraint span is correctable.
	r := rand.New(rand.NewSource(13))
	bits := randBits(r, 100)
	coded := EncodeTerminated(bits)
	coded[40] ^= 1
	coded[41] ^= 1
	coded[44] ^= 1
	got, err := ViterbiDecode(HardToSoft(coded), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d not corrected", i)
		}
	}
}

func TestViterbiSoftBeatsHardWithReliabilities(t *testing.T) {
	// A weakly-received (low magnitude) wrong value should be overridden
	// by strong correct neighbors; encode zeros, corrupt one soft value
	// with small magnitude, and expect perfect decode.
	bits := make([]byte, 50)
	coded := EncodeTerminated(bits)
	soft := HardToSoft(coded)
	soft[20] = -0.1 // weakly suggests a 1 where a strong 0 belongs
	got, err := ViterbiDecode(soft, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != 0 {
			t.Fatalf("bit %d decoded as 1", i)
		}
	}
}

func TestViterbiErasuresFromPuncturing(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for _, rate := range []CodeRate{Rate12, Rate23, Rate34} {
		// Use a multiple of the puncture period of info+tail steps so
		// lengths line up: pick nInfo such that 2*(nInfo+6) is a
		// multiple of the pattern length.
		nInfo := 90
		bits := randBits(r, nInfo)
		tx := EncodePunctured(bits, rate)
		got, err := DecodePunctured(HardToSoft(tx), rate, nInfo, true)
		if err != nil {
			t.Fatalf("rate %s: %v", rate, err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("rate %s: bit %d differs", rate, i)
			}
		}
	}
}

func TestViterbiPuncturedWithErrors(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	bits := randBits(r, 120)
	tx := EncodePunctured(bits, Rate23)
	tx[17] ^= 1
	tx[90] ^= 1
	got, err := DecodePunctured(HardToSoft(tx), Rate23, 120, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d not corrected", i)
		}
	}
}

func TestViterbiOddLengthRejected(t *testing.T) {
	if _, err := ViterbiDecode([]float64{1, 1, 1}, false); err == nil {
		t.Fatal("expected error for odd soft length")
	}
}

func TestViterbiEmpty(t *testing.T) {
	got, err := ViterbiDecode(nil, false)
	if err != nil || got != nil {
		t.Fatalf("empty decode: %v, %v", got, err)
	}
}

func TestViterbiTooShortTerminated(t *testing.T) {
	if _, err := ViterbiDecode([]float64{1, 1}, true); err == nil {
		t.Fatal("expected error: fewer steps than tail bits")
	}
}

// TestViterbiRandomizedStress runs many random codewords with random
// sparse errors and verifies perfect correction.
func TestViterbiRandomizedStress(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	for trial := 0; trial < 25; trial++ {
		n := 20 + r.Intn(200)
		bits := randBits(r, n)
		coded := EncodeTerminated(bits)
		// One error per ~40 coded bits, spaced at least 15 apart.
		pos := 5 + r.Intn(10)
		for pos < len(coded) {
			coded[pos] ^= 1
			pos += 15 + r.Intn(40)
		}
		got, err := ViterbiDecode(HardToSoft(coded), true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("trial %d: bit %d wrong", trial, i)
			}
		}
	}
}
