package iq

import (
	"bytes"
	"testing"
)

// FuzzRead must handle arbitrary byte streams in both formats without
// panicking, and whatever parses must re-encode to the same bytes
// (cf32 is lossless over its own output).
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, []complex128{1, complex(0, -1)}, CF32, 0)
	f.Add(buf.Bytes(), true)
	f.Add([]byte{1, 2, 3}, false)
	f.Fuzz(func(t *testing.T, data []byte, cf32 bool) {
		format, scale := CS16, 1.0
		if cf32 {
			format = CF32
		}
		samples, err := Read(bytes.NewReader(data), format, scale)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, samples, format, scale); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if format == CF32 && !bytes.Equal(out.Bytes(), data[:len(out.Bytes())]) {
			// cf32 re-encoding is bit-exact except for NaN payloads,
			// which Go may canonicalize; tolerate those.
			for i := range out.Bytes() {
				if out.Bytes()[i] != data[i] {
					return // NaN canonicalization; not a bug
				}
			}
		}
	})
}
