// Package iq reads and writes baseband IQ sample files, so waveforms
// produced by the simulator can be inspected with external tools (or
// replayed into it). The binary format is the de-facto SDR convention:
// interleaved little-endian values, one I and one Q per sample, in
// either complex64 (float32 pairs, "cf32") or 16-bit signed integer
// ("cs16", full scale ±32767).
package iq

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Format selects the on-disk sample encoding.
type Format int

const (
	// CF32 is interleaved little-endian float32 I/Q.
	CF32 Format = iota
	// CS16 is interleaved little-endian int16 I/Q at a caller-chosen
	// full scale.
	CS16
)

// String names the format.
func (f Format) String() string {
	switch f {
	case CF32:
		return "cf32"
	case CS16:
		return "cs16"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat converts a name ("cf32", "cs16") to a Format.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "cf32":
		return CF32, nil
	case "cs16":
		return CS16, nil
	}
	return 0, fmt.Errorf("iq: unknown format %q", name)
}

// Write encodes samples to w. For CS16, fullScale maps amplitude
// fullScale to ±32767 (clipping beyond); it must be positive. For CF32
// it is ignored.
func Write(w io.Writer, samples []complex128, f Format, fullScale float64) error {
	bw := bufio.NewWriter(w)
	switch f {
	case CF32:
		buf := make([]byte, 8)
		for _, s := range samples {
			binary.LittleEndian.PutUint32(buf[0:4], math.Float32bits(float32(real(s))))
			binary.LittleEndian.PutUint32(buf[4:8], math.Float32bits(float32(imag(s))))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	case CS16:
		if fullScale <= 0 {
			return fmt.Errorf("iq: CS16 needs a positive full scale")
		}
		buf := make([]byte, 4)
		for _, s := range samples {
			binary.LittleEndian.PutUint16(buf[0:2], uint16(quant16(real(s), fullScale)))
			binary.LittleEndian.PutUint16(buf[2:4], uint16(quant16(imag(s), fullScale)))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("iq: unknown format %v", f)
	}
	return bw.Flush()
}

func quant16(v, fullScale float64) int16 {
	x := v / fullScale * 32767
	if x > 32767 {
		x = 32767
	}
	if x < -32768 {
		x = -32768
	}
	return int16(math.Round(x))
}

// Read decodes all samples from r. For CS16, fullScale inverts the
// scaling used at write time.
func Read(r io.Reader, f Format, fullScale float64) ([]complex128, error) {
	br := bufio.NewReader(r)
	var out []complex128
	switch f {
	case CF32:
		buf := make([]byte, 8)
		for {
			if _, err := io.ReadFull(br, buf); err != nil {
				if err == io.EOF {
					return out, nil
				}
				if err == io.ErrUnexpectedEOF {
					return nil, fmt.Errorf("iq: truncated cf32 stream after %d samples", len(out))
				}
				return nil, err
			}
			i := math.Float32frombits(binary.LittleEndian.Uint32(buf[0:4]))
			q := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:8]))
			out = append(out, complex(float64(i), float64(q)))
		}
	case CS16:
		if fullScale <= 0 {
			return nil, fmt.Errorf("iq: CS16 needs a positive full scale")
		}
		buf := make([]byte, 4)
		for {
			if _, err := io.ReadFull(br, buf); err != nil {
				if err == io.EOF {
					return out, nil
				}
				if err == io.ErrUnexpectedEOF {
					return nil, fmt.Errorf("iq: truncated cs16 stream after %d samples", len(out))
				}
				return nil, err
			}
			i := int16(binary.LittleEndian.Uint16(buf[0:2]))
			q := int16(binary.LittleEndian.Uint16(buf[2:4]))
			out = append(out, complex(float64(i)/32767*fullScale, float64(q)/32767*fullScale))
		}
	}
	return nil, fmt.Errorf("iq: unknown format %v", f)
}
