package iq

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randSamples(r *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return out
}

func TestCF32RoundTripExactToFloat32(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	in := randSamples(r, 500)
	var buf bytes.Buffer
	if err := Write(&buf, in, CF32, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 500*8 {
		t.Fatalf("cf32 size %d", buf.Len())
	}
	out, err := Read(&buf, CF32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d samples", len(out))
	}
	for i := range in {
		want := complex(float64(float32(real(in[i]))), float64(float32(imag(in[i]))))
		if out[i] != want {
			t.Fatalf("sample %d: %v vs %v", i, out[i], want)
		}
	}
}

func TestCS16RoundTripWithinQuantization(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	in := randSamples(r, 300)
	const fs = 4.0
	var buf bytes.Buffer
	if err := Write(&buf, in, CS16, fs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 300*4 {
		t.Fatalf("cs16 size %d", buf.Len())
	}
	out, err := Read(&buf, CS16, fs)
	if err != nil {
		t.Fatal(err)
	}
	step := fs / 32767
	for i := range in {
		if cmplx.Abs(out[i]-in[i]) > step*1.5 {
			t.Fatalf("sample %d: error %v exceeds quantization step", i, cmplx.Abs(out[i]-in[i]))
		}
	}
}

func TestCS16Clipping(t *testing.T) {
	in := []complex128{complex(10, -10)} // far beyond full scale 1
	var buf bytes.Buffer
	if err := Write(&buf, in, CS16, 1); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf, CS16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(out[0])-1) > 1e-3 || math.Abs(imag(out[0])+32768.0/32767) > 1e-3 {
		t.Fatalf("clipping wrong: %v", out[0])
	}
}

func TestCS16NeedsFullScale(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []complex128{1}, CS16, 0); err == nil {
		t.Fatal("expected error for zero full scale")
	}
	if _, err := Read(&buf, CS16, -1); err == nil {
		t.Fatal("expected error for negative full scale")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []complex128{1, 2}, CF32, 0); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:11])
	if _, err := Read(trunc, CF32, 0); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEmptyStream(t *testing.T) {
	out, err := Read(bytes.NewReader(nil), CF32, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty read: %v, %d", err, len(out))
	}
}

func TestParseFormat(t *testing.T) {
	f, err := ParseFormat("cf32")
	if err != nil || f != CF32 {
		t.Fatalf("cf32: %v %v", f, err)
	}
	f, err = ParseFormat("cs16")
	if err != nil || f != CS16 {
		t.Fatalf("cs16: %v %v", f, err)
	}
	if _, err := ParseFormat("wav"); err == nil {
		t.Fatal("expected error")
	}
	if CF32.String() != "cf32" || CS16.String() != "cs16" {
		t.Fatal("String names wrong")
	}
}
