package parallel

import (
	"backfi/internal/obs"

	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 order %v not sequential", order)
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestNormalize(t *testing.T) {
	if Normalize(0) != DefaultWorkers() {
		t.Fatal("0 should mean DefaultWorkers")
	}
	if Normalize(-5) != 1 {
		t.Fatal("negative should clamp to 1")
	}
	if Normalize(7) != 7 {
		t.Fatal("positive should pass through")
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachErr(20, workers, func(i int) error {
			if i == 3 || i == 17 {
				return fmt.Errorf("fail@%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("workers=%d: got %v, want fail@3", workers, err)
		}
	}
}

func TestForEachErrNil(t *testing.T) {
	if err := ForEachErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachErrSequentialStopsEarly(t *testing.T) {
	ran := 0
	sentinel := errors.New("stop")
	err := ForEachErr(10, 1, func(i int) error {
		ran++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || ran != 3 {
		t.Fatalf("err=%v ran=%d", err, ran)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			ForEach(8, workers, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEachDeterministicReduction(t *testing.T) {
	// The engine's core guarantee: indexed slots + in-order reduction
	// give bit-identical sums for any worker count.
	n := 1000
	sum := func(workers int) float64 {
		vals := make([]float64, n)
		ForEach(n, workers, func(i int) { vals[i] = 1.0 / float64(i+1) })
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	}
	ref := sum(1)
	for _, w := range []int{2, 8, 64} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d sum %v != sequential %v", w, got, ref)
		}
	}
}

func TestForEachRecordsMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := obs.NewRegistry()
		SetRegistry(r)
		ForEach(20, workers, func(i int) {})
		SetRegistry(nil)

		snap := r.Snapshot()
		item, ok := snap.Histogram(obs.MetricParallelItem, "")
		if !ok || item.Count != 20 {
			t.Fatalf("workers=%d: item histogram = %+v, want 20 observations", workers, item)
		}
		busy, ok := snap.Histogram(obs.MetricParallelBusy, "")
		if !ok || busy.Count != int64(workers) {
			t.Fatalf("workers=%d: busy histogram = %+v, want %d observations", workers, busy, workers)
		}
		batch, ok := snap.Histogram(obs.MetricParallelBatch, "")
		if !ok || batch.Count != 1 {
			t.Fatalf("workers=%d: batch histogram = %+v, want 1 observation", workers, batch)
		}
	}
}

func TestForEachUninstrumentedByDefault(t *testing.T) {
	SetRegistry(nil)
	// Must not panic or allocate registry state.
	ForEach(10, 4, func(i int) {})
}
