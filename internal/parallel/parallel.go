// Package parallel is the simulator's deterministic fan-out engine.
// Every Monte-Carlo sweep in the repository is an independent grid of
// (point, trial) work items whose randomness is derived from an
// explicit per-index seed, so the only thing concurrency may change is
// wall-clock time — never results. The contract enforced here:
//
//   - Work is identified by index. Each fn(i) derives everything it
//     needs (seed, config, output slot) from i alone and writes into a
//     caller-owned slice element, so output layout is fixed before any
//     goroutine starts.
//   - Reduction happens on the caller's goroutine, in index order,
//     after the pool drains. Floating-point accumulation order is
//     therefore identical for every worker count, making results
//     bit-identical between workers=1 and workers=N.
//   - workers=1 runs fn on the calling goroutine in strict index
//     order, reproducing the historical sequential execution exactly.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"backfi/internal/obs"
)

// poolMetrics caches instrument handles so the dispatch loop never
// touches the registry. Metrics here are pure observers of wall-clock
// time: they cannot perturb results, which stay index-derived.
type poolMetrics struct {
	item    *obs.Histogram
	busy    *obs.Histogram
	batch   *obs.Histogram
	workers *obs.Gauge
}

var metrics atomic.Pointer[poolMetrics]

// SetRegistry installs a metrics registry for every subsequent batch:
// per-item wall clock, per-worker busy seconds, batch wall clock, and
// an effective-worker-count gauge. Passing nil (the default) restores
// the uninstrumented fast path, whose only cost is one atomic load per
// batch. ForEach's signature is used throughout the repository, so
// this is package state rather than a parameter; set it once at
// process start, before pools run.
func SetRegistry(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolMetrics{
		item:    r.Histogram(obs.MetricParallelItem, "Wall-clock seconds per parallel work item.", obs.DurationBuckets),
		busy:    r.Histogram(obs.MetricParallelBusy, "Per-worker busy seconds within one batch (sum of its item durations).", obs.DurationBuckets),
		batch:   r.Histogram(obs.MetricParallelBatch, "Wall-clock seconds per ForEach batch.", obs.DurationBuckets),
		workers: r.Gauge(obs.MetricParallelWorkers, "Effective worker count of the most recent batch."),
	})
}

// DefaultWorkers is the worker count used when a caller passes 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize maps a Workers option to an effective worker count:
// 0 means DefaultWorkers, negative values clamp to 1.
func Normalize(workers int) int {
	if workers == 0 {
		return DefaultWorkers()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// ForEach invokes fn(i) exactly once for every i in [0, n) using up to
// `workers` goroutines (0 = DefaultWorkers) and returns when all calls
// have completed. With workers <= 1 the calls run sequentially on the
// calling goroutine in index order. fn must write its result into a
// pre-indexed slot; ForEach guarantees completion, not call order.
// A panic in any fn is re-raised on the calling goroutine after the
// pool drains.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	m := metrics.Load()
	if m != nil {
		m.workers.Set(float64(workers))
	}
	if workers <= 1 {
		if m == nil {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		sp := m.batch.Start()
		var busy time.Duration
		for i := 0; i < n; i++ {
			t0 := time.Now()
			fn(i)
			d := time.Since(t0)
			busy += d
			m.item.Observe(d.Seconds())
		}
		m.busy.Observe(busy.Seconds())
		sp.End()
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
		sp       obs.Span
	)
	if m != nil {
		sp = m.batch.Start()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var busy time.Duration
			if m != nil {
				defer func() { m.busy.Observe(busy.Seconds()) }()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, r)
						}
					}()
					if m == nil {
						fn(i)
						return
					}
					t0 := time.Now()
					fn(i)
					d := time.Since(t0)
					busy += d
					m.item.Observe(d.Seconds())
				}()
			}
		}()
	}
	wg.Wait()
	sp.End()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// ForEachErr is ForEach for work items that can fail. All indices run
// (workers > 1) or the loop stops at the first failure (workers <= 1);
// either way the returned error is the lowest-index one, so the value
// is independent of the worker count.
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	ForEach(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
