package core

import (
	"testing"

	"backfi/internal/obs"
)

// benchRunPacket measures one full decode chain (excitation build,
// channel simulation, SIC, channel estimation, MRC, Viterbi) with the
// given registry attached. The nil/instrumented pair quantifies the
// observability layer's hot-path cost: with a nil registry every probe
// is a nil-receiver no-op, so the two must be within noise of each
// other (the PR's acceptance bound is ≤2%; see BENCH_results.json).
func benchRunPacket(b *testing.B, reg *obs.Registry) {
	cfg := DefaultLinkConfig(1)
	cfg.Obs = reg
	payloads := make([][]byte, b.N)
	links := make([]*Link, b.N)
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i + 1)
		link, err := NewLink(c)
		if err != nil {
			b.Fatal(err)
		}
		links[i] = link
		payloads[i] = link.RandomPayload(24)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := links[i].RunPacket(payloads[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunPacket(b *testing.B) { benchRunPacket(b, nil) }

func BenchmarkRunPacketInstrumented(b *testing.B) { benchRunPacket(b, obs.NewRegistry()) }

// BenchmarkRunPacketNilTracer is the tracing analogue of the
// nil-registry pair: a tracer is configured but samples (effectively)
// nothing, so every frame takes the realistic "tracing on, frame not
// sampled" path — Head() per packet plus a zero TraceCtx through every
// span site, which must cost only pointer compares (no clock reads).
// The CI gate holds this within 2% of BenchmarkRunPacket from the same
// run.
func BenchmarkRunPacketNilTracer(b *testing.B) {
	tr := obs.NewTracer(obs.TracerConfig{SampleEvery: 1 << 30})
	cfg := DefaultLinkConfig(1)
	payloads := make([][]byte, b.N)
	links := make([]*Link, b.N)
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = int64(i + 1)
		link, err := NewLink(c)
		if err != nil {
			b.Fatal(err)
		}
		links[i] = link
		payloads[i] = link.RandomPayload(24)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		links[i].SetTrace(tr.Head("bench", i))
		if _, err := links[i].RunPacket(payloads[i]); err != nil {
			b.Fatal(err)
		}
	}
}
