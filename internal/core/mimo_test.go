package core

import (
	"bytes"
	"testing"
)

func TestMIMODecodesAndCombines(t *testing.T) {
	cfg := DefaultLinkConfig(2)
	cfg.Seed = 5
	link, err := NewMIMOLink(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := link.RandomPayload(80)
	res, err := link.RunPacket(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK || !bytes.Equal(res.Decode.Payload, payload) {
		t.Fatal("3-antenna link should decode at 2 m")
	}
	if len(res.PerAntennaSNRdB) != 3 || len(res.Decode.PerAntennaSIC) != 3 {
		t.Fatalf("per-antenna diagnostics missing: %d / %d",
			len(res.PerAntennaSNRdB), len(res.Decode.PerAntennaSIC))
	}
	// The joint combine must beat the average single antenna.
	var mean float64
	for _, s := range res.PerAntennaSNRdB {
		mean += s
	}
	mean /= 3
	if res.JointSNRdB <= mean {
		t.Fatalf("joint SNR %v not above per-antenna mean %v", res.JointSNRdB, mean)
	}
}

func TestMIMOGainOverSISO(t *testing.T) {
	// Average the combining gain over several placements: ~10log10(N)
	// plus diversity, so 4 antennas should give >4 dB on average.
	var gain float64
	const reps = 6
	for i := 0; i < reps; i++ {
		cfg := DefaultLinkConfig(3)
		cfg.Seed = 40 + int64(i)
		link, err := NewMIMOLink(cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunPacket(link.RandomPayload(32))
		if err != nil {
			t.Fatal(err)
		}
		var mean float64
		for _, s := range res.PerAntennaSNRdB {
			mean += s
		}
		gain += res.JointSNRdB - mean/4
	}
	gain /= reps
	if gain < 3 {
		t.Fatalf("4-antenna combining gain %v dB, want ≥ 3", gain)
	}
}

func TestMIMOSingleAntennaMatchesSISOBehaviour(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 9
	link, err := NewMIMOLink(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.RunPacket(link.RandomPayload(40))
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK {
		t.Fatal("single-antenna MIMO link should decode at 1 m")
	}
	if len(res.PerAntennaSNRdB) != 1 {
		t.Fatalf("%d per-antenna entries", len(res.PerAntennaSNRdB))
	}
}

func TestMIMOValidation(t *testing.T) {
	if _, err := NewMIMOLink(DefaultLinkConfig(1), 0); err == nil {
		t.Fatal("expected error for zero antennas")
	}
	bad := DefaultLinkConfig(1)
	bad.Tag.SymbolRateHz = 0
	if _, err := NewMIMOLink(bad, 2); err == nil {
		t.Fatal("expected config validation error")
	}
}

func TestMIMOExtendsRange(t *testing.T) {
	// At a distance where one antenna struggles, four antennas should
	// succeed at least as often.
	success := func(nrx int) int {
		ok := 0
		for i := 0; i < 5; i++ {
			cfg := DefaultLinkConfig(6)
			cfg.Tag.SymbolRateHz = 2e6
			cfg.Seed = 70 + int64(i)
			link, err := NewMIMOLink(cfg, nrx)
			if err != nil {
				t.Fatal(err)
			}
			res, err := link.RunPacket(link.RandomPayload(24))
			if err != nil {
				continue
			}
			if res.PayloadOK {
				ok++
			}
		}
		return ok
	}
	if s1, s4 := success(1), success(4); s4 < s1 {
		t.Fatalf("4 antennas (%d/5) worse than 1 (%d/5) at 6 m", s4, s1)
	}
}
