package core

import (
	"testing"

	"backfi/internal/ble"
	"backfi/internal/dsp"
	"backfi/internal/tag"
	"backfi/internal/zigbee"
)

// buildZigbeeExcitation concatenates Zigbee PPDUs until the length
// budget is met.
func buildZigbeeExcitation(t *testing.T, link *Link, minSamples int) []complex128 {
	t.Helper()
	var out []complex128
	seq := 0
	for len(out) < minSamples {
		psdu := make([]byte, 100)
		link.rng.Read(psdu)
		psdu[0] = byte(seq)
		wave, err := zigbee.Transmit(psdu)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wave...)
		seq++
	}
	return out
}

func TestBackFiOverZigbeeExcitation(t *testing.T) {
	// The paper's generality claim: swap the WiFi excitation for an
	// 802.15.4 O-QPSK transmission and the backscatter link still
	// works. The narrowband (2 MHz) excitation offers less frequency
	// diversity, so run a modest tag rate at close range.
	cfg := DefaultLinkConfig(1)
	cfg.Tag.SymbolRateHz = 500e3
	cfg.Seed = 6
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := link.RandomPayload(24)
	need := 320 + link.Tag.Cfg.PreambleSamples() + 40*600 // generous budget
	exc := buildZigbeeExcitation(t, link, need)

	res, err := link.RunCustomExcitation(exc, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK {
		t.Fatalf("BackFi over Zigbee failed: SNR %.1f dB, raw BER %.3f",
			res.MeasuredSNRdB, res.RawBER())
	}
	if res.Decode.PreambleCorr < 0.8 {
		t.Fatalf("preamble correlation %v", res.Decode.PreambleCorr)
	}
}

func TestCustomExcitationWhiteNoiseCarrier(t *testing.T) {
	// Any known wideband waveform works — even a pseudo-random one
	// (the degenerate "dummy packet" case of Sec. 6.3).
	cfg := DefaultLinkConfig(2)
	cfg.Seed = 7
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := link.RandomPayload(32)
	n := 320 + link.Tag.Cfg.PreambleSamples() + 400*20 + 4000
	exc := make([]complex128, n)
	for i := range exc {
		exc[i] = complex(link.rng.NormFloat64(), link.rng.NormFloat64())
	}
	exc = dsp.NormalizePower(exc, 1)
	res, err := link.RunCustomExcitation(exc, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK {
		t.Fatal("white-noise excitation should decode at 2 m")
	}
}

func TestCustomExcitationTooShort(t *testing.T) {
	link, err := NewLink(DefaultLinkConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.RunCustomExcitation(make([]complex128, 100), []byte{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestBackFiOverBLEExcitation(t *testing.T) {
	// And over Bluetooth LE GFSK: a constant-envelope 1 MHz excitation.
	// Even narrower than Zigbee, so use a low tag rate and close range.
	cfg := DefaultLinkConfig(1)
	cfg.Tag.SymbolRateHz = 100e3
	cfg.Seed = 11
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := link.RandomPayload(8)
	need := 320 + link.Tag.Cfg.PreambleSamples() +
		tag.SymbolsForPayload(8, link.Tag.Cfg.Coding, link.Tag.Cfg.Mod)*link.Tag.Cfg.SamplesPerSymbol() + 2000
	var exc []complex128
	for len(exc) < need {
		pdu := make([]byte, 200)
		link.rng.Read(pdu)
		wave, err := ble.Transmit(pdu)
		if err != nil {
			t.Fatal(err)
		}
		exc = append(exc, wave...)
	}
	res, err := link.RunCustomExcitation(exc, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PayloadOK {
		t.Fatalf("BackFi over BLE failed: SNR %.1f dB, raw BER %.3f",
			res.MeasuredSNRdB, res.RawBER())
	}
}
