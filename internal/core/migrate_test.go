package core

import (
	"fmt"
	"math/rand"
	"testing"

	"backfi/internal/adapt"
	"backfi/internal/fault"
)

// frameRecord is the per-frame evidence the migratable-resume tests
// byte-compare: everything a serving-layer response would carry.
type frameRecord struct {
	Delivered, PayloadOK              bool
	PacketsSent, NoWakes, ACKsDropped int
	ConfigSwitches                    int
	SNRdB, AirtimeSec                 float64
	RawBitErrors                      int
}

func recordFrame(t *testing.T, s *Session, payload []byte) frameRecord {
	t.Helper()
	res, ok, err := s.Send(payload)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	rec := frameRecord{
		Delivered:      ok,
		PacketsSent:    s.Stats.PacketsSent,
		NoWakes:        s.Stats.NoWakes,
		ACKsDropped:    s.Stats.ACKsDropped,
		ConfigSwitches: s.Stats.ConfigSwitches,
		AirtimeSec:     s.Stats.AirtimeSec,
	}
	if res != nil {
		rec.PayloadOK = res.PayloadOK
		rec.SNRdB = res.MeasuredSNRdB
		rec.RawBitErrors = res.RawBitErrors
	}
	return rec
}

// payloads returns the deterministic frame payload sequence the tests
// share between control and resumed runs.
func payloads(n, size int) [][]byte {
	rng := rand.New(rand.NewSource(77))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

// runResumeCase runs the control session end to end, then a split run
// that snapshots at frame `cut` and resumes into a fresh session, and
// requires byte-identical per-frame records after the cut.
func runResumeCase(t *testing.T, mk func() (*Session, error), frames, cut int) {
	t.Helper()
	pl := payloads(frames, 24)

	ctrl, err := mk()
	if err != nil {
		t.Fatalf("control session: %v", err)
	}
	want := make([]frameRecord, frames)
	for i := range want {
		want[i] = recordFrame(t, ctrl, pl[i])
	}

	first, err := mk()
	if err != nil {
		t.Fatalf("first session: %v", err)
	}
	for i := 0; i < cut; i++ {
		got := recordFrame(t, first, pl[i])
		if got != want[i] {
			t.Fatalf("pre-cut frame %d diverged: got %+v want %+v", i, got, want[i])
		}
	}
	snap, err := first.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	second, err := mk()
	if err != nil {
		t.Fatalf("second session: %v", err)
	}
	if err := second.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	for i := cut; i < frames; i++ {
		got := recordFrame(t, second, pl[i])
		if got != want[i] {
			t.Fatalf("post-resume frame %d diverged: got %+v want %+v", i, got, want[i])
		}
	}
	if second.Stats != ctrl.Stats {
		t.Fatalf("final stats diverged: got %+v want %+v", second.Stats, ctrl.Stats)
	}
}

// TestMigratableResumeByteIdentical is the core handoff contract
// (DESIGN.md §5j): a fresh session restored from a snapshot continues
// the control session's decode stream byte-identically, across the
// legacy path, the session-cache hot path, adaptive sessions, and an
// active fault profile.
func TestMigratableResumeByteIdentical(t *testing.T) {
	// 2.5 m with channel evolution: far enough that retries, ACK
	// drops, and controller activity all occur within 30 frames.
	base := func() LinkConfig {
		cfg := DefaultLinkConfig(2.5)
		cfg.Seed = 11
		cfg.Migratable = true
		return cfg
	}
	cases := []struct {
		name string
		mk   func() (*Session, error)
	}{
		{"fixed-legacy", func() (*Session, error) {
			return NewSession(base(), 0.9, 2)
		}},
		{"fixed-hotpath", func() (*Session, error) {
			cfg := base()
			cfg.SessionCache = true
			return NewSession(cfg, 0.9, 2)
		}},
		{"adaptive", func() (*Session, error) {
			return NewAdaptiveSession(base(), 0.9, 2, adapt.Config{}, 250e3)
		}},
		{"faulted", func() (*Session, error) {
			cfg := base()
			p := fault.Standard(0.5)
			cfg.Faults = &p
			return NewSession(cfg, 0.9, 2)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, cut := range []int{1, 13} {
				runResumeCase(t, tc.mk, 30, cut)
			}
		})
	}
}

// TestMigratableResumeAcrossFaultSwitch exercises the timeline-replay
// contract the serving layer depends on: a profile switch before the
// cut must be replayed on the receiving link (same switch sequence)
// for the fault stream to line up.
func TestMigratableResumeAcrossFaultSwitch(t *testing.T) {
	frames, cut, switchAt := 24, 12, 6
	pl := payloads(frames, 24)
	sev := fault.Standard(0.6)

	mk := func() (*Session, error) {
		cfg := DefaultLinkConfig(2.5)
		cfg.Seed = 5
		cfg.Migratable = true
		return NewSession(cfg, 0.9, 2)
	}
	run := func(s *Session, from, to int) []frameRecord {
		var out []frameRecord
		for i := from; i < to; i++ {
			if i == switchAt {
				if err := s.SetFaultProfile(&sev); err != nil {
					t.Fatalf("SetFaultProfile: %v", err)
				}
			}
			out = append(out, recordFrame(t, s, pl[i]))
		}
		return out
	}

	ctrl, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	want := run(ctrl, 0, frames)

	first, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	run(first, 0, cut)
	snap, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	second, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	// The serving layer replays the scripted profile switches that
	// happened before the cut, then restores.
	if err := second.SetFaultProfile(&sev); err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got := run(second, cut, frames)
	for i := range got {
		if got[i] != want[cut+i] {
			t.Fatalf("post-resume frame %d diverged: got %+v want %+v", cut+i, got[i], want[cut+i])
		}
	}
}

// TestSnapshotRequiresMigratable pins the guardrails: snapshots and
// restores are refused outside migratable mode and on used sessions.
func TestSnapshotRequiresMigratable(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	s, err := NewSession(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot on non-migratable session did not error")
	}
	if err := s.RestoreSnapshot(SessionSnapshot{}); err == nil {
		t.Fatal("RestoreSnapshot on non-migratable session did not error")
	}

	cfg.Migratable = true
	m, err := NewSession(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Send(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreSnapshot(SessionSnapshot{Attempts: 3}); err == nil {
		t.Fatal("RestoreSnapshot into used session did not error")
	}
	fresh, err := NewSession(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ctrlState := adapt.State{}
	snap.Ctrl = &ctrlState
	if err := fresh.RestoreSnapshot(snap); err == nil {
		t.Fatal("controller-presence mismatch did not error")
	}
	_ = fmt.Sprintf("%+v", snap)
}
