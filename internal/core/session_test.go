package core

import (
	"testing"

	"backfi/internal/channel"
)

func TestSessionDeliversStream(t *testing.T) {
	cfg := DefaultLinkConfig(2)
	cfg.Seed = 8
	s, err := NewSession(cfg, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		payload := make([]byte, 64)
		payload[0] = byte(i)
		_, ok, err := s.Send(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("frame %d undelivered at 2 m with retries", i)
		}
	}
	if s.Stats.DeliveryRate() != 1 {
		t.Fatalf("delivery rate %v", s.Stats.DeliveryRate())
	}
	if s.Stats.GoodputBps() <= 0 {
		t.Fatal("goodput not accounted")
	}
	if s.Stats.PacketsSent < s.Stats.FramesOffered {
		t.Fatal("packet accounting broken")
	}
}

func TestSessionARQRescuesMarginalLink(t *testing.T) {
	// At a marginal range/config, retries must deliver more frames
	// than a single shot, because the channel evolves between attempts.
	send := func(retries int) float64 {
		delivered := 0
		const frames = 10
		for i := 0; i < frames; i++ {
			cfg := DefaultLinkConfig(5)
			cfg.Tag.SymbolRateHz = 2e6 // marginal at 5 m
			cfg.Seed = 500 + int64(i)
			s, err := NewSession(cfg, 0.7, retries)
			if err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Send(make([]byte, 32))
			if err != nil {
				continue
			}
			if ok {
				delivered++
			}
		}
		return float64(delivered) / frames
	}
	zero := send(0)
	three := send(3)
	if three < zero {
		t.Fatalf("retries should not hurt: %v vs %v", three, zero)
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(DefaultLinkConfig(1), 0.9, -1); err == nil {
		t.Fatal("expected error for negative retries")
	}
	bad := DefaultLinkConfig(1)
	bad.Tag.SymbolRateHz = 0
	if _, err := NewSession(bad, 0.9, 1); err == nil {
		t.Fatal("expected link config error")
	}
}

func TestEvolverPreservesPowerAndCorrelates(t *testing.T) {
	cfg := DefaultLinkConfig(2)
	cfg.Seed = 9
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := channel.NewEvolver(link.rng, 0.99, link.Scenario)
	before := link.Scenario.HF.Gain()
	const steps = 500
	var meanGain float64
	for i := 0; i < steps; i++ {
		ev.Step()
		meanGain += link.Scenario.HF.Gain()
	}
	meanGain /= steps
	// The AR(1) is stationary around the initial power: the long-run
	// mean gain stays within the fading spread of the original.
	if meanGain < before/10 || meanGain > before*10 {
		t.Fatalf("mean power drifted: %v vs %v", meanGain, before)
	}
	// Consecutive steps must correlate at rho=0.99: one step changes
	// the channel only slightly.
	snap := append([]complex128{}, link.Scenario.HF...)
	ev.Step()
	var diff, ref float64
	for i := range snap {
		d := link.Scenario.HF[i] - snap[i]
		diff += real(d)*real(d) + imag(d)*imag(d)
		ref += real(snap[i])*real(snap[i]) + imag(snap[i])*imag(snap[i])
	}
	if diff/ref > 0.2 {
		t.Fatalf("one rho=0.99 step moved the channel by %v", diff/ref)
	}
	// Frozen channel: rho=1 must be exactly invariant.
	frozen := channel.NewEvolver(link.rng, 1, link.Scenario)
	snapshot := append([]complex128{}, link.Scenario.HF...)
	frozen.Step()
	for i := range snapshot {
		if link.Scenario.HF[i] != snapshot[i] {
			t.Fatal("rho=1 should freeze the channel")
		}
	}
}

func TestCoherenceRho(t *testing.T) {
	if got := channel.CoherenceRho(0, 1); got != 1 {
		t.Fatalf("zero interval rho %v", got)
	}
	if got := channel.CoherenceRho(1, 0); got != 0 {
		t.Fatalf("zero coherence rho %v", got)
	}
	mid := channel.CoherenceRho(0.1, 0.5)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("rho %v out of range", mid)
	}
}
