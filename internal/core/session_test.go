package core

import (
	"math"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/fault"
)

func TestSessionDeliversStream(t *testing.T) {
	cfg := DefaultLinkConfig(2)
	cfg.Seed = 8
	s, err := NewSession(cfg, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		payload := make([]byte, 64)
		payload[0] = byte(i)
		_, ok, err := s.Send(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("frame %d undelivered at 2 m with retries", i)
		}
	}
	if s.Stats.DeliveryRate() != 1 {
		t.Fatalf("delivery rate %v", s.Stats.DeliveryRate())
	}
	if s.Stats.GoodputBps() <= 0 {
		t.Fatal("goodput not accounted")
	}
	if s.Stats.PacketsSent < s.Stats.FramesOffered {
		t.Fatal("packet accounting broken")
	}
}

func TestSessionARQRescuesMarginalLink(t *testing.T) {
	// At a marginal range/config, retries must deliver more frames
	// than a single shot, because the channel evolves between attempts.
	send := func(retries int) float64 {
		delivered := 0
		const frames = 10
		for i := 0; i < frames; i++ {
			cfg := DefaultLinkConfig(5)
			cfg.Tag.SymbolRateHz = 2e6 // marginal at 5 m
			cfg.Seed = 500 + int64(i)
			s, err := NewSession(cfg, 0.7, retries)
			if err != nil {
				t.Fatal(err)
			}
			_, ok, err := s.Send(make([]byte, 32))
			if err != nil {
				continue
			}
			if ok {
				delivered++
			}
		}
		return float64(delivered) / frames
	}
	zero := send(0)
	three := send(3)
	if three < zero {
		t.Fatalf("retries should not hurt: %v vs %v", three, zero)
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(DefaultLinkConfig(1), 0.9, -1); err == nil {
		t.Fatal("expected error for negative retries")
	}
	bad := DefaultLinkConfig(1)
	bad.Tag.SymbolRateHz = 0
	if _, err := NewSession(bad, 0.9, 1); err == nil {
		t.Fatal("expected link config error")
	}
}

func TestEvolverPreservesPowerAndCorrelates(t *testing.T) {
	cfg := DefaultLinkConfig(2)
	cfg.Seed = 9
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := channel.NewEvolver(link.rng, 0.99, link.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	before := link.Scenario.HF.Gain()
	const steps = 500
	var meanGain float64
	for i := 0; i < steps; i++ {
		ev.Step()
		meanGain += link.Scenario.HF.Gain()
	}
	meanGain /= steps
	// The AR(1) is stationary around the initial power: the long-run
	// mean gain stays within the fading spread of the original.
	if meanGain < before/10 || meanGain > before*10 {
		t.Fatalf("mean power drifted: %v vs %v", meanGain, before)
	}
	// Consecutive steps must correlate at rho=0.99: one step changes
	// the channel only slightly.
	snap := append([]complex128{}, link.Scenario.HF...)
	ev.Step()
	var diff, ref float64
	for i := range snap {
		d := link.Scenario.HF[i] - snap[i]
		diff += real(d)*real(d) + imag(d)*imag(d)
		ref += real(snap[i])*real(snap[i]) + imag(snap[i])*imag(snap[i])
	}
	if diff/ref > 0.2 {
		t.Fatalf("one rho=0.99 step moved the channel by %v", diff/ref)
	}
	// Frozen channel: rho=1 must be exactly invariant.
	frozen, err := channel.NewEvolver(link.rng, 1, link.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]complex128{}, link.Scenario.HF...)
	frozen.Step()
	for i := range snapshot {
		if link.Scenario.HF[i] != snapshot[i] {
			t.Fatal("rho=1 should freeze the channel")
		}
	}
}

func TestCoherenceRho(t *testing.T) {
	if got := channel.CoherenceRho(0, 1); got != 1 {
		t.Fatalf("zero interval rho %v", got)
	}
	if got := channel.CoherenceRho(1, 0); got != 0 {
		t.Fatalf("zero coherence rho %v", got)
	}
	mid := channel.CoherenceRho(0.1, 0.5)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("rho %v out of range", mid)
	}
}

// TestSessionARQUnderDroppedACKs pins the ARQ accounting when the
// fault layer eats every ACK: the reader decodes the frame on each
// attempt, but the tag never learns it and burns the whole retry
// budget. Bursty co-channel interference rides along to exercise the
// receive chain the way a hostile deployment would.
func TestSessionARQUnderDroppedACKs(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 11
	cfg.Faults = &fault.Profile{
		ACKDropProb:    1,
		InterfDuty:     0.1,
		InterfPowerDBm: -78,
		InterfBurstUs:  10,
	}
	const maxRetries = 3
	s, err := NewSession(cfg, 1, maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	res, delivered, err := s.Send(s.Link().RandomPayload(24))
	if err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("frame cannot complete when every ACK is dropped")
	}
	if res == nil {
		t.Fatal("last attempt's result should be returned")
	}
	st := s.Stats
	if st.FramesOffered != 1 || st.FramesDelivered != 0 {
		t.Fatalf("offered/delivered = %d/%d", st.FramesOffered, st.FramesDelivered)
	}
	if st.PacketsSent != maxRetries+1 {
		t.Fatalf("PacketsSent %d, want the full budget %d", st.PacketsSent, maxRetries+1)
	}
	if st.Retries() != maxRetries {
		t.Fatalf("Retries %d, want %d", st.Retries(), maxRetries)
	}
	// Every decode that did succeed must be accounted as a dropped ACK,
	// and there must have been at least one (1 m decodes easily).
	if st.ACKsDropped < 1 || st.ACKsDropped > st.PacketsSent {
		t.Fatalf("ACKsDropped %d outside [1,%d]", st.ACKsDropped, st.PacketsSent)
	}
	// Airtime accrues per attempt; goodput is zero since nothing was
	// delivered end to end.
	wantAir := float64(st.PacketsSent) * res.TagAirtimeSec
	if math.Abs(st.AirtimeSec-wantAir) > 1e-12 {
		t.Fatalf("AirtimeSec %v, want %d attempts × %v = %v",
			st.AirtimeSec, st.PacketsSent, res.TagAirtimeSec, wantAir)
	}
	if st.PayloadBits != 0 || st.GoodputBps() != 0 {
		t.Fatalf("goodput should be zero: bits=%d goodput=%v", st.PayloadBits, st.GoodputBps())
	}
}

// TestSessionNoWakeConsumesAttempt pins the bugfix for no-wake
// accounting: a tag that sleeps through the wake preamble must consume
// a retry attempt like a CRC failure — the session keeps going and the
// stats stay consistent with EvaluateWorkers' loss accounting — instead
// of aborting the whole session with an error.
func TestSessionNoWakeConsumesAttempt(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 21
	cfg.Faults = &fault.Profile{NoWakeProb: 1}
	const maxRetries = 2
	s, err := NewSession(cfg, 1, maxRetries)
	if err != nil {
		t.Fatal(err)
	}
	res, delivered, err := s.Send(s.Link().RandomPayload(24))
	if err != nil {
		t.Fatalf("no-wake must consume an attempt, not abort the session: %v", err)
	}
	if delivered {
		t.Fatal("nothing can deliver when the tag never wakes")
	}
	if res != nil {
		t.Fatal("no attempt decoded, so there is no last result")
	}
	st := s.Stats
	if st.FramesOffered != 1 || st.FramesDelivered != 0 {
		t.Fatalf("offered/delivered = %d/%d", st.FramesOffered, st.FramesDelivered)
	}
	if st.PacketsSent != maxRetries+1 {
		t.Fatalf("PacketsSent %d, want the full budget %d (each no-wake costs an attempt)", st.PacketsSent, maxRetries+1)
	}
	if st.NoWakes != maxRetries+1 {
		t.Fatalf("NoWakes %d, want %d", st.NoWakes, maxRetries+1)
	}
	if st.Retries() != maxRetries {
		t.Fatalf("Retries %d, want %d", st.Retries(), maxRetries)
	}
	// The tag never modulated: zero airtime, zero goodput, no payload.
	if st.AirtimeSec != 0 || st.PayloadBits != 0 || st.GoodputBps() != 0 {
		t.Fatalf("sleeping tag accrued airtime=%v bits=%d goodput=%v", st.AirtimeSec, st.PayloadBits, st.GoodputBps())
	}
}

// TestSessionNoWakePartialLoss checks the session still delivers frames
// around intermittent wake misses and that every miss is visible in the
// NoWakes stat with the attempt counted.
func TestSessionNoWakePartialLoss(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 23
	cfg.Faults = &fault.Profile{NoWakeProb: 0.5}
	s, err := NewSession(cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 10
	const bytesPer = 24
	for i := 0; i < frames; i++ {
		if _, _, err := s.Send(s.Link().RandomPayload(bytesPer)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats
	if st.FramesOffered != frames {
		t.Fatalf("FramesOffered %d", st.FramesOffered)
	}
	if st.FramesDelivered == 0 {
		t.Fatal("half-rate wake loss with retries should still deliver frames")
	}
	if st.NoWakes == 0 {
		t.Fatal("p=0.5 over many attempts should miss at least one wake")
	}
	// Attempts split into decodes (which accrue airtime) and no-wakes
	// (which do not); every attempt is a sent packet.
	if st.PacketsSent < st.NoWakes+st.FramesDelivered {
		t.Fatalf("PacketsSent %d below NoWakes+FramesDelivered = %d+%d", st.PacketsSent, st.NoWakes, st.FramesDelivered)
	}
	if st.PayloadBits != 8*bytesPer*st.FramesDelivered {
		t.Fatalf("PayloadBits %d, want %d", st.PayloadBits, 8*bytesPer*st.FramesDelivered)
	}
	if st.AirtimeSec <= 0 {
		t.Fatal("decoded attempts must accrue airtime")
	}
}

// TestSessionDeliveredFlag pins the goodput double-count bugfix over
// the ACK-drop-on-last-attempt and clean-delivery edges: PayloadOK
// says "the reader decoded it", Delivered says "the exchange
// completed" — an ACK-dropped final attempt is the case where they
// must disagree.
func TestSessionDeliveredFlag(t *testing.T) {
	cases := []struct {
		name          string
		faults        *fault.Profile
		maxRetries    int
		wantDelivered bool
		wantPayloadOK bool
	}{
		// Every ACK lost: the reader decodes each attempt but the frame
		// never completes; the last result must not read as delivered.
		{"ack-drop-on-last-attempt", &fault.Profile{ACKDropProb: 1}, 1, false, true},
		// Clean link: both agree.
		{"clean-delivery", nil, 1, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultLinkConfig(1)
			cfg.Seed = 29
			cfg.Faults = tc.faults
			s, err := NewSession(cfg, 1, tc.maxRetries)
			if err != nil {
				t.Fatal(err)
			}
			res, delivered, err := s.Send(s.Link().RandomPayload(24))
			if err != nil {
				t.Fatal(err)
			}
			if delivered != tc.wantDelivered {
				t.Fatalf("delivered = %v, want %v", delivered, tc.wantDelivered)
			}
			if res == nil {
				t.Fatal("decoded attempts must return a result")
			}
			if res.PayloadOK != tc.wantPayloadOK {
				t.Fatalf("PayloadOK = %v, want %v", res.PayloadOK, tc.wantPayloadOK)
			}
			if res.Delivered != tc.wantDelivered {
				t.Fatalf("res.Delivered = %v but the frame delivered = %v: goodput consumers keying off this field double-count", res.Delivered, tc.wantDelivered)
			}
		})
	}
}

// TestSessionRetriesNeverNegative drives Retries() over the accounting
// edges, including a frame that errors out of the pipeline before its
// first transmission (FramesOffered incremented, PacketsSent not).
func TestSessionRetriesNeverNegative(t *testing.T) {
	cases := []struct {
		name string
		st   SessionStats
		want int
	}{
		{"error-on-first-attempt", SessionStats{FramesOffered: 1, PacketsSent: 0}, 0},
		{"error-after-one-clean-frame", SessionStats{FramesOffered: 2, PacketsSent: 1}, 0},
		{"no-retries", SessionStats{FramesOffered: 3, PacketsSent: 3}, 0},
		{"two-retries", SessionStats{FramesOffered: 3, PacketsSent: 5}, 2},
	}
	for _, tc := range cases {
		if got := tc.st.Retries(); got != tc.want {
			t.Errorf("%s: Retries() = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestSessionARQPartialACKLoss checks the accounting identities when
// ACKs are lost only sometimes: delivered frames carry their payload
// bits, goodput divides by total airtime (retries included), and each
// dropped ACK shows up as an extra transmission.
func TestSessionARQPartialACKLoss(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 13
	cfg.Faults = &fault.Profile{ACKDropProb: 0.5}
	s, err := NewSession(cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 12
	const bytesPer = 24
	for i := 0; i < frames; i++ {
		if _, _, err := s.Send(s.Link().RandomPayload(bytesPer)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats
	if st.FramesOffered != frames {
		t.Fatalf("FramesOffered %d", st.FramesOffered)
	}
	if st.FramesDelivered == 0 {
		t.Fatal("half-rate ACK loss should still deliver some frames")
	}
	if st.ACKsDropped == 0 {
		t.Fatal("p=0.5 over many attempts should drop at least one ACK")
	}
	if st.PayloadBits != 8*bytesPer*st.FramesDelivered {
		t.Fatalf("PayloadBits %d, want %d", st.PayloadBits, 8*bytesPer*st.FramesDelivered)
	}
	if st.Retries() < st.ACKsDropped-1 {
		// Each dropped ACK forces a retransmission unless it ate the
		// final attempt of a frame's budget.
		t.Fatalf("Retries %d cannot be below ACKsDropped-1 (%d)", st.Retries(), st.ACKsDropped-1)
	}
	if got, want := st.GoodputBps(), float64(st.PayloadBits)/st.AirtimeSec; got != want {
		t.Fatalf("GoodputBps %v, want %v", got, want)
	}
}
