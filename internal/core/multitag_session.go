package core

import (
	"fmt"

	"backfi/internal/fault"
	"backfi/internal/obs"
)

// MultiTagSessionConfig shapes one serving-layer multi-tag session: a
// group of co-located tags lit together and decoded jointly, slot
// after slot (DESIGN.md §5i).
type MultiTagSessionConfig struct {
	// Link is the template configuration; Link.Channel.DistanceM is
	// the nearest tag's range and Link.Seed the session seed.
	Link LinkConfig
	// Tags is the polled group size (every slot carries this many
	// payloads).
	Tags int
	// Impostor adds one extra unpolled tag that shares the group wake:
	// it backscatters junk into every slot and must be absorbed by the
	// joint decoder — the adversarial deployment of the collision
	// matrix tests.
	Impostor bool
	// Spread sets the geometric range ladder of the group: tag k sits
	// at DistanceM·(1+Spread)^k, the impostor one rung past the last
	// member. Successive cancellation needs a power gap between
	// adjacent layers — equal ranges are undecodable jointly — and a
	// geometric ladder gives every layer the same gap. Defaults to 1
	// (each tag twice as far as the previous).
	Spread float64
	// Pool, when set, shares excitation templates with other sessions
	// (copy-on-write session state — see SlotPool).
	Pool *SlotPool
}

// MultiTagStats aggregates a session's slot outcomes.
type MultiTagStats struct {
	// SlotsOffered counts SendSlot calls.
	SlotsOffered int
	// TagsPolled counts tag-frames offered (slots × group size).
	TagsPolled int
	// TagsDelivered counts tag-frames whose payload round-tripped.
	TagsDelivered int
	// PayloadBits counts application bits across delivered tag-frames.
	PayloadBits int
	// AirtimeSec sums slot airtime (the longest member frame per slot).
	AirtimeSec float64
}

// GoodputBps is delivered application throughput per airtime — the
// aggregate multi-tag goodput of the BENCH "serving_multitag" entry.
func (s MultiTagStats) GoodputBps() float64 {
	if s.AirtimeSec == 0 {
		return 0
	}
	return float64(s.PayloadBits) / s.AirtimeSec
}

// DeliveryRate is delivered tag-frames over offered tag-frames.
func (s MultiTagStats) DeliveryRate() float64 {
	if s.TagsPolled == 0 {
		return 0
	}
	return float64(s.TagsDelivered) / float64(s.TagsPolled)
}

// groupWakeID is the wake sequence every session group shares; which
// sequence it is does not matter (they are all balanced 16-bit codes),
// only that group members agree.
const groupWakeID = 0

// MultiTagSession runs a fixed tag group slot by slot. Like Session it
// is confined to one shard goroutine — no internal locking.
type MultiTagSession struct {
	link   *MultiTagLink
	polled []int
	// Stats aggregates outcomes; read it between SendSlot calls.
	Stats MultiTagStats
}

// NewMultiTagSession realizes the deployment: Tags polled tags (plus
// an impostor when configured) spread in range, all sharing one wake
// group.
func NewMultiTagSession(cfg MultiTagSessionConfig) (*MultiTagSession, error) {
	if cfg.Tags < 1 {
		return nil, fmt.Errorf("core: multi-tag session needs >= 1 tags, got %d", cfg.Tags)
	}
	ratio := 1 + cfg.Spread
	if cfg.Spread == 0 {
		ratio = 2
	}
	base := cfg.Link.Channel.DistanceM
	if base <= 0 {
		base = 1
	}
	n := cfg.Tags
	if cfg.Impostor {
		n++
	}
	distances := make([]float64, n)
	d := base
	for k := 0; k < n; k++ {
		// The impostor, when present, is simply the bottom rung: strong
		// enough to collide, weak enough that every polled layer
		// outranks it in the cancellation order.
		distances[k] = d
		d *= ratio
	}
	link, err := NewMultiTagLink(cfg.Link, distances)
	if err != nil {
		return nil, err
	}
	if err := link.SetWakeGroup(groupWakeID); err != nil {
		return nil, err
	}
	if cfg.Pool != nil {
		link.SetSlotPool(cfg.Pool)
	}
	polled := make([]int, cfg.Tags)
	for k := range polled {
		polled[k] = k
	}
	return &MultiTagSession{link: link, polled: polled}, nil
}

// Link exposes the underlying deployment.
func (s *MultiTagSession) Link() *MultiTagLink { return s.link }

// Tags is the polled group size — the payload count every SendSlot
// must carry.
func (s *MultiTagSession) Tags() int { return len(s.polled) }

// SetTrace points the next slot's pipeline spans at t.
func (s *MultiTagSession) SetTrace(t obs.TraceCtx) { s.link.SetTrace(t) }

// SetFaultProfile swaps the session's injected fault profile.
func (s *MultiTagSession) SetFaultProfile(p *fault.Profile) error {
	return s.link.SetFaultProfile(p)
}

// SendSlot offers one payload per group tag, runs the slot, and folds
// the outcome into Stats. Exactly one excitation per call — multi-tag
// slots carry no ARQ (a lost tag-frame is the next slot's problem at
// the application layer), so stats stay a pure function of the slot
// stream.
func (s *MultiTagSession) SendSlot(payloads [][]byte) (*SlotResult, error) {
	if len(payloads) != len(s.polled) {
		return nil, fmt.Errorf("core: slot carries %d payloads for a %d-tag group", len(payloads), len(s.polled))
	}
	res, err := s.link.RunSlot(s.polled, payloads)
	if err != nil {
		return nil, err
	}
	s.Stats.SlotsOffered++
	s.Stats.TagsPolled += len(s.polled)
	s.Stats.AirtimeSec += res.AirtimeSec
	for k, pr := range res.Results {
		if pr != nil && pr.Delivered {
			s.Stats.TagsDelivered++
			s.Stats.PayloadBits += 8 * len(payloads[k])
		}
	}
	return res, nil
}
