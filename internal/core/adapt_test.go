package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"backfi/internal/channel"
	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/tag"
)

// partialWakeChannel returns a placement where, at seed 7 over 16
// trials, some tags wake and some do not (found empirically: the wake
// detector's threshold sits just above this TX power at 1 m). It
// exercises the statistics paths that differ between all-wake and
// no-wake populations.
func partialWakeChannel() channel.Config {
	ch := channel.DefaultConfig(1)
	ch.TxPowerDBm = 3.5 // withDefaults only replaces zero, so this sticks
	return ch
}

// TestFeasibilityStatsPartialWake pins the Monte-Carlo reduction: with
// a placement where only part of the trials wake, SuccessRate and
// WakeRate are per-trial fractions while MeanSNRdB/MeanRawBER average
// over the decoded trials only. The historical bug divided the sums by
// the trial count, biasing both means toward zero whenever any tag
// slept; here the means are recomputed trial by trial and must match
// exactly.
func TestFeasibilityStatsPartialWake(t *testing.T) {
	const trials = 16
	const seed = 7
	base := DefaultLinkConfig(1)
	ch := partialWakeChannel()

	f, err := EvaluateWorkers(ch, base.Tag, base.Reader, trials, 24, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.WakeRate <= 0 || f.WakeRate >= 1 {
		t.Fatalf("placement must partially wake for this test: WakeRate=%v", f.WakeRate)
	}

	// Recompute the reduction sequentially from the same per-trial seeds.
	var snrSum, berSum float64
	success, decoded := 0, 0
	for i := 0; i < trials; i++ {
		lc := LinkConfig{
			Channel:       ch,
			Tag:           base.Tag,
			Reader:        base.Reader,
			WiFiMbps:      24,
			WiFiPSDUBytes: 1500,
			Seed:          seed + int64(i)*7919,
		}
		link, err := NewLink(lc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunPacket(link.RandomPayload(24))
		if err != nil {
			if errors.Is(err, ErrTagNoWake) {
				continue
			}
			t.Fatal(err)
		}
		decoded++
		if res.PayloadOK {
			success++
		}
		snrSum += res.MeasuredSNRdB
		berSum += res.RawBER()
	}
	if decoded == 0 || decoded == trials {
		t.Fatalf("expected a partial wake population, got %d/%d", decoded, trials)
	}
	if got, want := f.WakeRate, float64(decoded)/trials; got != want {
		t.Fatalf("WakeRate %v, want %v", got, want)
	}
	if got, want := f.SuccessRate, float64(success)/trials; got != want {
		t.Fatalf("SuccessRate %v, want %v", got, want)
	}
	if got, want := f.MeanSNRdB, snrSum/float64(decoded); got != want {
		t.Fatalf("MeanSNRdB %v, want %v (decoded-trial mean, not /trials)", got, want)
	}
	if got, want := f.MeanRawBER, berSum/float64(decoded); got != want {
		t.Fatalf("MeanRawBER %v, want %v", got, want)
	}
	// The sleeping trials must not have diluted the mean: dividing the
	// same sum by the trial count would land measurably lower.
	if diluted := snrSum / trials; math.Abs(f.MeanSNRdB-diluted) < 1 {
		t.Fatalf("test placement too weak to distinguish the divisors (%v vs %v)", f.MeanSNRdB, diluted)
	}
}

// TestEvaluateSurfacesPipelineErrors pins satellite #2: a RunPacket
// failure that is not ErrTagNoWake must propagate out of the
// evaluation instead of being silently counted as a lost packet. A SIC
// digital filter longer than half the 320-sample silent window makes
// training impossible on every trial.
func TestEvaluateSurfacesPipelineErrors(t *testing.T) {
	base := DefaultLinkConfig(1)
	rdr := base.Reader
	rdr.SIC.DigitalTaps = 200 // needs 400 training samples; only 320 exist
	_, err := EvaluateWorkers(channel.DefaultConfig(1), base.Tag, rdr, 4, 24, 1, 0)
	if err == nil {
		t.Fatal("broken SIC config should surface an error")
	}
	if errors.Is(err, ErrTagNoWake) {
		t.Fatalf("pipeline failure misclassified as no-wake: %v", err)
	}
}

// TestEvaluateRejectsInvalidConfigs covers the panic-free contract at
// the evaluation entry points.
func TestEvaluateRejectsInvalidConfigs(t *testing.T) {
	base := DefaultLinkConfig(1)
	badTag := base.Tag
	badTag.Mod = tag.Modulation(42)
	if _, err := EvaluateWorkers(channel.DefaultConfig(1), badTag, base.Reader, 1, 8, 1, 0); err == nil {
		t.Fatal("unknown modulation should error")
	}
	badFaults := &fault.Profile{ACKDropProb: 2}
	if _, err := EvaluateFaults(channel.DefaultConfig(1), base.Tag, base.Reader, badFaults, 1, 8, 1, 0); err == nil {
		t.Fatal("invalid fault profile should error")
	}
	if _, err := EvaluateWorkers(channel.DefaultConfig(1), base.Tag, base.Reader, 0, 8, 1, 0); err == nil {
		t.Fatal("zero trials should error")
	}
}

// TestParetoREPBDeterministicOrder pins satellite #3: ParetoREPB
// iterates a map, so its output order must come entirely from the
// deterministic sort — ascending throughput, ties broken by REPB and
// then by the configuration's name.
func TestParetoREPBDeterministicOrder(t *testing.T) {
	mk := func(sym float64, mod tag.Modulation, coding fec.CodeRate, repb float64) Feasibility {
		return Feasibility{
			Cfg:           tag.Config{Mod: mod, Coding: coding, SymbolRateHz: sym, PreambleChips: 32},
			SuccessRate:   1,
			ThroughputBps: 1e6,
			REPB:          repb,
		}
	}
	// Same throughput everywhere: order must fall back to REPB, then to
	// the config name for the REPB tie.
	in := []Feasibility{
		mk(1e6, tag.QPSK, fec.Rate12, 1.4),
		mk(2e6, tag.BPSK, fec.Rate12, 1.4),
		mk(1e6, tag.BPSK, fec.Rate23, 1.1),
	}
	// Distinct throughputs to populate the map with several keys.
	in = append(in,
		Feasibility{Cfg: tag.Config{Mod: tag.BPSK, Coding: fec.Rate12, SymbolRateHz: 5e5, PreambleChips: 32}, SuccessRate: 1, ThroughputBps: 5e5, REPB: 2},
		Feasibility{Cfg: tag.Config{Mod: tag.PSK16, Coding: fec.Rate12, SymbolRateHz: 1e6, PreambleChips: 32}, SuccessRate: 1, ThroughputBps: 2e6, REPB: 3},
	)

	want := ""
	for trial := 0; trial < 50; trial++ {
		out := ParetoREPB(in)
		got := ""
		for _, f := range out {
			got += fmt.Sprintf("%v|%v|%v;", f.ThroughputBps, f.REPB, f.Cfg)
		}
		if trial == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("ParetoREPB order unstable:\n%s\nvs\n%s", want, got)
		}
	}
	// And the sort itself keeps full slices (with duplicates the map
	// would collapse) in the documented order.
	fs := []Feasibility{in[0], in[1], in[2]}
	sortByThroughput(fs)
	if fs[0].REPB != 1.1 {
		t.Fatalf("lowest REPB should sort first at equal throughput, got %+v", fs[0])
	}
	if !(fs[1].Cfg.String() < fs[2].Cfg.String()) {
		t.Fatalf("REPB tie should break on config name: %v then %v", fs[1].Cfg, fs[2].Cfg)
	}
}
