package core

import (
	"errors"
	"fmt"
	"sort"

	"backfi/internal/channel"
	"backfi/internal/energy"
	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/parallel"
	"backfi/internal/reader"
	"backfi/internal/tag"
)

// StandardSymbolRates are the tag switching rates of paper Fig. 7.
var StandardSymbolRates = []float64{10e3, 100e3, 500e3, 1e6, 2e6, 2.5e6}

// StandardConfigs enumerates the paper's 36 tag configurations
// ({BPSK,QPSK,16PSK} × {1/2,2/3} × six symbol rates).
func StandardConfigs(preambleChips, id int) []tag.Config {
	var out []tag.Config
	for _, rs := range StandardSymbolRates {
		for _, mod := range tag.Modulations {
			for _, coding := range []fec.CodeRate{fec.Rate12, fec.Rate23} {
				out = append(out, tag.Config{
					Mod:           mod,
					Coding:        coding,
					SymbolRateHz:  rs,
					PreambleChips: preambleChips,
					ID:            id,
				})
			}
		}
	}
	return out
}

// Feasibility summarizes Monte-Carlo packet trials of one configuration
// at one distance.
type Feasibility struct {
	Cfg tag.Config
	// SuccessRate is the fraction of trials whose frame decoded
	// correctly.
	SuccessRate float64
	// WakeRate is the fraction of trials in which the tag woke (the
	// remainder contribute zero throughput and no SNR/BER samples).
	WakeRate float64
	// MeanSNRdB averages the measured post-MRC symbol SNR over the
	// trials that decoded (the tag woke); 0 when none did.
	MeanSNRdB float64
	// MeanRawBER averages the pre-FEC bit error rate over the trials
	// that decoded; 0 when none did.
	MeanRawBER float64
	// ThroughputBps is the configuration's information bit rate.
	ThroughputBps float64
	// REPB is the configuration's relative energy per bit.
	REPB float64
}

// Decodable applies the paper's operating criterion: the link is usable
// if the overwhelming majority of frames decode.
func (f Feasibility) Decodable() bool { return f.SuccessRate >= 0.9 }

// Evaluate runs `trials` independent placements/packets of one tag
// configuration and summarizes the outcome. Trials run on all
// available CPUs; use EvaluateWorkers to bound or serialize them.
func Evaluate(chanCfg channel.Config, tcfg tag.Config, rdrCfg reader.Config, trials, payloadBytes int, seed int64) (Feasibility, error) {
	return EvaluateWorkers(chanCfg, tcfg, rdrCfg, trials, payloadBytes, seed, 0)
}

// trialOutcome is one Monte-Carlo trial's contribution, stored in a
// per-index slot so the reduction below runs in trial order and the
// summary is bit-identical for every worker count.
type trialOutcome struct {
	err     error
	decoded bool // RunPacket succeeded (the tag woke)
	ok      bool
	snr     float64
	ber     float64
}

// EvaluateWorkers is Evaluate with an explicit concurrency bound:
// workers=0 uses every CPU, workers=1 reproduces the historical
// sequential evaluation exactly. Each trial derives its own seed
// (seed + i*7919), builds an independent Link, and writes into its own
// slot, so the returned Feasibility does not depend on workers.
//
// Instrumentation rides on rdrCfg.Obs: the registry set there is also
// installed as each trial link's LinkConfig.Obs, so packet counters and
// stage spans cover sweeps without widening this signature.
func EvaluateWorkers(chanCfg channel.Config, tcfg tag.Config, rdrCfg reader.Config, trials, payloadBytes int, seed int64, workers int) (Feasibility, error) {
	return EvaluateFaults(chanCfg, tcfg, rdrCfg, nil, trials, payloadBytes, seed, workers)
}

// EvaluateFaults is EvaluateWorkers with an impairment profile injected
// into every trial link (nil = the clean evaluation). Trials where the
// tag fails to wake (ErrTagNoWake) count as zero throughput; any other
// RunPacket error is a genuine pipeline failure and is returned.
//
// Summary statistics follow the sampling structure: SuccessRate and
// WakeRate are per-trial fractions, while MeanSNRdB/MeanRawBER average
// only over the trials that decoded — a placement where half the tags
// sleep must not bias the decoded population's SNR toward zero.
func EvaluateFaults(chanCfg channel.Config, tcfg tag.Config, rdrCfg reader.Config, faults *fault.Profile, trials, payloadBytes int, seed int64, workers int) (Feasibility, error) {
	if trials <= 0 {
		return Feasibility{}, fmt.Errorf("core: trials must be positive")
	}
	// Validate before touching tcfg.BitRate()/REPB: unknown modulations
	// or code rates must surface as errors, not panics.
	if err := tcfg.Validate(); err != nil {
		return Feasibility{}, err
	}
	if err := faults.Validate(); err != nil {
		return Feasibility{}, err
	}
	f := Feasibility{Cfg: tcfg, ThroughputBps: tcfg.BitRate()}
	if repb, err := energy.ConfigREPB(tcfg); err == nil {
		f.REPB = repb
	}
	outcomes := make([]trialOutcome, trials)
	parallel.ForEach(trials, workers, func(i int) {
		lc := LinkConfig{
			Channel:       chanCfg,
			Tag:           tcfg,
			Reader:        rdrCfg,
			WiFiMbps:      24,
			WiFiPSDUBytes: 1500,
			Seed:          seed + int64(i)*7919,
			Faults:        faults,
			Obs:           rdrCfg.Obs,
		}
		link, err := NewLink(lc)
		if err != nil {
			outcomes[i].err = err
			return
		}
		res, err := link.RunPacket(link.RandomPayload(payloadBytes))
		if err != nil {
			if errors.Is(err, ErrTagNoWake) {
				// Out of detector range: zero throughput at this
				// placement, not a failure of the pipeline.
				return
			}
			outcomes[i].err = err
			return
		}
		outcomes[i] = trialOutcome{decoded: true, ok: res.PayloadOK, snr: res.MeasuredSNRdB, ber: res.RawBER()}
	})
	var snrSum, berSum float64
	success, decoded := 0, 0
	for _, o := range outcomes {
		if o.err != nil {
			return Feasibility{}, o.err
		}
		if !o.decoded {
			continue
		}
		decoded++
		if o.ok {
			success++
		}
		snrSum += o.snr
		berSum += o.ber
	}
	f.SuccessRate = float64(success) / float64(trials)
	f.WakeRate = float64(decoded) / float64(trials)
	if decoded > 0 {
		f.MeanSNRdB = snrSum / float64(decoded)
		f.MeanRawBER = berSum / float64(decoded)
	}
	return f, nil
}

// Sweep evaluates every configuration in cfgs at one distance, using
// all available CPUs.
func Sweep(chanCfg channel.Config, cfgs []tag.Config, rdrCfg reader.Config, trials, payloadBytes int, seed int64) ([]Feasibility, error) {
	return SweepWorkers(chanCfg, cfgs, rdrCfg, trials, payloadBytes, seed, 0)
}

// SweepWorkers is Sweep with an explicit concurrency bound shared by
// the per-configuration and per-trial levels.
func SweepWorkers(chanCfg channel.Config, cfgs []tag.Config, rdrCfg reader.Config, trials, payloadBytes int, seed int64, workers int) ([]Feasibility, error) {
	out := make([]Feasibility, len(cfgs))
	err := parallel.ForEachErr(len(cfgs), workers, func(i int) error {
		f, err := EvaluateWorkers(chanCfg, cfgs[i], rdrCfg, trials, payloadBytes, seed+int64(i)*104729, workers)
		if err != nil {
			return err
		}
		out[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BestThroughput returns the decodable configuration with the highest
// bit rate (ties broken by lower REPB), or ok=false if nothing decodes.
func BestThroughput(results []Feasibility) (Feasibility, bool) {
	var best Feasibility
	found := false
	for _, f := range results {
		if !f.Decodable() {
			continue
		}
		if !found || f.ThroughputBps > best.ThroughputBps ||
			(f.ThroughputBps == best.ThroughputBps && f.REPB < best.REPB) {
			best = f
			found = true
		}
	}
	return best, found
}

// MinREPBAtThroughput returns the decodable configuration with the
// lowest REPB among those achieving at least the target bit rate —
// the paper's rate-adaptation policy ("the most precious resource here
// is energy", Sec. 6.1).
func MinREPBAtThroughput(results []Feasibility, minBps float64) (Feasibility, bool) {
	var best Feasibility
	found := false
	for _, f := range results {
		if !f.Decodable() || f.ThroughputBps < minBps {
			continue
		}
		if !found || f.REPB < best.REPB {
			best = f
			found = true
		}
	}
	return best, found
}

// ParetoREPB returns, for each distinct achieved throughput among
// decodable configs, the minimum REPB — the per-range curves of paper
// Fig. 9.
func ParetoREPB(results []Feasibility) []Feasibility {
	byTput := map[float64]Feasibility{}
	for _, f := range results {
		if !f.Decodable() {
			continue
		}
		if cur, ok := byTput[f.ThroughputBps]; !ok || f.REPB < cur.REPB {
			byTput[f.ThroughputBps] = f
		}
	}
	out := make([]Feasibility, 0, len(byTput))
	for _, f := range byTput {
		out = append(out, f)
	}
	sortByThroughput(out)
	return out
}

// sortByThroughput orders ascending by throughput with a fully
// deterministic tie-break (REPB, then the config's name), so Pareto
// output never depends on map iteration order.
func sortByThroughput(fs []Feasibility) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].ThroughputBps != fs[j].ThroughputBps {
			return fs[i].ThroughputBps < fs[j].ThroughputBps
		}
		if fs[i].REPB != fs[j].REPB {
			return fs[i].REPB < fs[j].REPB
		}
		return fs[i].Cfg.String() < fs[j].Cfg.String()
	})
}
