package core

import (
	"testing"

	"backfi/internal/tag"
)

// The paper's reader "transmits 1 to 4 ms long packet[s]" (Sec. 6.1):
// each excitation pays a fixed protocol cost (CTS-to-SELF + 16 µs wake
// + 16 µs silence + 32 µs tag preamble), so longer excitations carry
// proportionally more payload.

func TestLongerExcitationAmortizesOverhead(t *testing.T) {
	goodputPerAirtime := func(payloadBytes int) float64 {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = 14
		link, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunPacket(link.RandomPayload(payloadBytes))
		if err != nil {
			t.Fatal(err)
		}
		if !res.PayloadOK {
			t.Fatalf("payload of %d bytes failed at 1 m", payloadBytes)
		}
		totalAir := float64(res.ExcitationSamples) / tag.SampleRate
		return float64(8*payloadBytes) / totalAir
	}
	short := goodputPerAirtime(16)  // tiny frame: overhead-dominated
	long := goodputPerAirtime(1200) // multi-ms excitation
	if long <= short*1.5 {
		t.Fatalf("amortization missing: %.0f bps (16 B) vs %.0f bps (1200 B)", short, long)
	}
	// The long exchange approaches the configuration bit rate.
	cfgRate := DefaultLinkConfig(1).Tag.BitRate()
	if long < 0.5*cfgRate {
		t.Fatalf("long-frame goodput %.0f bps below half the %.0f bps config rate", long, cfgRate)
	}
}

func TestProtocolOverheadAccounting(t *testing.T) {
	// The fixed cost before payload symbols: silent period + tag
	// preamble, in samples, exactly as the link lays them out.
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 15
	link, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := link.RunPacket(link.RandomPayload(100))
	if err != nil {
		t.Fatal(err)
	}
	syms := tag.SymbolsForPayload(100, cfg.Tag.Coding, cfg.Tag.Mod)
	minSamples := tag.SilentSamples + cfg.Tag.PreambleSamples() + syms*cfg.Tag.SamplesPerSymbol()
	if res.ExcitationSamples < minSamples {
		t.Fatalf("excitation %d shorter than the protocol minimum %d", res.ExcitationSamples, minSamples)
	}
	// TagAirtime covers preamble + payload symbols (not the silence).
	wantAir := float64(cfg.Tag.PreambleSamples()+syms*cfg.Tag.SamplesPerSymbol()) / tag.SampleRate
	if res.TagAirtimeSec < wantAir*0.99 || res.TagAirtimeSec > wantAir*1.01 {
		t.Fatalf("tag airtime %v, want %v", res.TagAirtimeSec, wantAir)
	}
}
