package core

import (
	"bytes"
	"fmt"
	"testing"
)

func slotPayloads(seed int64, slot, tags int) [][]byte {
	out := make([][]byte, tags)
	for k := range out {
		out[k] = []byte(fmt.Sprintf("reading-%d-%d-%d-0123456789abcdef", seed, slot, k))
	}
	return out
}

// The acceptance bar of DESIGN.md §5i: one excitation, >= 2 colliding
// tag reflections, every polled payload delivered — with an unpolled
// impostor backscattering junk into the same slot.
func TestRunSlotJointDeliversCollidedTags(t *testing.T) {
	for seed := int64(1000); seed < 1004; seed++ {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = seed
		s, err := NewMultiTagSession(MultiTagSessionConfig{Link: cfg, Tags: 2, Impostor: true})
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 3; slot++ {
			pay := slotPayloads(seed, slot, 2)
			res, err := s.SendSlot(pay)
			if err != nil {
				t.Fatal(err)
			}
			if res.Delivered != 2 {
				t.Fatalf("seed %d slot %d: delivered %d/2 (order %v)", seed, slot, res.Delivered, res.Order)
			}
			for k, pr := range res.Results {
				if !pr.PayloadOK || !bytes.Equal(pr.Decode.Payload, pay[k]) {
					t.Fatalf("seed %d slot %d tag %d: payload mismatch", seed, slot, k)
				}
			}
			// The impostor collided (it is in the decode order) but must
			// never surface as a polled outcome.
			if len(res.Results) != 2 || len(res.Order) != 3 {
				t.Fatalf("seed %d slot %d: results %d order %v", seed, slot, len(res.Results), res.Order)
			}
		}
		if r := s.Stats.DeliveryRate(); r != 1 {
			t.Fatalf("seed %d: delivery rate %v", seed, r)
		}
		if s.Stats.GoodputBps() <= 0 {
			t.Fatalf("seed %d: no goodput", seed)
		}
	}
}

// Three stacked reflections on the default geometric ladder must still
// peel apart.
func TestRunSlotThreeLayers(t *testing.T) {
	cfg := DefaultLinkConfig(1)
	cfg.Seed = 1000
	s, err := NewMultiTagSession(MultiTagSessionConfig{Link: cfg, Tags: 3})
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ {
		res, err := s.SendSlot(slotPayloads(1000, slot, 3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != 3 {
			t.Fatalf("slot %d: delivered %d/3", slot, res.Delivered)
		}
	}
}

// A multi-tag session's outcome stream is a pure function of its
// configuration: two sessions fed identical payloads must agree
// result-for-result, including the impostor draws (which are keyed by
// (seed, tag, frame), never shared RNG state).
func TestMultiTagSessionDeterministic(t *testing.T) {
	mk := func() *MultiTagSession {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = 77
		s, err := NewMultiTagSession(MultiTagSessionConfig{Link: cfg, Tags: 2, Impostor: true})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for slot := 0; slot < 4; slot++ {
		pay := slotPayloads(77, slot, 2)
		ra, err := a.SendSlot(pay)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.SendSlot(pay)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Delivered != rb.Delivered || len(ra.Order) != len(rb.Order) {
			t.Fatalf("slot %d diverged: %d/%v vs %d/%v", slot, ra.Delivered, ra.Order, rb.Delivered, rb.Order)
		}
		for k := range ra.Results {
			x, y := ra.Results[k], rb.Results[k]
			if x.PayloadOK != y.PayloadOK || x.MeasuredSNRdB != y.MeasuredSNRdB || !bytes.Equal(x.Decode.Payload, y.Decode.Payload) {
				t.Fatalf("slot %d tag %d diverged", slot, k)
			}
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

// Impostor bytes are a pure function of (seed, tag, frame).
func TestImpostorPayloadPure(t *testing.T) {
	a := impostorPayload(9, 3, 14, 32)
	b := impostorPayload(9, 3, 14, 32)
	if !bytes.Equal(a, b) {
		t.Fatal("impostor payload not deterministic")
	}
	if bytes.Equal(a, impostorPayload(9, 3, 15, 32)) {
		t.Fatal("frame does not vary impostor payload")
	}
	if bytes.Equal(a, impostorPayload(9, 4, 14, 32)) {
		t.Fatal("tag ID does not vary impostor payload")
	}
	if bytes.Equal(a, impostorPayload(10, 3, 14, 32)) {
		t.Fatal("seed does not vary impostor payload")
	}
}

// A shared SlotPool must not change outcomes, only amortize excitation
// builds across sessions.
func TestSlotPoolSharingPreservesOutcomes(t *testing.T) {
	run := func(pool *SlotPool) MultiTagStats {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = 123
		s, err := NewMultiTagSession(MultiTagSessionConfig{Link: cfg, Tags: 2, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < 3; slot++ {
			if _, err := s.SendSlot(slotPayloads(123, slot, 2)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats
	}
	pool := NewSlotPool(123)
	a := run(pool)
	if pool.Size() == 0 {
		t.Fatal("pool unused")
	}
	b := run(pool) // second session hits the warm pool
	c := run(nil)  // private excitation path
	if a != b || a != c {
		t.Fatalf("pooled/private outcomes diverge: %+v / %+v / %+v", a, b, c)
	}
}
