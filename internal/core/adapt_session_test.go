package core

import (
	"math"
	"reflect"
	"testing"

	"backfi/internal/adapt"
	"backfi/internal/fault"
	"backfi/internal/tag"
)

func TestBackoffPolicyDelay(t *testing.T) {
	var zero BackoffPolicy
	for k := 0; k < 5; k++ {
		if d := zero.Delay(k); d != 0 {
			t.Fatalf("zero policy Delay(%d) = %v", k, d)
		}
	}
	b := BackoffPolicy{BaseSec: 1e-3, MaxSec: 2.5e-3}
	for k, want := range map[int]float64{0: 0, 1: 1e-3, 2: 2e-3, 3: 2.5e-3, 4: 2.5e-3} {
		if d := b.Delay(k); math.Abs(d-want) > 1e-15 {
			t.Fatalf("Delay(%d) = %v, want %v", k, d, want)
		}
	}
	uncapped := BackoffPolicy{BaseSec: 1e-3}
	if d := uncapped.Delay(4); d != 8e-3 {
		t.Fatalf("uncapped Delay(4) = %v, want 8e-3", d)
	}
}

// TestSessionBackoffAccounting pins the deterministic backoff
// satellite: retries charge virtual wait to BackoffSec (no wall-clock
// sleeping anywhere), and the policy is pure accounting — every other
// stat matches a zero-policy run byte for byte.
func TestSessionBackoffAccounting(t *testing.T) {
	run := func(b BackoffPolicy) SessionStats {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = 31
		cfg.Faults = &fault.Profile{ACKDropProb: 1} // burn the whole budget
		s, err := NewSession(cfg, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		s.Backoff = b
		if _, delivered, err := s.Send(s.Link().RandomPayload(24)); err != nil || delivered {
			t.Fatalf("delivered=%v err=%v, want undelivered frame", delivered, err)
		}
		return s.Stats
	}
	with := run(BackoffPolicy{BaseSec: 1e-3, MaxSec: 2.5e-3})
	without := run(BackoffPolicy{})

	// Retries 1..3 charge 1, 2, 2.5 ms.
	if with.Backoffs != 3 {
		t.Fatalf("Backoffs = %d, want 3", with.Backoffs)
	}
	if want := 5.5e-3; math.Abs(with.BackoffSec-want) > 1e-12 {
		t.Fatalf("BackoffSec = %v, want %v", with.BackoffSec, want)
	}
	if without.Backoffs != 0 || without.BackoffSec != 0 {
		t.Fatalf("zero policy accrued backoff: %+v", without)
	}
	// Pure accounting: zeroing the backoff fields makes the runs equal.
	with.Backoffs, with.BackoffSec = 0, 0
	if with != without {
		t.Fatalf("backoff perturbed the exchange:\nwith:    %+v\nwithout: %+v", with, without)
	}
	// Backoff is idle time, never tag airtime.
	if with.AirtimeSec != without.AirtimeSec {
		t.Fatal("backoff leaked into airtime")
	}
}

// TestControllerObservationIsPure verifies that merely attaching a
// controller (one that never decides a switch) leaves the session's
// outputs byte-identical to a nil-controller run: the controller is a
// pure observer until it switches, so disabling adaptation reproduces
// pre-controller outputs exactly.
func TestControllerObservationIsPure(t *testing.T) {
	type frameOut struct {
		OK, Delivered bool
		SNR, BER      float64
		Residual      float64
	}
	run := func(attach bool) ([]frameOut, SessionStats) {
		cfg := DefaultLinkConfig(2)
		cfg.Seed = 37
		p := fault.Standard(0.4)
		cfg.Faults = &p
		s, err := NewSession(cfg, 0.9, 2)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			// Single-rung ladder: the controller observes everything but
			// has nowhere to go.
			ctrl, err := adapt.NewController(adapt.Config{}, []tag.Config{cfg.Tag}, cfg.Tag)
			if err != nil {
				t.Fatal(err)
			}
			s.Controller = ctrl
		}
		var outs []frameOut
		for i := 0; i < 5; i++ {
			res, ok, err := s.Send(s.Link().RandomPayload(24))
			if err != nil {
				t.Fatal(err)
			}
			fo := frameOut{Delivered: ok}
			if res != nil {
				fo.OK = res.PayloadOK
				fo.SNR = res.MeasuredSNRdB
				fo.BER = res.RawBER()
				fo.Residual = res.SICResidualDBm
			}
			outs = append(outs, fo)
		}
		return outs, s.Stats
	}
	plainOut, plainStats := run(false)
	ctrlOut, ctrlStats := run(true)
	if !reflect.DeepEqual(plainOut, ctrlOut) {
		t.Fatalf("observer controller changed outputs:\nnil:  %+v\nctrl: %+v", plainOut, ctrlOut)
	}
	if plainStats != ctrlStats {
		t.Fatalf("observer controller changed stats:\nnil:  %+v\nctrl: %+v", plainStats, ctrlStats)
	}
}

// TestAdaptiveSessionDownshiftsUnderFaultRamp drives the full closed
// loop: a clean session absorbs a mid-stream severity ramp (via
// SetFaultProfile, the chaos harness path) and must downshift instead
// of riding its fixed config into the ground — and the switch trace
// must replay byte-identically.
func TestAdaptiveSessionDownshiftsUnderFaultRamp(t *testing.T) {
	run := func() ([]string, SessionStats, float64) {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = 41
		s, err := NewAdaptiveSession(cfg, 0.9, 2, adapt.Config{DownAfter: 2, UpAfter: 6, HoldPackets: 4}, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		hostile := fault.Standard(1)
		for i := 0; i < 8; i++ {
			if i == 2 {
				if err := s.SetFaultProfile(&hostile); err != nil {
					t.Fatal(err)
				}
			}
			if _, _, err := s.Send(s.Link().RandomPayload(24)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Controller.TraceStrings(), s.Stats, s.Link().Tag.Cfg.BitRate()
	}
	trace, stats, finalRate := run()
	if stats.ConfigSwitches == 0 || len(trace) == 0 {
		t.Fatalf("no downshift under severity-1 faults: switches=%d trace=%v stats=%+v", stats.ConfigSwitches, trace, stats)
	}
	startRate := DefaultLinkConfig(1).Tag.BitRate()
	if finalRate >= startRate {
		t.Fatalf("final rate %v did not drop below start %v; trace %v", finalRate, startRate, trace)
	}
	trace2, stats2, _ := run()
	if !reflect.DeepEqual(trace, trace2) || stats != stats2 {
		t.Fatalf("adaptive run not deterministic:\ntrace  %v\ntrace' %v\nstats  %+v\nstats' %+v", trace, trace2, stats, stats2)
	}
}

// TestLinkSetTagConfigNoop: setting the current configuration must not
// rebuild the tag (an idle controller leaves the link untouched).
func TestLinkSetTagConfigNoop(t *testing.T) {
	link, err := NewLink(DefaultLinkConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	before := link.Tag
	if err := link.SetTagConfig(link.Tag.Cfg); err != nil {
		t.Fatal(err)
	}
	if link.Tag != before {
		t.Fatal("no-op SetTagConfig rebuilt the tag")
	}
	bad := link.Tag.Cfg
	bad.SymbolRateHz = 123 // does not divide the sample rate
	if err := link.SetTagConfig(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	if link.Tag != before {
		t.Fatal("failed SetTagConfig left the link half-swapped")
	}
}

// TestSetFaultProfileDeterministicEpochs: the injector reseeds per
// switch, so the same switch sequence reproduces exactly, and clearing
// the profile really disables injection.
func TestSetFaultProfileDeterministicEpochs(t *testing.T) {
	run := func() SessionStats {
		cfg := DefaultLinkConfig(1)
		cfg.Seed = 43
		s, err := NewSession(cfg, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		drop := &fault.Profile{ACKDropProb: 1}
		for i := 0; i < 6; i++ {
			switch i {
			case 2:
				if err := s.SetFaultProfile(drop); err != nil {
					t.Fatal(err)
				}
			case 4:
				if err := s.SetFaultProfile(nil); err != nil {
					t.Fatal(err)
				}
			}
			if _, _, err := s.Send(s.Link().RandomPayload(24)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault-profile switches not deterministic:\n%+v\n%+v", a, b)
	}
	// Frames 0–1 and 4–5 deliver (no faults); 2–3 burn their budget on
	// dropped ACKs.
	if a.FramesDelivered != 4 || a.ACKsDropped == 0 {
		t.Fatalf("profile switches did not take effect: %+v", a)
	}
}
