package core

import (
	"fmt"
	"math/rand"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/reader"
	"backfi/internal/tag"
	"backfi/internal/wifi"
)

// Multi-tag deployments (paper Sec. 4.1: "a preamble can be unique to
// a particular BackFi tag ... and can be used to select which BackFi
// tag gets to backscatter at that instant"). A MultiTagLink places
// several tags around one AP; each exchange addresses one tag by its
// wake sequence. Correctly-behaving unaddressed tags stay asleep; a
// misconfigured tag sharing the addressed tag's ID backscatters
// concurrently and collides.
type MultiTagLink struct {
	Cfg LinkConfig
	// Tags and their independent placements; Tags[i] sits at
	// Distances[i].
	Tags      []*tag.Tag
	Scenarios []*channel.Scenario
	rdr       *reader.Reader
	rng       *rand.Rand
	rate      wifi.Rate
}

// NewMultiTagLink builds a deployment: one tag per distance, with IDs
// 0..n-1 and otherwise identical configuration.
func NewMultiTagLink(cfg LinkConfig, distances []float64) (*MultiTagLink, error) {
	if len(distances) == 0 {
		return nil, fmt.Errorf("core: need at least one tag")
	}
	base, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	m := &MultiTagLink{Cfg: cfg, rng: base.rng, rate: base.rate}
	for i, d := range distances {
		tcfg := cfg.Tag
		tcfg.ID = i
		tg, err := tag.New(tcfg)
		if err != nil {
			return nil, err
		}
		chanCfg := cfg.Channel
		chanCfg.DistanceM = d
		sc, err := channel.NewScenario(chanCfg, m.rng)
		if err != nil {
			return nil, err
		}
		m.Tags = append(m.Tags, tg)
		m.Scenarios = append(m.Scenarios, sc)
	}
	m.rdr = base.rdr
	return m, nil
}

// MultiTagResult reports one addressed exchange.
type MultiTagResult struct {
	// Addressed is the polled tag index.
	Addressed int
	// Woke[i] reports whether tag i's detector fired on this wake
	// preamble.
	Woke []bool
	// Result is the decode outcome for the addressed tag.
	Result *PacketResult
}

// RunPacket polls one tag: the AP transmits that tag's wake sequence,
// every tag's detector inspects it, and only tags whose correlator
// matches backscatter. All active reflections superpose at the AP.
func (m *MultiTagLink) RunPacket(addressed int, payload []byte) (*MultiTagResult, error) {
	if addressed < 0 || addressed >= len(m.Tags) {
		return nil, fmt.Errorf("core: tag index %d out of range", addressed)
	}
	tgt := m.Tags[addressed]
	need := tag.SilentSamples + tgt.Cfg.PreambleSamples() +
		tag.SymbolsForPayload(len(payload), tgt.Cfg.Coding, tgt.Cfg.Mod)*tgt.Cfg.SamplesPerSymbol()
	ppduLen := wifi.PPDULen(m.Cfg.WiFiPSDUBytes, m.rate)
	nppdu := (need + ppduLen - 1) / ppduLen
	if nppdu < 1 {
		nppdu = 1
	}
	// The excitation carries the addressed tag's wake sequence.
	x, packetStart, err := buildExcitation(m.rng, m.rate, m.Cfg.WiFiPSDUBytes,
		m.Scenarios[addressed].TxPowerW(), tgt, nppdu)
	if err != nil {
		return nil, err
	}
	packetLen := len(x) - packetStart
	xAir := m.Scenarios[addressed].Distortion.Apply(x)

	res := &MultiTagResult{Addressed: addressed, Woke: make([]bool, len(m.Tags))}

	// Every tag sees the excitation through its own forward channel and
	// decides independently whether it was addressed.
	total := m.Scenarios[addressed].HEnv.Apply(xAir)
	for i, tg := range m.Tags {
		sc := m.Scenarios[i]
		z := sc.HF.Apply(xAir)
		_, woke := tg.TryWake(z[:packetStart+tag.SilentSamples])
		res.Woke[i] = woke
		if !woke {
			continue
		}
		// A woken tag backscatters its own frame. The addressed tag
		// sends the caller's payload; an impostor (same wake sequence)
		// sends its own junk.
		body := payload
		if i != addressed {
			body = make([]byte, len(payload))
			m.rng.Read(body)
		}
		mSeq, _, err := tg.ModulationSequence(packetLen, body)
		if err != nil {
			return nil, err
		}
		mFull := make([]complex128, len(x))
		copy(mFull[packetStart:], mSeq)
		total = dsp.Add(total, sc.HB.Apply(tag.Backscatter(z, mFull)))
	}
	y := m.Scenarios[addressed].Noise.Add(total)

	dec, err := m.rdr.Decode(x, xAir, y, packetStart, packetLen, tgt.Cfg)
	if err != nil {
		return nil, err
	}
	res.Result = &PacketResult{
		Decode:            dec,
		Sent:              payload,
		PayloadOK:         dec.FrameOK && bytesEqual(dec.Payload, payload),
		Delivered:         dec.FrameOK && bytesEqual(dec.Payload, payload),
		ExcitationSamples: packetLen,
		MeasuredSNRdB:     dec.SNRdB,
	}
	return res, nil
}
