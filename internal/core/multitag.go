package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/tag"
	"backfi/internal/wifi"
)

// Multi-tag deployments (paper Sec. 4.1: "a preamble can be unique to
// a particular BackFi tag ... and can be used to select which BackFi
// tag gets to backscatter at that instant"). A MultiTagLink places
// several tags around one AP. Two polling regimes:
//
//   - RunPacket addresses ONE tag by its wake sequence — the paper's
//     original arbitration. Correctly-behaving unaddressed tags stay
//     asleep; a misconfigured tag sharing the addressed tag's wake
//     sequence backscatters concurrently and collides.
//   - RunSlot lights a GROUP that shares a wake sequence (SetWakeGroup
//     + mac.TagMAC arbitration) and decodes the colliding reflections
//     jointly by successive cancellation (DESIGN.md §5i).
//
// Both regimes run through the same fault-injected, traced, metered
// machinery as the single-tag Link — the base link below carries the
// injector, trace context, metrics, and RNG — so injected impairments
// and spans show up in multi-tag results exactly as they do in
// single-tag ones.
type MultiTagLink struct {
	Cfg LinkConfig
	// Tags and their independent placements; Tags[i] sits at
	// Distances[i].
	Tags      []*tag.Tag
	Scenarios []*channel.Scenario
	// base carries the shared per-link machinery: rng, rate, reader,
	// fault injector, metrics, and trace context.
	base *Link
	// frame counts exchanges (RunPacket and RunSlot alike); it keys the
	// impostor payload derivation so junk bytes are a pure function of
	// (link seed, tag ID, frame index) — never of the shared RNG, whose
	// draw schedule must stay identical whatever the wake outcomes.
	frame int
	// pool, when set, shares immutable excitation templates across
	// sessions (copy-on-write: per-frame transmit distortion is applied
	// into a fresh transient buffer, the template is never written).
	pool *SlotPool
	// hot is the per-link excitation cache used when Cfg.SessionCache
	// is set without a pool — the multi-tag analogue of §5g.
	hot *mtHot
}

// mtHot caches the most recent realized excitation, keyed like the
// single-tag hot path by everything that shapes it.
type mtHot struct {
	scIdx       int
	wakeID      int
	nppdu       int
	x, xAir     []complex128
	packetStart int
}

// NewMultiTagLink builds a deployment: one tag per distance, with IDs
// 0..n-1 and otherwise identical configuration.
func NewMultiTagLink(cfg LinkConfig, distances []float64) (*MultiTagLink, error) {
	if len(distances) == 0 {
		return nil, fmt.Errorf("core: need at least one tag")
	}
	base, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	m := &MultiTagLink{Cfg: cfg, base: base}
	for i, d := range distances {
		tcfg := cfg.Tag
		tcfg.ID = i
		tg, err := tag.New(tcfg)
		if err != nil {
			return nil, err
		}
		chanCfg := cfg.Channel
		chanCfg.DistanceM = d
		sc, err := channel.NewScenario(chanCfg, base.rng)
		if err != nil {
			return nil, err
		}
		m.Tags = append(m.Tags, tg)
		m.Scenarios = append(m.Scenarios, sc)
	}
	return m, nil
}

// SetWakeGroup rebuilds every tag to wake on wakeID's sequence while
// keeping its own PN preamble — the group-wake regime RunSlot decodes
// jointly. Tag configurations and placements are unchanged.
func (m *MultiTagLink) SetWakeGroup(wakeID int) error {
	for i, tg := range m.Tags {
		ng, err := tag.NewWithWake(tg.Cfg, wakeID)
		if err != nil {
			return err
		}
		m.Tags[i] = ng
	}
	m.hot = nil
	return nil
}

// SetSlotPool shares excitation templates with other links (sessions)
// holding the same pool. Only used on unfaulted links — an injector's
// front-end impairments are per-frame and cannot be shared.
func (m *MultiTagLink) SetSlotPool(p *SlotPool) { m.pool = p }

// SetTrace points subsequent exchanges at the per-frame trace context,
// exactly as Link.SetTrace does.
func (m *MultiTagLink) SetTrace(t obs.TraceCtx) { m.base.SetTrace(t) }

// SetFaultProfile swaps the link's injected fault profile (see
// Link.SetFaultProfile for the reseeding contract).
func (m *MultiTagLink) SetFaultProfile(p *fault.Profile) error {
	if err := m.base.SetFaultProfile(p); err != nil {
		return err
	}
	m.Cfg.Faults = m.base.Cfg.Faults
	return nil
}

// impostorPayload derives the junk frame an impostor backscatters as a
// pure function of (link seed, tag ID, frame index). The shared link
// RNG is deliberately not involved: whether an impostor wakes must
// never shift any other draw in the session's schedule, or decode
// streams would diverge across wake outcomes and worker counts.
func impostorPayload(seed int64, tagID, frame, n int) []byte {
	h := uint64(1469598103934665603) ^ uint64(seed)
	for _, v := range [...]uint64{uint64(tagID), uint64(frame)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= 1099511628211
		}
	}
	body := make([]byte, n)
	rand.New(rand.NewSource(int64(h))).Read(body)
	return body
}

// excitation realizes the wake burst + PPDU train for one exchange:
// from the shared pool when one is set, from the per-link cache under
// SessionCache, otherwise fresh from the link RNG — mirroring the
// single-tag §5g gating (caches are bypassed whenever a fault injector
// is active, whose front-end impairments are per-frame).
func (m *MultiTagLink) excitation(scIdx, wakeIdx, nppdu int) (x, xAir []complex128, packetStart int, err error) {
	sc := m.Scenarios[scIdx]
	tg := m.Tags[wakeIdx]
	wakeID := tg.WakeID()
	tspExc := m.base.trace.Start("excitation_build")
	spExc := m.base.m.spanExcitation.Start()
	defer func() {
		spExc.End()
		tspExc.End()
	}()

	if m.base.inj == nil && m.pool != nil {
		tx, ps, hit, err := m.pool.excitation(tg, m.base.rate, m.Cfg.WiFiPSDUBytes, sc.TxPowerW(), nppdu)
		if err != nil {
			return nil, nil, 0, err
		}
		if hit {
			m.base.m.cacheHit.Inc()
		} else {
			m.base.m.cacheMiss.Inc()
		}
		// Copy-on-write: the template is shared and immutable; the
		// per-frame transmit distortion lands in a fresh buffer.
		return tx, sc.Distortion.Apply(tx), ps, nil
	}
	if m.base.inj == nil && m.Cfg.SessionCache {
		if h := m.hot; h != nil && h.scIdx == scIdx && h.wakeID == wakeID && h.nppdu == nppdu {
			m.base.m.cacheHit.Inc()
			return h.x, h.xAir, h.packetStart, nil
		}
		m.base.m.cacheMiss.Inc()
		tx, ps, err := buildExcitation(m.base.rng, m.base.rate, m.Cfg.WiFiPSDUBytes, sc.TxPowerW(), tg, nppdu)
		if err != nil {
			return nil, nil, 0, err
		}
		m.hot = &mtHot{scIdx: scIdx, wakeID: wakeID, nppdu: nppdu,
			x: tx, xAir: sc.Distortion.Apply(tx), packetStart: ps}
		return m.hot.x, m.hot.xAir, m.hot.packetStart, nil
	}
	tx, ps, err := buildExcitation(m.base.rng, m.base.rate, m.Cfg.WiFiPSDUBytes, sc.TxPowerW(), tg, nppdu)
	if err != nil {
		return nil, nil, 0, err
	}
	return tx, m.base.inj.ApplyFrontEnd(sc.Distortion.Apply(tx)), ps, nil
}

// sizing returns the PPDU count covering `need` post-wake samples.
func (m *MultiTagLink) sizing(need int) int {
	ppduLen := wifi.PPDULen(m.Cfg.WiFiPSDUBytes, m.base.rate)
	nppdu := (need + ppduLen - 1) / ppduLen
	if nppdu < 1 {
		nppdu = 1
	}
	return nppdu
}

// tagNeed is the post-wake sample budget for one tag's frame.
func tagNeed(tcfg tag.Config, payloadBytes int) int {
	return tag.SilentSamples + tcfg.PreambleSamples() +
		tag.SymbolsForPayload(payloadBytes, tcfg.Coding, tcfg.Mod)*tcfg.SamplesPerSymbol()
}

// MultiTagResult reports one addressed exchange.
type MultiTagResult struct {
	// Addressed is the polled tag index.
	Addressed int
	// Woke[i] reports whether tag i's detector fired on this wake
	// preamble.
	Woke []bool
	// Result is the decode outcome for the addressed tag.
	Result *PacketResult
}

// RunPacket polls one tag: the AP transmits that tag's wake sequence,
// every tag's detector inspects it, and only tags whose correlator
// matches backscatter. All active reflections superpose at the AP.
func (m *MultiTagLink) RunPacket(addressed int, payload []byte) (*MultiTagResult, error) {
	if addressed < 0 || addressed >= len(m.Tags) {
		return nil, fmt.Errorf("core: tag index %d out of range", addressed)
	}
	frame := m.frame
	m.frame++
	m.base.m.packets.Inc()
	tgt := m.Tags[addressed]
	nppdu := m.sizing(tagNeed(tgt.Cfg, len(payload)))

	// The excitation carries the addressed tag's wake sequence.
	x, xAir, packetStart, err := m.excitation(addressed, addressed, nppdu)
	if err != nil {
		return nil, err
	}
	packetLen := len(x) - packetStart

	tspChan := m.base.trace.Start("channel_sim")
	spChan := m.base.m.spanChannelSim.Start()
	res := &MultiTagResult{Addressed: addressed, Woke: make([]bool, len(m.Tags))}

	// An injected wake fault corrupts the burst itself: the addressed
	// tag sleeps through the poll. (Impostors sharing the sequence miss
	// it too — it is the same burst.)
	wakeDropped := m.base.inj.DropWake()
	if wakeDropped {
		m.base.m.failWake.Inc()
	}

	// Every tag sees the excitation through its own forward channel and
	// decides independently whether it was addressed.
	var plan *tag.TxPlan
	total := m.Scenarios[addressed].HEnv.Apply(xAir)
	for i, tg := range m.Tags {
		sc := m.Scenarios[i]
		z := sc.HF.Apply(xAir)
		_, woke := tg.TryWake(z[:packetStart+tag.SilentSamples])
		woke = woke && !wakeDropped
		res.Woke[i] = woke
		if !woke {
			continue
		}
		// A woken tag backscatters its own frame. The addressed tag
		// sends the caller's payload; an impostor (same wake sequence)
		// sends junk derived from (seed, its ID, frame index).
		body := payload
		if i != addressed {
			body = impostorPayload(m.Cfg.Seed, tg.Cfg.ID, frame, len(payload))
		}
		mSeq, p, err := tg.ModulationSequence(packetLen, body)
		if err != nil {
			return nil, err
		}
		if i == addressed {
			plan = p
			// Tag-side faults follow the addressed tag, as on the
			// single-tag link.
			m.base.inj.ApplyTagPhaseNoise(mSeq)
			m.base.inj.CorruptPreamble(mSeq, p.SilentEnd, tg.Cfg.PreambleChips, tag.ChipSamples)
		}
		mFull := make([]complex128, len(x))
		copy(mFull[packetStart:], mSeq)
		total = dsp.Add(total, sc.HB.Apply(tag.Backscatter(z, mFull)))
	}
	y := m.Scenarios[addressed].Noise.Add(total)
	m.base.inj.AddInterference(y)
	m.base.inj.ApplyADC(y)
	m.base.inj.TruncateTail(y, packetStart, packetLen)
	spChan.End()
	tspChan.End()

	tspDec := m.base.trace.Start("decode_total")
	spDec := m.base.m.spanDecode.Start()
	dec, err := m.base.rdr.Decode(x, xAir, y, packetStart, packetLen, tgt.Cfg)
	spDec.End()
	tspDec.End()
	if err != nil {
		return nil, err
	}
	pr := &PacketResult{
		Decode:            dec,
		Sent:              payload,
		PayloadOK:         dec.FrameOK && bytesEqual(dec.Payload, payload),
		ExcitationSamples: packetLen,
		ExpectedSNRdB:     m.Scenarios[addressed].ExpectedSNRdB(),
		MeasuredSNRdB:     dec.SNRdB,
	}
	pr.Delivered = pr.PayloadOK
	if plan != nil {
		pr.TagAirtimeSec = float64(plan.End()-plan.SilentEnd) / tag.SampleRate
	}
	pr.liftDiagnostics(dec)
	m.base.observeResult(pr)
	res.Result = pr
	return res, nil
}

// SlotResult reports one group slot decoded jointly.
type SlotResult struct {
	// Polled lists the tag indices the slot lit (the MAC group).
	Polled []int
	// Woke[i] reports tag i's detector outcome (all tags, not just the
	// polled ones — unpolled tags sharing the group wake are the
	// impostor interferers).
	Woke []bool
	// Results[k] is Polled[k]'s decode outcome; nil when the joint
	// decoder could not even estimate that tag's channel.
	Results []*PacketResult
	// Order lists decode positions in cancellation order. Entries
	// < len(Polled) index into Polled; larger entries are unpolled
	// wake-group members (impostors) the joint decoder cancelled on
	// the way down.
	Order []int
	// Delivered counts polled tags whose payload round-tripped.
	Delivered int
	// AirtimeSec is the slot's tag airtime (the longest member frame).
	AirtimeSec float64
}

// RunSlot lights every tag in polled with one excitation (they must
// share a wake group — SetWakeGroup) and decodes the colliding
// reflections by joint successive cancellation. payloads[k] is what
// Polled[k] backscatters. Unpolled tags that wake on the group
// sequence backscatter impostor junk and are cancelled or absorbed as
// interference; they are never decoded.
func (m *MultiTagLink) RunSlot(polled []int, payloads [][]byte) (*SlotResult, error) {
	if len(polled) == 0 || len(polled) != len(payloads) {
		return nil, fmt.Errorf("core: RunSlot needs matching polled/payloads, got %d/%d", len(polled), len(payloads))
	}
	inGroup := make(map[int]int, len(polled))
	need := 0
	for k, i := range polled {
		if i < 0 || i >= len(m.Tags) {
			return nil, fmt.Errorf("core: tag index %d out of range", i)
		}
		if _, dup := inGroup[i]; dup {
			return nil, fmt.Errorf("core: tag %d polled twice in one slot", i)
		}
		inGroup[i] = k
		if n := tagNeed(m.Tags[i].Cfg, len(payloads[k])); n > need {
			need = n
		}
	}
	frame := m.frame
	m.frame++
	m.base.m.packets.Inc()
	lead := polled[0]
	nppdu := m.sizing(need)

	x, xAir, packetStart, err := m.excitation(lead, lead, nppdu)
	if err != nil {
		return nil, err
	}
	packetLen := len(x) - packetStart

	tspChan := m.base.trace.Start("channel_sim")
	spChan := m.base.m.spanChannelSim.Start()
	res := &SlotResult{
		Polled:  append([]int(nil), polled...),
		Woke:    make([]bool, len(m.Tags)),
		Results: make([]*PacketResult, len(polled)),
	}
	wakeDropped := m.base.inj.DropWake()
	if wakeDropped {
		m.base.m.failWake.Inc()
	}
	plans := make([]*tag.TxPlan, len(polled))
	total := m.Scenarios[lead].HEnv.Apply(xAir)
	for i, tg := range m.Tags {
		sc := m.Scenarios[i]
		z := sc.HF.Apply(xAir)
		_, woke := tg.TryWake(z[:packetStart+tag.SilentSamples])
		woke = woke && !wakeDropped
		res.Woke[i] = woke
		if !woke {
			continue
		}
		k, isPolled := inGroup[i]
		var body []byte
		if isPolled {
			body = payloads[k]
		} else {
			body = impostorPayload(m.Cfg.Seed, tg.Cfg.ID, frame, len(payloads[0]))
		}
		mSeq, p, err := tg.ModulationSequence(packetLen, body)
		if err != nil {
			return nil, err
		}
		if isPolled {
			plans[k] = p
			m.base.inj.ApplyTagPhaseNoise(mSeq)
			m.base.inj.CorruptPreamble(mSeq, p.SilentEnd, tg.Cfg.PreambleChips, tag.ChipSamples)
		}
		mFull := make([]complex128, len(x))
		copy(mFull[packetStart:], mSeq)
		total = dsp.Add(total, sc.HB.Apply(tag.Backscatter(z, mFull)))
	}
	y := m.Scenarios[lead].Noise.Add(total)
	m.base.inj.AddInterference(y)
	m.base.inj.ApplyADC(y)
	m.base.inj.TruncateTail(y, packetStart, packetLen)
	spChan.End()
	tspChan.End()

	// The reader decodes every provisioned member of the wake group,
	// not just the polled subset: an unpolled member that woke (an
	// impostor) is still a known PN the successive canceller can peel
	// off, which is what keeps the polled layers decodable underneath
	// it. Only polled outcomes are reported.
	cfgs := make([]tag.Config, len(polled), len(m.Tags))
	for k, i := range polled {
		cfgs[k] = m.Tags[i].Cfg
	}
	for i, tg := range m.Tags {
		if _, isPolled := inGroup[i]; !isPolled && tg.WakeID() == m.Tags[lead].WakeID() {
			cfgs = append(cfgs, tg.Cfg)
		}
	}
	tspDec := m.base.trace.Start("decode_total")
	spDec := m.base.m.spanDecode.Start()
	jr, err := m.base.rdr.DecodeJoint(x, xAir, y, packetStart, packetLen, cfgs)
	spDec.End()
	tspDec.End()
	if err != nil {
		return nil, err
	}
	res.Order = jr.Order
	for k, i := range polled {
		dec := jr.Tags[k]
		if dec == nil {
			continue
		}
		pr := &PacketResult{
			Decode:            dec,
			Sent:              payloads[k],
			PayloadOK:         dec.FrameOK && bytesEqual(dec.Payload, payloads[k]),
			ExcitationSamples: packetLen,
			ExpectedSNRdB:     m.Scenarios[i].ExpectedSNRdB(),
			MeasuredSNRdB:     dec.SNRdB,
		}
		pr.Delivered = pr.PayloadOK
		if plans[k] != nil {
			pr.TagAirtimeSec = float64(plans[k].End()-plans[k].SilentEnd) / tag.SampleRate
			if pr.TagAirtimeSec > res.AirtimeSec {
				res.AirtimeSec = pr.TagAirtimeSec
			}
		}
		pr.liftDiagnostics(dec)
		m.base.observeResult(pr)
		res.Results[k] = pr
		if pr.Delivered {
			res.Delivered++
		}
	}
	return res, nil
}

// SlotPool shares immutable excitation templates across every session
// that holds it (DESIGN.md §5i, copy-on-write session state). The
// template bytes derive from the pool seed and the template key alone
// — never from any session's RNG — so two sessions on different shards
// realize identical excitations no matter who builds first, and a
// hundred thousand sessions retain one template instead of a hundred
// thousand private buffers.
type SlotPool struct {
	seed int64
	mu   sync.Mutex
	m    map[slotPoolKey]*slotTemplate
}

type slotPoolKey struct {
	wakeID    int
	psduBytes int
	nppdu     int
	mbps      int
	txBits    uint64
}

type slotTemplate struct {
	x           []complex128
	packetStart int
}

// NewSlotPool builds an empty pool keyed by seed.
func NewSlotPool(seed int64) *SlotPool {
	return &SlotPool{seed: seed, m: make(map[slotPoolKey]*slotTemplate)}
}

// Size reports how many distinct templates the pool holds.
func (p *SlotPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

// excitation returns the shared template for the given shape, building
// it on first use. The returned slice is shared and MUST NOT be
// written; hit reports whether the template already existed.
func (p *SlotPool) excitation(tg *tag.Tag, rate wifi.Rate, psduBytes int, txPowerW float64, nppdu int) (x []complex128, packetStart int, hit bool, err error) {
	key := slotPoolKey{
		wakeID:    tg.WakeID(),
		psduBytes: psduBytes,
		nppdu:     nppdu,
		mbps:      rate.Mbps,
		txBits:    math.Float64bits(txPowerW),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.m[key]; ok {
		return t.x, t.packetStart, true, nil
	}
	rng := rand.New(rand.NewSource(p.seed ^ int64(poolKeyHash(key))))
	tx, ps, err := buildExcitation(rng, rate, psduBytes, txPowerW, tg, nppdu)
	if err != nil {
		return nil, 0, false, err
	}
	p.m[key] = &slotTemplate{x: tx, packetStart: ps}
	return tx, ps, false, nil
}

// poolKeyHash folds a template key into the pool seed, FNV-1a style.
func poolKeyHash(k slotPoolKey) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range [...]uint64{uint64(k.wakeID), uint64(k.psduBytes), uint64(k.nppdu),
		uint64(k.mbps), k.txBits} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}
