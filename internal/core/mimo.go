package core

import (
	"fmt"
	"math/rand"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/reader"
	"backfi/internal/tag"
	"backfi/internal/wifi"
)

// MIMOLink is a BackFi link with multiple AP receive antennas (paper
// Sec. 7: "multiple antennas at the AP provides additional diversity
// combining gain"). Each antenna runs self-interference cancellation
// against the shared transmission — the paper's per-antenna silent
// slot requirement is satisfied by the single shared silent period,
// since only one antenna transmits.
type MIMOLink struct {
	Cfg      LinkConfig
	NumRx    int
	Scenario *channel.MIMOScenario
	Tag      *tag.Tag
	rdr      *reader.Reader
	rng      *rand.Rand
	rate     wifi.Rate
}

// NewMIMOLink draws a placement with nrx receive antennas.
func NewMIMOLink(cfg LinkConfig, nrx int) (*MIMOLink, error) {
	if nrx < 1 {
		return nil, fmt.Errorf("core: need at least one receive antenna")
	}
	base, err := NewLink(cfg) // validates everything
	if err != nil {
		return nil, err
	}
	sc, err := channel.NewMIMOScenario(cfg.Channel, nrx, base.rng)
	if err != nil {
		return nil, err
	}
	return &MIMOLink{
		Cfg:      cfg,
		NumRx:    nrx,
		Scenario: sc,
		Tag:      base.Tag,
		rdr:      base.rdr,
		rng:      base.rng,
		rate:     base.rate,
	}, nil
}

// MIMOPacketResult reports one multi-antenna exchange.
type MIMOPacketResult struct {
	Decode    *reader.MultiResult
	Sent      []byte
	PayloadOK bool
	// JointSNRdB is the cross-antenna combined symbol SNR;
	// PerAntennaSNRdB are the standalone chains.
	JointSNRdB      float64
	PerAntennaSNRdB []float64
}

// RunPacket performs one exchange over all antennas.
func (l *MIMOLink) RunPacket(payload []byte) (*MIMOPacketResult, error) {
	need := tag.SilentSamples + l.Tag.Cfg.PreambleSamples() +
		tag.SymbolsForPayload(len(payload), l.Tag.Cfg.Coding, l.Tag.Cfg.Mod)*l.Tag.Cfg.SamplesPerSymbol()
	ppduLen := wifi.PPDULen(l.Cfg.WiFiPSDUBytes, l.rate)
	nppdu := (need + ppduLen - 1) / ppduLen
	if nppdu < 1 {
		nppdu = 1
	}

	txW := dsp.UnDBm(l.Scenario.Cfg.TxPowerDBm)
	x, packetStart, err := buildExcitation(l.rng, l.rate, l.Cfg.WiFiPSDUBytes, txW, l.Tag, nppdu)
	if err != nil {
		return nil, err
	}
	packetLen := len(x) - packetStart

	xAir := l.Scenario.Distortion.Apply(x)
	z := l.Scenario.HF.Apply(xAir)
	if _, ok := l.Tag.TryWake(z[:packetStart+tag.SilentSamples]); !ok {
		return nil, ErrTagNoWake
	}
	m, plan, err := l.Tag.ModulationSequence(packetLen, payload)
	if err != nil {
		return nil, err
	}
	mFull := make([]complex128, len(x))
	copy(mFull[packetStart:], m)
	reflected := tag.Backscatter(z, mFull)

	ys := make([][]complex128, l.NumRx)
	for i := 0; i < l.NumRx; i++ {
		ys[i] = l.Scenario.Noise.Add(dsp.Add(l.Scenario.HEnv[i].Apply(xAir), l.Scenario.HB[i].Apply(reflected)))
	}

	res, err := l.rdr.DecodeMulti(x, xAir, ys, packetStart, packetLen, l.Tag.Cfg)
	if err != nil {
		return nil, err
	}
	_ = plan
	return &MIMOPacketResult{
		Decode:          res,
		Sent:            payload,
		PayloadOK:       res.FrameOK && bytesEqual(res.Payload, payload),
		JointSNRdB:      res.SNRdB,
		PerAntennaSNRdB: res.PerAntennaSNRdB,
	}, nil
}

// RandomPayload draws a payload from the link's RNG.
func (l *MIMOLink) RandomPayload(n int) []byte {
	p := make([]byte, n)
	l.rng.Read(p)
	return p
}
