package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"backfi/internal/adapt"
	"backfi/internal/channel"
	"backfi/internal/fault"
	"backfi/internal/obs"
	"backfi/internal/tag"
)

// Session is a long-lived BackFi connection: one placement whose
// channels evolve slowly between packets, with stop-and-wait ARQ on
// top of the frame CRC. It is the layer an application (a sensor
// streaming readings) actually talks to.
type Session struct {
	link    *Link
	evolver *channel.Evolver
	// MaxRetries bounds retransmissions per frame.
	MaxRetries int
	// Controller, when non-nil, closes the rate-control loop (DESIGN.md
	// §5f): every attempt's diagnostics feed it, and the configuration
	// switches it decides apply before the next attempt — the session
	// downshifts through the ladder instead of burning its retry budget
	// when the channel degrades. Nil keeps the session fixed at
	// LinkConfig.Tag, byte-identical to a build without the controller.
	Controller *adapt.Controller
	// Backoff is the deterministic ARQ backoff policy: retry k of a
	// frame charges Delay(k) of virtual wait time to the session's
	// BackoffSec. The zero value (no backoff) reproduces the historical
	// back-to-back retry accounting exactly. No wall-clock sleeping
	// happens anywhere — the simulator owns time.
	Backoff BackoffPolicy
	// Stats accumulates over the session.
	Stats SessionStats

	// attempts counts RunPacket attempts ever started, across frames and
	// retries — the migratable mode's reseed ordinal (DESIGN.md §5j).
	// Unused (zero) outside migratable mode.
	attempts int
	// baseRho is the static-placement coherence the session was opened
	// with; a mobility fault profile lowers the evolver below it and a
	// profile without mobility restores it (DESIGN.md §5k).
	baseRho float64
	// evolverRNG is the evolver's own stream in migratable mode, so
	// per-attempt reseeds of the link's main stream and the evolver's
	// never overlap draw positions. Nil outside migratable mode (the
	// evolver then shares the link stream, the historical schedule).
	evolverRNG *rand.Rand
}

// migrateEvolverSalt decorrelates the migratable evolver stream from
// the link's main stream, which reseeds from the same attempt ordinal.
const migrateEvolverSalt = 0x3c6ef372

// BackoffPolicy is truncated binary exponential backoff, accounted in
// virtual time: Delay(k) = BaseSec·2^(k−1) for retry k ≥ 1, capped at
// MaxSec when MaxSec > 0. The zero value disables backoff.
type BackoffPolicy struct {
	// BaseSec is the first retry's delay in seconds.
	BaseSec float64
	// MaxSec caps a single delay; 0 means uncapped.
	MaxSec float64
}

// Delay returns retry k's virtual wait in seconds (0 for the first
// attempt and for a zero policy).
func (b BackoffPolicy) Delay(retry int) float64 {
	if b.BaseSec <= 0 || retry <= 0 {
		return 0
	}
	d := b.BaseSec * math.Pow(2, float64(retry-1))
	if b.MaxSec > 0 && d > b.MaxSec {
		d = b.MaxSec
	}
	return d
}

// SessionStats summarizes a session's history.
type SessionStats struct {
	// FramesOffered / FramesDelivered count application frames.
	FramesOffered, FramesDelivered int
	// PacketsSent counts air transmissions (including retries).
	PacketsSent int
	// PayloadBits counts successfully delivered information bits.
	PayloadBits int
	// AirtimeSec accumulates tag modulation time across attempts.
	AirtimeSec float64
	// ACKsDropped counts frames that decoded but whose ACK was lost on
	// the way back to the tag (injected fault), forcing a retransmission
	// of data the reader already had.
	ACKsDropped int
	// NoWakes counts attempts the tag slept through: the AP transmitted
	// the excitation (consuming a retry attempt, like a CRC failure) but
	// the tag never woke, so no tag airtime accrues for the attempt.
	// This mirrors EvaluateWorkers, which counts ErrTagNoWake as loss
	// rather than aborting.
	NoWakes int
	// Backoffs counts retries that charged a backoff delay, and
	// BackoffSec the virtual wait they accumulated (zero under the zero
	// BackoffPolicy). Backoff time is protocol idle time, not tag
	// modulation time, so it is kept apart from AirtimeSec.
	Backoffs   int
	BackoffSec float64
	// ConfigSwitches counts rate-controller ladder moves applied to the
	// link (0 without a controller).
	ConfigSwitches int
}

// Retries returns the retransmission count: air transmissions beyond
// each offered frame's first. A frame that errors out of the pipeline
// before its first transmission leaves PacketsSent behind FramesOffered,
// so the count clamps at zero instead of going negative.
func (s SessionStats) Retries() int {
	if r := s.PacketsSent - s.FramesOffered; r > 0 {
		return r
	}
	return 0
}

// DeliveryRate returns delivered/offered.
func (s SessionStats) DeliveryRate() float64 {
	if s.FramesOffered == 0 {
		return 0
	}
	return float64(s.FramesDelivered) / float64(s.FramesOffered)
}

// GoodputBps returns delivered bits over accumulated tag airtime.
func (s SessionStats) GoodputBps() float64 {
	if s.AirtimeSec == 0 {
		return 0
	}
	return float64(s.PayloadBits) / s.AirtimeSec
}

// NewSession opens a session at one placement. coherenceRho is the
// packet-to-packet channel correlation (use
// channel.CoherenceRho(interval, coherence); 1 freezes the channel).
func NewSession(cfg LinkConfig, coherenceRho float64, maxRetries int) (*Session, error) {
	link, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("core: negative retry budget")
	}
	evRNG := link.rng
	s := &Session{link: link, MaxRetries: maxRetries, baseRho: coherenceRho}
	if cfg.Migratable {
		// The evolver owns a private stream so the per-attempt reseed of
		// the link's main stream never shifts evolution draws (and vice
		// versa); both reseed per attempt in Send.
		s.evolverRNG = rand.New(rand.NewSource(attemptSeed(cfg.Seed^migrateEvolverSalt, 0)))
		evRNG = s.evolverRNG
	}
	ev, err := channel.NewEvolver(evRNG, coherenceRho, link.Scenario)
	if err != nil {
		return nil, err
	}
	s.evolver = ev
	return s, nil
}

// NewAdaptiveSession is NewSession plus a closed-loop rate controller
// walking the standard 36-configuration ladder (restricted to symbol
// rates ≥ minSymbolRateHz when positive; the slowest rungs cost real
// decode time). The controller starts at cfg.Tag's rung. actrl tuning
// follows adapt.Config zero-value defaults.
func NewAdaptiveSession(cfg LinkConfig, coherenceRho float64, maxRetries int, actrl adapt.Config, minSymbolRateHz float64) (*Session, error) {
	s, err := NewSession(cfg, coherenceRho, maxRetries)
	if err != nil {
		return nil, err
	}
	ladder := StandardConfigs(cfg.Tag.PreambleChips, cfg.Tag.ID)
	if minSymbolRateHz > 0 {
		kept := ladder[:0]
		for _, c := range ladder {
			if c.SymbolRateHz >= minSymbolRateHz {
				kept = append(kept, c)
			}
		}
		ladder = kept
	}
	ctrl, err := adapt.NewController(actrl, ladder, cfg.Tag)
	if err != nil {
		return nil, err
	}
	s.Controller = ctrl
	return s, nil
}

// Link exposes the underlying link (e.g. for diagnostics).
func (s *Session) Link() *Link { return s.link }

// SetTrace points the session's next Send at a per-frame trace
// context (DESIGN.md §5h), propagated through the link into every
// decode stage. The serving layer reassigns it per job — a zero
// TraceCtx switches tracing off again.
func (s *Session) SetTrace(t obs.TraceCtx) { s.link.SetTrace(t) }

// SetTagConfig forces the session's link onto a configuration,
// bypassing the controller — the serving layer's degraded mode uses it
// on non-adaptive sessions. With a controller attached, prefer
// Controller.SetCeiling so the forced move is recorded in the trace.
func (s *Session) SetTagConfig(cfg tag.Config) error {
	return s.link.SetTagConfig(cfg)
}

// MobilityPacketIntervalSec is the nominal packet-to-packet interval
// the mobility mapping integrates Doppler decorrelation over. It is a
// fixed model constant — sessions own virtual time, so tying it to
// wall clock would break the determinism contract.
const MobilityPacketIntervalSec = 5e-3

// SetFaultProfile swaps the session's impairment profile mid-stream
// (scripted chaos timelines). Deterministic: see Link.SetFaultProfile.
// A profile that sets MobilitySpeedMps additionally lowers the channel
// evolver's packet-to-packet ρ through the Clarke mobility mapping
// (floored by the session's static baseline); a profile without
// mobility restores the baseline. Because the mapping lives here, every
// caller — the serving layer's frame-indexed timeline, its handoff
// replay, and the chaos harness — applies identical ρ switches at
// identical frame ordinals, which is what keeps mobile tap evolutions
// bit-identical for any worker or shard count.
func (s *Session) SetFaultProfile(p *fault.Profile) error {
	if err := s.link.SetFaultProfile(p); err != nil {
		return err
	}
	rho := s.baseRho
	if p != nil && p.MobilitySpeedMps > 0 {
		carrier := s.link.Cfg.Channel.CarrierHz
		if carrier <= 0 {
			carrier = channel.DefaultCarrierHz
		}
		if m := channel.MobilityRho(p.MobilitySpeedMps, carrier, MobilityPacketIntervalSec); m < rho {
			rho = m
		}
	}
	return s.evolver.SetRho(rho)
}

// Send delivers one application frame with stop-and-wait ARQ: on CRC
// failure — or a wake miss, which the protocol cannot tell apart from a
// lost frame — the tag retransmits (the AP polls again) up to
// MaxRetries times, with the channel evolving between attempts. It
// returns the last attempt's result (nil when no attempt produced one)
// and whether the frame was delivered end to end. The result's
// Delivered field matches the returned flag, so an ACK-dropped final
// attempt reads PayloadOK=true, Delivered=false.
func (s *Session) Send(payload []byte) (*PacketResult, bool, error) {
	s.Stats.FramesOffered++
	var last *PacketResult
	for attempt := 0; attempt <= s.MaxRetries; attempt++ {
		if attempt > 0 {
			if d := s.Backoff.Delay(attempt); d > 0 {
				s.Stats.Backoffs++
				s.Stats.BackoffSec += d
			}
		}
		if s.link.Cfg.Migratable {
			// Migratable schedule (DESIGN.md §5j): pin every stream to the
			// global attempt ordinal, and step the evolver once per ordinal
			// after the very first. The step rule differs from the legacy
			// gate only on the attempt after an aborted pipeline (legacy
			// consults PacketsSent, which an abort leaves behind) — a
			// simplification that keeps replay a pure function of the
			// ordinal alone.
			s.link.ReseedAttempt(s.attempts)
			s.evolverRNG.Seed(attemptSeed(s.link.Cfg.Seed^migrateEvolverSalt, s.attempts))
			if s.attempts > 0 {
				s.evolver.Step()
			}
			s.attempts++
		} else if attempt > 0 || s.Stats.PacketsSent > 0 {
			s.evolver.Step()
		}
		res, err := s.link.RunPacket(payload)
		if err != nil {
			if errors.Is(err, ErrTagNoWake) {
				// The AP transmitted but the tag slept through the wake
				// preamble: a lost attempt, exactly as EvaluateWorkers
				// accounts it — not a pipeline failure. The excitation
				// was sent, so the attempt counts; the tag never
				// modulated, so no airtime accrues.
				s.Stats.PacketsSent++
				s.Stats.NoWakes++
				s.adapt(adapt.Observation{NoWake: true})
				continue
			}
			return nil, false, err
		}
		s.Stats.PacketsSent++
		s.Stats.AirtimeSec += res.TagAirtimeSec
		last = res
		if res.PayloadOK {
			// An injected ACK loss means the tag never learns the frame
			// got through: the reader has the data, but the exchange
			// repeats and only a later attempt can complete the frame.
			if s.link.inj.DropACK() {
				s.Stats.ACKsDropped++
				res.Delivered = false
				s.adapt(observe(res, false, true))
				continue
			}
			res.Delivered = true
			s.Stats.FramesDelivered++
			s.Stats.PayloadBits += 8 * len(payload)
			s.adapt(observe(res, true, false))
			return res, true, nil
		}
		s.adapt(observe(res, false, false))
	}
	return last, false, nil
}

// SessionSnapshot is a session's complete resumable state under
// migratable mode (DESIGN.md §5j): the attempt ordinal (which pins
// every RNG stream), the accumulated stats, and the rate controller's
// state when one is attached. Everything else a resumed session needs
// — placement realization, excitation cache, evolver tap trajectory —
// is recomputed from (link seed, Attempts) at restore, which is what
// keeps the snapshot tens of bytes instead of megabytes of waveform.
type SessionSnapshot struct {
	// Attempts is the total RunPacket attempts started (frames plus
	// retries plus wake misses).
	Attempts int
	// Stats is the accumulated session history.
	Stats SessionStats
	// Ctrl carries the adapt controller state; nil for fixed-rate
	// sessions.
	Ctrl *adapt.State
}

// Snapshot captures the session for handoff. Only migratable sessions
// snapshot — without the per-attempt reseed schedule the RNG stream
// position is not recoverable from any small state.
func (s *Session) Snapshot() (SessionSnapshot, error) {
	if !s.link.Cfg.Migratable {
		return SessionSnapshot{}, fmt.Errorf("core: snapshot of non-migratable session")
	}
	snap := SessionSnapshot{Attempts: s.attempts, Stats: s.Stats}
	if s.Controller != nil {
		st := s.Controller.State()
		snap.Ctrl = &st
	}
	return snap, nil
}

// RestoreSnapshot fast-forwards a freshly built migratable session to
// a snapshot taken on another node: the evolver's tap trajectory is
// replayed in O(Attempts · taps) by re-drawing each past attempt's
// innovations (no decode work), the controller state is installed and
// its rung applied to the link, and the attempt ordinal and stats are
// adopted. The receiving session must be unused and constructed from
// the identical link configuration; the next Send then continues the
// decode stream byte-identically with the original's.
func (s *Session) RestoreSnapshot(snap SessionSnapshot) error {
	if !s.link.Cfg.Migratable {
		return fmt.Errorf("core: restore into non-migratable session")
	}
	if s.attempts != 0 || s.Stats != (SessionStats{}) {
		return fmt.Errorf("core: restore into used session (%d attempts)", s.attempts)
	}
	if snap.Attempts < 0 {
		return fmt.Errorf("core: snapshot attempt ordinal %d negative", snap.Attempts)
	}
	if (snap.Ctrl != nil) != (s.Controller != nil) {
		return fmt.Errorf("core: snapshot controller presence mismatch")
	}
	if snap.Ctrl != nil {
		if err := s.Controller.Restore(*snap.Ctrl); err != nil {
			return err
		}
		if err := s.link.SetTagConfig(s.Controller.Config()); err != nil {
			return err
		}
	}
	// Replay the evolver schedule: ordinal 0 never steps, every later
	// ordinal reseeds then steps once (the Send rule).
	base := s.link.Cfg.Seed ^ migrateEvolverSalt
	for j := 1; j < snap.Attempts; j++ {
		s.evolverRNG.Seed(attemptSeed(base, j))
		s.evolver.Step()
	}
	s.attempts = snap.Attempts
	s.Stats = snap.Stats
	return nil
}

// observe maps one decoded attempt into the controller's terms.
func observe(res *PacketResult, delivered, ackDropped bool) adapt.Observation {
	return adapt.Observation{
		PayloadOK:            res.PayloadOK,
		Delivered:            delivered,
		ACKDropped:           ackDropped,
		RawBER:               res.RawBER(),
		SICResidualDBm:       res.SICResidualDBm,
		ViterbiCorrectedBits: res.ViterbiCorrectedBits,
		MeasuredSNRdB:        res.MeasuredSNRdB,
	}
}

// adapt feeds one observation to the controller (if any) and applies
// the switch it decides. Ladder rungs are validated at controller
// construction, so a switch cannot fail; if one somehow does, the
// session keeps its current configuration rather than aborting the
// frame.
func (s *Session) adapt(o adapt.Observation) {
	if s.Controller == nil {
		return
	}
	next, changed := s.Controller.Observe(o)
	if !changed {
		return
	}
	if err := s.link.SetTagConfig(next); err != nil {
		return
	}
	s.Stats.ConfigSwitches++
}
