package core

import (
	"errors"
	"fmt"

	"backfi/internal/channel"
)

// Session is a long-lived BackFi connection: one placement whose
// channels evolve slowly between packets, with stop-and-wait ARQ on
// top of the frame CRC. It is the layer an application (a sensor
// streaming readings) actually talks to.
type Session struct {
	link    *Link
	evolver *channel.Evolver
	// MaxRetries bounds retransmissions per frame.
	MaxRetries int
	// Stats accumulates over the session.
	Stats SessionStats
}

// SessionStats summarizes a session's history.
type SessionStats struct {
	// FramesOffered / FramesDelivered count application frames.
	FramesOffered, FramesDelivered int
	// PacketsSent counts air transmissions (including retries).
	PacketsSent int
	// PayloadBits counts successfully delivered information bits.
	PayloadBits int
	// AirtimeSec accumulates tag modulation time across attempts.
	AirtimeSec float64
	// ACKsDropped counts frames that decoded but whose ACK was lost on
	// the way back to the tag (injected fault), forcing a retransmission
	// of data the reader already had.
	ACKsDropped int
	// NoWakes counts attempts the tag slept through: the AP transmitted
	// the excitation (consuming a retry attempt, like a CRC failure) but
	// the tag never woke, so no tag airtime accrues for the attempt.
	// This mirrors EvaluateWorkers, which counts ErrTagNoWake as loss
	// rather than aborting.
	NoWakes int
}

// Retries returns the retransmission count: air transmissions beyond
// each offered frame's first. A frame that errors out of the pipeline
// before its first transmission leaves PacketsSent behind FramesOffered,
// so the count clamps at zero instead of going negative.
func (s SessionStats) Retries() int {
	if r := s.PacketsSent - s.FramesOffered; r > 0 {
		return r
	}
	return 0
}

// DeliveryRate returns delivered/offered.
func (s SessionStats) DeliveryRate() float64 {
	if s.FramesOffered == 0 {
		return 0
	}
	return float64(s.FramesDelivered) / float64(s.FramesOffered)
}

// GoodputBps returns delivered bits over accumulated tag airtime.
func (s SessionStats) GoodputBps() float64 {
	if s.AirtimeSec == 0 {
		return 0
	}
	return float64(s.PayloadBits) / s.AirtimeSec
}

// NewSession opens a session at one placement. coherenceRho is the
// packet-to-packet channel correlation (use
// channel.CoherenceRho(interval, coherence); 1 freezes the channel).
func NewSession(cfg LinkConfig, coherenceRho float64, maxRetries int) (*Session, error) {
	link, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("core: negative retry budget")
	}
	ev, err := channel.NewEvolver(link.rng, coherenceRho, link.Scenario)
	if err != nil {
		return nil, err
	}
	return &Session{
		link:       link,
		evolver:    ev,
		MaxRetries: maxRetries,
	}, nil
}

// Link exposes the underlying link (e.g. for diagnostics).
func (s *Session) Link() *Link { return s.link }

// Send delivers one application frame with stop-and-wait ARQ: on CRC
// failure — or a wake miss, which the protocol cannot tell apart from a
// lost frame — the tag retransmits (the AP polls again) up to
// MaxRetries times, with the channel evolving between attempts. It
// returns the last attempt's result (nil when no attempt produced one)
// and whether the frame was delivered end to end. The result's
// Delivered field matches the returned flag, so an ACK-dropped final
// attempt reads PayloadOK=true, Delivered=false.
func (s *Session) Send(payload []byte) (*PacketResult, bool, error) {
	s.Stats.FramesOffered++
	var last *PacketResult
	for attempt := 0; attempt <= s.MaxRetries; attempt++ {
		if attempt > 0 || s.Stats.PacketsSent > 0 {
			s.evolver.Step()
		}
		res, err := s.link.RunPacket(payload)
		if err != nil {
			if errors.Is(err, ErrTagNoWake) {
				// The AP transmitted but the tag slept through the wake
				// preamble: a lost attempt, exactly as EvaluateWorkers
				// accounts it — not a pipeline failure. The excitation
				// was sent, so the attempt counts; the tag never
				// modulated, so no airtime accrues.
				s.Stats.PacketsSent++
				s.Stats.NoWakes++
				continue
			}
			return nil, false, err
		}
		s.Stats.PacketsSent++
		s.Stats.AirtimeSec += res.TagAirtimeSec
		last = res
		if res.PayloadOK {
			// An injected ACK loss means the tag never learns the frame
			// got through: the reader has the data, but the exchange
			// repeats and only a later attempt can complete the frame.
			if s.link.inj.DropACK() {
				s.Stats.ACKsDropped++
				res.Delivered = false
				continue
			}
			res.Delivered = true
			s.Stats.FramesDelivered++
			s.Stats.PayloadBits += 8 * len(payload)
			return res, true, nil
		}
	}
	return last, false, nil
}
