package core

import (
	"fmt"

	"backfi/internal/channel"
)

// Session is a long-lived BackFi connection: one placement whose
// channels evolve slowly between packets, with stop-and-wait ARQ on
// top of the frame CRC. It is the layer an application (a sensor
// streaming readings) actually talks to.
type Session struct {
	link    *Link
	evolver *channel.Evolver
	// MaxRetries bounds retransmissions per frame.
	MaxRetries int
	// Stats accumulates over the session.
	Stats SessionStats
}

// SessionStats summarizes a session's history.
type SessionStats struct {
	// FramesOffered / FramesDelivered count application frames.
	FramesOffered, FramesDelivered int
	// PacketsSent counts air transmissions (including retries).
	PacketsSent int
	// PayloadBits counts successfully delivered information bits.
	PayloadBits int
	// AirtimeSec accumulates tag modulation time across attempts.
	AirtimeSec float64
	// ACKsDropped counts frames that decoded but whose ACK was lost on
	// the way back to the tag (injected fault), forcing a retransmission
	// of data the reader already had.
	ACKsDropped int
}

// Retries returns the retransmission count.
func (s SessionStats) Retries() int { return s.PacketsSent - s.FramesOffered }

// DeliveryRate returns delivered/offered.
func (s SessionStats) DeliveryRate() float64 {
	if s.FramesOffered == 0 {
		return 0
	}
	return float64(s.FramesDelivered) / float64(s.FramesOffered)
}

// GoodputBps returns delivered bits over accumulated tag airtime.
func (s SessionStats) GoodputBps() float64 {
	if s.AirtimeSec == 0 {
		return 0
	}
	return float64(s.PayloadBits) / s.AirtimeSec
}

// NewSession opens a session at one placement. coherenceRho is the
// packet-to-packet channel correlation (use
// channel.CoherenceRho(interval, coherence); 1 freezes the channel).
func NewSession(cfg LinkConfig, coherenceRho float64, maxRetries int) (*Session, error) {
	link, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("core: negative retry budget")
	}
	ev, err := channel.NewEvolver(link.rng, coherenceRho, link.Scenario)
	if err != nil {
		return nil, err
	}
	return &Session{
		link:       link,
		evolver:    ev,
		MaxRetries: maxRetries,
	}, nil
}

// Link exposes the underlying link (e.g. for diagnostics).
func (s *Session) Link() *Link { return s.link }

// Send delivers one application frame with stop-and-wait ARQ: on CRC
// failure the tag retransmits (the AP polls again) up to MaxRetries
// times, with the channel evolving between attempts. It returns the
// last attempt's result and whether the frame was delivered.
func (s *Session) Send(payload []byte) (*PacketResult, bool, error) {
	s.Stats.FramesOffered++
	var last *PacketResult
	for attempt := 0; attempt <= s.MaxRetries; attempt++ {
		if attempt > 0 || s.Stats.PacketsSent > 0 {
			s.evolver.Step()
		}
		res, err := s.link.RunPacket(payload)
		if err != nil {
			return nil, false, err
		}
		s.Stats.PacketsSent++
		s.Stats.AirtimeSec += res.TagAirtimeSec
		last = res
		if res.PayloadOK {
			// An injected ACK loss means the tag never learns the frame
			// got through: the reader has the data, but the exchange
			// repeats and only a later attempt can complete the frame.
			if s.link.inj.DropACK() {
				s.Stats.ACKsDropped++
				continue
			}
			s.Stats.FramesDelivered++
			s.Stats.PayloadBits += 8 * len(payload)
			return res, true, nil
		}
	}
	return last, false, nil
}
