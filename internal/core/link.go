// Package core wires the BackFi system together: the WiFi AP's
// excitation transmission, the propagation scenario, the tag's wake-up
// and backscatter modulation, self-interference cancellation, and the
// MRC decoder. It exposes a per-packet link simulator plus the rate
// adaptation used by the paper's evaluation (pick the minimum-REPB
// configuration that decodes at the operating SNR).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"backfi/internal/channel"
	"backfi/internal/dsp"
	"backfi/internal/fault"
	"backfi/internal/fec"
	"backfi/internal/obs"
	"backfi/internal/reader"
	"backfi/internal/tag"
	"backfi/internal/wifi"
)

// ErrTagNoWake is the expected outcome of a placement outside detector
// range: the tag failed to wake (or woke off-time, which the protocol
// treats the same way). Monte-Carlo evaluation counts it as zero
// throughput instead of aborting; check with errors.Is. Every other
// RunPacket error is a genuine pipeline failure and propagates.
var ErrTagNoWake = errors.New("core: tag did not wake")

// LinkConfig assembles one BackFi link.
type LinkConfig struct {
	// Channel is the placement/propagation model.
	Channel channel.Config
	// Tag is the tag's transmission configuration.
	Tag tag.Config
	// Reader is the AP decoder configuration.
	Reader reader.Config
	// WiFiMbps is the excitation packet bitrate (paper: 24 Mbps).
	WiFiMbps int
	// WiFiPSDUBytes is the excitation PSDU size per PPDU.
	WiFiPSDUBytes int
	// Seed drives all randomness (placement, noise, payloads).
	Seed int64
	// Faults selects the RF impairments and packet-level faults injected
	// into the link (DESIGN.md §5d). Nil (or an all-zero profile) leaves
	// the pipeline bit-identical to an unfaulted build: the injector
	// draws from its own seeded RNG, so the placement/noise/payload
	// streams never shift.
	Faults *fault.Profile
	// Obs receives the link's pipeline metrics (per-stage spans, packet
	// and failure counters, SNR/BER histograms). Nil disables
	// instrumentation at zero cost; metrics never feed back into the
	// simulation, so results are identical with or without a registry.
	// NewLink propagates the registry into the reader and SIC configs
	// unless those carry their own.
	Obs *obs.Registry
	// Migratable pins every attempt's stochastic draws (excitation
	// payload bytes, transmit distortion, AWGN, channel evolution
	// innovations, fault draws) to a pure function of (Seed, attempt
	// ordinal) by reseeding the link's streams at each attempt start,
	// instead of letting one sequential stream accumulate position
	// (DESIGN.md §5j). That makes the link's whole stochastic future a
	// function of a tiny snapshot — the attempt counter — so a session
	// can hand off to another reader node and continue byte-identically.
	// Off (the default), draw schedules are bit-identical to previous
	// builds. On, results are deterministic for a fixed (seed, call
	// sequence) but follow the per-attempt schedule — a different
	// realization of the same statistics, like SessionCache.
	Migratable bool
	// SessionCache enables the serving hot path (DESIGN.md §5g): the
	// realized excitation (ideal + distorted copies) is cached across
	// frames and rebuilt only when the tag configuration or packet
	// sizing changes, and all per-frame channel/noise/decode work is
	// windowed to the samples the tag frame actually occupies, with a
	// per-link reader.Stream reusing SIC and channel-estimate scratch.
	// Off (the default), RunPacket is bit-identical to the legacy
	// per-frame pipeline. On, results are deterministic for a fixed
	// (seed, call sequence) but follow the hot path's own RNG-draw
	// schedule — a different realization of the same statistics, not a
	// different receiver. Links with an active fault profile always take
	// the legacy path, so fault semantics never fork.
	SessionCache bool
}

// DefaultLinkConfig returns the paper's standard operating point at the
// given AP–tag distance: 24 Mbps excitation packets, QPSK 1/2 tag at
// 1 Msym/s.
func DefaultLinkConfig(distanceM float64) LinkConfig {
	return LinkConfig{
		Channel: channel.DefaultConfig(distanceM),
		Tag: tag.Config{
			Mod:           tag.QPSK,
			Coding:        fec.Rate12,
			SymbolRateHz:  1e6,
			PreambleChips: tag.DefaultPreambleChips,
			ID:            1,
		},
		Reader:        reader.DefaultConfig(),
		WiFiMbps:      24,
		WiFiPSDUBytes: 1500,
		Seed:          1,
	}
}

// PacketResult reports one end-to-end packet exchange.
type PacketResult struct {
	// Decode is the reader's output.
	Decode *reader.Result
	// Sent is the payload the tag transmitted.
	Sent []byte
	// PayloadOK reports whether the decoded payload matched exactly.
	PayloadOK bool
	// Delivered reports whether the exchange completed end to end. For
	// a one-shot RunPacket it equals PayloadOK; the session ARQ layer
	// clears it when the reader decoded the frame but the ACK back to
	// the tag was lost, so PayloadOK can be true while Delivered is
	// false. Goodput consumers must key off Delivered — counting
	// PayloadOK double-counts ACK-dropped frames the tag retransmits.
	Delivered bool
	// RawBitErrors / RawBits count pre-FEC coded-bit errors (hard
	// decisions on the MRC symbol estimates vs the transmitted coded
	// bits) — the BER axis of paper Fig. 11b.
	RawBitErrors, RawBits int
	// ExpectedSNRdB is the oracle (VNA-style) per-sample backscatter
	// SNR from the true channels against thermal noise alone.
	ExpectedSNRdB float64
	// ExpectedMRCSNRdB is the paper Fig. 11a x-axis: the oracle
	// backscatter power over the receiver's *measured*
	// post-cancellation floor (thermal noise + SI residue, as a VNA
	// plus a floor measurement would predict), plus the MRC combining
	// gain. Measured − expected is then the decoder's own loss.
	ExpectedMRCSNRdB float64
	// MeasuredSNRdB is the decoder's post-MRC symbol SNR — Fig. 11a's
	// y-axis (compare with ExpectedMRCSNRdB).
	MeasuredSNRdB float64
	// ExcitationSamples is the excitation length used.
	ExcitationSamples int
	// TagAirtimeSec is the tag's active modulation time.
	TagAirtimeSec float64

	// Per-stage diagnostics, lifted out of Decode so callers read them
	// directly instead of re-deriving them from the reader's report:

	// SICBeforeDBm / SICResidualDBm bracket the canceller: received
	// self-interference power and the post-cancellation floor over the
	// training window. SICCancellationDB is their difference — the
	// paper's ≈78–80 dB Fig. 7 quantity.
	SICBeforeDBm, SICResidualDBm, SICCancellationDB float64
	// SyncOffsetSamples is the symbol-timing correction the PN
	// preamble search applied relative to protocol timing.
	SyncOffsetSamples int
	// PreambleCorr is the normalized tag-preamble correlation
	// (1 = perfect).
	PreambleCorr float64
	// ViterbiCorrectedBits counts coded bits the Viterbi decoder fixed
	// inside the frame (receiver-side; no ground truth needed).
	ViterbiCorrectedBits int
}

// RawBER returns the pre-FEC bit error rate.
func (p *PacketResult) RawBER() float64 {
	if p.RawBits == 0 {
		return 0
	}
	return float64(p.RawBitErrors) / float64(p.RawBits)
}

// liftDiagnostics copies the reader's per-stage report into the
// result's flat diagnostic fields.
func (p *PacketResult) liftDiagnostics(res *reader.Result) {
	p.SICBeforeDBm = res.SIC.BeforeDBm
	p.SICResidualDBm = res.SIC.AfterDBm
	p.SICCancellationDB = res.SIC.CancellationDB
	p.SyncOffsetSamples = res.TimingOffset
	p.PreambleCorr = res.PreambleCorr
	p.ViterbiCorrectedBits = res.ViterbiCorrectedBits
}

// linkMetrics holds the link's instrument handles, resolved once at
// NewLink so RunPacket does no registry lookups. All fields are nil
// (no-op) when metrics are disabled.
type linkMetrics struct {
	spanExcitation *obs.Histogram
	spanChannelSim *obs.Histogram
	spanDecode     *obs.Histogram
	packets        *obs.Counter
	packetsOK      *obs.Counter
	failWake       *obs.Counter
	failWakeTiming *obs.Counter
	rawBER         *obs.Histogram
	snrExpected    *obs.Histogram
	snrExpectedMRC *obs.Histogram
	snrMeasured    *obs.Histogram
	cacheHit       *obs.Counter
	cacheMiss      *obs.Counter
}

func newLinkMetrics(r *obs.Registry) linkMetrics {
	if r == nil {
		return linkMetrics{}
	}
	stage := func(name string) *obs.Histogram {
		return r.Histogram(obs.MetricStageDuration, obs.HelpStageDuration, obs.DurationBuckets, "stage", name)
	}
	snr := func(kind string) *obs.Histogram {
		return r.Histogram(obs.MetricSNR, "Per-packet SNR in dB.", obs.DBBuckets, "kind", kind)
	}
	return linkMetrics{
		spanExcitation: stage("excitation_build"),
		spanChannelSim: stage("channel_sim"),
		spanDecode:     stage("decode_total"),
		packets:        r.Counter(obs.MetricPackets, "Packet exchanges attempted."),
		packetsOK:      r.Counter(obs.MetricPacketsOK, "Packets whose decoded payload matched exactly."),
		failWake:       r.Counter(obs.MetricStageFailures, "Decode aborts and frame failures by pipeline stage.", "stage", "wake"),
		failWakeTiming: r.Counter(obs.MetricStageFailures, "Decode aborts and frame failures by pipeline stage.", "stage", "wake_timing"),
		rawBER:         r.Histogram(obs.MetricRawBER, "Per-packet pre-FEC coded-bit error rate.", obs.BERBuckets),
		snrExpected:    snr("expected"),
		snrExpectedMRC: snr("expected_mrc"),
		snrMeasured:    snr("measured"),
		cacheHit:       r.Counter(obs.MetricLinkCache, "Excitation-cache lookups on the session-cache hot path, by outcome.", "outcome", "hit"),
		cacheMiss:      r.Counter(obs.MetricLinkCache, "Excitation-cache lookups on the session-cache hot path, by outcome.", "outcome", "miss"),
	}
}

// Link is a realized BackFi link: one placement draw plus the tag and
// reader instances.
type Link struct {
	Cfg      LinkConfig
	Scenario *channel.Scenario
	Tag      *tag.Tag
	rdr      *reader.Reader
	rng      *rand.Rand
	inj      *fault.Injector
	rate     wifi.Rate
	m        linkMetrics
	// hot is the session-cache state (hotpath.go); nil until the first
	// fast-path frame builds it.
	hot *hotState
	// faultEpoch counts SetFaultProfile calls; it salts each new
	// injector's seed so successive profiles draw decorrelated streams.
	faultEpoch int
	// injBase is the current injector's base seed (epoch-salted); the
	// migratable mode mixes the attempt ordinal into it per attempt.
	injBase int64
	// curAttempt is the attempt ordinal the migratable mode last
	// reseeded for; the hot path restores the attempt stream after a
	// cache rebuild's temporary config-seeded draws.
	curAttempt int
	// trace is the per-frame trace context (DESIGN.md §5h); the serving
	// layer reassigns it before each RunPacket. Zero = tracing off.
	trace obs.TraceCtx
}

// SetTrace points the next RunPacket at a per-frame trace context and
// propagates it down the pipeline (reader stages, SIC training). The
// zero TraceCtx disables tracing; reassignment is two word copies, so
// per-frame switching costs nothing. Tracing never feeds back into the
// computation — the decode byte stream is identical traced or not.
func (l *Link) SetTrace(t obs.TraceCtx) {
	l.trace = t
	l.rdr.SetTrace(t)
}

// faultSeedSalt decorrelates the injector's RNG stream from the link's
// main stream, which is seeded with cfg.Seed directly.
const faultSeedSalt = 0x5fa017

// NewLink draws a placement realization and builds the endpoints.
func NewLink(cfg LinkConfig) (*Link, error) {
	rate, err := wifi.RateByMbps(cfg.WiFiMbps)
	if err != nil {
		return nil, err
	}
	if cfg.WiFiPSDUBytes <= 0 {
		return nil, fmt.Errorf("core: WiFiPSDUBytes must be positive")
	}
	tg, err := tag.New(cfg.Tag)
	if err != nil {
		return nil, err
	}
	if cfg.Reader.Obs == nil {
		cfg.Reader.Obs = cfg.Obs
	}
	rdr, err := reader.New(cfg.Reader)
	if err != nil {
		return nil, err
	}
	inj, err := fault.NewInjector(cfg.Faults, cfg.Seed^faultSeedSalt, tag.SampleRate, cfg.Obs)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc, err := channel.NewScenario(cfg.Channel, rng)
	if err != nil {
		return nil, err
	}
	return &Link{
		Cfg:      cfg,
		Scenario: sc,
		Tag:      tg,
		rdr:      rdr,
		rng:      rng,
		inj:      inj,
		rate:     rate,
		injBase:  cfg.Seed ^ faultSeedSalt,
		m:        newLinkMetrics(cfg.Obs),
	}, nil
}

// attemptSeed mixes an attempt ordinal into a base seed (splitmix64
// finalizer), giving each attempt a decorrelated stream while staying
// a pure function of (base, n) — the migratable mode's whole contract.
func attemptSeed(base int64, n int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ReseedAttempt pins the link's RNG streams to attempt ordinal n —
// the migratable-session schedule (DESIGN.md §5j). The main stream
// (excitation bytes, transmit distortion, AWGN) and the fault stream
// reseed to pure functions of their base seeds and n; the channel
// evolver's stream is owned by the session and reseeded there. The
// serving layer never calls this directly: Session.Send drives it.
func (l *Link) ReseedAttempt(n int) {
	l.curAttempt = n
	l.rng.Seed(attemptSeed(l.Cfg.Seed, n))
	l.inj.Reseed(attemptSeed(l.injBase, n))
}

// SetTagConfig swaps the link's tag configuration in place — the rate
// controller's switch path (DESIGN.md §5f). The placement realization,
// RNG stream, and fault injector all carry over untouched: only the
// tag's modulation/coding/rate change, exactly as a real tag obeys a
// new configuration carried in the reader's poll. Setting the current
// configuration is a no-op, so an idle controller never perturbs
// anything.
func (l *Link) SetTagConfig(cfg tag.Config) error {
	if cfg == l.Tag.Cfg {
		return nil
	}
	tg, err := tag.New(cfg)
	if err != nil {
		return err
	}
	l.Tag = tg
	l.Cfg.Tag = cfg
	return nil
}

// SetFaultProfile swaps the link's impairment profile mid-stream — the
// chaos harness's severity ramp. The new injector's seed derives from
// the link seed and a switch epoch counter, so a fixed (seed, switch
// sequence) pair is bit-identical across runs while successive
// profiles draw decorrelated fault streams. Nil (or an all-zero
// profile) switches faults off.
func (l *Link) SetFaultProfile(p *fault.Profile) error {
	inj, err := fault.NewInjector(p, l.Cfg.Seed^faultSeedSalt+int64(l.faultEpoch+1)*15485863, tag.SampleRate, l.Cfg.Obs)
	if err != nil {
		return err
	}
	l.faultEpoch++
	l.inj = inj
	l.injBase = l.Cfg.Seed ^ faultSeedSalt + int64(l.faultEpoch)*15485863
	l.Cfg.Faults = p
	return nil
}

// Well-known addresses of the simulated cell.
var (
	apAddr     = wifi.MACAddr{0x02, 0x00, 0x00, 0xba, 0xcf, 0x01}
	clientAddr = wifi.MACAddr{0x02, 0x00, 0x00, 0xc1, 0x1e, 0x42}
)

// buildExcitation assembles the AP's transmission for one exchange,
// following the paper's protocol (Sec. 4.1/Fig. 4): a CTS-to-SELF to
// silence the cell, the tag's 16 µs wake preamble, then back-to-back
// framed downlink MPDUs as the excitation. It returns the ideal
// baseband samples and the index where the excitation packet (= the
// tag's timing origin) begins.
func buildExcitation(rng *rand.Rand, rate wifi.Rate, psduBytes int, txPowerW float64, tg *tag.Tag, nppdu int) ([]complex128, int, error) {
	amp := complex(math.Sqrt(txPowerW), 0)

	// CTS-to-SELF at the 6 Mbps basic rate, NAV covering the exchange.
	basic, err := wifi.RateByMbps(6)
	if err != nil {
		return nil, 0, err
	}
	navUs := 16 + nppdu*int(wifi.AirtimeSeconds(psduBytes, rate)*1e6)
	if navUs > 32767 {
		navUs = 32767
	}
	cts, err := wifi.BuildCTSToSelf(apAddr, navUs)
	if err != nil {
		return nil, 0, err
	}
	ctsWave, err := wifi.Transmit(cts, basic, wifi.DefaultScramblerSeed)
	if err != nil {
		return nil, 0, err
	}

	wake := tag.WakeWaveform(tg.WakeSeq(), math.Sqrt(txPowerW))
	x := append(dsp.Scale(ctsWave, amp), wake...)
	packetStart := len(x)

	// Downlink MPDUs: psduBytes on the air, of which 28 bytes are MAC
	// header + FCS.
	msduBytes := psduBytes - 28
	if msduBytes < 1 {
		msduBytes = 1
	}
	for i := 0; i < nppdu; i++ {
		msdu := make([]byte, msduBytes)
		rng.Read(msdu)
		mpdu, err := wifi.BuildDataMPDU(wifi.MPDUHeader{
			Addr1: clientAddr, Addr2: apAddr, Addr3: apAddr, Seq: i & 0xFFF,
		}, msdu)
		if err != nil {
			return nil, 0, err
		}
		wave, err := wifi.Transmit(mpdu, rate, wifi.DefaultScramblerSeed)
		if err != nil {
			return nil, 0, err
		}
		x = append(x, dsp.Scale(wave, amp)...)
	}
	return x, packetStart, nil
}

// RunPacket performs one full exchange: the AP transmits a CTS-to-SELF,
// the wake preamble, and enough back-to-back WiFi PPDUs for the
// payload; the tag wakes and backscatters; the AP decodes.
func (l *Link) RunPacket(payload []byte) (*PacketResult, error) {
	// The session-cache hot path handles unfaulted links only; an active
	// injector's per-frame hooks assume the legacy full-capture pipeline.
	if l.Cfg.SessionCache && l.inj == nil {
		return l.runPacketHot(payload)
	}
	l.m.packets.Inc()

	// Excitation sizing: enough PPDU samples to carry the payload.
	need := tag.SilentSamples + l.Tag.Cfg.PreambleSamples() +
		tag.SymbolsForPayload(len(payload), l.Tag.Cfg.Coding, l.Tag.Cfg.Mod)*l.Tag.Cfg.SamplesPerSymbol()
	ppduLen := wifi.PPDULen(l.Cfg.WiFiPSDUBytes, l.rate)
	nppdu := (need + ppduLen - 1) / ppduLen
	if nppdu < 1 {
		nppdu = 1
	}

	tspExc := l.trace.Start("excitation_build")
	spExc := l.m.spanExcitation.Start()
	x, packetStart, err := buildExcitation(l.rng, l.rate, l.Cfg.WiFiPSDUBytes, l.Scenario.TxPowerW(), l.Tag, nppdu)
	spExc.End()
	tspExc.End()
	if err != nil {
		return nil, err
	}
	packetLen := len(x) - packetStart

	tspChan := l.trace.Start("channel_sim")
	spChan := l.m.spanChannelSim.Start()

	// Air: the transmitted waveform carries hardware distortion the
	// receiver cannot reconstruct, plus any injected front-end
	// impairments (CFO/SCO) — the reader's ideal copy x keeps its own
	// clock, so these degrade cancellation and channel estimation.
	xAir := l.inj.ApplyFrontEnd(l.Scenario.Distortion.Apply(x))

	// Tag side: excitation through the forward channel; wake detection.
	// The tag scans only the region after the CTS-to-SELF (its envelope
	// detector ignores the constant-on CTS burst, which cannot match
	// the balanced wake sequence, but we keep the search window tight
	// like a real comparator would).
	z := l.Scenario.HF.Apply(xAir)
	if l.inj.DropWake() {
		l.m.failWake.Inc()
		return nil, fmt.Errorf("%w: injected wake fault at %.2g m", ErrTagNoWake, l.Cfg.Channel.DistanceM)
	}
	wakeIdx, ok := l.Tag.TryWake(z[:packetStart+tag.SilentSamples])
	if !ok {
		l.m.failWake.Inc()
		return nil, fmt.Errorf("%w at %.2g m", ErrTagNoWake, l.Cfg.Channel.DistanceM)
	}
	// The detector quantizes to 1 µs bits; snap to the true PPDU start
	// (within one bit period, as the real tag's comparator clock does).
	if d := wakeIdx - packetStart; d < -tag.WakeBitSamples || d > tag.WakeBitSamples {
		l.m.failWakeTiming.Inc()
		return nil, fmt.Errorf("%w: wake timing off by %d samples", ErrTagNoWake, d)
	}

	m, plan, err := l.Tag.ModulationSequence(packetLen, payload)
	if err != nil {
		return nil, err
	}
	// Tag-side faults: oscillator phase noise over the reflection, and
	// preamble chips the modulator glitches.
	l.inj.ApplyTagPhaseNoise(m)
	l.inj.CorruptPreamble(m, plan.SilentEnd, l.Tag.Cfg.PreambleChips, tag.ChipSamples)
	mFull := make([]complex128, len(x))
	copy(mFull[packetStart:], m)
	reflected := tag.Backscatter(z, mFull)
	bs := l.Scenario.HB.Apply(reflected)

	// AP receive: self-interference + backscatter + thermal noise, then
	// receiver-side faults (interference bursts, the real ADC, capture
	// truncation).
	y := l.Scenario.Noise.Add(dsp.Add(l.Scenario.HEnv.Apply(xAir), bs))
	l.inj.AddInterference(y)
	l.inj.ApplyADC(y)
	l.inj.TruncateTail(y, packetStart, packetLen)
	spChan.End()
	tspChan.End()

	tspDec := l.trace.Start("decode_total")
	spDec := l.m.spanDecode.Start()
	res, err := l.rdr.Decode(x, xAir, y, packetStart, packetLen, l.Tag.Cfg)
	spDec.End()
	tspDec.End()
	if err != nil {
		return nil, err
	}

	// Ground-truth comparisons.
	pr := &PacketResult{
		Decode:            res,
		Sent:              payload,
		ExcitationSamples: packetLen,
		TagAirtimeSec:     float64(plan.End()-plan.SilentEnd) / tag.SampleRate,
		ExpectedSNRdB:     l.Scenario.ExpectedSNRdB(),
		MeasuredSNRdB:     res.SNRdB,
	}
	pr.liftDiagnostics(res)
	sps := l.Tag.Cfg.SamplesPerSymbol()
	guard := l.Cfg.Reader.ChannelTaps
	if guard > sps/2 {
		guard = sps / 2
	}
	floorW := dsp.UnDBm(pr.SICResidualDBm)
	pr.ExpectedMRCSNRdB = dsp.SNRdB(l.Scenario.BackscatterRxPowerW(), floorW) + dsp.DB(float64(sps-guard))
	pr.PayloadOK = res.FrameOK && bytesEqual(res.Payload, payload)
	pr.Delivered = pr.PayloadOK

	// Raw coded-bit errors over the frame's symbols.
	hard := l.Tag.Cfg.Mod.DemapHard(res.SymbolEstimates[:min(len(plan.Symbols), len(res.SymbolEstimates))])
	for i, b := range plan.CodedBits[:min(len(plan.CodedBits), len(hard))] {
		if hard[i] != b {
			pr.RawBitErrors++
		}
		pr.RawBits++
	}
	l.observeResult(pr)
	return pr, nil
}

// observeResult records one packet's outcome into the link metrics.
func (l *Link) observeResult(pr *PacketResult) {
	if pr.PayloadOK {
		l.m.packetsOK.Inc()
	}
	l.m.rawBER.Observe(pr.RawBER())
	l.m.snrExpected.Observe(pr.ExpectedSNRdB)
	l.m.snrExpectedMRC.Observe(pr.ExpectedMRCSNRdB)
	l.m.snrMeasured.Observe(pr.MeasuredSNRdB)
}

// RandomPayload draws a payload of n bytes from the link's RNG.
func (l *Link) RandomPayload(n int) []byte {
	p := make([]byte, n)
	l.rng.Read(p)
	return p
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
