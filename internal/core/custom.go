package core

import (
	"fmt"
	"math"

	"backfi/internal/dsp"
	"backfi/internal/tag"
)

// RunCustomExcitation performs one exchange using a caller-supplied
// excitation waveform instead of WiFi PPDUs — the paper's generality
// claim (Sec. 1: "the system is applicable for other types of
// communication signals like Bluetooth, Zigbee, etc."). The waveform
// should be at unit average power; it is scaled to the scenario's
// transmit power and prefixed with the tag's wake preamble. The
// reader's cancellation, channel estimation, and MRC run unchanged:
// they only require that the AP knows its own transmission.
//
// The excitation must be long enough for the silent period, the tag
// preamble, and the payload symbols at the tag's configuration.
func (l *Link) RunCustomExcitation(excitation []complex128, payload []byte) (*PacketResult, error) {
	need := tag.SilentSamples + l.Tag.Cfg.PreambleSamples() +
		tag.SymbolsForPayload(len(payload), l.Tag.Cfg.Coding, l.Tag.Cfg.Mod)*l.Tag.Cfg.SamplesPerSymbol()
	if len(excitation) < need {
		return nil, fmt.Errorf("core: excitation of %d samples, need ≥ %d for this payload", len(excitation), need)
	}

	l.m.packets.Inc()
	amp := complex(math.Sqrt(l.Scenario.TxPowerW()), 0)
	wake := tag.WakeWaveform(l.Tag.WakeSeq(), math.Sqrt(l.Scenario.TxPowerW()))
	x := append(append([]complex128{}, wake...), dsp.Scale(excitation, amp)...)
	packetStart := len(wake)
	packetLen := len(x) - packetStart

	spChan := l.m.spanChannelSim.Start()
	xAir := l.inj.ApplyFrontEnd(l.Scenario.Distortion.Apply(x))
	z := l.Scenario.HF.Apply(xAir)
	if _, ok := l.Tag.TryWake(z[:packetStart+tag.SilentSamples]); !ok {
		l.m.failWake.Inc()
		return nil, ErrTagNoWake
	}
	m, plan, err := l.Tag.ModulationSequence(packetLen, payload)
	if err != nil {
		return nil, err
	}
	l.inj.ApplyTagPhaseNoise(m)
	l.inj.CorruptPreamble(m, plan.SilentEnd, l.Tag.Cfg.PreambleChips, tag.ChipSamples)
	mFull := make([]complex128, len(x))
	copy(mFull[packetStart:], m)
	bs := l.Scenario.HB.Apply(tag.Backscatter(z, mFull))
	y := l.Scenario.Noise.Add(dsp.Add(l.Scenario.HEnv.Apply(xAir), bs))
	l.inj.AddInterference(y)
	l.inj.ApplyADC(y)
	l.inj.TruncateTail(y, packetStart, packetLen)
	spChan.End()

	spDec := l.m.spanDecode.Start()
	res, err := l.rdr.Decode(x, xAir, y, packetStart, packetLen, l.Tag.Cfg)
	spDec.End()
	if err != nil {
		return nil, err
	}
	pr := &PacketResult{
		Decode:            res,
		Sent:              payload,
		PayloadOK:         res.FrameOK && bytesEqual(res.Payload, payload),
		Delivered:         res.FrameOK && bytesEqual(res.Payload, payload),
		ExcitationSamples: packetLen,
		TagAirtimeSec:     float64(plan.End()-plan.SilentEnd) / tag.SampleRate,
		ExpectedSNRdB:     l.Scenario.ExpectedSNRdB(),
		MeasuredSNRdB:     res.SNRdB,
	}
	pr.liftDiagnostics(res)
	// Oracle post-MRC SNR against the measured floor, as in RunPacket.
	sps := l.Tag.Cfg.SamplesPerSymbol()
	guard := l.Cfg.Reader.ChannelTaps
	if guard > sps/2 {
		guard = sps / 2
	}
	pr.ExpectedMRCSNRdB = dsp.SNRdB(l.Scenario.BackscatterRxPowerW(), dsp.UnDBm(pr.SICResidualDBm)) + dsp.DB(float64(sps-guard))
	hard := l.Tag.Cfg.Mod.DemapHard(res.SymbolEstimates[:min(len(plan.Symbols), len(res.SymbolEstimates))])
	for i, b := range plan.CodedBits[:min(len(plan.CodedBits), len(hard))] {
		if hard[i] != b {
			pr.RawBitErrors++
		}
		pr.RawBits++
	}
	l.observeResult(pr)
	return pr, nil
}
